# Sanitizer instrumentation for the whole build tree.
#
# Usage:
#   cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
#         -DLQS_SANITIZE="address;undefined"
#   cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug -DLQS_SANITIZE=thread
#
# Supported flavors: address, undefined, leak, thread. Thread cannot be
# combined with address/leak (the runtimes are mutually exclusive).
# Runtime suppressions live in scripts/sanitizers/ and are exported to every
# ctest run via lqs_sanitizer_test_env() (see tests/CMakeLists.txt).

function(lqs_enable_sanitizers flavors)
  set(_known address undefined leak thread)
  set(_flags "")
  foreach(s IN LISTS flavors)
    if(NOT s IN_LIST _known)
      message(FATAL_ERROR "LQS_SANITIZE: unknown sanitizer '${s}' "
                          "(supported: ${_known})")
    endif()
    list(APPEND _flags "-fsanitize=${s}")
  endforeach()
  if("thread" IN_LIST flavors AND
     ("address" IN_LIST flavors OR "leak" IN_LIST flavors))
    message(FATAL_ERROR "LQS_SANITIZE: thread cannot be combined with "
                        "address/leak")
  endif()

  # Keep stacks readable and make UBSan findings fatal so ctest fails on
  # the first report instead of printing and passing.
  list(APPEND _flags -fno-omit-frame-pointer)
  if("undefined" IN_LIST flavors)
    list(APPEND _flags -fno-sanitize-recover=undefined)
  endif()

  add_compile_options(${_flags})
  add_link_options(${_flags})
  message(STATUS "LQS sanitizers enabled: ${flavors}")
endfunction()

# Environment a sanitized test run needs: abort on first error, symbolized
# stacks, and the checked-in suppression lists.
function(lqs_sanitizer_test_env out_var)
  set(_supp_dir ${PROJECT_SOURCE_DIR}/scripts/sanitizers)
  set(_env
      "ASAN_OPTIONS=halt_on_error=1:detect_stack_use_after_return=1"
      "UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1:suppressions=${_supp_dir}/ubsan.supp"
      "LSAN_OPTIONS=suppressions=${_supp_dir}/lsan.supp"
      "TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1")
  set(${out_var} "${_env}" PARENT_SCOPE)
endfunction()
