# Compile-time lock-discipline proof (DESIGN.md §9).
#
# Usage:
#   cmake -B build-annot -S . -DCMAKE_CXX_COMPILER=clang++ \
#         -DLQS_THREAD_SAFETY=ON
#
# Turns on clang's thread-safety analysis over the whole tree and promotes
# every finding to an error, so a GUARDED_BY field touched without its
# mutex, a REQUIRES method called unlocked, or a leaked MutexLock fails the
# build. The analysis only understands the annotated primitives in
# src/common/mutex.h (std::mutex cannot carry capability attributes), which
# is why scripts/lint.sh bans raw std mutexes in src/.
#
# The `thread-safety` diagnostic group alone is promoted to -Werror rather
# than the whole build: the gate must fail on lock-discipline violations,
# not on unrelated warnings a newer clang may add.

function(lqs_enable_thread_safety)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
            "LQS_THREAD_SAFETY requires clang (-Wthread-safety is a clang "
            "analysis); got ${CMAKE_CXX_COMPILER_ID}. Reconfigure with "
            "-DCMAKE_CXX_COMPILER=clang++ or drop -DLQS_THREAD_SAFETY=ON.")
  endif()
  add_compile_options(-Wthread-safety -Werror=thread-safety)
  message(STATUS "LQS thread-safety analysis enabled "
                 "(-Wthread-safety -Werror=thread-safety)")
endfunction()
