#include "analysis/invariant_checker.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stringf.h"

namespace lqs {

namespace {

bool InUnitRange(double v) { return std::isfinite(v) && v >= 0.0 && v <= 1.0; }

/// True when a refined cardinality changed meaningfully between snapshots.
/// Either direction counts: an upward revision shrinks the numerator's
/// share directly, a downward one shifts pipeline weight mass onto less
/// complete pipelines — both legitimately move query progress down.
bool CardinalityRevised(double before, double after) {
  if (std::isinf(before) || std::isinf(after)) {
    return std::isinf(before) != std::isinf(after);
  }
  return std::fabs(after - before) >
         1e-9 * std::max({1.0, std::fabs(before), std::fabs(after)});
}

}  // namespace

ProgressInvariantChecker::ProgressInvariantChecker(
    const ProgressEstimator* estimator, InvariantCheckerOptions options)
    : estimator_(estimator), options_(options) {}

void ProgressInvariantChecker::Reset() {
  report_ = ValidationReport();
  prev_query_progress_ = 0.0;
  prev_refined_rows_.clear();
  prev_time_ms_ = -1.0;
  max_regression_ = 0.0;
  snapshots_checked_ = 0;
}

ProgressReport ProgressInvariantChecker::EstimateChecked(
    const ProfileSnapshot& snapshot) {
  ProgressReport report = estimator_->Estimate(snapshot);
  CheckReport(snapshot, report);
  return report;
}

void ProgressInvariantChecker::EstimateCheckedInto(
    const ProfileSnapshot& snapshot, ProgressEstimator::Workspace* workspace,
    ProgressReport* report) {
  estimator_->EstimateInto(snapshot, workspace, report);
  CheckReport(snapshot, *report);
}

void ProgressInvariantChecker::CheckReport(const ProfileSnapshot& snapshot,
                                           const ProgressReport& report) {
  // Fast path: one branch-light pass accumulating validity as arithmetic.
  // Each comparison is false for NaN, so `(v >= 0) & (v <= 1)` rejects NaN
  // and both infinities without calling the classification functions; the
  // detailed per-value diagnosis runs only when something is wrong, which
  // keeps the always-on checker within a few percent of Estimate() itself.
  const double q = report.query_progress;
  bool ok = (q >= 0.0) & (q <= 1.0);
  const size_t nodes = report.operator_progress.size();
  for (size_t i = 0; i < nodes; ++i) {
    const double p = report.operator_progress[i];
    // +inf is legal for refined rows above an unbounded spool; NaN and
    // negatives never are, and `n_hat >= 0` rejects exactly those.
    ok = ok & (p >= 0.0) & (p <= 1.0) & (report.refined_rows[i] >= 0.0);
  }
  for (size_t p = 0; p < report.pipeline_progress.size(); ++p) {
    const double v = report.pipeline_progress[p];
    ok = ok & (v >= 0.0) & (v <= 1.0);
  }
  constexpr double kMaxDouble = std::numeric_limits<double>::max();
  for (size_t p = 0; p < report.pipeline_weight.size(); ++p) {
    const double w = report.pipeline_weight[p];
    ok = ok & (w > 0.0) & (w <= kMaxDouble);
  }
  if (!ok) ReportRangeViolations(snapshot, report);

  // Monotonicity under monotone snapshots. With a stable refined
  // cardinality vector every K_i/N̂_i ratio only grows, so query progress
  // must not fall; if any N̂_i was revised the drop is a legitimate
  // revision event (§5) and is only tracked. Snapshots must arrive in time
  // order; an out-of-order feed resets the baseline instead of reporting a
  // spurious regression.
  if (prev_time_ms_ >= 0.0 && snapshot.time_ms >= prev_time_ms_) {
    const double regression = prev_query_progress_ - report.query_progress;
    if (regression > max_regression_) max_regression_ = regression;
    if (regression > options_.query_regression_slack) {
      bool revised = prev_refined_rows_.size() != report.refined_rows.size();
      for (size_t i = 0; !revised && i < report.refined_rows.size(); ++i) {
        revised = CardinalityRevised(prev_refined_rows_[i],
                                     report.refined_rows[i]);
      }
      if (!revised) {
        report_.Add("progress.monotonicity", -1, -1,
                    StringF("query progress fell %g -> %g (t=%g -> %g) with "
                            "no cardinality revision, beyond slack %g",
                            prev_query_progress_, report.query_progress,
                            prev_time_ms_, snapshot.time_ms,
                            options_.query_regression_slack));
      }
    }
  }
  prev_query_progress_ = report.query_progress;
  prev_refined_rows_ = report.refined_rows;
  prev_time_ms_ = snapshot.time_ms;
  snapshots_checked_++;

  if (options_.deep_bounds_check) CheckBounds(snapshot, report);
}

void ProgressInvariantChecker::ReportRangeViolations(
    const ProfileSnapshot& snapshot, const ProgressReport& report) {
  if (!InUnitRange(report.query_progress)) {
    report_.Add("progress.query_range", -1, -1,
                StringF("query progress %g outside [0, 1] at t=%g",
                        report.query_progress, snapshot.time_ms));
  }
  for (size_t i = 0; i < report.operator_progress.size(); ++i) {
    const int node = static_cast<int>(i);
    if (!InUnitRange(report.operator_progress[i])) {
      report_.Add("progress.operator_range", node, -1,
                  StringF("operator progress %g outside [0, 1] at t=%g",
                          report.operator_progress[i], snapshot.time_ms));
    }
    const double n_hat = report.refined_rows[i];
    if (std::isnan(n_hat) || n_hat < 0.0) {
      report_.Add("progress.refined_rows", node, -1,
                  StringF("refined cardinality %g invalid at t=%g", n_hat,
                          snapshot.time_ms));
    }
  }
  for (size_t p = 0; p < report.pipeline_progress.size(); ++p) {
    if (!InUnitRange(report.pipeline_progress[p])) {
      report_.Add("progress.pipeline_range", -1, static_cast<int>(p),
                  StringF("pipeline progress %g outside [0, 1] at t=%g",
                          report.pipeline_progress[p], snapshot.time_ms));
    }
  }
  for (size_t p = 0; p < report.pipeline_weight.size(); ++p) {
    const double w = report.pipeline_weight[p];
    if (!std::isfinite(w) || w <= 0.0) {
      report_.Add("progress.pipeline_weight", -1, static_cast<int>(p),
                  StringF("pipeline weight %g not positive/finite at t=%g",
                          w, snapshot.time_ms));
    }
  }
}

void ProgressInvariantChecker::CheckBounds(const ProfileSnapshot& snapshot,
                                           const ProgressReport& report) {
  const Plan& plan = estimator_->plan();
  const CardinalityBounds bounds =
      ComputeBounds(plan, estimator_->catalog(), snapshot);
  for (int i = 0; i < plan.size(); ++i) {
    const double lb = bounds.lower[i];
    const double ub = bounds.upper[i];
    if (!std::isfinite(lb) || lb < 0.0) {
      report_.Add("bounds.lower", i, -1,
                  StringF("lower bound %g not finite/non-negative at t=%g",
                          lb, snapshot.time_ms));
      continue;
    }
    if (std::isnan(ub) || ub < lb) {
      report_.Add("bounds.order", i, -1,
                  StringF("bounds [%g, %g] violate lower <= upper at t=%g",
                          lb, ub, snapshot.time_ms));
      continue;
    }
    // Clamp must be idempotent and land inside [lower, upper] for any
    // finite probe, including +/-inf-adjacent extremes.
    const double probes[] = {0.0, lb, ub, lb + 0.5 * (std::isfinite(ub)
                                                          ? ub - lb
                                                          : 1.0),
                             report.refined_rows[i]};
    for (double x : probes) {
      if (std::isnan(x)) continue;
      const double c = bounds.Clamp(i, x);
      if (std::isnan(c) || c < lb || c > ub) {
        report_.Add("bounds.clamp_range", i, -1,
                    StringF("Clamp(%g) = %g escapes [%g, %g]", x, c, lb, ub));
      } else if (bounds.Clamp(i, c) != c) {
        report_.Add("bounds.clamp_idempotent", i, -1,
                    StringF("Clamp(Clamp(%g)) = %g != %g", x,
                            bounds.Clamp(i, c), c));
      }
    }
    // Refined cardinalities must respect the Appendix A corridor. The upper
    // end is floored at one row: the estimator reports N̂_i = max(1, K_i)
    // for finished operators so progress ratios stay well-defined even for
    // empty results.
    if (estimator_->options().bound_cardinality) {
      const double n_hat = report.refined_rows[i];
      const double tol = 1e-6 * std::max(1.0, std::fabs(n_hat));
      if (n_hat < lb - tol || n_hat > std::max(ub, 1.0) + tol) {
        report_.Add("bounds.refined_within", i, -1,
                    StringF("refined cardinality %g outside [%g, %g] at "
                            "t=%g",
                            n_hat, lb, std::max(ub, 1.0), snapshot.time_ms));
      }
    }
  }
}

void ProgressInvariantChecker::CheckFinal(
    const ProfileSnapshot& final_snapshot, double min_final_progress) {
  ProgressReport report = estimator_->Estimate(final_snapshot);
  const EstimatorOptions& opts = estimator_->options();
  // Exact completion is structurally guaranteed only for the weighted
  // pipeline aggregate: a finished pipeline root forces alpha = 1, so the
  // weighted sum is exactly 1 at end-of-stream. Unweighted driver
  // aggregates can stick marginally below 1.0 when an NL-inner driver's
  // refined cardinality over-shoots its final row count.
  const bool exact_at_completion = opts.use_driver_nodes && opts.use_weights;
  if (exact_at_completion && std::fabs(report.query_progress - 1.0) > 1e-6) {
    report_.Add("progress.final_complete", -1, -1,
                StringF("refining estimator reports %g at end-of-stream, "
                        "expected 1.0",
                        report.query_progress));
  }
  if (report.query_progress < min_final_progress) {
    report_.Add("progress.final_floor", -1, -1,
                StringF("final progress %g below configured floor %g",
                        report.query_progress, min_final_progress));
  }
}

}  // namespace lqs
