#ifndef LQS_ANALYSIS_VALIDATOR_H_
#define LQS_ANALYSIS_VALIDATOR_H_

#include <string>
#include <vector>

#include "common/noalloc.h"
#include "common/status.h"
#include "exec/plan.h"
#include "lqs/pipeline.h"
#include "storage/catalog.h"

namespace lqs {

/// One violated invariant, with enough context to locate it: the name of the
/// check that fired, the plan node / pipeline involved (-1 when not
/// applicable) and a human-readable detail line.
struct ValidationIssue {
  std::string check;
  int node_id = -1;
  int pipeline_id = -1;
  std::string detail;

  std::string ToString() const;
};

/// Accumulated result of one or more validation passes. Empty == valid.
class ValidationReport {
 public:
  bool ok() const { return issues_.empty(); }
  const std::vector<ValidationIssue>& issues() const { return issues_; }

  LQS_ALLOC_OK(
      "violation reporting: only reached after an invariant has already "
      "failed, never on the steady-state estimation path")
  void Add(std::string check, int node_id, int pipeline_id,
           std::string detail);
  /// Merges another report's issues into this one.
  void Merge(const ValidationReport& other);

  /// All issues, one per line; empty string when ok().
  std::string ToString() const;
  /// OK when no issues, otherwise Internal with the joined issue lines.
  Status ToStatus() const;

 private:
  std::vector<ValidationIssue> issues_;
};

/// Static checks on a finalized Plan and its PlanAnalysis. These are the §3
/// structural prerequisites every estimator feature silently relies on:
///
///  Plan-level (Validate(plan)):
///   - node ids are dense [0, size), unique, pre-order, and `nodes[id]`
///     indexes the node carrying that id (the tree is consistent with the
///     flat view — no aliasing, no cycles);
///   - per-operator arity (joins have two children, unary operators one,
///     leaves none);
///   - optimizer annotations are finite and non-negative;
///   - cross-node references (bitmap_source_id) point at a BitmapCreate
///     node that exists;
///   - outer-column expressions appear only on Nested Loops inner sides;
///   - with a catalog: every referenced table exists.
///
///  Analysis-level (Validate(plan, analysis)):
///   - pipelines partition the plan (every node in exactly one pipeline,
///     membership lists consistent with pipeline_of_node);
///   - every pipeline has at least one standard driver node, and driver
///     nodes are genuine pipeline sources (no same-pipeline children);
///   - blocking edges and pipeline boundaries coincide (§3.1.1): an edge
///     starts a new pipeline iff IsBlockingEdge, and child_pipelines
///     mirrors exactly those edges;
///   - NL-inner flags are consistent (enclosing_nlj is a Nested Loops node
///     in the same pipeline iff on_nlj_inner_side).
class PlanValidator {
 public:
  /// `catalog` may be null; table-existence checks are then skipped.
  explicit PlanValidator(const Catalog* catalog = nullptr)
      : catalog_(catalog) {}

  ValidationReport Validate(const Plan& plan) const;
  ValidationReport Validate(const Plan& plan,
                            const PlanAnalysis& analysis) const;

 private:
  void CheckStructure(const Plan& plan, ValidationReport* report) const;
  void CheckAnnotations(const Plan& plan, ValidationReport* report) const;
  void CheckPipelines(const Plan& plan, const PlanAnalysis& analysis,
                      ValidationReport* report) const;

  const Catalog* catalog_;
};

}  // namespace lqs

#endif  // LQS_ANALYSIS_VALIDATOR_H_
