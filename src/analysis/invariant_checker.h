#ifndef LQS_ANALYSIS_INVARIANT_CHECKER_H_
#define LQS_ANALYSIS_INVARIANT_CHECKER_H_

#include <cstdint>
#include <vector>

#include "analysis/validator.h"
#include "dmv/query_profile.h"
#include "lqs/bounds.h"
#include "lqs/estimator.h"

namespace lqs {

/// Knobs of the runtime invariant checker. The defaults are cheap enough to
/// leave on wherever snapshots are replayed (see bench/overhead_benchmark):
/// every per-snapshot check is O(nodes) over the already-computed report.
struct InvariantCheckerOptions {
  /// Allowed decrease of query progress between consecutive snapshots when
  /// the refined cardinality vector did NOT change. With N̂ fixed, every
  /// K_i/N̂_i ratio grows under monotone DMV counters, so query progress is
  /// structurally non-decreasing and any drop beyond this numeric allowance
  /// is a genuine estimator bug. When any N̂_i was revised between the two
  /// snapshots the drop is a legitimate revision event — the paper's §5
  /// revision metric *measures* those, and unguarded configurations revise
  /// by 0.5+ in one polling interval — so it is tracked in
  /// max_query_regression() but never reported as a violation.
  double query_regression_slack = 0.01;
  /// Recompute the Appendix A bounds per snapshot and cross-check them
  /// against the report (lower <= upper, Clamp idempotence, refined rows
  /// within bounds). Roughly doubles checker cost — intended for tests and
  /// debugging, not for the always-on path.
  bool deep_bounds_check = false;
};

/// Wraps a ProgressEstimator during snapshot replay and verifies the
/// invariants the paper states but the estimator itself never asserts:
///
///  - query and operator progress are finite and within [0, 1];
///  - refined cardinalities N̂_i are finite (or +inf above an unbounded
///    spool) and non-negative;
///  - per-pipeline progress and weights are finite, in-range and positive;
///  - query progress is non-decreasing across snapshots whenever the
///    refined cardinality vector is stable; drops caused by cardinality
///    revisions are legal and only tracked (snapshots must be fed in time
///    order);
///  - with deep_bounds_check: CardinalityBounds satisfy lower <= upper with
///    finite non-negative lower, Clamp is idempotent, and every refined
///    cardinality lies within [lower, max(upper, 1)] — the upper is floored
///    at one row because the estimator deliberately floors N̂_i at 1 for
///    finished-empty operators to keep progress ratios well-defined.
///
/// Violations accumulate in report() as structured ValidationIssues; the
/// checker never aborts, so a replay surfaces every violation at once.
class ProgressInvariantChecker {
 public:
  explicit ProgressInvariantChecker(const ProgressEstimator* estimator,
                                    InvariantCheckerOptions options = {});

  /// Runs the wrapped estimator on `snapshot` and checks the result.
  /// Snapshots must be fed in non-decreasing time order for the
  /// monotonicity check to be meaningful.
  ProgressReport EstimateChecked(const ProfileSnapshot& snapshot);

  /// Allocation-free form of EstimateChecked: estimates into `*report`
  /// through the estimator's workspace-reusing path, then checks it. The
  /// workspace follows the ProgressEstimator::Workspace contract (one per
  /// estimator per thread); the checker itself stays allocation-free on the
  /// happy path — issue diagnostics allocate only when a violation is found.
  void EstimateCheckedInto(const ProfileSnapshot& snapshot,
                           ProgressEstimator::Workspace* workspace,
                           ProgressReport* report);

  /// Checks an externally produced report (e.g. when the caller already
  /// paid for Estimate) without re-running the estimator.
  void CheckReport(const ProfileSnapshot& snapshot,
                   const ProgressReport& report);

  /// End-of-stream checks on the final snapshot: the full LQS configuration
  /// (driver nodes + refinement + bounding) must report exactly 1.0; every
  /// configuration must report a sane completion value.
  void CheckFinal(const ProfileSnapshot& final_snapshot,
                  double min_final_progress = 0.0);

  const ValidationReport& report() const { return report_; }
  const ProgressEstimator& estimator() const { return *estimator_; }

  /// Largest query-progress regression seen so far (0 when monotone).
  double max_query_regression() const { return max_regression_; }
  uint64_t snapshots_checked() const { return snapshots_checked_; }

  /// Forgets replay state (previous progress, accumulated issues) so the
  /// checker can be reused for another trace.
  void Reset();

 private:
  /// Slow path of CheckReport: re-examines every value individually to
  /// attribute the violation(s) the fast scan detected.
  void ReportRangeViolations(const ProfileSnapshot& snapshot,
                             const ProgressReport& report);
  void CheckBounds(const ProfileSnapshot& snapshot,
                   const ProgressReport& report);

  const ProgressEstimator* estimator_;
  InvariantCheckerOptions options_;
  ValidationReport report_;
  double prev_query_progress_ = 0.0;
  std::vector<double> prev_refined_rows_;
  double prev_time_ms_ = -1.0;
  double max_regression_ = 0.0;
  uint64_t snapshots_checked_ = 0;
};

}  // namespace lqs

#endif  // LQS_ANALYSIS_INVARIANT_CHECKER_H_
