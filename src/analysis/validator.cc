#include "analysis/validator.h"

#include <cmath>
#include <set>

#include "common/stringf.h"

namespace lqs {

std::string ValidationIssue::ToString() const {
  std::string out = check;
  if (node_id >= 0) out += StringF(" [node %d]", node_id);
  if (pipeline_id >= 0) out += StringF(" [pipeline %d]", pipeline_id);
  out += ": " + detail;
  return out;
}

void ValidationReport::Add(std::string check, int node_id, int pipeline_id,
                           std::string detail) {
  issues_.push_back(ValidationIssue{std::move(check), node_id, pipeline_id,
                                    std::move(detail)});
}

void ValidationReport::Merge(const ValidationReport& other) {
  issues_.insert(issues_.end(), other.issues_.begin(), other.issues_.end());
}

std::string ValidationReport::ToString() const {
  std::string out;
  for (const ValidationIssue& issue : issues_) {
    out += issue.ToString();
    out += "\n";
  }
  return out;
}

Status ValidationReport::ToStatus() const {
  if (ok()) return Status::OK();
  return Status::Internal(StringF("%zu invariant violation(s):\n",
                                  issues_.size()) +
                          ToString());
}

namespace {

/// Expected child count per operator; -1 means "one or more" (Concatenation).
int ExpectedChildren(OpType type) {
  switch (type) {
    case OpType::kTableScan:
    case OpType::kClusteredIndexScan:
    case OpType::kClusteredIndexSeek:
    case OpType::kIndexScan:
    case OpType::kIndexSeek:
    case OpType::kConstantScan:
    case OpType::kColumnstoreScan:
      return 0;
    case OpType::kRidLookup:
      return 0;
    case OpType::kHashJoin:
    case OpType::kMergeJoin:
    case OpType::kNestedLoopJoin:
      return 2;
    case OpType::kConcatenation:
      return -1;
    case OpType::kNumOpTypes:
      return 0;
    default:
      return 1;
  }
}

bool FiniteNonNegative(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

void PlanValidator::CheckStructure(const Plan& plan,
                                   ValidationReport* report) const {
  if (plan.root == nullptr) {
    report->Add("plan.root", -1, -1, "finalized plan has null root");
    return;
  }
  const int n = plan.size();
  if (plan.root->CountNodes() != n) {
    report->Add("plan.id_density", -1, -1,
                StringF("tree has %d nodes but flat index has %d",
                        plan.root->CountNodes(), n));
  }

  // Ids must be unique, in [0, n), pre-order, and the flat index must point
  // back at the node carrying the id. Unique ids over a unique_ptr tree also
  // rule out aliasing/cycles in the flat view.
  std::set<int> seen;
  int expected_preorder = 0;
  bool preorder_ok = true;
  plan.root->Visit([&](const PlanNode& node) {
    if (node.id < 0 || node.id >= n) {
      report->Add("plan.id_range", node.id, -1,
                  StringF("id out of range [0, %d)", n));
      preorder_ok = false;
      return;
    }
    if (!seen.insert(node.id).second) {
      report->Add("plan.id_unique", node.id, -1, "duplicate node id");
    }
    if (node.id != expected_preorder) preorder_ok = false;
    expected_preorder++;
    if (static_cast<size_t>(node.id) < plan.nodes.size() &&
        plan.nodes[node.id] != &node) {
      report->Add("plan.flat_index", node.id, -1,
                  "plan.nodes[id] does not point at the node carrying id");
    }
  });
  if (!preorder_ok) {
    report->Add("plan.id_preorder", -1, -1,
                "node ids are not dense pre-order (FinalizePlan contract)");
  }

  plan.root->Visit([&](const PlanNode& node) {
    const int want = ExpectedChildren(node.type);
    const int got = static_cast<int>(node.children.size());
    if ((want >= 0 && got != want) || (want < 0 && got < 1)) {
      report->Add("plan.arity", node.id, -1,
                  StringF("%s has %d children, expected %s",
                          OpTypeName(node.type), got,
                          want >= 0 ? StringF("%d", want).c_str() : ">= 1"));
    }
    if (node.bitmap_source_id >= 0) {
      if (node.bitmap_source_id >= n ||
          plan.node(node.bitmap_source_id).type != OpType::kBitmapCreate) {
        report->Add("plan.bitmap_ref", node.id, -1,
                    StringF("bitmap_source_id %d is not a BitmapCreate node",
                            node.bitmap_source_id));
      }
    }
    if (catalog_ != nullptr && IsScan(node.type) &&
        node.type != OpType::kConstantScan) {
      if (catalog_->GetTable(node.table_name) == nullptr) {
        report->Add("plan.table_ref", node.id, -1,
                    "references unknown table '" + node.table_name + "'");
      }
    }
  });

  // Outer-column references only on NL inner sides (mirrors the
  // FinalizePlan gate so hand-assembled Plan structs are covered too).
  struct OuterWalk {
    ValidationReport* report;
    void Walk(const PlanNode& node, bool outer_available) {
      auto check = [&](const Expr* e, const char* what) {
        if (e != nullptr && !outer_available && e->ContainsOuterColumn()) {
          report->Add("plan.outer_binding", node.id, -1,
                      std::string(what) +
                          " references an outer column outside a Nested "
                          "Loops inner side");
        }
      };
      check(node.seek_lo.get(), "seek bound");
      check(node.seek_hi.get(), "seek bound");
      check(node.pushed_predicate.get(), "pushed predicate");
      check(node.predicate.get(), "predicate");
      for (const auto& p : node.projections) check(p.get(), "projection");
      for (size_t i = 0; i < node.children.size(); ++i) {
        Walk(*node.children[i],
             outer_available ||
                 (node.type == OpType::kNestedLoopJoin && i == 1));
      }
    }
  };
  OuterWalk{report}.Walk(*plan.root, false);
}

void PlanValidator::CheckAnnotations(const Plan& plan,
                                     ValidationReport* report) const {
  plan.root->Visit([&](const PlanNode& node) {
    if (!FiniteNonNegative(node.est_rows)) {
      report->Add("plan.est_rows", node.id, -1,
                  StringF("estimated rows %g not finite/non-negative",
                          node.est_rows));
    }
    if (!FiniteNonNegative(node.est_cpu_ms)) {
      report->Add("plan.est_cpu", node.id, -1,
                  StringF("estimated CPU %g not finite/non-negative",
                          node.est_cpu_ms));
    }
    if (!FiniteNonNegative(node.est_io_ms)) {
      report->Add("plan.est_io", node.id, -1,
                  StringF("estimated I/O %g not finite/non-negative",
                          node.est_io_ms));
    }
    if (!FiniteNonNegative(node.est_rebinds)) {
      report->Add("plan.est_rebinds", node.id, -1,
                  StringF("estimated rebinds %g not finite/non-negative",
                          node.est_rebinds));
    }
  });
}

void PlanValidator::CheckPipelines(const Plan& plan,
                                   const PlanAnalysis& analysis,
                                   ValidationReport* report) const {
  const int n = plan.size();
  const int num_pipelines = analysis.pipeline_count();

  if (static_cast<int>(analysis.pipeline_of_node.size()) != n) {
    report->Add("pipeline.map_size", -1, -1,
                StringF("pipeline_of_node has %zu entries for %d nodes",
                        analysis.pipeline_of_node.size(), n));
    return;
  }

  // Partition: membership lists are disjoint, cover the plan, and agree
  // with the node -> pipeline map.
  std::vector<int> membership(static_cast<size_t>(n), -1);
  for (const PipelineInfo& p : analysis.pipelines) {
    for (int id : p.nodes) {
      if (id < 0 || id >= n) {
        report->Add("pipeline.member_range", id, p.id, "member id invalid");
        continue;
      }
      if (membership[id] != -1) {
        report->Add("pipeline.partition", id, p.id,
                    StringF("node also in pipeline %d", membership[id]));
      }
      membership[id] = p.id;
      if (analysis.pipeline_of_node[id] != p.id) {
        report->Add("pipeline.map_mismatch", id, p.id,
                    StringF("pipeline_of_node says %d",
                            analysis.pipeline_of_node[id]));
      }
    }
  }
  for (int id = 0; id < n; ++id) {
    if (membership[id] == -1) {
      report->Add("pipeline.coverage", id, -1,
                  "node belongs to no pipeline");
    }
  }

  // Parent edges, for boundary checks below.
  std::vector<int> parent(static_cast<size_t>(n), -1);
  plan.root->Visit([&](const PlanNode& node) {
    for (const auto& c : node.children) parent[c->id] = node.id;
  });

  for (const PipelineInfo& p : analysis.pipelines) {
    // §3: every pipeline needs at least one standard driver — progress of a
    // driverless pipeline would be undefined (0/0).
    if (p.driver_nodes.empty()) {
      report->Add("pipeline.driver", -1, p.id,
                  "pipeline has no standard driver node");
    }
    if (p.root_node < 0 || p.root_node >= n ||
        analysis.pipeline_of_node[p.root_node] != p.id) {
      report->Add("pipeline.root", p.root_node, p.id,
                  "root_node not a member of its own pipeline");
    }
    auto check_driver = [&](int d, const char* kind) {
      if (d < 0 || d >= n || analysis.pipeline_of_node[d] != p.id) {
        report->Add("pipeline.driver_member", d, p.id,
                    std::string(kind) + " driver not in pipeline");
        return;
      }
      for (const auto& c : plan.node(d).children) {
        if (analysis.pipeline_of_node[c->id] == p.id) {
          report->Add("pipeline.driver_source", d, p.id,
                      std::string(kind) +
                          " driver has a same-pipeline child (not a source)");
        }
      }
    };
    for (int d : p.driver_nodes) check_driver(d, "standard");
    for (int d : p.inner_driver_nodes) check_driver(d, "inner");

    // child_pipelines must be exactly the pipelines whose root's parent
    // edge leaves this pipeline.
    for (int c : analysis.pipelines[p.id].child_pipelines) {
      if (c < 0 || c >= num_pipelines) {
        report->Add("pipeline.child_range", -1, p.id,
                    StringF("child pipeline %d out of range", c));
        continue;
      }
      const int child_root = analysis.pipelines[c].root_node;
      if (parent[child_root] < 0 ||
          analysis.pipeline_of_node[parent[child_root]] != p.id) {
        report->Add("pipeline.child_link", child_root, p.id,
                    StringF("child pipeline %d's root is not below this "
                            "pipeline",
                            c));
      }
    }
  }

  // Blocking edges and pipeline boundaries coincide.
  plan.root->Visit([&](const PlanNode& node) {
    for (size_t i = 0; i < node.children.size(); ++i) {
      const PlanNode& child = *node.children[i];
      const bool blocking = IsBlockingEdge(node, i);
      const bool boundary = analysis.pipeline_of_node[node.id] !=
                            analysis.pipeline_of_node[child.id];
      if (blocking != boundary) {
        report->Add("pipeline.blocking_edge", node.id, -1,
                    StringF("edge to child %d: IsBlockingEdge=%d but "
                            "pipeline boundary=%d",
                            child.id, blocking ? 1 : 0, boundary ? 1 : 0));
      }
      if (boundary &&
          analysis.pipelines[analysis.pipeline_of_node[child.id]].root_node !=
              child.id) {
        report->Add("pipeline.boundary_root", child.id, -1,
                    "blocked child is not the root of its pipeline");
      }
    }
  });

  // NL-inner bookkeeping.
  for (int id = 0; id < n; ++id) {
    const bool inner = analysis.on_nlj_inner_side[id];
    const int nlj = analysis.enclosing_nlj[id];
    if (inner != (nlj >= 0)) {
      report->Add("pipeline.nlj_flags", id, -1,
                  "on_nlj_inner_side and enclosing_nlj disagree");
      continue;
    }
    if (nlj >= 0) {
      if (nlj >= n || plan.node(nlj).type != OpType::kNestedLoopJoin) {
        report->Add("pipeline.nlj_ref", id, -1,
                    StringF("enclosing_nlj %d is not a Nested Loops join",
                            nlj));
      } else if (analysis.pipeline_of_node[nlj] !=
                 analysis.pipeline_of_node[id]) {
        report->Add("pipeline.nlj_pipeline", id, -1,
                    "enclosing NL join lies in a different pipeline");
      }
    }
  }
}

ValidationReport PlanValidator::Validate(const Plan& plan) const {
  ValidationReport report;
  CheckStructure(plan, &report);
  if (plan.root != nullptr) CheckAnnotations(plan, &report);
  return report;
}

ValidationReport PlanValidator::Validate(const Plan& plan,
                                         const PlanAnalysis& analysis) const {
  ValidationReport report = Validate(plan);
  if (plan.root != nullptr) CheckPipelines(plan, analysis, &report);
  return report;
}

}  // namespace lqs
