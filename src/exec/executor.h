#ifndef LQS_EXEC_EXECUTOR_H_
#define LQS_EXEC_EXECUTOR_H_

#include <functional>

#include "common/statusor.h"
#include "dmv/query_profile.h"
#include "exec/exec_context.h"
#include "exec/plan.h"

namespace lqs {

/// Outcome of running one query to completion.
struct ExecutionResult {
  uint64_t rows_returned = 0;
  double duration_ms = 0;     ///< total virtual time
  ProfileTrace trace;         ///< DMV snapshots + final counters
};

/// Runs a finalized plan to completion under the virtual clock, collecting
/// DMV snapshots every options.snapshot_interval_ms. Result rows are
/// discarded (decision-support queries in the paper's experiments run to
/// completion; the estimators only consume the trace).
StatusOr<ExecutionResult> ExecuteQuery(const Plan& plan, Catalog* catalog,
                                       const ExecOptions& options);

/// As ExecuteQuery but invokes `sink` on every result row (used by examples
/// and by correctness tests).
StatusOr<ExecutionResult> ExecuteQueryWithSink(
    const Plan& plan, Catalog* catalog, const ExecOptions& options,
    const std::function<void(const Row&)>& sink);

}  // namespace lqs

#endif  // LQS_EXEC_EXECUTOR_H_
