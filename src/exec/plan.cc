#include "exec/plan.h"

#include "common/stringf.h"

namespace lqs {

const char* JoinKindName(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner:
      return "Inner Join";
    case JoinKind::kLeftOuter:
      return "Left Outer Join";
    case JoinKind::kRightOuter:
      return "Right Outer Join";
    case JoinKind::kFullOuter:
      return "Full Outer Join";
    case JoinKind::kLeftSemi:
      return "Left Semi Join";
    case JoinKind::kLeftAnti:
      return "Left Anti Semi Join";
    case JoinKind::kRightSemi:
      return "Right Semi Join";
  }
  return "?";
}

void PlanNode::Visit(const std::function<void(const PlanNode&)>& fn) const {
  fn(*this);
  for (const auto& c : children) c->Visit(fn);
}

void PlanNode::VisitMutable(const std::function<void(PlanNode&)>& fn) {
  fn(*this);
  for (auto& c : children) c->VisitMutable(fn);
}

int PlanNode::CountNodes() const {
  int n = 1;
  for (const auto& c : children) n += c->CountNodes();
  return n;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->id = id;
  copy->type = type;
  copy->table_name = table_name;
  copy->index_name = index_name;
  if (seek_lo) copy->seek_lo = seek_lo->Clone();
  if (seek_hi) copy->seek_hi = seek_hi->Clone();
  if (pushed_predicate) copy->pushed_predicate = pushed_predicate->Clone();
  copy->bitmap_probe_column = bitmap_probe_column;
  copy->bitmap_source_id = bitmap_source_id;
  copy->rid_outer_column = rid_outer_column;
  copy->bitmap_key_column = bitmap_key_column;
  copy->constant_rows = constant_rows;
  if (predicate) copy->predicate = predicate->Clone();
  for (const auto& p : projections) copy->projections.push_back(p->Clone());
  copy->join_kind = join_kind;
  copy->outer_keys = outer_keys;
  copy->inner_keys = inner_keys;
  copy->buffered_outer = buffered_outer;
  copy->sort_columns = sort_columns;
  copy->top_n = top_n;
  copy->group_columns = group_columns;
  copy->aggregates = aggregates;
  copy->est_rows = est_rows;
  copy->est_cpu_ms = est_cpu_ms;
  copy->est_io_ms = est_io_ms;
  copy->est_rebinds = est_rebinds;
  copy->output_schema = output_schema;
  for (const auto& c : children) copy->children.push_back(c->Clone());
  return copy;
}

Plan Plan::Clone() const {
  Plan copy;
  copy.root = root->Clone();
  copy.nodes.resize(nodes.size());
  copy.root->Visit([&copy](const PlanNode& n) { copy.nodes[n.id] = &n; });
  return copy;
}

namespace {

DataType AggResultType(const AggSpec& agg, const Schema& input) {
  switch (agg.func) {
    case AggSpec::Func::kCount:
      return DataType::kInt64;
    case AggSpec::Func::kSum:
    case AggSpec::Func::kAvg:
      return DataType::kDouble;
    case AggSpec::Func::kMin:
    case AggSpec::Func::kMax:
      return agg.column >= 0 ? input.column(agg.column).type
                             : DataType::kInt64;
  }
  return DataType::kInt64;
}

/// Guards schema derivation against out-of-range column references (full
/// validation happens afterwards, but derivation itself must not index out
/// of bounds).
Status CheckInRange(const std::vector<int>& cols, size_t arity,
                    const char* what) {
  for (int c : cols) {
    if (c < 0 || static_cast<size_t>(c) >= arity) {
      return Status::InvalidArgument(std::string(what) +
                                     ": column index out of range");
    }
  }
  return Status::OK();
}

Status CheckExprInRange(const Expr* e, size_t arity, const char* what) {
  if (e == nullptr) return Status::OK();
  if (e->kind() == Expr::Kind::kColumn &&
      (e->column_index() < 0 ||
       static_cast<size_t>(e->column_index()) >= arity)) {
    return Status::InvalidArgument(std::string(what) +
                                   ": column reference out of range");
  }
  LQS_RETURN_IF_ERROR(CheckExprInRange(e->left(), arity, what));
  return CheckExprInRange(e->right(), arity, what);
}

const char* AggFuncName(AggSpec::Func func) {
  switch (func) {
    case AggSpec::Func::kCount:
      return "count";
    case AggSpec::Func::kSum:
      return "sum";
    case AggSpec::Func::kMin:
      return "min";
    case AggSpec::Func::kMax:
      return "max";
    case AggSpec::Func::kAvg:
      return "avg";
  }
  return "agg";
}

Status DeriveSchema(PlanNode& node, const Catalog& catalog) {
  for (auto& c : node.children) {
    LQS_RETURN_IF_ERROR(DeriveSchema(*c, catalog));
  }
  auto table_schema = [&](const std::string& name) -> const Schema* {
    const Table* t = catalog.GetTable(name);
    return t == nullptr ? nullptr : &t->schema();
  };

  switch (node.type) {
    case OpType::kTableScan:
    case OpType::kClusteredIndexScan:
    case OpType::kClusteredIndexSeek:
    case OpType::kIndexScan:
    case OpType::kColumnstoreScan:
    case OpType::kRidLookup: {
      const Schema* s = table_schema(node.table_name);
      if (s == nullptr)
        return Status::NotFound("plan references unknown table: " +
                                node.table_name);
      node.output_schema = *s;
      break;
    }
    case OpType::kIndexSeek: {
      // Nonclustered seek returns (key, rid).
      const Table* t = catalog.GetTable(node.table_name);
      if (t == nullptr)
        return Status::NotFound("plan references unknown table: " +
                                node.table_name);
      const OrderedIndex* idx = t->GetIndex(node.index_name);
      if (idx == nullptr)
        return Status::NotFound("plan references unknown index: " +
                                node.index_name + " on " + node.table_name);
      Schema s;
      s.AddColumn({t->schema().column(idx->key_column()).name,
                   t->schema().column(idx->key_column()).type});
      s.AddColumn({"rid", DataType::kInt64});
      node.output_schema = s;
      break;
    }
    case OpType::kConstantScan: {
      Schema s;
      size_t arity = node.constant_rows.empty() ? 0
                                                : node.constant_rows[0].size();
      for (size_t i = 0; i < arity; ++i) {
        DataType t = node.constant_rows[0][i].type();
        s.AddColumn({"c" + std::to_string(i), t});
      }
      node.output_schema = s;
      break;
    }
    case OpType::kFilter:
    case OpType::kTop:
    case OpType::kSegment:
    case OpType::kBitmapCreate:
    case OpType::kEagerSpool:
    case OpType::kLazySpool:
    case OpType::kGatherStreams:
    case OpType::kRepartitionStreams:
    case OpType::kDistributeStreams:
    case OpType::kSort:
    case OpType::kTopNSort:
    case OpType::kDistinctSort:
    case OpType::kConcatenation:
      if (node.children.empty())
        return Status::InvalidArgument("operator requires a child");
      node.output_schema = node.child(0)->output_schema;
      break;
    case OpType::kComputeScalar: {
      Schema s = node.child(0)->output_schema;
      int i = 0;
      for (const auto& p : node.projections) {
        LQS_RETURN_IF_ERROR(
            CheckExprInRange(p.get(), s.num_columns(), "projection"));
        s.AddColumn({"expr" + std::to_string(i++),
                     p->ResultType(node.child(0)->output_schema)});
      }
      node.output_schema = s;
      break;
    }
    case OpType::kHashJoin:
    case OpType::kMergeJoin:
    case OpType::kNestedLoopJoin: {
      if (node.children.size() != 2)
        return Status::InvalidArgument("join requires two children");
      const Schema& outer = node.child(0)->output_schema;
      const Schema& inner = node.child(1)->output_schema;
      Schema s;
      switch (node.join_kind) {
        case JoinKind::kLeftSemi:
        case JoinKind::kLeftAnti:
          s = outer;
          break;
        case JoinKind::kRightSemi:
          s = inner;
          break;
        default:
          s = outer;
          for (const auto& c : inner.columns()) s.AddColumn(c);
          break;
      }
      node.output_schema = s;
      break;
    }
    case OpType::kHashAggregate:
    case OpType::kStreamAggregate: {
      const Schema& in = node.child(0)->output_schema;
      LQS_RETURN_IF_ERROR(
          CheckInRange(node.group_columns, in.num_columns(), "group by"));
      for (const AggSpec& a : node.aggregates) {
        if (a.column >= 0 &&
            static_cast<size_t>(a.column) >= in.num_columns()) {
          return Status::InvalidArgument("aggregate column out of range");
        }
      }
      Schema s;
      for (int g : node.group_columns) s.AddColumn(in.column(g));
      int i = 0;
      for (const auto& agg : node.aggregates) {
        std::string name = std::string(AggFuncName(agg.func)) +
                           std::to_string(i++);
        s.AddColumn({name, AggResultType(agg, in)});
      }
      node.output_schema = s;
      break;
    }
    case OpType::kNumOpTypes:
      return Status::InvalidArgument("invalid op type");
  }
  return Status::OK();
}

Status CheckExprColumns(const Expr* e, size_t arity, const char* what) {
  if (e == nullptr) return Status::OK();
  if (e->kind() == Expr::Kind::kColumn &&
      (e->column_index() < 0 ||
       static_cast<size_t>(e->column_index()) >= arity)) {
    return Status::InvalidArgument(std::string("column reference out of "
                                               "range in ") +
                                   what);
  }
  LQS_RETURN_IF_ERROR(CheckExprColumns(e->left(), arity, what));
  return CheckExprColumns(e->right(), arity, what);
}

Status CheckColumns(const std::vector<int>& cols, size_t arity,
                    const char* what) {
  for (int c : cols) {
    if (c < 0 || static_cast<size_t>(c) >= arity) {
      return Status::InvalidArgument(std::string("column index out of range "
                                                 "in ") +
                                     what);
    }
  }
  return Status::OK();
}

/// Validates every column reference in the plan against the derived
/// schemas, so index-arithmetic mistakes in hand-built plans fail fast.
Status ValidatePlan(const PlanNode& node) {
  for (const auto& c : node.children) LQS_RETURN_IF_ERROR(ValidatePlan(*c));
  const size_t arity = node.output_schema.num_columns();
  const size_t child0_arity =
      node.children.empty() ? 0 : node.child(0)->output_schema.num_columns();

  // Pushed predicates evaluate against the base table row == the scan's own
  // output schema.
  LQS_RETURN_IF_ERROR(CheckExprColumns(node.pushed_predicate.get(),
                                       IsScan(node.type) ? arity : arity,
                                       "pushed predicate"));
  if (node.bitmap_probe_column >= 0 &&
      static_cast<size_t>(node.bitmap_probe_column) >= arity) {
    return Status::InvalidArgument("bitmap probe column out of range");
  }
  switch (node.type) {
    case OpType::kFilter:
      LQS_RETURN_IF_ERROR(CheckExprColumns(node.predicate.get(), child0_arity,
                                           "filter predicate"));
      break;
    case OpType::kComputeScalar:
      for (const auto& p : node.projections) {
        LQS_RETURN_IF_ERROR(
            CheckExprColumns(p.get(), child0_arity, "projection"));
      }
      break;
    case OpType::kHashJoin:
    case OpType::kMergeJoin: {
      const size_t a0 = node.child(0)->output_schema.num_columns();
      const size_t a1 = node.child(1)->output_schema.num_columns();
      LQS_RETURN_IF_ERROR(CheckColumns(node.outer_keys, a0, "outer keys"));
      LQS_RETURN_IF_ERROR(CheckColumns(node.inner_keys, a1, "inner keys"));
      LQS_RETURN_IF_ERROR(
          CheckExprColumns(node.predicate.get(), a0 + a1, "join residual"));
      break;
    }
    case OpType::kNestedLoopJoin: {
      const size_t a0 = node.child(0)->output_schema.num_columns();
      const size_t a1 = node.child(1)->output_schema.num_columns();
      LQS_RETURN_IF_ERROR(
          CheckExprColumns(node.predicate.get(), a0 + a1, "join residual"));
      break;
    }
    case OpType::kSort:
    case OpType::kTopNSort:
    case OpType::kDistinctSort:
      LQS_RETURN_IF_ERROR(
          CheckColumns(node.sort_columns, child0_arity, "sort columns"));
      break;
    case OpType::kHashAggregate:
    case OpType::kStreamAggregate: {
      LQS_RETURN_IF_ERROR(
          CheckColumns(node.group_columns, child0_arity, "group columns"));
      for (const AggSpec& a : node.aggregates) {
        if (a.column >= 0 &&
            static_cast<size_t>(a.column) >= child0_arity) {
          return Status::InvalidArgument("aggregate column out of range");
        }
      }
      break;
    }
    case OpType::kSegment:
      LQS_RETURN_IF_ERROR(
          CheckColumns(node.group_columns, child0_arity, "segment columns"));
      break;
    case OpType::kBitmapCreate:
      if (node.bitmap_key_column < 0 ||
          static_cast<size_t>(node.bitmap_key_column) >= child0_arity) {
        return Status::InvalidArgument("bitmap key column out of range");
      }
      break;
    default:
      break;
  }
  return Status::OK();
}

/// Outer-column references are bound by the executor only on the inner side
/// of a Nested Loops join; anywhere else Eval would be handed a null outer
/// row. Rejecting such plans here keeps the hot evaluation path free of
/// per-row binding checks.
Status CheckOuterBindings(const PlanNode& node, bool outer_available) {
  auto check = [&](const Expr* e, const char* what) -> Status {
    if (e != nullptr && !outer_available && e->ContainsOuterColumn()) {
      return Status::InvalidArgument(
          std::string(what) + " of " + OpTypeName(node.type) +
          " references an outer column outside a Nested Loops inner side");
    }
    return Status::OK();
  };
  LQS_RETURN_IF_ERROR(check(node.seek_lo.get(), "seek bound"));
  LQS_RETURN_IF_ERROR(check(node.seek_hi.get(), "seek bound"));
  LQS_RETURN_IF_ERROR(check(node.pushed_predicate.get(), "pushed predicate"));
  LQS_RETURN_IF_ERROR(check(node.predicate.get(), "predicate"));
  for (const auto& p : node.projections) {
    LQS_RETURN_IF_ERROR(check(p.get(), "projection"));
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    const bool child_outer =
        outer_available ||
        (node.type == OpType::kNestedLoopJoin && i == 1);
    LQS_RETURN_IF_ERROR(CheckOuterBindings(*node.children[i], child_outer));
  }
  return Status::OK();
}

}  // namespace

StatusOr<Plan> FinalizePlan(std::unique_ptr<PlanNode> root,
                            const Catalog& catalog) {
  if (root == nullptr) return Status::InvalidArgument("null plan");
  LQS_RETURN_IF_ERROR(DeriveSchema(*root, catalog));
  LQS_RETURN_IF_ERROR(ValidatePlan(*root));
  LQS_RETURN_IF_ERROR(CheckOuterBindings(*root, /*outer_available=*/false));
  Plan plan;
  plan.root = std::move(root);
  int next_id = 0;
  plan.root->VisitMutable([&next_id](PlanNode& n) { n.id = next_id++; });
  plan.nodes.resize(next_id);
  plan.root->Visit([&plan](const PlanNode& n) { plan.nodes[n.id] = &n; });
  return plan;
}

namespace {

void PrintNode(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(StringF("[%d] %s", node.id, OpTypeName(node.type)));
  if (IsJoin(node.type)) {
    out->append(" (");
    out->append(JoinKindName(node.join_kind));
    out->append(")");
  }
  if (!node.table_name.empty()) {
    out->append(" [" + node.table_name +
                (node.index_name.empty() ? "" : "." + node.index_name) + "]");
  }
  if (node.pushed_predicate) {
    out->append(" push=" + node.pushed_predicate->ToString());
  }
  if (node.bitmap_source_id >= 0) {
    out->append(StringF(" probe_bitmap=%d", node.bitmap_source_id));
  }
  out->append(StringF("  est_rows=%.0f cpu=%.1fms io=%.1fms", node.est_rows,
                      node.est_cpu_ms, node.est_io_ms));
  out->append("\n");
  for (const auto& c : node.children) PrintNode(*c, depth + 1, out);
}

}  // namespace

std::string PlanToString(const Plan& plan) {
  std::string out;
  PrintNode(*plan.root, 0, &out);
  return out;
}

}  // namespace lqs
