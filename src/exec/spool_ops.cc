#include "exec/cost_constants.h"
#include "exec/operators.h"

namespace lqs {

// ---------------------------------------------------------------------------
// EagerSpoolOp
// ---------------------------------------------------------------------------

EagerSpoolOp::EagerSpoolOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status EagerSpoolOp::OpenImpl() {
  cached_ = false;
  cache_.clear();
  cursor_ = 0;
  return child(0)->Open();
}

Status EagerSpoolOp::RebindImpl() {
  // Replays the cache; the child is not re-executed.
  cursor_ = 0;
  return Status::OK();
}

StatusOr<bool> EagerSpoolOp::GetNextImpl(Row* out) {
  if (!cached_) {
    // Blocking: materialize the entire input on first demand.
    Row row;
    while (true) {
      auto got = child(0)->GetNext(&row);
      if (!got.ok()) return got.status();
      if (!got.value()) break;
      ChargeCpu(cost::kCpuSpoolWriteRowMs);
      cache_.push_back(std::move(row));
    }
    cached_ = true;
  }
  if (cursor_ >= cache_.size()) return false;
  ChargeCpu(cost::kCpuSpoolReadRowMs);
  *out = cache_[cursor_++];
  return true;
}

// ---------------------------------------------------------------------------
// LazySpoolOp
// ---------------------------------------------------------------------------

LazySpoolOp::LazySpoolOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status LazySpoolOp::OpenImpl() {
  child_eof_ = false;
  cache_.clear();
  cursor_ = 0;
  return child(0)->Open();
}

Status LazySpoolOp::RebindImpl() {
  // Replay what is cached; continue pulling the child afterwards if it was
  // not exhausted on the previous binding.
  cursor_ = 0;
  return Status::OK();
}

StatusOr<bool> LazySpoolOp::GetNextImpl(Row* out) {
  if (cursor_ < cache_.size()) {
    ChargeCpu(cost::kCpuSpoolReadRowMs);
    *out = cache_[cursor_++];
    return true;
  }
  if (child_eof_) return false;
  Row row;
  auto got = child(0)->GetNext(&row);
  if (!got.ok()) return got.status();
  if (!got.value()) {
    child_eof_ = true;
    return false;
  }
  ChargeCpu(cost::kCpuSpoolWriteRowMs);
  cache_.push_back(row);
  ++cursor_;
  *out = std::move(row);
  return true;
}

}  // namespace lqs
