#ifndef LQS_EXEC_COST_CONSTANTS_H_
#define LQS_EXEC_COST_CONSTANTS_H_

namespace lqs {

/// Virtual-time cost constants, in milliseconds, shared by the executor
/// (which charges actual virtual time) and the optimizer cost model (which
/// predicts cost from estimated cardinalities). Sharing the constants means
/// optimizer cost error stems from cardinality error — exactly the situation
/// the paper's techniques target (§4.1, §4.6) — rather than from an
/// arbitrarily mis-specified cost model.
///
/// Relative magnitudes are calibrated to SQL Server-like behaviour: random
/// I/O ≫ sequential I/O per row; exchange rows cost several times a scan
/// row (producing the Figure 8 lag); batch mode is an order of magnitude
/// cheaper per row than row mode (§4.7).
namespace cost {

// --- I/O ---
inline constexpr double kIoSequentialPageMs = 0.50;  ///< heap/index page, scan order
inline constexpr double kIoRandomPageMs = 2.00;      ///< seek / RID lookup page
inline constexpr double kIoSegmentMs = 0.60;         ///< columnstore segment
inline constexpr double kIoSpillPageMs = 0.80;       ///< spill write+read per page

// --- Row-mode CPU, per row ---
inline constexpr double kCpuScanRowMs = 0.0010;
inline constexpr double kCpuPredNodeMs = 0.00015;  ///< per expression node
inline constexpr double kCpuFilterRowMs = 0.0004;
inline constexpr double kCpuComputeRowMs = 0.0005;  ///< per projection
inline constexpr double kCpuSeekMs = 0.0040;        ///< B-tree descend per seek
inline constexpr double kCpuHashBuildRowMs = 0.0025;
inline constexpr double kCpuHashProbeRowMs = 0.0015;
inline constexpr double kCpuSortRowMs = 0.0008;     ///< per row per log2(n) level
inline constexpr double kCpuSortInputRowMs = 0.0010;
inline constexpr double kCpuMergeRowMs = 0.0012;
inline constexpr double kCpuNljRowMs = 0.0008;
inline constexpr double kCpuAggInputRowMs = 0.0020;
inline constexpr double kCpuAggOutputRowMs = 0.0010;
inline constexpr double kCpuStreamAggRowMs = 0.0012;
inline constexpr double kCpuExchangeRowMs = 0.0040;
inline constexpr double kCpuExchangeBufferRowMs = 0.0005;
inline constexpr double kCpuSpoolWriteRowMs = 0.0015;
inline constexpr double kCpuSpoolReadRowMs = 0.0005;
inline constexpr double kCpuRowPassMs = 0.0002;  ///< trivial pass-through ops
inline constexpr double kCpuBitmapInsertRowMs = 0.0006;
inline constexpr double kCpuBitmapProbeRowMs = 0.0003;

// --- Batch mode (§4.7) ---
inline constexpr double kCpuBatchRowMs = 0.00012;

/// Rows that fit in operator memory before Sort/Hash spill to disk.
inline constexpr unsigned long long kMemoryRows = 1ULL << 16;

}  // namespace cost
}  // namespace lqs

#endif  // LQS_EXEC_COST_CONSTANTS_H_
