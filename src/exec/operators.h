#ifndef LQS_EXEC_OPERATORS_H_
#define LQS_EXEC_OPERATORS_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "storage/columnstore.h"
#include "storage/table.h"

namespace lqs {

// ---------------------------------------------------------------------------
// Leaf access paths (scan_ops.cc)
// ---------------------------------------------------------------------------

/// Heap scan (Table Scan) and Clustered Index Scan (the heap is kept in
/// clustered order, so both iterate rows in storage order). Supports pushed
/// predicates and bitmap probes evaluated "inside the storage engine" (§4.3).
class TableScanOp : public Operator {
 public:
  TableScanOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status ResetImpl() override;

 private:
  const Table* table_ = nullptr;
  uint64_t next_row_ = 0;
};

/// Range scan over the clustered order of a table (Clustered Index Seek).
/// Seek bounds may reference the enclosing NL join's outer row.
class ClusteredIndexSeekOp : public Operator {
 public:
  ClusteredIndexSeekOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status ResetImpl() override;

 private:
  const Table* table_ = nullptr;
  uint64_t next_row_ = 0;
  uint64_t end_row_ = 0;
  uint64_t last_page_ = UINT64_MAX;
};

/// Ordered scan over a secondary index; outputs full base rows in key order
/// (treated as covering). Used to feed Merge Joins without an explicit sort.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status ResetImpl() override;

 private:
  const Table* table_ = nullptr;
  const OrderedIndex* index_ = nullptr;
  uint64_t next_entry_ = 0;
};

/// Nonclustered Index Seek: equality/range lookup returning (key, rid) pairs.
class IndexSeekOp : public Operator {
 public:
  IndexSeekOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status ResetImpl() override;

 private:
  const Table* table_ = nullptr;
  const OrderedIndex* index_ = nullptr;
  uint64_t next_entry_ = 0;
  uint64_t end_entry_ = 0;
  uint64_t last_page_ = UINT64_MAX;
};

/// Fetches one base row per outer binding, addressed by a rid column of the
/// outer row (the lookup side of a bookmark-lookup plan).
class RidLookupOp : public Operator {
 public:
  RidLookupOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status ResetImpl() override;

 private:
  const Table* table_ = nullptr;
  bool done_ = false;
};

/// Emits the plan's constant rows.
class ConstantScanOp : public Operator {
 public:
  ConstantScanOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status ResetImpl() override;

 private:
  size_t next_ = 0;
};

/// Batch-mode scan over a columnstore index (§4.7): processes one column
/// segment at a time, applies segment elimination for pushed predicates, and
/// maintains segment_read_count / segment_total_count in the DMV profile.
class ColumnstoreScanOp : public Operator {
 public:
  ColumnstoreScanOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;

 private:
  const Table* table_ = nullptr;
  const ColumnstoreIndex* index_ = nullptr;
  uint64_t next_segment_ = 0;
  std::deque<Row> batch_;
  // Pushed predicate decomposed for segment elimination (when possible).
  bool eliminable_ = false;
  int elim_column_ = -1;
  CompareOp elim_op_ = CompareOp::kEq;
  Value elim_literal_;
};

// ---------------------------------------------------------------------------
// Row-mode unary operators (row_ops.cc)
// ---------------------------------------------------------------------------

class FilterOp : public Operator {
 public:
  FilterOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
};

class ComputeScalarOp : public Operator {
 public:
  ComputeScalarOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
};

class TopOp : public Operator {
 public:
  TopOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status ResetImpl() override;

 private:
  int64_t emitted_ = 0;
};

/// Detects group boundaries over sorted input (pass-through for progress
/// purposes; SQL Server uses it under ranking functions).
class SegmentOp : public Operator {
 public:
  SegmentOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status ResetImpl() override;

 private:
  bool has_prev_ = false;
  Row prev_;
};

class ConcatenationOp : public Operator {
 public:
  ConcatenationOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status ResetImpl() override;

 private:
  size_t current_child_ = 0;
};

/// Populates a semi-join-reduction bitmap (consumed by scans via
/// ExecContext::BitmapMayContain) while passing its input through. Sits on
/// the build side of a Hash Join (§4.3, Figure 6).
class BitmapCreateOp : public Operator {
 public:
  BitmapCreateOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
};

// ---------------------------------------------------------------------------
// Sorts (sort_ops.cc) — blocking (§4.5)
// ---------------------------------------------------------------------------

/// Full sort. Consumes its input in an input phase (first GetNext), charges
/// n·log2(n) comparison CPU plus spill I/O when the input exceeds memory,
/// then streams sorted output.
class SortOp : public Operator {
 public:
  SortOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status RebindImpl() override;

 private:
  Status ConsumeAndSort();
  bool input_done_ = false;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
  // Distinct Sort: emit only the first row of each sort-key group.
  bool distinct_;
};

/// Top-N sort: bounded heap over the input, emits N smallest.
class TopNSortOp : public Operator {
 public:
  TopNSortOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status RebindImpl() override;

 private:
  bool input_done_ = false;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
};

// ---------------------------------------------------------------------------
// Joins (join_ops.cc)
// ---------------------------------------------------------------------------

/// Hash Match join. children[0] = build ("outer" in Appendix A),
/// children[1] = probe ("inner"). Blocking w.r.t. the build input; the probe
/// side streams. Supports all JoinKind values.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status RebindImpl() override;

 private:
  struct KeyHash {
    size_t operator()(const std::vector<Value>& key) const;
  };
  struct KeyEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };
  struct BuildGroup {
    std::vector<Row> rows;
    std::vector<bool> matched;  // for semi/anti/full-outer
  };

  Status BuildPhase();
  std::vector<Value> MakeKey(const Row& row, const std::vector<int>& cols);

  bool build_done_ = false;
  std::unordered_map<std::vector<Value>, BuildGroup, KeyHash, KeyEq> table_;
  // Probe state.
  bool probe_done_ = false;
  Row probe_row_;
  BuildGroup* current_group_ = nullptr;
  size_t group_pos_ = 0;
  // Post-probe emission of unmatched build rows (semi/anti/full outer).
  bool emitting_build_ = false;
  decltype(table_)::iterator build_it_;
  size_t build_pos_ = 0;
};

/// Merge Join over inputs sorted on the join keys; buffers one inner key
/// group to support many-to-many matches. Supports inner, left outer and
/// left semi kinds.
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status RebindImpl() override;

 private:
  int CompareKeys(const Row& outer, const Row& inner) const;
  StatusOr<bool> AdvanceOuter();
  StatusOr<bool> AdvanceInner();

  bool outer_valid_ = false;
  bool inner_valid_ = false;
  bool inner_eof_ = false;
  Row outer_row_;
  Row inner_row_;
  std::vector<Row> inner_group_;  // buffered rows equal to current group key
  bool group_loaded_ = false;
  size_t group_pos_ = 0;
  bool outer_matched_ = false;
};

/// Nested Loops join; children[1] is re-opened (Rebind) per outer row, with
/// the outer row bound as a correlated parameter. With buffered_outer set,
/// prefetches batches of outer rows first — the §4.4 semi-blocking
/// behaviour that breaks naive driver-node assumptions.
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status CloseImpl() override;
  Status RebindImpl() override;

 private:
  StatusOr<bool> NextOuterRow();
  Status StartInner();
  void FinishInner();

  bool outer_eof_ = false;
  std::deque<Row> outer_buffer_;
  Row outer_row_;
  bool inner_ever_opened_ = false;  // inner Open deferred to first binding
  bool inner_open_ = false;  // binding pushed for current outer row
  bool outer_matched_ = false;
};

// ---------------------------------------------------------------------------
// Aggregation (agg_ops.cc)
// ---------------------------------------------------------------------------

/// Hash Match aggregate: blocking — consumes the whole input into a hash of
/// accumulators, then streams groups (the Figure 10/11 subject).
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status RebindImpl() override;

 private:
  struct KeyHash {
    size_t operator()(const std::vector<Value>& key) const;
  };
  struct KeyEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };
  struct Accumulator {
    int64_t count = 0;
    double sum = 0;
    bool has_value = false;
    Value min;
    Value max;
  };

  Status InputPhase();
  Row FinalizeGroup(const std::vector<Value>& key,
                    const std::vector<Accumulator>& accs) const;

  bool input_done_ = false;
  std::unordered_map<std::vector<Value>, std::vector<Accumulator>, KeyHash,
                     KeyEq>
      groups_;
  std::vector<Row> output_;
  size_t cursor_ = 0;
};

/// Stream Aggregate over group-sorted input: pipelined, emits each group as
/// it completes.
class StreamAggregateOp : public Operator {
 public:
  StreamAggregateOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;

 private:
  struct Accumulator {
    int64_t count = 0;
    double sum = 0;
    bool has_value = false;
    Value min;
    Value max;
  };
  void Accumulate(const Row& row);
  Row FinalizeGroup() const;

  bool input_eof_ = false;
  bool group_active_ = false;
  bool emitted_empty_scalar_ = false;
  std::vector<Value> group_key_;
  std::vector<Accumulator> accs_;
  Row pending_;
  bool has_pending_ = false;
};

// ---------------------------------------------------------------------------
// Exchange / Parallelism (exchange_ops.cc) — semi-blocking (§4.4)
// ---------------------------------------------------------------------------

/// All three Parallelism variants (Gather/Repartition/Distribute Streams):
/// pulls its child in bursts of exchange_buffer_rows into a row buffer and
/// emits one buffered row per GetNext, with higher per-row overhead than
/// storage scans — reproducing the Figure 8 child/exchange K_i divergence.
class ExchangeOp : public Operator {
 public:
  ExchangeOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;

 private:
  bool child_eof_ = false;
  std::deque<Row> buffer_;
};

// ---------------------------------------------------------------------------
// Spools (spool_ops.cc)
// ---------------------------------------------------------------------------

/// Eager (Table) Spool: blocking cache of the whole input; rebinds replay
/// the cache without re-executing the child.
class EagerSpoolOp : public Operator {
 public:
  EagerSpoolOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status RebindImpl() override;

 private:
  bool cached_ = false;
  std::vector<Row> cache_;
  size_t cursor_ = 0;
};

/// Lazy Spool: caches rows as first read; rebinds replay what is cached and
/// continue pulling the child if it was not exhausted.
class LazySpoolOp : public Operator {
 public:
  LazySpoolOp(const PlanNode& node, ExecContext* ctx);

 protected:
  Status OpenImpl() override;
  StatusOr<bool> GetNextImpl(Row* out) override;
  Status RebindImpl() override;

 private:
  bool child_eof_ = false;
  std::vector<Row> cache_;
  size_t cursor_ = 0;
};

}  // namespace lqs

#endif  // LQS_EXEC_OPERATORS_H_
