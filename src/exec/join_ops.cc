#include "exec/cost_constants.h"
#include "exec/operators.h"

namespace lqs {

namespace {

/// Concatenates outer ++ inner into a fresh row.
Row Combine(const Row& outer, const Row& inner) {
  Row out;
  out.reserve(outer.size() + inner.size());
  out.insert(out.end(), outer.begin(), outer.end());
  out.insert(out.end(), inner.begin(), inner.end());
  return out;
}

/// Pads a preserved row with default values for the missing side (we model
/// SQL NULLs as type-default values; progress estimation is insensitive to
/// the payload of padded rows).
Row PadRight(const Row& preserved, size_t missing_arity) {
  Row out = preserved;
  out.resize(out.size() + missing_arity);
  return out;
}

Row PadLeft(size_t missing_arity, const Row& preserved) {
  Row out(missing_arity);
  out.insert(out.end(), preserved.begin(), preserved.end());
  return out;
}

size_t HashKey(const std::vector<Value>& key) {
  size_t h = 0xcbf29ce484222325ULL;
  for (const Value& v : key) {
    h ^= v.Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool KeysEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// HashJoinOp
// ---------------------------------------------------------------------------

size_t HashJoinOp::KeyHash::operator()(const std::vector<Value>& key) const {
  return HashKey(key);
}

bool HashJoinOp::KeyEq::operator()(const std::vector<Value>& a,
                                   const std::vector<Value>& b) const {
  return KeysEqual(a, b);
}

HashJoinOp::HashJoinOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status HashJoinOp::OpenImpl() {
  build_done_ = false;
  probe_done_ = false;
  table_.clear();
  current_group_ = nullptr;
  emitting_build_ = false;
  LQS_RETURN_IF_ERROR(child(0)->Open());
  return child(1)->Open();
}

Status HashJoinOp::RebindImpl() {
  return Status::Unimplemented("rebind of Hash Join");
}

std::vector<Value> HashJoinOp::MakeKey(const Row& row,
                                       const std::vector<int>& cols) {
  std::vector<Value> key;
  key.reserve(cols.size());
  for (int c : cols) key.push_back(row[c]);
  return key;
}

Status HashJoinOp::BuildPhase() {
  // Blocking build phase (§4.5): the first output row requires the entire
  // build (outer) input to be consumed and hashed.
  Row row;
  while (true) {
    auto got = child(0)->GetNext(&row);
    if (!got.ok()) return got.status();
    if (!got.value()) break;
    ChargeCpu(cost::kCpuHashBuildRowMs);
    BuildGroup& group = table_[MakeKey(row, node_.outer_keys)];
    group.rows.push_back(std::move(row));
    group.matched.push_back(false);
  }
  uint64_t built = 0;
  for (const auto& [key, group] : table_) built += group.rows.size();
  if (built > ctx_->options().memory_rows) {
    const double pages =
        static_cast<double>(built) / static_cast<double>(kRowsPerPage);
    const double total_ms = 2.0 * pages * cost::kIoSpillPageMs;
    const int chunks = std::max(1, static_cast<int>(pages / 16));
    for (int i = 0; i < chunks; ++i) ChargeIo(total_ms / chunks);
  }
  build_done_ = true;
  return Status::OK();
}

StatusOr<bool> HashJoinOp::GetNextImpl(Row* out) {
  if (!build_done_) LQS_RETURN_IF_ERROR(BuildPhase());
  const size_t outer_arity = node_.child(0)->output_schema.num_columns();
  const size_t inner_arity = node_.child(1)->output_schema.num_columns();
  const JoinKind kind = node_.join_kind;
  const double residual_cost =
      node_.predicate == nullptr
          ? 0.0
          : node_.predicate->NodeCount() * cost::kCpuPredNodeMs;

  while (true) {
    // Phase 3: after the probe input is exhausted, emit preserved/semi/anti
    // build rows for the kinds that need them.
    if (emitting_build_) {
      while (build_it_ != table_.end()) {
        BuildGroup& group = build_it_->second;
        while (build_pos_ < group.rows.size()) {
          const size_t i = build_pos_++;
          ChargeCpu(cost::kCpuRowPassMs);
          const bool matched = group.matched[i];
          switch (kind) {
            case JoinKind::kLeftSemi:
              if (matched) {
                *out = group.rows[i];
                return true;
              }
              break;
            case JoinKind::kLeftAnti:
              if (!matched) {
                *out = group.rows[i];
                return true;
              }
              break;
            case JoinKind::kLeftOuter:
            case JoinKind::kFullOuter:
              if (!matched) {
                *out = PadRight(group.rows[i], inner_arity);
                return true;
              }
              break;
            default:
              break;
          }
        }
        ++build_it_;
        build_pos_ = 0;
      }
      return false;
    }

    // Phase 2a: drain matches of the current probe row.
    if (current_group_ != nullptr) {
      bool emitted_probe = false;
      while (group_pos_ < current_group_->rows.size()) {
        const size_t i = group_pos_++;
        ChargeCpu(cost::kCpuHashProbeRowMs + residual_cost);
        Row combined = Combine(current_group_->rows[i], probe_row_);
        if (node_.predicate != nullptr &&
            !node_.predicate->EvalBool(combined, ctx_->outer_row())) {
          continue;
        }
        current_group_->matched[i] = true;
        switch (kind) {
          case JoinKind::kInner:
          case JoinKind::kLeftOuter:
          case JoinKind::kRightOuter:
          case JoinKind::kFullOuter:
            *out = std::move(combined);
            return true;
          case JoinKind::kRightSemi:
            // One output per probe row with >= 1 match.
            current_group_ = nullptr;
            *out = probe_row_;
            return true;
          case JoinKind::kLeftSemi:
          case JoinKind::kLeftAnti:
            // Matches only mark build rows; output happens in phase 3.
            emitted_probe = true;
            break;
        }
      }
      (void)emitted_probe;
      current_group_ = nullptr;
      continue;
    }

    // Phase 2b: pull the next probe row.
    if (probe_done_) return false;
    auto got = child(1)->GetNext(&probe_row_);
    if (!got.ok()) return got.status();
    if (!got.value()) {
      probe_done_ = true;
      if (kind == JoinKind::kLeftSemi || kind == JoinKind::kLeftAnti ||
          kind == JoinKind::kLeftOuter || kind == JoinKind::kFullOuter) {
        emitting_build_ = true;
        build_it_ = table_.begin();
        build_pos_ = 0;
        continue;
      }
      return false;
    }
    ChargeCpu(cost::kCpuHashProbeRowMs);
    auto it = table_.find(MakeKey(probe_row_, node_.inner_keys));
    if (it == table_.end()) {
      if (kind == JoinKind::kRightOuter || kind == JoinKind::kFullOuter) {
        *out = PadLeft(outer_arity, probe_row_);
        return true;
      }
      continue;
    }
    current_group_ = &it->second;
    group_pos_ = 0;
    // Right-outer/full-outer must emit the probe row padded when no build
    // row survives the residual; detect by checking after the group drains.
    if (kind == JoinKind::kRightOuter || kind == JoinKind::kFullOuter) {
      bool any = false;
      if (node_.predicate == nullptr) {
        any = !current_group_->rows.empty();
      } else {
        for (const Row& build_row : current_group_->rows) {
          Row combined = Combine(build_row, probe_row_);
          if (node_.predicate->EvalBool(combined, ctx_->outer_row())) {
            any = true;
            break;
          }
        }
      }
      if (!any) {
        current_group_ = nullptr;
        *out = PadLeft(outer_arity, probe_row_);
        return true;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// MergeJoinOp
// ---------------------------------------------------------------------------

MergeJoinOp::MergeJoinOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status MergeJoinOp::OpenImpl() {
  outer_valid_ = false;
  inner_valid_ = false;
  inner_eof_ = false;
  group_loaded_ = false;
  inner_group_.clear();
  outer_matched_ = false;
  LQS_RETURN_IF_ERROR(child(0)->Open());
  LQS_RETURN_IF_ERROR(child(1)->Open());
  LQS_ASSIGN_OR_RETURN(outer_valid_, AdvanceOuter());
  LQS_ASSIGN_OR_RETURN(inner_valid_, AdvanceInner());
  return Status::OK();
}

Status MergeJoinOp::RebindImpl() {
  return Status::Unimplemented("rebind of Merge Join");
}

int MergeJoinOp::CompareKeys(const Row& outer, const Row& inner) const {
  for (size_t i = 0; i < node_.outer_keys.size(); ++i) {
    int cmp = outer[node_.outer_keys[i]].Compare(inner[node_.inner_keys[i]]);
    if (cmp != 0) return cmp;
  }
  return 0;
}

StatusOr<bool> MergeJoinOp::AdvanceOuter() {
  auto got = child(0)->GetNext(&outer_row_);
  if (!got.ok()) return got;
  if (got.value()) ChargeCpu(cost::kCpuMergeRowMs);
  return got;
}

StatusOr<bool> MergeJoinOp::AdvanceInner() {
  if (inner_eof_) return false;
  auto got = child(1)->GetNext(&inner_row_);
  if (!got.ok()) return got;
  if (!got.value()) inner_eof_ = true;
  else ChargeCpu(cost::kCpuMergeRowMs);
  return got;
}

StatusOr<bool> MergeJoinOp::GetNextImpl(Row* out) {
  const JoinKind kind = node_.join_kind;
  const size_t inner_arity = node_.child(1)->output_schema.num_columns();
  const double residual_cost =
      node_.predicate == nullptr
          ? 0.0
          : node_.predicate->NodeCount() * cost::kCpuPredNodeMs;

  while (true) {
    if (!outer_valid_) return false;

    if (group_loaded_) {
      // Emit combinations of the current outer row with the buffered inner
      // key group.
      while (group_pos_ < inner_group_.size()) {
        const size_t i = group_pos_++;
        ChargeCpu(cost::kCpuMergeRowMs + residual_cost);
        Row combined = Combine(outer_row_, inner_group_[i]);
        if (node_.predicate != nullptr &&
            !node_.predicate->EvalBool(combined, ctx_->outer_row())) {
          continue;
        }
        outer_matched_ = true;
        switch (kind) {
          case JoinKind::kInner:
          case JoinKind::kLeftOuter:
            *out = std::move(combined);
            return true;
          case JoinKind::kLeftSemi:
            group_pos_ = inner_group_.size();
            *out = outer_row_;
            return true;
          default:
            return Status::Unimplemented("merge join kind");
        }
      }
      // Group drained for this outer row.
      const bool was_matched = outer_matched_;
      Row prev_outer = outer_row_;
      LQS_ASSIGN_OR_RETURN(outer_valid_, AdvanceOuter());
      outer_matched_ = false;
      if (outer_valid_ && !inner_group_.empty() &&
          CompareKeys(outer_row_, inner_group_[0]) == 0) {
        group_pos_ = 0;  // same key: replay the buffered group
      } else {
        group_loaded_ = false;
        inner_group_.clear();
      }
      if (kind == JoinKind::kLeftOuter && !was_matched) {
        *out = PadRight(prev_outer, inner_arity);
        return true;
      }
      continue;
    }

    // Align the two inputs on the next common key.
    if (!inner_valid_) {
      // Inner exhausted: remaining outer rows are unmatched.
      if (kind == JoinKind::kLeftOuter) {
        Row prev_outer = outer_row_;
        LQS_ASSIGN_OR_RETURN(outer_valid_, AdvanceOuter());
        *out = PadRight(prev_outer, inner_arity);
        return true;
      }
      return false;
    }
    int cmp = CompareKeys(outer_row_, inner_row_);
    if (cmp < 0) {
      if (kind == JoinKind::kLeftOuter) {
        Row prev_outer = outer_row_;
        LQS_ASSIGN_OR_RETURN(outer_valid_, AdvanceOuter());
        *out = PadRight(prev_outer, inner_arity);
        return true;
      }
      LQS_ASSIGN_OR_RETURN(outer_valid_, AdvanceOuter());
      continue;
    }
    if (cmp > 0) {
      LQS_ASSIGN_OR_RETURN(inner_valid_, AdvanceInner());
      continue;
    }
    // Equal keys: buffer the inner group.
    inner_group_.clear();
    Row group_head = inner_row_;
    do {
      inner_group_.push_back(inner_row_);
      LQS_ASSIGN_OR_RETURN(inner_valid_, AdvanceInner());
    } while (inner_valid_ && CompareKeys(outer_row_, inner_row_) == 0);
    group_loaded_ = true;
    group_pos_ = 0;
    outer_matched_ = false;
  }
}

// ---------------------------------------------------------------------------
// NestedLoopJoinOp
// ---------------------------------------------------------------------------

NestedLoopJoinOp::NestedLoopJoinOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status NestedLoopJoinOp::OpenImpl() {
  outer_eof_ = false;
  outer_buffer_.clear();
  inner_ever_opened_ = false;
  inner_open_ = false;
  // The inner child's Open is deferred until the first outer binding exists:
  // correlated seeks evaluate their bounds at Open/Rebind time.
  return child(0)->Open();
}

Status NestedLoopJoinOp::RebindImpl() {
  // Nested NL joins: a rebind restarts the outer side; the inner side is
  // re-bound per outer row as usual.
  if (inner_open_) {
    ctx_->PopOuterRow();
    inner_open_ = false;
  }
  outer_eof_ = false;
  outer_buffer_.clear();
  return child(0)->Rebind();
}

Status NestedLoopJoinOp::CloseImpl() {
  if (inner_open_) {
    ctx_->PopOuterRow();
    inner_open_ = false;
  }
  LQS_RETURN_IF_ERROR(child(0)->Close());
  if (inner_ever_opened_) LQS_RETURN_IF_ERROR(child(1)->Close());
  return Status::OK();
}

StatusOr<bool> NestedLoopJoinOp::NextOuterRow() {
  if (node_.buffered_outer) {
    // §4.4 semi-blocking prefetch: pull a batch of outer rows before probing
    // the inner side. With a prefetch window >= the outer cardinality the
    // entire outer side is consumed before the inner side starts — the
    // pathological case for naive driver-node progress the paper describes.
    if (outer_buffer_.empty() && !outer_eof_) {
      const uint64_t window = ctx_->options().nlj_prefetch_rows;
      Row row;
      while (outer_buffer_.size() < window) {
        auto got = child(0)->GetNext(&row);
        if (!got.ok()) return got.status();
        if (!got.value()) {
          outer_eof_ = true;
          break;
        }
        ChargeCpu(cost::kCpuRowPassMs);
        outer_buffer_.push_back(std::move(row));
      }
    }
    if (outer_buffer_.empty()) return false;
    outer_row_ = std::move(outer_buffer_.front());
    outer_buffer_.pop_front();
    ChargeCpu(cost::kCpuNljRowMs);
    return true;
  }
  auto got = child(0)->GetNext(&outer_row_);
  if (!got.ok()) return got;
  if (got.value()) ChargeCpu(cost::kCpuNljRowMs);
  return got;
}

Status NestedLoopJoinOp::StartInner() {
  ctx_->PushOuterRow(&outer_row_);
  inner_open_ = true;
  outer_matched_ = false;
  if (!inner_ever_opened_) {
    inner_ever_opened_ = true;
    return child(1)->Open();
  }
  return child(1)->Rebind();
}

void NestedLoopJoinOp::FinishInner() {
  ctx_->PopOuterRow();
  inner_open_ = false;
}

StatusOr<bool> NestedLoopJoinOp::GetNextImpl(Row* out) {
  const JoinKind kind = node_.join_kind;
  const size_t inner_arity = node_.child(1)->output_schema.num_columns();
  const double residual_cost =
      node_.predicate == nullptr
          ? 0.0
          : node_.predicate->NodeCount() * cost::kCpuPredNodeMs;

  while (true) {
    if (inner_open_) {
      Row inner_row;
      auto got = child(1)->GetNext(&inner_row);
      if (!got.ok()) return got.status();
      if (got.value()) {
        ChargeCpu(cost::kCpuNljRowMs + residual_cost);
        Row combined = Combine(outer_row_, inner_row);
        if (node_.predicate != nullptr &&
            !node_.predicate->EvalBool(combined, nullptr)) {
          continue;
        }
        switch (kind) {
          case JoinKind::kInner:
          case JoinKind::kLeftOuter:
            outer_matched_ = true;
            *out = std::move(combined);
            return true;
          case JoinKind::kLeftSemi:
            FinishInner();
            *out = outer_row_;
            return true;
          case JoinKind::kLeftAnti:
            outer_matched_ = true;
            FinishInner();
            continue;  // anti: a match disqualifies this outer row
          default:
            return Status::Unimplemented("nested loops join kind");
        }
      }
      // Inner exhausted for the current outer row.
      const bool was_matched = outer_matched_;
      FinishInner();
      if (kind == JoinKind::kLeftOuter && !was_matched) {
        *out = PadRight(outer_row_, inner_arity);
        return true;
      }
      if (kind == JoinKind::kLeftAnti && !was_matched) {
        *out = outer_row_;
        return true;
      }
      continue;
    }
    auto more = NextOuterRow();
    if (!more.ok()) return more.status();
    if (!more.value()) return false;
    LQS_RETURN_IF_ERROR(StartInner());
  }
}

}  // namespace lqs
