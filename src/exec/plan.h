#ifndef LQS_EXEC_PLAN_H_
#define LQS_EXEC_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/op_type.h"
#include "common/status.h"
#include "exec/expr.h"
#include "storage/catalog.h"
#include "storage/schema.h"

namespace lqs {

/// Join semantics. Names follow Appendix A of the paper. For every join
/// operator children[0] is the OUTER input (build side for Hash Match, outer
/// loop for Nested Loops, left for Merge Join) and children[1] the INNER
/// input (probe side / inner loop / right).
enum class JoinKind : uint8_t {
  kInner = 0,
  kLeftOuter,
  kRightOuter,
  kFullOuter,
  kLeftSemi,
  kLeftAnti,
  kRightSemi,
};

const char* JoinKindName(JoinKind kind);

/// One aggregate expression of an aggregation operator.
struct AggSpec {
  enum class Func : uint8_t { kCount, kSum, kMin, kMax, kAvg };
  Func func = Func::kCount;
  /// Input column aggregated over; -1 for COUNT(*).
  int column = -1;
};

/// A node of a physical execution plan — the showplan analogue. Carries both
/// the operator payload the executor needs and the optimizer annotations
/// (estimated rows, CPU/I-O cost) the progress estimator consumes (§2.2).
struct PlanNode {
  int id = -1;  ///< Unique, dense, assigned by FinalizePlan (pre-order).
  OpType type = OpType::kTableScan;
  std::vector<std::unique_ptr<PlanNode>> children;

  // --- Scan / access-path payload ---
  std::string table_name;
  std::string index_name;
  /// Seek bounds on the access path's key column (ClusteredIndexSeek /
  /// IndexSeek). Either may be null (open-ended). May reference
  /// OuterColumn(...) when the seek is the correlated inner of a NL join.
  std::unique_ptr<Expr> seek_lo;
  std::unique_ptr<Expr> seek_hi;
  /// Predicate evaluated inside the storage engine during the scan (§4.3).
  std::unique_ptr<Expr> pushed_predicate;
  /// When >= 0, the scan additionally probes the bitmap created by the
  /// BitmapCreate node `bitmap_source_id` using this output column (§4.3).
  int bitmap_probe_column = -1;
  int bitmap_source_id = -1;
  /// RID Lookup: outer column carrying the row id to fetch.
  int rid_outer_column = -1;
  /// Bitmap Create: input column whose values populate the bitmap.
  int bitmap_key_column = -1;
  /// Constant Scan payload.
  std::vector<Row> constant_rows;

  // --- Row-operator payload ---
  std::unique_ptr<Expr> predicate;  ///< Filter / join residual predicate.
  std::vector<std::unique_ptr<Expr>> projections;  ///< Compute Scalar.

  // --- Join payload ---
  JoinKind join_kind = JoinKind::kInner;
  std::vector<int> outer_keys;  ///< Equijoin columns on children[0] output.
  std::vector<int> inner_keys;  ///< Equijoin columns on children[1] output.
  /// Nested Loops: buffer/prefetch outer rows (the §4.4 semi-blocking
  /// behaviour; corresponds to batch sort / prefetching in SQL Server).
  bool buffered_outer = false;

  // --- Sort / Top / aggregate payload ---
  std::vector<int> sort_columns;
  int64_t top_n = -1;
  std::vector<int> group_columns;
  std::vector<AggSpec> aggregates;

  // --- Optimizer annotations (the "showplan" the client reads) ---
  double est_rows = 0;      ///< Estimated output cardinality N̂_i.
  double est_cpu_ms = 0;    ///< Estimated total CPU cost of this operator.
  double est_io_ms = 0;     ///< Estimated total I/O cost of this operator.
  double est_rebinds = 0;   ///< Estimated executions (NL inner side).

  /// Derived output schema (FinalizePlan).
  Schema output_schema;

  // ------------------------------------------------------------------
  PlanNode() = default;
  PlanNode(const PlanNode&) = delete;
  PlanNode& operator=(const PlanNode&) = delete;

  PlanNode* child(size_t i) const { return children[i].get(); }

  /// Pre-order visit of this subtree.
  void Visit(const std::function<void(const PlanNode&)>& fn) const;
  void VisitMutable(const std::function<void(PlanNode&)>& fn);

  /// Total number of nodes in this subtree.
  int CountNodes() const;

  /// Deep copy (plans are reused across estimator configurations).
  std::unique_ptr<PlanNode> Clone() const;
};

/// A finalized plan: root + flat id -> node index for O(1) lookup.
struct Plan {
  std::unique_ptr<PlanNode> root;
  std::vector<const PlanNode*> nodes;  ///< nodes[id] has .id == id.

  const PlanNode& node(int id) const { return *nodes[id]; }
  int size() const { return static_cast<int>(nodes.size()); }

  Plan() = default;
  Plan(Plan&&) = default;
  Plan& operator=(Plan&&) = default;
  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;

  /// Deep copy.
  Plan Clone() const;
};

/// Assigns dense pre-order ids, derives output schemas (requires the tables
/// referenced by scans to exist in `catalog`), and builds the id index.
/// Must be called before execution, annotation or estimation.
StatusOr<Plan> FinalizePlan(std::unique_ptr<PlanNode> root,
                            const Catalog& catalog);

/// Renders the plan tree with estimates, one node per line (indented).
std::string PlanToString(const Plan& plan);

}  // namespace lqs

#endif  // LQS_EXEC_PLAN_H_
