#include <algorithm>

#include "exec/cost_constants.h"
#include "exec/operators.h"

namespace lqs {

namespace {

size_t HashKey(const std::vector<Value>& key) {
  size_t h = 0xcbf29ce484222325ULL;
  for (const Value& v : key) {
    h ^= v.Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool KeysEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// HashAggregateOp
// ---------------------------------------------------------------------------

size_t HashAggregateOp::KeyHash::operator()(
    const std::vector<Value>& key) const {
  return HashKey(key);
}

bool HashAggregateOp::KeyEq::operator()(const std::vector<Value>& a,
                                        const std::vector<Value>& b) const {
  return KeysEqual(a, b);
}

HashAggregateOp::HashAggregateOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status HashAggregateOp::OpenImpl() {
  input_done_ = false;
  groups_.clear();
  output_.clear();
  cursor_ = 0;
  return child(0)->Open();
}

Status HashAggregateOp::RebindImpl() {
  // Uncorrelated aggregate under a NL join: replay the computed groups.
  cursor_ = 0;
  return Status::OK();
}

Status HashAggregateOp::InputPhase() {
  // Blocking input phase (§4.5, Figure 10): all input consumed before the
  // first group is emitted.
  Row row;
  while (true) {
    auto got = child(0)->GetNext(&row);
    if (!got.ok()) return got.status();
    if (!got.value()) break;
    ChargeCpu(cost::kCpuAggInputRowMs);
    std::vector<Value> key;
    key.reserve(node_.group_columns.size());
    for (int c : node_.group_columns) key.push_back(row[c]);
    std::vector<Accumulator>& accs = groups_[key];
    if (accs.empty()) accs.resize(node_.aggregates.size());
    for (size_t i = 0; i < node_.aggregates.size(); ++i) {
      const AggSpec& spec = node_.aggregates[i];
      Accumulator& acc = accs[i];
      acc.count++;
      if (spec.column >= 0) {
        const Value& v = row[spec.column];
        acc.sum += v.AsDouble();
        if (!acc.has_value || v.Compare(acc.min) < 0) acc.min = v;
        if (!acc.has_value || v.Compare(acc.max) > 0) acc.max = v;
        acc.has_value = true;
      }
    }
  }
  if (groups_.size() > ctx_->options().memory_rows) {
    const double pages = static_cast<double>(groups_.size()) /
                         static_cast<double>(kRowsPerPage);
    const double total_ms = 2.0 * pages * cost::kIoSpillPageMs;
    const int chunks = std::max(1, static_cast<int>(pages / 16));
    for (int i = 0; i < chunks; ++i) ChargeIo(total_ms / chunks);
  }
  // Scalar aggregate over empty input still yields one row.
  if (groups_.empty() && node_.group_columns.empty()) {
    groups_[{}] = std::vector<Accumulator>(node_.aggregates.size());
  }
  output_.reserve(groups_.size());
  for (const auto& [key, accs] : groups_) {
    output_.push_back(FinalizeGroup(key, accs));
  }
  input_done_ = true;
  return Status::OK();
}

Row HashAggregateOp::FinalizeGroup(
    const std::vector<Value>& key,
    const std::vector<Accumulator>& accs) const {
  Row out;
  out.reserve(key.size() + accs.size());
  out.insert(out.end(), key.begin(), key.end());
  for (size_t i = 0; i < accs.size(); ++i) {
    const AggSpec& spec = node_.aggregates[i];
    const Accumulator& acc = accs[i];
    switch (spec.func) {
      case AggSpec::Func::kCount:
        out.push_back(Value(acc.count));
        break;
      case AggSpec::Func::kSum:
        out.push_back(Value(acc.sum));
        break;
      case AggSpec::Func::kAvg:
        out.push_back(Value(acc.count == 0 ? 0.0 : acc.sum / acc.count));
        break;
      case AggSpec::Func::kMin:
        out.push_back(acc.min);
        break;
      case AggSpec::Func::kMax:
        out.push_back(acc.max);
        break;
    }
  }
  return out;
}

StatusOr<bool> HashAggregateOp::GetNextImpl(Row* out) {
  if (!input_done_) LQS_RETURN_IF_ERROR(InputPhase());
  if (cursor_ >= output_.size()) return false;
  ChargeCpu(cost::kCpuAggOutputRowMs);
  *out = output_[cursor_++];
  return true;
}

// ---------------------------------------------------------------------------
// StreamAggregateOp
// ---------------------------------------------------------------------------

StreamAggregateOp::StreamAggregateOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status StreamAggregateOp::OpenImpl() {
  input_eof_ = false;
  group_active_ = false;
  emitted_empty_scalar_ = false;
  has_pending_ = false;
  return child(0)->Open();
}

void StreamAggregateOp::Accumulate(const Row& row) {
  for (size_t i = 0; i < node_.aggregates.size(); ++i) {
    const AggSpec& spec = node_.aggregates[i];
    Accumulator& acc = accs_[i];
    acc.count++;
    if (spec.column >= 0) {
      const Value& v = row[spec.column];
      acc.sum += v.AsDouble();
      if (!acc.has_value || v.Compare(acc.min) < 0) acc.min = v;
      if (!acc.has_value || v.Compare(acc.max) > 0) acc.max = v;
      acc.has_value = true;
    }
  }
}

Row StreamAggregateOp::FinalizeGroup() const {
  Row out;
  out.reserve(group_key_.size() + accs_.size());
  out.insert(out.end(), group_key_.begin(), group_key_.end());
  for (size_t i = 0; i < accs_.size(); ++i) {
    const AggSpec& spec = node_.aggregates[i];
    const Accumulator& acc = accs_[i];
    switch (spec.func) {
      case AggSpec::Func::kCount:
        out.push_back(Value(acc.count));
        break;
      case AggSpec::Func::kSum:
        out.push_back(Value(acc.sum));
        break;
      case AggSpec::Func::kAvg:
        out.push_back(Value(acc.count == 0 ? 0.0 : acc.sum / acc.count));
        break;
      case AggSpec::Func::kMin:
        out.push_back(acc.min);
        break;
      case AggSpec::Func::kMax:
        out.push_back(acc.max);
        break;
    }
  }
  return out;
}

StatusOr<bool> StreamAggregateOp::GetNextImpl(Row* out) {
  // Pipelined over group-sorted input: emit a group when its key changes.
  while (true) {
    if (input_eof_) {
      if (group_active_) {
        group_active_ = false;
        *out = FinalizeGroup();
        return true;
      }
      if (node_.group_columns.empty() && !emitted_empty_scalar_) {
        // Scalar aggregate over empty input yields one row.
        emitted_empty_scalar_ = true;
        group_key_.clear();
        accs_.assign(node_.aggregates.size(), Accumulator());
        *out = FinalizeGroup();
        return true;
      }
      return false;
    }
    Row row;
    if (has_pending_) {
      row = std::move(pending_);
      has_pending_ = false;
    } else {
      auto got = child(0)->GetNext(&row);
      if (!got.ok()) return got.status();
      if (!got.value()) {
        input_eof_ = true;
        continue;
      }
      ChargeCpu(cost::kCpuStreamAggRowMs);
    }
    std::vector<Value> key;
    key.reserve(node_.group_columns.size());
    for (int c : node_.group_columns) key.push_back(row[c]);
    if (!group_active_) {
      group_active_ = true;
      emitted_empty_scalar_ = true;  // input was non-empty
      group_key_ = std::move(key);
      accs_.assign(node_.aggregates.size(), Accumulator());
      Accumulate(row);
      continue;
    }
    if (KeysEqual(key, group_key_)) {
      Accumulate(row);
      continue;
    }
    // Key changed: emit the finished group, stash this row.
    pending_ = std::move(row);
    has_pending_ = true;
    Row finished = FinalizeGroup();
    group_key_.clear();
    for (int c : node_.group_columns) group_key_.push_back(pending_[c]);
    accs_.assign(node_.aggregates.size(), Accumulator());
    Accumulate(pending_);
    has_pending_ = false;
    *out = std::move(finished);
    return true;
  }
}

}  // namespace lqs
