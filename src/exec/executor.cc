#include "exec/executor.h"

#include "dmv/profiler.h"
#include "exec/operator.h"

namespace lqs {

StatusOr<ExecutionResult> ExecuteQueryWithSink(
    const Plan& plan, Catalog* catalog, const ExecOptions& options,
    const std::function<void(const Row&)>& sink) {
  // A non-positive or non-finite polling interval used to degenerate
  // silently (MaybePoll's grid catch-up loop never terminates for <= 0);
  // reject it before any work happens.
  LQS_RETURN_IF_ERROR(
      Profiler::ValidateIntervalMs(options.snapshot_interval_ms));
  ExecContext ctx(catalog, options, plan.size());
  Profiler profiler(&ctx.live_profiles(), options.snapshot_interval_ms);
  ctx.set_profiler(&profiler);

  // Record plan parentage in the live profiles so DMV consumers can rebuild
  // the operator tree, as sys.dm_exec_query_profiles exposes it.
  plan.root->Visit([&ctx](const PlanNode& n) {
    OperatorProfile& p = ctx.profile(n.id);
    p.node_id = n.id;
    p.op_type = n.type;
    p.estimate_row_count = n.est_rows;
    for (const auto& c : n.children) ctx.profile(c->id).parent_node_id = n.id;
  });

  LQS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> root,
                       BuildOperatorTree(*plan.root, &ctx));
  LQS_RETURN_IF_ERROR(root->Open());

  ExecutionResult result;
  Row row;
  while (true) {
    auto got = root->GetNext(&row);
    if (!got.ok()) return got.status();
    if (!got.value()) break;
    result.rows_returned++;
    if (sink) sink(row);
  }
  LQS_RETURN_IF_ERROR(root->Close());

  profiler.Finalize(ctx.now_ms());
  result.duration_ms = ctx.now_ms();
  result.trace = profiler.TakeTrace();
  return result;
}

StatusOr<ExecutionResult> ExecuteQuery(const Plan& plan, Catalog* catalog,
                                       const ExecOptions& options) {
  return ExecuteQueryWithSink(plan, catalog, options, nullptr);
}

}  // namespace lqs
