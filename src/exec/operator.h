#ifndef LQS_EXEC_OPERATOR_H_
#define LQS_EXEC_OPERATOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "common/value.h"
#include "exec/exec_context.h"
#include "exec/plan.h"

namespace lqs {

/// Base class of all physical operators: the demand-driven iterator
/// (Open / GetNext / Close) model of [11], §3.1.2. The non-virtual public
/// methods maintain the DMV counters uniformly — K_i (row_count) counts
/// GetNext calls that returned a row, exactly the paper's GetNext model of
/// work — and dispatch to the Impl virtuals.
class Operator {
 public:
  Operator(const PlanNode& node, ExecContext* ctx) : node_(node), ctx_(ctx) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Prepares the operator (and its children) for iteration.
  Status Open() {
    OperatorProfile& p = profile();
    p.node_id = node_.id;
    p.op_type = node_.type;
    p.estimate_row_count = node_.est_rows;
    p.opened = true;
    return OpenImpl();
  }

  /// Produces the next row into *out. Returns true if a row was produced,
  /// false on end-of-stream.
  StatusOr<bool> GetNext(Row* out) {
    auto result = GetNextImpl(out);
    if (result.ok()) {
      OperatorProfile& p = profile();
      if (result.value()) {
        p.row_count++;
        if (p.first_row_ms < 0) p.first_row_ms = ctx_->now_ms();
        p.last_active_ms = ctx_->now_ms();
      } else {
        p.finished = true;
      }
    }
    return result;
  }

  Status Close() {
    Status s = CloseImpl();
    OperatorProfile& p = profile();
    p.closed = true;
    p.close_time_ms = ctx_->now_ms();
    return s;
  }

  /// Re-initializes for a new correlated binding (inner side of a Nested
  /// Loops join). Increments the DMV rebind counter.
  Status Rebind() {
    OperatorProfile& p = profile();
    p.rebind_count++;
    p.finished = false;  // a new binding will produce more rows
    return RebindImpl();
  }

  const PlanNode& node() const { return node_; }
  int id() const { return node_.id; }

  void AddChild(std::unique_ptr<Operator> child) {
    children_.push_back(std::move(child));
  }
  Operator* child(size_t i) { return children_[i].get(); }
  size_t num_children() const { return children_.size(); }

 protected:
  virtual Status OpenImpl() = 0;
  virtual StatusOr<bool> GetNextImpl(Row* out) = 0;
  virtual Status CloseImpl() {
    for (auto& c : children_) LQS_RETURN_IF_ERROR(c->Close());
    return Status::OK();
  }
  /// Default rebind recursively rebinds children, then resets this
  /// operator's own iteration state via ResetImpl. Operators that cache
  /// results across bindings (spools, uncorrelated sorts/aggregates)
  /// override RebindImpl to skip the child rebind.
  virtual Status RebindImpl() {
    for (auto& c : children_) LQS_RETURN_IF_ERROR(c->Rebind());
    return ResetImpl();
  }

  /// Resets the operator's own iteration state for a new binding. Default:
  /// nothing to reset (pure pass-through operators).
  virtual Status ResetImpl() { return Status::OK(); }

  OperatorProfile& profile() { return ctx_->profile(node_.id); }

  void ChargeCpu(double ms) { ctx_->Charge(node_.id, ms, 0); }
  void ChargeIo(double ms) { ctx_->Charge(node_.id, 0, ms); }
  void ChargeLogicalRead(double io_ms) {
    profile().logical_read_count++;
    ctx_->Charge(node_.id, 0, io_ms);
  }

  const PlanNode& node_;
  ExecContext* ctx_;
  std::vector<std::unique_ptr<Operator>> children_;
};

/// Builds the operator tree for a finalized plan. Returns the root operator;
/// all operators share `ctx`.
StatusOr<std::unique_ptr<Operator>> BuildOperatorTree(const PlanNode& node,
                                                      ExecContext* ctx);

}  // namespace lqs

#endif  // LQS_EXEC_OPERATOR_H_
