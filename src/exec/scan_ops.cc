#include <algorithm>

#include "exec/cost_constants.h"
#include "exec/operators.h"

namespace lqs {

namespace {

/// CPU cost of evaluating a predicate once.
double PredCost(const Expr* expr) {
  return expr == nullptr ? 0.0 : expr->NodeCount() * cost::kCpuPredNodeMs;
}

}  // namespace

// ---------------------------------------------------------------------------
// TableScanOp (also Clustered Index Scan)
// ---------------------------------------------------------------------------

TableScanOp::TableScanOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status TableScanOp::OpenImpl() {
  table_ = ctx_->catalog()->GetTable(node_.table_name);
  if (table_ == nullptr) {
    return Status::NotFound("scan: unknown table " + node_.table_name);
  }
  next_row_ = 0;
  OperatorProfile& p = profile();
  p.total_pages = table_->num_pages();
  p.has_pushed_predicate =
      node_.pushed_predicate != nullptr || node_.bitmap_source_id >= 0;
  return Status::OK();
}

Status TableScanOp::ResetImpl() {
  next_row_ = 0;
  return Status::OK();
}

StatusOr<bool> TableScanOp::GetNextImpl(Row* out) {
  const double pred_cost = PredCost(node_.pushed_predicate.get());
  while (next_row_ < table_->num_rows()) {
    if (next_row_ % kRowsPerPage == 0) {
      ChargeLogicalRead(cost::kIoSequentialPageMs);
    }
    const Row& row = table_->row(next_row_);
    ++next_row_;
    ChargeCpu(cost::kCpuScanRowMs + pred_cost);
    if (node_.pushed_predicate != nullptr &&
        !node_.pushed_predicate->EvalBool(row, ctx_->outer_row())) {
      continue;
    }
    if (node_.bitmap_source_id >= 0) {
      ChargeCpu(cost::kCpuBitmapProbeRowMs);
      if (!ctx_->BitmapMayContain(node_.bitmap_source_id,
                                  row[node_.bitmap_probe_column])) {
        continue;
      }
    }
    *out = row;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// ClusteredIndexSeekOp
// ---------------------------------------------------------------------------

ClusteredIndexSeekOp::ClusteredIndexSeekOp(const PlanNode& node,
                                           ExecContext* ctx)
    : Operator(node, ctx) {}

Status ClusteredIndexSeekOp::OpenImpl() {
  table_ = ctx_->catalog()->GetTable(node_.table_name);
  if (table_ == nullptr) {
    return Status::NotFound("seek: unknown table " + node_.table_name);
  }
  if (table_->clustered_column() < 0) {
    return Status::InvalidArgument("clustered seek on unclustered table " +
                                   node_.table_name);
  }
  OperatorProfile& p = profile();
  p.total_pages = table_->num_pages();
  p.has_pushed_predicate = node_.pushed_predicate != nullptr;
  return ResetImpl();
}

Status ClusteredIndexSeekOp::ResetImpl() {
  // Resolve seek bounds (may reference the current NL outer row) and
  // position on the first qualifying row.
  const int key = table_->clustered_column();
  static const Row kEmpty;
  const Row* outer = ctx_->outer_row();
  ChargeCpu(cost::kCpuSeekMs);

  auto cmp_lo = [key](const Row& row, const Value& v) {
    return row[key].Compare(v) < 0;
  };
  auto cmp_hi = [key](const Value& v, const Row& row) {
    return v.Compare(row[key]) < 0;
  };
  const auto& rows = table_->rows();
  next_row_ = 0;
  end_row_ = rows.size();
  if (node_.seek_lo != nullptr) {
    Value lo = node_.seek_lo->Eval(kEmpty, outer);
    next_row_ = static_cast<uint64_t>(
        std::lower_bound(rows.begin(), rows.end(), lo, cmp_lo) - rows.begin());
  }
  if (node_.seek_hi != nullptr) {
    Value hi = node_.seek_hi->Eval(kEmpty, outer);
    end_row_ = static_cast<uint64_t>(
        std::upper_bound(rows.begin(), rows.end(), hi, cmp_hi) - rows.begin());
  }
  if (end_row_ < next_row_) end_row_ = next_row_;
  last_page_ = UINT64_MAX;
  return Status::OK();
}

StatusOr<bool> ClusteredIndexSeekOp::GetNextImpl(Row* out) {
  const double pred_cost = PredCost(node_.pushed_predicate.get());
  while (next_row_ < end_row_) {
    uint64_t page = next_row_ / kRowsPerPage;
    if (page != last_page_) {
      // First page of a seek is a random read; subsequent are sequential.
      ChargeLogicalRead(last_page_ == UINT64_MAX ? cost::kIoRandomPageMs
                                                 : cost::kIoSequentialPageMs);
      last_page_ = page;
    }
    const Row& row = table_->row(next_row_);
    ++next_row_;
    ChargeCpu(cost::kCpuScanRowMs + pred_cost);
    if (node_.pushed_predicate != nullptr &&
        !node_.pushed_predicate->EvalBool(row, ctx_->outer_row())) {
      continue;
    }
    *out = row;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// IndexScanOp
// ---------------------------------------------------------------------------

IndexScanOp::IndexScanOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status IndexScanOp::OpenImpl() {
  table_ = ctx_->catalog()->GetTable(node_.table_name);
  if (table_ == nullptr) {
    return Status::NotFound("index scan: unknown table " + node_.table_name);
  }
  index_ = table_->GetIndex(node_.index_name);
  if (index_ == nullptr) {
    return Status::NotFound("index scan: unknown index " + node_.index_name);
  }
  next_entry_ = 0;
  OperatorProfile& p = profile();
  p.total_pages = index_->num_pages();
  p.has_pushed_predicate = node_.pushed_predicate != nullptr;
  return Status::OK();
}

Status IndexScanOp::ResetImpl() {
  next_entry_ = 0;
  return Status::OK();
}

StatusOr<bool> IndexScanOp::GetNextImpl(Row* out) {
  const double pred_cost = PredCost(node_.pushed_predicate.get());
  while (next_entry_ < index_->num_entries()) {
    if (next_entry_ % kRowsPerPage == 0) {
      ChargeLogicalRead(cost::kIoSequentialPageMs);
    }
    const Row& row = table_->row(index_->row_id_at(next_entry_));
    ++next_entry_;
    ChargeCpu(cost::kCpuScanRowMs + pred_cost);
    if (node_.pushed_predicate != nullptr &&
        !node_.pushed_predicate->EvalBool(row, ctx_->outer_row())) {
      continue;
    }
    *out = row;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// IndexSeekOp
// ---------------------------------------------------------------------------

IndexSeekOp::IndexSeekOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status IndexSeekOp::OpenImpl() {
  table_ = ctx_->catalog()->GetTable(node_.table_name);
  if (table_ == nullptr) {
    return Status::NotFound("index seek: unknown table " + node_.table_name);
  }
  index_ = table_->GetIndex(node_.index_name);
  if (index_ == nullptr) {
    return Status::NotFound("index seek: unknown index " + node_.index_name);
  }
  profile().total_pages = index_->num_pages();
  return ResetImpl();
}

Status IndexSeekOp::ResetImpl() {
  static const Row kEmpty;
  const Row* outer = ctx_->outer_row();
  ChargeCpu(cost::kCpuSeekMs);
  OrderedIndex::Range range;
  if (node_.seek_lo != nullptr && node_.seek_hi != nullptr) {
    range = index_->SeekRange(node_.seek_lo->Eval(kEmpty, outer),
                              node_.seek_hi->Eval(kEmpty, outer));
  } else if (node_.seek_lo != nullptr) {
    Value lo = node_.seek_lo->Eval(kEmpty, outer);
    range = index_->Seek(lo);
  } else {
    range.begin = 0;
    range.end = index_->num_entries();
  }
  next_entry_ = range.begin;
  end_entry_ = range.end;
  last_page_ = UINT64_MAX;
  return Status::OK();
}

StatusOr<bool> IndexSeekOp::GetNextImpl(Row* out) {
  if (next_entry_ >= end_entry_) return false;
  uint64_t page = next_entry_ / kRowsPerPage;
  if (page != last_page_) {
    ChargeLogicalRead(last_page_ == UINT64_MAX ? cost::kIoRandomPageMs
                                               : cost::kIoSequentialPageMs);
    last_page_ = page;
  }
  ChargeCpu(cost::kCpuScanRowMs);
  out->clear();
  out->push_back(index_->key_at(next_entry_));
  out->push_back(Value(static_cast<int64_t>(index_->row_id_at(next_entry_))));
  ++next_entry_;
  return true;
}

// ---------------------------------------------------------------------------
// RidLookupOp
// ---------------------------------------------------------------------------

RidLookupOp::RidLookupOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status RidLookupOp::OpenImpl() {
  table_ = ctx_->catalog()->GetTable(node_.table_name);
  if (table_ == nullptr) {
    return Status::NotFound("rid lookup: unknown table " + node_.table_name);
  }
  done_ = false;
  profile().total_pages = table_->num_pages();
  return Status::OK();
}

Status RidLookupOp::ResetImpl() {
  done_ = false;
  return Status::OK();
}

StatusOr<bool> RidLookupOp::GetNextImpl(Row* out) {
  if (done_) return false;
  done_ = true;
  const Row* outer = ctx_->outer_row();
  if (outer == nullptr) {
    return Status::Internal("RID lookup without outer binding");
  }
  int64_t rid = (*outer)[node_.rid_outer_column].AsInt();
  if (rid < 0 || static_cast<uint64_t>(rid) >= table_->num_rows()) {
    return Status::OutOfRange("RID out of range");
  }
  ChargeLogicalRead(cost::kIoRandomPageMs);
  ChargeCpu(cost::kCpuScanRowMs);
  const Row& row = table_->row(static_cast<uint64_t>(rid));
  if (node_.pushed_predicate != nullptr &&
      !node_.pushed_predicate->EvalBool(row, outer)) {
    return false;
  }
  *out = row;
  return true;
}

// ---------------------------------------------------------------------------
// ConstantScanOp
// ---------------------------------------------------------------------------

ConstantScanOp::ConstantScanOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status ConstantScanOp::OpenImpl() {
  next_ = 0;
  return Status::OK();
}

Status ConstantScanOp::ResetImpl() {
  next_ = 0;
  return Status::OK();
}

StatusOr<bool> ConstantScanOp::GetNextImpl(Row* out) {
  if (next_ >= node_.constant_rows.size()) return false;
  ChargeCpu(cost::kCpuRowPassMs);
  *out = node_.constant_rows[next_++];
  return true;
}

// ---------------------------------------------------------------------------
// ColumnstoreScanOp
// ---------------------------------------------------------------------------

ColumnstoreScanOp::ColumnstoreScanOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status ColumnstoreScanOp::OpenImpl() {
  table_ = ctx_->catalog()->GetTable(node_.table_name);
  if (table_ == nullptr) {
    return Status::NotFound("columnstore scan: unknown table " +
                            node_.table_name);
  }
  index_ = ctx_->catalog()->GetColumnstore(node_.table_name);
  if (index_ == nullptr) {
    return Status::NotFound("no columnstore index on " + node_.table_name);
  }
  next_segment_ = 0;
  batch_.clear();
  eliminable_ = node_.pushed_predicate != nullptr &&
                node_.pushed_predicate->AsColumnCompareLiteral(
                    &elim_column_, &elim_op_, &elim_literal_);
  OperatorProfile& p = profile();
  p.segment_total_count = index_->num_segments();
  p.total_pages = table_->num_pages();
  p.has_pushed_predicate =
      node_.pushed_predicate != nullptr || node_.bitmap_source_id >= 0;
  return Status::OK();
}

StatusOr<bool> ColumnstoreScanOp::GetNextImpl(Row* out) {
  while (true) {
    if (!batch_.empty()) {
      *out = std::move(batch_.front());
      batch_.pop_front();
      return true;
    }
    if (next_segment_ >= index_->num_segments()) return false;
    const uint64_t seg = next_segment_++;
    OperatorProfile& p = profile();
    // Segment elimination via min/max metadata: skipped segments cost only a
    // metadata check but still count as processed for §4.7 progress.
    if (eliminable_ &&
        index_->CanEliminateSegment(elim_column_, seg,
                                    static_cast<int>(elim_op_),
                                    elim_literal_)) {
      ChargeCpu(cost::kCpuRowPassMs);
      p.segment_read_count++;
      continue;
    }
    const SegmentMeta& meta = index_->segment(0, seg);
    ChargeIo(cost::kIoSegmentMs);
    ChargeCpu(static_cast<double>(meta.num_rows) * cost::kCpuBatchRowMs);
    p.logical_read_count += (meta.num_rows + kRowsPerPage - 1) / kRowsPerPage;
    for (uint64_t r = meta.first_row; r < meta.first_row + meta.num_rows;
         ++r) {
      const Row& row = table_->row(r);
      if (node_.pushed_predicate != nullptr &&
          !node_.pushed_predicate->EvalBool(row, ctx_->outer_row())) {
        continue;
      }
      if (node_.bitmap_source_id >= 0 &&
          !ctx_->BitmapMayContain(node_.bitmap_source_id,
                                  row[node_.bitmap_probe_column])) {
        continue;
      }
      batch_.push_back(row);
    }
    p.segment_read_count++;
  }
}

}  // namespace lqs
