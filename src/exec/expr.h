#ifndef LQS_EXEC_EXPR_H_
#define LQS_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/comparison.h"
#include "common/value.h"
#include "storage/schema.h"

namespace lqs {

/// Arithmetic operators for scalar expressions (Compute Scalar payloads and
/// the paper's "out-of-model scalar functions" pushed into scans, §4.3).
enum class ArithOp : uint8_t {
  kAdd = 0,
  kSub,
  kMul,
  kDiv,
  kMod,
};

/// Immutable expression tree evaluated row-at-a-time by the executor and
/// inspected by the optimizer for selectivity estimation.
///
/// Kinds:
///  - kColumn:      reference to a column of the operator's input row
///  - kOuterColumn: reference to the current outer row of an enclosing
///                  Nested Loops join (correlated parameter)
///  - kLiteral:     constant
///  - kCompare:     left <op> right, yields int64 0/1
///  - kAnd/kOr:     boolean combinations, yields int64 0/1
///  - kArith:       arithmetic
class Expr {
 public:
  enum class Kind : uint8_t {
    kColumn,
    kOuterColumn,
    kLiteral,
    kCompare,
    kAnd,
    kOr,
    kArith,
  };

  ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  // ---- Factories ----
  static std::unique_ptr<Expr> Column(int index);
  static std::unique_ptr<Expr> OuterColumn(int index);
  static std::unique_ptr<Expr> Literal(Value value);
  static std::unique_ptr<Expr> Compare(CompareOp op, std::unique_ptr<Expr> l,
                                       std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> And(std::unique_ptr<Expr> l,
                                   std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> Or(std::unique_ptr<Expr> l,
                                  std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> Arith(ArithOp op, std::unique_ptr<Expr> l,
                                     std::unique_ptr<Expr> r);

  // ---- Evaluation ----
  /// `row` is the operator's input row; `outer` the enclosing NL join's
  /// current outer row (may be null when no kOuterColumn appears).
  Value Eval(const Row& row, const Row* outer) const;
  bool EvalBool(const Row& row, const Row* outer) const {
    return Eval(row, outer).AsInt() != 0;
  }

  // ---- Introspection ----
  Kind kind() const { return kind_; }
  int column_index() const { return column_index_; }
  CompareOp compare_op() const { return compare_op_; }
  ArithOp arith_op() const { return arith_op_; }
  const Value& literal() const { return literal_; }
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }

  /// Number of nodes; proxy for per-row evaluation CPU cost.
  int NodeCount() const;

  /// True when any node of this tree is a kOuterColumn reference. Plans may
  /// only carry such expressions on the inner side of a Nested Loops join,
  /// where the executor binds an outer row; FinalizePlan enforces this.
  bool ContainsOuterColumn() const;

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;

  /// Result type given the input schema (for schema derivation).
  DataType ResultType(const Schema& input) const;

  std::string ToString(const Schema* input = nullptr) const;

  /// If this expression is `Column(c) op Literal(v)` (either operand order),
  /// fills the out-params (with op flipped if needed) and returns true. Used
  /// by the optimizer's histogram lookup and by segment elimination.
  bool AsColumnCompareLiteral(int* column, CompareOp* op, Value* literal) const;

  /// Collects the conjuncts of a top-level AND chain (or `this` alone).
  void CollectConjuncts(std::vector<const Expr*>* out) const;

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  int column_index_ = -1;
  CompareOp compare_op_ = CompareOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  Value literal_;
  std::unique_ptr<Expr> left_;
  std::unique_ptr<Expr> right_;
};

}  // namespace lqs

#endif  // LQS_EXEC_EXPR_H_
