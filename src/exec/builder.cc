#include "exec/operator.h"
#include "exec/operators.h"

namespace lqs {

StatusOr<std::unique_ptr<Operator>> BuildOperatorTree(const PlanNode& node,
                                                      ExecContext* ctx) {
  std::unique_ptr<Operator> op;
  switch (node.type) {
    case OpType::kTableScan:
    case OpType::kClusteredIndexScan:
      op = std::make_unique<TableScanOp>(node, ctx);
      break;
    case OpType::kClusteredIndexSeek:
      op = std::make_unique<ClusteredIndexSeekOp>(node, ctx);
      break;
    case OpType::kIndexScan:
      op = std::make_unique<IndexScanOp>(node, ctx);
      break;
    case OpType::kIndexSeek:
      op = std::make_unique<IndexSeekOp>(node, ctx);
      break;
    case OpType::kRidLookup:
      op = std::make_unique<RidLookupOp>(node, ctx);
      break;
    case OpType::kConstantScan:
      op = std::make_unique<ConstantScanOp>(node, ctx);
      break;
    case OpType::kColumnstoreScan:
      op = std::make_unique<ColumnstoreScanOp>(node, ctx);
      break;
    case OpType::kFilter:
      op = std::make_unique<FilterOp>(node, ctx);
      break;
    case OpType::kComputeScalar:
      op = std::make_unique<ComputeScalarOp>(node, ctx);
      break;
    case OpType::kTop:
      op = std::make_unique<TopOp>(node, ctx);
      break;
    case OpType::kSegment:
      op = std::make_unique<SegmentOp>(node, ctx);
      break;
    case OpType::kConcatenation:
      op = std::make_unique<ConcatenationOp>(node, ctx);
      break;
    case OpType::kBitmapCreate:
      op = std::make_unique<BitmapCreateOp>(node, ctx);
      break;
    case OpType::kSort:
    case OpType::kDistinctSort:
      op = std::make_unique<SortOp>(node, ctx);
      break;
    case OpType::kTopNSort:
      op = std::make_unique<TopNSortOp>(node, ctx);
      break;
    case OpType::kHashJoin:
      op = std::make_unique<HashJoinOp>(node, ctx);
      break;
    case OpType::kMergeJoin:
      op = std::make_unique<MergeJoinOp>(node, ctx);
      break;
    case OpType::kNestedLoopJoin:
      op = std::make_unique<NestedLoopJoinOp>(node, ctx);
      break;
    case OpType::kHashAggregate:
      op = std::make_unique<HashAggregateOp>(node, ctx);
      break;
    case OpType::kStreamAggregate:
      op = std::make_unique<StreamAggregateOp>(node, ctx);
      break;
    case OpType::kEagerSpool:
      op = std::make_unique<EagerSpoolOp>(node, ctx);
      break;
    case OpType::kLazySpool:
      op = std::make_unique<LazySpoolOp>(node, ctx);
      break;
    case OpType::kGatherStreams:
    case OpType::kRepartitionStreams:
    case OpType::kDistributeStreams:
      op = std::make_unique<ExchangeOp>(node, ctx);
      break;
    case OpType::kNumOpTypes:
      return Status::InvalidArgument("invalid plan node type");
  }
  for (const auto& child : node.children) {
    LQS_ASSIGN_OR_RETURN(std::unique_ptr<Operator> child_op,
                         BuildOperatorTree(*child, ctx));
    op->AddChild(std::move(child_op));
  }
  return op;
}

}  // namespace lqs
