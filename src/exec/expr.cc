#include "exec/expr.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lqs {

std::unique_ptr<Expr> Expr::Column(int index) {
  auto e = std::unique_ptr<Expr>(new Expr(Kind::kColumn));
  e->column_index_ = index;
  return e;
}

std::unique_ptr<Expr> Expr::OuterColumn(int index) {
  auto e = std::unique_ptr<Expr>(new Expr(Kind::kOuterColumn));
  e->column_index_ = index;
  return e;
}

std::unique_ptr<Expr> Expr::Literal(Value value) {
  auto e = std::unique_ptr<Expr>(new Expr(Kind::kLiteral));
  e->literal_ = std::move(value);
  return e;
}

std::unique_ptr<Expr> Expr::Compare(CompareOp op, std::unique_ptr<Expr> l,
                                    std::unique_ptr<Expr> r) {
  auto e = std::unique_ptr<Expr>(new Expr(Kind::kCompare));
  e->compare_op_ = op;
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::And(std::unique_ptr<Expr> l,
                                std::unique_ptr<Expr> r) {
  auto e = std::unique_ptr<Expr>(new Expr(Kind::kAnd));
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::Or(std::unique_ptr<Expr> l,
                               std::unique_ptr<Expr> r) {
  auto e = std::unique_ptr<Expr>(new Expr(Kind::kOr));
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::Arith(ArithOp op, std::unique_ptr<Expr> l,
                                  std::unique_ptr<Expr> r) {
  auto e = std::unique_ptr<Expr>(new Expr(Kind::kArith));
  e->arith_op_ = op;
  e->left_ = std::move(l);
  e->right_ = std::move(r);
  return e;
}

Value Expr::Eval(const Row& row, const Row* outer) const {
  switch (kind_) {
    case Kind::kColumn:
      return row[column_index_];
    case Kind::kOuterColumn:
      if (outer == nullptr) {
        // FinalizePlan rejects plans that place outer-column references
        // outside a Nested Loops inner side, so this is unreachable for any
        // finalized plan; fail loudly (in every build type) rather than
        // read through a null pointer if an unvalidated tree gets here.
        std::fprintf(stderr,
                     "lqs: outer column %d evaluated without an outer row "
                     "binding\n",
                     column_index_);
        std::abort();
      }
      return (*outer)[column_index_];
    case Kind::kLiteral:
      return literal_;
    case Kind::kCompare: {
      int cmp = left_->Eval(row, outer).Compare(right_->Eval(row, outer));
      return Value(static_cast<int64_t>(ApplyCompareOp(compare_op_, cmp)));
    }
    case Kind::kAnd: {
      if (left_->Eval(row, outer).AsInt() == 0) return Value(int64_t{0});
      return Value(static_cast<int64_t>(right_->Eval(row, outer).AsInt() != 0));
    }
    case Kind::kOr: {
      if (left_->Eval(row, outer).AsInt() != 0) return Value(int64_t{1});
      return Value(static_cast<int64_t>(right_->Eval(row, outer).AsInt() != 0));
    }
    case Kind::kArith: {
      Value lv = left_->Eval(row, outer);
      Value rv = right_->Eval(row, outer);
      bool ints = lv.type() == DataType::kInt64 && rv.type() == DataType::kInt64;
      switch (arith_op_) {
        case ArithOp::kAdd:
          return ints ? Value(lv.AsInt() + rv.AsInt())
                      : Value(lv.AsDouble() + rv.AsDouble());
        case ArithOp::kSub:
          return ints ? Value(lv.AsInt() - rv.AsInt())
                      : Value(lv.AsDouble() - rv.AsDouble());
        case ArithOp::kMul:
          return ints ? Value(lv.AsInt() * rv.AsInt())
                      : Value(lv.AsDouble() * rv.AsDouble());
        case ArithOp::kDiv: {
          double d = rv.AsDouble();
          return Value(d == 0.0 ? 0.0 : lv.AsDouble() / d);
        }
        case ArithOp::kMod: {
          int64_t m = rv.AsInt();
          return Value(m == 0 ? int64_t{0} : lv.AsInt() % m);
        }
      }
      return Value();
    }
  }
  return Value();
}

int Expr::NodeCount() const {
  int n = 1;
  if (left_) n += left_->NodeCount();
  if (right_) n += right_->NodeCount();
  return n;
}

bool Expr::ContainsOuterColumn() const {
  if (kind_ == Kind::kOuterColumn) return true;
  if (left_ != nullptr && left_->ContainsOuterColumn()) return true;
  return right_ != nullptr && right_->ContainsOuterColumn();
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::unique_ptr<Expr>(new Expr(kind_));
  e->column_index_ = column_index_;
  e->compare_op_ = compare_op_;
  e->arith_op_ = arith_op_;
  e->literal_ = literal_;
  if (left_) e->left_ = left_->Clone();
  if (right_) e->right_ = right_->Clone();
  return e;
}

DataType Expr::ResultType(const Schema& input) const {
  switch (kind_) {
    case Kind::kColumn:
      return input.column(column_index_).type;
    case Kind::kOuterColumn:
      return DataType::kInt64;  // correlated params are keys in our plans
    case Kind::kLiteral:
      return literal_.type();
    case Kind::kCompare:
    case Kind::kAnd:
    case Kind::kOr:
      return DataType::kInt64;
    case Kind::kArith: {
      if (arith_op_ == ArithOp::kDiv) return DataType::kDouble;
      DataType l = left_->ResultType(input);
      DataType r = right_->ResultType(input);
      if (l == DataType::kInt64 && r == DataType::kInt64)
        return DataType::kInt64;
      return DataType::kDouble;
    }
  }
  return DataType::kInt64;
}

std::string Expr::ToString(const Schema* input) const {
  switch (kind_) {
    case Kind::kColumn:
      if (input != nullptr &&
          column_index_ < static_cast<int>(input->num_columns())) {
        return input->column(column_index_).name;
      }
      return "$" + std::to_string(column_index_);
    case Kind::kOuterColumn:
      return "outer.$" + std::to_string(column_index_);
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kCompare:
      return "(" + left_->ToString(input) + " " + CompareOpName(compare_op_) +
             " " + right_->ToString(input) + ")";
    case Kind::kAnd:
      return "(" + left_->ToString(input) + " AND " + right_->ToString(input) +
             ")";
    case Kind::kOr:
      return "(" + left_->ToString(input) + " OR " + right_->ToString(input) +
             ")";
    case Kind::kArith: {
      const char* ops[] = {"+", "-", "*", "/", "%"};
      return "(" + left_->ToString(input) + " " +
             ops[static_cast<int>(arith_op_)] + " " + right_->ToString(input) +
             ")";
    }
  }
  return "?";
}

bool Expr::AsColumnCompareLiteral(int* column, CompareOp* op,
                                  Value* literal) const {
  if (kind_ != Kind::kCompare) return false;
  const Expr* l = left_.get();
  const Expr* r = right_.get();
  if (l->kind_ == Kind::kColumn && r->kind_ == Kind::kLiteral) {
    *column = l->column_index_;
    *op = compare_op_;
    *literal = r->literal_;
    return true;
  }
  if (l->kind_ == Kind::kLiteral && r->kind_ == Kind::kColumn) {
    *column = r->column_index_;
    *literal = l->literal_;
    // Flip the operator: 5 < col  ==  col > 5.
    switch (compare_op_) {
      case CompareOp::kLt:
        *op = CompareOp::kGt;
        break;
      case CompareOp::kLe:
        *op = CompareOp::kGe;
        break;
      case CompareOp::kGt:
        *op = CompareOp::kLt;
        break;
      case CompareOp::kGe:
        *op = CompareOp::kLe;
        break;
      default:
        *op = compare_op_;
        break;
    }
    return true;
  }
  return false;
}

void Expr::CollectConjuncts(std::vector<const Expr*>* out) const {
  if (kind_ == Kind::kAnd) {
    left_->CollectConjuncts(out);
    right_->CollectConjuncts(out);
    return;
  }
  out->push_back(this);
}

}  // namespace lqs
