#include "exec/cost_constants.h"
#include "exec/operators.h"

namespace lqs {

// ---------------------------------------------------------------------------
// FilterOp
// ---------------------------------------------------------------------------

FilterOp::FilterOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status FilterOp::OpenImpl() { return child(0)->Open(); }

StatusOr<bool> FilterOp::GetNextImpl(Row* out) {
  const double pred_cost =
      node_.predicate == nullptr
          ? 0.0
          : node_.predicate->NodeCount() * cost::kCpuPredNodeMs;
  while (true) {
    auto got = child(0)->GetNext(out);
    if (!got.ok() || !got.value()) return got;
    ChargeCpu(cost::kCpuFilterRowMs + pred_cost);
    if (node_.predicate == nullptr ||
        node_.predicate->EvalBool(*out, ctx_->outer_row())) {
      return true;
    }
  }
}

// ---------------------------------------------------------------------------
// ComputeScalarOp
// ---------------------------------------------------------------------------

ComputeScalarOp::ComputeScalarOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status ComputeScalarOp::OpenImpl() { return child(0)->Open(); }

StatusOr<bool> ComputeScalarOp::GetNextImpl(Row* out) {
  auto got = child(0)->GetNext(out);
  if (!got.ok() || !got.value()) return got;
  ChargeCpu(cost::kCpuComputeRowMs *
            static_cast<double>(node_.projections.size()));
  for (const auto& p : node_.projections) {
    out->push_back(p->Eval(*out, ctx_->outer_row()));
  }
  return true;
}

// ---------------------------------------------------------------------------
// TopOp
// ---------------------------------------------------------------------------

TopOp::TopOp(const PlanNode& node, ExecContext* ctx) : Operator(node, ctx) {}

Status TopOp::OpenImpl() {
  emitted_ = 0;
  return child(0)->Open();
}

Status TopOp::ResetImpl() {
  emitted_ = 0;
  return Status::OK();
}

StatusOr<bool> TopOp::GetNextImpl(Row* out) {
  if (node_.top_n >= 0 && emitted_ >= node_.top_n) return false;
  auto got = child(0)->GetNext(out);
  if (!got.ok() || !got.value()) return got;
  ChargeCpu(cost::kCpuRowPassMs);
  ++emitted_;
  return true;
}

// ---------------------------------------------------------------------------
// SegmentOp
// ---------------------------------------------------------------------------

SegmentOp::SegmentOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status SegmentOp::OpenImpl() {
  has_prev_ = false;
  return child(0)->Open();
}

Status SegmentOp::ResetImpl() {
  has_prev_ = false;
  return Status::OK();
}

StatusOr<bool> SegmentOp::GetNextImpl(Row* out) {
  auto got = child(0)->GetNext(out);
  if (!got.ok() || !got.value()) return got;
  ChargeCpu(cost::kCpuRowPassMs);
  // Group-boundary detection over the configured columns; the boundary flag
  // itself is not materialized (no consumer in our plans needs it).
  if (has_prev_) {
    for (int c : node_.group_columns) {
      if (!((*out)[c] == prev_[c])) break;
    }
  }
  prev_ = *out;
  has_prev_ = true;
  return true;
}

// ---------------------------------------------------------------------------
// ConcatenationOp
// ---------------------------------------------------------------------------

ConcatenationOp::ConcatenationOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status ConcatenationOp::OpenImpl() {
  current_child_ = 0;
  for (auto& c : children_) LQS_RETURN_IF_ERROR(c->Open());
  return Status::OK();
}

Status ConcatenationOp::ResetImpl() {
  current_child_ = 0;
  return Status::OK();
}

StatusOr<bool> ConcatenationOp::GetNextImpl(Row* out) {
  while (current_child_ < children_.size()) {
    auto got = child(current_child_)->GetNext(out);
    if (!got.ok()) return got;
    if (got.value()) {
      ChargeCpu(cost::kCpuRowPassMs);
      return true;
    }
    ++current_child_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// BitmapCreateOp
// ---------------------------------------------------------------------------

BitmapCreateOp::BitmapCreateOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status BitmapCreateOp::OpenImpl() { return child(0)->Open(); }

StatusOr<bool> BitmapCreateOp::GetNextImpl(Row* out) {
  auto got = child(0)->GetNext(out);
  if (!got.ok() || !got.value()) return got;
  ChargeCpu(cost::kCpuBitmapInsertRowMs);
  ctx_->BitmapInsert(node_.id, (*out)[node_.bitmap_key_column]);
  return true;
}

}  // namespace lqs
