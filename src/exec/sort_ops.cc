#include <algorithm>
#include <cmath>

#include "exec/cost_constants.h"
#include "exec/operators.h"

namespace lqs {

namespace {

/// Lexicographic comparison over the configured sort columns.
bool RowLess(const Row& a, const Row& b, const std::vector<int>& cols) {
  for (int c : cols) {
    int cmp = a[c].Compare(b[c]);
    if (cmp != 0) return cmp < 0;
  }
  return false;
}

bool SameKey(const Row& a, const Row& b, const std::vector<int>& cols) {
  for (int c : cols) {
    if (!(a[c] == b[c])) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// SortOp (Sort and Distinct Sort)
// ---------------------------------------------------------------------------

SortOp::SortOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx), distinct_(node.type == OpType::kDistinctSort) {}

Status SortOp::OpenImpl() {
  input_done_ = false;
  rows_.clear();
  cursor_ = 0;
  return child(0)->Open();
}

Status SortOp::RebindImpl() {
  // Non-correlated sorts keep their sorted output; a rebind only resets the
  // output cursor.
  cursor_ = 0;
  return Status::OK();
}

Status SortOp::ConsumeAndSort() {
  // Input phase (§4.5): consume everything, charging per-row input CPU. The
  // clock advances row by row so the profiler observes the phase.
  Row row;
  while (true) {
    auto got = child(0)->GetNext(&row);
    if (!got.ok()) return got.status();
    if (!got.value()) break;
    ChargeCpu(cost::kCpuSortInputRowMs);
    rows_.push_back(std::move(row));
  }
  const double n = static_cast<double>(rows_.size());
  if (n > 1) {
    // Comparison work: n * log2(n), charged in chunks so the virtual clock
    // (and the DMV poller) advances during the sort rather than in one jump.
    const double total_ms = n * std::log2(n) * cost::kCpuSortRowMs;
    const int chunks = std::max(1, static_cast<int>(n / 1024));
    for (int i = 0; i < chunks; ++i) ChargeCpu(total_ms / chunks);
  }
  if (rows_.size() > ctx_->options().memory_rows) {
    // External sort: one spill write + read pass over the run files.
    const double pages =
        static_cast<double>(rows_.size()) / static_cast<double>(kRowsPerPage);
    const double total_ms = 2.0 * pages * cost::kIoSpillPageMs;
    const int chunks = std::max(1, static_cast<int>(pages / 16));
    for (int i = 0; i < chunks; ++i) ChargeIo(total_ms / chunks);
  }
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     return RowLess(a, b, node_.sort_columns);
                   });
  input_done_ = true;
  return Status::OK();
}

StatusOr<bool> SortOp::GetNextImpl(Row* out) {
  if (!input_done_) LQS_RETURN_IF_ERROR(ConsumeAndSort());
  while (cursor_ < rows_.size()) {
    const size_t i = cursor_++;
    ChargeCpu(cost::kCpuRowPassMs);
    if (distinct_ && i > 0 &&
        SameKey(rows_[i], rows_[i - 1], node_.sort_columns)) {
      continue;
    }
    *out = rows_[i];
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// TopNSortOp
// ---------------------------------------------------------------------------

TopNSortOp::TopNSortOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status TopNSortOp::OpenImpl() {
  input_done_ = false;
  rows_.clear();
  cursor_ = 0;
  return child(0)->Open();
}

Status TopNSortOp::RebindImpl() {
  cursor_ = 0;
  return Status::OK();
}

StatusOr<bool> TopNSortOp::GetNextImpl(Row* out) {
  if (!input_done_) {
    const size_t n = node_.top_n < 0 ? SIZE_MAX
                                     : static_cast<size_t>(node_.top_n);
    auto heap_less = [this](const Row& a, const Row& b) {
      // max-heap on the sort key: the root is the current worst of the top N.
      return RowLess(a, b, node_.sort_columns);
    };
    Row row;
    while (true) {
      auto got = child(0)->GetNext(&row);
      if (!got.ok()) return got.status();
      if (!got.value()) break;
      const double heap_depth =
          rows_.empty() ? 1.0 : std::log2(static_cast<double>(rows_.size()) + 1);
      ChargeCpu(cost::kCpuSortInputRowMs + heap_depth * cost::kCpuSortRowMs);
      if (rows_.size() < n) {
        rows_.push_back(std::move(row));
        std::push_heap(rows_.begin(), rows_.end(), heap_less);
      } else if (n > 0 && RowLess(row, rows_.front(), node_.sort_columns)) {
        std::pop_heap(rows_.begin(), rows_.end(), heap_less);
        rows_.back() = std::move(row);
        std::push_heap(rows_.begin(), rows_.end(), heap_less);
      }
    }
    std::sort_heap(rows_.begin(), rows_.end(), heap_less);
    input_done_ = true;
  }
  if (cursor_ >= rows_.size()) return false;
  ChargeCpu(cost::kCpuRowPassMs);
  *out = rows_[cursor_++];
  return true;
}

}  // namespace lqs
