#ifndef LQS_EXEC_EXEC_CONTEXT_H_
#define LQS_EXEC_EXEC_CONTEXT_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/value.h"
#include "common/virtual_clock.h"
#include "dmv/profiler.h"
#include "dmv/query_profile.h"
#include "exec/cost_constants.h"
#include "storage/catalog.h"

namespace lqs {

/// Runtime knobs for one query execution.
struct ExecOptions {
  /// DMV polling interval for the profiler (the SSMS 500 ms analogue).
  double snapshot_interval_ms = 500.0;
  /// Maximum rows an Exchange operator may buffer (§4.4).
  uint64_t exchange_buffer_rows = 65536;
  /// Child rows an Exchange pulls per row it emits while the child is
  /// active — the producer-runs-ahead factor behind the Figure 8 lag.
  uint64_t exchange_pull_batch = 8;
  /// Outer rows a buffered Nested Loops join prefetches per refill (§4.4).
  uint64_t nlj_prefetch_rows = 8192;
  /// Rows that fit in Sort/Hash memory before spilling.
  uint64_t memory_rows = cost::kMemoryRows;
};

/// Shared state for one query execution: the virtual clock, live DMV
/// counters, bitmap-filter registry, and the correlated-parameter binding
/// stack for nested-loops inners.
class ExecContext {
 public:
  ExecContext(Catalog* catalog, ExecOptions options, int num_nodes)
      : catalog_(catalog), options_(std::move(options)) {
    live_.resize(num_nodes);
  }

  Catalog* catalog() { return catalog_; }
  const ExecOptions& options() const { return options_; }
  VirtualClock& clock() { return clock_; }
  double now_ms() const { return clock_.NowMs(); }

  std::vector<OperatorProfile>& live_profiles() { return live_; }
  OperatorProfile& profile(int node_id) { return live_[node_id]; }

  void set_profiler(Profiler* profiler) { profiler_ = profiler; }

  /// Charges virtual CPU and/or I/O time to `node_id`, advances the clock,
  /// updates activity timestamps, and gives the profiler a chance to poll.
  void Charge(int node_id, double cpu_ms, double io_ms) {
    OperatorProfile& p = live_[node_id];
    if (p.open_time_ms < 0) p.open_time_ms = clock_.NowMs();
    clock_.AdvanceMs(cpu_ms + io_ms);
    p.cpu_time_ms += cpu_ms;
    p.io_time_ms += io_ms;
    p.last_active_ms = clock_.NowMs();
    if (profiler_ != nullptr) profiler_->MaybePoll(clock_.NowMs());
  }

  // --- Bitmap filters (§4.3) ---
  /// Called by BitmapCreate while consuming its input.
  void BitmapInsert(int creator_node_id, const Value& key) {
    bitmaps_[creator_node_id].insert(key.Hash());
  }
  /// Probed by scans with bitmap_probe_column set.
  bool BitmapMayContain(int creator_node_id, const Value& key) const {
    auto it = bitmaps_.find(creator_node_id);
    if (it == bitmaps_.end()) return true;  // bitmap not built: pass all
    return it->second.count(key.Hash()) > 0;
  }

  // --- Correlated outer-row bindings (Nested Loops inners) ---
  void PushOuterRow(const Row* row) { outer_rows_.push_back(row); }
  void PopOuterRow() { outer_rows_.pop_back(); }
  /// Innermost binding, or nullptr outside any NL inner.
  const Row* outer_row() const {
    return outer_rows_.empty() ? nullptr : outer_rows_.back();
  }

 private:
  Catalog* catalog_;
  ExecOptions options_;
  VirtualClock clock_;
  Profiler* profiler_ = nullptr;
  std::vector<OperatorProfile> live_;
  std::unordered_map<int, std::unordered_set<size_t>> bitmaps_;
  std::vector<const Row*> outer_rows_;
};

}  // namespace lqs

#endif  // LQS_EXEC_EXEC_CONTEXT_H_
