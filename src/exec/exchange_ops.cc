#include "exec/cost_constants.h"
#include "exec/operators.h"

namespace lqs {

ExchangeOp::ExchangeOp(const PlanNode& node, ExecContext* ctx)
    : Operator(node, ctx) {}

Status ExchangeOp::OpenImpl() {
  child_eof_ = false;
  buffer_.clear();
  return child(0)->Open();
}

StatusOr<bool> ExchangeOp::GetNextImpl(Row* out) {
  // Semi-blocking behaviour (§4.4, Figures 7/8): producer threads run ahead
  // of the consumer, parking rows in exchange packets. We model this by
  // pulling a batch of child rows per row emitted (the child's K_i runs a
  // large factor ahead of the exchange's K_i while the child is active,
  // then the gap drains), with the buffer capped at exchange_buffer_rows.
  if (!child_eof_ && buffer_.size() < ctx_->options().exchange_buffer_rows) {
    const uint64_t batch = ctx_->options().exchange_pull_batch;
    Row row;
    for (uint64_t i = 0; i < batch; ++i) {
      auto got = child(0)->GetNext(&row);
      if (!got.ok()) return got.status();
      if (!got.value()) {
        child_eof_ = true;
        break;
      }
      ChargeCpu(cost::kCpuExchangeBufferRowMs);
      buffer_.push_back(std::move(row));
    }
  }
  if (buffer_.empty()) return false;
  ChargeCpu(cost::kCpuExchangeRowMs);
  *out = std::move(buffer_.front());
  buffer_.pop_front();
  return true;
}

}  // namespace lqs
