#include <algorithm>
#include <cmath>

#include "common/stringf.h"
#include "workload/datagen.h"
#include "workload/plan_builder.h"
#include "workload/workload.h"

namespace lqs {

namespace {

using pb::NodePtr;

constexpr int kNumDims = 12;

// Schema of every dimension: [key, attr1 (0..19), attr2 (0..199), val]
constexpr int kDimArity = 4;
// Schema of every fact: [key, fk0..fk11, m1 (0..999), m2, m3] => arity 16.
constexpr int kFactArity = 1 + kNumDims + 3;

struct RealSpec {
  int num_queries;
  int min_joins;  ///< tables joined per query, including the fact
  int max_joins;
  bool always_group_by;
  double fact_scale;
};

RealSpec SpecFor(int which, int num_queries_override) {
  // Scaled-down stand-ins for the paper's REAL-1 (477 queries, 5-8-way
  // joins + subqueries), REAL-2 (632 queries, ~12-way joins) and REAL-3
  // (40 join+group-by queries on the largest dataset).
  RealSpec spec{};
  switch (which) {
    case 1:
      spec = {60, 5, 8, false, 1.0};
      break;
    case 2:
      spec = {70, 10, 12, false, 1.2};
      break;
    default:
      spec = {40, 3, 5, true, 2.0};
      break;
  }
  if (num_queries_override > 0) spec.num_queries = num_queries_override;
  return spec;
}

Status BuildRealData(Catalog* catalog, const RealWorkloadOptions& opt,
                     const RealSpec& spec) {
  Rng meta_rng(opt.seed * 977 + opt.which);
  auto I = [](int64_t v) { return Value(v); };
  auto D = [](double v) { return Value(v); };

  std::vector<uint64_t> dim_sizes(kNumDims);
  for (int d = 0; d < kNumDims; ++d) {
    dim_sizes[d] = static_cast<uint64_t>(
        std::max<int64_t>(20, meta_rng.NextInRange(50, 4000)));
    Schema schema({{"key", DataType::kInt64},
                   {"attr1", DataType::kInt64},
                   {"attr2", DataType::kInt64},
                   {"val", DataType::kDouble}});
    LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
        StringF("dim%d", d), std::move(schema), dim_sizes[d],
        opt.seed + 100 + d, [&](uint64_t i, Rng& rng) {
          return Row{I(static_cast<int64_t>(i)), I(rng.NextInRange(0, 19)),
                     I(rng.NextInRange(0, 199)), D(rng.NextDouble() * 100)};
        })));
    LQS_RETURN_IF_ERROR(
        catalog->GetMutableTable(StringF("dim%d", d))->ClusterBy(0));
  }

  const uint64_t fact_sizes[3] = {
      static_cast<uint64_t>(30000 * spec.fact_scale * opt.scale),
      static_cast<uint64_t>(50000 * spec.fact_scale * opt.scale),
      static_cast<uint64_t>(20000 * spec.fact_scale * opt.scale)};
  for (int f = 0; f < 3; ++f) {
    Schema schema;
    schema.AddColumn({"key", DataType::kInt64});
    for (int d = 0; d < kNumDims; ++d) {
      schema.AddColumn({StringF("fk%d", d), DataType::kInt64});
    }
    schema.AddColumn({"m1", DataType::kInt64});
    schema.AddColumn({"m2", DataType::kDouble});
    schema.AddColumn({"m3", DataType::kDouble});
    std::vector<ZipfDistribution> fk_dists;
    fk_dists.reserve(kNumDims);
    for (int d = 0; d < kNumDims; ++d) {
      // Varying skew per foreign key: a mix of uniform and heavily skewed
      // reference patterns, as in real decision-support schemas.
      double z = (d % 3 == 0) ? 1.0 : (d % 3 == 1 ? 0.5 : 0.0);
      fk_dists.emplace_back(dim_sizes[d], z);
    }
    LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
        StringF("fact%d", f), std::move(schema), fact_sizes[f],
        opt.seed + 200 + f, [&](uint64_t i, Rng& rng) {
          Row row;
          row.reserve(kFactArity);
          row.push_back(I(static_cast<int64_t>(i)));
          for (int d = 0; d < kNumDims; ++d) {
            row.push_back(
                I(static_cast<int64_t>(fk_dists[d].Sample(rng) - 1)));
          }
          row.push_back(I(rng.NextInRange(0, 999)));
          row.push_back(D(rng.NextDouble() * 1000));
          row.push_back(D(rng.NextDouble()));
          return row;
        })));
    Table* fact = catalog->GetMutableTable(StringF("fact%d", f));
    LQS_RETURN_IF_ERROR(fact->ClusterBy(0));
    LQS_RETURN_IF_ERROR(fact->BuildIndex("ix_fk0", 1));
    LQS_RETURN_IF_ERROR(fact->BuildIndex("ix_fk1", 2));
  }

  StatisticsOptions stats;
  stats.sample_rate = opt.stats_sample_rate;
  stats.seed = opt.seed + 99;
  return catalog->BuildAllStatistics(stats);
}

/// Tracks where interesting columns ended up as joins reshape the row.
struct ColumnTracker {
  std::vector<int> positions;
  int arity = 0;

  int Track(int pos) {
    positions.push_back(pos);
    return static_cast<int>(positions.size()) - 1;
  }
  /// A build-side (left) join of `added` columns shifts everything right.
  void ShiftAll(int added) {
    for (int& p : positions) p += added;
    arity += added;
  }
  void AppendRight(int added) { arity += added; }
};

NodePtr BuildRealQuery(const Catalog& catalog, const RealSpec& spec,
                       Rng& rng, std::string* name_out) {
  using namespace pb;  // NOLINT: local plan-building DSL
  const int fact_id = static_cast<int>(rng.NextBelow(3));
  const std::string fact = StringF("fact%d", fact_id);

  // Optional pushed-down fact predicate.
  std::unique_ptr<Expr> pushed;
  if (rng.NextBool(0.7)) {
    int64_t lo = rng.NextInRange(0, 800);
    int64_t width = rng.NextInRange(50, 600);
    pushed = ColBetween(1 + kNumDims, lo, lo + width);  // range on m1
  }
  NodePtr root = CiScan(fact, std::move(pushed));
  ColumnTracker cols;
  cols.arity = kFactArity;
  int fact_offset = 0;  // how far fact columns have shifted right so far
  // Track the measure and a couple of fk columns for grouping/aggregation.
  const int m2_slot = cols.Track(1 + kNumDims + 1);
  std::vector<int> group_slots;

  const int joins =
      static_cast<int>(rng.NextInRange(spec.min_joins, spec.max_joins)) - 1;
  std::vector<int> dims(kNumDims);
  for (int i = 0; i < kNumDims; ++i) dims[i] = i;
  // Seeded shuffle of the dimension order.
  for (int i = kNumDims - 1; i > 0; --i) {
    std::swap(dims[i], dims[static_cast<int>(rng.NextBelow(i + 1))]);
  }

  for (int j = 0; j < joins && j < kNumDims; ++j) {
    const int d = dims[j];
    const std::string dim = StringF("dim%d", d);
    const int fk_pos = 1 + d;  // original position in the fact row

    // The fk column's current position accounts for every build-side join
    // so far (each shifted the fact columns right by the dim arity).
    const int fk_now = fk_pos + fact_offset;

    std::unique_ptr<Expr> dim_filter;
    if (rng.NextBool(0.5)) {
      dim_filter = ColCmp(1, CompareOp::kLe, rng.NextInRange(2, 18));
    }

    const double strategy = rng.NextDouble();
    if (strategy < 0.5) {
      // Hash join with the dimension as build side (left): shifts existing
      // columns right by the dim arity.
      NodePtr d_scan = CiScan(dim);
      if (dim_filter != nullptr) {
        d_scan = Filter(std::move(d_scan), std::move(dim_filter));
      }
      root = HashJoin(JoinKind::kInner, std::move(d_scan), std::move(root),
                      {0}, {fk_now});
      cols.ShiftAll(kDimArity);
      fact_offset += kDimArity;
      if (rng.NextBool(0.35)) {
        group_slots.push_back(cols.Track(1));  // dim attr1 now at column 1
      }
    } else if (strategy < 0.8) {
      // Nested loops with a correlated clustered seek into the dimension;
      // sometimes buffered (semi-blocking).
      bool buffered = rng.NextBool(0.4);
      NodePtr seek = CiSeek(dim, OuterCol(fk_now), OuterCol(fk_now),
                            std::move(dim_filter));
      root = Nlj(JoinKind::kInner, std::move(root), std::move(seek), nullptr,
                 buffered);
      if (rng.NextBool(0.35)) {
        group_slots.push_back(cols.Track(cols.arity + 1));
      }
      cols.AppendRight(kDimArity);
    } else {
      // Semi join (models the nested-subquery pattern of REAL-1).
      NodePtr d_scan = CiScan(dim);
      if (dim_filter != nullptr) {
        d_scan = Filter(std::move(d_scan), std::move(dim_filter));
      }
      root = HashJoin(JoinKind::kLeftSemi, std::move(root), std::move(d_scan),
                      {fk_now}, {0});
      // Semi join preserves the left schema: no arity change.
    }
  }

  // Occasional exchange on top of the join tree.
  if (rng.NextBool(0.3)) {
    root = Gather(std::move(root));
  }

  const bool group = spec.always_group_by || rng.NextBool(0.6);
  if (group) {
    std::vector<int> group_cols;
    for (int slot : group_slots) group_cols.push_back(cols.positions[slot]);
    if (group_cols.empty()) {
      group_cols.push_back(cols.positions[m2_slot] - 1);  // m1 column
    }
    root = HashAgg(std::move(root), group_cols,
                   {Sum(cols.positions[m2_slot]), Count()});
    if (rng.NextBool(0.7)) {
      root = Sort(std::move(root), {0});
    }
  } else if (rng.NextBool(0.5)) {
    root = TopNSort(std::move(root), {cols.positions[m2_slot]},
                    rng.NextInRange(10, 200));
  }

  (void)catalog;
  *name_out = StringF("%s_j%d", fact.c_str(), joins + 1);
  return root;
}

}  // namespace

StatusOr<Workload> MakeRealWorkload(const RealWorkloadOptions& options) {
  const RealSpec spec = SpecFor(options.which, options.num_queries);
  Workload w;
  w.name = StringF("REAL-%d", options.which);
  w.catalog = std::make_unique<Catalog>();
  LQS_RETURN_IF_ERROR(BuildRealData(w.catalog.get(), options, spec));

  Rng rng(options.seed * 31337 + static_cast<uint64_t>(options.which));
  for (int i = 0; i < spec.num_queries; ++i) {
    std::string name;
    NodePtr root = BuildRealQuery(*w.catalog, spec, rng, &name);
    auto plan_or = FinalizePlan(std::move(root), *w.catalog);
    if (!plan_or.ok()) {
      return Status::Internal(StringF("REAL-%d query %d: ", options.which, i) +
                              plan_or.status().ToString());
    }
    w.queries.push_back(
        WorkloadQuery{StringF("r%d_%02d_%s", options.which, i, name.c_str()),
                      std::move(plan_or).value()});
  }
  return w;
}

}  // namespace lqs
