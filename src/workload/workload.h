#ifndef LQS_WORKLOAD_WORKLOAD_H_
#define LQS_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "exec/plan.h"
#include "optimizer/annotate.h"
#include "storage/catalog.h"

namespace lqs {

/// One query of a workload: a finalized, optimizer-annotated physical plan.
struct WorkloadQuery {
  std::string name;
  Plan plan;
};

/// A workload: a populated catalog plus its query plans. Mirrors the §5
/// experimental setup (TPC-H skewed, TPC-DS, REAL-1/2/3), scaled down per
/// DESIGN.md §2.
struct Workload {
  std::string name;
  std::unique_ptr<Catalog> catalog;
  std::vector<WorkloadQuery> queries;
};

/// Physical design for the TPC-H-like workload (§5.4, Figure 18/19).
enum class PhysicalDesign {
  kRowstore,     ///< clustered + nonclustered B-tree indexes (DTA-like)
  kColumnstore,  ///< nonclustered columnstore index on every table
};

struct TpchOptions {
  /// Row-count scale: 1.0 => lineitem ~60k rows.
  double scale = 1.0;
  /// Zipf skew of foreign keys (the paper uses Z = 1).
  double zipf_z = 1.0;
  PhysicalDesign design = PhysicalDesign::kRowstore;
  /// Statistics staleness: fraction of rows sampled for histograms.
  double stats_sample_rate = 0.1;
  uint64_t seed = 1;
};

StatusOr<Workload> MakeTpchWorkload(const TpchOptions& options);

struct TpcdsOptions {
  double scale = 1.0;  ///< 1.0 => store_sales ~120k rows
  double zipf_z = 1.0;
  double stats_sample_rate = 0.1;
  uint64_t seed = 2;
};

StatusOr<Workload> MakeTpcdsWorkload(const TpcdsOptions& options);

/// Synthetic stand-ins for the proprietary REAL-1/2/3 workloads, matching
/// their published shape statistics (join counts, query mix); see DESIGN.md.
struct RealWorkloadOptions {
  int which = 1;        ///< 1, 2 or 3
  int num_queries = 0;  ///< 0 => default per workload (scaled-down counts)
  double scale = 1.0;
  double stats_sample_rate = 0.1;
  uint64_t seed = 3;
};

StatusOr<Workload> MakeRealWorkload(const RealWorkloadOptions& options);

/// Annotates every query plan of `workload` with optimizer estimates.
Status AnnotateWorkload(Workload* workload, const OptimizerOptions& options);

}  // namespace lqs

#endif  // LQS_WORKLOAD_WORKLOAD_H_
