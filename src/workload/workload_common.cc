#include "workload/datagen.h"
#include "workload/plan_builder.h"
#include "workload/workload.h"

namespace lqs {

std::unique_ptr<Table> BuildTable(
    const std::string& name, Schema schema, uint64_t num_rows, uint64_t seed,
    const std::function<Row(uint64_t, Rng&)>& gen) {
  auto table = std::make_unique<Table>(name, std::move(schema));
  table->Reserve(num_rows);
  Rng rng(seed);
  for (uint64_t i = 0; i < num_rows; ++i) {
    table->AppendRow(gen(i, rng));
  }
  return table;
}

Status LinkBitmaps(Plan* plan) {
  int bitmap_node = -1;
  plan->root->Visit([&bitmap_node](const PlanNode& n) {
    if (n.type == OpType::kBitmapCreate) bitmap_node = n.id;
  });
  Status status = Status::OK();
  plan->root->VisitMutable([&](PlanNode& n) {
    if (n.bitmap_source_id == -2) {
      if (bitmap_node < 0) {
        status = Status::InvalidArgument(
            "plan probes a bitmap but has no Bitmap Create node");
        return;
      }
      n.bitmap_source_id = bitmap_node;
    }
  });
  return status;
}

Status AnnotateWorkload(Workload* workload, const OptimizerOptions& options) {
  for (WorkloadQuery& q : workload->queries) {
    LQS_RETURN_IF_ERROR(AnnotatePlan(&q.plan, *workload->catalog, options));
  }
  return Status::OK();
}

}  // namespace lqs
