#include <cmath>

#include "common/stringf.h"
#include "workload/datagen.h"
#include "workload/plan_builder.h"
#include "workload/workload.h"

namespace lqs {

namespace {

using pb::NodePtr;

// Column cheat sheet (arities in brackets):
//  region[2]:   r_regionkey, r_name
//  nation[3]:   n_nationkey, n_regionkey, n_name
//  supplier[3]: s_suppkey, s_nationkey, s_acctbal
//  customer[4]: c_custkey, c_nationkey, c_mktsegment, c_acctbal
//  part[6]:     p_partkey, p_brand, p_type, p_size, p_retailprice, p_container
//  partsupp[4]: ps_partkey, ps_suppkey, ps_availqty, ps_supplycost
//  orders[6]:   o_orderkey, o_custkey, o_orderstatus, o_totalprice,
//               o_orderdate, o_orderpriority
//  lineitem[14]: l_orderkey, l_partkey, l_suppkey, l_linenumber, l_quantity,
//               l_extendedprice, l_discount, l_tax, l_returnflag,
//               l_linestatus, l_shipdate, l_commitdate, l_receiptdate,
//               l_shipmode

Status BuildTpchData(Catalog* catalog, const TpchOptions& opt) {
  const auto n = [&](double base) {
    return static_cast<uint64_t>(std::max(1.0, base * opt.scale));
  };
  const uint64_t num_supplier = n(100);
  const uint64_t num_customer = n(1500);
  const uint64_t num_part = n(2000);
  const uint64_t num_partsupp = n(8000);
  const uint64_t num_orders = n(15000);
  const uint64_t num_lineitem = n(60000);
  const int64_t max_date = 2405;  // days since 1992-01-01, as in dbgen

  ZipfDistribution part_skew(num_part, opt.zipf_z);
  ZipfDistribution supp_skew(num_supplier, opt.zipf_z);
  ZipfDistribution cust_skew(num_customer, opt.zipf_z);
  ZipfDistribution order_skew(num_orders, opt.zipf_z);
  ZipfDistribution nation_skew(25, opt.zipf_z);

  auto I = [](int64_t v) { return Value(v); };
  auto D = [](double v) { return Value(v); };

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "region",
      Schema({{"r_regionkey", DataType::kInt64}, {"r_name", DataType::kInt64}}),
      5, opt.seed + 10, [&](uint64_t i, Rng&) {
        return Row{I(static_cast<int64_t>(i)), I(static_cast<int64_t>(i))};
      })));

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "nation",
      Schema({{"n_nationkey", DataType::kInt64},
              {"n_regionkey", DataType::kInt64},
              {"n_name", DataType::kInt64}}),
      25, opt.seed + 11, [&](uint64_t i, Rng&) {
        return Row{I(static_cast<int64_t>(i)), I(static_cast<int64_t>(i % 5)),
                   I(static_cast<int64_t>(i))};
      })));

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "supplier",
      Schema({{"s_suppkey", DataType::kInt64},
              {"s_nationkey", DataType::kInt64},
              {"s_acctbal", DataType::kDouble}}),
      num_supplier, opt.seed + 12, [&](uint64_t i, Rng& rng) {
        return Row{I(static_cast<int64_t>(i)),
                   I(static_cast<int64_t>(nation_skew.Sample(rng) - 1)),
                   D(rng.NextDouble() * 10000 - 1000)};
      })));

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "customer",
      Schema({{"c_custkey", DataType::kInt64},
              {"c_nationkey", DataType::kInt64},
              {"c_mktsegment", DataType::kInt64},
              {"c_acctbal", DataType::kDouble}}),
      num_customer, opt.seed + 13, [&](uint64_t i, Rng& rng) {
        return Row{I(static_cast<int64_t>(i)),
                   I(static_cast<int64_t>(nation_skew.Sample(rng) - 1)),
                   I(rng.NextInRange(0, 4)), D(rng.NextDouble() * 10000)};
      })));

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "part",
      Schema({{"p_partkey", DataType::kInt64},
              {"p_brand", DataType::kInt64},
              {"p_type", DataType::kInt64},
              {"p_size", DataType::kInt64},
              {"p_retailprice", DataType::kDouble},
              {"p_container", DataType::kInt64}}),
      num_part, opt.seed + 14, [&](uint64_t i, Rng& rng) {
        return Row{I(static_cast<int64_t>(i)), I(rng.NextInRange(0, 24)),
                   I(rng.NextInRange(0, 149)), I(rng.NextInRange(1, 50)),
                   D(900 + rng.NextDouble() * 1200), I(rng.NextInRange(0, 39))};
      })));

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "partsupp",
      Schema({{"ps_partkey", DataType::kInt64},
              {"ps_suppkey", DataType::kInt64},
              {"ps_availqty", DataType::kInt64},
              {"ps_supplycost", DataType::kDouble}}),
      num_partsupp, opt.seed + 15, [&](uint64_t i, Rng& rng) {
        return Row{I(static_cast<int64_t>(i % num_part)),
                   I(static_cast<int64_t>(supp_skew.Sample(rng) - 1)),
                   I(rng.NextInRange(1, 9999)), D(rng.NextDouble() * 1000)};
      })));

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "orders",
      Schema({{"o_orderkey", DataType::kInt64},
              {"o_custkey", DataType::kInt64},
              {"o_orderstatus", DataType::kInt64},
              {"o_totalprice", DataType::kDouble},
              {"o_orderdate", DataType::kInt64},
              {"o_orderpriority", DataType::kInt64}}),
      num_orders, opt.seed + 16, [&](uint64_t i, Rng& rng) {
        return Row{I(static_cast<int64_t>(i)),
                   I(static_cast<int64_t>(cust_skew.Sample(rng) - 1)),
                   I(rng.NextInRange(0, 2)),
                   D(1000 + rng.NextDouble() * 400000),
                   I(rng.NextInRange(0, max_date - 151)),
                   I(rng.NextInRange(0, 4))};
      })));

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "lineitem",
      Schema({{"l_orderkey", DataType::kInt64},
              {"l_partkey", DataType::kInt64},
              {"l_suppkey", DataType::kInt64},
              {"l_linenumber", DataType::kInt64},
              {"l_quantity", DataType::kInt64},
              {"l_extendedprice", DataType::kDouble},
              {"l_discount", DataType::kDouble},
              {"l_tax", DataType::kDouble},
              {"l_returnflag", DataType::kInt64},
              {"l_linestatus", DataType::kInt64},
              {"l_shipdate", DataType::kInt64},
              {"l_commitdate", DataType::kInt64},
              {"l_receiptdate", DataType::kInt64},
              {"l_shipmode", DataType::kInt64}}),
      num_lineitem, opt.seed + 17, [&](uint64_t i, Rng& rng) {
        int64_t orderkey = static_cast<int64_t>(order_skew.Sample(rng) - 1);
        int64_t shipdate = rng.NextInRange(0, max_date - 60);
        double price = 900 + rng.NextDouble() * 104000;
        return Row{I(orderkey),
                   I(static_cast<int64_t>(part_skew.Sample(rng) - 1)),
                   I(static_cast<int64_t>(supp_skew.Sample(rng) - 1)),
                   I(static_cast<int64_t>(i % 7)),
                   I(rng.NextInRange(1, 50)),
                   D(price),
                   D(rng.NextInRange(0, 10) / 100.0),
                   D(rng.NextInRange(0, 8) / 100.0),
                   I(rng.NextInRange(0, 2)),
                   I(rng.NextInRange(0, 1)),
                   I(shipdate),
                   I(shipdate + rng.NextInRange(10, 40)),
                   I(shipdate + rng.NextInRange(1, 30)),
                   I(rng.NextInRange(0, 6))};
      })));

  // Physical design.
  auto cluster = [&](const char* t, int col) {
    return catalog->GetMutableTable(t)->ClusterBy(col);
  };
  LQS_RETURN_IF_ERROR(cluster("region", 0));
  LQS_RETURN_IF_ERROR(cluster("nation", 0));
  LQS_RETURN_IF_ERROR(cluster("supplier", 0));
  LQS_RETURN_IF_ERROR(cluster("customer", 0));
  LQS_RETURN_IF_ERROR(cluster("part", 0));
  LQS_RETURN_IF_ERROR(cluster("partsupp", 0));
  LQS_RETURN_IF_ERROR(cluster("orders", 0));
  LQS_RETURN_IF_ERROR(cluster("lineitem", 0));

  if (opt.design == PhysicalDesign::kRowstore) {
    // DTA-like nonclustered index set.
    auto index = [&](const char* t, const char* name, int col) {
      return catalog->GetMutableTable(t)->BuildIndex(name, col);
    };
    LQS_RETURN_IF_ERROR(index("lineitem", "ix_l_partkey", 1));
    LQS_RETURN_IF_ERROR(index("lineitem", "ix_l_suppkey", 2));
    LQS_RETURN_IF_ERROR(index("lineitem", "ix_l_shipdate", 10));
    LQS_RETURN_IF_ERROR(index("orders", "ix_o_custkey", 1));
    LQS_RETURN_IF_ERROR(index("orders", "ix_o_orderdate", 4));
    LQS_RETURN_IF_ERROR(index("customer", "ix_c_nationkey", 1));
    LQS_RETURN_IF_ERROR(index("supplier", "ix_s_nationkey", 1));
    LQS_RETURN_IF_ERROR(index("partsupp", "ix_ps_suppkey", 1));
  } else {
    for (const char* t :
         {"lineitem", "orders", "partsupp", "customer", "part", "supplier"}) {
      LQS_RETURN_IF_ERROR(catalog->BuildColumnstore(t));
    }
  }

  StatisticsOptions stats;
  stats.sample_rate = opt.stats_sample_rate;
  stats.seed = opt.seed + 99;
  return catalog->BuildAllStatistics(stats);
}

/// Design-aware scan of a base table with an optional pushed predicate.
NodePtr FactScan(const TpchOptions& opt, const std::string& table,
                 std::unique_ptr<Expr> pushed = nullptr) {
  if (opt.design == PhysicalDesign::kColumnstore) {
    return pb::CsScan(table, std::move(pushed));
  }
  return pb::CiScan(table, std::move(pushed));
}

struct QueryList {
  const TpchOptions* opt;
  const Catalog* catalog;
  std::vector<WorkloadQuery>* out;
  Status status = Status::OK();

  void Add(const std::string& name, NodePtr root) {
    if (!status.ok()) return;
    auto plan_or = FinalizePlan(std::move(root), *catalog);
    if (!plan_or.ok()) {
      status = Status::Internal(name + ": " + plan_or.status().ToString());
      return;
    }
    Status link = LinkBitmaps(&plan_or.value());
    if (!link.ok()) {
      status = Status::Internal(name + ": " + link.ToString());
      return;
    }
    out->push_back(WorkloadQuery{name, std::move(plan_or).value()});
  }
};

void BuildTpchQueries(QueryList& q, const TpchOptions& opt) {
  using namespace pb;  // NOLINT: local plan-building DSL
  const bool cs = opt.design == PhysicalDesign::kColumnstore;
  auto scan = [&](const char* t, std::unique_ptr<Expr> pushed = nullptr) {
    return FactScan(opt, t, std::move(pushed));
  };

  // Q1: pricing summary report. Scan + big aggregate (Figure 2's plan).
  q.Add("q01",
        Sort(HashAgg(scan("lineitem", ColCmp(10, CompareOp::kLe, 2250)),
                     {8, 9}, {Sum(4), Sum(5), Avg(5), Avg(6), Count()}),
             {0, 1}));

  // Q2: minimum-cost supplier. Multi-join with a nested-loops side.
  {
    NodePtr part_f = Filter(scan("part"), ColCmp(3, CompareOp::kEq, 15));
    NodePtr ps = cs ? HashJoin(JoinKind::kInner, std::move(part_f),
                               scan("partsupp"), {0}, {0})
                    : Nlj(JoinKind::kInner, std::move(part_f),
                          CiSeek("partsupp", OuterCol(0), OuterCol(0)),
                          nullptr, /*buffered=*/true);
    // part[6] ++ partsupp[4]: ps_suppkey = 7, ps_supplycost = 9.
    NodePtr nr = HashJoin(JoinKind::kInner,
                          Filter(CiScan("region"), ColCmp(0, CompareOp::kLe, 2)),
                          CiScan("nation"), {0}, {1});
    // region[2] ++ nation[3]: n_nationkey = 2.
    NodePtr snr = HashJoin(JoinKind::kInner, std::move(nr), CiScan("supplier"),
                           {2}, {1});
    // [5] ++ supplier[3]: s_suppkey = 5.
    q.Add("q02", TopNSort(HashJoin(JoinKind::kInner, std::move(snr),
                                   std::move(ps), {5}, {7}),
                          {17}, 100));
  }

  // Q3: shipping priority. customer ⋈ orders ⋈ lineitem, Top-N.
  {
    NodePtr c = Filter(scan("customer"), ColCmp(2, CompareOp::kEq, 1));
    NodePtr co = HashJoin(JoinKind::kInner, std::move(c),
                          scan("orders", ColCmp(4, CompareOp::kLt, 1200)),
                          {0}, {1});
    // customer[4] ++ orders[6]: o_orderkey = 4.
    NodePtr col = HashJoin(JoinKind::kInner, std::move(co),
                           scan("lineitem", ColCmp(10, CompareOp::kGt, 1200)),
                           {4}, {0});
    // [10] ++ lineitem[14]: l_extendedprice = 15, o_orderdate = 8.
    q.Add("q03", TopNSort(HashAgg(std::move(col), {4, 8}, {Sum(15)}), {2}, 10));
  }

  // Q4: order priority checking — semi join orders ⋉ lineitem.
  {
    NodePtr o = scan("orders", ColBetween(4, 800, 890));
    NodePtr l = scan("lineitem", nullptr);
    q.Add("q04",
          Sort(HashAgg(HashJoin(JoinKind::kLeftSemi, std::move(o),
                                std::move(l), {0}, {0}),
                       {5}, {Count()}),
               {0}));
  }

  // Q5: local supplier volume. 6-table join with region filter + bitmap.
  {
    NodePtr nr = HashJoin(JoinKind::kInner,
                          Filter(CiScan("region"), ColCmp(0, CompareOp::kEq, 1)),
                          CiScan("nation"), {0}, {1});
    NodePtr snr = HashJoin(JoinKind::kInner, std::move(nr), CiScan("supplier"),
                           {2}, {1});
    // [5] ++ supplier[3] = [8]: s_suppkey = 5.
    NodePtr build = BitmapCreate(std::move(snr), 5);
    NodePtr li = scan("lineitem");
    ProbeBitmap(li.get(), 2);  // l_suppkey probes the bitmap in the scan
    NodePtr sl = HashJoin(JoinKind::kInner, std::move(build), std::move(li),
                          {5}, {2});
    // [8] ++ lineitem[14] = [22]: l_orderkey = 8.
    NodePtr slo = HashJoin(JoinKind::kInner, std::move(sl),
                           scan("orders", ColBetween(4, 400, 765)), {8}, {0});
    // [22] ++ orders[6] = [28]: n_name = 4, l_extendedprice = 13.
    q.Add("q05", Sort(HashAgg(std::move(slo), {4}, {Sum(13)}), {0}));
  }

  // Q6: forecasting revenue change — pure scan with pushed conjunction.
  q.Add("q06",
        HashAgg(scan("lineitem",
                     And(ColBetween(10, 400, 765),
                         And(Cmp(CompareOp::kLe, Col(6), LitD(0.07)),
                             ColCmp(4, CompareOp::kLt, 24)))),
                {}, {Sum(5), Count()}));

  // Q7: volume shipping — two nation sides, exchange on top (parallel plan).
  {
    NodePtr sn = HashJoin(JoinKind::kInner,
                          Filter(CiScan("nation"), ColCmp(0, CompareOp::kLe, 12)),
                          CiScan("supplier"), {0}, {1});
    // nation[3] ++ supplier[3] = [6]: s_suppkey = 3.
    NodePtr snl = HashJoin(JoinKind::kInner, std::move(sn),
                           scan("lineitem", ColBetween(10, 1000, 1400)), {3},
                           {2});
    // [6] ++ lineitem[14] = [20]: l_orderkey = 6.
    NodePtr snlo = HashJoin(JoinKind::kInner, std::move(snl), scan("orders"),
                            {6}, {0});
    // [20] ++ orders[6] = [26]: o_custkey = 21, n_name at 2.
    NodePtr full = HashJoin(JoinKind::kInner, std::move(snlo),
                            scan("customer"), {21}, {0});
    // [26] ++ customer[4] = [30]: c_nationkey = 27, l_extendedprice = 11.
    q.Add("q07", Sort(HashAgg(Gather(std::move(full)), {2, 27}, {Sum(11)}),
                      {0, 1}));
  }

  // Q8: national market share (deep join tree + compute scalar).
  {
    NodePtr p = Filter(scan("part"), ColCmp(2, CompareOp::kEq, 10));
    NodePtr pl = HashJoin(JoinKind::kInner, std::move(p), scan("lineitem"),
                          {0}, {1});
    // part[6] ++ lineitem[14] = [20]: l_orderkey = 6, l_suppkey = 8.
    NodePtr plo = HashJoin(JoinKind::kInner, std::move(pl),
                           scan("orders", ColBetween(4, 1000, 1730)), {6},
                           {0});
    // [20] ++ orders[6] = [26]: o_orderdate = 24.
    NodePtr plos = HashJoin(JoinKind::kInner, std::move(plo),
                            CiScan("supplier"), {8}, {0});
    // [26] ++ supplier[3] = [29]: s_nationkey = 27, l_extprice 11, l_disc 12.
    NodePtr with_rev = Compute(
        std::move(plos),
        [] {
          std::vector<std::unique_ptr<Expr>> v;
          v.push_back(Expr::Arith(ArithOp::kMul, Col(11),
                                  Expr::Arith(ArithOp::kSub, LitD(1.0),
                                              Col(12))));
          return v;
        }());
    // [30]: revenue = 29.
    q.Add("q08", Sort(HashAgg(std::move(with_rev), {24, 27}, {Sum(29)}),
                      {0}));
  }

  // Q9: product type profit (join over partsupp composite).
  {
    NodePtr p = Filter(scan("part"), ColCmp(1, CompareOp::kEq, 3));
    NodePtr pl = HashJoin(JoinKind::kInner, std::move(p), scan("lineitem"),
                          {0}, {1});
    // [20]: l_suppkey = 8, l_orderkey = 6.
    NodePtr pls = HashJoin(JoinKind::kInner, std::move(pl), CiScan("supplier"),
                           {8}, {0});
    // [23]: s_nationkey = 21.
    NodePtr plsn = HashJoin(JoinKind::kInner, std::move(pls), CiScan("nation"),
                            {21}, {0});
    // [26]: n_name = 25, l_extendedprice = 11.
    q.Add("q09", Sort(HashAgg(std::move(plsn), {25}, {Sum(11), Count()}),
                      {0}));
  }

  // Q10: returned items. customer ⋈ orders ⋈ lineitem(returnflag).
  {
    NodePtr o = scan("orders", ColBetween(4, 1100, 1190));
    NodePtr ol = HashJoin(JoinKind::kInner, std::move(o),
                          scan("lineitem", ColCmp(8, CompareOp::kEq, 2)), {0},
                          {0});
    // orders[6] ++ lineitem[14] = [20]: o_custkey = 1, l_extprice = 11.
    NodePtr olc = HashJoin(JoinKind::kInner, std::move(ol), scan("customer"),
                           {1}, {0});
    // [24]: c_custkey = 20.
    q.Add("q10", TopNSort(HashAgg(std::move(olc), {20}, {Sum(11)}), {1}, 20));
  }

  // Q11: important stock identification (partsupp by nation, agg + sort).
  {
    NodePtr sn = HashJoin(JoinKind::kInner,
                          Filter(CiScan("nation"), ColCmp(0, CompareOp::kEq, 7)),
                          CiScan("supplier"), {0}, {1});
    // [6]: s_suppkey = 3.
    NodePtr snps = HashJoin(JoinKind::kInner, std::move(sn), scan("partsupp"),
                            {3}, {1});
    // [10]: ps_partkey = 6, ps_supplycost = 9, ps_availqty = 8.
    q.Add("q11",
          Sort(HashAgg(std::move(snps), {6}, {Sum(9), Sum(8)}), {1}));
  }

  // Q12: shipping modes — merge join on the clustered order key.
  {
    NodePtr o = cs ? scan("orders") : CiScan("orders");
    NodePtr l = cs ? scan("lineitem", ColBetween(12, 700, 1065))
                   : CiScan("lineitem", ColBetween(12, 700, 1065));
    NodePtr join = cs ? HashJoin(JoinKind::kInner, std::move(o), std::move(l),
                                 {0}, {0})
                      : MergeJoin(JoinKind::kInner, std::move(o), std::move(l),
                                  {0}, {0});
    // orders[6] ++ lineitem[14] = [20]: l_shipmode = 19, o_priority = 5.
    q.Add("q12", Sort(HashAgg(std::move(join), {19}, {Count(), Sum(3)}), {0}));
  }

  // Q13: customer distribution — left outer join + double aggregation.
  {
    NodePtr c = scan("customer");
    NodePtr o = scan("orders", ColCmp(5, CompareOp::kNe, 2));
    NodePtr coj = HashJoin(JoinKind::kLeftOuter, std::move(c), std::move(o),
                           {0}, {1});
    // customer[4] ++ orders[6] = [10]: c_custkey = 0, o_orderkey = 4.
    NodePtr per_cust = HashAgg(std::move(coj), {0}, {Count()});
    q.Add("q13", Sort(HashAgg(std::move(per_cust), {1}, {Count()}), {0}));
  }

  // Q14: promotion effect — part ⋈ lineitem with date range.
  {
    NodePtr l = scan("lineitem", ColBetween(10, 1300, 1330));
    NodePtr pl = HashJoin(JoinKind::kInner, std::move(l), scan("part"), {1},
                          {0});
    // lineitem[14] ++ part[6] = [20]: p_type = 16, l_extprice = 5.
    q.Add("q14", HashAgg(std::move(pl), {}, {Sum(5), Count()}));
  }

  // Q15: top supplier. Aggregate feeding a join (pipeline chain).
  {
    NodePtr rev = HashAgg(scan("lineitem", ColBetween(10, 1500, 1590)), {2},
                          {Sum(5)});
    // [2]: l_suppkey = 0, revenue = 1.
    NodePtr join = HashJoin(JoinKind::kInner, std::move(rev),
                            CiScan("supplier"), {0}, {0});
    q.Add("q15", TopNSort(std::move(join), {1}, 10));
  }

  // Q16: parts/supplier relationship — anti join against supplier subset.
  {
    NodePtr ps = scan("partsupp");
    NodePtr bad_s = Filter(CiScan("supplier"),
                           Cmp(CompareOp::kLt, Col(2), LitD(0.0)));
    NodePtr psa = HashJoin(JoinKind::kLeftAnti, std::move(ps),
                           std::move(bad_s), {1}, {0});
    // partsupp[4]: ps_partkey = 0.
    NodePtr psap = HashJoin(JoinKind::kInner, std::move(psa),
                            Filter(scan("part"),
                                   ColCmp(1, CompareOp::kNe, 5)),
                            {0}, {0});
    // [10]: p_brand = 5, p_type = 6, p_size = 7.
    q.Add("q16", Sort(HashAgg(std::move(psap), {5, 6, 7}, {Count()}),
                      {0, 1, 2}));
  }

  // Q17: small-quantity-order revenue. Correlated-style: join against
  // per-part average quantity (modelled as agg + join).
  {
    NodePtr avg_q = HashAgg(scan("lineitem"), {1}, {Avg(4)});
    // [2]: l_partkey = 0, avg_qty = 1.
    NodePtr p = Filter(scan("part"), ColCmp(5, CompareOp::kEq, 7));
    NodePtr pa = HashJoin(JoinKind::kInner, std::move(p), std::move(avg_q),
                          {0}, {0});
    // part[6] ++ [2] = [8]: l_partkey(agg) = 6, avg = 7.
    NodePtr pal = HashJoin(JoinKind::kInner, std::move(pa), scan("lineitem"),
                           {6}, {1},
                           // residual: l_quantity < avg_qty
                           Cmp(CompareOp::kLt, Col(12), Col(7)));
    // [8] ++ lineitem[14] = [22]: l_quantity = 12, l_extprice = 13.
    q.Add("q17", HashAgg(std::move(pal), {}, {Sum(13), Count()}));
  }

  // Q18: large-volume customers. Aggregate, filter on aggregate, join back.
  {
    NodePtr per_order = HashAgg(scan("lineitem"), {0}, {Sum(4)});
    // [2]: l_orderkey = 0, sum_qty = 1.
    NodePtr big =
        Filter(std::move(per_order), Cmp(CompareOp::kGt, Col(1), LitD(120.0)));
    NodePtr bo = HashJoin(JoinKind::kInner, std::move(big), scan("orders"),
                          {0}, {0});
    // [2] ++ orders[6] = [8]: o_custkey = 3.
    NodePtr boc = HashJoin(JoinKind::kInner, std::move(bo), scan("customer"),
                           {3}, {0});
    // [12]
    q.Add("q18", TopNSort(std::move(boc), {1}, 100));
  }

  // Q19: discounted revenue — disjunctive pushed predicate (out-of-model,
  // §4.3) over lineitem joined to part.
  {
    NodePtr l = scan("lineitem",
                     Or(And(ColBetween(4, 1, 11), ColCmp(13, CompareOp::kEq, 1)),
                        And(ColBetween(4, 10, 20),
                            ColCmp(13, CompareOp::kEq, 2))));
    NodePtr lp = HashJoin(JoinKind::kInner, std::move(l),
                          Filter(scan("part"), ColCmp(1, CompareOp::kLe, 12)),
                          {1}, {0});
    q.Add("q19", HashAgg(std::move(lp), {}, {Sum(5)}));
  }

  // Q20: potential part promotion — nested semi-join chain with spool.
  {
    NodePtr pk = Filter(scan("part"), ColCmp(3, CompareOp::kLe, 4));
    NodePtr ps = HashJoin(JoinKind::kLeftSemi, scan("partsupp"),
                          std::move(pk), {0}, {0});
    // partsupp[4]: ps_suppkey = 1.
    NodePtr s = HashJoin(JoinKind::kLeftSemi, CiScan("supplier"),
                         std::move(ps), {0}, {1});
    q.Add("q20", Sort(std::move(s), {0}));
  }

  // Q21: suppliers who kept orders waiting — multi-pipeline plan with
  // semi/anti joins (the weighting showcase, §4.6 / Figure 12 uses the
  // TPC-DS cousin; this exercises the same shape).
  {
    NodePtr late = scan("lineitem",
                        Cmp(CompareOp::kGt, Col(12), Col(11)));
    NodePtr sl = HashJoin(JoinKind::kInner, CiScan("supplier"),
                          std::move(late), {0}, {2});
    // supplier[3] ++ lineitem[14] = [17]: l_orderkey = 3.
    NodePtr slo = HashJoin(JoinKind::kInner, std::move(sl),
                           scan("orders", ColCmp(2, CompareOp::kEq, 1)), {3},
                           {0});
    // [17] ++ orders[6] = [23]: s_nationkey = 1.
    NodePtr sloj =
        HashJoin(JoinKind::kLeftSemi, std::move(slo),
                 Filter(CiScan("nation"), ColCmp(0, CompareOp::kEq, 3)), {1},
                 {0});
    q.Add("q21", TopNSort(HashAgg(std::move(sloj), {0}, {Count()}), {1}, 100));
  }

  // Q22: global sales opportunity — anti join customers without orders.
  {
    NodePtr c = Filter(scan("customer"),
                       Cmp(CompareOp::kGt, Col(3), LitD(5000.0)));
    NodePtr ca = HashJoin(JoinKind::kLeftAnti, std::move(c), scan("orders"),
                          {0}, {1});
    q.Add("q22", Sort(HashAgg(std::move(ca), {1}, {Count(), Sum(3)}), {0}));
  }
}

}  // namespace

StatusOr<Workload> MakeTpchWorkload(const TpchOptions& options) {
  Workload w;
  w.name = options.design == PhysicalDesign::kColumnstore
               ? "TPC-H (columnstore)"
               : "TPC-H";
  w.catalog = std::make_unique<Catalog>();
  LQS_RETURN_IF_ERROR(BuildTpchData(w.catalog.get(), options));
  QueryList q{&options, w.catalog.get(), &w.queries};
  BuildTpchQueries(q, options);
  LQS_RETURN_IF_ERROR(q.status);
  return w;
}

}  // namespace lqs
