#ifndef LQS_WORKLOAD_PLAN_BUILDER_H_
#define LQS_WORKLOAD_PLAN_BUILDER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/plan.h"

namespace lqs {
/// Terse factory helpers for hand-building physical plans (the workload
/// generators construct plans directly, standing in for a full optimizer's
/// plan selection; cardinalities/costs still come from optimizer annotation).
namespace pb {

// ---- Expressions ----
inline std::unique_ptr<Expr> Col(int i) { return Expr::Column(i); }
inline std::unique_ptr<Expr> OuterCol(int i) { return Expr::OuterColumn(i); }
inline std::unique_ptr<Expr> Lit(int64_t v) { return Expr::Literal(Value(v)); }
inline std::unique_ptr<Expr> LitD(double v) { return Expr::Literal(Value(v)); }

inline std::unique_ptr<Expr> Cmp(CompareOp op, std::unique_ptr<Expr> l,
                                 std::unique_ptr<Expr> r) {
  return Expr::Compare(op, std::move(l), std::move(r));
}
/// column <op> integer literal.
inline std::unique_ptr<Expr> ColCmp(int col, CompareOp op, int64_t v) {
  return Cmp(op, Col(col), Lit(v));
}
inline std::unique_ptr<Expr> ColBetween(int col, int64_t lo, int64_t hi) {
  return Expr::And(ColCmp(col, CompareOp::kGe, lo),
                   ColCmp(col, CompareOp::kLe, hi));
}
inline std::unique_ptr<Expr> And(std::unique_ptr<Expr> a,
                                 std::unique_ptr<Expr> b) {
  return Expr::And(std::move(a), std::move(b));
}
inline std::unique_ptr<Expr> Or(std::unique_ptr<Expr> a,
                                std::unique_ptr<Expr> b) {
  return Expr::Or(std::move(a), std::move(b));
}

// ---- Nodes ----
using NodePtr = std::unique_ptr<PlanNode>;

inline NodePtr MakeNode(OpType type) {
  auto n = std::make_unique<PlanNode>();
  n->type = type;
  return n;
}

inline NodePtr Scan(const std::string& table,
                    std::unique_ptr<Expr> pushed = nullptr) {
  NodePtr n = MakeNode(OpType::kTableScan);
  n->table_name = table;
  n->pushed_predicate = std::move(pushed);
  return n;
}

inline NodePtr CiScan(const std::string& table,
                      std::unique_ptr<Expr> pushed = nullptr) {
  NodePtr n = MakeNode(OpType::kClusteredIndexScan);
  n->table_name = table;
  n->pushed_predicate = std::move(pushed);
  return n;
}

inline NodePtr CiSeek(const std::string& table, std::unique_ptr<Expr> lo,
                      std::unique_ptr<Expr> hi,
                      std::unique_ptr<Expr> pushed = nullptr) {
  NodePtr n = MakeNode(OpType::kClusteredIndexSeek);
  n->table_name = table;
  n->seek_lo = std::move(lo);
  n->seek_hi = std::move(hi);
  n->pushed_predicate = std::move(pushed);
  return n;
}

inline NodePtr IdxSeek(const std::string& table, const std::string& index,
                       std::unique_ptr<Expr> lo,
                       std::unique_ptr<Expr> hi = nullptr) {
  NodePtr n = MakeNode(OpType::kIndexSeek);
  n->table_name = table;
  n->index_name = index;
  n->seek_lo = std::move(lo);
  n->seek_hi = std::move(hi);
  return n;
}

inline NodePtr IdxScan(const std::string& table, const std::string& index,
                       std::unique_ptr<Expr> pushed = nullptr) {
  NodePtr n = MakeNode(OpType::kIndexScan);
  n->table_name = table;
  n->index_name = index;
  n->pushed_predicate = std::move(pushed);
  return n;
}

inline NodePtr CsScan(const std::string& table,
                      std::unique_ptr<Expr> pushed = nullptr) {
  NodePtr n = MakeNode(OpType::kColumnstoreScan);
  n->table_name = table;
  n->pushed_predicate = std::move(pushed);
  return n;
}

inline NodePtr RidLookup(const std::string& table, int rid_outer_column,
                         std::unique_ptr<Expr> pushed = nullptr) {
  NodePtr n = MakeNode(OpType::kRidLookup);
  n->table_name = table;
  n->rid_outer_column = rid_outer_column;
  n->pushed_predicate = std::move(pushed);
  return n;
}

inline NodePtr Filter(NodePtr child, std::unique_ptr<Expr> pred) {
  NodePtr n = MakeNode(OpType::kFilter);
  n->predicate = std::move(pred);
  n->children.push_back(std::move(child));
  return n;
}

inline NodePtr Compute(NodePtr child,
                       std::vector<std::unique_ptr<Expr>> projections) {
  NodePtr n = MakeNode(OpType::kComputeScalar);
  n->projections = std::move(projections);
  n->children.push_back(std::move(child));
  return n;
}

inline NodePtr Top(NodePtr child, int64_t n_rows) {
  NodePtr n = MakeNode(OpType::kTop);
  n->top_n = n_rows;
  n->children.push_back(std::move(child));
  return n;
}

inline NodePtr Sort(NodePtr child, std::vector<int> cols) {
  NodePtr n = MakeNode(OpType::kSort);
  n->sort_columns = std::move(cols);
  n->children.push_back(std::move(child));
  return n;
}

inline NodePtr TopNSort(NodePtr child, std::vector<int> cols, int64_t n_rows) {
  NodePtr n = MakeNode(OpType::kTopNSort);
  n->sort_columns = std::move(cols);
  n->top_n = n_rows;
  n->children.push_back(std::move(child));
  return n;
}

inline NodePtr DistinctSort(NodePtr child, std::vector<int> cols) {
  NodePtr n = MakeNode(OpType::kDistinctSort);
  n->sort_columns = std::move(cols);
  n->children.push_back(std::move(child));
  return n;
}

/// children[0] = build ("outer"), children[1] = probe ("inner").
inline NodePtr HashJoin(JoinKind kind, NodePtr build, NodePtr probe,
                        std::vector<int> build_keys,
                        std::vector<int> probe_keys,
                        std::unique_ptr<Expr> residual = nullptr) {
  NodePtr n = MakeNode(OpType::kHashJoin);
  n->join_kind = kind;
  n->outer_keys = std::move(build_keys);
  n->inner_keys = std::move(probe_keys);
  n->predicate = std::move(residual);
  n->children.push_back(std::move(build));
  n->children.push_back(std::move(probe));
  return n;
}

inline NodePtr MergeJoin(JoinKind kind, NodePtr outer, NodePtr inner,
                         std::vector<int> outer_keys,
                         std::vector<int> inner_keys) {
  NodePtr n = MakeNode(OpType::kMergeJoin);
  n->join_kind = kind;
  n->outer_keys = std::move(outer_keys);
  n->inner_keys = std::move(inner_keys);
  n->children.push_back(std::move(outer));
  n->children.push_back(std::move(inner));
  return n;
}

/// Nested Loops; inner may reference the outer row via OuterCol(...).
inline NodePtr Nlj(JoinKind kind, NodePtr outer, NodePtr inner,
                   std::unique_ptr<Expr> residual = nullptr,
                   bool buffered = false) {
  NodePtr n = MakeNode(OpType::kNestedLoopJoin);
  n->join_kind = kind;
  n->predicate = std::move(residual);
  n->buffered_outer = buffered;
  n->children.push_back(std::move(outer));
  n->children.push_back(std::move(inner));
  return n;
}

inline AggSpec Count() { return AggSpec{AggSpec::Func::kCount, -1}; }
inline AggSpec Sum(int col) { return AggSpec{AggSpec::Func::kSum, col}; }
inline AggSpec Min(int col) { return AggSpec{AggSpec::Func::kMin, col}; }
inline AggSpec Max(int col) { return AggSpec{AggSpec::Func::kMax, col}; }
inline AggSpec Avg(int col) { return AggSpec{AggSpec::Func::kAvg, col}; }

inline NodePtr HashAgg(NodePtr child, std::vector<int> group_cols,
                       std::vector<AggSpec> aggs) {
  NodePtr n = MakeNode(OpType::kHashAggregate);
  n->group_columns = std::move(group_cols);
  n->aggregates = std::move(aggs);
  n->children.push_back(std::move(child));
  return n;
}

inline NodePtr StreamAgg(NodePtr child, std::vector<int> group_cols,
                         std::vector<AggSpec> aggs) {
  NodePtr n = MakeNode(OpType::kStreamAggregate);
  n->group_columns = std::move(group_cols);
  n->aggregates = std::move(aggs);
  n->children.push_back(std::move(child));
  return n;
}

inline NodePtr Gather(NodePtr child) {
  NodePtr n = MakeNode(OpType::kGatherStreams);
  n->children.push_back(std::move(child));
  return n;
}

inline NodePtr Repartition(NodePtr child) {
  NodePtr n = MakeNode(OpType::kRepartitionStreams);
  n->children.push_back(std::move(child));
  return n;
}

inline NodePtr EagerSpool(NodePtr child) {
  NodePtr n = MakeNode(OpType::kEagerSpool);
  n->children.push_back(std::move(child));
  return n;
}

inline NodePtr LazySpool(NodePtr child) {
  NodePtr n = MakeNode(OpType::kLazySpool);
  n->children.push_back(std::move(child));
  return n;
}

inline NodePtr Concat(std::vector<NodePtr> children) {
  NodePtr n = MakeNode(OpType::kConcatenation);
  for (auto& c : children) n->children.push_back(std::move(c));
  return n;
}

inline NodePtr BitmapCreate(NodePtr child, int key_column) {
  NodePtr n = MakeNode(OpType::kBitmapCreate);
  n->bitmap_key_column = key_column;
  n->children.push_back(std::move(child));
  return n;
}

inline NodePtr Segment(NodePtr child, std::vector<int> group_cols) {
  NodePtr n = MakeNode(OpType::kSegment);
  n->group_columns = std::move(group_cols);
  n->children.push_back(std::move(child));
  return n;
}

inline NodePtr ConstantScan(std::vector<Row> rows) {
  NodePtr n = MakeNode(OpType::kConstantScan);
  n->constant_rows = std::move(rows);
  return n;
}

/// Wires a probe-side scan to a BitmapCreate node. Must be called after
/// FinalizePlan assigned ids — instead we wire by pointer before
/// finalization: see Workloads that call LinkBitmap(plan) post-finalize.
inline void ProbeBitmap(PlanNode* scan, int probe_column) {
  scan->bitmap_probe_column = probe_column;
  scan->bitmap_source_id = -2;  // resolved by LinkBitmaps after finalize
}

}  // namespace pb

/// Resolves bitmap probe references: any scan with bitmap_source_id == -2 is
/// linked to the unique BitmapCreate node in the plan (plans built here use
/// at most one). Call after FinalizePlan.
Status LinkBitmaps(Plan* plan);

}  // namespace lqs

#endif  // LQS_WORKLOAD_PLAN_BUILDER_H_
