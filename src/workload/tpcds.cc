#include <cmath>

#include "common/stringf.h"
#include "workload/datagen.h"
#include "workload/plan_builder.h"
#include "workload/workload.h"

namespace lqs {

namespace {

using pb::NodePtr;

// Column cheat sheet:
//  date_dim[4]:      d_datekey, d_month, d_year, d_moy
//  item[5]:          i_itemkey, i_brand, i_category, i_manager, i_price
//  store[3]:         s_storekey, s_state, s_county
//  customer[3]:      c_custkey, c_demo, c_addr
//  warehouse[2]:     w_warehousekey, w_state
//  store_sales[7]:   ss_datekey, ss_itemkey, ss_storekey, ss_custkey,
//                    ss_quantity, ss_price, ss_net
//  catalog_sales[6]: cs_datekey, cs_itemkey, cs_custkey, cs_qty, cs_price,
//                    cs_net
//  inventory[4]:     inv_datekey, inv_itemkey, inv_warehousekey, inv_qoh

Status BuildTpcdsData(Catalog* catalog, const TpcdsOptions& opt) {
  const auto n = [&](double base) {
    return static_cast<uint64_t>(std::max(1.0, base * opt.scale));
  };
  const uint64_t num_item = n(2000);
  const uint64_t num_customer = n(5000);
  const uint64_t num_ss = n(120000);
  const uint64_t num_cs = n(60000);
  const uint64_t num_inv = n(60000);
  const int64_t num_dates = 731;

  ZipfDistribution item_skew(num_item, opt.zipf_z);
  ZipfDistribution cust_skew(num_customer, opt.zipf_z);
  ZipfDistribution store_skew(40, opt.zipf_z);
  ZipfDistribution date_skew(static_cast<uint64_t>(num_dates), opt.zipf_z / 2);

  auto I = [](int64_t v) { return Value(v); };
  auto D = [](double v) { return Value(v); };

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "date_dim",
      Schema({{"d_datekey", DataType::kInt64},
              {"d_month", DataType::kInt64},
              {"d_year", DataType::kInt64},
              {"d_moy", DataType::kInt64}}),
      static_cast<uint64_t>(num_dates), opt.seed + 20,
      [&](uint64_t i, Rng&) {
        int64_t day = static_cast<int64_t>(i);
        return Row{I(day), I(day / 30), I(1998 + day / 365), I((day / 30) % 12)};
      })));

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "item",
      Schema({{"i_itemkey", DataType::kInt64},
              {"i_brand", DataType::kInt64},
              {"i_category", DataType::kInt64},
              {"i_manager", DataType::kInt64},
              {"i_price", DataType::kDouble}}),
      num_item, opt.seed + 21, [&](uint64_t i, Rng& rng) {
        return Row{I(static_cast<int64_t>(i)), I(rng.NextInRange(0, 49)),
                   I(rng.NextInRange(0, 9)), I(rng.NextInRange(0, 99)),
                   D(1 + rng.NextDouble() * 300)};
      })));

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "store",
      Schema({{"s_storekey", DataType::kInt64},
              {"s_state", DataType::kInt64},
              {"s_county", DataType::kInt64}}),
      40, opt.seed + 22, [&](uint64_t i, Rng& rng) {
        return Row{I(static_cast<int64_t>(i)), I(rng.NextInRange(0, 9)),
                   I(rng.NextInRange(0, 29))};
      })));

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "customer",
      Schema({{"c_custkey", DataType::kInt64},
              {"c_demo", DataType::kInt64},
              {"c_addr", DataType::kInt64}}),
      num_customer, opt.seed + 23, [&](uint64_t i, Rng& rng) {
        return Row{I(static_cast<int64_t>(i)), I(rng.NextInRange(0, 9)),
                   I(rng.NextInRange(0, 999))};
      })));

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "warehouse",
      Schema({{"w_warehousekey", DataType::kInt64},
              {"w_state", DataType::kInt64}}),
      10, opt.seed + 24, [&](uint64_t i, Rng& rng) {
        return Row{I(static_cast<int64_t>(i)), I(rng.NextInRange(0, 9))};
      })));

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "store_sales",
      Schema({{"ss_datekey", DataType::kInt64},
              {"ss_itemkey", DataType::kInt64},
              {"ss_storekey", DataType::kInt64},
              {"ss_custkey", DataType::kInt64},
              {"ss_quantity", DataType::kInt64},
              {"ss_price", DataType::kDouble},
              {"ss_net", DataType::kDouble}}),
      num_ss, opt.seed + 25, [&](uint64_t, Rng& rng) {
        double price = 1 + rng.NextDouble() * 300;
        int64_t qty = rng.NextInRange(1, 99);
        return Row{I(static_cast<int64_t>(date_skew.Sample(rng) - 1)),
                   I(static_cast<int64_t>(item_skew.Sample(rng) - 1)),
                   I(static_cast<int64_t>(store_skew.Sample(rng) - 1)),
                   I(static_cast<int64_t>(cust_skew.Sample(rng) - 1)),
                   I(qty), D(price), D(price * qty * 0.9)};
      })));

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "catalog_sales",
      Schema({{"cs_datekey", DataType::kInt64},
              {"cs_itemkey", DataType::kInt64},
              {"cs_custkey", DataType::kInt64},
              {"cs_qty", DataType::kInt64},
              {"cs_price", DataType::kDouble},
              {"cs_net", DataType::kDouble}}),
      num_cs, opt.seed + 26, [&](uint64_t, Rng& rng) {
        double price = 1 + rng.NextDouble() * 300;
        int64_t qty = rng.NextInRange(1, 99);
        return Row{I(static_cast<int64_t>(date_skew.Sample(rng) - 1)),
                   I(static_cast<int64_t>(item_skew.Sample(rng) - 1)),
                   I(static_cast<int64_t>(cust_skew.Sample(rng) - 1)),
                   I(qty), D(price), D(price * qty * 0.95)};
      })));

  LQS_RETURN_IF_ERROR(catalog->AddTable(BuildTable(
      "inventory",
      Schema({{"inv_datekey", DataType::kInt64},
              {"inv_itemkey", DataType::kInt64},
              {"inv_warehousekey", DataType::kInt64},
              {"inv_qoh", DataType::kInt64}}),
      num_inv, opt.seed + 27, [&](uint64_t, Rng& rng) {
        return Row{I(rng.NextInRange(0, 104) * 7),
                   I(static_cast<int64_t>(item_skew.Sample(rng) - 1)),
                   I(rng.NextInRange(0, 9)), I(rng.NextInRange(0, 1000))};
      })));

  for (const char* t : {"date_dim", "item", "store", "customer", "warehouse"}) {
    LQS_RETURN_IF_ERROR(catalog->GetMutableTable(t)->ClusterBy(0));
  }
  for (const char* t : {"store_sales", "catalog_sales", "inventory"}) {
    LQS_RETURN_IF_ERROR(catalog->GetMutableTable(t)->ClusterBy(0));
  }
  auto* ss = catalog->GetMutableTable("store_sales");
  LQS_RETURN_IF_ERROR(ss->BuildIndex("ix_ss_item", 1));
  LQS_RETURN_IF_ERROR(ss->BuildIndex("ix_ss_cust", 3));
  auto* inv = catalog->GetMutableTable("inventory");
  LQS_RETURN_IF_ERROR(inv->BuildIndex("ix_inv_item", 1));

  StatisticsOptions stats;
  stats.sample_rate = opt.stats_sample_rate;
  stats.seed = opt.seed + 99;
  return catalog->BuildAllStatistics(stats);
}

struct QueryList {
  const Catalog* catalog;
  std::vector<WorkloadQuery>* out;
  Status status = Status::OK();

  void Add(const std::string& name, NodePtr root) {
    if (!status.ok()) return;
    auto plan_or = FinalizePlan(std::move(root), *catalog);
    if (!plan_or.ok()) {
      status = Status::Internal(name + ": " + plan_or.status().ToString());
      return;
    }
    Status link = LinkBitmaps(&plan_or.value());
    if (!link.ok()) {
      status = Status::Internal(name + ": " + link.ToString());
      return;
    }
    out->push_back(WorkloadQuery{name, std::move(plan_or).value()});
  }
};

void BuildTpcdsQueries(QueryList& q) {
  using namespace pb;  // NOLINT: local plan-building DSL

  // q3-like: brand revenue by month.
  {
    NodePtr d = Filter(CiScan("date_dim"), ColCmp(3, CompareOp::kEq, 11));
    NodePtr ds = HashJoin(JoinKind::kInner, std::move(d), CiScan("store_sales"),
                          {0}, {0});
    // date[4] ++ ss[7] = [11]: ss_itemkey = 5, ss_net = 10.
    NodePtr dsi = HashJoin(JoinKind::kInner, std::move(ds),
                           Filter(CiScan("item"), ColCmp(3, CompareOp::kEq, 1)),
                           {5}, {0});
    // [11] ++ item[5] = [16]: d_year = 2, i_brand = 12.
    q.Add("ds_q03",
          TopNSort(HashAgg(std::move(dsi), {2, 12}, {Sum(10)}), {2}, 100));
  }

  // q7-like: demographic averages.
  {
    NodePtr c = Filter(CiScan("customer"), ColCmp(1, CompareOp::kEq, 3));
    NodePtr cs = HashJoin(JoinKind::kInner, std::move(c),
                          CiScan("store_sales"), {0}, {3});
    // customer[3] ++ ss[7] = [10]: ss_itemkey = 4, qty = 7, price = 8.
    NodePtr csi = HashJoin(JoinKind::kInner, std::move(cs), CiScan("item"),
                           {4}, {0});
    // [10] ++ item[5] = [15]: i_itemkey = 10.
    q.Add("ds_q07",
          Sort(HashAgg(std::move(csi), {10}, {Avg(7), Avg(8), Count()}), {0}));
  }

  // q13-like: multi-predicate fact aggregation — the Figure 11 Hash
  // Aggregate subject (blocking operator over a large filtered input).
  {
    NodePtr ss = CiScan("store_sales",
                        Or(And(ColBetween(4, 1, 40), ColCmp(2, CompareOp::kLe, 20)),
                           ColBetween(4, 60, 99)));
    NodePtr ssc = HashJoin(JoinKind::kInner, std::move(ss),
                           Filter(CiScan("customer"),
                                  ColCmp(1, CompareOp::kLe, 5)),
                           {3}, {0});
    // ss[7] ++ customer[3] = [10]
    NodePtr sscs = HashJoin(JoinKind::kInner, std::move(ssc), CiScan("store"),
                            {2}, {0});
    // [10] ++ store[3] = [13]: s_state = 11, ss_qty = 4, ss_net = 6.
    q.Add("ds_q13",
          HashAgg(std::move(sscs), {11}, {Avg(4), Sum(6), Count()}));
  }

  // q19-like: manager revenue with nested loops into item.
  {
    NodePtr ss = CiScan("store_sales", ColBetween(0, 300, 420));
    NodePtr nl = Nlj(JoinKind::kInner, std::move(ss),
                     CiSeek("item", OuterCol(1), OuterCol(1)), nullptr,
                     /*buffered=*/true);
    // ss[7] ++ item[5] = [12]: i_manager = 10, ss_net = 6.
    q.Add("ds_q19",
          TopNSort(HashAgg(Gather(std::move(nl)), {10}, {Sum(6)}), {1}, 50));
  }

  // q21-like: inventory before/after — the §4.6/Figure 12 plan shape:
  // several pipelines with order-of-magnitude weight differences.
  {
    NodePtr inv = CiScan("inventory");
    NodePtr invw = HashJoin(JoinKind::kInner, CiScan("warehouse"),
                            std::move(inv), {0}, {2});
    // warehouse[2] ++ inventory[4] = [6]: inv_itemkey = 3, inv_date = 2.
    NodePtr invwi = HashJoin(JoinKind::kInner,
                             Filter(CiScan("item"),
                                    ColCmp(4, CompareOp::kLe, 150)),
                             std::move(invw), {0}, {3});
    // item[5] ++ [6] = [11]: inv_datekey = 7, w_warehousekey = 5, qoh = 10.
    NodePtr invwid = HashJoin(JoinKind::kInner, std::move(invwi),
                              Filter(CiScan("date_dim"),
                                     ColBetween(0, 200, 500)),
                              {7}, {0});
    // [11] ++ date[4] = [15]: i_itemkey = 0, w key = 5, d_datekey = 11.
    NodePtr agg = HashAgg(std::move(invwid), {5, 0}, {Sum(10), Count()});
    q.Add("ds_q21", Sort(std::move(agg), {0, 1}));
  }

  // q25-like: store_sales joined catalog_sales through customer+item.
  {
    NodePtr ss = CiScan("store_sales", ColBetween(0, 100, 300));
    NodePtr cs = CiScan("catalog_sales", ColBetween(0, 100, 400));
    NodePtr join = HashJoin(JoinKind::kInner, std::move(ss), std::move(cs),
                            {3, 1}, {2, 1});
    // ss[7] ++ cs[6] = [13]: ss_item = 1, ss_net = 6, cs_net = 12.
    q.Add("ds_q25", Sort(HashAgg(std::move(join), {1}, {Sum(6), Sum(12)}),
                         {0}));
  }

  // q34-like: frequent buyers (aggregate then join back to customer).
  {
    NodePtr counts = HashAgg(CiScan("store_sales", ColBetween(0, 0, 500)),
                             {3}, {Count()});
    NodePtr big = Filter(std::move(counts),
                         ColCmp(1, CompareOp::kGe, 15));
    NodePtr bc = HashJoin(JoinKind::kInner, std::move(big),
                          CiScan("customer"), {0}, {0});
    q.Add("ds_q34", TopNSort(std::move(bc), {1}, 100));
  }

  // q42-like small dimensional rollup.
  {
    NodePtr d = Filter(CiScan("date_dim"), ColCmp(2, CompareOp::kEq, 1999));
    NodePtr dss = HashJoin(JoinKind::kInner, std::move(d),
                           CiScan("store_sales"), {0}, {0});
    // [4] ++ [7] = [11]: ss_item = 5, ss_net = 10.
    NodePtr dssi = HashJoin(JoinKind::kInner, std::move(dss), CiScan("item"),
                            {5}, {0});
    // [11] ++ item[5] = [16]: i_category = 13.
    q.Add("ds_q42", Sort(HashAgg(std::move(dssi), {13}, {Sum(10)}), {1}));
  }

  // q52-like with exchange + stream aggregate over sorted keys.
  {
    NodePtr ss = CiScan("store_sales");
    NodePtr agg = StreamAgg(std::move(ss), {0}, {Sum(6), Count()});
    q.Add("ds_q52", Sort(Gather(std::move(agg)), {1}));
  }

  // q55-like: brand revenue for one manager, NLJ + rid-lookup style plan.
  {
    NodePtr seek = IdxSeek("store_sales", "ix_ss_item", OuterCol(0));
    NodePtr lookup = Nlj(JoinKind::kInner, std::move(seek),
                         RidLookup("store_sales", 1));
    // seek[2] ++ ss[7] = [9]: ss_net = 8.
    NodePtr items = Filter(CiScan("item"), ColCmp(3, CompareOp::kEq, 28));
    NodePtr nl = Nlj(JoinKind::kInner, std::move(items), std::move(lookup),
                     nullptr, /*buffered=*/false);
    // item[5] ++ [9] = [14]: i_brand = 1, ss_net = 13.
    q.Add("ds_q55", Sort(HashAgg(std::move(nl), {1}, {Sum(13)}), {1}));
  }

  // q65-like: store-item revenue vs average (two aggregates, one spooled).
  {
    NodePtr per_si = HashAgg(CiScan("store_sales"), {2, 1}, {Sum(6)});
    // [3]: store, item, sum.
    NodePtr per_s = HashAgg(CiScan("store_sales"), {2}, {Avg(6)});
    // [2]: store, avg.
    NodePtr join = HashJoin(JoinKind::kInner, std::move(per_s),
                            std::move(per_si), {0}, {0},
                            Cmp(CompareOp::kLe, Col(4),
                                Expr::Arith(ArithOp::kMul, Col(1),
                                            LitD(0.5))));
    q.Add("ds_q65", Sort(std::move(join), {0, 3}));
  }

  // q72-like: catalog_sales ⋈ inventory (big join with residual).
  {
    NodePtr cs = CiScan("catalog_sales", ColBetween(0, 0, 200));
    NodePtr join = HashJoin(
        JoinKind::kInner, std::move(cs), CiScan("inventory"), {1}, {1},
        Cmp(CompareOp::kLt, Col(9), Col(3)));  // inv_qoh < cs_qty
    // cs[6] ++ inv[4] = [10]: cs_item = 1.
    q.Add("ds_q72",
          TopNSort(HashAgg(std::move(join), {1}, {Count()}), {1}, 100));
  }

  // q82-like: item/inventory/store_sales chain with semi join.
  {
    NodePtr i = Filter(CiScan("item"), ColBetween(4, 50, 80));
    NodePtr ii = HashJoin(JoinKind::kLeftSemi, std::move(i),
                          CiScan("inventory", ColBetween(3, 100, 500)), {0},
                          {1});
    // item[5]
    NodePtr iis = HashJoin(JoinKind::kLeftSemi, std::move(ii),
                           CiScan("store_sales"), {0}, {1});
    q.Add("ds_q82", Sort(std::move(iis), {0}));
  }

  // Exchange-heavy scan (parallel table scan shape, Figure 7).
  {
    NodePtr ss = CiScan("store_sales", ColBetween(4, 10, 60));
    q.Add("ds_scan_dop", HashAgg(Gather(Repartition(std::move(ss))), {2},
                                 {Sum(6), Count()}));
  }

  // Anti join: customers with no catalog sales.
  {
    NodePtr c = CiScan("customer");
    NodePtr anti = HashJoin(JoinKind::kLeftAnti, std::move(c),
                            CiScan("catalog_sales"), {0}, {2});
    q.Add("ds_anti", Sort(HashAgg(std::move(anti), {1}, {Count()}), {0}));
  }

  // Sort-heavy: big sort above a join (spill path).
  {
    NodePtr join = HashJoin(JoinKind::kInner, CiScan("item"),
                            CiScan("store_sales"), {0}, {1});
    // item[5] ++ ss[7] = [12]
    q.Add("ds_bigsort", Top(Sort(std::move(join), {4, 11}), 1000));
  }

  // Distinct + concat over the two fact tables.
  {
    NodePtr a = Compute(CiScan("store_sales", ColBetween(0, 0, 100)), [] {
      std::vector<std::unique_ptr<Expr>> v;
      v.push_back(Expr::Column(1));
      return v;
    }());
    NodePtr b = Compute(CiScan("catalog_sales", ColBetween(0, 0, 100)), [] {
      std::vector<std::unique_ptr<Expr>> v;
      // Pad to store_sales+1 arity so the item key lands at column 7 in
      // both concat branches.
      v.push_back(Expr::Literal(Value(int64_t{0})));
      v.push_back(Expr::Column(1));
      return v;
    }());
    // Both 8 wide; distinct over the appended item column.
    NodePtr cat = Concat([&] {
      std::vector<NodePtr> v;
      v.push_back(std::move(a));
      v.push_back(std::move(b));
      return v;
    }());
    q.Add("ds_union_items", DistinctSort(std::move(cat), {7}));
  }

  // Merge join over clustered date keys + stream aggregate.
  {
    NodePtr d = CiScan("date_dim", ColBetween(0, 0, 400));
    NodePtr mj = MergeJoin(JoinKind::kInner, std::move(d),
                           CiScan("store_sales"), {0}, {0});
    // date[4] ++ ss[7] = [11]
    q.Add("ds_merge", StreamAgg(std::move(mj), {0}, {Sum(10), Count()}));
  }

  // Lazy spool under a nested loop (Figure 4's Table Spool shape).
  {
    NodePtr dates = Filter(CiScan("date_dim"), ColCmp(3, CompareOp::kEq, 6));
    NodePtr spool = LazySpool(CiScan("store_sales", ColBetween(4, 90, 99)));
    NodePtr nl = Nlj(JoinKind::kInner, std::move(dates), std::move(spool),
                     Cmp(CompareOp::kEq, Col(0), Col(4)));
    q.Add("ds_spool", HashAgg(std::move(nl), {}, {Count(), Sum(9)}));
  }

  // Top-N sort over computed expression. (The pushed range is on an
  // unclustered column: a range on the clustered key would hit the paper's
  // §7(d) known limitation — predicates on the sort column make GetNext
  // counts time-correlated in a way §4.3 deliberately ignores.)
  {
    NodePtr ss = CiScan("store_sales", ColBetween(4, 20, 70));
    NodePtr c = Compute(std::move(ss), [] {
      std::vector<std::unique_ptr<Expr>> v;
      v.push_back(Expr::Arith(ArithOp::kMul, Expr::Column(5),
                              Expr::Column(4)));
      return v;
    }());
    q.Add("ds_topn", TopNSort(std::move(c), {7}, 25));
  }

  // Scalar rollup over everything (long single pipeline).
  q.Add("ds_total",
        HashAgg(CiScan("store_sales"), {}, {Sum(6), Sum(5), Count()}));

  // Buffered NLJ from date_dim into the fact clustered key (semi-blocking
  // driver showcase, Figure 7/8 shape).
  {
    NodePtr d = Filter(CiScan("date_dim"), ColBetween(0, 350, 380));
    NodePtr nl = Nlj(JoinKind::kInner, std::move(d),
                     CiSeek("store_sales", OuterCol(0), OuterCol(0)), nullptr,
                     /*buffered=*/true);
    // date[4] ++ ss[7] = [11]
    q.Add("ds_nlj_buffered",
          HashAgg(Gather(std::move(nl)), {2 + 4}, {Sum(10)}));
  }
}

}  // namespace

StatusOr<Workload> MakeTpcdsWorkload(const TpcdsOptions& options) {
  Workload w;
  w.name = "TPC-DS";
  w.catalog = std::make_unique<Catalog>();
  LQS_RETURN_IF_ERROR(BuildTpcdsData(w.catalog.get(), options));
  QueryList q{w.catalog.get(), &w.queries};
  BuildTpcdsQueries(q);
  LQS_RETURN_IF_ERROR(q.status);
  return w;
}

}  // namespace lqs
