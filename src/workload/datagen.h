#ifndef LQS_WORKLOAD_DATAGEN_H_
#define LQS_WORKLOAD_DATAGEN_H_

#include <functional>
#include <memory>
#include <string>

#include "common/rng.h"
#include "storage/table.h"

namespace lqs {

/// Builds a table of `num_rows` rows produced by `gen(row_index, rng)`.
/// Generation is fully deterministic given `seed`.
std::unique_ptr<Table> BuildTable(
    const std::string& name, Schema schema, uint64_t num_rows, uint64_t seed,
    const std::function<Row(uint64_t, Rng&)>& gen);

}  // namespace lqs

#endif  // LQS_WORKLOAD_DATAGEN_H_
