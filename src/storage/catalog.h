#ifndef LQS_STORAGE_CATALOG_H_
#define LQS_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/columnstore.h"
#include "storage/statistics.h"
#include "storage/table.h"

namespace lqs {

/// Options controlling how statistics are built; the knobs that determine how
/// wrong the optimizer's cardinality estimates are (DESIGN.md §2).
struct StatisticsOptions {
  int max_buckets = 32;
  /// Build histograms from this fraction of rows (stale/sampled stats).
  double sample_rate = 1.0;
  uint64_t seed = 7;
};

/// Database catalog: owns tables, columnstore indexes, and statistics.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table; fails if the name already exists.
  Status AddTable(std::unique_ptr<Table> table);

  /// nullptr if absent.
  const Table* GetTable(const std::string& name) const;
  Table* GetMutableTable(const std::string& name);

  /// Builds (or rebuilds) a nonclustered columnstore index over all columns
  /// of `table_name`.
  Status BuildColumnstore(const std::string& table_name);
  const ColumnstoreIndex* GetColumnstore(const std::string& table_name) const;

  /// Builds statistics for every column of every table.
  Status BuildAllStatistics(const StatisticsOptions& options);
  /// nullptr if statistics were never built for the table.
  const TableStatistics* GetStatistics(const std::string& table_name) const;

  const std::map<std::string, std::unique_ptr<Table>>& tables() const {
    return tables_;
  }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::unique_ptr<ColumnstoreIndex>> columnstores_;
  std::map<std::string, std::unique_ptr<TableStatistics>> statistics_;
};

}  // namespace lqs

#endif  // LQS_STORAGE_CATALOG_H_
