#ifndef LQS_STORAGE_STATISTICS_H_
#define LQS_STORAGE_STATISTICS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/comparison.h"
#include "common/value.h"
#include "storage/table.h"

namespace lqs {

/// Equi-depth histogram over one column, the statistics object the optimizer
/// consults for selectivity and distinct-count estimation. Deliberately
/// coarse (default 32 buckets) and optionally built from a sample: the
/// paper's refinement/bounding techniques exist because optimizer estimates
/// err, and this is where that error originates in our reproduction.
class Histogram {
 public:
  /// Builds over the given column values. `max_buckets` bounds resolution;
  /// `sample_rate` in (0, 1] builds from a deterministic sample (stale-stats
  /// emulation). `seed` drives the sampling.
  static std::unique_ptr<Histogram> Build(const Table& table, int column,
                                          int max_buckets = 32,
                                          double sample_rate = 1.0,
                                          uint64_t seed = 7);

  /// Estimated fraction of rows satisfying `col op literal`, in [0, 1].
  double EstimateSelectivity(CompareOp op, const Value& literal) const;

  /// Estimated number of distinct values in the column.
  double EstimateDistinct() const { return total_distinct_; }

  /// Total rows the histogram believes the column has (scaled up from the
  /// sample), i.e. the optimizer's view of table cardinality.
  double EstimateTotalRows() const { return total_rows_; }

  const Value& min_value() const { return min_value_; }
  const Value& max_value() const { return max_value_; }

  size_t num_buckets() const { return buckets_.size(); }

 private:
  struct Bucket {
    Value upper;        // inclusive upper bound of bucket range
    double rows = 0;    // estimated rows in bucket
    double distinct = 0;  // estimated distinct values in bucket
  };

  Histogram() = default;

  double total_rows_ = 0;
  double total_distinct_ = 0;
  Value min_value_;
  Value max_value_;
  std::vector<Bucket> buckets_;
};

/// Exact ℓp-norms of one column's degree sequence — the multiset of
/// per-value frequencies {f_v}. These are the precomputed statistics the
/// LpBound bounding engine (arXiv:2502.05912) turns into guaranteed join
/// upper bounds: |A ⋈ B| <= min(ℓ∞(A)·|B|, ℓ∞(B)·|A|, ℓ2(A)·ℓ2(B)).
///
/// Unlike the histograms above — deliberately coarse and sampled, because
/// the paper's techniques exist to survive estimation error — the norms are
/// computed EXACTLY over the full column regardless of sample_rate. A
/// pessimistic bound is only a bound if its inputs are sound; an exact
/// full-column pass at catalog-build time is exactly the cheap offline
/// investment LpBound prescribes.
struct DegreeNorms {
  double l1 = 0;        ///< Σ f_v = row count of the table
  double l2 = 0;        ///< sqrt(Σ f_v²), the Cauchy–Schwarz norm
  double linf = 0;      ///< max_v f_v, the worst-case join fan-out
  double distinct = 0;  ///< ℓ0: exact number of distinct values
  bool valid = false;   ///< set once computed (empty columns stay all-zero)
};

/// Computes exact degree-sequence norms of one column by a full sort+scan.
DegreeNorms ComputeDegreeNorms(const Table& table, int column);

/// Per-table statistics: one histogram per column, plus exact degree norms.
class TableStatistics {
 public:
  TableStatistics(const Table& table, int max_buckets, double sample_rate,
                  uint64_t seed);

  const Histogram& column(int i) const { return *histograms_[i]; }
  /// Exact degree-sequence norms of column `i` (see DegreeNorms).
  const DegreeNorms& degree_norms(int i) const { return degree_norms_[i]; }
  double table_rows() const { return table_rows_; }

 private:
  double table_rows_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
  std::vector<DegreeNorms> degree_norms_;
};

}  // namespace lqs

#endif  // LQS_STORAGE_STATISTICS_H_
