#ifndef LQS_STORAGE_STATISTICS_H_
#define LQS_STORAGE_STATISTICS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/comparison.h"
#include "common/value.h"
#include "storage/table.h"

namespace lqs {

/// Equi-depth histogram over one column, the statistics object the optimizer
/// consults for selectivity and distinct-count estimation. Deliberately
/// coarse (default 32 buckets) and optionally built from a sample: the
/// paper's refinement/bounding techniques exist because optimizer estimates
/// err, and this is where that error originates in our reproduction.
class Histogram {
 public:
  /// Builds over the given column values. `max_buckets` bounds resolution;
  /// `sample_rate` in (0, 1] builds from a deterministic sample (stale-stats
  /// emulation). `seed` drives the sampling.
  static std::unique_ptr<Histogram> Build(const Table& table, int column,
                                          int max_buckets = 32,
                                          double sample_rate = 1.0,
                                          uint64_t seed = 7);

  /// Estimated fraction of rows satisfying `col op literal`, in [0, 1].
  double EstimateSelectivity(CompareOp op, const Value& literal) const;

  /// Estimated number of distinct values in the column.
  double EstimateDistinct() const { return total_distinct_; }

  /// Total rows the histogram believes the column has (scaled up from the
  /// sample), i.e. the optimizer's view of table cardinality.
  double EstimateTotalRows() const { return total_rows_; }

  const Value& min_value() const { return min_value_; }
  const Value& max_value() const { return max_value_; }

  size_t num_buckets() const { return buckets_.size(); }

 private:
  struct Bucket {
    Value upper;        // inclusive upper bound of bucket range
    double rows = 0;    // estimated rows in bucket
    double distinct = 0;  // estimated distinct values in bucket
  };

  Histogram() = default;

  double total_rows_ = 0;
  double total_distinct_ = 0;
  Value min_value_;
  Value max_value_;
  std::vector<Bucket> buckets_;
};

/// Per-table statistics: one histogram per column.
class TableStatistics {
 public:
  TableStatistics(const Table& table, int max_buckets, double sample_rate,
                  uint64_t seed);

  const Histogram& column(int i) const { return *histograms_[i]; }
  double table_rows() const { return table_rows_; }

 private:
  double table_rows_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace lqs

#endif  // LQS_STORAGE_STATISTICS_H_
