#ifndef LQS_STORAGE_SCHEMA_H_
#define LQS_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace lqs {

/// Definition of a single column.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;
};

/// An ordered list of columns describing rows of a table (or of an
/// intermediate operator output).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Returns the index of the named column, or -1 if absent.
  int ColumnIndex(const std::string& name) const;

  void AddColumn(ColumnDef def) { columns_.push_back(std::move(def)); }

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace lqs

#endif  // LQS_STORAGE_SCHEMA_H_
