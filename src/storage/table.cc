#include "storage/table.h"

#include <algorithm>
#include <numeric>

namespace lqs {

OrderedIndex::Range OrderedIndex::Seek(const Value& key) const {
  return SeekRange(key, key);
}

OrderedIndex::Range OrderedIndex::SeekRange(const Value& lo,
                                            const Value& hi) const {
  auto begin = std::lower_bound(keys_.begin(), keys_.end(), lo,
                                [](const Value& a, const Value& b) {
                                  return a.Compare(b) < 0;
                                });
  auto end = std::upper_bound(keys_.begin(), keys_.end(), hi,
                              [](const Value& a, const Value& b) {
                                return a.Compare(b) < 0;
                              });
  Range r;
  r.begin = static_cast<uint64_t>(begin - keys_.begin());
  r.end = static_cast<uint64_t>(end - keys_.begin());
  if (r.end < r.begin) r.end = r.begin;
  return r;
}

Status Table::ClusterBy(int column) {
  if (column < 0 || static_cast<size_t>(column) >= schema_.num_columns()) {
    return Status::InvalidArgument("ClusterBy: column out of range for " +
                                   name_);
  }
  std::stable_sort(rows_.begin(), rows_.end(),
                   [column](const Row& a, const Row& b) {
                     return a[column].Compare(b[column]) < 0;
                   });
  clustered_column_ = column;
  indexes_.clear();
  return Status::OK();
}

Status Table::BuildIndex(const std::string& index_name, int column) {
  if (column < 0 || static_cast<size_t>(column) >= schema_.num_columns()) {
    return Status::InvalidArgument("BuildIndex: column out of range for " +
                                   name_);
  }
  if (GetIndex(index_name) != nullptr) {
    return Status::InvalidArgument("index already exists: " + index_name);
  }
  std::vector<uint64_t> order(rows_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this, column](uint64_t a, uint64_t b) {
                     return rows_[a][column].Compare(rows_[b][column]) < 0;
                   });
  auto index = std::make_unique<OrderedIndex>(index_name, column);
  for (uint64_t row_id : order) {
    index->AppendEntry(rows_[row_id][column], row_id);
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

const OrderedIndex* Table::GetIndex(const std::string& index_name) const {
  for (const auto& index : indexes_) {
    if (index->name() == index_name) return index.get();
  }
  return nullptr;
}

const OrderedIndex* Table::FindIndexOnColumn(int column) const {
  for (const auto& index : indexes_) {
    if (index->key_column() == column) return index.get();
  }
  return nullptr;
}

}  // namespace lqs
