#ifndef LQS_STORAGE_TABLE_H_
#define LQS_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "common/value.h"
#include "storage/schema.h"

namespace lqs {

/// Rows per heap/index page. Scans charge one logical I/O per page crossed,
/// which is the signal §4.3's storage-predicate progress technique consumes.
inline constexpr uint64_t kRowsPerPage = 128;

/// An ordered secondary index over one column of a table. Entries are
/// (key, row id) pairs sorted by key then row id; Seek() returns the range of
/// entries equal to a key, which the IndexSeek / RID Lookup operators use.
class OrderedIndex {
 public:
  OrderedIndex(std::string name, int key_column)
      : name_(std::move(name)), key_column_(key_column) {}

  const std::string& name() const { return name_; }
  int key_column() const { return key_column_; }

  /// Entry positions [begin, end) whose key equals `key`.
  struct Range {
    uint64_t begin = 0;
    uint64_t end = 0;
  };
  Range Seek(const Value& key) const;

  /// Entry positions [begin, end) whose key lies in [lo, hi] (inclusive).
  Range SeekRange(const Value& lo, const Value& hi) const;

  uint64_t num_entries() const { return keys_.size(); }
  const Value& key_at(uint64_t pos) const { return keys_[pos]; }
  uint64_t row_id_at(uint64_t pos) const { return row_ids_[pos]; }

  /// Pages occupied by the index leaf level (for I/O accounting).
  uint64_t num_pages() const {
    return (keys_.size() + kRowsPerPage - 1) / kRowsPerPage;
  }

  /// Called by Table::BuildIndex; entries must be added in key order.
  void AppendEntry(Value key, uint64_t row_id) {
    keys_.push_back(std::move(key));
    row_ids_.push_back(row_id);
  }

 private:
  std::string name_;
  int key_column_;
  std::vector<Value> keys_;
  std::vector<uint64_t> row_ids_;
};

/// A heap/row-store table: schema + rows, plus any number of ordered
/// secondary indexes and at most one "clustered" sort order. Immutable after
/// load (the paper's workloads are read-only decision-support queries).
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  uint64_t num_rows() const { return rows_.size(); }
  uint64_t num_pages() const {
    return (rows_.size() + kRowsPerPage - 1) / kRowsPerPage;
  }
  const Row& row(uint64_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  void AppendRow(Row row) { rows_.push_back(std::move(row)); }
  void Reserve(uint64_t n) { rows_.reserve(n); }

  /// Sorts the heap by `column` ascending, making it behave like a clustered
  /// index on that column (Clustered Index Scan/Seek use this order).
  /// Invalidates previously built secondary indexes; build them afterwards.
  Status ClusterBy(int column);
  int clustered_column() const { return clustered_column_; }

  /// Builds an ordered secondary index on `column`.
  Status BuildIndex(const std::string& index_name, int column);

  /// Index lookup by name (nullptr if absent).
  const OrderedIndex* GetIndex(const std::string& index_name) const;
  /// First index keyed on `column` (nullptr if none).
  const OrderedIndex* FindIndexOnColumn(int column) const;

  const std::vector<std::unique_ptr<OrderedIndex>>& indexes() const {
    return indexes_;
  }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<OrderedIndex>> indexes_;
  int clustered_column_ = -1;
};

}  // namespace lqs

#endif  // LQS_STORAGE_TABLE_H_
