#include "storage/catalog.h"

namespace lqs {

Status Catalog::AddTable(std::unique_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

const Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Catalog::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Catalog::BuildColumnstore(const std::string& table_name) {
  const Table* table = GetTable(table_name);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + table_name);
  }
  columnstores_[table_name] = std::make_unique<ColumnstoreIndex>(
      "ncci_" + table_name, table);
  return Status::OK();
}

const ColumnstoreIndex* Catalog::GetColumnstore(
    const std::string& table_name) const {
  auto it = columnstores_.find(table_name);
  return it == columnstores_.end() ? nullptr : it->second.get();
}

Status Catalog::BuildAllStatistics(const StatisticsOptions& options) {
  for (auto& [name, table] : tables_) {
    statistics_[name] = std::make_unique<TableStatistics>(
        *table, options.max_buckets, options.sample_rate, options.seed);
  }
  return Status::OK();
}

const TableStatistics* Catalog::GetStatistics(
    const std::string& table_name) const {
  auto it = statistics_.find(table_name);
  return it == statistics_.end() ? nullptr : it->second.get();
}

}  // namespace lqs
