#ifndef LQS_STORAGE_COLUMNSTORE_H_
#define LQS_STORAGE_COLUMNSTORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "storage/table.h"

namespace lqs {

/// Rows per column segment. SQL Server uses ~1M-row rowgroups over ~10^8-row
/// tables (a ~1% granularity); we preserve that RATIO at laptop scale
/// (DESIGN.md §2) so segment-fraction progress (§4.7) has the same
/// resolution the paper's system had — a scaled fact table spans O(100)
/// segments, not a handful.
inline constexpr uint64_t kRowsPerSegment = 256;

/// Per-column, per-segment metadata (the sys.column_store_segments analogue):
/// min/max values enable segment elimination for pushed-down predicates.
struct SegmentMeta {
  uint64_t first_row = 0;
  uint64_t num_rows = 0;
  Value min_value;
  Value max_value;
};

/// A nonclustered columnstore index over a heap table. Rows are grouped into
/// fixed-size segments; the batch-mode ColumnstoreScan operator processes one
/// segment at a time and reports segments_processed to the DMV layer.
class ColumnstoreIndex {
 public:
  /// Builds segment metadata over the table's current row order.
  ColumnstoreIndex(std::string name, const Table* table);

  const std::string& name() const { return name_; }
  const Table* table() const { return table_; }

  uint64_t num_segments() const { return num_segments_; }

  /// Metadata for column `col` of segment `seg`.
  const SegmentMeta& segment(int col, uint64_t seg) const {
    return per_column_[col][seg];
  }

  /// True if the segment can be skipped for a predicate `column op value`
  /// given min/max metadata. `op` uses the ComparisonOp codes from
  /// exec/expr.h, passed as int to avoid a dependency cycle.
  bool CanEliminateSegment(int col, uint64_t seg, int comparison_op,
                           const Value& literal) const;

 private:
  std::string name_;
  const Table* table_;
  uint64_t num_segments_;
  // per_column_[col][seg]
  std::vector<std::vector<SegmentMeta>> per_column_;
};

}  // namespace lqs

#endif  // LQS_STORAGE_COLUMNSTORE_H_
