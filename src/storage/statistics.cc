#include "storage/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace lqs {

std::unique_ptr<Histogram> Histogram::Build(const Table& table, int column,
                                            int max_buckets,
                                            double sample_rate,
                                            uint64_t seed) {
  auto hist = std::unique_ptr<Histogram>(new Histogram());
  std::vector<Value> values;
  values.reserve(static_cast<size_t>(
      static_cast<double>(table.num_rows()) * sample_rate) + 1);
  Rng rng(seed + static_cast<uint64_t>(column) * 1315423911ULL);
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    if (sample_rate >= 1.0 || rng.NextBool(sample_rate)) {
      values.push_back(table.row(r)[column]);
    }
  }
  if (values.empty()) {
    // Degenerate: pretend one row so downstream math stays finite.
    hist->total_rows_ = static_cast<double>(table.num_rows());
    hist->total_distinct_ = 1;
    return hist;
  }
  std::sort(values.begin(), values.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  const double scale =
      static_cast<double>(table.num_rows()) / static_cast<double>(values.size());
  hist->min_value_ = values.front();
  hist->max_value_ = values.back();
  hist->total_rows_ = static_cast<double>(table.num_rows());

  const size_t n = values.size();
  const size_t bucket_count = std::min<size_t>(max_buckets, n);
  const size_t per_bucket = (n + bucket_count - 1) / bucket_count;
  double total_distinct = 0;
  for (size_t start = 0; start < n; start += per_bucket) {
    size_t end = std::min(n, start + per_bucket);
    // Extend the bucket so equal values never straddle a boundary; keeps
    // equality estimates consistent.
    while (end < n && values[end] == values[end - 1]) ++end;
    Bucket b;
    b.upper = values[end - 1];
    b.rows = static_cast<double>(end - start) * scale;
    double distinct = 1;
    for (size_t i = start + 1; i < end; ++i) {
      if (!(values[i] == values[i - 1])) distinct += 1;
    }
    b.distinct = distinct;
    total_distinct += distinct;
    hist->buckets_.push_back(std::move(b));
    start = end - per_bucket;  // compensate the loop increment after extension
  }
  hist->total_distinct_ = std::max(1.0, total_distinct);
  return hist;
}

double Histogram::EstimateSelectivity(CompareOp op,
                                      const Value& literal) const {
  if (buckets_.empty() || total_rows_ <= 0) return 0.5;
  if (op == CompareOp::kNe) {
    return 1.0 - EstimateSelectivity(CompareOp::kEq, literal);
  }
  if (op == CompareOp::kGt) {
    return 1.0 - EstimateSelectivity(CompareOp::kLe, literal);
  }
  if (op == CompareOp::kGe) {
    return 1.0 - EstimateSelectivity(CompareOp::kLt, literal);
  }

  double hist_rows = 0;
  for (const Bucket& b : buckets_) hist_rows += b.rows;

  if (op == CompareOp::kEq) {
    // Uniformity within the containing bucket: rows / distinct.
    Value lower = min_value_;
    for (const Bucket& b : buckets_) {
      if (literal.Compare(b.upper) <= 0) {
        if (literal.Compare(lower) < 0) return 0.0;
        return (b.rows / std::max(1.0, b.distinct)) / hist_rows;
      }
      lower = b.upper;
    }
    return 0.0;  // beyond max
  }

  // kLt / kLe: accumulate full buckets below, interpolate within the
  // containing bucket assuming a uniform spread over its value range.
  double below = 0;
  Value lower = min_value_;
  for (const Bucket& b : buckets_) {
    int cmp_upper = literal.Compare(b.upper);
    if (cmp_upper > 0) {
      below += b.rows;
      lower = b.upper;
      continue;
    }
    // literal falls in this bucket (or below its lower edge).
    double frac = 0.0;
    if (lower.type() != DataType::kString &&
        b.upper.type() != DataType::kString) {
      double lo = lower.AsDouble();
      double hi = b.upper.AsDouble();
      double x = literal.AsDouble();
      if (hi > lo) frac = std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
      else frac = cmp_upper >= 0 ? 1.0 : 0.0;
    } else {
      frac = 0.5;  // no linear interpolation over strings
    }
    double in_bucket = b.rows * frac;
    if (op == CompareOp::kLe && cmp_upper == 0) in_bucket = b.rows;
    return std::clamp((below + in_bucket) / hist_rows, 0.0, 1.0);
  }
  return 1.0;  // literal above max
}

DegreeNorms ComputeDegreeNorms(const Table& table, int column) {
  DegreeNorms norms;
  norms.valid = true;
  if (table.num_rows() == 0) return norms;  // all-zero norms: empty column
  std::vector<Value> values;
  values.reserve(table.num_rows());
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    values.push_back(table.row(r)[column]);
  }
  std::sort(values.begin(), values.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  double sum_sq = 0;
  double run = 1;
  for (size_t i = 1; i <= values.size(); ++i) {
    if (i < values.size() && values[i] == values[i - 1]) {
      run += 1;
      continue;
    }
    sum_sq += run * run;
    norms.linf = std::max(norms.linf, run);
    norms.distinct += 1;
    run = 1;
  }
  norms.l1 = static_cast<double>(table.num_rows());
  norms.l2 = std::sqrt(sum_sq);
  return norms;
}

TableStatistics::TableStatistics(const Table& table, int max_buckets,
                                 double sample_rate, uint64_t seed)
    : table_rows_(static_cast<double>(table.num_rows())) {
  // Small tables get fullscan statistics, as production engines do
  // (sampling a 25-row dimension produces garbage NDV estimates that
  // cascade through every join estimate above it).
  if (table.num_rows() < 2000) sample_rate = 1.0;
  histograms_.reserve(table.schema().num_columns());
  degree_norms_.reserve(table.schema().num_columns());
  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    histograms_.push_back(Histogram::Build(table, static_cast<int>(c),
                                           max_buckets, sample_rate, seed));
    // Norms are exact even when the histogram is sampled: bounds must be
    // sound while estimates are allowed (designed!) to be wrong.
    degree_norms_.push_back(ComputeDegreeNorms(table, static_cast<int>(c)));
  }
}

}  // namespace lqs
