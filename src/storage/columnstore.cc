#include "storage/columnstore.h"

#include "common/comparison.h"

namespace lqs {

ColumnstoreIndex::ColumnstoreIndex(std::string name, const Table* table)
    : name_(std::move(name)), table_(table) {
  const uint64_t rows = table->num_rows();
  num_segments_ = (rows + kRowsPerSegment - 1) / kRowsPerSegment;
  const size_t cols = table->schema().num_columns();
  per_column_.resize(cols);
  for (size_t c = 0; c < cols; ++c) {
    per_column_[c].resize(num_segments_);
    for (uint64_t s = 0; s < num_segments_; ++s) {
      SegmentMeta& meta = per_column_[c][s];
      meta.first_row = s * kRowsPerSegment;
      meta.num_rows = std::min(kRowsPerSegment, rows - meta.first_row);
      if (meta.num_rows == 0) continue;
      meta.min_value = table->row(meta.first_row)[c];
      meta.max_value = meta.min_value;
      for (uint64_t r = meta.first_row + 1; r < meta.first_row + meta.num_rows;
           ++r) {
        const Value& v = table->row(r)[c];
        if (v.Compare(meta.min_value) < 0) meta.min_value = v;
        if (v.Compare(meta.max_value) > 0) meta.max_value = v;
      }
    }
  }
}

bool ColumnstoreIndex::CanEliminateSegment(int col, uint64_t seg,
                                           int comparison_op,
                                           const Value& literal) const {
  const SegmentMeta& meta = per_column_[col][seg];
  if (meta.num_rows == 0) return true;
  auto op = static_cast<CompareOp>(comparison_op);
  // A segment can be eliminated when no value in [min, max] can satisfy the
  // predicate.
  switch (op) {
    case CompareOp::kEq:
      return literal.Compare(meta.min_value) < 0 ||
             literal.Compare(meta.max_value) > 0;
    case CompareOp::kLt:
      return meta.min_value.Compare(literal) >= 0;
    case CompareOp::kLe:
      return meta.min_value.Compare(literal) > 0;
    case CompareOp::kGt:
      return meta.max_value.Compare(literal) <= 0;
    case CompareOp::kGe:
      return meta.max_value.Compare(literal) < 0;
    case CompareOp::kNe:
      // Only eliminable when the segment holds a single value equal to the
      // literal.
      return meta.min_value == meta.max_value && meta.min_value == literal;
  }
  return false;
}

}  // namespace lqs
