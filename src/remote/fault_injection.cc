#include "remote/fault_injection.h"

#include <algorithm>
#include <utility>

namespace lqs {

FaultInjectingEndpoint::FaultInjectingEndpoint(
    std::unique_ptr<SnapshotEndpoint> inner, const FaultConfig& config)
    : inner_(std::move(inner)), config_(config), rng_(config.seed) {}

void FaultInjectingEndpoint::Corrupt(std::string* frame) {
  ++stats_.corrupted;
  if (frame->empty()) return;
  if (rng_.NextBool(0.5)) {
    // Truncation: the tail never made it. May cut into the header.
    frame->resize(rng_.NextBelow(frame->size()));
  } else {
    // Single bit flip anywhere in the frame — header, length, CRC or
    // payload. Whatever it hits, decode must fail cleanly.
    const size_t byte = rng_.NextBelow(frame->size());
    (*frame)[byte] = static_cast<char>(
        static_cast<uint8_t>((*frame)[byte]) ^ (1u << rng_.NextBelow(8)));
  }
}

PollResult FaultInjectingEndpoint::Poll(const PollRequest& request) {
  // A response already in flight that has reached the client by now is
  // delivered first, in arrival order. It answers an *older* request, so
  // its snapshot is stale — possibly older than one the client has already
  // accepted (reordering). The client's regression filter deals with that.
  if (!in_flight_.empty() &&
      in_flight_.front().arrival_ms <= request.now_ms) {
    PollResult result;
    result.frame = std::move(in_flight_.front().frame);
    result.arrival_ms = in_flight_.front().arrival_ms;
    in_flight_.pop_front();
    ++stats_.late_delivered;
    return result;
  }

  PollResult result = inner_->Poll(request);
  if (!result.status.ok()) return result;
  ++stats_.forwarded;

  if (config_.corrupt_probability > 0 &&
      rng_.NextBool(config_.corrupt_probability)) {
    // Damaged but delivered: transport looks healthy, CRC says otherwise.
    Corrupt(&result.frame);
    return result;
  }
  if (config_.drop_probability > 0 && rng_.NextBool(config_.drop_probability)) {
    ++stats_.dropped;
    PollResult timeout;
    timeout.status = Status::DeadlineExceeded("fault: response dropped");
    timeout.arrival_ms = request.deadline_ms;
    return timeout;
  }
  if (config_.delay_probability > 0 &&
      rng_.NextBool(config_.delay_probability)) {
    const double delay =
        config_.max_delay_ms > 0
            ? (1.0 - rng_.NextDouble()) * config_.max_delay_ms  // (0, max]
            : 0.0;
    const double arrival = request.now_ms + delay;
    if (arrival > request.deadline_ms) {
      // Past the client's deadline: queue for a later poll and report a
      // timeout now. Insertion keeps the queue in arrival order.
      InFlight late{arrival, std::move(result.frame)};
      in_flight_.insert(
          std::upper_bound(in_flight_.begin(), in_flight_.end(), late,
                           [](const InFlight& a, const InFlight& b) {
                             return a.arrival_ms < b.arrival_ms;
                           }),
          std::move(late));
      ++stats_.delayed;
      PollResult timeout;
      timeout.status =
          Status::DeadlineExceeded("fault: response delayed past deadline");
      timeout.arrival_ms = request.deadline_ms;
      return timeout;
    }
    result.arrival_ms = arrival;  // slow but within deadline
  }
  if (config_.duplicate_probability > 0 &&
      rng_.NextBool(config_.duplicate_probability)) {
    // The same bytes show up again later. Arrival is drawn like a delay so
    // duplicates interleave with genuinely late responses.
    const double extra = config_.max_delay_ms > 0
                             ? (1.0 - rng_.NextDouble()) * config_.max_delay_ms
                             : 1e-6;
    InFlight dup{request.now_ms + extra, result.frame};
    in_flight_.insert(
        std::upper_bound(in_flight_.begin(), in_flight_.end(), dup,
                         [](const InFlight& a, const InFlight& b) {
                           return a.arrival_ms < b.arrival_ms;
                         }),
        std::move(dup));
    ++stats_.duplicated;
  }
  return result;
}

}  // namespace lqs
