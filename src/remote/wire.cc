#include "remote/wire.h"

#include <cstring>

#include "common/stringf.h"

namespace lqs {

namespace {

// ---------------------------------------------------------------------------
// Low-level primitives. The writer appends to a std::string; the reader is a
// bounds-checked cursor over a string_view — every Get* returns a Status and
// refuses to advance past the end, which is what makes the decoders total.
// ---------------------------------------------------------------------------

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void PutByte(uint8_t b) { out_->push_back(static_cast<char>(b)); }

  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      PutByte(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    PutByte(static_cast<uint8_t>(v));
  }

  void PutZigzag(int64_t v) { PutVarint(ZigzagEncode(v)); }

  /// Raw IEEE-754 bit pattern, little-endian: bit-exact round trips.
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      PutByte(static_cast<uint8_t>(bits >> (8 * i)));
    }
  }

  void PutString(const std::string& s) {
    PutVarint(s.size());
    out_->append(s);
  }

  /// Compact encoding of an XOR of two IEEE-754 bit patterns: one prefix
  /// byte packing (trailing-zero-byte count << 4 | significant-byte count),
  /// then the significant bytes little-endian. Clock-like doubles differ in
  /// a handful of mantissa bytes, so a changed timestamp usually costs 3-4
  /// bytes instead of 8; the worst case is 9. Zero encodes as the single
  /// byte 0x00. The form is canonical (maximal trailing-zero count, minimal
  /// significant count), so decode→re-encode is byte-identical.
  void PutXorCompact(uint64_t x) {
    if (x == 0) {
      PutByte(0);
      return;
    }
    int tz = 0;
    while ((x & 0xFF) == 0) {
      x >>= 8;
      ++tz;
    }
    uint64_t probe = x;
    int sig = 0;
    while (probe != 0) {
      probe >>= 8;
      ++sig;
    }
    PutByte(static_cast<uint8_t>((tz << 4) | sig));
    for (int i = 0; i < sig; ++i) {
      PutByte(static_cast<uint8_t>(x >> (8 * i)));
    }
  }

 private:
  std::string* out_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  Status GetByte(uint8_t* out) {
    if (remaining() < 1) return Truncated("byte");
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status GetVarint(uint64_t* out) {
    uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t byte;
      LQS_RETURN_IF_ERROR(GetByte(&byte));
      value |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        // The tenth byte may contribute at most one bit (shift 63).
        if (shift == 63 && byte > 1) {
          return Status::InvalidArgument("wire: varint overflows 64 bits");
        }
        *out = value;
        return Status::OK();
      }
    }
    return Status::InvalidArgument("wire: varint longer than 10 bytes");
  }

  Status GetZigzag(int64_t* out) {
    uint64_t raw;
    LQS_RETURN_IF_ERROR(GetVarint(&raw));
    *out = ZigzagDecode(raw);
    return Status::OK();
  }

  Status GetDouble(double* out) {
    if (remaining() < 8) return Truncated("double");
    uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
              << (8 * i);
    }
    pos_ += 8;
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }

  Status GetString(std::string* out) {
    uint64_t size;
    LQS_RETURN_IF_ERROR(GetVarint(&size));
    if (size > remaining()) return Truncated("string body");
    out->assign(data_.substr(pos_, size));
    pos_ += size;
    return Status::OK();
  }

  /// Inverse of WireWriter::PutXorCompact. Rejects non-canonical forms
  /// (zero with a nonzero prefix, leading/trailing zero significant bytes,
  /// counts that overflow 8 bytes) so decode→re-encode stays byte-identical.
  Status GetXorCompact(uint64_t* out) {
    uint8_t prefix;
    LQS_RETURN_IF_ERROR(GetByte(&prefix));
    if (prefix == 0) {
      *out = 0;
      return Status::OK();
    }
    const int tz = prefix >> 4;
    const int sig = prefix & 0x0F;
    if (sig == 0 || sig > 8 || tz > 7 || tz + sig > 8) {
      return Status::InvalidArgument(
          StringF("wire: malformed xor-compact prefix 0x%02x", prefix));
    }
    uint64_t value = 0;
    for (int i = 0; i < sig; ++i) {
      uint8_t byte;
      LQS_RETURN_IF_ERROR(GetByte(&byte));
      if (i == 0 && byte == 0) {
        return Status::InvalidArgument(
            "wire: xor-compact trailing zeros not maximal");
      }
      if (i == sig - 1 && byte == 0) {
        return Status::InvalidArgument(
            "wire: xor-compact significant count not minimal");
      }
      value |= static_cast<uint64_t>(byte) << (8 * i);
    }
    *out = value << (8 * tz);
    return Status::OK();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::OutOfRange(StringF("wire: payload truncated reading %s",
                                      what));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

void PutFixed32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(static_cast<uint8_t>(v >> (8 * i))));
  }
}

uint32_t GetFixed32(std::string_view data, size_t offset) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[offset + i]))
         << (8 * i);
  }
  return v;
}

/// Wraps `payload` (already appended at out->size() - payload_size) in a
/// frame: the header is written into the reserved bytes at `header_at`.
void FinishFrame(std::string* out, size_t header_at, WireType type) {
  const size_t payload_size = out->size() - header_at - kWireHeaderSize;
  std::string header;
  header.reserve(kWireHeaderSize);
  header.push_back(kWireMagic0);
  header.push_back(kWireMagic1);
  header.push_back(static_cast<char>(kWireVersion));
  header.push_back(static_cast<char>(type));
  PutFixed32(&header, static_cast<uint32_t>(payload_size));
  PutFixed32(&header, WireCrc32(out->data() + header_at + kWireHeaderSize,
                                payload_size));
  out->replace(header_at, kWireHeaderSize, header);
}

size_t StartFrame(std::string* out) {
  const size_t header_at = out->size();
  out->append(kWireHeaderSize, '\0');  // patched by FinishFrame
  return header_at;
}

/// Header checks shared by every decoder: magic, version, declared type,
/// exact length, CRC. Returns the payload view on success.
StatusOr<std::string_view> CheckFrame(std::string_view frame, WireType want) {
  if (frame.size() < kWireHeaderSize) {
    return Status::OutOfRange(
        StringF("wire: frame shorter than header (%zu bytes)", frame.size()));
  }
  if (frame[0] != kWireMagic0 || frame[1] != kWireMagic1) {
    return Status::InvalidArgument("wire: bad magic");
  }
  const uint8_t version = static_cast<uint8_t>(frame[2]);
  if (version != kWireVersion) {
    return Status::Unimplemented(
        StringF("wire: version %u not supported (speaking %u)", version,
                kWireVersion));
  }
  const uint8_t type = static_cast<uint8_t>(frame[3]);
  if (type != static_cast<uint8_t>(want)) {
    return Status::InvalidArgument(
        StringF("wire: message type %u where %u expected", type,
                static_cast<uint8_t>(want)));
  }
  const uint32_t payload_size = GetFixed32(frame, 4);
  if (frame.size() != kWireHeaderSize + payload_size) {
    return Status::OutOfRange(
        StringF("wire: declared payload %u bytes, frame carries %zu",
                payload_size, frame.size() - kWireHeaderSize));
  }
  const std::string_view payload = frame.substr(kWireHeaderSize);
  const uint32_t crc = GetFixed32(frame, 8);
  if (WireCrc32(payload.data(), payload.size()) != crc) {
    return Status::DataLoss("wire: payload CRC mismatch");
  }
  return payload;
}

// ---------------------------------------------------------------------------
// Message bodies. Bodies are headerless so composites (trace, poll response)
// can embed them; the public Encode*/Decode* wrap exactly one body per
// frame.
// ---------------------------------------------------------------------------

constexpr uint8_t kProfileFlagOpened = 1u << 0;
constexpr uint8_t kProfileFlagClosed = 1u << 1;
constexpr uint8_t kProfileFlagFinished = 1u << 2;
constexpr uint8_t kProfileFlagPushedPredicate = 1u << 3;
constexpr uint8_t kProfileFlagMask =
    kProfileFlagOpened | kProfileFlagClosed | kProfileFlagFinished |
    kProfileFlagPushedPredicate;

constexpr uint8_t kPollFlagHasSnapshot = 1u << 0;
constexpr uint8_t kPollFlagQueryComplete = 1u << 1;
constexpr uint8_t kPollFlagHasDelta = 1u << 2;
constexpr uint8_t kPollFlagMask =
    kPollFlagHasSnapshot | kPollFlagQueryComplete | kPollFlagHasDelta;

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

uint8_t PackProfileFlags(const OperatorProfile& op) {
  uint8_t flags = 0;
  if (op.opened) flags |= kProfileFlagOpened;
  if (op.closed) flags |= kProfileFlagClosed;
  if (op.finished) flags |= kProfileFlagFinished;
  if (op.has_pushed_predicate) flags |= kProfileFlagPushedPredicate;
  return flags;
}

Status UnpackProfileFlags(uint8_t flags, OperatorProfile* op) {
  if ((flags & ~kProfileFlagMask) != 0) {
    return Status::InvalidArgument(
        StringF("wire: undefined operator flag bits 0x%02x", flags));
  }
  op->opened = (flags & kProfileFlagOpened) != 0;
  op->closed = (flags & kProfileFlagClosed) != 0;
  op->finished = (flags & kProfileFlagFinished) != 0;
  op->has_pushed_predicate = (flags & kProfileFlagPushedPredicate) != 0;
  return Status::OK();
}

void PutOperatorProfile(WireWriter* w, const OperatorProfile& op) {
  w->PutZigzag(op.node_id);
  w->PutZigzag(op.parent_node_id);
  w->PutVarint(static_cast<uint64_t>(op.op_type));
  w->PutVarint(op.row_count);
  w->PutDouble(op.estimate_row_count);
  w->PutVarint(op.rebind_count);
  w->PutVarint(op.logical_read_count);
  w->PutVarint(op.segment_read_count);
  w->PutVarint(op.segment_total_count);
  w->PutDouble(op.open_time_ms);
  w->PutDouble(op.cpu_time_ms);
  w->PutDouble(op.io_time_ms);
  w->PutDouble(op.last_active_ms);
  w->PutDouble(op.first_row_ms);
  w->PutDouble(op.close_time_ms);
  w->PutByte(PackProfileFlags(op));
  w->PutVarint(op.total_pages);
}

Status GetOperatorProfile(WireReader* r, OperatorProfile* op) {
  int64_t node_id, parent_node_id;
  LQS_RETURN_IF_ERROR(r->GetZigzag(&node_id));
  LQS_RETURN_IF_ERROR(r->GetZigzag(&parent_node_id));
  op->node_id = static_cast<int>(node_id);
  op->parent_node_id = static_cast<int>(parent_node_id);
  uint64_t op_type;
  LQS_RETURN_IF_ERROR(r->GetVarint(&op_type));
  if (op_type >= static_cast<uint64_t>(OpType::kNumOpTypes)) {
    return Status::InvalidArgument(
        StringF("wire: operator type %llu out of range",
                static_cast<unsigned long long>(op_type)));
  }
  op->op_type = static_cast<OpType>(op_type);
  LQS_RETURN_IF_ERROR(r->GetVarint(&op->row_count));
  LQS_RETURN_IF_ERROR(r->GetDouble(&op->estimate_row_count));
  LQS_RETURN_IF_ERROR(r->GetVarint(&op->rebind_count));
  LQS_RETURN_IF_ERROR(r->GetVarint(&op->logical_read_count));
  LQS_RETURN_IF_ERROR(r->GetVarint(&op->segment_read_count));
  LQS_RETURN_IF_ERROR(r->GetVarint(&op->segment_total_count));
  LQS_RETURN_IF_ERROR(r->GetDouble(&op->open_time_ms));
  LQS_RETURN_IF_ERROR(r->GetDouble(&op->cpu_time_ms));
  LQS_RETURN_IF_ERROR(r->GetDouble(&op->io_time_ms));
  LQS_RETURN_IF_ERROR(r->GetDouble(&op->last_active_ms));
  LQS_RETURN_IF_ERROR(r->GetDouble(&op->first_row_ms));
  LQS_RETURN_IF_ERROR(r->GetDouble(&op->close_time_ms));
  uint8_t flags;
  LQS_RETURN_IF_ERROR(r->GetByte(&flags));
  LQS_RETURN_IF_ERROR(UnpackProfileFlags(flags, op));
  LQS_RETURN_IF_ERROR(r->GetVarint(&op->total_pages));
  return Status::OK();
}

void PutSnapshotBody(WireWriter* w, const ProfileSnapshot& snapshot) {
  w->PutDouble(snapshot.time_ms);
  w->PutVarint(snapshot.operators.size());
  for (const OperatorProfile& op : snapshot.operators) {
    PutOperatorProfile(w, op);
  }
}

Status GetSnapshotBody(WireReader* r, ProfileSnapshot* snapshot) {
  LQS_RETURN_IF_ERROR(r->GetDouble(&snapshot->time_ms));
  uint64_t count;
  LQS_RETURN_IF_ERROR(r->GetVarint(&count));
  // Each operator occupies at least one byte; a count beyond the remaining
  // payload cannot be honest. Rejecting it here fails fast instead of
  // looping to the truncation error (memory stays bounded either way — the
  // vector grows only per successfully decoded operator).
  if (count > r->remaining()) {
    return Status::OutOfRange(
        StringF("wire: snapshot declares %llu operators, %zu bytes left",
                static_cast<unsigned long long>(count), r->remaining()));
  }
  snapshot->operators.clear();
  snapshot->operators.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    OperatorProfile op;
    LQS_RETURN_IF_ERROR(GetOperatorProfile(r, &op));
    snapshot->operators.push_back(std::move(op));
  }
  return Status::OK();
}

// Delta bodies. Changed operators are keyed by index with gap encoding
// (first op writes its index, each later op writes the distance to its
// predecessor minus one), which both compresses dense change sets and makes
// "strictly ascending" a structural property of the encoding rather than a
// check. Field payloads appear in DeltaField bit order: counters as zigzag
// varints of (target - base), doubles as xor-compact bit patterns, flags as
// one packed byte.

void PutOperatorDelta(WireWriter* w, const OperatorDelta& op, uint64_t gap) {
  w->PutVarint(gap);
  w->PutVarint(op.changed);
  if (op.changed & kDeltaRowCount) w->PutZigzag(op.row_count_delta);
  if (op.changed & kDeltaRebindCount) w->PutZigzag(op.rebind_count_delta);
  if (op.changed & kDeltaLogicalReadCount) {
    w->PutZigzag(op.logical_read_count_delta);
  }
  if (op.changed & kDeltaSegmentReadCount) {
    w->PutZigzag(op.segment_read_count_delta);
  }
  if (op.changed & kDeltaSegmentTotalCount) {
    w->PutZigzag(op.segment_total_count_delta);
  }
  if (op.changed & kDeltaTotalPages) w->PutZigzag(op.total_pages_delta);
  if (op.changed & kDeltaEstimateRowCount) {
    w->PutXorCompact(op.estimate_row_count_xor);
  }
  if (op.changed & kDeltaOpenTime) w->PutXorCompact(op.open_time_xor);
  if (op.changed & kDeltaCpuTime) w->PutXorCompact(op.cpu_time_xor);
  if (op.changed & kDeltaIoTime) w->PutXorCompact(op.io_time_xor);
  if (op.changed & kDeltaLastActive) w->PutXorCompact(op.last_active_xor);
  if (op.changed & kDeltaFirstRow) w->PutXorCompact(op.first_row_xor);
  if (op.changed & kDeltaCloseTime) w->PutXorCompact(op.close_time_xor);
  if (op.changed & kDeltaFlags) w->PutByte(op.flags);
}

Status GetOperatorDelta(WireReader* r, OperatorDelta* op) {
  uint64_t changed;
  LQS_RETURN_IF_ERROR(r->GetVarint(&changed));
  if (changed == 0 || (changed & ~static_cast<uint64_t>(kDeltaFieldMask))) {
    return Status::InvalidArgument(
        StringF("wire: bad delta field bitmap 0x%llx",
                static_cast<unsigned long long>(changed)));
  }
  op->changed = static_cast<uint32_t>(changed);
  if (op->changed & kDeltaRowCount) {
    LQS_RETURN_IF_ERROR(r->GetZigzag(&op->row_count_delta));
  }
  if (op->changed & kDeltaRebindCount) {
    LQS_RETURN_IF_ERROR(r->GetZigzag(&op->rebind_count_delta));
  }
  if (op->changed & kDeltaLogicalReadCount) {
    LQS_RETURN_IF_ERROR(r->GetZigzag(&op->logical_read_count_delta));
  }
  if (op->changed & kDeltaSegmentReadCount) {
    LQS_RETURN_IF_ERROR(r->GetZigzag(&op->segment_read_count_delta));
  }
  if (op->changed & kDeltaSegmentTotalCount) {
    LQS_RETURN_IF_ERROR(r->GetZigzag(&op->segment_total_count_delta));
  }
  if (op->changed & kDeltaTotalPages) {
    LQS_RETURN_IF_ERROR(r->GetZigzag(&op->total_pages_delta));
  }
  if (op->changed & kDeltaEstimateRowCount) {
    LQS_RETURN_IF_ERROR(r->GetXorCompact(&op->estimate_row_count_xor));
  }
  if (op->changed & kDeltaOpenTime) {
    LQS_RETURN_IF_ERROR(r->GetXorCompact(&op->open_time_xor));
  }
  if (op->changed & kDeltaCpuTime) {
    LQS_RETURN_IF_ERROR(r->GetXorCompact(&op->cpu_time_xor));
  }
  if (op->changed & kDeltaIoTime) {
    LQS_RETURN_IF_ERROR(r->GetXorCompact(&op->io_time_xor));
  }
  if (op->changed & kDeltaLastActive) {
    LQS_RETURN_IF_ERROR(r->GetXorCompact(&op->last_active_xor));
  }
  if (op->changed & kDeltaFirstRow) {
    LQS_RETURN_IF_ERROR(r->GetXorCompact(&op->first_row_xor));
  }
  if (op->changed & kDeltaCloseTime) {
    LQS_RETURN_IF_ERROR(r->GetXorCompact(&op->close_time_xor));
  }
  if (op->changed & kDeltaFlags) {
    LQS_RETURN_IF_ERROR(r->GetByte(&op->flags));
    if ((op->flags & ~kProfileFlagMask) != 0) {
      return Status::InvalidArgument(
          StringF("wire: undefined operator flag bits 0x%02x", op->flags));
    }
  }
  return Status::OK();
}

void PutDeltaBody(WireWriter* w, const SnapshotDelta& delta) {
  w->PutDouble(delta.base_time_ms);
  w->PutDouble(delta.time_ms);
  w->PutVarint(delta.operator_count);
  w->PutVarint(delta.ops.size());
  uint64_t prev_index = 0;
  for (size_t i = 0; i < delta.ops.size(); ++i) {
    const OperatorDelta& op = delta.ops[i];
    const uint64_t gap = i == 0 ? op.index : op.index - prev_index - 1;
    PutOperatorDelta(w, op, gap);
    prev_index = op.index;
  }
}

Status GetDeltaBody(WireReader* r, SnapshotDelta* delta) {
  LQS_RETURN_IF_ERROR(r->GetDouble(&delta->base_time_ms));
  LQS_RETURN_IF_ERROR(r->GetDouble(&delta->time_ms));
  LQS_RETURN_IF_ERROR(r->GetVarint(&delta->operator_count));
  // Unlike snapshot bodies, operator_count describes the (absent) base, so
  // it cannot be bounded by remaining payload; cap it so indices stay
  // faithful in OperatorDelta::index.
  if (delta->operator_count > 0xFFFFFFFFull) {
    return Status::OutOfRange(
        StringF("wire: delta declares %llu base operators",
                static_cast<unsigned long long>(delta->operator_count)));
  }
  uint64_t count;
  LQS_RETURN_IF_ERROR(r->GetVarint(&count));
  if (count > r->remaining()) {
    return Status::OutOfRange(
        StringF("wire: delta declares %llu changed operators, %zu bytes left",
                static_cast<unsigned long long>(count), r->remaining()));
  }
  delta->ops.clear();
  delta->ops.reserve(count);
  uint64_t next_index = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t gap;
    LQS_RETURN_IF_ERROR(r->GetVarint(&gap));
    // next_index <= operator_count here, so the subtraction cannot wrap and
    // the comparison rejects any gap that would overflow next_index + gap.
    if (gap >= delta->operator_count - next_index) {
      return Status::InvalidArgument(
          StringF("wire: delta operator gap %llu out of range (%llu ops)",
                  static_cast<unsigned long long>(gap),
                  static_cast<unsigned long long>(delta->operator_count)));
    }
    OperatorDelta op;
    op.index = static_cast<uint32_t>(next_index + gap);
    LQS_RETURN_IF_ERROR(GetOperatorDelta(r, &op));
    delta->ops.push_back(op);
    next_index = static_cast<uint64_t>(op.index) + 1;
  }
  return Status::OK();
}

Status RequireExhausted(const WireReader& r) {
  if (!r.exhausted()) {
    return Status::InvalidArgument(
        StringF("wire: %zu trailing payload bytes", r.remaining()));
  }
  return Status::OK();
}

}  // namespace

uint32_t WireCrc32(const void* data, size_t size) {
  // IEEE 802.3 reflected CRC-32, table built once (thread-safe static init).
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

PlanSummary PlanSummary::FromPlan(const Plan& plan) {
  PlanSummary summary;
  summary.nodes.resize(static_cast<size_t>(plan.size()));
  plan.root->Visit([&summary](const PlanNode& node) {
    PlanSummaryNode& out = summary.nodes[static_cast<size_t>(node.id)];
    out.node_id = node.id;
    out.op_type = node.type;
    out.est_rows = node.est_rows;
    out.est_cpu_ms = node.est_cpu_ms;
    out.est_io_ms = node.est_io_ms;
    out.est_rebinds = node.est_rebinds;
    out.table_name = node.table_name;
    for (const auto& child : node.children) {
      summary.nodes[static_cast<size_t>(child->id)].parent_node_id = node.id;
    }
  });
  return summary;
}

void EncodeSnapshot(const ProfileSnapshot& snapshot, std::string* out) {
  const size_t header_at = StartFrame(out);
  WireWriter w(out);
  PutSnapshotBody(&w, snapshot);
  FinishFrame(out, header_at, WireType::kSnapshot);
}

void EncodeTrace(const ProfileTrace& trace, std::string* out) {
  const size_t header_at = StartFrame(out);
  WireWriter w(out);
  w.PutVarint(trace.snapshots.size());
  for (const ProfileSnapshot& snapshot : trace.snapshots) {
    PutSnapshotBody(&w, snapshot);
  }
  PutSnapshotBody(&w, trace.final_snapshot);
  w.PutDouble(trace.total_elapsed_ms);
  FinishFrame(out, header_at, WireType::kTrace);
}

void EncodePlanSummary(const PlanSummary& summary, std::string* out) {
  const size_t header_at = StartFrame(out);
  WireWriter w(out);
  w.PutVarint(summary.nodes.size());
  for (const PlanSummaryNode& node : summary.nodes) {
    w.PutZigzag(node.node_id);
    w.PutZigzag(node.parent_node_id);
    w.PutVarint(static_cast<uint64_t>(node.op_type));
    w.PutDouble(node.est_rows);
    w.PutDouble(node.est_cpu_ms);
    w.PutDouble(node.est_io_ms);
    w.PutDouble(node.est_rebinds);
    w.PutString(node.table_name);
  }
  FinishFrame(out, header_at, WireType::kPlanSummary);
}

void EncodePollResponse(const PollResponse& response, std::string* out) {
  const size_t header_at = StartFrame(out);
  WireWriter w(out);
  w.PutVarint(response.request_id);
  uint8_t flags = 0;
  if (response.has_snapshot) flags |= kPollFlagHasSnapshot;
  if (response.query_complete) flags |= kPollFlagQueryComplete;
  if (response.has_delta) flags |= kPollFlagHasDelta;
  w.PutByte(flags);
  if (response.has_snapshot) PutSnapshotBody(&w, response.snapshot);
  if (response.has_delta) PutDeltaBody(&w, response.delta);
  FinishFrame(out, header_at, WireType::kPollResponse);
}

void EncodeSnapshotDelta(const SnapshotDelta& delta, std::string* out) {
  const size_t header_at = StartFrame(out);
  WireWriter w(out);
  PutDeltaBody(&w, delta);
  FinishFrame(out, header_at, WireType::kSnapshotDelta);
}

StatusOr<SnapshotDelta> MakeSnapshotDelta(const ProfileSnapshot& base,
                                          const ProfileSnapshot& target) {
  if (base.operators.size() != target.operators.size()) {
    return Status::InvalidArgument(
        StringF("wire: delta base has %zu operators, target %zu",
                base.operators.size(), target.operators.size()));
  }
  SnapshotDelta delta;
  delta.base_time_ms = base.time_ms;
  delta.time_ms = target.time_ms;
  delta.operator_count = base.operators.size();
  for (size_t i = 0; i < base.operators.size(); ++i) {
    const OperatorProfile& b = base.operators[i];
    const OperatorProfile& t = target.operators[i];
    if (b.node_id != t.node_id || b.parent_node_id != t.parent_node_id ||
        b.op_type != t.op_type) {
      return Status::InvalidArgument(
          StringF("wire: delta operator %zu identity mismatch "
                  "(plans never change shape mid-query)",
                  i));
    }
    OperatorDelta op;
    op.index = static_cast<uint32_t>(i);
    if (t.row_count != b.row_count) {
      op.changed |= kDeltaRowCount;
      op.row_count_delta = static_cast<int64_t>(t.row_count - b.row_count);
    }
    if (t.rebind_count != b.rebind_count) {
      op.changed |= kDeltaRebindCount;
      op.rebind_count_delta =
          static_cast<int64_t>(t.rebind_count - b.rebind_count);
    }
    if (t.logical_read_count != b.logical_read_count) {
      op.changed |= kDeltaLogicalReadCount;
      op.logical_read_count_delta =
          static_cast<int64_t>(t.logical_read_count - b.logical_read_count);
    }
    if (t.segment_read_count != b.segment_read_count) {
      op.changed |= kDeltaSegmentReadCount;
      op.segment_read_count_delta =
          static_cast<int64_t>(t.segment_read_count - b.segment_read_count);
    }
    if (t.segment_total_count != b.segment_total_count) {
      op.changed |= kDeltaSegmentTotalCount;
      op.segment_total_count_delta =
          static_cast<int64_t>(t.segment_total_count - b.segment_total_count);
    }
    if (t.total_pages != b.total_pages) {
      op.changed |= kDeltaTotalPages;
      op.total_pages_delta =
          static_cast<int64_t>(t.total_pages - b.total_pages);
    }
    if (DoubleBits(t.estimate_row_count) != DoubleBits(b.estimate_row_count)) {
      op.changed |= kDeltaEstimateRowCount;
      op.estimate_row_count_xor =
          DoubleBits(t.estimate_row_count) ^ DoubleBits(b.estimate_row_count);
    }
    if (DoubleBits(t.open_time_ms) != DoubleBits(b.open_time_ms)) {
      op.changed |= kDeltaOpenTime;
      op.open_time_xor = DoubleBits(t.open_time_ms) ^ DoubleBits(b.open_time_ms);
    }
    if (DoubleBits(t.cpu_time_ms) != DoubleBits(b.cpu_time_ms)) {
      op.changed |= kDeltaCpuTime;
      op.cpu_time_xor = DoubleBits(t.cpu_time_ms) ^ DoubleBits(b.cpu_time_ms);
    }
    if (DoubleBits(t.io_time_ms) != DoubleBits(b.io_time_ms)) {
      op.changed |= kDeltaIoTime;
      op.io_time_xor = DoubleBits(t.io_time_ms) ^ DoubleBits(b.io_time_ms);
    }
    if (DoubleBits(t.last_active_ms) != DoubleBits(b.last_active_ms)) {
      op.changed |= kDeltaLastActive;
      op.last_active_xor =
          DoubleBits(t.last_active_ms) ^ DoubleBits(b.last_active_ms);
    }
    if (DoubleBits(t.first_row_ms) != DoubleBits(b.first_row_ms)) {
      op.changed |= kDeltaFirstRow;
      op.first_row_xor =
          DoubleBits(t.first_row_ms) ^ DoubleBits(b.first_row_ms);
    }
    if (DoubleBits(t.close_time_ms) != DoubleBits(b.close_time_ms)) {
      op.changed |= kDeltaCloseTime;
      op.close_time_xor =
          DoubleBits(t.close_time_ms) ^ DoubleBits(b.close_time_ms);
    }
    if (PackProfileFlags(t) != PackProfileFlags(b)) {
      op.changed |= kDeltaFlags;
      op.flags = PackProfileFlags(t);
    }
    if (op.changed != 0) delta.ops.push_back(op);
  }
  return delta;
}

Status ApplySnapshotDelta(const SnapshotDelta& delta,
                          const ProfileSnapshot& base, ProfileSnapshot* out) {
  if (DoubleBits(delta.base_time_ms) != DoubleBits(base.time_ms)) {
    // The caller's resync path: it holds a different base than the one the
    // delta was computed against (e.g. the ack raced a keyframe).
    return Status::NotFound(
        "wire: delta base snapshot mismatch, keyframe required");
  }
  if (delta.operator_count != base.operators.size()) {
    return Status::InvalidArgument(
        StringF("wire: delta expects %llu operators, base has %zu",
                static_cast<unsigned long long>(delta.operator_count),
                base.operators.size()));
  }
  *out = base;
  out->time_ms = delta.time_ms;
  uint64_t next_index = 0;
  for (const OperatorDelta& op : delta.ops) {
    if (op.index < next_index || op.index >= base.operators.size()) {
      return Status::InvalidArgument(
          StringF("wire: delta operator index %u out of order or range",
                  op.index));
    }
    next_index = static_cast<uint64_t>(op.index) + 1;
    if ((op.changed & ~kDeltaFieldMask) != 0) {
      return Status::InvalidArgument(
          StringF("wire: bad delta field bitmap 0x%x", op.changed));
    }
    OperatorProfile& target = out->operators[op.index];
    // Counters add the signed difference with wrapping unsigned arithmetic,
    // the exact inverse of MakeSnapshotDelta's subtraction; doubles XOR the
    // transmitted bit pattern back in. Both reconstruct the target field
    // bit-for-bit.
    auto apply_counter = [](uint64_t* field, int64_t d) {
      *field += static_cast<uint64_t>(d);
    };
    auto apply_bits = [](double* field, uint64_t x) {
      uint64_t bits = DoubleBits(*field) ^ x;
      std::memcpy(field, &bits, sizeof(*field));
    };
    if (op.changed & kDeltaRowCount) {
      apply_counter(&target.row_count, op.row_count_delta);
    }
    if (op.changed & kDeltaRebindCount) {
      apply_counter(&target.rebind_count, op.rebind_count_delta);
    }
    if (op.changed & kDeltaLogicalReadCount) {
      apply_counter(&target.logical_read_count, op.logical_read_count_delta);
    }
    if (op.changed & kDeltaSegmentReadCount) {
      apply_counter(&target.segment_read_count, op.segment_read_count_delta);
    }
    if (op.changed & kDeltaSegmentTotalCount) {
      apply_counter(&target.segment_total_count,
                    op.segment_total_count_delta);
    }
    if (op.changed & kDeltaTotalPages) {
      apply_counter(&target.total_pages, op.total_pages_delta);
    }
    if (op.changed & kDeltaEstimateRowCount) {
      apply_bits(&target.estimate_row_count, op.estimate_row_count_xor);
    }
    if (op.changed & kDeltaOpenTime) {
      apply_bits(&target.open_time_ms, op.open_time_xor);
    }
    if (op.changed & kDeltaCpuTime) {
      apply_bits(&target.cpu_time_ms, op.cpu_time_xor);
    }
    if (op.changed & kDeltaIoTime) {
      apply_bits(&target.io_time_ms, op.io_time_xor);
    }
    if (op.changed & kDeltaLastActive) {
      apply_bits(&target.last_active_ms, op.last_active_xor);
    }
    if (op.changed & kDeltaFirstRow) {
      apply_bits(&target.first_row_ms, op.first_row_xor);
    }
    if (op.changed & kDeltaCloseTime) {
      apply_bits(&target.close_time_ms, op.close_time_xor);
    }
    if (op.changed & kDeltaFlags) {
      LQS_RETURN_IF_ERROR(UnpackProfileFlags(op.flags, &target));
    }
  }
  return Status::OK();
}

StatusOr<size_t> WireFrameSize(std::string_view buffer) {
  if (buffer.size() < kWireHeaderSize) {
    return Status::OutOfRange(
        StringF("wire: buffer shorter than frame header (%zu bytes)",
                buffer.size()));
  }
  if (buffer[0] != kWireMagic0 || buffer[1] != kWireMagic1) {
    return Status::InvalidArgument("wire: bad magic");
  }
  if (static_cast<uint8_t>(buffer[2]) != kWireVersion) {
    return Status::Unimplemented(
        StringF("wire: version %u not supported (speaking %u)",
                static_cast<uint8_t>(buffer[2]), kWireVersion));
  }
  const size_t total = kWireHeaderSize + GetFixed32(buffer, 4);
  if (total > buffer.size()) {
    return Status::OutOfRange(
        StringF("wire: frame of %zu bytes, buffer holds %zu", total,
                buffer.size()));
  }
  return total;
}

StatusOr<WireType> WireFrameType(std::string_view frame) {
  LQS_RETURN_IF_ERROR(WireFrameSize(frame).status());
  const uint8_t type = static_cast<uint8_t>(frame[3]);
  if (type < static_cast<uint8_t>(WireType::kPlanSummary) ||
      type > static_cast<uint8_t>(WireType::kSnapshotDelta)) {
    return Status::InvalidArgument(
        StringF("wire: unknown message type %u", type));
  }
  return static_cast<WireType>(type);
}

StatusOr<ProfileSnapshot> DecodeSnapshot(std::string_view frame) {
  std::string_view payload;
  LQS_ASSIGN_OR_RETURN(payload, CheckFrame(frame, WireType::kSnapshot));
  WireReader r(payload);
  ProfileSnapshot snapshot;
  LQS_RETURN_IF_ERROR(GetSnapshotBody(&r, &snapshot));
  LQS_RETURN_IF_ERROR(RequireExhausted(r));
  return snapshot;
}

StatusOr<ProfileTrace> DecodeTrace(std::string_view frame) {
  std::string_view payload;
  LQS_ASSIGN_OR_RETURN(payload, CheckFrame(frame, WireType::kTrace));
  WireReader r(payload);
  ProfileTrace trace;
  uint64_t count;
  LQS_RETURN_IF_ERROR(r.GetVarint(&count));
  if (count > r.remaining()) {
    return Status::OutOfRange(
        StringF("wire: trace declares %llu snapshots, %zu bytes left",
                static_cast<unsigned long long>(count), r.remaining()));
  }
  trace.snapshots.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ProfileSnapshot snapshot;
    LQS_RETURN_IF_ERROR(GetSnapshotBody(&r, &snapshot));
    trace.snapshots.push_back(std::move(snapshot));
  }
  LQS_RETURN_IF_ERROR(GetSnapshotBody(&r, &trace.final_snapshot));
  LQS_RETURN_IF_ERROR(r.GetDouble(&trace.total_elapsed_ms));
  LQS_RETURN_IF_ERROR(RequireExhausted(r));
  return trace;
}

StatusOr<PlanSummary> DecodePlanSummary(std::string_view frame) {
  std::string_view payload;
  LQS_ASSIGN_OR_RETURN(payload, CheckFrame(frame, WireType::kPlanSummary));
  WireReader r(payload);
  PlanSummary summary;
  uint64_t count;
  LQS_RETURN_IF_ERROR(r.GetVarint(&count));
  if (count > r.remaining()) {
    return Status::OutOfRange(
        StringF("wire: plan summary declares %llu nodes, %zu bytes left",
                static_cast<unsigned long long>(count), r.remaining()));
  }
  summary.nodes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PlanSummaryNode node;
    int64_t node_id, parent_node_id;
    LQS_RETURN_IF_ERROR(r.GetZigzag(&node_id));
    LQS_RETURN_IF_ERROR(r.GetZigzag(&parent_node_id));
    node.node_id = static_cast<int>(node_id);
    node.parent_node_id = static_cast<int>(parent_node_id);
    uint64_t op_type;
    LQS_RETURN_IF_ERROR(r.GetVarint(&op_type));
    if (op_type >= static_cast<uint64_t>(OpType::kNumOpTypes)) {
      return Status::InvalidArgument(
          StringF("wire: operator type %llu out of range",
                  static_cast<unsigned long long>(op_type)));
    }
    node.op_type = static_cast<OpType>(op_type);
    LQS_RETURN_IF_ERROR(r.GetDouble(&node.est_rows));
    LQS_RETURN_IF_ERROR(r.GetDouble(&node.est_cpu_ms));
    LQS_RETURN_IF_ERROR(r.GetDouble(&node.est_io_ms));
    LQS_RETURN_IF_ERROR(r.GetDouble(&node.est_rebinds));
    LQS_RETURN_IF_ERROR(r.GetString(&node.table_name));
    summary.nodes.push_back(std::move(node));
  }
  LQS_RETURN_IF_ERROR(RequireExhausted(r));
  return summary;
}

StatusOr<PollResponse> DecodePollResponse(std::string_view frame) {
  std::string_view payload;
  LQS_ASSIGN_OR_RETURN(payload, CheckFrame(frame, WireType::kPollResponse));
  WireReader r(payload);
  PollResponse response;
  LQS_RETURN_IF_ERROR(r.GetVarint(&response.request_id));
  uint8_t flags;
  LQS_RETURN_IF_ERROR(r.GetByte(&flags));
  if ((flags & ~kPollFlagMask) != 0) {
    return Status::InvalidArgument(
        StringF("wire: undefined poll flag bits 0x%02x", flags));
  }
  response.has_snapshot = (flags & kPollFlagHasSnapshot) != 0;
  response.query_complete = (flags & kPollFlagQueryComplete) != 0;
  response.has_delta = (flags & kPollFlagHasDelta) != 0;
  if (response.has_snapshot && response.has_delta) {
    return Status::InvalidArgument(
        "wire: poll response carries both a snapshot and a delta");
  }
  if (response.has_snapshot) {
    LQS_RETURN_IF_ERROR(GetSnapshotBody(&r, &response.snapshot));
  }
  if (response.has_delta) {
    LQS_RETURN_IF_ERROR(GetDeltaBody(&r, &response.delta));
  }
  LQS_RETURN_IF_ERROR(RequireExhausted(r));
  return response;
}

StatusOr<SnapshotDelta> DecodeSnapshotDelta(std::string_view frame) {
  std::string_view payload;
  LQS_ASSIGN_OR_RETURN(payload, CheckFrame(frame, WireType::kSnapshotDelta));
  WireReader r(payload);
  SnapshotDelta delta;
  LQS_RETURN_IF_ERROR(GetDeltaBody(&r, &delta));
  LQS_RETURN_IF_ERROR(RequireExhausted(r));
  return delta;
}

}  // namespace lqs
