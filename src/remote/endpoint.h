#ifndef LQS_REMOTE_ENDPOINT_H_
#define LQS_REMOTE_ENDPOINT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "dmv/query_profile.h"

namespace lqs {

/// One poll request on the virtual timeline: "give me the freshest DMV
/// snapshot you hold, as of my clock `now_ms`". The deadline is the latest
/// virtual arrival the client will wait for before declaring the attempt
/// timed out (PollingClient sets it to now + timeout).
struct PollRequest {
  uint64_t request_id = 0;
  double now_ms = 0;
  double deadline_ms = 0;
  /// Delta protocol (DESIGN.md §13). `has_ack` says the client holds the
  /// snapshot whose bit-exact time is `ack_time_ms`; a delta-capable server
  /// may answer with a SnapshotDelta against that base instead of a full
  /// snapshot. A lost delta simply leaves the ack where it was — the server
  /// keeps diffing against the base the client actually holds.
  bool has_ack = false;
  double ack_time_ms = 0;
  /// Set after the client hit a delta it could not apply (base mismatch):
  /// demand a full keyframe regardless of ack state.
  bool want_keyframe = false;
};

/// Transport-level outcome of one poll attempt. `status` describes the
/// *link*, not the payload: ok means bytes arrived (they may still fail to
/// decode — a fault-injecting link can hand back damaged frames with an ok
/// status, exactly like a real socket). `frame` is one wire frame carrying a
/// PollResponse message; `arrival_ms` is the virtual time the bytes landed,
/// which the client compares against its deadline.
struct PollResult {
  Status status;
  std::string frame;
  double arrival_ms = 0;
};

/// Where snapshots come from — the seam between the monitor and the
/// (possibly remote) executor. Implementations speak *bytes*: every response
/// crosses the wire format even in-process, so the serialization path is
/// exercised by every remote session, and decorators (FaultInjectingEndpoint)
/// can damage frames the way a lossy link would.
///
/// Concurrency audit (DESIGN.md §9-§10): thread-compatible, not thread-safe.
/// One endpoint belongs to one PollingClient, which belongs to one monitor
/// session; MonitorService guarantees a session is computed by at most one
/// pool worker per tick, with the ParallelFor barrier ordering ticks. Do not
/// share an endpoint across sessions without adding a lock.
class SnapshotEndpoint {
 public:
  virtual ~SnapshotEndpoint() = default;

  /// Answers one poll. Stateful implementations may return responses to
  /// *earlier* requests (late deliveries) — the client matches on snapshot
  /// recency, not request id.
  virtual PollResult Poll(const PollRequest& request) = 0;

  /// Virtual time at which the monitored query completes, when the
  /// implementation knows it (trace-backed endpoints do); negative when
  /// unknown. Monitors use it to size the shared timeline.
  virtual double KnownHorizonMs() const { return -1; }
};

/// Server-side delta policy for trace-backed endpoints.
struct LoopbackOptions {
  /// Serve SnapshotDelta frames against the client's acknowledged base when
  /// the request carries one; full snapshots otherwise.
  bool serve_deltas = false;
  /// Every `keyframe_interval`-th consecutive delta is replaced by a full
  /// snapshot keyframe, bounding how long a client that lost its base can
  /// go before resyncing without a round trip. <= 0 disables periodic
  /// keyframes (resync then relies on want_keyframe).
  int keyframe_interval = 16;
};

/// In-process endpoint backed by an executed query's ProfileTrace — the
/// zero-latency, zero-loss baseline. Still round-trips every response
/// through the wire format, so a loopback session exercises the same
/// encode/decode path as a genuinely remote one. With
/// LoopbackOptions::serve_deltas it also implements the server half of the
/// delta protocol: diff against the acked base, keyframe on schedule or on
/// demand, always full for completion.
class LoopbackEndpoint : public SnapshotEndpoint {
 public:
  /// `trace` must outlive the endpoint.
  explicit LoopbackEndpoint(const ProfileTrace* trace,
                            LoopbackOptions options = {})
      : trace_(trace), options_(options) {}

  PollResult Poll(const PollRequest& request) override;
  double KnownHorizonMs() const override { return trace_->total_elapsed_ms; }

 private:
  const ProfileTrace* trace_;
  LoopbackOptions options_;
  /// Consecutive delta responses since the last full snapshot went out.
  int deltas_since_keyframe_ = 0;
};

}  // namespace lqs

#endif  // LQS_REMOTE_ENDPOINT_H_
