#ifndef LQS_REMOTE_POLLING_CLIENT_H_
#define LQS_REMOTE_POLLING_CLIENT_H_

#include <cstdint>
#include <memory>

#include "common/noalloc.h"
#include "common/rng.h"
#include "dmv/query_profile.h"
#include "remote/endpoint.h"

namespace lqs {

/// What the client does with a tick on which no fresh snapshot arrived.
enum class StalenessPolicy {
  /// Keep showing the last accepted snapshot (progress holds flat). The
  /// default: never fabricates counters, so downstream invariant checkers
  /// see only data the server actually produced.
  kHold,
  /// Extrapolate counters forward at the rate observed between the last two
  /// accepted snapshots, capped at one inter-snapshot gap. Progress keeps
  /// moving across short outages, at the cost of synthetic counters that a
  /// later real snapshot may land slightly below (the §5 revision metric
  /// treats such corrections as revisions, not errors).
  kInterpolate,
};

struct PollingClientOptions {
  /// Virtual-time budget for one attempt; a response arriving later than
  /// send + timeout_ms counts as timed out even if it carries bytes.
  double timeout_ms = 50;
  /// Attempts per Poll(): 1 initial + (max_attempts - 1) retries.
  int max_attempts = 4;
  /// Exponential backoff between failed attempts, on the virtual timeline:
  /// initial * multiplier^k, capped, then jittered by ±jitter_fraction with
  /// a deterministic seeded draw (all sessions seeded alike would otherwise
  /// retry in lockstep — the classic thundering herd).
  double backoff_initial_ms = 10;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 200;
  double jitter_fraction = 0.2;
  uint64_t jitter_seed = 1;
  /// Consecutive Poll() calls with no decodable response before the session
  /// is marked degraded. A single decodable response recovers it.
  int degrade_after_failures = 8;
  StalenessPolicy staleness_policy = StalenessPolicy::kHold;
};

enum class TransportHealth {
  kHealthy,
  /// The consecutive-failure budget is exhausted. The client keeps serving
  /// its last accepted snapshot and keeps polling — degraded is a surfaced
  /// state, not a terminal one — so the session never wedges the monitor.
  kDegraded,
};

/// What the monitor sees after one Poll(): the freshest usable snapshot plus
/// transport condition. `snapshot` points into client-owned storage and is
/// valid until the next Poll() on this client.
struct ClientView {
  const ProfileSnapshot* snapshot = nullptr;  ///< null before first accept
  /// The server declared the query complete and `snapshot` holds its final
  /// counters.
  bool query_complete = false;
  /// No fresh snapshot was accepted by this Poll() — `snapshot` is held (or
  /// interpolated) from earlier data.
  bool stale = false;
  /// now - (time of the last *accepted* snapshot); 0 before the first one.
  double staleness_ms = 0;
  TransportHealth health = TransportHealth::kHealthy;
  int consecutive_failures = 0;
};

/// Lifetime counters of one client, surfaced into MonitorStats.
struct ClientStats {
  uint64_t polls = 0;
  uint64_t attempts = 0;
  uint64_t retries = 0;
  /// Attempts that timed out or errored at the transport level.
  uint64_t transport_failures = 0;
  /// Attempts whose bytes arrived but failed framing/CRC/decode.
  uint64_t decode_errors = 0;
  /// Snapshots accepted (fresh, monotone).
  uint64_t accepted = 0;
  /// Redeliveries of the already-accepted snapshot (same timestamp).
  uint64_t duplicates_ignored = 0;
  /// Snapshots rejected as older than the last accepted one (reordered late
  /// deliveries), or carrying counters that went backwards.
  uint64_t regressions_rejected = 0;
  /// Poll() calls that ended with no decodable response at all.
  uint64_t failed_polls = 0;
  /// Poll() calls that served held/interpolated (stale) data.
  uint64_t stale_polls = 0;
  /// Wire bytes that arrived (decodable or not) — the transport cost the
  /// delta protocol exists to shrink.
  uint64_t bytes_received = 0;
  /// Deltas successfully applied to the acked base.
  uint64_t deltas_applied = 0;
  /// Deltas that could not be applied (base mismatch after a lost keyframe,
  /// or no base at all) — each one flips the next request to want_keyframe.
  uint64_t delta_resyncs = 0;
  /// Decodable responses whose request_id was not the one just sent: late
  /// or misrouted deliveries. They still flow through the recency filter
  /// (late deliveries are legitimate data), but are now observable.
  uint64_t request_id_mismatches = 0;
};

/// Polls a SnapshotEndpoint on the virtual timeline with per-request
/// timeouts, bounded retries and seeded exponential backoff, and keeps the
/// estimation seam well-behaved over a lossy link:
///
///  - duplicates (same snapshot timestamp) are ignored;
///  - regressions (snapshot older than the last accepted one, or counters
///    running backwards) are rejected, so accepted snapshot timestamps are
///    strictly increasing — the monotone replay the invariant checkers
///    demand;
///  - on ticks with nothing fresh the last snapshot is held (or
///    interpolated, per StalenessPolicy) and flagged stale;
///  - the *served* view is additionally clamped so counters never move
///    backwards across consecutive Poll() calls: an interpolated view that
///    overshot reality is held flat until reality catches up, instead of
///    visibly regressing when the next real snapshot lands below it (§5
///    monotonicity). Completion is the exception — the final snapshot is
///    served as-is (it is the ground truth, and progress 1.0 dominates
///    every earlier value);
///  - snapshot deltas (wire.h) are reassembled against the last accepted
///    snapshot; any gap — unknown base, lost keyframe — makes the next
///    request demand a full keyframe instead of corrupting state;
///  - a consecutive-failure budget flips the session to kDegraded instead
///    of wedging it; one decodable response flips it back.
///
/// Concurrency audit (DESIGN.md §9-§10, checked by the `locks` rules in
/// §14): thread-compatible, deliberately mutex-free. One client belongs to
/// one monitor session; MonitorService computes a session on at most one
/// pool worker per tick and the ParallelFor barrier orders ticks, so no
/// lock is needed (the same ownership argument as the per-session
/// ProgressInvariantChecker). The immutable configuration below is const so
/// the compiler enforces the read-only half of that contract.
class PollingClient {
 public:
  PollingClient(std::unique_ptr<SnapshotEndpoint> endpoint,
                PollingClientOptions options = {});

  /// One monitor tick at virtual time `now_ms`. Calls must use
  /// non-decreasing times. The returned view (and its snapshot pointer) is
  /// valid until the next Poll().
  LQS_ALLOC_OK(
      "transport decode path: request/response buffers and accepted "
      "snapshots allocate by design; the monitor's per-tick allocation "
      "budget for this arm is bounded by tests/estimator_alloc_test.cc")
  const ClientView& Poll(double now_ms);

  /// Last view without polling again.
  const ClientView& view() const { return view_; }

  const ClientStats& stats() const { return stats_; }
  TransportHealth health() const { return view_.health; }
  bool complete() const { return complete_; }
  /// Final counters once the server declared the query complete; null
  /// before then.
  const ProfileSnapshot* final_snapshot() const {
    return complete_ ? &last_accepted_ : nullptr;
  }
  double KnownHorizonMs() const { return endpoint_->KnownHorizonMs(); }
  const SnapshotEndpoint& endpoint() const { return *endpoint_; }

 private:
  /// Applies the duplicate/regression filter; on acceptance rotates
  /// prev_/last_ and returns true.
  bool MaybeAccept(ProfileSnapshot snapshot, bool query_complete);
  void BuildView(double now_ms, bool accepted_fresh, bool link_alive);
  void Interpolate(double now_ms);
  /// Clamps `source` against the previously served view (element-wise
  /// floor on monotone counters, sticky lifecycle flags) into served_ and
  /// points the view at it.
  void ServeClamped(const ProfileSnapshot& source);

  std::unique_ptr<SnapshotEndpoint> endpoint_;
  const PollingClientOptions options_;
  Rng jitter_rng_;
  ClientStats stats_;
  ClientView view_;

  uint64_t next_request_id_ = 1;
  bool have_snapshot_ = false;
  bool have_prev_ = false;
  ProfileSnapshot last_accepted_;
  ProfileSnapshot prev_accepted_;
  /// Storage the view's snapshot pointer targets under kInterpolate.
  ProfileSnapshot interpolated_;
  /// Storage the view's snapshot pointer targets mid-run: the served view,
  /// clamped so no counter ever moves backwards across Poll() calls.
  ProfileSnapshot served_;
  bool have_served_ = false;
  /// Set when a delta could not be applied; the next request demands a
  /// full keyframe and this stays set until one (or any full snapshot)
  /// is accepted.
  bool need_keyframe_ = false;
  bool complete_ = false;
  int consecutive_failures_ = 0;
};

}  // namespace lqs

#endif  // LQS_REMOTE_POLLING_CLIENT_H_
