#include "remote/endpoint.h"

#include "remote/wire.h"

namespace lqs {

PollResult LoopbackEndpoint::Poll(const PollRequest& request) {
  PollResponse response;
  response.request_id = request.request_id;
  if (request.now_ms >= trace_->total_elapsed_ms) {
    // The query is done: every poll from here on returns the final
    // counters, flagged complete so the client can stop retrying.
    response.has_snapshot = true;
    response.query_complete = true;
    response.snapshot = trace_->final_snapshot;
  } else if (const ProfileSnapshot* snapshot =
                 trace_->SnapshotAtOrBefore(request.now_ms)) {
    response.has_snapshot = true;
    response.snapshot = *snapshot;
  }
  PollResult result;
  EncodePollResponse(response, &result.frame);
  result.arrival_ms = request.now_ms;  // loopback delivers instantly
  return result;
}

}  // namespace lqs
