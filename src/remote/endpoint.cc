#include "remote/endpoint.h"

#include <cstring>
#include <utility>

#include "remote/wire.h"

namespace lqs {

namespace {

/// Bit-exact double identity (lint rule 3: no float == in estimator code —
/// and identity, not numeric equality, is what the delta protocol needs:
/// the ack names one specific snapshot, NaN-safe).
bool SameBits(double a, double b) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

}  // namespace

PollResult LoopbackEndpoint::Poll(const PollRequest& request) {
  PollResponse response;
  response.request_id = request.request_id;
  const ProfileSnapshot* target = nullptr;
  bool complete = false;
  if (request.now_ms >= trace_->total_elapsed_ms) {
    // The query is done: every poll from here on returns the final
    // counters, flagged complete so the client can stop retrying.
    // Completion is always a full snapshot — the one message that must
    // never depend on state the client might have lost.
    target = &trace_->final_snapshot;
    complete = true;
  } else {
    target = trace_->SnapshotAtOrBefore(request.now_ms);
  }
  if (target != nullptr) {
    bool sent_delta = false;
    const bool keyframe_due =
        options_.keyframe_interval > 0 &&
        deltas_since_keyframe_ + 1 >= options_.keyframe_interval;
    if (options_.serve_deltas && !complete && request.has_ack &&
        !request.want_keyframe && !keyframe_due) {
      // The ack names a snapshot by bit-exact time; it is a valid base only
      // if this trace actually holds it (an ack from another query's
      // timeline, or one damaged in flight, falls back to a keyframe).
      const ProfileSnapshot* base =
          trace_->SnapshotAtOrBefore(request.ack_time_ms);
      if (base != nullptr && SameBits(base->time_ms, request.ack_time_ms)) {
        StatusOr<SnapshotDelta> delta = MakeSnapshotDelta(*base, *target);
        if (delta.ok()) {
          response.has_delta = true;
          response.delta = std::move(delta).value();
          sent_delta = true;
        }
      }
    }
    if (sent_delta) {
      ++deltas_since_keyframe_;
    } else {
      response.has_snapshot = true;
      response.query_complete = complete;
      response.snapshot = *target;
      deltas_since_keyframe_ = 0;
    }
  }
  PollResult result;
  EncodePollResponse(response, &result.frame);
  result.arrival_ms = request.now_ms;  // loopback delivers instantly
  return result;
}

}  // namespace lqs
