#ifndef LQS_REMOTE_WIRE_H_
#define LQS_REMOTE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/deterministic.h"
#include "common/statusor.h"
#include "dmv/query_profile.h"
#include "exec/plan.h"

namespace lqs {

/// Versioned, compact binary wire format for shipping DMV state across a
/// network hop (DESIGN.md §10). The paper's LQS is a client-side estimator:
/// SSMS polls sys.dm_exec_query_profiles over a TDS connection every 500 ms
/// (§2.1-2.2). The in-process substrate modelled that hop as a pointer read;
/// everything in this header makes the hop explicit — bytes that can be
/// late, lost, duplicated or damaged in flight.
///
/// Frame layout (all integers little-endian):
///
///   offset 0   'L' 'Q'          magic
///   offset 2   version          kWireVersion
///   offset 3   message type     WireType
///   offset 4   payload length   uint32
///   offset 8   payload CRC32    uint32 (IEEE, reflected)
///   offset 12  payload          `payload length` bytes
///
/// The length prefix makes frames self-delimiting on a byte stream
/// (WireFrameSize splits a concatenation); the CRC rejects damaged payloads
/// before any field is interpreted. Payloads use varint (LEB128) for
/// counters, zigzag varints for signed ids, and raw IEEE-754 bit patterns
/// for doubles, so decode→re-encode is byte-identical (virtual timestamps
/// round-trip bit-exactly).
///
/// Every decoder is total: malformed input of any shape — truncated, bit
/// flipped, wrong magic/version/type, trailing bytes, overlong varints,
/// out-of-range enum values — returns a non-OK Status. Decoders never read
/// out of bounds and never abort.
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kWireHeaderSize = 12;
inline constexpr char kWireMagic0 = 'L';
inline constexpr char kWireMagic1 = 'Q';

/// Message type carried in the frame header.
enum class WireType : uint8_t {
  kPlanSummary = 1,
  kSnapshot = 2,
  kTrace = 3,
  kPollResponse = 4,
  kSnapshotDelta = 5,
};

/// CRC32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) of `size` bytes.
uint32_t WireCrc32(const void* data, size_t size);

/// The showplan digest a remote monitor needs to label what it renders:
/// tree shape plus the optimizer annotations the estimator consumes (§2.2).
/// Expression payloads deliberately stay server-side.
struct PlanSummaryNode {
  int node_id = -1;
  int parent_node_id = -1;
  OpType op_type = OpType::kTableScan;
  double est_rows = 0;
  double est_cpu_ms = 0;
  double est_io_ms = 0;
  double est_rebinds = 0;
  std::string table_name;
};

struct PlanSummary {
  std::vector<PlanSummaryNode> nodes;  // pre-order, indexed by node_id

  /// Digests a finalized plan (ids dense pre-order, FinalizePlan contract).
  static PlanSummary FromPlan(const Plan& plan);
};

/// Per-field presence bits of one OperatorDelta. A set bit means the frame
/// carries that field; clear means "unchanged from the base operator".
/// Counters travel as zigzag varints of (target - base), which is exact in
/// integers; doubles travel as the XOR of the two IEEE-754 bit patterns in
/// the compact trailing-zero encoding (see EncodeSnapshotDelta), which is
/// exact by construction — reassembly is byte-identical to the full
/// snapshot, NaNs and signed zeros included.
enum DeltaField : uint32_t {
  kDeltaRowCount = 1u << 0,
  kDeltaRebindCount = 1u << 1,
  kDeltaLogicalReadCount = 1u << 2,
  kDeltaSegmentReadCount = 1u << 3,
  kDeltaSegmentTotalCount = 1u << 4,
  kDeltaTotalPages = 1u << 5,
  kDeltaEstimateRowCount = 1u << 6,
  kDeltaOpenTime = 1u << 7,
  kDeltaCpuTime = 1u << 8,
  kDeltaIoTime = 1u << 9,
  kDeltaLastActive = 1u << 10,
  kDeltaFirstRow = 1u << 11,
  kDeltaCloseTime = 1u << 12,
  kDeltaFlags = 1u << 13,
};
inline constexpr uint32_t kDeltaFieldMask = (1u << 14) - 1;

/// Changes of one operator relative to the base snapshot's operator at the
/// same index. Counter fields hold signed differences (target - base);
/// double fields hold the XOR of the two bit patterns; `flags` holds the
/// target's packed flag byte. Only fields whose `changed` bit is set are
/// meaningful.
struct OperatorDelta {
  uint32_t index = 0;
  uint32_t changed = 0;  ///< DeltaField bitmap
  int64_t row_count_delta = 0;
  int64_t rebind_count_delta = 0;
  int64_t logical_read_count_delta = 0;
  int64_t segment_read_count_delta = 0;
  int64_t segment_total_count_delta = 0;
  int64_t total_pages_delta = 0;
  uint64_t estimate_row_count_xor = 0;
  uint64_t open_time_xor = 0;
  uint64_t cpu_time_xor = 0;
  uint64_t io_time_xor = 0;
  uint64_t last_active_xor = 0;
  uint64_t first_row_xor = 0;
  uint64_t close_time_xor = 0;
  uint8_t flags = 0;
};

/// One snapshot expressed as changes against an *acknowledged* base
/// snapshot, identified by the base's bit-exact time_ms. Operators absent
/// from `ops` are unchanged. Appendix to the §2 polling model: the server
/// only deltas against a snapshot the client told it (via PollRequest ack)
/// that it holds, so a lost delta never desynchronizes state — the client
/// simply keeps acknowledging the old base.
struct SnapshotDelta {
  double base_time_ms = 0;  ///< bit-exact identity of the base snapshot
  double time_ms = 0;       ///< the reconstructed snapshot's time
  uint64_t operator_count = 0;
  std::vector<OperatorDelta> ops;  ///< ascending by index
};

/// Computes the delta that turns `base` into `target`. Fails with
/// kInvalidArgument when the pair is not delta-encodable: operator count,
/// node ids, parent ids or operator types differ (plans never change shape
/// mid-query, so a mismatch means the two snapshots are not from the same
/// execution — send a keyframe instead).
LQS_DETERMINISTIC
StatusOr<SnapshotDelta> MakeSnapshotDelta(const ProfileSnapshot& base,
                                          const ProfileSnapshot& target);

/// Reconstructs the target snapshot from `base` + `delta`. Fails with
/// kNotFound when `base` is not the snapshot the delta was computed against
/// (bit-exact time_ms mismatch — the caller's resync/keyframe path), and
/// kInvalidArgument on structural mismatch (operator count, out-of-range
/// index). On success `*out` is byte-identical (under EncodeSnapshot) to
/// the original target.
LQS_DETERMINISTIC
Status ApplySnapshotDelta(const SnapshotDelta& delta,
                          const ProfileSnapshot& base, ProfileSnapshot* out);

/// One poll answer from a SnapshotEndpoint: the freshest snapshot the server
/// holds — as a full snapshot or as a delta against the client's
/// acknowledged base — or "nothing yet" for a query that has not produced
/// one. `query_complete` marks the snapshot as the final one — counters are
/// final, the query is done (completion responses are always full
/// snapshots, never deltas).
struct PollResponse {
  uint64_t request_id = 0;
  bool has_snapshot = false;
  bool query_complete = false;
  ProfileSnapshot snapshot;  ///< meaningful only when has_snapshot
  /// Delta arm: exactly one of has_snapshot / has_delta may be set.
  bool has_delta = false;
  SnapshotDelta delta;  ///< meaningful only when has_delta
};

/// Encoders append exactly one complete frame to `*out` (existing content is
/// preserved, so frames can be concatenated onto one stream buffer).
/// LQS_DETERMINISTIC: identical input produces byte-identical frames — the
/// golden tests pin the bytes; the static checker pins the call graph.
LQS_DETERMINISTIC
void EncodeSnapshot(const ProfileSnapshot& snapshot, std::string* out);
LQS_DETERMINISTIC
void EncodeTrace(const ProfileTrace& trace, std::string* out);
LQS_DETERMINISTIC
void EncodePlanSummary(const PlanSummary& summary, std::string* out);
LQS_DETERMINISTIC
void EncodePollResponse(const PollResponse& response, std::string* out);
LQS_DETERMINISTIC
void EncodeSnapshotDelta(const SnapshotDelta& delta, std::string* out);

/// Total size (header + payload) of the frame starting at `buffer[0]`, for
/// splitting a stream of concatenated frames. Validates magic, version and
/// that the declared payload fits in the buffer.
StatusOr<size_t> WireFrameSize(std::string_view buffer);

/// Message type of a frame whose header is intact (payload not inspected).
StatusOr<WireType> WireFrameType(std::string_view frame);

/// Decoders require `frame` to be exactly one well-formed frame of the
/// matching type: header checks, CRC check, full payload consumption.
/// LQS_DETERMINISTIC like the encoders: same frame, same result (including
/// the exact Status on malformed input).
LQS_DETERMINISTIC
StatusOr<ProfileSnapshot> DecodeSnapshot(std::string_view frame);
LQS_DETERMINISTIC
StatusOr<ProfileTrace> DecodeTrace(std::string_view frame);
LQS_DETERMINISTIC
StatusOr<PlanSummary> DecodePlanSummary(std::string_view frame);
LQS_DETERMINISTIC
StatusOr<PollResponse> DecodePollResponse(std::string_view frame);
LQS_DETERMINISTIC
StatusOr<SnapshotDelta> DecodeSnapshotDelta(std::string_view frame);

}  // namespace lqs

#endif  // LQS_REMOTE_WIRE_H_
