#ifndef LQS_REMOTE_WIRE_H_
#define LQS_REMOTE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "dmv/query_profile.h"
#include "exec/plan.h"

namespace lqs {

/// Versioned, compact binary wire format for shipping DMV state across a
/// network hop (DESIGN.md §10). The paper's LQS is a client-side estimator:
/// SSMS polls sys.dm_exec_query_profiles over a TDS connection every 500 ms
/// (§2.1-2.2). The in-process substrate modelled that hop as a pointer read;
/// everything in this header makes the hop explicit — bytes that can be
/// late, lost, duplicated or damaged in flight.
///
/// Frame layout (all integers little-endian):
///
///   offset 0   'L' 'Q'          magic
///   offset 2   version          kWireVersion
///   offset 3   message type     WireType
///   offset 4   payload length   uint32
///   offset 8   payload CRC32    uint32 (IEEE, reflected)
///   offset 12  payload          `payload length` bytes
///
/// The length prefix makes frames self-delimiting on a byte stream
/// (WireFrameSize splits a concatenation); the CRC rejects damaged payloads
/// before any field is interpreted. Payloads use varint (LEB128) for
/// counters, zigzag varints for signed ids, and raw IEEE-754 bit patterns
/// for doubles, so decode→re-encode is byte-identical (virtual timestamps
/// round-trip bit-exactly).
///
/// Every decoder is total: malformed input of any shape — truncated, bit
/// flipped, wrong magic/version/type, trailing bytes, overlong varints,
/// out-of-range enum values — returns a non-OK Status. Decoders never read
/// out of bounds and never abort.
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kWireHeaderSize = 12;
inline constexpr char kWireMagic0 = 'L';
inline constexpr char kWireMagic1 = 'Q';

/// Message type carried in the frame header.
enum class WireType : uint8_t {
  kPlanSummary = 1,
  kSnapshot = 2,
  kTrace = 3,
  kPollResponse = 4,
};

/// CRC32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) of `size` bytes.
uint32_t WireCrc32(const void* data, size_t size);

/// The showplan digest a remote monitor needs to label what it renders:
/// tree shape plus the optimizer annotations the estimator consumes (§2.2).
/// Expression payloads deliberately stay server-side.
struct PlanSummaryNode {
  int node_id = -1;
  int parent_node_id = -1;
  OpType op_type = OpType::kTableScan;
  double est_rows = 0;
  double est_cpu_ms = 0;
  double est_io_ms = 0;
  double est_rebinds = 0;
  std::string table_name;
};

struct PlanSummary {
  std::vector<PlanSummaryNode> nodes;  // pre-order, indexed by node_id

  /// Digests a finalized plan (ids dense pre-order, FinalizePlan contract).
  static PlanSummary FromPlan(const Plan& plan);
};

/// One poll answer from a SnapshotEndpoint: the freshest snapshot the server
/// holds, or "nothing yet" for a query that has not produced one.
/// `query_complete` marks the snapshot as the final one — counters are
/// final, the query is done.
struct PollResponse {
  uint64_t request_id = 0;
  bool has_snapshot = false;
  bool query_complete = false;
  ProfileSnapshot snapshot;  ///< meaningful only when has_snapshot
};

/// Encoders append exactly one complete frame to `*out` (existing content is
/// preserved, so frames can be concatenated onto one stream buffer).
void EncodeSnapshot(const ProfileSnapshot& snapshot, std::string* out);
void EncodeTrace(const ProfileTrace& trace, std::string* out);
void EncodePlanSummary(const PlanSummary& summary, std::string* out);
void EncodePollResponse(const PollResponse& response, std::string* out);

/// Total size (header + payload) of the frame starting at `buffer[0]`, for
/// splitting a stream of concatenated frames. Validates magic, version and
/// that the declared payload fits in the buffer.
StatusOr<size_t> WireFrameSize(std::string_view buffer);

/// Message type of a frame whose header is intact (payload not inspected).
StatusOr<WireType> WireFrameType(std::string_view frame);

/// Decoders require `frame` to be exactly one well-formed frame of the
/// matching type: header checks, CRC check, full payload consumption.
StatusOr<ProfileSnapshot> DecodeSnapshot(std::string_view frame);
StatusOr<ProfileTrace> DecodeTrace(std::string_view frame);
StatusOr<PlanSummary> DecodePlanSummary(std::string_view frame);
StatusOr<PollResponse> DecodePollResponse(std::string_view frame);

}  // namespace lqs

#endif  // LQS_REMOTE_WIRE_H_
