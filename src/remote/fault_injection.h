#ifndef LQS_REMOTE_FAULT_INJECTION_H_
#define LQS_REMOTE_FAULT_INJECTION_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "common/rng.h"
#include "remote/endpoint.h"

namespace lqs {

/// Fault model of a lossy link, drawn under a seeded RNG so every run is
/// exactly reproducible. Probabilities are per poll attempt and evaluated in
/// the order: corrupt, drop, delay, duplicate (a corrupted response is
/// delivered damaged rather than dropped — the client's CRC check is the
/// thing under test).
struct FaultConfig {
  /// Response lost entirely: the attempt observes a timeout.
  double drop_probability = 0;
  /// Response held back and delivered on a later poll instead — the client
  /// sees a timeout now and a *stale* (possibly out-of-order) snapshot
  /// later. Delay is uniform in (0, max_delay_ms].
  double delay_probability = 0;
  double max_delay_ms = 0;
  /// Response delivered now and again on a later poll (duplicate delivery).
  double duplicate_probability = 0;
  /// Frame damaged in flight: truncated at a random byte or a random bit
  /// flipped, chosen 50/50. Arrives with an ok transport status, so only
  /// the decoder can catch it.
  double corrupt_probability = 0;
  uint64_t seed = 1;
};

/// What the link did, for assertions and BENCH lines.
struct FaultStats {
  uint64_t forwarded = 0;   ///< polls answered from the inner endpoint
  uint64_t dropped = 0;
  uint64_t delayed = 0;     ///< responses queued for late delivery
  uint64_t late_delivered = 0;
  uint64_t duplicated = 0;  ///< extra copies queued
  uint64_t corrupted = 0;
};

/// Decorator that replays another endpoint through the fault model above:
/// drops, delays (which reorder), duplicates, and damages responses. Late
/// responses are delivered on subsequent polls in arrival order, carrying
/// their original (stale) payload — exactly how a delayed datagram surfaces.
///
/// Concurrency audit: thread-compatible like every SnapshotEndpoint — owned
/// by one session's PollingClient, never shared (see endpoint.h).
class FaultInjectingEndpoint : public SnapshotEndpoint {
 public:
  FaultInjectingEndpoint(std::unique_ptr<SnapshotEndpoint> inner,
                         const FaultConfig& config);

  PollResult Poll(const PollRequest& request) override;
  double KnownHorizonMs() const override { return inner_->KnownHorizonMs(); }

  const FaultStats& fault_stats() const { return stats_; }

 private:
  struct InFlight {
    double arrival_ms;
    std::string frame;
  };

  void Corrupt(std::string* frame);

  std::unique_ptr<SnapshotEndpoint> inner_;
  FaultConfig config_;
  Rng rng_;
  FaultStats stats_;
  /// Responses in flight past their original deadline, ordered by arrival.
  std::deque<InFlight> in_flight_;
};

}  // namespace lqs

#endif  // LQS_REMOTE_FAULT_INJECTION_H_
