#include "remote/polling_client.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "remote/wire.h"

namespace lqs {

PollingClient::PollingClient(std::unique_ptr<SnapshotEndpoint> endpoint,
                             PollingClientOptions options)
    : endpoint_(std::move(endpoint)),
      options_(options),
      jitter_rng_(options.jitter_seed) {}

bool PollingClient::MaybeAccept(ProfileSnapshot snapshot,
                                bool query_complete) {
  if (have_snapshot_) {
    if (snapshot.time_ms <= last_accepted_.time_ms) {
      // Same instant: a redelivered duplicate, harmless. Older: a reordered
      // late delivery that must not roll the estimator's view back.
      const double tolerance = 1e-9;
      if (std::abs(snapshot.time_ms - last_accepted_.time_ms) <= tolerance) {
        ++stats_.duplicates_ignored;
      } else {
        ++stats_.regressions_rejected;
      }
      return false;
    }
    // Counters running backwards at a newer timestamp mean the payload is
    // not a later observation of the same execution (a restarted server, a
    // misrouted response). DMV counters are monotone; reject.
    if (snapshot.operators.size() != last_accepted_.operators.size()) {
      ++stats_.regressions_rejected;
      return false;
    }
    for (size_t i = 0; i < snapshot.operators.size(); ++i) {
      if (snapshot.operators[i].row_count <
              last_accepted_.operators[i].row_count ||
          snapshot.operators[i].rebind_count <
              last_accepted_.operators[i].rebind_count) {
        ++stats_.regressions_rejected;
        return false;
      }
    }
    prev_accepted_ = std::move(last_accepted_);
    have_prev_ = true;
  }
  last_accepted_ = std::move(snapshot);
  have_snapshot_ = true;
  if (query_complete) complete_ = true;
  ++stats_.accepted;
  return true;
}

void PollingClient::Interpolate(double now_ms) {
  // Extrapolate counters at the rate observed between the last two accepted
  // snapshots, capped at one inter-snapshot gap so a long outage does not
  // run progress arbitrarily far ahead of reality.
  const double gap = last_accepted_.time_ms - prev_accepted_.time_ms;
  if (gap <= 0) {
    interpolated_ = last_accepted_;
    return;
  }
  const double ahead =
      std::min(now_ms - last_accepted_.time_ms, gap);
  if (ahead <= 0) {
    interpolated_ = last_accepted_;
    return;
  }
  const double f = ahead / gap;
  interpolated_ = last_accepted_;
  interpolated_.time_ms = last_accepted_.time_ms + ahead;
  for (size_t i = 0; i < interpolated_.operators.size(); ++i) {
    OperatorProfile& out = interpolated_.operators[i];
    const OperatorProfile& last = last_accepted_.operators[i];
    const OperatorProfile& prev = prev_accepted_.operators[i];
    auto lerp_u64 = [f](uint64_t newer, uint64_t older) -> uint64_t {
      return newer +
             static_cast<uint64_t>(
                 f * static_cast<double>(newer - std::min(newer, older)));
    };
    out.row_count = lerp_u64(last.row_count, prev.row_count);
    out.logical_read_count =
        lerp_u64(last.logical_read_count, prev.logical_read_count);
    out.segment_read_count =
        lerp_u64(last.segment_read_count, prev.segment_read_count);
    if (out.segment_total_count > 0) {
      out.segment_read_count =
          std::min(out.segment_read_count, out.segment_total_count);
    }
    out.cpu_time_ms += f * std::max(0.0, last.cpu_time_ms - prev.cpu_time_ms);
    out.io_time_ms += f * std::max(0.0, last.io_time_ms - prev.io_time_ms);
    // A synthetic snapshot must stay internally consistent: counters we
    // just advanced represent activity happening *now*, so the operator's
    // activity timestamp moves to the snapshot time — an operator whose
    // rows grew while last_active_ms sat in the past would contradict
    // itself (and time_ms) to any consumer of activity recency.
    const bool advanced = out.row_count != last.row_count ||
                          out.logical_read_count != last.logical_read_count ||
                          out.segment_read_count != last.segment_read_count;
    if (advanced && out.opened && !out.closed) {
      out.last_active_ms = interpolated_.time_ms;
    }
  }
}

void PollingClient::ServeClamped(const ProfileSnapshot& source) {
  if (!have_served_ || served_.operators.size() != source.operators.size()) {
    served_ = source;
    have_served_ = true;
    view_.snapshot = &served_;
    return;
  }
  // Element-wise monotone floor: the served view only ever moves forward.
  // When interpolation overshot reality, the next real snapshot lands
  // *below* the floor and the view holds flat until execution catches up —
  // a pause, not the backwards jump that violates §5 monotonicity.
  served_.time_ms = std::max(served_.time_ms, source.time_ms);
  for (size_t i = 0; i < served_.operators.size(); ++i) {
    OperatorProfile& s = served_.operators[i];
    const OperatorProfile& n = source.operators[i];
    // Monotone-by-contract counters and clocks: floor them.
    s.row_count = std::max(s.row_count, n.row_count);
    s.rebind_count = std::max(s.rebind_count, n.rebind_count);
    s.logical_read_count = std::max(s.logical_read_count, n.logical_read_count);
    s.segment_read_count = std::max(s.segment_read_count, n.segment_read_count);
    s.segment_total_count =
        std::max(s.segment_total_count, n.segment_total_count);
    s.cpu_time_ms = std::max(s.cpu_time_ms, n.cpu_time_ms);
    s.io_time_ms = std::max(s.io_time_ms, n.io_time_ms);
    s.last_active_ms = std::max(s.last_active_ms, n.last_active_ms);
    // Legitimately non-monotone fields pass through: the optimizer refines
    // estimates in both directions (§4), and totals can be re-learned.
    s.estimate_row_count = n.estimate_row_count;
    s.total_pages = n.total_pages;
    // One-shot timestamps are sticky once set (-1 means unset): a view in
    // which an operator un-opens would be nonsense.
    if (s.open_time_ms < 0) s.open_time_ms = n.open_time_ms;
    if (s.first_row_ms < 0) s.first_row_ms = n.first_row_ms;
    if (s.close_time_ms < 0) s.close_time_ms = n.close_time_ms;
    s.opened = s.opened || n.opened;
    s.closed = s.closed || n.closed;
    s.finished = s.finished || n.finished;
    s.has_pushed_predicate = n.has_pushed_predicate;
  }
  view_.snapshot = &served_;
}

void PollingClient::BuildView(double now_ms, bool accepted_fresh,
                              bool link_alive) {
  if (link_alive) {
    consecutive_failures_ = 0;
  } else {
    ++consecutive_failures_;
    ++stats_.failed_polls;
  }
  view_.consecutive_failures = consecutive_failures_;
  view_.health = consecutive_failures_ >= options_.degrade_after_failures
                     ? TransportHealth::kDegraded
                     : TransportHealth::kHealthy;
  view_.query_complete = complete_;
  view_.stale = have_snapshot_ && !accepted_fresh;
  if (!have_snapshot_) {
    view_.snapshot = nullptr;
    view_.staleness_ms = 0;
    return;
  }
  view_.staleness_ms = std::max(0.0, now_ms - last_accepted_.time_ms);
  if (view_.stale) ++stats_.stale_polls;
  if (complete_) {
    // The final snapshot is ground truth and progress 1.0 dominates every
    // earlier value, so it is served unclamped (an interpolated floor that
    // overshot must not outlive the query); the floor resets onto it.
    served_ = last_accepted_;
    have_served_ = true;
    view_.snapshot = &served_;
    return;
  }
  if (view_.stale &&
      options_.staleness_policy == StalenessPolicy::kInterpolate &&
      have_prev_) {
    Interpolate(now_ms);
    ServeClamped(interpolated_);
  } else {
    ServeClamped(last_accepted_);
  }
}

const ClientView& PollingClient::Poll(double now_ms) {
  if (complete_) {
    // The final snapshot is in hand; nothing fresher can exist. Serve it
    // without touching the link. accepted_fresh=true: final counters are
    // the current truth, not stale data.
    BuildView(now_ms, /*accepted_fresh=*/true, /*link_alive=*/true);
    return view_;
  }
  ++stats_.polls;
  bool accepted_fresh = false;
  bool link_alive = false;
  double attempt_time = now_ms;
  double backoff = options_.backoff_initial_ms;
  for (int attempt = 0; attempt < std::max(1, options_.max_attempts);
       ++attempt) {
    if (attempt > 0) ++stats_.retries;
    ++stats_.attempts;
    PollRequest request;
    request.request_id = next_request_id_++;
    request.now_ms = attempt_time;
    request.deadline_ms = attempt_time + options_.timeout_ms;
    // Delta protocol: acknowledge the snapshot we hold so a delta-capable
    // server can diff against it; after an unappliable delta, demand a
    // keyframe instead.
    request.has_ack = have_snapshot_;
    request.ack_time_ms = last_accepted_.time_ms;
    request.want_keyframe = need_keyframe_;
    PollResult result = endpoint_->Poll(request);
    const bool timed_out =
        !result.status.ok() || result.arrival_ms > request.deadline_ms;
    if (timed_out) {
      ++stats_.transport_failures;
      // Exponential backoff with deterministic jitter before the retry;
      // virtual time advances so the next attempt asks a later question.
      const double capped = std::min(backoff, options_.backoff_max_ms);
      const double jitter =
          1.0 + options_.jitter_fraction *
                    (2.0 * jitter_rng_.NextDouble() - 1.0);
      attempt_time += std::max(0.0, capped * jitter);
      backoff *= options_.backoff_multiplier;
      continue;
    }
    stats_.bytes_received += result.frame.size();
    StatusOr<PollResponse> response = DecodePollResponse(result.frame);
    if (!response.ok()) {
      // Bytes arrived damaged (truncated / bit-flipped / CRC). The decoder
      // contained the blast; retry as if the response were lost, but track
      // it separately — persistent decode errors mean version skew or a
      // broken link, not congestion.
      ++stats_.decode_errors;
      const double capped = std::min(backoff, options_.backoff_max_ms);
      const double jitter =
          1.0 + options_.jitter_fraction *
                    (2.0 * jitter_rng_.NextDouble() - 1.0);
      attempt_time += std::max(0.0, capped * jitter);
      backoff *= options_.backoff_multiplier;
      continue;
    }
    link_alive = true;
    if (response->request_id != request.request_id) {
      // A response to a request other than the one just sent: a late
      // delivery surfacing from behind the link's queue, or a misroute.
      // Late deliveries are legitimate data, so the payload still goes
      // through the recency filter below — but the event is counted, so a
      // link that systematically answers the wrong question is visible.
      ++stats_.request_id_mismatches;
    }
    if (response->has_delta) {
      ProfileSnapshot reassembled;
      Status applied =
          have_snapshot_
              ? ApplySnapshotDelta(response->delta, last_accepted_,
                                   &reassembled)
              : Status::NotFound("remote: delta with no base snapshot");
      if (applied.ok()) {
        ++stats_.deltas_applied;
        if (MaybeAccept(std::move(reassembled), response->query_complete)) {
          accepted_fresh = true;
          break;
        }
        // Reassembled to a duplicate (the server had no fresh snapshot):
        // no news; remaining attempts keep chasing.
      } else if (applied.code() == Status::Code::kNotFound) {
        // Base mismatch: our ack raced a keyframe, or we never had a base.
        // State is untouched — demand a keyframe on the next request
        // instead of guessing.
        need_keyframe_ = true;
        ++stats_.delta_resyncs;
      } else {
        // Structurally invalid delta (operator count, bad index): the
        // frame passed CRC but the message is nonsense. Same treatment as
        // a decode error.
        ++stats_.decode_errors;
        const double capped = std::min(backoff, options_.backoff_max_ms);
        const double jitter =
            1.0 + options_.jitter_fraction *
                      (2.0 * jitter_rng_.NextDouble() - 1.0);
        attempt_time += std::max(0.0, capped * jitter);
        backoff *= options_.backoff_multiplier;
      }
      continue;
    }
    if (response->has_snapshot) {
      // A full snapshot always resynchronizes the delta protocol, accepted
      // or not — the server honored (or pre-empted) the keyframe demand.
      need_keyframe_ = false;
      if (MaybeAccept(std::move(response->snapshot),
                      response->query_complete)) {
        accepted_fresh = true;
        break;
      }
      // A duplicate or reordered-stale delivery: the link works but this
      // response carries no news. Remaining attempts chase the fresh data
      // that may sit behind it (e.g. behind a late-delivery queue).
      continue;
    }
    // The server genuinely has nothing yet (query younger than its first
    // DMV sample). Not a failure; nothing to chase this tick.
    break;
  }
  BuildView(now_ms, accepted_fresh, link_alive);
  return view_;
}

}  // namespace lqs
