#include "lqs/trace_csv.h"

#include <cstdio>

#include "common/stringf.h"
#include "lqs/metrics.h"

namespace lqs {

namespace {

/// fopen wrapper returning Status.
Status OpenForWrite(const std::string& path, FILE** out) {
  *out = std::fopen(path.c_str(), "w");
  if (*out == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  return Status::OK();
}

}  // namespace

Status WriteTraceCsv(const Plan& plan, const ProfileTrace& trace,
                     const std::string& path) {
  FILE* f = nullptr;
  LQS_RETURN_IF_ERROR(OpenForWrite(path, &f));
  std::fprintf(f,
               "time_ms,node_id,operator,row_count,estimate_rows,rebinds,"
               "logical_reads,segments_read,segments_total,cpu_ms,io_ms,"
               "opened,finished\n");
  auto write_snapshot = [&](const ProfileSnapshot& snap) {
    for (const OperatorProfile& op : snap.operators) {
      std::fprintf(
          f, "%.3f,%d,\"%s\",%llu,%.1f,%llu,%llu,%llu,%llu,%.4f,%.4f,%d,%d\n",
          snap.time_ms, op.node_id, OpTypeName(plan.node(op.node_id).type),
          static_cast<unsigned long long>(op.row_count),
          op.estimate_row_count,
          static_cast<unsigned long long>(op.rebind_count),
          static_cast<unsigned long long>(op.logical_read_count),
          static_cast<unsigned long long>(op.segment_read_count),
          static_cast<unsigned long long>(op.segment_total_count),
          op.cpu_time_ms, op.io_time_ms, op.opened ? 1 : 0,
          op.finished ? 1 : 0);
    }
  };
  for (const ProfileSnapshot& snap : trace.snapshots) write_snapshot(snap);
  write_snapshot(trace.final_snapshot);
  std::fclose(f);
  return Status::OK();
}

Status WriteProgressCsv(const Plan& plan, const Catalog& catalog,
                        const ProfileTrace& trace,
                        const EstimatorOptions& options,
                        const std::string& path) {
  FILE* f = nullptr;
  LQS_RETURN_IF_ERROR(OpenForWrite(path, &f));
  std::fprintf(f, "time_ms,time_fraction,estimated,true_count");
  for (int i = 0; i < plan.size(); ++i) std::fprintf(f, ",op_%d", i);
  std::fprintf(f, "\n");

  ProgressEstimator estimator(&plan, &catalog, options);
  const double total = trace.total_elapsed_ms;
  ProgressEstimator::Workspace workspace;
  ProgressReport report;
  for (const ProfileSnapshot& snap : trace.snapshots) {
    estimator.EstimateInto(snap, &workspace, &report);
    double sum_k = 0;
    double sum_n = 0;
    for (size_t i = 0; i < snap.operators.size(); ++i) {
      sum_k += static_cast<double>(snap.operators[i].row_count);
      sum_n += static_cast<double>(
          trace.final_snapshot.operators[i].row_count);
    }
    std::fprintf(f, "%.3f,%.5f,%.5f,%.5f", snap.time_ms,
                 total > 0 ? snap.time_ms / total : 1.0,
                 report.query_progress, sum_n > 0 ? sum_k / sum_n : 1.0);
    for (int i = 0; i < plan.size(); ++i) {
      std::fprintf(f, ",%.5f", report.operator_progress[i]);
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace lqs
