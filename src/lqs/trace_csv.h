#ifndef LQS_LQS_TRACE_CSV_H_
#define LQS_LQS_TRACE_CSV_H_

#include <string>

#include "common/status.h"
#include "dmv/query_profile.h"
#include "exec/plan.h"
#include "lqs/estimator.h"
#include "storage/catalog.h"

namespace lqs {

/// CSV export for external analysis/plotting of LQS data: the raw DMV
/// counter trace, and an estimator's progress-over-time curve. Both formats
/// have a header row; one data row per (snapshot, operator) respectively per
/// snapshot.

/// Columns: time_ms,node_id,operator,row_count,estimate_rows,rebinds,
/// logical_reads,segments_read,segments_total,cpu_ms,io_ms,opened,finished.
Status WriteTraceCsv(const Plan& plan, const ProfileTrace& trace,
                     const std::string& path);

/// Columns: time_ms,time_fraction,estimated_progress,true_count_progress
/// plus one operator-progress column per plan node (op_<id>).
Status WriteProgressCsv(const Plan& plan, const Catalog& catalog,
                        const ProfileTrace& trace,
                        const EstimatorOptions& options,
                        const std::string& path);

}  // namespace lqs

#endif  // LQS_LQS_TRACE_CSV_H_
