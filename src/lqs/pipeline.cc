#include "lqs/pipeline.h"

namespace lqs {

bool IsBlockingEdge(const PlanNode& parent, size_t child_index) {
  switch (parent.type) {
    case OpType::kSort:
    case OpType::kTopNSort:
    case OpType::kDistinctSort:
    case OpType::kHashAggregate:
    case OpType::kEagerSpool:
      return true;
    case OpType::kHashJoin:
      return child_index == 0;  // build side
    default:
      return false;
  }
}

namespace {

struct Walker {
  const Plan* plan;
  PlanAnalysis* out;

  int NewPipeline(int root_node) {
    PipelineInfo info;
    info.id = out->pipeline_count();
    info.root_node = root_node;
    out->pipelines.push_back(std::move(info));
    return out->pipelines.back().id;
  }

  /// Assigns `node` (and its same-pipeline descendants) to pipeline `pid`.
  /// `inner_nlj` is the id of the innermost NL join whose inner side we are
  /// on (or -1). Returns true if the subtree below `node` *within this
  /// pipeline* contains a semi-blocking operator on every... — rather: sets
  /// separated_by_semi_blocking[n] = true when some same-pipeline descendant
  /// edge between n and the pipeline leaves crosses a semi-blocking op.
  bool Assign(const PlanNode& node, int pid, int inner_nlj) {
    out->pipeline_of_node[node.id] = pid;
    out->pipelines[pid].nodes.push_back(node.id);
    out->on_nlj_inner_side[node.id] = inner_nlj >= 0;
    out->enclosing_nlj[node.id] = inner_nlj;

    bool has_same_pipeline_child = false;
    bool below_semi_blocking = false;
    for (size_t i = 0; i < node.children.size(); ++i) {
      const PlanNode& child = *node.children[i];
      if (IsBlockingEdge(node, i)) {
        int child_pid = NewPipeline(child.id);
        out->pipelines[pid].child_pipelines.push_back(child_pid);
        Assign(child, child_pid, -1);
        continue;
      }
      has_same_pipeline_child = true;
      int child_inner_nlj = inner_nlj;
      if (node.type == OpType::kNestedLoopJoin && i == 1) {
        child_inner_nlj = node.id;
      }
      bool child_below_semi = Assign(child, pid, child_inner_nlj);
      // A node is separated from the pipeline's sources by a semi-blocking
      // operator when a same-pipeline child either is semi-blocking itself
      // (for NLJ: only when it actually buffers) or is already separated.
      bool child_is_semi =
          IsExchange(child.type) ||
          (child.type == OpType::kNestedLoopJoin && child.buffered_outer);
      below_semi_blocking = below_semi_blocking || child_is_semi ||
                            child_below_semi;
    }
    out->separated_by_semi_blocking[node.id] = below_semi_blocking;

    if (!has_same_pipeline_child) {
      // A source of this pipeline: either a leaf access path or a blocking
      // operator whose output feeds this pipeline (e.g. a Sort). Inner-side
      // NLJ sources are recorded separately (§3.1.1 excludes them from the
      // driver set; §4.4(1) adds them back for semi-blocking plans).
      if (inner_nlj >= 0) {
        out->pipelines[pid].inner_driver_nodes.push_back(node.id);
      } else {
        out->pipelines[pid].driver_nodes.push_back(node.id);
      }
    }
    return below_semi_blocking;
  }
};

}  // namespace

PlanAnalysis AnalyzePlan(const Plan& plan) {
  PlanAnalysis analysis;
  const int n = plan.size();
  analysis.pipeline_of_node.assign(n, -1);
  analysis.separated_by_semi_blocking.assign(n, false);
  analysis.on_nlj_inner_side.assign(n, false);
  analysis.enclosing_nlj.assign(n, -1);

  Walker walker{&plan, &analysis};
  int root_pid = walker.NewPipeline(plan.root->id);
  walker.Assign(*plan.root, root_pid, -1);
  return analysis;
}

}  // namespace lqs
