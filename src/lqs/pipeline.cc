#include "lqs/pipeline.h"

#include <algorithm>

#include "exec/cost_constants.h"

namespace lqs {

bool IsBlockingEdge(const PlanNode& parent, size_t child_index) {
  switch (parent.type) {
    case OpType::kSort:
    case OpType::kTopNSort:
    case OpType::kDistinctSort:
    case OpType::kHashAggregate:
    case OpType::kEagerSpool:
      return true;
    case OpType::kHashJoin:
      return child_index == 0;  // build side
    default:
      return false;
  }
}

namespace {

/// True when the operator has a blocking input phase whose cost is
/// attributed to its blocked child's pipeline (§4.5/§4.6): the sort family,
/// hash aggregation, the hash join build and the eager spool write.
bool HasBoundaryCost(OpType type) {
  switch (type) {
    case OpType::kSort:
    case OpType::kDistinctSort:
    case OpType::kTopNSort:
    case OpType::kHashAggregate:
    case OpType::kHashJoin:
    case OpType::kEagerSpool:
      return true;
    default:
      return false;
  }
}

struct Walker {
  const Plan* plan;
  PlanAnalysis* out;

  int NewPipeline(int root_node) {
    PipelineInfo info;
    info.id = out->pipeline_count();
    info.root_node = root_node;
    out->pipelines.push_back(std::move(info));
    return out->pipelines.back().id;
  }

  /// Assigns `node` (and its same-pipeline descendants) to pipeline `pid`.
  /// `inner_nlj` is the id of the innermost NL join whose inner side we are
  /// on (or -1). Returns true if the subtree below `node` *within this
  /// pipeline* contains a semi-blocking operator on every... — rather: sets
  /// separated_by_semi_blocking[n] = true when some same-pipeline descendant
  /// edge between n and the pipeline leaves crosses a semi-blocking op.
  /// `under_inner` tracks NL-inner edges across pipeline boundaries too —
  /// it keeps propagating where `inner_nlj` resets, feeding the global
  /// under_nlj_inner flag the incremental freezes are gated on.
  bool Assign(const PlanNode& node, int pid, int inner_nlj, bool under_inner) {
    out->pipeline_of_node[node.id] = pid;
    out->pipelines[pid].nodes.push_back(node.id);
    out->on_nlj_inner_side[node.id] = inner_nlj >= 0;
    out->enclosing_nlj[node.id] = inner_nlj;
    out->under_nlj_inner[node.id] = under_inner;

    bool has_same_pipeline_child = false;
    bool below_semi_blocking = false;
    for (size_t i = 0; i < node.children.size(); ++i) {
      const PlanNode& child = *node.children[i];
      const bool child_under_inner =
          under_inner || (node.type == OpType::kNestedLoopJoin && i == 1);
      if (IsBlockingEdge(node, i)) {
        int child_pid = NewPipeline(child.id);
        out->pipelines[pid].child_pipelines.push_back(child_pid);
        Assign(child, child_pid, -1, child_under_inner);
        continue;
      }
      has_same_pipeline_child = true;
      int child_inner_nlj = inner_nlj;
      if (node.type == OpType::kNestedLoopJoin && i == 1) {
        child_inner_nlj = node.id;
      }
      bool child_below_semi =
          Assign(child, pid, child_inner_nlj, child_under_inner);
      // A node is separated from the pipeline's sources by a semi-blocking
      // operator when a same-pipeline child either is semi-blocking itself
      // (for NLJ: only when it actually buffers) or is already separated.
      bool child_is_semi =
          IsExchange(child.type) ||
          (child.type == OpType::kNestedLoopJoin && child.buffered_outer);
      below_semi_blocking = below_semi_blocking || child_is_semi ||
                            child_below_semi;
    }
    out->separated_by_semi_blocking[node.id] = below_semi_blocking;

    if (!has_same_pipeline_child) {
      // A source of this pipeline: either a leaf access path or a blocking
      // operator whose output feeds this pipeline (e.g. a Sort). Inner-side
      // NLJ sources are recorded separately (§3.1.1 excludes them from the
      // driver set; §4.4(1) adds them back for semi-blocking plans).
      if (inner_nlj >= 0) {
        out->pipelines[pid].inner_driver_nodes.push_back(node.id);
      } else {
        out->pipelines[pid].driver_nodes.push_back(node.id);
      }
    }
    return below_semi_blocking;
  }
};

void FillPostorder(const PlanNode& node, std::vector<int>* postorder) {
  for (const auto& c : node.children) FillPostorder(*c, postorder);
  postorder->push_back(node.id);
}

/// Freeze topology and §4.6 weight attribution, derived once from the
/// pipeline decomposition (see the field docs in pipeline.h).
void FillFreezeAndWeightTopology(const Plan& plan, PlanAnalysis* a) {
  const int num_pipelines = a->pipeline_count();
  a->pipeline_freezable.assign(num_pipelines, true);
  for (int id = 0; id < plan.size(); ++id) {
    if (a->under_nlj_inner[id]) {
      a->pipeline_freezable[a->pipeline_of_node[id]] = false;
    }
  }

  a->weight_contribs.assign(num_pipelines, {});
  a->weight_deps.assign(num_pipelines, {});
  // Own terms first (pipeline node order), then the boundary terms blocking
  // operators scatter into their blocked child's pipeline — deterministic,
  // so repeated analyses of one plan sum weights in one order.
  for (const PipelineInfo& p : a->pipelines) {
    for (int id : p.nodes) {
      a->weight_contribs[p.id].push_back({id, false});
    }
  }
  for (const PipelineInfo& p : a->pipelines) {
    for (int id : p.nodes) {
      const PlanNode& node = plan.node(id);
      if (HasBoundaryCost(node.type) && !node.children.empty()) {
        a->weight_contribs[a->pipeline_of_node[node.child(0)->id]].push_back(
            {id, true});
      }
    }
  }

  // A pipeline's weight reads refined cardinalities of its own nodes and of
  // their first children (n_in terms may cross a blocking boundary; probe /
  // inner join inputs stay within the pipeline).
  for (const PipelineInfo& p : a->pipelines) {
    std::vector<int>& deps = a->weight_deps[p.id];
    deps.push_back(p.id);
    for (int id : p.nodes) {
      const PlanNode& node = plan.node(id);
      if (!node.children.empty()) {
        deps.push_back(a->pipeline_of_node[node.child(0)->id]);
      }
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  }
  a->weight_freezable.assign(num_pipelines, false);
  for (int p = 0; p < num_pipelines; ++p) {
    bool freezable = true;
    for (int d : a->weight_deps[p]) {
      freezable = freezable && a->pipeline_freezable[d];
    }
    a->weight_freezable[p] = freezable;
  }
}

void FillCatalogStatics(const Plan& plan, const Catalog& catalog,
                        PlanAnalysis* a) {
  a->node_statics.assign(plan.size(), NodeStatics{});
  for (int id = 0; id < plan.size(); ++id) {
    const PlanNode& node = plan.node(id);
    NodeStatics& s = a->node_statics[id];
    const Table* t = catalog.GetTable(node.table_name);
    if (t != nullptr) {
      s.table_rows = static_cast<double>(t->num_rows());
      s.bound_table_rows = s.table_rows;
    }
    switch (node.type) {
      case OpType::kTableScan:
      case OpType::kClusteredIndexScan:
      case OpType::kIndexScan:
        if (t != nullptr) {
          s.scan_io_ms = static_cast<double>(t->num_pages()) *
                         cost::kIoSequentialPageMs;
          s.scan_cpu_ms =
              static_cast<double>(t->num_rows()) * cost::kCpuScanRowMs;
        }
        break;
      case OpType::kColumnstoreScan: {
        const ColumnstoreIndex* csi = catalog.GetColumnstore(node.table_name);
        if (csi != nullptr && t != nullptr) {
          s.scan_io_ms =
              static_cast<double>(csi->num_segments()) * cost::kIoSegmentMs;
          s.scan_cpu_ms =
              static_cast<double>(t->num_rows()) * cost::kCpuBatchRowMs;
        }
        break;
      }
      default:
        break;
    }
    s.uncorrelated_full_scan =
        (node.type == OpType::kTableScan ||
         node.type == OpType::kClusteredIndexScan ||
         node.type == OpType::kIndexScan ||
         node.type == OpType::kColumnstoreScan) &&
        node.pushed_predicate == nullptr && node.bitmap_source_id < 0 &&
        !a->on_nlj_inner_side[id];
  }
  a->has_catalog_statics = true;
}

/// Base-table origin of one operator output column, found by walking down
/// through multiplicity-non-increasing operators only.
struct DegreeOrigin {
  const PlanNode* scan = nullptr;  ///< leaf access path reached
  int column = -1;                 ///< column index in the base table schema
};

/// Resolves (node, output column) to a base-table column such that within a
/// single execution of the subtree, no value's multiplicity in the output
/// column can exceed its multiplicity in the base column — the soundness
/// condition for capping a join side's degree sequence with the base
/// column's precomputed norms. Operators that can replicate rows (inner and
/// outer joins, Concatenation) stop the walk; re-execution under a
/// Nested Loops inner side is handled separately (the LpBound engine
/// declines any subtree with a rebind multiplier > 1). Returns false when
/// no such origin exists.
bool ResolveDegreeOrigin(const Catalog& catalog, const PlanNode& node,
                         int column, DegreeOrigin* out) {
  if (column < 0) return false;
  switch (node.type) {
    // Leaf access paths over stored rows: every output row is a distinct
    // base row, so output degrees are bounded by base-column degrees.
    case OpType::kTableScan:
    case OpType::kClusteredIndexScan:
    case OpType::kClusteredIndexSeek:
    case OpType::kIndexScan:
    case OpType::kColumnstoreScan:
      out->scan = &node;
      out->column = column;
      return true;
    case OpType::kIndexSeek: {
      // Output schema is (index key, rid); only the key column maps back.
      if (column != 0) return false;
      const Table* t = catalog.GetTable(node.table_name);
      if (t == nullptr) return false;
      const OrderedIndex* idx = t->GetIndex(node.index_name);
      if (idx == nullptr) return false;
      out->scan = &node;
      out->column = idx->key_column();
      return true;
    }
    // kRidLookup fetches one base row per outer rid, and duplicate rids
    // replicate rows — not multiplicity-pure, so it stops the walk.

    // Row-preserving / row-filtering pass-throughs: same column index on
    // the only child, output is a (reordered) subset of the input.
    case OpType::kFilter:
    case OpType::kTop:
    case OpType::kSegment:
    case OpType::kBitmapCreate:
    case OpType::kSort:
    case OpType::kTopNSort:
    case OpType::kDistinctSort:
    case OpType::kEagerSpool:
    case OpType::kLazySpool:
    case OpType::kGatherStreams:
    case OpType::kRepartitionStreams:
    case OpType::kDistributeStreams:
      if (node.children.empty()) return false;
      return ResolveDegreeOrigin(catalog, *node.child(0), column, out);
    case OpType::kComputeScalar: {
      // Pass-through columns only; computed expressions have no base norms.
      if (node.children.empty()) return false;
      const int child_arity =
          static_cast<int>(node.child(0)->output_schema.num_columns());
      if (column >= child_arity) return false;
      return ResolveDegreeOrigin(catalog, *node.child(0), column, out);
    }
    case OpType::kHashJoin:
    case OpType::kMergeJoin:
    case OpType::kNestedLoopJoin:
      // Semi/anti joins emit each preserved-side row at most once, so the
      // walk continues down that side; inner and outer joins replicate
      // matching rows and stop it.
      switch (node.join_kind) {
        case JoinKind::kLeftSemi:
        case JoinKind::kLeftAnti:
          return ResolveDegreeOrigin(catalog, *node.child(0), column, out);
        case JoinKind::kRightSemi:
          return ResolveDegreeOrigin(catalog, *node.child(1), column, out);
        default:
          return false;
      }
    case OpType::kHashAggregate:
    case OpType::kStreamAggregate:
      // Group columns pass through with one output row per group: a value's
      // output degree (groups containing it) never exceeds its input degree
      // (rows containing it). Aggregate outputs are computed, not resolved.
      if (node.children.empty()) return false;
      if (column < static_cast<int>(node.group_columns.size())) {
        return ResolveDegreeOrigin(catalog, *node.child(0),
                                   node.group_columns[column], out);
      }
      return false;
    default:
      // kConstantScan, kConcatenation (can merge duplicates from several
      // children), kRidLookup, and anything added later: no sound origin.
      return false;
  }
}

/// Hoists the LpBound join-side degree caps: for every equijoin node and
/// each input side, the min over that side's resolvable key columns of the
/// base column's exact ℓ∞ / ℓ2 norms (see NodeStatics in pipeline.h).
void FillDegreeNormStatics(const Plan& plan, const Catalog& catalog,
                           PlanAnalysis* a) {
  for (int id = 0; id < plan.size(); ++id) {
    const PlanNode& node = plan.node(id);
    if (!IsJoin(node.type)) continue;
    if (node.outer_keys.empty() ||
        node.outer_keys.size() != node.inner_keys.size()) {
      continue;  // not an equijoin: no degree caps apply
    }
    NodeStatics& s = a->node_statics[id];
    for (int side = 0; side < 2; ++side) {
      const std::vector<int>& keys =
          side == 0 ? node.outer_keys : node.inner_keys;
      const PlanNode& child = *node.child(static_cast<size_t>(side));
      bool valid = false;
      double linf = std::numeric_limits<double>::infinity();
      double l2 = std::numeric_limits<double>::infinity();
      for (int key : keys) {
        DegreeOrigin origin;
        if (!ResolveDegreeOrigin(catalog, child, key, &origin)) continue;
        const TableStatistics* stats =
            catalog.GetStatistics(origin.scan->table_name);
        if (stats == nullptr) continue;
        const Table* t = catalog.GetTable(origin.scan->table_name);
        if (t == nullptr || origin.column < 0 ||
            origin.column >=
                static_cast<int>(t->schema().num_columns())) {
          continue;
        }
        const DegreeNorms& norms = stats->degree_norms(origin.column);
        if (!norms.valid) continue;
        // Any single resolved key column caps the composite-key degrees,
        // so the min over resolved columns is sound even when some key
        // columns fail to resolve.
        valid = true;
        linf = std::min(linf, norms.linf);
        l2 = std::min(l2, norms.l2);
      }
      s.lp_side_valid[side] = valid;
      s.lp_linf[side] = linf;
      s.lp_l2[side] = l2;
    }
  }
  a->has_degree_norms = true;
}

}  // namespace

PlanAnalysis AnalyzePlan(const Plan& plan) {
  PlanAnalysis analysis;
  const int n = plan.size();
  analysis.pipeline_of_node.assign(n, -1);
  analysis.separated_by_semi_blocking.assign(n, false);
  analysis.on_nlj_inner_side.assign(n, false);
  analysis.enclosing_nlj.assign(n, -1);
  analysis.under_nlj_inner.assign(n, false);

  Walker walker{&plan, &analysis};
  int root_pid = walker.NewPipeline(plan.root->id);
  walker.Assign(*plan.root, root_pid, -1, false);

  analysis.postorder.reserve(n);
  FillPostorder(*plan.root, &analysis.postorder);
  FillFreezeAndWeightTopology(plan, &analysis);

  analysis.est_seed.resize(n);
  for (int i = 0; i < n; ++i) {
    analysis.est_seed[i] = std::max(0.0, plan.node(i).est_rows);
  }
  return analysis;
}

PlanAnalysis AnalyzePlan(const Plan& plan, const Catalog* catalog) {
  PlanAnalysis analysis = AnalyzePlan(plan);
  if (catalog != nullptr) {
    FillCatalogStatics(plan, *catalog, &analysis);
    FillDegreeNormStatics(plan, *catalog, &analysis);
  }
  return analysis;
}

}  // namespace lqs
