#include "lqs/metrics.h"

#include <algorithm>
#include <cmath>

namespace lqs {

namespace {

/// GetNext-model progress with exact cardinalities: the §5 Error_count
/// reference term Σ K_i(t) / Σ N_i^true over all plan nodes.
double TrueCountProgress(const ProfileSnapshot& snap,
                         const ProfileSnapshot& final_snap) {
  double sum_k = 0;
  double sum_n = 0;
  for (size_t i = 0; i < snap.operators.size(); ++i) {
    sum_k += static_cast<double>(snap.operators[i].row_count);
    sum_n += static_cast<double>(final_snap.operators[i].row_count);
  }
  return sum_n > 0 ? sum_k / sum_n : 1.0;
}

}  // namespace

QueryEvaluation EvaluateQuery(const Plan& plan, const Catalog& catalog,
                              const ProfileTrace& trace,
                              const EstimatorOptions& options) {
  QueryEvaluation eval;
  ProgressEstimator estimator(&plan, &catalog, options);
  const ProfileSnapshot& final_snap = trace.final_snapshot;
  const double total = trace.total_elapsed_ms;

  eval.operator_errors.resize(plan.size());
  for (int i = 0; i < plan.size(); ++i) {
    eval.operator_errors[i].node_id = i;
    eval.operator_errors[i].type = plan.node(i).type;
  }

  // One workspace + report across the whole replay: the loop body reuses
  // their buffers instead of reallocating per snapshot.
  ProgressEstimator::Workspace workspace;
  ProgressReport report;
  for (const ProfileSnapshot& snap : trace.snapshots) {
    estimator.EstimateInto(snap, &workspace, &report);
    const double true_count = TrueCountProgress(snap, final_snap);
    const double time_frac = total > 0 ? snap.time_ms / total : 1.0;

    eval.error_count += std::abs(report.query_progress - true_count);
    eval.error_time += std::abs(report.query_progress - time_frac);
    eval.observations++;

    for (int i = 0; i < plan.size(); ++i) {
      const OperatorProfile& prof = snap.operators[i];
      const OperatorProfile& final_prof = final_snap.operators[i];
      OperatorError& err = eval.operator_errors[i];

      // Per-operator count error: progress ratio with estimated vs true N.
      const double n_true = static_cast<double>(final_prof.row_count);
      if (prof.opened && n_true > 0) {
        const double k = static_cast<double>(prof.row_count);
        const double est_ratio =
            std::clamp(k / std::max(1.0, report.refined_rows[i]), 0.0, 1.0);
        const double true_ratio = std::clamp(k / n_true, 0.0, 1.0);
        err.count_error += std::abs(est_ratio - true_ratio);
        err.count_observations++;
      }

      // Per-operator time error: estimator's displayed operator progress vs
      // the operator's own activity-time fraction.
      const double t0 = final_prof.open_time_ms;
      const double t1 = final_prof.last_active_ms;
      if (t0 >= 0 && t1 > t0 && snap.time_ms >= t0 && snap.time_ms <= t1) {
        const double op_time_frac = (snap.time_ms - t0) / (t1 - t0);
        err.time_error +=
            std::abs(report.operator_progress[i] - op_time_frac);
        err.time_observations++;
      }
    }
  }

  if (eval.observations > 0) {
    eval.error_count /= eval.observations;
    eval.error_time /= eval.observations;
  }
  for (OperatorError& err : eval.operator_errors) {
    if (err.count_observations > 0) err.count_error /= err.count_observations;
    if (err.time_observations > 0) err.time_error /= err.time_observations;
  }
  return eval;
}

std::vector<ProgressSample> ProgressCurve(const Plan& plan,
                                          const Catalog& catalog,
                                          const ProfileTrace& trace,
                                          const EstimatorOptions& options) {
  std::vector<ProgressSample> curve;
  ProgressEstimator estimator(&plan, &catalog, options);
  const double total = trace.total_elapsed_ms;
  curve.reserve(trace.snapshots.size());
  ProgressEstimator::Workspace workspace;
  ProgressReport report;
  for (const ProfileSnapshot& snap : trace.snapshots) {
    estimator.EstimateInto(snap, &workspace, &report);
    ProgressSample s;
    s.time_ms = snap.time_ms;
    s.estimated = report.query_progress;
    s.true_count = TrueCountProgress(snap, trace.final_snapshot);
    s.time_fraction = total > 0 ? snap.time_ms / total : 1.0;
    curve.push_back(s);
  }
  return curve;
}

}  // namespace lqs
