#include "lqs/estimator.h"

#include "exec/cost_constants.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lqs {

namespace {

double K(const ProfileSnapshot& snap, int id) {
  return static_cast<double>(snap.operators[id].row_count);
}

/// Executions of a node so far (NL inner sides): first Open plus rebinds.
double Executions(const ProfileSnapshot& snap, int id) {
  const OperatorProfile& p = snap.operators[id];
  return static_cast<double>(p.rebind_count) + (p.opened ? 1.0 : 0.0);
}

bool IsBlockingForProgress(OpType type) {
  // §4.5 applies to operators whose own processing is dominated by input
  // consumption: the sort family, hash aggregation and the hash join build.
  return IsSortFamily(type) || type == OpType::kHashAggregate ||
         type == OpType::kHashJoin || type == OpType::kEagerSpool;
}

}  // namespace

EstimatorOptions EstimatorOptions::TotalGetNext() {
  EstimatorOptions o;
  o.use_driver_nodes = false;
  o.refine_cardinality = false;
  o.bound_cardinality = false;
  o.semi_blocking_adjust = false;
  o.two_phase_blocking = false;
  o.use_weights = false;
  o.storage_predicate_io = false;
  o.batch_mode_segments = false;
  return o;
}

EstimatorOptions EstimatorOptions::BoundingOnly() {
  EstimatorOptions o = TotalGetNext();
  o.bound_cardinality = true;
  return o;
}

EstimatorOptions EstimatorOptions::DriverNodeRefined() {
  EstimatorOptions o;
  o.use_driver_nodes = true;
  o.refine_cardinality = true;
  o.bound_cardinality = true;
  o.semi_blocking_adjust = true;
  o.two_phase_blocking = false;
  o.use_weights = false;
  o.storage_predicate_io = true;
  o.batch_mode_segments = true;
  return o;
}

EstimatorOptions EstimatorOptions::Lqs() {
  EstimatorOptions o;  // defaults are the full configuration
  return o;
}

const char* EstimatorOptions::PresetName(int index) {
  static constexpr const char* kNames[kPresetCount] = {"tgn", "bounding",
                                                       "refined", "lqs"};
  if (index < 0 || index >= kPresetCount) {
    std::fprintf(stderr,
                 "EstimatorOptions::PresetName: index %d out of range "
                 "[0, %d)\n",
                 index, kPresetCount);
    std::abort();
  }
  return kNames[index];
}

EstimatorOptions EstimatorOptions::PresetByIndex(int index) {
  switch (index) {
    case 0: return TotalGetNext();
    case 1: return BoundingOnly();
    case 2: return DriverNodeRefined();
    case 3: return Lqs();
    default: break;
  }
  std::fprintf(stderr,
               "EstimatorOptions::PresetByIndex: index %d out of range "
               "[0, %d)\n",
               index, kPresetCount);
  std::abort();
}

bool EstimatorOptions::PresetFromName(std::string_view name,
                                      EstimatorOptions* out) {
  for (int i = 0; i < kPresetCount; ++i) {
    if (name == PresetName(i)) {
      *out = PresetByIndex(i);
      return true;
    }
  }
  // "<preset>_lp": the base preset with the LpBound-intersected bounding
  // engine (see EstimatorOptions::bounds_engine).
  constexpr std::string_view kLpSuffix = "_lp";
  if (name.size() > kLpSuffix.size() &&
      name.substr(name.size() - kLpSuffix.size()) == kLpSuffix) {
    EstimatorOptions base;
    if (PresetFromName(name.substr(0, name.size() - kLpSuffix.size()),
                       &base)) {
      base.bounds_engine = BoundsEngineKind::kIntersect;
      *out = base;
      return true;
    }
  }
  return false;
}

uint64_t EstimatorOptions::PackBits() const {
  uint64_t bits = 0;
  int shift = 0;
  for (bool flag :
       {use_driver_nodes, refine_cardinality, bound_cardinality,
        semi_blocking_adjust, two_phase_blocking, use_weights,
        critical_path_only, storage_predicate_io, batch_mode_segments,
        interpolate_refinement, propagate_refinement, incremental,
        ensemble}) {
    if (flag) bits |= uint64_t{1} << shift;
    ++shift;
  }
  // Bits 13-14: the bounds-engine selector (three engine kinds).
  bits |= static_cast<uint64_t>(bounds_engine) << 13;
  return bits | (refine_min_rows << 16);
}

ProgressEstimator::ProgressEstimator(const Plan* plan, const Catalog* catalog,
                                     EstimatorOptions options)
    : plan_(plan), catalog_(catalog), options_(options),
      analysis_(AnalyzePlan(*plan, catalog)) {}

void ProgressEstimator::PrepareWorkspace(Workspace* ws) const {
  if (ws->owner == this) return;
  if (ws->owner != nullptr) {
    // One workspace per estimator per thread (see the Workspace contract):
    // a workspace bound to another estimator carries that plan's shape and
    // frozen values. Mixing plans would read caches of the wrong query —
    // abort loudly instead.
    std::fprintf(stderr,
                 "ProgressEstimator::EstimateInto: workspace is bound to a "
                 "different estimator (plan shape %zu nodes, this plan has "
                 "%d) — use one Workspace per estimator per thread\n",
                 ws->n_hat.size(), plan_->size());
    std::abort();
  }
  const size_t n = static_cast<size_t>(plan_->size());
  const size_t np = static_cast<size_t>(analysis_.pipeline_count());
  ws->owner = this;
  ws->n_hat.assign(n, 0.0);
  ws->alpha.assign(np, 0.0);
  ws->weight.assign(np, 0.0);
  ws->bounds.lower.reserve(n);  // sized by ComputeBoundsInto per call
  ws->bounds.upper.reserve(n);
  ws->lp_bounds.lower.reserve(n);  // second-engine scratch (kIntersect)
  ws->lp_bounds.upper.reserve(n);
  ws->node_frozen.assign(n, 0);
  ws->pipeline_finished.assign(np, 0);
  ws->weight_frozen.assign(np, 0);
  ws->frozen_weight.assign(np, 0.0);
  ws->on_path.assign(np, 1);
  ws->cp_best.assign(np, 0.0);
  ws->cp_best_child.assign(np, -1);
}

void ProgressEstimator::ComputeFreezeMasks(const ProfileSnapshot& snapshot,
                                           Workspace* ws) const {
  if (!options_.incremental) return;  // masks stay all-zero
  // Everything below derives from THIS snapshot only. A `finished` operator
  // outside every NL-inner side has final counters, so any snapshot that
  // shows it finished shows the same counters — frozen values computed from
  // one such snapshot are exact for all of them, in any replay order.
  const int n = plan_->size();
  for (int i = 0; i < n; ++i) {
    ws->node_frozen[i] = (snapshot.operators[i].finished &&
                          !analysis_.under_nlj_inner[i])
                             ? 1
                             : 0;
  }
  for (const PipelineInfo& p : analysis_.pipelines) {
    bool finished = true;
    for (int id : p.nodes) {
      finished = finished && snapshot.operators[id].finished;
    }
    ws->pipeline_finished[p.id] = finished ? 1 : 0;
  }
}

double ProgressEstimator::FullScanRows(const PlanNode& node) const {
  if (options_.incremental && analysis_.has_catalog_statics) {
    const NodeStatics& s = analysis_.node_statics[node.id];
    return s.uncorrelated_full_scan ? s.table_rows : -1.0;
  }
  if (!((node.type == OpType::kTableScan ||
         node.type == OpType::kClusteredIndexScan ||
         node.type == OpType::kIndexScan ||
         node.type == OpType::kColumnstoreScan) &&
        node.pushed_predicate == nullptr && node.bitmap_source_id < 0 &&
        !analysis_.on_nlj_inner_side[node.id])) {
    return -1.0;
  }
  const Table* t = catalog_->GetTable(node.table_name);
  return t == nullptr ? -1.0 : static_cast<double>(t->num_rows());
}

void ProgressEstimator::DriverContribution(const ProfileSnapshot& snapshot,
                                           int node_id,
                                           const std::vector<double>& n_hat,
                                           double* k, double* n) const {
  const PlanNode& node = plan_->node(node_id);
  const OperatorProfile& prof = snapshot.operators[node_id];
  const double rows_out = K(snapshot, node_id);

  if (prof.finished && !analysis_.on_nlj_inner_side[node_id]) {
    *k = 1.0;
    *n = 1.0;
    return;
  }

  // §4.7: batch-mode scans progress by segments processed.
  if (node.type == OpType::kColumnstoreScan && options_.batch_mode_segments &&
      prof.segment_total_count > 0) {
    const double total =
        static_cast<double>(prof.segment_total_count);
    *k = static_cast<double>(prof.segment_read_count);
    *n = total;
    return;
  }

  // §4.3: scans with storage-engine predicates progress by I/O fraction —
  // their output cardinality is unreliable, but the pages they must touch
  // are known exactly.
  if (IsScan(node.type) && prof.has_pushed_predicate &&
      options_.storage_predicate_io && prof.total_pages > 0 &&
      !analysis_.on_nlj_inner_side[node_id]) {
    *k = static_cast<double>(prof.logical_read_count);
    *n = static_cast<double>(prof.total_pages);
    return;
  }

  // Plain full scans: total known exactly from the catalog.
  const double scan_rows = FullScanRows(node);
  if (scan_rows > 0) {
    *k = rows_out;
    *n = scan_rows;
    return;
  }

  // Everything else (seeks, blocking-operator outputs, constant scans,
  // NL-inner drivers): use the current best cardinality estimate.
  *k = rows_out;
  *n = std::max(1.0, n_hat[node_id]);
}

void ProgressEstimator::PipelineAlphasInto(const ProfileSnapshot& snapshot,
                                           const std::vector<double>& n_hat,
                                           bool include_inner,
                                           Workspace* ws) const {
  std::vector<double>& alpha = ws->alpha;
  for (const PipelineInfo& p : analysis_.pipelines) {
    if (options_.incremental && ws->pipeline_finished[p.id] != 0 &&
        analysis_.pipeline_freezable[p.id]) {
      // Every member operator finished: the root-finished override below
      // would force exactly 1.0 — skip the driver loop.
      alpha[p.id] = 1.0;
      ws->stats.alpha_freezes++;
      continue;
    }
    double sum_k = 0;
    double sum_n = 0;
    auto add = [&](int d) {
      double k = 0;
      double n = 1;
      DriverContribution(snapshot, d, n_hat, &k, &n);
      // Normalize heterogeneous units (rows vs pages vs segments) by
      // weighting each driver by its row cardinality estimate.
      double weight = std::max(1.0, n_hat[d]);
      if (n > 0) {
        sum_k += weight * (k / n);
        sum_n += weight;
      }
    };
    for (int d : p.driver_nodes) add(d);
    if (include_inner && options_.semi_blocking_adjust) {
      for (int d : p.inner_driver_nodes) add(d);
    }
    alpha[p.id] = sum_n > 0 ? std::clamp(sum_k / sum_n, 0.0, 1.0) : 0.0;
    // A pipeline whose root has finished is complete regardless of the
    // drivers' bookkeeping.
    if (snapshot.operators[p.root_node].finished &&
        !analysis_.on_nlj_inner_side[p.root_node]) {
      alpha[p.id] = 1.0;
    }
  }
}

void ProgressEstimator::RefinePass(const ProfileSnapshot& snapshot,
                                   const std::vector<double>& alpha,
                                   const CardinalityBounds* bounds,
                                   std::vector<double>* n_hat) const {
  // Bottom-up (children before parents) so child refinements feed the
  // §4.4(2) immediate-child scale-up; the order is hoisted into
  // analysis_.postorder so the hot path is one flat loop.
  for (int id : analysis_.postorder) {
    RefineNode(snapshot, plan_->node(id), alpha, bounds, n_hat);
  }
}

void ProgressEstimator::RefineNode(const ProfileSnapshot& snapshot,
                                   const PlanNode& node,
                                   const std::vector<double>& alpha,
                                   const CardinalityBounds* bounds,
                                   std::vector<double>* n_hat) const {
  const int id = node.id;
  const OperatorProfile& prof = snapshot.operators[id];
  const double k = K(snapshot, id);
  const bool inner = analysis_.on_nlj_inner_side[id];
  double estimate = node.est_rows;  // showplan default
  bool locally_refined = false;     // estimate replaced by observation

  if (prof.finished && !inner) {
    (*n_hat)[id] = std::max(1.0, k);
    return;
  }

  // Exactly-known totals for uncorrelated full scans.
  const double scan_rows = FullScanRows(node);
  if (scan_rows >= 0) {
    (*n_hat)[id] = scan_rows;
    return;
  }

  if (options_.refine_cardinality) {
    const uint64_t min_rows = options_.refine_min_rows;
    // Cardinality-preserving operators emit exactly their input: their
    // best estimate IS the child's refined estimate. Scaling their own
    // K by driver progress is wrong for a buffering exchange (its K
    // deliberately lags, §4.4) and redundant for sorts.
    if (!inner &&
        (IsExchange(node.type) || node.type == OpType::kSort ||
         node.type == OpType::kComputeScalar ||
         node.type == OpType::kBitmapCreate)) {
      (*n_hat)[id] = std::max(k, (*n_hat)[node.child(0)->id]);
      return;
    }
    if (inner && options_.semi_blocking_adjust) {
      // §4.1 (nested loops) + §4.4(3): scale K_i by the inverse of the
      // fraction of outer rows the join has actually PROCESSED.
      // Executions of the join's direct inner child count processed
      // outer rows exactly, which adjusts for rows merely buffered on
      // the outer side; the outer child's refined total supplies the
      // denominator. Nodes that are not re-executed per outer row
      // (spool children) are handled correctly too: at completion the
      // fraction is 1 and the estimate equals K_i.
      const int nlj = analysis_.enclosing_nlj[id];
      const PlanNode& join = plan_->node(nlj);
      const double processed = Executions(snapshot, join.child(1)->id);
      double outer_total = (*n_hat)[join.child(0)->id];
      if (processed >= static_cast<double>(std::min<uint64_t>(min_rows, 8)) &&
          outer_total > 0) {
        const double fraction =
            std::clamp(processed / std::max(1.0, outer_total), 1e-9, 1.0);
        estimate = k / fraction;
        locally_refined = true;
      }
    } else if (!inner) {
      // Scale-up basis: pipeline driver progress, or the immediate
      // child's progress when separated by a semi-blocking operator
      // (§4.4(2), Figure 9).
      double a = 0.0;
      bool use_child = options_.semi_blocking_adjust &&
                       analysis_.separated_by_semi_blocking[id];
      if (use_child) {
        double ck = 0;
        double cn = 0;
        for (const auto& c : node.children) {
          if (analysis_.pipeline_of_node[c->id] !=
              analysis_.pipeline_of_node[id]) {
            continue;  // blocked child: not part of this flow
          }
          ck += K(snapshot, c->id);
          cn += std::max(1.0, (*n_hat)[c->id]);
        }
        a = cn > 0 ? ck / cn : 0.0;
      } else {
        a = alpha[analysis_.pipeline_of_node[id]];
      }
      a = std::clamp(a, 0.0, 1.0);

      // Guard conditions (§4.1): enough rows observed on all inputs,
      // and for selective operators both outcomes observed.
      bool guards = a > 1e-9 && k >= static_cast<double>(min_rows);
      double input_seen = 0;
      for (const auto& c : node.children) input_seen += K(snapshot, c->id);
      if (!node.children.empty()) {
        for (const auto& c : node.children) {
          if (K(snapshot, c->id) < static_cast<double>(min_rows)) {
            guards = false;
          }
        }
      }
      const bool selective =
          node.type == OpType::kFilter || IsJoin(node.type) ||
          (IsScan(node.type) && prof.has_pushed_predicate);
      if (selective && !node.children.empty() &&
          !(k > 0 && k < input_seen)) {
        guards = false;
      }
      if (guards) {
        double scaled = k / a;
        estimate = options_.interpolate_refinement
                       ? (1.0 - a) * node.est_rows + a * scaled
                       : scaled;
        locally_refined = true;
      }
    }
  }

  // §7(a) extension: before any local observation exists, inherit the
  // children's refinement by scaling the showplan estimate with the
  // ratio by which the children's estimates moved.
  if (options_.propagate_refinement && !inner &&
      k < static_cast<double>(options_.refine_min_rows) &&
      !node.children.empty() && !locally_refined) {
    double ratio = 1.0;
    int contributing = 0;
    for (const auto& c : node.children) {
      if (c->est_rows > 0 && (*n_hat)[c->id] > 0) {
        ratio *= (*n_hat)[c->id] / c->est_rows;
        contributing++;
      }
    }
    if (contributing > 0) {
      ratio = std::pow(ratio, 1.0 / contributing);
      estimate = node.est_rows * std::clamp(ratio, 0.02, 50.0);
    }
  }

  if (options_.bound_cardinality && bounds != nullptr) {
    double lb = bounds->lower[id];
    double ub = bounds->upper[id];
    if (std::isfinite(lb)) estimate = std::max(estimate, lb);
    if (std::isfinite(ub)) estimate = std::min(estimate, ub);
  }
  (*n_hat)[id] = std::max(estimate, 0.0);
}

double ProgressEstimator::OperatorProgress(const ProfileSnapshot& snapshot,
                                           int node_id,
                                           const std::vector<double>& n_hat)
    const {
  const PlanNode& node = plan_->node(node_id);
  const OperatorProfile& prof = snapshot.operators[node_id];
  if (!prof.opened) return 0.0;
  if (prof.finished && !analysis_.on_nlj_inner_side[node_id]) return 1.0;

  // §4.7 batch mode.
  if (node.type == OpType::kColumnstoreScan && options_.batch_mode_segments &&
      prof.segment_total_count > 0) {
    return std::clamp(static_cast<double>(prof.segment_read_count) /
                          static_cast<double>(prof.segment_total_count),
                      0.0, 1.0);
  }
  // §4.3 storage-engine predicates.
  if (IsScan(node.type) && prof.has_pushed_predicate &&
      options_.storage_predicate_io && prof.total_pages > 0 &&
      !analysis_.on_nlj_inner_side[node_id]) {
    return std::clamp(static_cast<double>(prof.logical_read_count) /
                          static_cast<double>(prof.total_pages),
                      0.0, 1.0);
  }
  const double k = K(snapshot, node_id);
  const double n = std::max(1.0, n_hat[node_id]);

  // §4.5 two-phase model for blocking operators (Figure 10): progress over
  // input + output tuples. The "input" of a hash join's blocking phase is
  // its build child; for sorts/aggregates/spools it is the only child.
  if (options_.two_phase_blocking && IsBlockingForProgress(node.type)) {
    const PlanNode* input_child = node.child(0);
    const double k_in = K(snapshot, input_child->id);
    const double n_in = std::max(1.0, n_hat[input_child->id]);
    double k_total = k_in + k;
    double n_total = n_in + n;
    if (node.type == OpType::kHashJoin) {
      // The probe stream is pipelined; include it in the output phase term
      // implicitly via the join's own K/N̂.
      k_total = k_in + k;
      n_total = n_in + n;
    }
    return std::clamp(k_total / std::max(1.0, n_total), 0.0, 1.0);
  }
  return std::clamp(k / n, 0.0, 1.0);
}

double ProgressEstimator::OwnCostMs(const PlanNode& node,
                                    const std::vector<double>& n_hat) const {
  // Per-node cost re-evaluated at the refined cardinalities with the same
  // constants the executor charges and the optimizer predicts. Within an
  // operator, CPU and I/O are assumed to overlap: only their maximum
  // contributes (§4.6). Blocking input phases are NOT part of this term —
  // they weigh the blocked child's pipeline (BoundaryCostMs).
  const double n_out = std::max(0.0, n_hat[node.id]);
  const double n_in =
      node.children.empty() ? 0.0 : std::max(0.0, n_hat[node.child(0)->id]);
  double cpu = 0;
  double io = 0;
  switch (node.type) {
    // Scans read the whole object regardless of how many rows survive
    // their pushed predicates: cost does not scale with output. The terms
    // are catalog constants, hoisted into the analysis when incremental.
    case OpType::kTableScan:
    case OpType::kClusteredIndexScan:
    case OpType::kIndexScan:
    case OpType::kColumnstoreScan: {
      if (options_.incremental && analysis_.has_catalog_statics) {
        const NodeStatics& s = analysis_.node_statics[node.id];
        io = s.scan_io_ms;
        cpu = s.scan_cpu_ms;
        break;
      }
      if (node.type == OpType::kColumnstoreScan) {
        const ColumnstoreIndex* csi = catalog_->GetColumnstore(node.table_name);
        const Table* t = catalog_->GetTable(node.table_name);
        if (csi != nullptr && t != nullptr) {
          io = static_cast<double>(csi->num_segments()) * cost::kIoSegmentMs;
          cpu = static_cast<double>(t->num_rows()) * cost::kCpuBatchRowMs;
        }
      } else {
        const Table* t = catalog_->GetTable(node.table_name);
        if (t != nullptr) {
          io = static_cast<double>(t->num_pages()) * cost::kIoSequentialPageMs;
          cpu = static_cast<double>(t->num_rows()) * cost::kCpuScanRowMs;
        }
      }
      break;
    }
    // Seeks and lookups scale with the rows they fetch.
    case OpType::kClusteredIndexSeek:
    case OpType::kIndexSeek:
    case OpType::kRidLookup:
      io = std::max(1.0, n_out / static_cast<double>(kRowsPerPage)) *
           cost::kIoRandomPageMs;
      cpu = n_out * cost::kCpuScanRowMs;
      break;
    case OpType::kConstantScan:
      cpu = n_out * cost::kCpuRowPassMs;
      break;
    case OpType::kFilter:
      cpu = n_in * cost::kCpuFilterRowMs;
      break;
    case OpType::kComputeScalar:
      cpu = n_in * cost::kCpuComputeRowMs *
            std::max<size_t>(1, node.projections.size());
      break;
    case OpType::kTop:
    case OpType::kSegment:
    case OpType::kConcatenation:
    case OpType::kBitmapCreate:
      cpu = n_out * cost::kCpuRowPassMs;
      break;
    case OpType::kSort:
    case OpType::kDistinctSort:
    case OpType::kTopNSort:
      cpu = n_out * cost::kCpuRowPassMs;
      break;
    case OpType::kHashAggregate:
      cpu = n_out * cost::kCpuAggOutputRowMs;
      break;
    case OpType::kStreamAggregate:
      cpu = n_in * cost::kCpuStreamAggRowMs;
      break;
    case OpType::kHashJoin: {
      // Probe + output run with the join's own pipeline; the build phase
      // is the boundary term.
      const double n_probe = std::max(0.0, n_hat[node.child(1)->id]);
      cpu = (n_probe + n_out) * cost::kCpuHashProbeRowMs;
      break;
    }
    case OpType::kMergeJoin: {
      const double n_inner = std::max(0.0, n_hat[node.child(1)->id]);
      cpu = (n_in + n_inner + n_out) * cost::kCpuMergeRowMs;
      break;
    }
    case OpType::kNestedLoopJoin:
      cpu = (n_in + n_out) * cost::kCpuNljRowMs;
      break;
    case OpType::kEagerSpool:
      cpu = n_out * cost::kCpuSpoolReadRowMs;
      break;
    case OpType::kLazySpool:
      cpu = n_out * cost::kCpuSpoolReadRowMs +
            n_in * cost::kCpuSpoolWriteRowMs;
      break;
    case OpType::kGatherStreams:
    case OpType::kRepartitionStreams:
    case OpType::kDistributeStreams:
      cpu = n_out *
            (cost::kCpuExchangeBufferRowMs + cost::kCpuExchangeRowMs);
      break;
    case OpType::kNumOpTypes:
      break;
  }
  return std::max(cpu, io);
}

double ProgressEstimator::BoundaryCostMs(
    const PlanNode& node, const std::vector<double>& n_hat) const {
  // A blocking operator's INPUT phase executes while its (blocked) child
  // pipeline runs (§4.5), so this share weighs the child pipeline.
  const double n_in =
      node.children.empty() ? 0.0 : std::max(0.0, n_hat[node.child(0)->id]);
  switch (node.type) {
    case OpType::kSort:
    case OpType::kDistinctSort:
    case OpType::kTopNSort:
      return n_in * (cost::kCpuSortInputRowMs +
                     std::log2(std::max(2.0, n_in)) * cost::kCpuSortRowMs);
    case OpType::kHashAggregate:
      return n_in * cost::kCpuAggInputRowMs;
    case OpType::kHashJoin:
      return n_in * cost::kCpuHashBuildRowMs;
    case OpType::kEagerSpool:
      return n_in * cost::kCpuSpoolWriteRowMs;
    default:
      return 0.0;
  }
}

void ProgressEstimator::PipelineWeightsInto(const std::vector<double>& n_hat,
                                            Workspace* ws) const {
  // Weight terms are hoisted per pipeline (analysis_.weight_contribs), so
  // each pipeline's weight is an independent sum — which is what makes the
  // frozen-weight cache sound: once every pipeline whose refined
  // cardinalities feed the sum has finished (and none sits under an
  // NL-inner side), every input to the sum is final and the cached value
  // is exact. Cost-feedback multipliers may change between calls, so the
  // cache is bypassed entirely while feedback is attached.
  for (const PipelineInfo& p : analysis_.pipelines) {
    bool can_freeze = options_.incremental && feedback_ == nullptr &&
                      analysis_.weight_freezable[p.id];
    if (can_freeze) {
      for (int d : analysis_.weight_deps[p.id]) {
        can_freeze = can_freeze && ws->pipeline_finished[d] != 0;
      }
    }
    if (can_freeze && ws->weight_frozen[p.id] != 0) {
      ws->weight[p.id] = ws->frozen_weight[p.id];
      ws->stats.weight_cache_hits++;
      continue;
    }
    double w = 0;
    for (const PlanAnalysis::WeightContrib& c :
         analysis_.weight_contribs[p.id]) {
      const PlanNode& node = plan_->node(c.node);
      const double multiplier =
          feedback_ != nullptr ? feedback_->Multiplier(node.type) : 1.0;
      w += (c.boundary ? BoundaryCostMs(node, n_hat)
                       : OwnCostMs(node, n_hat)) *
           multiplier;
    }
    w = std::max(w, 1e-6);
    ws->weight[p.id] = w;
    if (can_freeze) {
      ws->frozen_weight[p.id] = w;
      ws->weight_frozen[p.id] = 1;
    }
  }
}

ProgressReport ProgressEstimator::Estimate(
    const ProfileSnapshot& snapshot) const {
  // The internal workspace binds on the first call and is reused after, so
  // repeated one-shot calls allocate only for the returned report. This is
  // the single-owner consequence documented in the header: concurrent
  // Estimate() on a shared estimator would race on estimate_workspace_.
  ProgressReport report;
  EstimateInto(snapshot, &estimate_workspace_, &report);
  return report;
}

void ProgressEstimator::EstimateInto(const ProfileSnapshot& snapshot,
                                     Workspace* workspace,
                                     ProgressReport* report) const {
  Workspace* ws = workspace;
  PrepareWorkspace(ws);
  ws->stats.calls++;
  const int n = plan_->size();
  const int num_pipelines = analysis_.pipeline_count();

  ComputeFreezeMasks(snapshot, ws);

  const CardinalityBounds* bounds_ptr = nullptr;
  if (options_.bound_cardinality) {
    BoundsEngineStats bstats;
    ComputeBoundsPipelineInto(options_.bounds_engine, *plan_, *catalog_,
                              snapshot,
                              options_.incremental ? &analysis_ : nullptr,
                              analysis_,
                              options_.incremental ? &ws->node_frozen : nullptr,
                              &ws->bounds, &ws->lp_bounds, &bstats);
    ws->stats.bound_derivations += bstats.derivations;
    ws->stats.lp_tightenings += bstats.lp_tightenings;
    ws->stats.intersection_inversions += bstats.intersection_inversions;
    bounds_ptr = &ws->bounds;
  }

  // Seed N̂ with showplan estimates, then iterate: alphas need driver N̂,
  // refinement needs alphas. Two rounds reach a fixed point for the plan
  // shapes that matter (the §4.4(1) inner drivers need round-1 refinement).
  std::copy(analysis_.est_seed.begin(), analysis_.est_seed.end(),
            ws->n_hat.begin());
  PipelineAlphasInto(snapshot, ws->n_hat, false, ws);
  RefinePass(snapshot, ws->alpha, bounds_ptr, &ws->n_hat);
  PipelineAlphasInto(snapshot, ws->n_hat, true, ws);
  RefinePass(snapshot, ws->alpha, bounds_ptr, &ws->n_hat);
  PipelineAlphasInto(snapshot, ws->n_hat, true, ws);

  const std::vector<double>& n_hat = ws->n_hat;
  report->refined_rows = n_hat;          // capacity-reusing copies
  report->pipeline_progress = ws->alpha;
  // LQS_ALLOC_OK("first-call sizing; capacity-reusing no-op thereafter")
  report->operator_progress.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    report->operator_progress[i] = OperatorProgress(snapshot, i, n_hat);
  }

  // ---- Query-level progress ----
  if (!options_.use_weights) {
    double sum_k = 0;
    double sum_n = 0;
    if (options_.use_driver_nodes) {
      for (const PipelineInfo& p : analysis_.pipelines) {
        for (int d : p.driver_nodes) {
          double k = 0;
          double nn = 1;
          DriverContribution(snapshot, d, n_hat, &k, &nn);
          double weight = std::max(1.0, n_hat[d]);
          if (nn > 0) {
            sum_k += weight * (k / nn);
            sum_n += weight;
          }
        }
        if (options_.semi_blocking_adjust) {
          for (int d : p.inner_driver_nodes) {
            double weight = std::max(1.0, n_hat[d]);
            sum_k += weight *
                     std::clamp(K(snapshot, d) / std::max(1.0, n_hat[d]), 0.0,
                                1.0);
            sum_n += weight;
          }
        }
      }
    } else {
      for (int i = 0; i < n; ++i) {
        sum_k += std::min(K(snapshot, i), n_hat[i]);
        sum_n += n_hat[i];
      }
    }
    report->query_progress =
        sum_n > 0 ? std::clamp(sum_k / sum_n, 0.0, 1.0) : 0.0;
    // LQS_ALLOC_OK("first-call sizing; capacity-reusing no-op thereafter")
    report->pipeline_weight.assign(static_cast<size_t>(num_pipelines), 1.0);
    return;
  }

  // §4.6: weight each speed-independent pipeline by max(est CPU, est I/O),
  // re-evaluated at the refined cardinalities (the paper: "optimizer cost
  // estimates of I/O and CPU cost per tuple and refined N_i counts"), and
  // aggregate pipeline progress. Optionally restrict to the longest
  // (critical) path.
  PipelineWeightsInto(n_hat, ws);
  const std::vector<double>& weight = ws->weight;

  // LQS_ALLOC_OK("sized by PrepareWorkspace; assign reuses capacity")
  ws->on_path.assign(static_cast<size_t>(num_pipelines), 1);
  if (options_.critical_path_only) {
    // Longest root-to-leaf path in the pipeline tree by total weight.
    std::vector<double>& best = ws->cp_best;
    std::vector<int>& best_child = ws->cp_best_child;
    // Pipelines are created parent-before-child; iterate in reverse.
    for (int p = num_pipelines - 1; p >= 0; --p) {
      best[p] = weight[p];
      best_child[p] = -1;
      double best_sub = 0;
      for (int c : analysis_.pipelines[p].child_pipelines) {
        if (best[c] > best_sub) {
          best_sub = best[c];
          best_child[p] = c;
        }
      }
      best[p] += best_sub;
    }
    // LQS_ALLOC_OK("sized by PrepareWorkspace; assign reuses capacity")
    ws->on_path.assign(static_cast<size_t>(num_pipelines), 0);
    for (int p = 0; p >= 0; p = best_child[p]) ws->on_path[p] = 1;
  }

  double sum_wp = 0;
  double sum_w = 0;
  for (int p = 0; p < num_pipelines; ++p) {
    if (!ws->on_path[p]) continue;
    sum_wp += weight[p] * ws->alpha[p];
    sum_w += weight[p];
  }
  report->query_progress =
      sum_w > 0 ? std::clamp(sum_wp / sum_w, 0.0, 1.0) : 0.0;
  report->pipeline_weight = weight;
}

}  // namespace lqs
