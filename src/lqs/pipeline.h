#ifndef LQS_LQS_PIPELINE_H_
#define LQS_LQS_PIPELINE_H_

#include <vector>

#include "exec/plan.h"

namespace lqs {

/// One pipeline (maximal subtree of concurrently executing operators,
/// §3.1.1 / Figure 5).
struct PipelineInfo {
  int id = -1;
  /// Topmost node of the pipeline.
  int root_node = -1;
  /// All plan-node ids belonging to this pipeline.
  std::vector<int> nodes;
  /// Standard driver nodes: pipeline members with no same-pipeline children,
  /// excluding nodes on the inner side of a Nested Loops join (§3.1.1).
  std::vector<int> driver_nodes;
  /// Nested-loops inner-side sources, promoted to drivers when the §4.4(1)
  /// semi-blocking adjustment is enabled.
  std::vector<int> inner_driver_nodes;
  /// Pipelines directly below this one (across blocking boundaries); they
  /// complete before this pipeline's corresponding input is consumed.
  std::vector<int> child_pipelines;
};

/// Static plan decomposition shared by all estimator features.
struct PlanAnalysis {
  std::vector<PipelineInfo> pipelines;
  /// node id -> pipeline id.
  std::vector<int> pipeline_of_node;
  /// node id -> true when the path from the node down to its pipeline's
  /// driver (leaf) nodes passes through at least one semi-blocking operator
  /// (Exchange, buffered Nested Loops) — the §4.4(2) condition under which
  /// refinement scales by the immediate child's progress instead of the
  /// pipeline's driver progress.
  std::vector<bool> separated_by_semi_blocking;
  /// node id -> true when the node lies on the inner side of some Nested
  /// Loops join within its own pipeline.
  std::vector<bool> on_nlj_inner_side;
  /// node id -> id of the enclosing Nested Loops join when on its inner
  /// side, else -1 (innermost such join).
  std::vector<int> enclosing_nlj;

  int pipeline_count() const { return static_cast<int>(pipelines.size()); }
};

/// Decomposes the plan into pipelines and computes the per-node flags above.
///
/// Blocking boundaries (edges where a new pipeline starts below):
///  - the input edge of Sort / Top N Sort / Distinct Sort / Hash Aggregate /
///    Eager Spool,
///  - the build (first) input edge of a Hash Join.
/// All other edges — including both Nested Loops inputs, Merge Join inputs
/// and Exchange inputs — stay within the parent's pipeline.
PlanAnalysis AnalyzePlan(const Plan& plan);

/// True when the edge from `parent` to its `child_index`-th child is a
/// blocking boundary per the rules above.
bool IsBlockingEdge(const PlanNode& parent, size_t child_index);

}  // namespace lqs

#endif  // LQS_LQS_PIPELINE_H_
