#ifndef LQS_LQS_PIPELINE_H_
#define LQS_LQS_PIPELINE_H_

#include <limits>
#include <vector>

#include "exec/plan.h"
#include "storage/catalog.h"

namespace lqs {

/// One pipeline (maximal subtree of concurrently executing operators,
/// §3.1.1 / Figure 5).
struct PipelineInfo {
  int id = -1;
  /// Topmost node of the pipeline.
  int root_node = -1;
  /// All plan-node ids belonging to this pipeline.
  std::vector<int> nodes;
  /// Standard driver nodes: pipeline members with no same-pipeline children,
  /// excluding nodes on the inner side of a Nested Loops join (§3.1.1).
  std::vector<int> driver_nodes;
  /// Nested-loops inner-side sources, promoted to drivers when the §4.4(1)
  /// semi-blocking adjustment is enabled.
  std::vector<int> inner_driver_nodes;
  /// Pipelines directly below this one (across blocking boundaries); they
  /// complete before this pipeline's corresponding input is consumed.
  std::vector<int> child_pipelines;
};

/// Per-node catalog constants hoisted out of the per-snapshot estimation
/// path. Filled only by the catalog-aware AnalyzePlan overload; everything
/// here is a pure function of (plan node, catalog), so computing it once at
/// estimator construction and never again is exact, not approximate.
struct NodeStatics {
  /// Catalog row count of the node's table; < 0 when the node reads no
  /// table or the catalog has no entry for it.
  double table_rows = -1.0;
  /// Same quantity in the convention the Appendix A bound formulas use:
  /// +infinity when unknown (an unknown table bounds nothing).
  double bound_table_rows = std::numeric_limits<double>::infinity();
  double scan_cpu_ms = 0.0;  ///< §4.6 static CPU term of a scan access path
  double scan_io_ms = 0.0;   ///< §4.6 static I/O term of a scan access path
  /// True for an uncorrelated full scan (scan access path, no pushed
  /// predicate, no bitmap, not on an NL-inner side): its total output per
  /// execution is exactly the table size.
  bool uncorrelated_full_scan = false;

  // --- LpBound degree-norm statics (join nodes only) ---
  // Hoisted by FillDegreeNormStatics so the LpBound bounding engine's
  // per-snapshot path reads two doubles per join side instead of chasing
  // schemas, provenance and string-keyed catalog maps (LQS_NOALLOC /
  // LQS_DETERMINISTIC discipline).
  /// Per input side (0 = outer/build, 1 = inner/probe): true when at least
  /// one equijoin key column on that side resolves through a
  /// multiplicity-non-increasing operator path to a base-table column with
  /// exact degree norms, so the ℓ∞/ℓ2 caps below soundly bound the side's
  /// join-key degree sequence.
  bool lp_side_valid[2] = {false, false};
  /// min over the side's resolved key columns of the base column's exact
  /// max frequency (ℓ∞ of the degree sequence). Using the min is sound for
  /// composite keys: a composite key's degree never exceeds any single
  /// component column's degree.
  double lp_linf[2] = {std::numeric_limits<double>::infinity(),
                       std::numeric_limits<double>::infinity()};
  /// Same, for the ℓ2 norms (the Cauchy–Schwarz product bound
  /// ℓ2(outer)·ℓ2(inner) on the number of matching pairs).
  double lp_l2[2] = {std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::infinity()};
};

/// Static plan decomposition shared by all estimator features.
struct PlanAnalysis {
  std::vector<PipelineInfo> pipelines;
  /// node id -> pipeline id.
  std::vector<int> pipeline_of_node;
  /// node id -> true when the path from the node down to its pipeline's
  /// driver (leaf) nodes passes through at least one semi-blocking operator
  /// (Exchange, buffered Nested Loops) — the §4.4(2) condition under which
  /// refinement scales by the immediate child's progress instead of the
  /// pipeline's driver progress.
  std::vector<bool> separated_by_semi_blocking;
  /// node id -> true when the node lies on the inner side of some Nested
  /// Loops join within its own pipeline.
  std::vector<bool> on_nlj_inner_side;
  /// node id -> id of the enclosing Nested Loops join when on its inner
  /// side, else -1 (innermost such join).
  std::vector<int> enclosing_nlj;

  // --- Hoisted traversal orders and freeze topology (all plan-static) ---
  /// Plan node ids, children before parents — the iteration order of the
  /// refinement pass, hoisted so the hot path never re-walks child pointers.
  std::vector<int> postorder;
  /// node id -> true when ANY edge on the node's path from the plan root is
  /// the inner input of a Nested Loops join — including inner sides entered
  /// in an ancestor pipeline. Such nodes can be re-bound (re-executed), so
  /// their DMV counters are not final even after `finished`; every
  /// incremental freeze is gated on this being false. Note the difference
  /// from on_nlj_inner_side, which only tracks inner sides within the
  /// node's own pipeline.
  std::vector<bool> under_nlj_inner;
  /// pipeline id -> true when no member node is under_nlj_inner: once every
  /// member reports `finished`, all counters feeding the pipeline's alpha,
  /// refined rows and bounds are final, so frozen values stay exact.
  std::vector<bool> pipeline_freezable;

  // --- Hoisted §4.6 weight attribution (plan-static) ---
  /// One additive term of a pipeline's weight. Own terms contribute the
  /// operator's max(CPU, I/O); boundary terms contribute a blocking
  /// operator's input-phase cost, attributed to the pipeline it temporally
  /// executes with (its blocked child's pipeline, §4.5).
  struct WeightContrib {
    int node = -1;
    bool boundary = false;
  };
  /// pipeline id -> its weight terms (own nodes first, then boundary terms
  /// scattered from blocking operators in parent pipelines).
  std::vector<std::vector<WeightContrib>> weight_contribs;
  /// pipeline id -> sorted unique pipeline ids whose refined cardinalities
  /// feed its weight (itself included).
  std::vector<std::vector<int>> weight_deps;
  /// pipeline id -> every pipeline in weight_deps is freezable, so the
  /// weight is a constant once they have all finished.
  std::vector<bool> weight_freezable;

  /// max(0, est_rows) per node: the N̂ seed vector, hoisted so the per-call
  /// seeding is one flat copy instead of a pointer-chasing loop.
  std::vector<double> est_seed;

  /// Catalog statics per node; filled (and flagged) only by the
  /// catalog-aware AnalyzePlan overload.
  std::vector<NodeStatics> node_statics;
  bool has_catalog_statics = false;
  /// True once the LpBound join-side degree-norm statics in node_statics
  /// have been filled (catalog-aware AnalyzePlan; per-side validity is in
  /// NodeStatics::lp_side_valid).
  bool has_degree_norms = false;

  int pipeline_count() const { return static_cast<int>(pipelines.size()); }
};

/// Decomposes the plan into pipelines and computes the per-node flags above.
///
/// Blocking boundaries (edges where a new pipeline starts below):
///  - the input edge of Sort / Top N Sort / Distinct Sort / Hash Aggregate /
///    Eager Spool,
///  - the build (first) input edge of a Hash Join.
/// All other edges — including both Nested Loops inputs, Merge Join inputs
/// and Exchange inputs — stay within the parent's pipeline.
PlanAnalysis AnalyzePlan(const Plan& plan);

/// Catalog-aware overload: additionally hoists the per-node catalog
/// constants (table sizes, scan cost terms) into node_statics, so the
/// estimator's per-snapshot path never touches the catalog's string-keyed
/// maps. `catalog` may be null, in which case this is AnalyzePlan(plan).
PlanAnalysis AnalyzePlan(const Plan& plan, const Catalog* catalog);

/// True when the edge from `parent` to its `child_index`-th child is a
/// blocking boundary per the rules above.
bool IsBlockingEdge(const PlanNode& parent, size_t child_index);

}  // namespace lqs

#endif  // LQS_LQS_PIPELINE_H_
