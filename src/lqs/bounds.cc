#include "lqs/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lqs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct BoundsState {
  const Plan* plan;
  const Catalog* catalog;
  const ProfileSnapshot* snapshot;
  /// Hoisted catalog statics (may be null: fall back to catalog lookups).
  const PlanAnalysis* analysis;
  /// Per-node skip mask (may be null); see ComputeBoundsInto.
  const std::vector<uint8_t>* frozen;
  CardinalityBounds* out;
  uint64_t derivations = 0;

  double K(int id) const {
    return static_cast<double>(snapshot->operators[id].row_count);
  }
  const OperatorProfile& Prof(int id) const {
    return snapshot->operators[id];
  }

  double TableRows(const PlanNode& node) const {
    if (analysis != nullptr && analysis->has_catalog_statics) {
      return analysis->node_statics[node.id].bound_table_rows;
    }
    const Table* t = catalog->GetTable(node.table_name);
    return t == nullptr ? kInf : static_cast<double>(t->num_rows());
  }

  /// `inner_multiplier`: upper bound on how many times this subtree will
  /// execute (UB of the enclosing NL join's outer side); 1 at top level.
  /// `may_stop_early`: an ancestor (Top, Merge Join alignment) may abandon
  /// this subtree before it reaches end-of-stream, so "exact output" lower
  /// bounds (e.g. Table Scan = TableSize) do not apply.
  void Compute(const PlanNode& node, double inner_multiplier,
               bool may_stop_early) {
    // Children first. For joins, the outer child's bounds feed both the
    // join's own bound and the inner child's execution multiplier.
    for (size_t i = 0; i < node.children.size(); ++i) {
      bool child_early = may_stop_early;
      if (node.type == OpType::kTop || node.type == OpType::kMergeJoin) {
        // Top abandons its child at N rows; a merge join may exhaust one
        // input and abandon the other mid-stream.
        child_early = true;
      }
      if (node.type == OpType::kNestedLoopJoin && i == 1) {
        const PlanNode& outer = *node.children[0];
        double outer_ub = out->upper[outer.id];
        // Semi/anti kinds abandon the inner stream after the first match.
        bool inner_early = child_early ||
                           node.join_kind == JoinKind::kLeftSemi ||
                           node.join_kind == JoinKind::kLeftAnti;
        Compute(*node.children[i],
                std::max(1.0, outer_ub) *
                    (inner_multiplier == kInf ? 1.0 : inner_multiplier),
                inner_early);
      } else {
        Compute(*node.children[i], inner_multiplier, child_early);
      }
    }

    const double k = K(node.id);
    if (frozen != nullptr && (*frozen)[node.id] != 0) {
      // Finished in this snapshot and not under any NL-inner edge: the
      // derivation below would end at lower = upper = K_i regardless (the
      // end-of-stream clamp always fires, since inner_multiplier is 1 on
      // every such path). Reuse the frozen value instead of re-deriving
      // the coefficients on every later snapshot.
      out->lower[node.id] = k;
      out->upper[node.id] = k;
      return;
    }
    ++derivations;
    double lb = k;
    double ub = kInf;
    auto child_ub = [&](size_t i) { return out->upper[node.child(i)->id]; };
    auto child_k = [&](size_t i) { return K(node.child(i)->id); };

    switch (node.type) {
      // --- Access paths ---
      case OpType::kTableScan:
      case OpType::kClusteredIndexScan:
      case OpType::kColumnstoreScan: {
        const double rows = TableRows(node);
        if (node.pushed_predicate == nullptr && node.bitmap_source_id < 0) {
          // Appendix A: a full scan outputs exactly the table size (per
          // execution); across unknown executions only K is a safe LB.
          lb = inner_multiplier <= 1.0 ? rows : k;
          ub = rows * inner_multiplier;
        } else {
          // With storage-engine filters the output is unknown, but it cannot
          // exceed the rows not yet examined plus those already returned.
          const OperatorProfile& p = Prof(node.id);
          // Rows FULLY examined: exclude the page/segment currently in
          // flight, whose rows may still be emitted.
          double done_pages =
              p.logical_read_count > 0
                  ? static_cast<double>(p.logical_read_count - 1)
                  : 0.0;
          double examined = std::min(
              rows, done_pages * static_cast<double>(kRowsPerPage));
          if (node.type == OpType::kColumnstoreScan &&
              p.segment_total_count > 0) {
            double done_segments =
                p.segment_read_count > 0
                    ? static_cast<double>(p.segment_read_count - 1)
                    : 0.0;
            examined = rows * done_segments /
                       static_cast<double>(p.segment_total_count);
          }
          ub = k + (rows - examined) * inner_multiplier;
          ub = std::max(ub, k);
        }
        break;
      }
      case OpType::kClusteredIndexSeek:
      case OpType::kIndexSeek:
      case OpType::kIndexScan: {
        const double rows = TableRows(node);
        lb = k;
        ub = rows * inner_multiplier;  // "TableSize, or TableSize * UB_{i-1}"
        break;
      }
      case OpType::kRidLookup:
        lb = k;
        ub = 1.0 * inner_multiplier;  // one row per execution
        break;
      case OpType::kConstantScan:
        lb = static_cast<double>(node.constant_rows.size());
        ub = lb * std::max(1.0, inner_multiplier);
        break;

      // --- Joins (Appendix A): LB = K_i;
      //     UB = (UB_stream - K_stream + 1) * UB_other + K_i, where the
      //     "stream" is the input whose future rows drive future output:
      //     the probe side for Hash Match, the outer side for Nested
      //     Loops / Merge Join. The +1 covers the stream row currently
      //     being processed.
      case OpType::kHashJoin:
      case OpType::kMergeJoin:
      case OpType::kNestedLoopJoin: {
        lb = k;
        const size_t stream = node.type == OpType::kHashJoin ? 1 : 0;
        const size_t other = 1 - stream;
        double remaining =
            std::max(0.0, child_ub(stream) - child_k(stream)) + 1.0;
        ub = remaining * std::max(1.0, child_ub(other)) + k;
        // Kinds that additionally emit preserved/unmatched build rows after
        // the probe completes.
        if (node.type == OpType::kHashJoin &&
            (node.join_kind == JoinKind::kLeftOuter ||
             node.join_kind == JoinKind::kFullOuter ||
             node.join_kind == JoinKind::kLeftSemi ||
             node.join_kind == JoinKind::kLeftAnti)) {
          ub += child_ub(0);
        }
        // Semi/anti variants cannot exceed the preserved side's UB either.
        switch (node.join_kind) {
          case JoinKind::kLeftSemi:
          case JoinKind::kLeftAnti:
            ub = std::min(ub, child_ub(0));
            break;
          case JoinKind::kRightSemi:
            ub = std::min(ub, child_ub(1));
            break;
          default:
            break;
        }
        break;
      }

      case OpType::kConcatenation: {
        lb = 0;
        ub = 0;
        for (size_t i = 0; i < node.children.size(); ++i) {
          lb += child_k(i);
          ub += child_ub(i);
        }
        lb = std::max(lb, k);
        break;
      }

      // --- Filters / segment:
      //     LB = K_i; UB = (UB_{i-1} - K_{i-1}) + K_i ---
      case OpType::kFilter:
      case OpType::kSegment:
        lb = k;
        ub = std::max(0.0, child_ub(0) - child_k(0)) + k;
        break;

      // Distinct Sort is listed with the filter formula in Table 1, but it
      // BLOCKS: consumed rows buffer invisibly through the sort phase and
      // only then deduplicate, so (UB_{i-1} - K_{i-1}) + K_i collapses to
      // K_i the moment the input is exhausted — unsound until the sort
      // starts emitting. Like the blocking aggregate below, only the input
      // cardinality bounds the output.
      case OpType::kDistinctSort:
        lb = k;
        ub = child_ub(0);
        break;

      // --- Cardinality-preserving: LB = K_{i-1}; UB = UB_{i-1} ---
      // Exchanges are listed with the filter formula in the paper's Table 1,
      // but they BUFFER rows (§4.4): consumed-but-buffered input will still
      // be emitted, so the sound bounds are those of a cardinality-
      // preserving operator.
      case OpType::kSort:
      case OpType::kComputeScalar:
      case OpType::kBitmapCreate:
      case OpType::kGatherStreams:
      case OpType::kRepartitionStreams:
      case OpType::kDistributeStreams:
        lb = std::max(k, child_k(0));
        ub = child_ub(0);
        break;

      case OpType::kTop:
      case OpType::kTopNSort: {
        const double n =
            node.top_n >= 0 ? static_cast<double>(node.top_n) : kInf;
        lb = std::min(n, std::max(k, child_k(0)));
        ub = std::min(n * std::max(1.0, inner_multiplier), child_ub(0));
        break;
      }

      // --- Aggregates: LB = max(1, K_i); UB = remaining input + K_i ---
      case OpType::kHashAggregate:
      case OpType::kStreamAggregate:
        if (node.group_columns.empty()) {
          // Scalar aggregate: exactly one row per execution.
          lb = std::max(k, 1.0);
          ub = std::max(1.0, inner_multiplier);
        } else if (node.type == OpType::kStreamAggregate) {
          lb = k;  // a group-by over empty input yields zero rows
          // Pipelined aggregate: every consumed input row belongs to an
          // emitted group or the current one; each remaining input row can
          // open at most one new group.
          ub = std::max(0.0, child_ub(0) - child_k(0)) + std::max(k, 1.0) +
               1.0;
          ub = std::min(ub, child_ub(0));
        } else {
          // Blocking aggregate: groups accumulate invisibly during the
          // input phase, so only the input cardinality bounds the output.
          lb = k;  // a group-by over empty input yields zero rows
          ub = child_ub(0);
        }
        break;

      // --- Spools: unbounded above across rebinds ---
      case OpType::kEagerSpool:
      case OpType::kLazySpool:
        lb = k;
        ub = inner_multiplier > 1.0 || inner_multiplier == kInf
                 ? kInf
                 : child_ub(0);
        break;

      case OpType::kNumOpTypes:
        break;
    }

    // Under a limiting ancestor the subtree may be abandoned before
    // end-of-stream: exact-output lower bounds do not hold, only K does.
    if (may_stop_early) lb = k;

    // An operator that has reached end-of-stream (and cannot be re-bound
    // again once the query's remaining executions are done) has exact
    // cardinality. Only safe outside NL inners, where no further rebinds
    // can occur.
    if (Prof(node.id).finished && inner_multiplier <= 1.0) {
      lb = k;
      ub = k;
    }

    if (ub < lb) ub = lb;
    out->lower[node.id] = lb;
    out->upper[node.id] = ub;
  }
};

/// 0 * inf would be NaN under IEEE; in a cardinality product a zero factor
/// means an empty side, so the product is soundly zero.
double SafeMul(double a, double b) {
  if (a == 0.0 || b == 0.0) return 0.0;  // lint:allow-float-eq
  return a * b;
}

/// The LpBound engine (see ComputeLpBoundsInto in bounds.h). Mirrors the
/// BoundsState recursion shape — children first, NL-inner children pick up
/// the outer side's upper bound as a rebind multiplier — but derives only
/// upper bounds, from the degree-norm caps hoisted into the analysis.
struct LpState {
  const Plan* plan;
  const ProfileSnapshot* snapshot;
  const PlanAnalysis* analysis;
  const std::vector<uint8_t>* frozen;
  CardinalityBounds* out;

  double K(int id) const {
    return static_cast<double>(snapshot->operators[id].row_count);
  }

  void Compute(const PlanNode& node, double inner_multiplier) {
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (node.type == OpType::kNestedLoopJoin && i == 1) {
        const double outer_ub = out->upper[node.child(0)->id];
        Compute(*node.children[i],
                std::max(1.0, outer_ub) *
                    (inner_multiplier == kInf ? 1.0 : inner_multiplier));
      } else {
        Compute(*node.children[i], inner_multiplier);
      }
    }

    const double k = K(node.id);
    // The observed count is the engine's only lower bound: always sound,
    // and it guarantees intersection with Appendix A (whose lower bound is
    // >= K everywhere) can never invert on the lower side.
    out->lower[node.id] = k;
    if (frozen != nullptr && (*frozen)[node.id] != 0) {
      out->upper[node.id] = k;
      return;
    }
    double ub = kInf;
    if (inner_multiplier <= 1.0) {
      // The norms cap a single execution; a subtree that may rebind is
      // declined and left to Appendix A via the intersection.
      ub = SingleExecutionUpper(node);
    }
    if (snapshot->operators[node.id].finished && inner_multiplier <= 1.0) {
      ub = k;  // end-of-stream outside NL inners: exact
    }
    out->upper[node.id] = std::max(ub, k);
  }

  double SingleExecutionUpper(const PlanNode& node) const {
    auto child_ub = [&](size_t i) { return out->upper[node.child(i)->id]; };
    switch (node.type) {
      // --- Access paths: at most the table (ℓ1 of any degree sequence). ---
      case OpType::kTableScan:
      case OpType::kClusteredIndexScan:
      case OpType::kClusteredIndexSeek:
      case OpType::kIndexScan:
      case OpType::kIndexSeek:
      case OpType::kColumnstoreScan:
        return analysis->node_statics[node.id].bound_table_rows;
      case OpType::kRidLookup:
        return 1.0;
      case OpType::kConstantScan:
        return static_cast<double>(node.constant_rows.size());

      case OpType::kHashJoin:
      case OpType::kMergeJoin:
      case OpType::kNestedLoopJoin: {
        const double ub0 = child_ub(0);
        const double ub1 = child_ub(1);
        const NodeStatics& s = analysis->node_statics[node.id];
        // Matching-pair caps: cross product, one ℓ∞ cap per side whose
        // key degrees resolved to exact base-column norms, and the
        // Cauchy–Schwarz ℓ2 product when both sides resolved.
        double pairs = SafeMul(ub0, ub1);
        if (s.lp_side_valid[0]) pairs = std::min(pairs, SafeMul(ub1, s.lp_linf[0]));
        if (s.lp_side_valid[1]) pairs = std::min(pairs, SafeMul(ub0, s.lp_linf[1]));
        if (s.lp_side_valid[0] && s.lp_side_valid[1]) {
          pairs = std::min(pairs, SafeMul(s.lp_l2[0], s.lp_l2[1]));
        }
        // Output per join kind: matched pairs, plus preserved rows for
        // outer kinds; semi/anti kinds emit preserved-side rows at most
        // once (and an anti join's output is not bounded by pairs at all).
        switch (node.join_kind) {
          case JoinKind::kInner:
            return pairs;
          case JoinKind::kLeftOuter:
            return pairs + ub0;
          case JoinKind::kRightOuter:
            return pairs + ub1;
          case JoinKind::kFullOuter:
            return pairs + ub0 + ub1;
          case JoinKind::kLeftSemi:
            return std::min(pairs, ub0);
          case JoinKind::kLeftAnti:
            return ub0;
          case JoinKind::kRightSemi:
            return std::min(pairs, ub1);
        }
        return kInf;
      }

      case OpType::kConcatenation: {
        double sum = 0;
        for (size_t i = 0; i < node.children.size(); ++i) sum += child_ub(i);
        return sum;
      }

      // --- Multiplicity-non-increasing single-input operators. ---
      case OpType::kFilter:
      case OpType::kSegment:
      case OpType::kDistinctSort:
      case OpType::kSort:
      case OpType::kComputeScalar:
      case OpType::kBitmapCreate:
      case OpType::kGatherStreams:
      case OpType::kRepartitionStreams:
      case OpType::kDistributeStreams:
      case OpType::kEagerSpool:
      case OpType::kLazySpool:
        return child_ub(0);

      case OpType::kTop:
      case OpType::kTopNSort: {
        const double n =
            node.top_n >= 0 ? static_cast<double>(node.top_n) : kInf;
        return std::min(n, child_ub(0));
      }

      case OpType::kHashAggregate:
      case OpType::kStreamAggregate:
        if (node.group_columns.empty()) return 1.0;  // scalar aggregate
        return child_ub(0);  // at most one row per input row

      case OpType::kNumOpTypes:
        break;
    }
    return kInf;
  }
};

}  // namespace

double CardinalityBounds::Clamp(int node_id, double estimate) const {
  const double lo = lower[node_id];
  const double hi = upper[node_id];
  // std::clamp propagates NaN estimates and is undefined for an inverted
  // range; both resolve deterministically to the lower bound — the observed
  // count, the one value a malformed input cannot poison.
  if (!(lo <= hi)) return lo;
  if (std::isnan(estimate)) return lo;
  return std::clamp(estimate, lo, hi);
}

CardinalityBounds ComputeBounds(const Plan& plan, const Catalog& catalog,
                                const ProfileSnapshot& snapshot) {
  CardinalityBounds bounds;
  ComputeBoundsInto(plan, catalog, snapshot, nullptr, nullptr, &bounds,
                    nullptr);
  return bounds;
}

void ComputeBoundsInto(const Plan& plan, const Catalog& catalog,
                       const ProfileSnapshot& snapshot,
                       const PlanAnalysis* analysis,
                       const std::vector<uint8_t>* frozen,
                       CardinalityBounds* out, uint64_t* derivations) {
  // LQS_ALLOC_OK("sized to the plan on first use; capacity-reusing after")
  out->lower.assign(plan.size(), 0.0);
  // LQS_ALLOC_OK("sized to the plan on first use; capacity-reusing after")
  out->upper.assign(plan.size(), kInf);
  BoundsState st{&plan, &catalog, &snapshot, analysis, frozen, out};
  st.Compute(*plan.root, 1.0, false);
  if (derivations != nullptr) *derivations += st.derivations;
}

const char* BoundsEngineName(BoundsEngineKind kind) {
  switch (kind) {
    case BoundsEngineKind::kAppendixA:
      return "appendix_a";
    case BoundsEngineKind::kLpBound:
      return "lp_bound";
    case BoundsEngineKind::kIntersect:
      return "intersect";
  }
  return "unknown";
}

void ComputeLpBoundsInto(const Plan& plan, const ProfileSnapshot& snapshot,
                         const PlanAnalysis& analysis,
                         const std::vector<uint8_t>* frozen,
                         CardinalityBounds* out) {
  // LQS_ALLOC_OK("sized to the plan on first use; capacity-reusing after")
  out->lower.assign(plan.size(), 0.0);
  // LQS_ALLOC_OK("sized to the plan on first use; capacity-reusing after")
  out->upper.assign(plan.size(), kInf);
  LpState st{&plan, &snapshot, &analysis, frozen, out};
  st.Compute(*plan.root, 1.0);
}

void ComputeBoundsPipelineInto(BoundsEngineKind kind, const Plan& plan,
                               const Catalog& catalog,
                               const ProfileSnapshot& snapshot,
                               const PlanAnalysis* hoisted,
                               const PlanAnalysis& analysis,
                               const std::vector<uint8_t>* frozen,
                               CardinalityBounds* out,
                               CardinalityBounds* scratch,
                               BoundsEngineStats* stats) {
  switch (kind) {
    case BoundsEngineKind::kAppendixA:
      ComputeBoundsInto(plan, catalog, snapshot, hoisted, frozen, out,
                        stats != nullptr ? &stats->derivations : nullptr);
      return;
    case BoundsEngineKind::kLpBound:
      ComputeLpBoundsInto(plan, snapshot, analysis, frozen, out);
      return;
    case BoundsEngineKind::kIntersect:
      break;
  }
  ComputeBoundsInto(plan, catalog, snapshot, hoisted, frozen, out,
                    stats != nullptr ? &stats->derivations : nullptr);
  ComputeLpBoundsInto(plan, snapshot, analysis, frozen, scratch);
  for (int id = 0; id < plan.size(); ++id) {
    const double a_lo = out->lower[id];
    const double a_up = out->upper[id];
    const double lo = std::max(a_lo, scratch->lower[id]);
    const double up = std::min(a_up, scratch->upper[id]);
    if (std::isnan(lo) || std::isnan(up) || lo > up) {
      // One engine produced an interval disjoint from the other's — an
      // unsoundness symptom. Resolve deterministically to the Appendix-A
      // interval (already in `out`) and surface the event.
      if (stats != nullptr) ++stats->intersection_inversions;
      continue;
    }
    if (stats != nullptr && up < a_up) ++stats->lp_tightenings;
    out->lower[id] = lo;
    out->upper[id] = up;
  }
}

}  // namespace lqs
