#ifndef LQS_LQS_ESTIMATOR_H_
#define LQS_LQS_ESTIMATOR_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/deterministic.h"
#include "common/noalloc.h"
#include "dmv/query_profile.h"
#include "exec/plan.h"
#include "lqs/bounds.h"
#include "lqs/feedback.h"
#include "lqs/pipeline.h"
#include "storage/catalog.h"

namespace lqs {

/// Feature switches of the progress estimator. Each flag corresponds to one
/// of the paper's techniques; the presets below reproduce the configurations
/// compared in §5. Everything runs client-side off DMV snapshots plus the
/// showplan annotations, exactly like the SSMS module (§2.2).
struct EstimatorOptions {
  /// Pipeline/query progress from driver nodes (DNE [7]) instead of the
  /// Total-GetNext model over all nodes (TGN, Equation 2 with w_i = 1).
  bool use_driver_nodes = true;
  /// §4.1 online cardinality refinement (scale K_i by inverse driver
  /// progress).
  bool refine_cardinality = true;
  /// §4.2 / Appendix A worst-case bounding of the N_i.
  bool bound_cardinality = true;
  /// §4.4 semi-blocking adjustments: NL inner sides become drivers,
  /// refinement scales by the immediate child across semi-blocking
  /// operators, inner-side scale-up uses actual executions.
  bool semi_blocking_adjust = true;
  /// §4.5 two-phase (input+output) progress model for blocking operators.
  bool two_phase_blocking = true;
  /// §4.6 pipeline weights from max(est CPU, est I/O).
  bool use_weights = true;
  /// §4.6 restrict the weighted aggregate to the longest (critical) path of
  /// pipelines. Off by default: our substrate executes pipelines serially,
  /// so total time is the sum over all pipelines (see DESIGN.md §5).
  bool critical_path_only = false;
  /// §4.3 I/O-fraction progress for scans with storage-engine predicates.
  bool storage_predicate_io = true;
  /// §4.7 segment-fraction progress for batch-mode columnstore scans.
  bool batch_mode_segments = true;
  /// Prior-work alternative [22]: linearly interpolate between the
  /// optimizer estimate and the scaled-up estimate instead of replacing.
  bool interpolate_refinement = false;
  /// §7(a) future-work extension: propagate refined cardinalities across
  /// pipeline boundaries — a not-yet-started operator's estimate is scaled
  /// by how far its children's refined estimates moved from the showplan
  /// estimates. The paper's shipping system propagates only worst-case
  /// bounds; off by default to match it.
  bool propagate_refinement = false;
  /// Engine mode, not an estimation technique: when false, disables the
  /// workspace engine's short-circuits (finished-operator bound freezing,
  /// finished-pipeline alpha/weight freezing) and the hoisted catalog
  /// statics, forcing the full stateless recomputation the paper's §2.2
  /// client performs on every poll. Reports are bit-identical either way
  /// (enforced by tests/estimator_workspace_test.cc); the flag exists so
  /// bench/estimator_throughput can measure both cost profiles in one run.
  bool incremental = true;
  /// Monitor-layer mode switch, not an estimation technique: a session
  /// registered with this set runs the robust EnsembleEstimator
  /// (src/ensemble/) over the default candidate set — all four presets
  /// below plus parameter variants — instead of one estimator built from
  /// the flags above. Only `incremental` is forwarded to the candidates;
  /// the other flags are ignored in ensemble mode. Packed as cache-key
  /// bit 12 so ensemble and single-estimator sessions never alias one
  /// monitor cache slot.
  bool ensemble = false;
  /// Which bounding engine(s) derive the cardinality corridor the online
  /// clamp uses when `bound_cardinality` is set (src/lqs/bounds.h). The
  /// default reproduces the paper's Appendix A derivation bit-exactly;
  /// kIntersect additionally runs the LpBound ℓp-norm engine and
  /// intersects the intervals per node. Packed as cache-key bits 13-14 so
  /// engine choices never alias one cached estimator.
  BoundsEngineKind bounds_engine = BoundsEngineKind::kAppendixA;
  /// Guard (§4.1): minimum observed rows before refinement engages.
  uint64_t refine_min_rows = 30;

  /// Equation 2 with w_i = 1 over all nodes, optimizer estimates as-is.
  static EstimatorOptions TotalGetNext();
  /// TGN plus Appendix A bounding only.
  static EstimatorOptions BoundingOnly();
  /// Driver-node estimator with refinement + bounding, no weights (the
  /// §5.1 "Bounding + Refinement" configuration).
  static EstimatorOptions DriverNodeRefined();
  /// Everything on — the shipping LQS configuration.
  static EstimatorOptions Lqs();

  /// Shared preset registry over the four §5 configurations above — the
  /// one list benches, tests, the monitor cache key and the ensemble
  /// candidate set all draw from. Indexes are stable and part of the
  /// bench-output contract: 0="tgn", 1="bounding", 2="refined", 3="lqs".
  static constexpr int kPresetCount = 4;
  /// Canonical short name of preset `index`; aborts on an out-of-range
  /// index (a registry bug, not an input condition).
  static const char* PresetName(int index);
  /// The preset options for `index`; aborts on an out-of-range index.
  static EstimatorOptions PresetByIndex(int index);
  /// Parses a canonical preset name; returns false and leaves `*out`
  /// untouched on an unknown name. A registry name with an `_lp` suffix
  /// (e.g. "lqs_lp") resolves to the base preset with
  /// `bounds_engine = kIntersect` — the LpBound-tightened clamp variants
  /// the ensemble candidate pool draws from.
  static bool PresetFromName(std::string_view name, EstimatorOptions* out);

  /// Packs every option field into one integer: two option sets pack
  /// equal iff they configure identical behaviour. The monitor's
  /// estimator-cache key and the ensemble cache key are built from this,
  /// so any new option MUST be packed here too — an unpacked flag would
  /// alias distinct configurations onto one cached estimator.
  uint64_t PackBits() const;
};

/// Progress output for one DMV snapshot.
struct ProgressReport {
  double query_progress = 0;  ///< [0, 1]
  /// Per node id, [0, 1]; exactly what LQS renders under each operator.
  std::vector<double> operator_progress;
  /// Refined total-cardinality estimates N̂_i per node id.
  std::vector<double> refined_rows;
  /// Per-pipeline driver progress (diagnostics / examples).
  std::vector<double> pipeline_progress;
  /// Per-pipeline weight used in the query-level aggregate.
  std::vector<double> pipeline_weight;
};

/// Client-side progress estimator: constructed once per (plan, options),
/// then fed DMV snapshots as they are polled.
class ProgressEstimator {
 public:
  /// Preallocated scratch + frozen-value cache for EstimateInto. All flat
  /// buffers are sized on first use and reused afterwards, so steady-state
  /// estimation performs zero heap allocations (enforced by
  /// tests/estimator_alloc_test.cc).
  ///
  /// Lifetime and threading contract:
  ///  - one Workspace per estimator per thread. A workspace binds to the
  ///    estimator on its first EstimateInto call and must only ever be
  ///    passed back to that estimator; reuse against a different estimator
  ///    (and hence a possibly different plan shape) aborts with a
  ///    diagnostic rather than silently mixing plans.
  ///  - a Workspace is mutable per-call state. Concurrent EstimateInto
  ///    calls on one shared const estimator are safe exactly when each
  ///    caller passes its own workspace (this is how MonitorService uses
  ///    one cached estimator across parallel sessions).
  ///  - every frozen entry is validated against the CURRENT snapshot's
  ///    `finished` flags before reuse, so snapshots may still be replayed
  ///    in any order, exactly like the stateless Estimate().
  struct Workspace {
    /// Observability counters (cumulative since construction).
    struct Stats {
      uint64_t calls = 0;
      /// Nodes whose Appendix A bound coefficients were derived; finished
      /// operators stop contributing (their bounds are frozen at K_i).
      uint64_t bound_derivations = 0;
      /// Pipelines whose alpha was served by the finished-freeze (driver
      /// loop skipped).
      uint64_t alpha_freezes = 0;
      /// Pipelines whose §4.6 weight was served from the frozen cache.
      uint64_t weight_cache_hits = 0;
      /// Nodes where the LpBound engine tightened the Appendix A upper
      /// bound (bounds_engine = kIntersect only).
      uint64_t lp_tightenings = 0;
      /// Inverted intersections resolved to the Appendix-A interval
      /// (bounds_engine = kIntersect only; nonzero indicates an unsound
      /// engine and is surfaced through MonitorStats).
      uint64_t intersection_inversions = 0;
    };
    Stats stats;

   private:
    friend class ProgressEstimator;
    const ProgressEstimator* owner = nullptr;
    std::vector<double> n_hat;
    std::vector<double> alpha;
    std::vector<double> weight;
    CardinalityBounds bounds;
    /// Second-engine scratch of the bounds pipeline (kIntersect holds the
    /// LpBound intervals here between the two passes).
    CardinalityBounds lp_bounds;
    /// Per-call masks, recomputed from each snapshot (out-of-order safe).
    std::vector<uint8_t> node_frozen;        ///< finished && !under_nlj_inner
    std::vector<uint8_t> pipeline_finished;  ///< all member ops finished
    /// Cross-call §4.6 weight cache; entries are only served when the
    /// current snapshot shows every contributing pipeline finished.
    std::vector<uint8_t> weight_frozen;
    std::vector<double> frozen_weight;
    /// Critical-path scratch (critical_path_only configurations).
    std::vector<char> on_path;
    std::vector<double> cp_best;
    std::vector<int> cp_best_child;
  };

  ProgressEstimator(const Plan* plan, const Catalog* catalog,
                    EstimatorOptions options);

  /// Computes query and operator progress from one DMV snapshot. Output is
  /// stateless (all estimation state is in the snapshot), so snapshots may
  /// be replayed in any order. Thin compatibility wrapper over EstimateInto
  /// against a lazily-initialized internal Workspace, so one-shot callers
  /// stay off the hot-path allocation counter instead of constructing
  /// scratch per call.
  ///
  /// Single-owner consequence: because the internal workspace is shared by
  /// every Estimate() call on this estimator, concurrent Estimate() calls
  /// on one shared estimator are NOT safe. Concurrent callers must each
  /// hold their own Workspace and use EstimateInto — exactly how
  /// MonitorService shares one cached estimator across parallel sessions.
  ProgressReport Estimate(const ProfileSnapshot& snapshot) const;

  /// Allocation-free form of Estimate: writes the report into `*report`
  /// (vectors are re-sized in place, reusing capacity) using `*workspace`
  /// for all intermediate state. Produces bit-identical reports to
  /// Estimate() for any snapshot order; see the Workspace contract above.
  /// LQS_NOALLOC: steady-state calls must stay heap-free — statically
  /// checked by tools/lqs_verify (noalloc), dynamically by
  /// tests/estimator_alloc_test.cc. LQS_DETERMINISTIC: the same snapshot
  /// yields a bit-identical report regardless of replay order, wall-clock
  /// time, or thread — statically checked by the `determinism` checker,
  /// dynamically by the replay-order golden tests.
  LQS_NOALLOC LQS_DETERMINISTIC void EstimateInto(
      const ProfileSnapshot& snapshot, Workspace* workspace,
      ProgressReport* report) const;

  const PlanAnalysis& analysis() const { return analysis_; }
  const EstimatorOptions& options() const { return options_; }
  const Plan& plan() const { return *plan_; }
  const Catalog& catalog() const { return *catalog_; }

  /// §7(b) extension: apply learned per-operator-type cost multipliers to
  /// the pipeline weights. `feedback` must outlive the estimator; pass
  /// nullptr to disable. Weight freezing is disabled while feedback is set
  /// (multipliers may change between snapshots).
  void SetCostFeedback(const CostFeedback* feedback) { feedback_ = feedback; }

 private:
  /// Sizes the workspace buffers on first use and pins the workspace to
  /// this estimator; aborts on an owner/shape mismatch.
  LQS_ALLOC_OK(
      "first-call sizing path: allocates exactly once per workspace "
      "binding, a no-op on every steady-state call (owner check at entry)")
  void PrepareWorkspace(Workspace* ws) const;

  /// Fills the per-call freeze masks from `snapshot` (no-op masks when
  /// options_.incremental is off).
  void ComputeFreezeMasks(const ProfileSnapshot& snapshot, Workspace* ws)
      const;

  /// §4.3/§4.7-aware progress of a single driver node: fills (k, n) such
  /// that k/n is the driver's progress contribution.
  void DriverContribution(const ProfileSnapshot& snapshot, int node_id,
                          const std::vector<double>& n_hat, double* k,
                          double* n) const;

  /// One bottom-up refinement pass (§4.1/§4.4) given per-pipeline alphas.
  void RefinePass(const ProfileSnapshot& snapshot,
                  const std::vector<double>& alpha,
                  const CardinalityBounds* bounds,
                  std::vector<double>* n_hat) const;

  /// Per-node body of RefinePass (children's n_hat must already be final).
  void RefineNode(const ProfileSnapshot& snapshot, const PlanNode& node,
                  const std::vector<double>& alpha,
                  const CardinalityBounds* bounds,
                  std::vector<double>* n_hat) const;

  /// Driver-based progress of each pipeline into ws->alpha;
  /// `include_inner` adds the §4.4(1) NL-inner drivers (requires refined
  /// estimates for them). Fully-finished freezable pipelines short-circuit
  /// to alpha = 1 (bit-identical: the root-finished override below forces
  /// the same value).
  void PipelineAlphasInto(const ProfileSnapshot& snapshot,
                          const std::vector<double>& n_hat,
                          bool include_inner, Workspace* ws) const;

  double OperatorProgress(const ProfileSnapshot& snapshot, int node_id,
                          const std::vector<double>& n_hat) const;

  /// §4.6 pipeline weights into ws->weight: per-operator max(CPU, I/O)
  /// re-evaluated at the refined cardinalities, with blocking-input work
  /// attributed to the pipeline it temporally executes with. Weights of
  /// pipelines whose contributing cardinalities are all frozen are served
  /// from the workspace cache.
  /// LQS_NOALLOC: the §4.6 weight path runs once per estimate inside
  /// EstimateInto and must stay heap-free on its own as well.
  LQS_NOALLOC void PipelineWeightsInto(const std::vector<double>& n_hat,
                                       Workspace* ws) const;

  /// §4.6 cost terms of one operator at the refined cardinalities: the
  /// operator's own-pipeline max(CPU, I/O) share, and the blocking input
  /// phase attributed to its blocked child's pipeline.
  double OwnCostMs(const PlanNode& node,
                   const std::vector<double>& n_hat) const;
  double BoundaryCostMs(const PlanNode& node,
                        const std::vector<double>& n_hat) const;

  /// Catalog row count for an uncorrelated full scan (> 0 required by the
  /// callers), or -1 when unknown; hoisted lookup when incremental.
  double FullScanRows(const PlanNode& node) const;

  const Plan* plan_;
  const Catalog* catalog_;
  EstimatorOptions options_;
  PlanAnalysis analysis_;
  const CostFeedback* feedback_ = nullptr;
  /// Scratch behind the Estimate() compatibility wrapper, sized lazily on
  /// its first call. This is what makes concurrent Estimate() on a shared
  /// estimator unsafe (see the wrapper's contract above); EstimateInto
  /// never touches it.
  mutable Workspace estimate_workspace_;
};

}  // namespace lqs

#endif  // LQS_LQS_ESTIMATOR_H_
