#ifndef LQS_LQS_ESTIMATOR_H_
#define LQS_LQS_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "dmv/query_profile.h"
#include "exec/plan.h"
#include "lqs/bounds.h"
#include "lqs/feedback.h"
#include "lqs/pipeline.h"
#include "storage/catalog.h"

namespace lqs {

/// Feature switches of the progress estimator. Each flag corresponds to one
/// of the paper's techniques; the presets below reproduce the configurations
/// compared in §5. Everything runs client-side off DMV snapshots plus the
/// showplan annotations, exactly like the SSMS module (§2.2).
struct EstimatorOptions {
  /// Pipeline/query progress from driver nodes (DNE [7]) instead of the
  /// Total-GetNext model over all nodes (TGN, Equation 2 with w_i = 1).
  bool use_driver_nodes = true;
  /// §4.1 online cardinality refinement (scale K_i by inverse driver
  /// progress).
  bool refine_cardinality = true;
  /// §4.2 / Appendix A worst-case bounding of the N_i.
  bool bound_cardinality = true;
  /// §4.4 semi-blocking adjustments: NL inner sides become drivers,
  /// refinement scales by the immediate child across semi-blocking
  /// operators, inner-side scale-up uses actual executions.
  bool semi_blocking_adjust = true;
  /// §4.5 two-phase (input+output) progress model for blocking operators.
  bool two_phase_blocking = true;
  /// §4.6 pipeline weights from max(est CPU, est I/O).
  bool use_weights = true;
  /// §4.6 restrict the weighted aggregate to the longest (critical) path of
  /// pipelines. Off by default: our substrate executes pipelines serially,
  /// so total time is the sum over all pipelines (see DESIGN.md §5).
  bool critical_path_only = false;
  /// §4.3 I/O-fraction progress for scans with storage-engine predicates.
  bool storage_predicate_io = true;
  /// §4.7 segment-fraction progress for batch-mode columnstore scans.
  bool batch_mode_segments = true;
  /// Prior-work alternative [22]: linearly interpolate between the
  /// optimizer estimate and the scaled-up estimate instead of replacing.
  bool interpolate_refinement = false;
  /// §7(a) future-work extension: propagate refined cardinalities across
  /// pipeline boundaries — a not-yet-started operator's estimate is scaled
  /// by how far its children's refined estimates moved from the showplan
  /// estimates. The paper's shipping system propagates only worst-case
  /// bounds; off by default to match it.
  bool propagate_refinement = false;
  /// Guard (§4.1): minimum observed rows before refinement engages.
  uint64_t refine_min_rows = 30;

  /// Equation 2 with w_i = 1 over all nodes, optimizer estimates as-is.
  static EstimatorOptions TotalGetNext();
  /// TGN plus Appendix A bounding only.
  static EstimatorOptions BoundingOnly();
  /// Driver-node estimator with refinement + bounding, no weights (the
  /// §5.1 "Bounding + Refinement" configuration).
  static EstimatorOptions DriverNodeRefined();
  /// Everything on — the shipping LQS configuration.
  static EstimatorOptions Lqs();
};

/// Progress output for one DMV snapshot.
struct ProgressReport {
  double query_progress = 0;  ///< [0, 1]
  /// Per node id, [0, 1]; exactly what LQS renders under each operator.
  std::vector<double> operator_progress;
  /// Refined total-cardinality estimates N̂_i per node id.
  std::vector<double> refined_rows;
  /// Per-pipeline driver progress (diagnostics / examples).
  std::vector<double> pipeline_progress;
  /// Per-pipeline weight used in the query-level aggregate.
  std::vector<double> pipeline_weight;
};

/// Client-side progress estimator: constructed once per (plan, options),
/// then fed DMV snapshots as they are polled.
class ProgressEstimator {
 public:
  ProgressEstimator(const Plan* plan, const Catalog* catalog,
                    EstimatorOptions options);

  /// Computes query and operator progress from one DMV snapshot. Stateless
  /// across calls (all state is in the snapshot), so snapshots may be
  /// replayed in any order.
  ProgressReport Estimate(const ProfileSnapshot& snapshot) const;

  const PlanAnalysis& analysis() const { return analysis_; }
  const EstimatorOptions& options() const { return options_; }
  const Plan& plan() const { return *plan_; }
  const Catalog& catalog() const { return *catalog_; }

  /// §7(b) extension: apply learned per-operator-type cost multipliers to
  /// the pipeline weights. `feedback` must outlive the estimator; pass
  /// nullptr to disable.
  void SetCostFeedback(const CostFeedback* feedback) { feedback_ = feedback; }

 private:
  struct Workspace;

  /// §4.3/§4.7-aware progress of a single driver node: fills (k, n) such
  /// that k/n is the driver's progress contribution.
  void DriverContribution(const ProfileSnapshot& snapshot, int node_id,
                          const std::vector<double>& n_hat, double* k,
                          double* n) const;

  /// One bottom-up refinement pass (§4.1/§4.4) given per-pipeline alphas.
  void RefinePass(const ProfileSnapshot& snapshot,
                  const std::vector<double>& alpha,
                  const CardinalityBounds* bounds,
                  std::vector<double>* n_hat) const;

  /// Driver-based progress of each pipeline; `include_inner` adds the
  /// §4.4(1) NL-inner drivers (requires refined estimates for them).
  std::vector<double> PipelineAlphas(const ProfileSnapshot& snapshot,
                                     const std::vector<double>& n_hat,
                                     bool include_inner) const;

  double OperatorProgress(const ProfileSnapshot& snapshot, int node_id,
                          const std::vector<double>& n_hat) const;

  /// §4.6 pipeline weights: per-operator max(CPU, I/O) re-evaluated at the
  /// refined cardinalities, with blocking-input work attributed to the
  /// pipeline it temporally executes with.
  std::vector<double> PipelineWeights(const std::vector<double>& n_hat) const;

  const Plan* plan_;
  const Catalog* catalog_;
  EstimatorOptions options_;
  PlanAnalysis analysis_;
  const CostFeedback* feedback_ = nullptr;
};

}  // namespace lqs

#endif  // LQS_LQS_ESTIMATOR_H_
