#ifndef LQS_LQS_FEEDBACK_H_
#define LQS_LQS_FEEDBACK_H_

#include <map>

#include "dmv/query_profile.h"
#include "exec/plan.h"

namespace lqs {

/// §7(b) future-work extension: "the ability to use feedback from prior
/// executions of queries to adjust the weights that model the relative costs
/// of CPU and I/O overhead when estimating query-level progress."
///
/// After each completed query, Observe() compares the virtual time each
/// operator actually consumed against what the optimizer's cost model
/// predicts at the TRUE cardinalities (isolating cost-model error from
/// cardinality error). Multiplier() then returns a smoothed actual/predicted
/// ratio per operator type, which ProgressEstimator applies to its §4.6
/// pipeline weights when configured with SetCostFeedback().
///
/// On a well-calibrated engine the multipliers hover near 1; they move when
/// the cost model mis-prices an operator class (e.g. spilling sorts, cold
/// caches), which is exactly the drift this feedback corrects.
class CostFeedback {
 public:
  CostFeedback() = default;

  /// Records one completed query. `plan` must be annotated (per-row costs
  /// are derived from est_cpu_ms/est_io_ms and est_rows).
  void Observe(const Plan& plan, const ProfileTrace& trace);

  /// Smoothed actual/predicted cost ratio for the operator type; 1.0 when
  /// nothing has been observed.
  double Multiplier(OpType type) const;

  /// Queries observed so far.
  int observations() const { return observations_; }

 private:
  struct Accumulator {
    double actual_ms = 0;
    double predicted_ms = 0;
  };
  std::map<OpType, Accumulator> per_type_;
  int observations_ = 0;
};

}  // namespace lqs

#endif  // LQS_LQS_FEEDBACK_H_
