#ifndef LQS_LQS_BOUNDS_H_
#define LQS_LQS_BOUNDS_H_

#include <vector>

#include "dmv/query_profile.h"
#include "exec/plan.h"
#include "storage/catalog.h"

namespace lqs {

/// Worst-case lower/upper bounds on each operator's total GetNext count,
/// derived online from algebraic operator properties (§4.2, Appendix A).
struct CardinalityBounds {
  std::vector<double> lower;  ///< per node id
  std::vector<double> upper;  ///< per node id; may be +infinity (spools)

  /// Clamps a cardinality estimate for `node_id` into [lower, upper].
  double Clamp(int node_id, double estimate) const;
};

/// Computes the Appendix A bounds for every node given the current DMV
/// snapshot. Table sizes come from the catalog (the client can always read
/// them); K values from the snapshot; children's bounds compose bottom-up.
/// Nodes on the inner side of a Nested Loops join have their per-execution
/// bounds scaled by the outer side's upper bound, per the table's "when on
/// inner side of join" entries. Operators that have reached end-of-stream
/// have exact bounds (lower = upper = K_i).
CardinalityBounds ComputeBounds(const Plan& plan, const Catalog& catalog,
                                const ProfileSnapshot& snapshot);

}  // namespace lqs

#endif  // LQS_LQS_BOUNDS_H_
