#ifndef LQS_LQS_BOUNDS_H_
#define LQS_LQS_BOUNDS_H_

#include <cstdint>
#include <vector>

#include "common/deterministic.h"
#include "common/noalloc.h"
#include "dmv/query_profile.h"
#include "exec/plan.h"
#include "lqs/pipeline.h"
#include "storage/catalog.h"

namespace lqs {

/// Worst-case lower/upper bounds on each operator's total GetNext count,
/// derived online from algebraic operator properties (§4.2, Appendix A).
struct CardinalityBounds {
  std::vector<double> lower;  ///< per node id
  std::vector<double> upper;  ///< per node id; may be +infinity (spools)

  /// Clamps a cardinality estimate for `node_id` into [lower, upper].
  /// Deterministic under malformed inputs: a NaN estimate clamps to the
  /// lower bound (the observed count is the only trustworthy value), and an
  /// inverted range (lower > upper — possible only if an engine produced an
  /// unsound interval) collapses to the lower bound rather than hitting
  /// std::clamp's undefined behaviour.
  double Clamp(int node_id, double estimate) const;
};

/// Which bound derivation(s) the bounding pipeline runs per snapshot.
/// Selected by EstimatorOptions::bounds_engine (monitor cache-key bits
/// 13-14), so every engine choice is a distinct cached estimator.
enum class BoundsEngineKind : uint8_t {
  /// The paper's Appendix A algebraic derivation (the default; output is
  /// bit-identical to the pre-pipeline monolithic path).
  kAppendixA = 0,
  /// LpBound (arXiv:2502.05912) pessimistic upper bounds from exact
  /// degree-sequence ℓ∞/ℓ2 norms; lower bounds degrade to the observed K.
  kLpBound = 1,
  /// Both engines, intersected per node: max of lowers, min of uppers,
  /// with an inverted intersection resolving to the Appendix-A interval.
  kIntersect = 2,
};

/// Stable display name: "appendix_a", "lp_bound", "intersect".
const char* BoundsEngineName(BoundsEngineKind kind);

/// Per-call observability counters of the bounds-engine pipeline.
struct BoundsEngineStats {
  /// Appendix-A nodes whose coefficients were derived (frozen nodes skip).
  uint64_t derivations = 0;
  /// Nodes where the LpBound upper bound strictly tightened Appendix A's
  /// at intersection.
  uint64_t lp_tightenings = 0;
  /// Nodes whose intersection inverted (lower > upper) and fell back to
  /// the Appendix-A interval.
  uint64_t intersection_inversions = 0;
};

/// Computes the Appendix A bounds for every node given the current DMV
/// snapshot. Table sizes come from the catalog (the client can always read
/// them); K values from the snapshot; children's bounds compose bottom-up.
/// Nodes on the inner side of a Nested Loops join have their per-execution
/// bounds scaled by the outer side's upper bound, per the table's "when on
/// inner side of join" entries. Operators that have reached end-of-stream
/// have exact bounds (lower = upper = K_i).
CardinalityBounds ComputeBounds(const Plan& plan, const Catalog& catalog,
                                const ProfileSnapshot& snapshot);

/// Allocation-free form: writes into `out`, reusing its vectors' capacity
/// (zero heap traffic once they have been sized by a first call).
///
/// `analysis` (optional) supplies hoisted catalog statics so table sizes
/// are read from a flat array instead of the catalog's string-keyed map;
/// pass one with has_catalog_statics for the hot path, or null to look the
/// catalog up live. Results are identical either way.
///
/// `frozen` (optional, per node id) marks operators whose bound derivation
/// may be skipped: an operator that is `finished` in THIS snapshot and is
/// not under any NL-inner edge has exact bounds lower = upper = K_i, so
/// the coefficient derivation (the Appendix A switch) is bypassed and the
/// frozen value written directly. The caller must compute the mask from
/// the snapshot being estimated — never from an earlier one — which keeps
/// out-of-order replay exact. `derivations` (optional) counts the nodes
/// whose coefficients WERE derived, so tests can assert that finished
/// operators stop paying for re-derivation.
/// LQS_NOALLOC: the Appendix A derivation sits on the per-snapshot hot
/// path of every bounding estimator configuration.
LQS_NOALLOC void ComputeBoundsInto(const Plan& plan, const Catalog& catalog,
                                   const ProfileSnapshot& snapshot,
                                   const PlanAnalysis* analysis,
                                   const std::vector<uint8_t>* frozen,
                                   CardinalityBounds* out,
                                   uint64_t* derivations);

/// Engine #2: LpBound pessimistic upper bounds (arXiv:2502.05912). For
/// every node, lower = K_i (the observed count) and upper is derived
/// bottom-up from the exact degree-sequence norms hoisted into
/// `analysis.node_statics` (FillDegreeNormStatics): an equijoin's output
/// cannot exceed min over the valid caps of
///   UB_outer * UB_inner                      (cross product),
///   UB_inner * ℓ∞(outer key degrees),        (every inner row matches at
///   UB_outer * ℓ∞(inner key degrees),         most ℓ∞ rows, and v.v.)
///   ℓ2(outer) * ℓ2(inner)                    (Cauchy–Schwarz).
/// Subtrees that may re-execute (rebind multiplier > 1 under a Nested
/// Loops inner edge) are declined — upper = +infinity — because the norms
/// cap a single execution only; Appendix A covers those nodes through the
/// intersection. `analysis` must be the catalog-aware AnalyzePlan result
/// for this plan. `frozen` follows the ComputeBoundsInto contract.
/// LQS_NOALLOC + LQS_DETERMINISTIC: per-snapshot hot path, flat-array
/// reads only (both statically checked by tools/lqs_verify).
LQS_NOALLOC LQS_DETERMINISTIC void ComputeLpBoundsInto(
    const Plan& plan, const ProfileSnapshot& snapshot,
    const PlanAnalysis& analysis, const std::vector<uint8_t>* frozen,
    CardinalityBounds* out);

/// The bounds-engine pipeline: runs the engine(s) selected by `kind` and
/// writes the final per-node intervals into `out`.
///  - kAppendixA: exactly ComputeBoundsInto (bit-identical output).
///  - kLpBound:   exactly ComputeLpBoundsInto.
///  - kIntersect: both; per node lower = max of lowers, upper = min of
///    uppers. An inverted intersection (lower > upper, an unsound-engine
///    symptom) resolves deterministically to the Appendix-A interval and
///    is counted in stats->intersection_inversions.
/// `hoisted` is the optional Appendix-A statics argument (the
/// ComputeBoundsInto `analysis` parameter, null to read the catalog live);
/// `analysis` is the always-present catalog-aware analysis the LpBound
/// engine reads. `scratch` holds the second engine's intervals between the
/// two passes — per-workspace, so steady state stays allocation-free.
/// `stats` (optional) accumulates the pipeline counters.
LQS_NOALLOC LQS_DETERMINISTIC void ComputeBoundsPipelineInto(
    BoundsEngineKind kind, const Plan& plan, const Catalog& catalog,
    const ProfileSnapshot& snapshot, const PlanAnalysis* hoisted,
    const PlanAnalysis& analysis, const std::vector<uint8_t>* frozen,
    CardinalityBounds* out, CardinalityBounds* scratch,
    BoundsEngineStats* stats);

}  // namespace lqs

#endif  // LQS_LQS_BOUNDS_H_
