#ifndef LQS_LQS_BOUNDS_H_
#define LQS_LQS_BOUNDS_H_

#include <cstdint>
#include <vector>

#include "common/noalloc.h"
#include "dmv/query_profile.h"
#include "exec/plan.h"
#include "lqs/pipeline.h"
#include "storage/catalog.h"

namespace lqs {

/// Worst-case lower/upper bounds on each operator's total GetNext count,
/// derived online from algebraic operator properties (§4.2, Appendix A).
struct CardinalityBounds {
  std::vector<double> lower;  ///< per node id
  std::vector<double> upper;  ///< per node id; may be +infinity (spools)

  /// Clamps a cardinality estimate for `node_id` into [lower, upper].
  double Clamp(int node_id, double estimate) const;
};

/// Computes the Appendix A bounds for every node given the current DMV
/// snapshot. Table sizes come from the catalog (the client can always read
/// them); K values from the snapshot; children's bounds compose bottom-up.
/// Nodes on the inner side of a Nested Loops join have their per-execution
/// bounds scaled by the outer side's upper bound, per the table's "when on
/// inner side of join" entries. Operators that have reached end-of-stream
/// have exact bounds (lower = upper = K_i).
CardinalityBounds ComputeBounds(const Plan& plan, const Catalog& catalog,
                                const ProfileSnapshot& snapshot);

/// Allocation-free form: writes into `out`, reusing its vectors' capacity
/// (zero heap traffic once they have been sized by a first call).
///
/// `analysis` (optional) supplies hoisted catalog statics so table sizes
/// are read from a flat array instead of the catalog's string-keyed map;
/// pass one with has_catalog_statics for the hot path, or null to look the
/// catalog up live. Results are identical either way.
///
/// `frozen` (optional, per node id) marks operators whose bound derivation
/// may be skipped: an operator that is `finished` in THIS snapshot and is
/// not under any NL-inner edge has exact bounds lower = upper = K_i, so
/// the coefficient derivation (the Appendix A switch) is bypassed and the
/// frozen value written directly. The caller must compute the mask from
/// the snapshot being estimated — never from an earlier one — which keeps
/// out-of-order replay exact. `derivations` (optional) counts the nodes
/// whose coefficients WERE derived, so tests can assert that finished
/// operators stop paying for re-derivation.
/// LQS_NOALLOC: the Appendix A derivation sits on the per-snapshot hot
/// path of every bounding estimator configuration.
LQS_NOALLOC void ComputeBoundsInto(const Plan& plan, const Catalog& catalog,
                                   const ProfileSnapshot& snapshot,
                                   const PlanAnalysis* analysis,
                                   const std::vector<uint8_t>* frozen,
                                   CardinalityBounds* out,
                                   uint64_t* derivations);

}  // namespace lqs

#endif  // LQS_LQS_BOUNDS_H_
