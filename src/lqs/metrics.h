#ifndef LQS_LQS_METRICS_H_
#define LQS_LQS_METRICS_H_

#include <vector>

#include "dmv/query_profile.h"
#include "exec/plan.h"
#include "lqs/estimator.h"
#include "storage/catalog.h"

namespace lqs {

/// Per-operator-instance error over one query's trace.
struct OperatorError {
  int node_id = -1;
  OpType type = OpType::kTableScan;
  /// Average |K/N̂ − K/N_true| over observations (the §5.1 per-operator
  /// Error_count variant, Figure 15).
  double count_error = 0;
  /// Average |operator progress − operator time fraction| over the
  /// operator's activity window (Figures 17/20).
  double time_error = 0;
  int count_observations = 0;
  int time_observations = 0;
};

/// §5 error metrics for one query under one estimator configuration.
struct QueryEvaluation {
  /// Error_count: average |Prog(Q,t) − Σ K_i(t) / Σ N_i^true| over the
  /// trace's observations.
  double error_count = 0;
  /// Error_time: average |Prog(Q,t) − (t − t_start)/(t_end − t_start)|.
  double error_time = 0;
  int observations = 0;
  std::vector<OperatorError> operator_errors;
};

/// Replays a query's DMV trace through a ProgressEstimator built with
/// `options` and computes the §5 metrics. The true N_i come from the
/// trace's final snapshot.
QueryEvaluation EvaluateQuery(const Plan& plan, const Catalog& catalog,
                              const ProfileTrace& trace,
                              const EstimatorOptions& options);

/// Progress curve sample (for the figure-style curve benches).
struct ProgressSample {
  double time_ms = 0;
  double estimated = 0;    ///< estimator's query progress
  double true_count = 0;   ///< GetNext-model progress with true N_i
  double time_fraction = 0;
};

/// Full progress-over-time series for one query.
std::vector<ProgressSample> ProgressCurve(const Plan& plan,
                                          const Catalog& catalog,
                                          const ProfileTrace& trace,
                                          const EstimatorOptions& options);

}  // namespace lqs

#endif  // LQS_LQS_METRICS_H_
