#include "lqs/feedback.h"

#include <algorithm>

namespace lqs {

void CostFeedback::Observe(const Plan& plan, const ProfileTrace& trace) {
  const ProfileSnapshot& fin = trace.final_snapshot;
  if (fin.operators.size() != static_cast<size_t>(plan.size())) return;
  for (int i = 0; i < plan.size(); ++i) {
    const PlanNode& node = plan.node(i);
    const OperatorProfile& prof = fin.operators[i];
    const double actual = prof.cpu_time_ms + prof.io_time_ms;
    if (actual <= 0) continue;
    // Predicted cost at the true cardinalities: per-row cost times actual
    // rows. An operator's work is driven by its inputs as much as its
    // output (a hash join's cost is build+probe rows), so the rescaling
    // ratio uses the node's own rows plus its children's. This cancels
    // cardinality error and leaves cost-model error, which is what weight
    // feedback should correct.
    double predicted = node.est_cpu_ms + node.est_io_ms;
    double est_volume = node.est_rows;
    double actual_volume = static_cast<double>(prof.row_count);
    for (const auto& child : node.children) {
      est_volume += child->est_rows;
      actual_volume += static_cast<double>(fin.operators[child->id].row_count);
    }
    if (est_volume > 0 && actual_volume > 0) {
      predicted = predicted / est_volume * actual_volume;
    }
    if (predicted <= 0) continue;
    Accumulator& acc = per_type_[node.type];
    acc.actual_ms += actual;
    acc.predicted_ms += predicted;
  }
  observations_++;
}

double CostFeedback::Multiplier(OpType type) const {
  auto it = per_type_.find(type);
  if (it == per_type_.end() || it->second.predicted_ms <= 0) return 1.0;
  const double raw = it->second.actual_ms / it->second.predicted_ms;
  // Smooth toward 1 and clamp: feedback should nudge weights, not let one
  // outlier query dominate them.
  const double blend = std::min(1.0, observations_ / 8.0);
  return std::clamp(1.0 + (raw - 1.0) * blend, 0.1, 10.0);
}

}  // namespace lqs
