#ifndef LQS_ENSEMBLE_ENSEMBLE_METRICS_H_
#define LQS_ENSEMBLE_ENSEMBLE_METRICS_H_

#include "dmv/query_profile.h"
#include "ensemble/ensemble.h"
#include "exec/plan.h"
#include "lqs/metrics.h"
#include "storage/catalog.h"

namespace lqs {

/// §5-style error metrics for one query's trace replayed through the
/// ensemble, plus ensemble-specific diagnostics. Mirrors EvaluateQuery for
/// the query-level terms so ensemble numbers are directly comparable with
/// the fixed-preset numbers from lqs/metrics.h.
struct EnsembleEvaluation {
  /// Error_count / Error_time of the ensemble's headline progress,
  /// averaged over the trace's observations (same definitions as
  /// QueryEvaluation).
  double error_count = 0;
  double error_time = 0;
  int observations = 0;
  /// Winner changes over the replay (hysteresis quality signal).
  uint64_t switches = 0;
  /// Candidate selected at the end of the replay.
  int final_winner = -1;
  /// Fraction of observations where the true time-fraction progress lay
  /// inside [band_lo, band_hi] (uncertainty-band calibration).
  double band_coverage = 0;
  /// Average band width across observations.
  double band_width = 0;
  /// Ticks each candidate spent selected, indexed like the candidate pool.
  std::vector<uint64_t> selected_ticks;
};

/// Replays `trace` through an EnsembleEstimator built from `options` and
/// computes the metrics above. The true reference terms come from the
/// trace's final snapshot, exactly like EvaluateQuery.
EnsembleEvaluation EvaluateEnsemble(const Plan& plan, const Catalog& catalog,
                                    const ProfileTrace& trace,
                                    const EnsembleOptions& options);

}  // namespace lqs

#endif  // LQS_ENSEMBLE_ENSEMBLE_METRICS_H_
