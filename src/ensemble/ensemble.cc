#include "ensemble/ensemble.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace lqs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Blend weight floor: a perfectly stable candidate (score 0) must not
/// collapse every other weight to nothing.
constexpr double kScoreEpsilon = 1e-3;

double Clamp01(double v) {
  if (v < 0) return 0;
  if (v > 1) return 1;
  return v;
}

}  // namespace

std::vector<EnsembleCandidate> DefaultEnsembleCandidates() {
  std::vector<EnsembleCandidate> out;
  // The shipping preset leads: it is the warm-up fallback before any
  // candidate has enough observations to be scored on merit.
  out.push_back({"lqs", EstimatorOptions::Lqs()});
  for (int i = 0; i < EstimatorOptions::kPresetCount; ++i) {
    EstimatorOptions preset = EstimatorOptions::PresetByIndex(i);
    if (preset.PackBits() == EstimatorOptions::Lqs().PackBits()) continue;
    out.push_back({EstimatorOptions::PresetName(i), preset});
  }
  // Parameter variants beyond the four §5 presets.
  EstimatorOptions interp = EstimatorOptions::Lqs();
  interp.interpolate_refinement = true;
  out.push_back({"lqs_interp", interp});
  EstimatorOptions refined_weighted = EstimatorOptions::DriverNodeRefined();
  refined_weighted.use_weights = true;
  out.push_back({"refined_weighted", refined_weighted});
  // LpBound-intersected clamp variants (registry `_lp` names): same
  // estimation techniques, but the online clamp corridor additionally runs
  // the ℓp-norm bounding engine — the tighter clamp wins exactly on the
  // misestimated-join workloads where Appendix A's corridor is vacuous.
  EstimatorOptions lqs_lp = EstimatorOptions::Lqs();
  lqs_lp.bounds_engine = BoundsEngineKind::kIntersect;
  out.push_back({"lqs_lp", lqs_lp});
  EstimatorOptions refined_lp = EstimatorOptions::DriverNodeRefined();
  refined_lp.bounds_engine = BoundsEngineKind::kIntersect;
  out.push_back({"refined_lp", refined_lp});
  return out;
}

void CandidateScore::Prepare(int capacity) {
  if (capacity < 2) capacity = 2;
  eta_.assign(static_cast<size_t>(capacity), 0.0);
  dev_.assign(static_cast<size_t>(capacity), 0.0);
  time_.assign(static_cast<size_t>(capacity), 0.0);
  head_ = 0;
  count_ = 0;
}

void CandidateScore::Observe(double time_ms, double progress,
                             double median_progress) {
  if (!(progress >= kMinProgress)) return;  // also rejects NaN
  if (progress > 1.0) progress = 1.0;
  const double eta = time_ms / progress;
  const double dev = std::fabs(progress - median_progress);
  const int cap = static_cast<int>(eta_.size());
  if (count_ > 0) {
    const int last = (head_ + cap - 1) % cap;
    if (time_[static_cast<size_t>(last)] == time_ms) {
      // Re-estimate of a held snapshot: refresh in place, don't flood.
      eta_[static_cast<size_t>(last)] = eta;
      dev_[static_cast<size_t>(last)] = dev;
      return;
    }
  }
  eta_[static_cast<size_t>(head_)] = eta;
  dev_[static_cast<size_t>(head_)] = dev;
  time_[static_cast<size_t>(head_)] = time_ms;
  head_ = (head_ + 1) % cap;
  if (count_ < cap) ++count_;
}

double CandidateScore::Score(int min_observations) const {
  if (min_observations < 1) min_observations = 1;
  if (count_ < min_observations) return kInf;
  double sum = 0;
  for (int i = 0; i < count_; ++i) sum += eta_[static_cast<size_t>(i)];
  const double mean = sum / count_;
  if (!(mean > 0)) return kInf;
  double eta_dev = 0, consensus_dev = 0;
  for (int i = 0; i < count_; ++i) {
    eta_dev += std::fabs(eta_[static_cast<size_t>(i)] - mean);
    consensus_dev += dev_[static_cast<size_t>(i)];
  }
  return (eta_dev / count_) / mean + consensus_dev / count_;
}

int HysteresisSelector::Update(const double* scores, int count, double margin,
                               int switch_ticks) {
  if (count <= 0) return winner;
  // Best candidate this round: lowest score, ties to the lowest index
  // (strict < keeps the earlier index on equality — deterministic).
  int best = 0;
  for (int i = 1; i < count; ++i) {
    if (scores[i] < scores[best]) best = i;
  }
  if (winner < 0 || winner >= count) {
    // Initial selection is free of hysteresis and not counted as a switch.
    winner = best;
    challenger = -1;
    streak = 0;
    return winner;
  }
  if (!std::isfinite(scores[winner]) && std::isfinite(scores[best])) {
    // The incumbent's score degenerated; waiting out the streak would mean
    // ticks of selections with no supporting evidence.
    winner = best;
    challenger = -1;
    streak = 0;
    ++switches;
    return winner;
  }
  if (best != winner && std::isfinite(scores[best]) &&
      scores[best] < scores[winner] * (1.0 - margin)) {
    if (best == challenger) {
      ++streak;
    } else {
      challenger = best;
      streak = 1;
    }
    if (streak >= switch_ticks) {
      winner = best;
      challenger = -1;
      streak = 0;
      ++switches;
    }
  } else {
    // Challenge lapsed (or the incumbent is the best again).
    challenger = -1;
    streak = 0;
  }
  return winner;
}

EnsembleEstimator::EnsembleEstimator(const Plan* plan, const Catalog* catalog,
                                     EnsembleOptions options)
    : plan_(plan), catalog_(catalog), options_(std::move(options)) {
  if (options_.candidates.empty()) {
    options_.candidates = DefaultEnsembleCandidates();
  }
  candidates_.reserve(options_.candidates.size());
  for (EnsembleCandidate& c : options_.candidates) {
    c.options.incremental = options_.incremental;
    c.options.ensemble = false;  // candidates are plain estimators
    candidates_.push_back(
        std::make_unique<ProgressEstimator>(plan_, catalog_, c.options));
  }
}

void EnsembleEstimator::PrepareWorkspace(Workspace* ws) const {
  if (ws->owner == this) return;
  if (ws->owner != nullptr) {
    std::fprintf(stderr,
                 "EnsembleEstimator::EstimateInto: workspace is bound to a "
                 "different ensemble (%p, this=%p) — one workspace per "
                 "ensemble per thread\n",
                 static_cast<const void*>(ws->owner),
                 static_cast<const void*>(this));
    std::abort();
  }
  ws->owner = this;
  const size_t n = candidates_.size();
  ws->candidate_ws.resize(n);
  ws->candidate_report.resize(n);
  ws->score.resize(n);
  ws->score_value.assign(n, kInf);
  ws->median_scratch.assign(n, 0.0);
  for (CandidateScore& s : ws->score) s.Prepare(options_.ring_capacity);
  ws->stats.candidate_latency_ms.assign(n, 0.0);
  ws->stats.selected_ticks.assign(n, 0);
}

void EnsembleEstimator::EstimateInto(const ProfileSnapshot& snapshot,
                                     Workspace* ws,
                                     EnsembleReport* report) const {
  PrepareWorkspace(ws);
  const int n = static_cast<int>(candidates_.size());

  // 1. Drive every candidate over the snapshot through its own workspace.
  for (int i = 0; i < n; ++i) {
    const size_t si = static_cast<size_t>(i);
    double t0 = 0;
    if (options_.latency_clock_ms != nullptr) t0 = options_.latency_clock_ms();
    candidates_[si]->EstimateInto(snapshot, &ws->candidate_ws[si],
                                  &ws->candidate_report[si]);
    if (options_.latency_clock_ms != nullptr) {
      // Telemetry only (Workspace::Stats, never the report) — the same
      // carve-out as the monitor's latency counters.
      ws->stats.candidate_latency_ms[si] += options_.latency_clock_ms() - t0;
    }
  }

  // 2. Score each candidate against the pack: the per-tick median progress
  // is the consensus reference (robust to a minority of biased outliers —
  // no candidate can drag it far on its own).
  for (int i = 0; i < n; ++i) {
    const size_t si = static_cast<size_t>(i);
    ws->median_scratch[si] =
        Clamp01(ws->candidate_report[si].query_progress);
  }
  std::sort(ws->median_scratch.begin(), ws->median_scratch.end());
  const double median =
      (n % 2 == 1)
          ? ws->median_scratch[static_cast<size_t>(n / 2)]
          : 0.5 * (ws->median_scratch[static_cast<size_t>(n / 2 - 1)] +
                   ws->median_scratch[static_cast<size_t>(n / 2)]);
  for (int i = 0; i < n; ++i) {
    const size_t si = static_cast<size_t>(i);
    ws->score[si].Observe(snapshot.time_ms,
                          ws->candidate_report[si].query_progress, median);
    ws->score_value[si] = ws->score[si].Score(options_.min_observations);
  }

  // 3. Hysteresis-damped selection over the scores.
  const int winner = ws->selector.Update(ws->score_value.data(), n,
                                         options_.hysteresis_margin,
                                         options_.switch_ticks);
  const size_t wi = static_cast<size_t>(winner);

  // 4. Trusted set: the winner, plus every candidate whose score is within
  // trust_factor of the best finite score.
  double best_score = kInf;
  for (int i = 0; i < n; ++i) {
    best_score = std::min(best_score, ws->score_value[static_cast<size_t>(i)]);
  }

  report->winner = winner;
  report->winner_name = options_.candidates[wi].name.c_str();
  report->selected = ws->candidate_report[wi];
  // Output vectors reuse their capacity after the first call on a report
  // that is itself reused (monitor sessions hold one per session).
  report->candidate_progress.resize(  // LQS_ALLOC_OK("capacity-reusing resize to the fixed candidate count; allocates only on a fresh report object")
      static_cast<size_t>(n));
  report->candidate_score.resize(  // LQS_ALLOC_OK("capacity-reusing resize to the fixed candidate count; allocates only on a fresh report object")
      static_cast<size_t>(n));
  report->candidate_trusted.resize(  // LQS_ALLOC_OK("capacity-reusing resize to the fixed candidate count; allocates only on a fresh report object")
      static_cast<size_t>(n));

  double band_lo = kInf, band_hi = -kInf;
  double blend_num = 0, blend_den = 0;
  for (int i = 0; i < n; ++i) {
    const size_t si = static_cast<size_t>(i);
    const double progress = Clamp01(ws->candidate_report[si].query_progress);
    const double score = ws->score_value[si];
    const bool trusted =
        i == winner ||
        (std::isfinite(score) && std::isfinite(best_score) &&
         score <= options_.trust_factor * best_score);
    report->candidate_progress[si] = progress;
    report->candidate_score[si] = score;
    report->candidate_trusted[si] = trusted ? 1 : 0;
    if (trusted) {
      band_lo = std::min(band_lo, progress);
      band_hi = std::max(band_hi, progress);
      if (std::isfinite(score)) {
        const double weight = 1.0 / (score + kScoreEpsilon);
        blend_num += weight * progress;
        blend_den += weight;
      }
    }
  }
  report->band_lo = Clamp01(band_lo);
  report->band_hi = Clamp01(band_hi);

  const double selected_progress =
      Clamp01(ws->candidate_report[wi].query_progress);
  // No trusted candidate has a finite score during warm-up: the blend
  // degenerates to the fallback winner.
  report->blended_progress =
      blend_den > 0 ? blend_num / blend_den : selected_progress;
  report->query_progress =
      options_.blend ? report->blended_progress : selected_progress;

  // 5. Telemetry.
  ws->stats.calls += 1;
  ws->stats.candidate_estimates += static_cast<uint64_t>(n);
  ws->stats.switches = ws->selector.switches;
  ws->stats.selected_ticks[wi] += 1;
}

}  // namespace lqs
