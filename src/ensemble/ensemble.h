#ifndef LQS_ENSEMBLE_ENSEMBLE_H_
#define LQS_ENSEMBLE_ENSEMBLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/deterministic.h"
#include "common/noalloc.h"
#include "dmv/query_profile.h"
#include "exec/plan.h"
#include "lqs/estimator.h"
#include "storage/catalog.h"

namespace lqs {

/// One ensemble candidate: a named EstimatorOptions configuration. The
/// default set (DefaultEnsembleCandidates) is the four shared-registry
/// presets plus parameter variants, the candidate pool König et al. select
/// from online ("A Statistical Approach Towards Robust Progress
/// Estimation": no single estimator wins across workloads).
struct EnsembleCandidate {
  std::string name;
  EstimatorOptions options;
};

/// Knobs of the ensemble. Defaults are the configuration the
/// bench/ensemble_accuracy acceptance run gates on.
struct EnsembleOptions {
  /// Candidate pool; empty selects DefaultEnsembleCandidates(). The first
  /// candidate is the fallback winner while no candidate has enough
  /// observations to be scored (the default pool puts the shipping "lqs"
  /// preset first for exactly that reason).
  std::vector<EnsembleCandidate> candidates;
  /// Samples of the per-candidate scoring ring (fixed capacity — the
  /// scoring state is O(candidates * ring) and never grows). Short enough
  /// that the score tracks the current execution phase; the consensus
  /// term, not ring width, is what exposes smoothly-biased candidates.
  int ring_capacity = 16;
  /// Observations a candidate needs before its score is finite (and it can
  /// win or join the trusted band on merit).
  int min_observations = 8;
  /// Relative score improvement a challenger must show over the incumbent
  /// winner before the switch countdown starts: switch only when
  /// challenger_score < winner_score * (1 - hysteresis_margin). The default
  /// is deliberately demanding (2x better): ETA stability is a proxy — a
  /// smoothly-biased candidate can look locally stable — so switching away
  /// from the shipping fallback needs strong, sustained evidence
  /// (bench/ensemble_accuracy gates on the resulting robustness).
  double hysteresis_margin = 0.5;
  /// Consecutive estimates the challenger must stay that much better
  /// before the winner actually changes (flap damping).
  int switch_ticks = 8;
  /// Candidates whose score is within trust_factor of the best score form
  /// the trusted set behind the uncertainty band and the blend.
  double trust_factor = 3.0;
  /// Report the inverse-score blend across trusted candidates as the
  /// headline progress instead of the selected candidate's progress. The
  /// selected report is emitted either way.
  bool blend = false;
  /// Forwarded to every candidate (workspace short-circuits on/off, see
  /// EstimatorOptions::incremental).
  bool incremental = true;
  /// Optional wall-clock source for per-candidate latency TELEMETRY only
  /// (MonitorService injects its latency clock). Latencies land in
  /// Workspace::Stats and never in any report, so the determinism
  /// contract on the output bytes is unaffected. Null disables timing and
  /// keeps EstimateInto free of any clock read.
  double (*latency_clock_ms)() = nullptr;
};

/// The default candidate pool: every shared-registry preset under its
/// canonical name, plus two parameter variants ("lqs_interp": prior-work
/// interpolated refinement [22]; "refined_weighted": §5.1
/// bounding+refinement with §4.6 weights).
std::vector<EnsembleCandidate> DefaultEnsembleCandidates();

/// Online trustworthiness score of one candidate over a fixed-capacity ring
/// of its recent estimates. Two bounded signals combine (lower is better,
/// +infinity until min_observations samples have been seen):
///
///  1. ETA stability (progress-rate consistency): at estimate (t, p) the
///     candidate implicitly predicts total time t / p; an estimator whose
///     progress tracks reality predicts the same total every time, so the
///     normalized dispersion of the ring's predictions measures rate
///     consistency. Alone this signal is gameable — a proportionally
///     biased estimator (progress = c x truth) predicts a perfectly
///     CONSTANT wrong total T/c — hence:
///  2. Consensus deviation: mean distance of the candidate's progress from
///     the per-tick median across all candidates. A robust-statistics
///     outlier test — smoothly biased candidates sit far from the median
///     pack and pay for it, while the median itself needs no ground truth.
class CandidateScore {
 public:
  /// Sizes the ring. Allocation boundary — called once per workspace
  /// binding, never from steady-state estimation.
  void Prepare(int capacity);

  /// Records one estimate: the candidate's progress at virtual time
  /// `time_ms`, plus the median progress across all candidates at that
  /// tick. A sample at the same time as the previous one replaces it
  /// instead of pushing (a monitor re-estimating a held snapshot must not
  /// flood the ring with duplicates). Progress below `kMinProgress`
  /// carries no usable ETA and is ignored.
  LQS_NOALLOC void Observe(double time_ms, double progress,
                           double median_progress);

  /// The combined score: normalized ETA dispersion (mean absolute
  /// deviation of the ring's predicted totals over their mean) plus the
  /// ring's mean consensus deviation. +infinity until `min_observations`
  /// samples are in the ring.
  LQS_NOALLOC double Score(int min_observations) const;

  int observations() const { return count_; }

  /// Progress floor below which a sample yields no ETA prediction.
  static constexpr double kMinProgress = 1e-4;

 private:
  std::vector<double> eta_;   ///< ring of predicted total times
  std::vector<double> dev_;   ///< ring of |progress - median| deviations
  std::vector<double> time_;  ///< sample times (duplicate-time replacement)
  int head_ = 0;              ///< next slot to overwrite
  int count_ = 0;             ///< valid entries, <= capacity
};

/// Winner selection with hysteresis, as pure replayable logic (the flap
/// tests drive it with crafted score sequences). Lower scores are better;
/// ties break to the lowest index so selection is deterministic.
struct HysteresisSelector {
  int winner = -1;
  int challenger = -1;
  int streak = 0;
  uint64_t switches = 0;

  /// Observes one round of scores and returns the selected index. A
  /// challenger must beat the incumbent by `margin` (relative) for
  /// `switch_ticks` consecutive rounds to take over; an incumbent whose
  /// score has gone non-finite is abandoned immediately.
  LQS_NOALLOC int Update(const double* scores, int count, double margin,
                         int switch_ticks);
};

/// Output of one ensemble estimate.
struct EnsembleReport {
  /// Full report of the selected candidate (what the dashboard renders
  /// under the query, exactly like a single-estimator session).
  ProgressReport selected;
  /// Index + registry name of the selected candidate.
  int winner = -1;
  const char* winner_name = "";
  /// Headline progress: the selected candidate's query progress, or the
  /// inverse-score blend across trusted candidates when options.blend is
  /// set. Always within [band_lo, band_hi].
  double query_progress = 0;
  /// Uncertainty band: min/max query progress across the trusted
  /// candidates (always including the winner), clamped to [0, 1].
  double band_lo = 0;
  double band_hi = 0;
  /// Inverse-score blend across trusted candidates (filled regardless of
  /// options.blend, for diagnostics).
  double blended_progress = 0;
  /// Per-candidate query progress / score / trusted flag, indexed like
  /// options.candidates.
  std::vector<double> candidate_progress;
  std::vector<double> candidate_score;
  std::vector<uint8_t> candidate_trusted;
};

/// Robust online ensemble estimator: owns one ProgressEstimator per
/// candidate configuration, drives them all through the zero-allocation
/// EstimateInto path on every snapshot, scores each candidate online
/// against ETA stability, and emits a selected-or-blended estimate with an
/// uncertainty band. Selection is damped by hysteresis so the winner does
/// not flap between ticks.
///
/// Sharing model mirrors ProgressEstimator: the estimator is const and
/// shareable after construction (MonitorService caches one per
/// (plan, catalog, packed options) and shares it across sessions); all
/// per-session mutable state — candidate workspaces, score rings, the
/// selector — lives in the Workspace, one per ensemble per thread.
class EnsembleEstimator {
 public:
  /// Per-session scratch + scoring state. Binds to its ensemble on the
  /// first EstimateInto call and aborts if passed to a different one,
  /// exactly like ProgressEstimator::Workspace.
  struct Workspace {
    /// Observability counters (cumulative since construction).
    struct Stats {
      uint64_t calls = 0;
      /// Candidate EstimateInto calls (= calls * candidate count).
      uint64_t candidate_estimates = 0;
      /// Winner changes after the initial selection.
      uint64_t switches = 0;
      /// Cumulative per-candidate estimate latency, ms — telemetry, only
      /// populated when EnsembleOptions::latency_clock_ms is set.
      std::vector<double> candidate_latency_ms;
      /// Ticks each candidate spent as the selected winner.
      std::vector<uint64_t> selected_ticks;
    };
    Stats stats;

   private:
    friend class EnsembleEstimator;
    const EnsembleEstimator* owner = nullptr;
    std::vector<ProgressEstimator::Workspace> candidate_ws;
    std::vector<ProgressReport> candidate_report;
    std::vector<CandidateScore> score;
    std::vector<double> score_value;     ///< per-call scratch
    std::vector<double> median_scratch;  ///< per-call consensus sort buffer
    HysteresisSelector selector;
  };

  /// Builds one candidate estimator per entry of options.candidates (the
  /// default pool when empty). `plan` and `catalog` must outlive the
  /// ensemble.
  EnsembleEstimator(const Plan* plan, const Catalog* catalog,
                    EnsembleOptions options);

  /// Runs every candidate on `snapshot` through its per-candidate
  /// workspace, updates the scores and the hysteresis selection, and fills
  /// `*report` (vectors are re-sized in place, reusing capacity).
  /// LQS_NOALLOC: steady-state ensemble ticks must stay heap-free —
  /// statically checked by tools/lqs_verify (noalloc), dynamically by
  /// tests/estimator_alloc_test.cc. LQS_DETERMINISTIC: the report depends
  /// only on the sequence of snapshots fed to this workspace, never on
  /// wall-clock time or threads (the optional latency clock feeds
  /// Workspace::Stats telemetry only, the same carve-out as
  /// MonitorService::ComputeStatus); with a single candidate the selected
  /// report is bit-identical to that candidate's plain EstimateInto for
  /// any replay order.
  LQS_NOALLOC LQS_DETERMINISTIC void EstimateInto(
      const ProfileSnapshot& snapshot, Workspace* workspace,
      EnsembleReport* report) const;

  int candidate_count() const { return static_cast<int>(candidates_.size()); }
  const EnsembleCandidate& candidate(int index) const {
    return options_.candidates[static_cast<size_t>(index)];
  }
  const ProgressEstimator& candidate_estimator(int index) const {
    return *candidates_[static_cast<size_t>(index)];
  }
  const EnsembleOptions& options() const { return options_; }
  const Plan& plan() const { return *plan_; }

 private:
  /// Sizes the workspace (candidate workspaces, rings, report vectors) on
  /// first use and pins it to this ensemble.
  LQS_ALLOC_OK(
      "first-call sizing path: allocates exactly once per workspace "
      "binding, a no-op on every steady-state call (owner check at entry)")
  void PrepareWorkspace(Workspace* ws) const;

  const Plan* plan_;
  const Catalog* catalog_;
  EnsembleOptions options_;
  std::vector<std::unique_ptr<ProgressEstimator>> candidates_;
};

}  // namespace lqs

#endif  // LQS_ENSEMBLE_ENSEMBLE_H_
