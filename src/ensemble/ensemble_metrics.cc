#include "ensemble/ensemble_metrics.h"

#include <cmath>

namespace lqs {

namespace {

/// GetNext-model progress with exact cardinalities — the same §5
/// Error_count reference term EvaluateQuery uses.
double TrueCountProgress(const ProfileSnapshot& snap,
                         const ProfileSnapshot& final_snap) {
  double sum_k = 0;
  double sum_n = 0;
  for (size_t i = 0; i < snap.operators.size(); ++i) {
    sum_k += static_cast<double>(snap.operators[i].row_count);
    sum_n += static_cast<double>(final_snap.operators[i].row_count);
  }
  return sum_n > 0 ? sum_k / sum_n : 1.0;
}

}  // namespace

EnsembleEvaluation EvaluateEnsemble(const Plan& plan, const Catalog& catalog,
                                    const ProfileTrace& trace,
                                    const EnsembleOptions& options) {
  EnsembleEvaluation eval;
  EnsembleEstimator ensemble(&plan, &catalog, options);
  const ProfileSnapshot& final_snap = trace.final_snapshot;
  const double total = trace.total_elapsed_ms;

  // One workspace + report across the whole replay: the loop body reuses
  // their buffers instead of reallocating per snapshot.
  EnsembleEstimator::Workspace workspace;
  EnsembleReport report;
  for (const ProfileSnapshot& snap : trace.snapshots) {
    ensemble.EstimateInto(snap, &workspace, &report);
    const double true_count = TrueCountProgress(snap, final_snap);
    const double time_frac = total > 0 ? snap.time_ms / total : 1.0;

    eval.error_count += std::abs(report.query_progress - true_count);
    eval.error_time += std::abs(report.query_progress - time_frac);
    eval.band_width += report.band_hi - report.band_lo;
    if (time_frac >= report.band_lo && time_frac <= report.band_hi) {
      eval.band_coverage += 1;
    }
    eval.observations++;
    eval.final_winner = report.winner;
  }

  if (eval.observations > 0) {
    eval.error_count /= eval.observations;
    eval.error_time /= eval.observations;
    eval.band_width /= eval.observations;
    eval.band_coverage /= eval.observations;
  }
  eval.switches = workspace.stats.switches;
  eval.selected_ticks = workspace.stats.selected_ticks;
  return eval;
}

}  // namespace lqs
