#include "optimizer/annotate.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "exec/cost_constants.h"
#include "storage/statistics.h"

namespace lqs {

namespace {

/// Provenance of an output column: which base-table column it carries, if
/// any. Drives histogram/NDV lookups for predicates and join keys above the
/// leaves.
struct ColumnOrigin {
  std::string table;  // empty = computed / unknown
  int column = -1;

  bool known() const { return !table.empty(); }
};

struct AnnotateState {
  const Catalog* catalog;
  const Plan* plan;
  OptimizerOptions options;
  // Per node id: provenance of each output column.
  std::vector<std::vector<ColumnOrigin>> origins;
};

const Histogram* OriginHistogram(const AnnotateState& st,
                                 const ColumnOrigin& origin) {
  if (!origin.known()) return nullptr;
  const TableStatistics* stats = st.catalog->GetStatistics(origin.table);
  if (stats == nullptr) return nullptr;
  return &stats->column(origin.column);
}

/// Distinct-value estimate for a column of a node's output, capped by the
/// node's (estimated) row count.
double EstimateNdv(const AnnotateState& st, const PlanNode& node, int column) {
  const auto& origins = st.origins[node.id];
  double ndv = std::max(1.0, node.est_rows / 2.0);  // fallback guess
  if (column >= 0 && column < static_cast<int>(origins.size())) {
    const Histogram* hist = OriginHistogram(st, origins[column]);
    if (hist != nullptr) ndv = hist->EstimateDistinct();
  }
  return std::max(1.0, std::min(ndv, std::max(1.0, node.est_rows)));
}

/// Classical selectivity estimation: histograms for column-vs-literal,
/// independence for AND, inclusion-exclusion for OR, magic constants
/// elsewhere. These assumptions are the paper's "known hard problem of
/// cardinality estimation" in miniature.
double EstimateSelectivity(const AnnotateState& st, const Expr* expr,
                           const std::vector<ColumnOrigin>& origins) {
  if (expr == nullptr) return 1.0;
  switch (expr->kind()) {
    case Expr::Kind::kAnd:
      return EstimateSelectivity(st, expr->left(), origins) *
             EstimateSelectivity(st, expr->right(), origins);
    case Expr::Kind::kOr: {
      double a = EstimateSelectivity(st, expr->left(), origins);
      double b = EstimateSelectivity(st, expr->right(), origins);
      return a + b - a * b;
    }
    case Expr::Kind::kCompare: {
      int column = -1;
      CompareOp op = CompareOp::kEq;
      Value literal;
      if (expr->AsColumnCompareLiteral(&column, &op, &literal) &&
          column < static_cast<int>(origins.size())) {
        const Histogram* hist = OriginHistogram(st, origins[column]);
        if (hist != nullptr) return hist->EstimateSelectivity(op, literal);
      }
      return op == CompareOp::kEq ? 0.1 : 0.3;
    }
    default:
      return 0.5;
  }
}

/// Deterministic stale-statistics emulation: scales a selectivity by
/// exp(U(-e, e)), seeded by (seed, node id).
double AmplifyError(const AnnotateState& st, int node_id, double sel) {
  if (st.options.selectivity_error <= 0.0) return sel;
  Rng rng(st.options.seed * 0x9e3779b97f4a7c15ULL +
          static_cast<uint64_t>(node_id));
  double e = st.options.selectivity_error;
  double factor = std::exp((rng.NextDouble() * 2.0 - 1.0) * e);
  return std::clamp(sel * factor, 1e-7, 1.0);
}

double PredCpuPerRow(const Expr* expr) {
  return expr == nullptr ? 0.0 : expr->NodeCount() * cost::kCpuPredNodeMs;
}

double SpillIoMs(double rows) {
  if (rows <= static_cast<double>(cost::kMemoryRows)) return 0.0;
  return 2.0 * (rows / static_cast<double>(kRowsPerPage)) *
         cost::kIoSpillPageMs;
}

// Forward declaration.
Status Annotate(AnnotateState& st, PlanNode& node);

/// Scales every estimate in the subtree by `factor` (used to convert
/// per-execution estimates of a NL inner subtree to totals).
void ScaleSubtree(PlanNode& node, double factor) {
  node.VisitMutable([factor](PlanNode& n) {
    n.est_rows *= factor;
    n.est_cpu_ms *= factor;
    n.est_io_ms *= factor;
    n.est_rebinds *= factor;
  });
}

Status AnnotateScan(AnnotateState& st, PlanNode& node) {
  const Table* table = st.catalog->GetTable(node.table_name);
  if (table == nullptr) {
    return Status::NotFound("annotate: unknown table " + node.table_name);
  }
  const double table_rows = static_cast<double>(table->num_rows());
  const auto& origins = st.origins[node.id];

  double sel = 1.0;
  if (node.pushed_predicate != nullptr) {
    sel = AmplifyError(st, node.id,
                       EstimateSelectivity(st, node.pushed_predicate.get(),
                                           origins));
  }
  // Bitmap semi-join reduction (§4.3): estimated as the fraction of the
  // probe column's domain covered by the (estimated) build keys. Often very
  // wrong in practice — which is the point.
  if (node.bitmap_source_id >= 0) {
    const PlanNode& source = st.plan->node(node.bitmap_source_id);
    double probe_ndv = EstimateNdv(st, node, node.bitmap_probe_column);
    double build_keys = std::max(1.0, source.est_rows);
    sel *= std::clamp(build_keys / probe_ndv, 0.0, 1.0);
  }

  double scanned_rows = table_rows;  // rows examined by the access path
  double io_ms = 0.0;
  double cpu_ms = 0.0;
  switch (node.type) {
    case OpType::kTableScan:
    case OpType::kClusteredIndexScan:
    case OpType::kIndexScan: {
      io_ms = static_cast<double>(table->num_pages()) *
              cost::kIoSequentialPageMs;
      cpu_ms = scanned_rows *
               (cost::kCpuScanRowMs + PredCpuPerRow(node.pushed_predicate.get()));
      node.est_rows = table_rows * sel;
      break;
    }
    case OpType::kClusteredIndexSeek:
    case OpType::kIndexSeek: {
      // Range selectivity from the seek bounds when they are literals;
      // correlated seeks estimate one key group per execution.
      int key_col = table->clustered_column();
      if (node.type == OpType::kIndexSeek) {
        const OrderedIndex* idx = table->GetIndex(node.index_name);
        if (idx == nullptr)
          return Status::NotFound("annotate: unknown index " +
                                  node.index_name);
        key_col = idx->key_column();
      }
      const TableStatistics* stats = st.catalog->GetStatistics(node.table_name);
      double range_sel = 1.0;
      bool correlated = false;
      auto bound_sel = [&](const Expr* bound, CompareOp op) -> double {
        if (bound == nullptr) return 1.0;
        if (bound->kind() == Expr::Kind::kLiteral && stats != nullptr) {
          return stats->column(key_col).EstimateSelectivity(op,
                                                            bound->literal());
        }
        correlated = true;
        return 1.0;
      };
      double lo = bound_sel(node.seek_lo.get(), CompareOp::kGe);
      double hi = bound_sel(node.seek_hi.get(), CompareOp::kLe);
      range_sel = std::clamp(lo + hi - 1.0, 0.0, 1.0);
      if (correlated) {
        // Equality on the key per execution.
        double ndv = stats != nullptr
                         ? stats->column(key_col).EstimateDistinct()
                         : std::max(1.0, table_rows / 2);
        range_sel = 1.0 / std::max(1.0, ndv);
      }
      range_sel = AmplifyError(st, node.id, range_sel);
      scanned_rows = table_rows * range_sel;
      node.est_rows = scanned_rows * sel;
      double pages = std::max(1.0, scanned_rows /
                                       static_cast<double>(kRowsPerPage));
      io_ms = cost::kIoRandomPageMs +
              (pages - 1.0) * cost::kIoSequentialPageMs;
      cpu_ms = cost::kCpuSeekMs +
               scanned_rows * (cost::kCpuScanRowMs +
                               PredCpuPerRow(node.pushed_predicate.get()));
      break;
    }
    case OpType::kColumnstoreScan: {
      const ColumnstoreIndex* csi = st.catalog->GetColumnstore(node.table_name);
      double segments = csi != nullptr
                            ? static_cast<double>(csi->num_segments())
                            : std::max(1.0, table_rows / kRowsPerSegment);
      io_ms = segments * cost::kIoSegmentMs;
      cpu_ms = scanned_rows * (cost::kCpuBatchRowMs +
                               0.5 * PredCpuPerRow(node.pushed_predicate.get()));
      node.est_rows = table_rows * sel;
      break;
    }
    case OpType::kRidLookup: {
      // Per execution: one random page. Totals applied by the enclosing NLJ.
      node.est_rows = sel;  // one row per lookup, times pushed-pred sel
      io_ms = cost::kIoRandomPageMs;
      cpu_ms = cost::kCpuScanRowMs;
      break;
    }
    default:
      return Status::Internal("AnnotateScan: not a scan");
  }
  node.est_rows = std::max(0.0, node.est_rows);
  node.est_cpu_ms = cpu_ms;
  node.est_io_ms = io_ms;
  node.est_rebinds = 1;
  return Status::OK();
}

/// Derives column provenance for `node` from its children (parallels the
/// schema derivation in plan.cc).
void DeriveOrigins(AnnotateState& st, PlanNode& node) {
  std::vector<ColumnOrigin>& out = st.origins[node.id];
  out.clear();
  auto table_origins = [&](const std::string& table) {
    const Table* t = st.catalog->GetTable(table);
    if (t == nullptr) return;
    for (size_t c = 0; c < t->schema().num_columns(); ++c) {
      out.push_back({table, static_cast<int>(c)});
    }
  };
  switch (node.type) {
    case OpType::kTableScan:
    case OpType::kClusteredIndexScan:
    case OpType::kClusteredIndexSeek:
    case OpType::kIndexScan:
    case OpType::kColumnstoreScan:
    case OpType::kRidLookup:
      table_origins(node.table_name);
      break;
    case OpType::kIndexSeek: {
      const Table* t = st.catalog->GetTable(node.table_name);
      const OrderedIndex* idx =
          t == nullptr ? nullptr : t->GetIndex(node.index_name);
      if (idx != nullptr) out.push_back({node.table_name, idx->key_column()});
      else out.push_back({});
      out.push_back({});  // rid
      break;
    }
    case OpType::kConstantScan:
      out.resize(node.output_schema.num_columns());
      break;
    case OpType::kComputeScalar: {
      out = st.origins[node.child(0)->id];
      // Computed columns: pass through provenance of a bare column ref.
      for (const auto& p : node.projections) {
        if (p->kind() == Expr::Kind::kColumn) {
          out.push_back(out[p->column_index()]);
        } else {
          out.push_back({});
        }
      }
      break;
    }
    case OpType::kHashJoin:
    case OpType::kMergeJoin:
    case OpType::kNestedLoopJoin: {
      const auto& outer = st.origins[node.child(0)->id];
      const auto& inner = st.origins[node.child(1)->id];
      switch (node.join_kind) {
        case JoinKind::kLeftSemi:
        case JoinKind::kLeftAnti:
          out = outer;
          break;
        case JoinKind::kRightSemi:
          out = inner;
          break;
        default:
          out = outer;
          out.insert(out.end(), inner.begin(), inner.end());
          break;
      }
      break;
    }
    case OpType::kHashAggregate:
    case OpType::kStreamAggregate: {
      const auto& in = st.origins[node.child(0)->id];
      for (int g : node.group_columns) out.push_back(in[g]);
      out.resize(out.size() + node.aggregates.size());
      break;
    }
    default:
      if (!node.children.empty()) out = st.origins[node.child(0)->id];
      break;
  }
  // Defensive: keep origin arity in sync with the schema.
  out.resize(node.output_schema.num_columns());
}

Status AnnotateJoin(AnnotateState& st, PlanNode& node) {
  PlanNode& outer = *node.children[0];
  PlanNode& inner = *node.children[1];
  const double n_outer = std::max(0.0, outer.est_rows);
  const double n_inner = std::max(0.0, inner.est_rows);

  // Equijoin selectivity by containment: |O ⋈ I| = |O|·|I| / max(ndv_O, ndv_I).
  double join_rows;
  if (!node.outer_keys.empty()) {
    double ndv_o = 1.0;
    double ndv_i = 1.0;
    for (size_t i = 0; i < node.outer_keys.size(); ++i) {
      ndv_o = std::max(ndv_o, EstimateNdv(st, outer, node.outer_keys[i]));
      ndv_i = std::max(ndv_i, EstimateNdv(st, inner, node.inner_keys[i]));
    }
    join_rows = n_outer * n_inner / std::max(ndv_o, ndv_i);
  } else {
    join_rows = n_outer * n_inner;  // cross product
  }
  if (node.predicate != nullptr) {
    join_rows *= EstimateSelectivity(st, node.predicate.get(),
                                     st.origins[node.id]);
  }

  // Match probability of a preserved-side row (for semi/anti/outer kinds).
  double p_outer_match =
      n_outer > 0 ? std::clamp(join_rows / n_outer, 0.0, 1.0) : 0.0;
  double p_inner_match =
      n_inner > 0 ? std::clamp(join_rows / n_inner, 0.0, 1.0) : 0.0;

  switch (node.join_kind) {
    case JoinKind::kInner:
      node.est_rows = join_rows;
      break;
    case JoinKind::kLeftOuter:
      node.est_rows = join_rows + n_outer * (1.0 - p_outer_match);
      break;
    case JoinKind::kRightOuter:
      node.est_rows = join_rows + n_inner * (1.0 - p_inner_match);
      break;
    case JoinKind::kFullOuter:
      node.est_rows = join_rows + n_outer * (1.0 - p_outer_match) +
                      n_inner * (1.0 - p_inner_match);
      break;
    case JoinKind::kLeftSemi:
      node.est_rows = n_outer * p_outer_match;
      break;
    case JoinKind::kLeftAnti:
      node.est_rows = n_outer * (1.0 - p_outer_match);
      break;
    case JoinKind::kRightSemi:
      node.est_rows = n_inner * p_inner_match;
      break;
  }

  switch (node.type) {
    case OpType::kHashJoin:
      // Each emitted row costs another probe-table touch, matching the
      // executor's per-match charge.
      node.est_cpu_ms = n_outer * cost::kCpuHashBuildRowMs +
                        (n_inner + node.est_rows) * cost::kCpuHashProbeRowMs;
      node.est_io_ms = SpillIoMs(n_outer);
      break;
    case OpType::kMergeJoin:
      node.est_cpu_ms = (n_outer + n_inner) * cost::kCpuMergeRowMs +
                        node.est_rows * cost::kCpuMergeRowMs;
      node.est_io_ms = 0;
      break;
    case OpType::kNestedLoopJoin: {
      node.est_cpu_ms = n_outer * cost::kCpuNljRowMs +
                        node.est_rows * cost::kCpuNljRowMs;
      node.est_io_ms = 0;
      // The inner subtree executes once per outer row: convert its
      // per-execution estimates to totals (the DMV reports cumulative
      // counts). est_rebinds records the estimated executions.
      double executions = std::max(1.0, n_outer);
      ScaleSubtree(inner, executions);
      inner.VisitMutable(
          [](PlanNode& n) { n.est_rebinds = std::max(n.est_rebinds, 1.0); });
      // est_rebinds of the direct inner child = estimated executions.
      inner.est_rebinds = executions;
      break;
    }
    default:
      return Status::Internal("AnnotateJoin: not a join");
  }
  node.est_rebinds = 1;
  return Status::OK();
}

Status Annotate(AnnotateState& st, PlanNode& node) {
  for (auto& c : node.children) LQS_RETURN_IF_ERROR(Annotate(st, *c));
  DeriveOrigins(st, node);

  switch (node.type) {
    case OpType::kTableScan:
    case OpType::kClusteredIndexScan:
    case OpType::kClusteredIndexSeek:
    case OpType::kIndexScan:
    case OpType::kIndexSeek:
    case OpType::kColumnstoreScan:
    case OpType::kRidLookup: {
      LQS_RETURN_IF_ERROR(AnnotateScan(st, node));
      if (node.type == OpType::kIndexSeek) {
        // Seeks output (key, rid) with no pushed predicate applied here.
        const Table* t = st.catalog->GetTable(node.table_name);
        (void)t;
      }
      return Status::OK();
    }
    case OpType::kConstantScan:
      node.est_rows = static_cast<double>(node.constant_rows.size());
      node.est_cpu_ms = node.est_rows * cost::kCpuRowPassMs;
      node.est_io_ms = 0;
      return Status::OK();
    default:
      break;
  }

  const PlanNode* child0 = node.children.empty() ? nullptr : node.child(0);
  const double in_rows = child0 == nullptr ? 0 : std::max(0.0, child0->est_rows);

  switch (node.type) {
    case OpType::kFilter: {
      double sel = AmplifyError(
          st, node.id,
          EstimateSelectivity(st, node.predicate.get(),
                              st.origins[child0->id]));
      node.est_rows = in_rows * sel;
      node.est_cpu_ms =
          in_rows * (cost::kCpuFilterRowMs + PredCpuPerRow(node.predicate.get()));
      node.est_io_ms = 0;
      break;
    }
    case OpType::kComputeScalar:
      node.est_rows = in_rows;
      node.est_cpu_ms = in_rows * cost::kCpuComputeRowMs *
                        std::max<size_t>(1, node.projections.size());
      node.est_io_ms = 0;
      break;
    case OpType::kTop:
      node.est_rows = node.top_n >= 0
                          ? std::min(in_rows, static_cast<double>(node.top_n))
                          : in_rows;
      node.est_cpu_ms = node.est_rows * cost::kCpuRowPassMs;
      node.est_io_ms = 0;
      break;
    case OpType::kSegment:
      node.est_rows = in_rows;
      node.est_cpu_ms = in_rows * cost::kCpuRowPassMs;
      node.est_io_ms = 0;
      break;
    case OpType::kConcatenation: {
      node.est_rows = 0;
      for (const auto& c : node.children) node.est_rows += c->est_rows;
      node.est_cpu_ms = node.est_rows * cost::kCpuRowPassMs;
      node.est_io_ms = 0;
      break;
    }
    case OpType::kBitmapCreate:
      node.est_rows = in_rows;
      node.est_cpu_ms = in_rows * cost::kCpuBitmapInsertRowMs;
      node.est_io_ms = 0;
      break;
    case OpType::kSort:
      node.est_rows = in_rows;
      node.est_cpu_ms =
          in_rows * cost::kCpuSortInputRowMs +
          in_rows * std::log2(std::max(2.0, in_rows)) * cost::kCpuSortRowMs +
          in_rows * cost::kCpuRowPassMs;
      node.est_io_ms = SpillIoMs(in_rows);
      break;
    case OpType::kDistinctSort: {
      double ndv = in_rows / 2;
      if (!node.sort_columns.empty()) {
        ndv = 1.0;
        for (int c : node.sort_columns) {
          ndv *= EstimateNdv(st, *child0, c);
        }
      }
      node.est_rows = std::min(in_rows, std::max(1.0, ndv));
      node.est_cpu_ms =
          in_rows * cost::kCpuSortInputRowMs +
          in_rows * std::log2(std::max(2.0, in_rows)) * cost::kCpuSortRowMs +
          node.est_rows * cost::kCpuRowPassMs;
      node.est_io_ms = SpillIoMs(in_rows);
      break;
    }
    case OpType::kTopNSort: {
      double n = node.top_n >= 0 ? static_cast<double>(node.top_n) : in_rows;
      node.est_rows = std::min(in_rows, n);
      node.est_cpu_ms = in_rows * (cost::kCpuSortInputRowMs +
                                   std::log2(std::max(2.0, n)) *
                                       cost::kCpuSortRowMs) +
                        node.est_rows * cost::kCpuRowPassMs;
      node.est_io_ms = 0;
      break;
    }
    case OpType::kHashJoin:
    case OpType::kMergeJoin:
    case OpType::kNestedLoopJoin:
      return AnnotateJoin(st, node);
    case OpType::kHashAggregate:
    case OpType::kStreamAggregate: {
      double groups = 1.0;
      if (!node.group_columns.empty()) {
        groups = 1.0;
        for (int g : node.group_columns) {
          groups *= EstimateNdv(st, *child0, g);
        }
        groups = std::min(groups, std::max(1.0, in_rows / 2.0));
      }
      node.est_rows = std::max(1.0, groups);
      if (node.type == OpType::kHashAggregate) {
        node.est_cpu_ms = in_rows * cost::kCpuAggInputRowMs +
                          node.est_rows * cost::kCpuAggOutputRowMs;
        node.est_io_ms = SpillIoMs(groups);
      } else {
        node.est_cpu_ms = in_rows * cost::kCpuStreamAggRowMs;
        node.est_io_ms = 0;
      }
      break;
    }
    case OpType::kEagerSpool:
    case OpType::kLazySpool:
      // Output totals across rebinds are unknown at plan time; assume one
      // pass (the bounding logic marks spool upper bounds unbounded).
      node.est_rows = in_rows;
      node.est_cpu_ms = in_rows * (cost::kCpuSpoolWriteRowMs +
                                   cost::kCpuSpoolReadRowMs);
      node.est_io_ms = 0;
      break;
    case OpType::kGatherStreams:
    case OpType::kRepartitionStreams:
    case OpType::kDistributeStreams:
      node.est_rows = in_rows;
      node.est_cpu_ms = in_rows * (cost::kCpuExchangeBufferRowMs +
                                   cost::kCpuExchangeRowMs);
      node.est_io_ms = 0;
      break;
    default:
      return Status::Internal("Annotate: unhandled operator");
  }
  node.est_rebinds = 1;
  return Status::OK();
}

}  // namespace

Status AnnotatePlan(Plan* plan, const Catalog& catalog,
                    const OptimizerOptions& options) {
  if (plan == nullptr || plan->root == nullptr) {
    return Status::InvalidArgument("AnnotatePlan: null plan");
  }
  AnnotateState st;
  st.catalog = &catalog;
  st.plan = plan;
  st.options = options;
  st.origins.resize(plan->size());
  return Annotate(st, *plan->root);
}

}  // namespace lqs
