#ifndef LQS_OPTIMIZER_ANNOTATE_H_
#define LQS_OPTIMIZER_ANNOTATE_H_

#include <cstdint>

#include "common/status.h"
#include "exec/plan.h"
#include "storage/catalog.h"

namespace lqs {

/// Controls the cardinality-estimation pass. The estimator is intentionally
/// a classical one — histograms, attribute-independence, containment — so it
/// errs in the same ways the paper's target (the SQL Server optimizer) errs
/// on skewed/correlated data; `selectivity_error` can amplify that further
/// to emulate stale statistics.
struct OptimizerOptions {
  /// Each base-predicate selectivity estimate is multiplied by a
  /// deterministic random factor exp(U(-e, e)); 0 disables.
  double selectivity_error = 0.0;
  uint64_t seed = 42;
};

/// Fills est_rows / est_cpu_ms / est_io_ms / est_rebinds on every node of
/// the plan — the "showplan" annotations the client-side progress estimator
/// consumes (§2.2). Inner subtrees of Nested Loops joins receive TOTAL
/// estimates across all estimated executions (matching the cumulative
/// row_count the DMV reports).
///
/// The cost formulas mirror the executor's virtual-time charges evaluated at
/// the ESTIMATED cardinalities, so cost error is driven by cardinality error.
Status AnnotatePlan(Plan* plan, const Catalog& catalog,
                    const OptimizerOptions& options);

}  // namespace lqs

#endif  // LQS_OPTIMIZER_ANNOTATE_H_
