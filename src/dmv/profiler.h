#ifndef LQS_DMV_PROFILER_H_
#define LQS_DMV_PROFILER_H_

#include <cmath>
#include <vector>

#include "common/statusor.h"
#include "common/stringf.h"
#include "dmv/query_profile.h"

namespace lqs {

/// Collects DMV snapshots at fixed virtual-time intervals while the executor
/// runs — the stand-in for SSMS polling sys.dm_exec_query_profiles every
/// 500 ms (§2.2). The executor calls MaybePoll() after every virtual-clock
/// advance; Finalize() records the completion snapshot.
///
/// Concurrency audit (DESIGN.md §9): thread-compatible, not thread-safe —
/// one Profiler belongs to one executor thread, and the `live` counters it
/// samples are that executor's own state. Concurrency only begins after
/// TakeTrace(), at which point the trace is immutable (see ProfileTrace).
class Profiler {
 public:
  /// A polling interval must be a positive, finite number of virtual ms:
  /// zero or negative would degenerate MaybePoll's catch-up loop into a
  /// spin (it advances last_poll_ms_ by interval_ms_ until it catches now),
  /// and NaN/inf silently disable polling. Checked by Create and by the
  /// executor before it constructs a profiler.
  static Status ValidateIntervalMs(double interval_ms) {
    if (!std::isfinite(interval_ms) || interval_ms <= 0) {
      return Status::InvalidArgument(
          StringF("profiler: snapshot interval must be positive and finite, "
                  "got %g ms",
                  interval_ms));
    }
    return Status::OK();
  }

  /// Validating factory. `live` points at the executor-owned live counters
  /// (indexed by node id) and must outlive the profiler.
  static StatusOr<Profiler> Create(const std::vector<OperatorProfile>* live,
                                   double interval_ms) {
    LQS_RETURN_IF_ERROR(ValidateIntervalMs(interval_ms));
    return Profiler(live, interval_ms);
  }

  /// Direct construction requires a valid interval (see ValidateIntervalMs);
  /// callers that cannot guarantee one must go through Create. An invalid
  /// interval is clamped to the 500 ms DMV default so a misuse that slips
  /// past the Status path degrades to coarse polling instead of spinning.
  Profiler(const std::vector<OperatorProfile>* live, double interval_ms)
      : live_(live),
        interval_ms_(ValidateIntervalMs(interval_ms).ok() ? interval_ms
                                                          : 500.0) {}

  /// Takes a snapshot if at least interval_ms has elapsed since the last
  /// one. The very first call always snapshots: a query shorter than one
  /// polling interval would otherwise finish with an empty trace, and
  /// monitors would report 0% until completion. That initial sample does
  /// not shift the grid — later polls stay on multiples of interval_ms.
  void MaybePoll(double now_ms) {
    bool take = !polled_once_;
    polled_once_ = true;
    if (now_ms - last_poll_ms_ >= interval_ms_) {
      // A long operator stall may span several polling intervals; emit the
      // snapshot once but advance the phase so polls stay on the grid.
      while (now_ms - last_poll_ms_ >= interval_ms_) {
        last_poll_ms_ += interval_ms_;
      }
      take = true;
    }
    if (take) trace_.snapshots.push_back(ProfileSnapshot{now_ms, *live_});
  }

  void Finalize(double end_ms) {
    trace_.final_snapshot = ProfileSnapshot{end_ms, *live_};
    trace_.total_elapsed_ms = end_ms;
  }

  ProfileTrace TakeTrace() { return std::move(trace_); }

 private:
  const std::vector<OperatorProfile>* live_;
  double interval_ms_;
  double last_poll_ms_ = 0;
  bool polled_once_ = false;
  ProfileTrace trace_;
};

}  // namespace lqs

#endif  // LQS_DMV_PROFILER_H_
