#ifndef LQS_DMV_QUERY_PROFILE_H_
#define LQS_DMV_QUERY_PROFILE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/op_type.h"

namespace lqs {

/// Per-operator counters, the analogue of one row of
/// sys.dm_exec_query_profiles (§2.1). The executor updates these live; the
/// profiler copies them into snapshots at each (virtual) polling interval.
///
/// Field availability mirrors what the paper says the DMV exposes: actual
/// and estimated row counts, elapsed/CPU time, physical reads, rebinds, and
/// (for batch mode) segment counts. Internal operator state such as the
/// number of buffered rows in an Exchange is deliberately NOT exposed — §7
/// lists that as future work — and the estimators never read it.
struct OperatorProfile {
  int node_id = -1;
  int parent_node_id = -1;
  OpType op_type = OpType::kTableScan;

  /// GetNext calls that returned a row, i.e. K_i in the paper's notation.
  uint64_t row_count = 0;
  /// Optimizer estimate of total output rows (from the showplan).
  double estimate_row_count = 0;
  /// Number of times the operator was re-opened (inner side of nested
  /// loops). Matches actual_rebinds in the real DMV.
  uint64_t rebind_count = 0;

  /// Logical page reads issued by this operator (scans/seeks/lookups).
  uint64_t logical_read_count = 0;
  /// Column segments fully processed so far (batch-mode operators, §4.7).
  uint64_t segment_read_count = 0;
  /// Total segments the operator will touch (from sys.column_store_segments
  /// plus elimination; populated at Open).
  uint64_t segment_total_count = 0;

  /// Virtual milliseconds: when the operator first became active, CPU time
  /// charged by the operator itself, and I/O wait it incurred.
  double open_time_ms = -1.0;
  double cpu_time_ms = 0;
  double io_time_ms = 0;
  /// Time of the last activity observed at this operator.
  double last_active_ms = -1.0;
  /// Time the first output row was produced (-1 until then).
  double first_row_ms = -1.0;
  /// Time Close() completed (-1 while executing).
  double close_time_ms = -1.0;

  bool opened = false;
  bool closed = false;
  /// True once the operator has returned end-of-stream: its output
  /// cardinality is final. (The real DMV exposes this via close/EOF times.)
  bool finished = false;

  /// True when the access path evaluates predicates inside the storage
  /// engine (pushed-down residual or bitmap probe, §4.3). Exposed in the
  /// real system via the showplan predicate list.
  bool has_pushed_predicate = false;
  /// Total pages of the underlying object (table or index leaf); with
  /// logical_read_count this yields the §4.3 I/O-fraction progress.
  uint64_t total_pages = 0;
};

/// A point-in-time copy of all operator counters for one executing query:
/// one DMV polling result.
struct ProfileSnapshot {
  double time_ms = 0;
  std::vector<OperatorProfile> operators;  // indexed by node_id
};

/// The full sequence of snapshots collected while a query ran, plus the
/// final counters at completion. The final snapshot supplies the true N_i
/// and true per-operator activity windows used by the §5 error metrics.
///
/// Concurrency audit (DESIGN.md §9): a trace is built single-threaded by
/// the Profiler while the executor runs, then handed to monitors as an
/// immutable value. MonitorService's pool workers read one trace
/// concurrently through const methods only, so no lock (and no lqs::Mutex
/// migration) is required here — do not add mutating members without
/// revisiting that.
struct ProfileTrace {
  std::vector<ProfileSnapshot> snapshots;
  ProfileSnapshot final_snapshot;
  double total_elapsed_ms = 0;

  /// True output cardinality of node i at completion (N_i^true).
  uint64_t TrueCardinality(int node_id) const {
    return final_snapshot.operators[node_id].row_count;
  }

  /// Latest snapshot with time_ms <= t, or nullptr when the trace has none
  /// that early. Snapshots are recorded in non-decreasing time order, so
  /// this is a binary search — monitors replaying a trace against a shared
  /// timeline call it once per tick and must not rescan linearly.
  const ProfileSnapshot* SnapshotAtOrBefore(double t) const {
    auto it = std::upper_bound(
        snapshots.begin(), snapshots.end(), t,
        [](double lhs, const ProfileSnapshot& s) { return lhs < s.time_ms; });
    if (it == snapshots.begin()) return nullptr;
    return &*std::prev(it);
  }
};

}  // namespace lqs

#endif  // LQS_DMV_QUERY_PROFILE_H_
