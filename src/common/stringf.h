#ifndef LQS_COMMON_STRINGF_H_
#define LQS_COMMON_STRINGF_H_

#include <cstdarg>
#include <cstdio>
#include <string>

#include "common/noalloc.h"

namespace lqs {

/// printf-style formatting into std::string (GCC 12 lacks std::format).
inline std::string StringF(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

LQS_ALLOC_OK(
    "diagnostic string formatting: returns std::string by design and is "
    "only called on violation/reporting branches, never on the per-tick "
    "steady state — tests/estimator_alloc_test.cc is the runtime backstop")
inline std::string StringF(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char buf[512];
  int n = vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n < 0) return "";
  if (static_cast<size_t>(n) < sizeof(buf)) return std::string(buf, n);
  std::string big(static_cast<size_t>(n) + 1, '\0');
  va_start(ap, fmt);
  vsnprintf(big.data(), big.size(), fmt, ap);
  va_end(ap);
  big.resize(static_cast<size_t>(n));
  return big;
}

}  // namespace lqs

#endif  // LQS_COMMON_STRINGF_H_
