#ifndef LQS_COMMON_THREAD_ANNOTATIONS_H_
#define LQS_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attributes (DESIGN.md §9). Annotating a type
// as a capability and its guarded fields/methods lets
// `clang -Wthread-safety` prove lock discipline at compile time:
// every access to a LQS_GUARDED_BY(mu) field must happen while `mu` is held,
// every call to a LQS_REQUIRES(mu) method must come from a context that
// holds `mu`, and a scoped locker (LQS_SCOPED_CAPABILITY) cannot leak its
// lock. GCC has no equivalent analysis, so the macros expand to nothing
// there; the annotations are zero-cost documentation on every compiler and
// a hard error gate under `-DLQS_THREAD_SAFETY=ON` (cmake/ThreadSafety.cmake,
// clang CI job).
//
// Use `lqs::Mutex` / `lqs::MutexLock` / `lqs::CondVar` (common/mutex.h)
// rather than the raw std primitives, which cannot carry a capability
// attribute and are therefore invisible to the analysis (scripts/lint.sh
// bans them in src/ for that reason).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LQS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define LQS_THREAD_ANNOTATION_(x)
#endif
#else
#define LQS_THREAD_ANNOTATION_(x)
#endif

/// Marks a class as a capability (lockable). The string names the kind of
/// capability in diagnostics, e.g. "mutex".
#define LQS_CAPABILITY(x) LQS_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define LQS_SCOPED_CAPABILITY LQS_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read or written while holding capability `x`.
#define LQS_GUARDED_BY(x) LQS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding `x`.
#define LQS_PT_GUARDED_BY(x) LQS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and they
/// remain held on exit).
#define LQS_REQUIRES(...) \
  LQS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit, not on entry).
#define LQS_ACQUIRE(...) \
  LQS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry, not on exit).
#define LQS_RELEASE(...) \
  LQS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function attempts to acquire the capability; the first argument is the
/// return value that signals success.
#define LQS_TRY_ACQUIRE(...) \
  LQS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function may only be called while the listed capabilities are NOT held
/// (guards against self-deadlock on a non-reentrant mutex).
#define LQS_EXCLUDES(...) LQS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function asserts (rather than acquires) that the capability is held —
/// for runtime-checked helpers like Mutex::AssertHeld().
#define LQS_ASSERT_CAPABILITY(x) \
  LQS_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the named capability.
#define LQS_RETURN_CAPABILITY(x) LQS_THREAD_ANNOTATION_(lock_returned(x))

/// Declares a static acquisition order between mutexes (documentation for
/// the analysis; the runtime lock-rank checker in lqs::Mutex enforces the
/// order on every debug-build acquisition).
#define LQS_ACQUIRED_BEFORE(...) \
  LQS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define LQS_ACQUIRED_AFTER(...) \
  LQS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Turns the analysis off for one function — reserved for the trusted
/// primitive implementations in common/mutex.cc, which manipulate the
/// wrapped std lock in ways the analysis cannot model.
#define LQS_NO_THREAD_SAFETY_ANALYSIS \
  LQS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // LQS_COMMON_THREAD_ANNOTATIONS_H_
