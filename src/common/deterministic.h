#ifndef LQS_COMMON_DETERMINISTIC_H_
#define LQS_COMMON_DETERMINISTIC_H_

/// Byte-identity determinism annotation (DESIGN.md §14).
///
/// The estimation core and the wire codec promise byte-identical output for
/// identical input (PR 5's replay-order invariance, PR 7's delta round-trip
/// goldens). Golden tests check that promise only on the inputs they
/// exercise; this marker makes it visible to static analysis:
/// tools/lqs_verify's `determinism` checker walks the call graph from every
/// LQS_DETERMINISTIC function and rejects any non-virtual chain that
/// reaches a source of run-to-run nondeterminism:
///
///   * wall-clock reads (std::chrono::*_clock::now, time, gettimeofday,
///     ...) — lqs::VirtualClock is the sanctioned time source;
///   * std::rand / std::random_device / engine construction (mt19937, ...)
///     — seeded lqs::Rng is the sanctioned randomness source;
///   * environment reads (getenv family);
///   * iteration over std::unordered_* containers (order depends on the
///     hash seed) or over ordered containers keyed on pointers (order
///     depends on allocation addresses) — both can leak into output bytes.
///
/// Place it at the front of the declaration, like LQS_NOALLOC:
///     LQS_NOALLOC LQS_DETERMINISTIC void EstimateInto(...) const;
///
/// Call-site escape hatch (same line or the line directly above):
///     // lqs-verify: det-ok(reason)
/// The reason is mandatory; the checker rejects an empty one.
///
/// Under clang the macro lowers to [[clang::annotate]] so the attribute
/// survives into the AST for the libclang frontend; under GCC it expands to
/// nothing and only the textual form remains — which both frontends also
/// read, so the annotation token in the source is the ground truth.
#if defined(__clang__)
#define LQS_DETERMINISTIC [[clang::annotate("lqs::deterministic")]]
#else
#define LQS_DETERMINISTIC
#endif

#endif  // LQS_COMMON_DETERMINISTIC_H_
