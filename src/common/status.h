#ifndef LQS_COMMON_STATUS_H_
#define LQS_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace lqs {

/// Error-handling primitive in the RocksDB/Arrow idiom: exceptions are not
/// used anywhere in this codebase; fallible functions return a Status (or a
/// StatusOr<T>, see statusor.h) that the caller must inspect.
///
/// [[nodiscard]] makes "must inspect" a compile-time contract: dropping a
/// returned Status on the floor is a -Werror=unused-result build break, and
/// tools/lqs_verify's status-discipline checker additionally flags results
/// that are bound to a variable but never consulted (DESIGN.md §12).
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kInternal,
    kUnimplemented,
    // Transport-facing codes (src/remote/): a peer that is temporarily not
    // answering, a request that missed its deadline, and bytes that arrived
    // damaged (framing/CRC failures). Matching the absl vocabulary keeps
    // retry policy legible: kUnavailable/kDeadlineExceeded are retryable,
    // kDataLoss means the payload must be discarded.
    kUnavailable,
    kDeadlineExceeded,
    kDataLoss,
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(Code::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller. Mirrors absl/RocksDB usage.
#define LQS_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::lqs::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace lqs

#endif  // LQS_COMMON_STATUS_H_
