#include "common/value.h"

#include <cstdio>
#include <functional>

namespace lqs {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int Value::Compare(const Value& other) const {
  if (type_ == DataType::kString || other.type_ == DataType::kString) {
    // String vs non-string comparisons order strings last; within strings,
    // lexicographic. Mixed comparisons only occur in defensive paths.
    if (type_ != other.type_) return type_ == DataType::kString ? 1 : -1;
    return string_.compare(other.string_) < 0   ? -1
           : string_.compare(other.string_) > 0 ? 1
                                                : 0;
  }
  if (type_ == DataType::kDouble || other.type_ == DataType::kDouble) {
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : a > b ? 1 : 0;
  }
  return int_ < other.int_ ? -1 : int_ > other.int_ ? 1 : 0;
}

size_t Value::Hash() const {
  switch (type_) {
    case DataType::kInt64:
      return std::hash<int64_t>()(int_);
    case DataType::kDouble: {
      // Hash doubles through their integer value when integral so that
      // Value(2.0) and Value(int64 2) hash identically (they compare equal).
      double d = double_;
      int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) return std::hash<int64_t>()(as_int);
      return std::hash<double>()(d);
    }
    case DataType::kString:
      return std::hash<std::string>()(string_);
  }
  return 0;
}

std::string Value::ToString() const {
  char buf[32];
  switch (type_) {
    case DataType::kInt64:
      snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      return buf;
    case DataType::kDouble:
      snprintf(buf, sizeof(buf), "%.4g", double_);
      return buf;
    case DataType::kString:
      return "'" + string_ + "'";
  }
  return "?";
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace lqs
