#include "common/op_type.h"

namespace lqs {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kTableScan:
      return "Table Scan";
    case OpType::kClusteredIndexScan:
      return "Clustered Index Scan";
    case OpType::kClusteredIndexSeek:
      return "Clustered Index Seek";
    case OpType::kIndexScan:
      return "Index Scan";
    case OpType::kIndexSeek:
      return "Index Seek";
    case OpType::kConstantScan:
      return "Constant Scan";
    case OpType::kColumnstoreScan:
      return "Columnstore Index Scan";
    case OpType::kRidLookup:
      return "RID Lookup";
    case OpType::kFilter:
      return "Filter";
    case OpType::kComputeScalar:
      return "Compute Scalar";
    case OpType::kTop:
      return "Top";
    case OpType::kSort:
      return "Sort";
    case OpType::kTopNSort:
      return "Top N Sort";
    case OpType::kDistinctSort:
      return "Distinct Sort";
    case OpType::kHashJoin:
      return "Hash Match (Join)";
    case OpType::kMergeJoin:
      return "Merge Join";
    case OpType::kNestedLoopJoin:
      return "Nested Loops";
    case OpType::kHashAggregate:
      return "Hash Match (Aggregate)";
    case OpType::kStreamAggregate:
      return "Stream Aggregate";
    case OpType::kSegment:
      return "Segment";
    case OpType::kConcatenation:
      return "Concatenation";
    case OpType::kBitmapCreate:
      return "Bitmap Create";
    case OpType::kEagerSpool:
      return "Eager Spool";
    case OpType::kLazySpool:
      return "Lazy Spool";
    case OpType::kGatherStreams:
      return "Parallelism (Gather Streams)";
    case OpType::kRepartitionStreams:
      return "Parallelism (Repartition Streams)";
    case OpType::kDistributeStreams:
      return "Parallelism (Distribute Streams)";
    case OpType::kNumOpTypes:
      break;
  }
  return "Unknown";
}

bool IsBlocking(OpType type) {
  switch (type) {
    case OpType::kSort:
    case OpType::kTopNSort:
    case OpType::kDistinctSort:
    case OpType::kHashAggregate:
    case OpType::kHashJoin:  // blocking w.r.t. its build input
    case OpType::kEagerSpool:
      return true;
    default:
      return false;
  }
}

bool IsSemiBlocking(OpType type) {
  switch (type) {
    case OpType::kNestedLoopJoin:
    case OpType::kGatherStreams:
    case OpType::kRepartitionStreams:
    case OpType::kDistributeStreams:
      return true;
    default:
      return false;
  }
}

bool IsJoin(OpType type) {
  switch (type) {
    case OpType::kHashJoin:
    case OpType::kMergeJoin:
    case OpType::kNestedLoopJoin:
      return true;
    default:
      return false;
  }
}

bool IsScan(OpType type) {
  switch (type) {
    case OpType::kTableScan:
    case OpType::kClusteredIndexScan:
    case OpType::kClusteredIndexSeek:
    case OpType::kIndexScan:
    case OpType::kIndexSeek:
    case OpType::kConstantScan:
    case OpType::kColumnstoreScan:
    case OpType::kRidLookup:
      return true;
    default:
      return false;
  }
}

bool IsExchange(OpType type) {
  switch (type) {
    case OpType::kGatherStreams:
    case OpType::kRepartitionStreams:
    case OpType::kDistributeStreams:
      return true;
    default:
      return false;
  }
}

bool IsAggregate(OpType type) {
  return type == OpType::kHashAggregate || type == OpType::kStreamAggregate;
}

bool IsSpool(OpType type) {
  return type == OpType::kEagerSpool || type == OpType::kLazySpool;
}

bool IsSortFamily(OpType type) {
  return type == OpType::kSort || type == OpType::kTopNSort ||
         type == OpType::kDistinctSort;
}

}  // namespace lqs
