#ifndef LQS_COMMON_RNG_H_
#define LQS_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace lqs {

/// Deterministic xoshiro256**-based RNG. Every data generator and workload in
/// the repository is seeded, so experiments are exactly reproducible run to
/// run (the paper's experiments depend on fixed data distributions, not on
/// randomness at query time).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p.
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

/// Zipf-distributed integers over [1, n] with parameter z, matching the
/// skewed TPC-H generator the paper cites ("skew-parameter of Z = 1" [1]).
/// Uses the classic rejection-inversion-free CDF table for small n and
/// approximate inversion for large n.
class ZipfDistribution {
 public:
  /// n: domain size; z: skew (z = 0 is uniform; the paper uses z = 1).
  ZipfDistribution(uint64_t n, double z);

  /// Draws a value in [1, n].
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double z() const { return z_; }

 private:
  uint64_t n_;
  double z_;
  // CDF table for exact sampling (n capped; see .cc). Empty when z == 0.
  std::vector<double> cdf_;
};

}  // namespace lqs

#endif  // LQS_COMMON_RNG_H_
