#ifndef LQS_COMMON_OP_TYPE_H_
#define LQS_COMMON_OP_TYPE_H_

#include <cstdint>

namespace lqs {

/// Physical operator types. This is the union of every operator named in the
/// paper (Figures 2-10 and the Appendix A bounding table), implemented by the
/// execution engine in src/exec and understood by the progress estimators in
/// src/lqs. Lives in common/ because the DMV layer, the executor and the
/// estimators all speak this vocabulary.
enum class OpType : uint8_t {
  // Leaf access paths.
  kTableScan = 0,
  kClusteredIndexScan,
  kClusteredIndexSeek,
  kIndexScan,
  kIndexSeek,
  kConstantScan,
  kColumnstoreScan,  // batch mode (§4.7)
  kRidLookup,
  // Row-mode relational operators.
  kFilter,
  kComputeScalar,
  kTop,
  kSort,
  kTopNSort,
  kDistinctSort,
  kHashJoin,   // "Hash Match" join
  kMergeJoin,
  kNestedLoopJoin,
  kHashAggregate,    // "Hash Match" aggregate
  kStreamAggregate,
  kSegment,
  kConcatenation,
  kBitmapCreate,
  // Spools.
  kEagerSpool,
  kLazySpool,
  // Parallelism / Exchange (§4.4).
  kGatherStreams,
  kRepartitionStreams,
  kDistributeStreams,

  kNumOpTypes,
};

/// Display name matching SQL Server showplan terminology where applicable.
const char* OpTypeName(OpType type);

/// Blocking operators consume their entire input before producing output
/// (§4.5 two-phase model applies). Hash join is blocking with respect to its
/// build input; it is listed here because its first output row requires the
/// whole build side.
bool IsBlocking(OpType type);

/// Semi-blocking operators buffer batches of input rows (§4.4): Exchange
/// variants, and Nested Loops when the engine buffers/prefetches outer rows.
bool IsSemiBlocking(OpType type);

bool IsJoin(OpType type);

/// Leaf data-access operators (scans/seeks over stored data).
bool IsScan(OpType type);

bool IsExchange(OpType type);

bool IsAggregate(OpType type);

bool IsSpool(OpType type);

bool IsSortFamily(OpType type);

}  // namespace lqs

#endif  // LQS_COMMON_OP_TYPE_H_
