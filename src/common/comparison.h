#ifndef LQS_COMMON_COMPARISON_H_
#define LQS_COMMON_COMPARISON_H_

#include <cstdint>

namespace lqs {

/// Comparison operators usable in predicates. Shared between the expression
/// evaluator (exec), the statistics-based selectivity estimator (optimizer)
/// and columnstore segment elimination (storage).
enum class CompareOp : uint8_t {
  kEq = 0,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CompareOpName(CompareOp op);

/// Applies `op` to a three-way comparison result (as from Value::Compare).
inline bool ApplyCompareOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

}  // namespace lqs

#endif  // LQS_COMMON_COMPARISON_H_
