#ifndef LQS_COMMON_STATUSOR_H_
#define LQS_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace lqs {

/// A value-or-error union, in the absl::StatusOr idiom. Either holds a T or a
/// non-OK Status explaining why the T could not be produced. [[nodiscard]]
/// for the same reason as Status: an ignored StatusOr silently swallows the
/// error arm (enforced by -Werror=unused-result and tools/lqs_verify).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit construction from Status and from T keeps call sites terse
  /// (`return Status::NotFound(...)` / `return value`), matching absl.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates a StatusOr expression; on error propagates the Status, otherwise
/// moves the value into `lhs`.
#define LQS_ASSIGN_OR_RETURN(lhs, expr)          \
  auto LQS_CONCAT_(_statusor_, __LINE__) = (expr);            \
  if (!LQS_CONCAT_(_statusor_, __LINE__).ok())                \
    return LQS_CONCAT_(_statusor_, __LINE__).status();        \
  lhs = std::move(LQS_CONCAT_(_statusor_, __LINE__)).value()

#define LQS_CONCAT_INNER_(a, b) a##b
#define LQS_CONCAT_(a, b) LQS_CONCAT_INNER_(a, b)

}  // namespace lqs

#endif  // LQS_COMMON_STATUSOR_H_
