#include "common/rng.h"

#include <algorithm>
#include <cassert>

namespace lqs {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four xoshiro words from SplitMix64 per the reference
  // implementation's recommendation; guards against all-zero state.
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfDistribution::ZipfDistribution(uint64_t n, double z) : n_(n), z_(z) {
  assert(n >= 1);
  if (z <= 0.0) return;  // Uniform; no table needed.
  // Exact CDF table. Table size is bounded: the generators in this repo use
  // domains up to a few million, and 8 bytes per entry is acceptable there.
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), z);
    cdf_[i - 1] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  if (z_ <= 0.0) return 1 + rng.NextBelow(n_);
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace lqs
