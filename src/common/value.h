#ifndef LQS_COMMON_VALUE_H_
#define LQS_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lqs {

/// Column data types supported by the storage and execution engines. The
/// reproduction needs integers (keys, quantities), doubles (prices,
/// aggregates) and short strings (flags, dimension attributes); that covers
/// every plan shape the paper's experiments exercise.
enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

const char* DataTypeName(DataType type);

/// A single column value. A small hand-rolled tagged union rather than
/// std::variant: rows flow through operators tens of millions of times per
/// experiment, and the explicit layout keeps copies cheap and code readable.
/// Strings are interned per-table as dictionary codes wherever possible; the
/// inline std::string member exists for computed scalars and constants.
class Value {
 public:
  Value() : type_(DataType::kInt64), int_(0) {}
  explicit Value(int64_t v) : type_(DataType::kInt64), int_(v) {}
  explicit Value(double v) : type_(DataType::kDouble), double_(v) {}
  explicit Value(std::string v)
      : type_(DataType::kString), int_(0), string_(std::move(v)) {}

  DataType type() const { return type_; }

  int64_t AsInt() const { return type_ == DataType::kDouble ? static_cast<int64_t>(double_) : int_; }
  double AsDouble() const { return type_ == DataType::kDouble ? double_ : static_cast<double>(int_); }
  const std::string& AsString() const { return string_; }

  /// Total order across same-typed values; numeric types compare by value.
  /// Used by sort operators, merge joins and index lookups.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash compatible with operator== (used by hash join / hash aggregate).
  size_t Hash() const;

  std::string ToString() const;

 private:
  DataType type_;
  union {
    int64_t int_;
    double double_;
  };
  std::string string_;
};

/// A tuple flowing between operators.
using Row = std::vector<Value>;

/// Renders "(v1, v2, ...)" for debugging and example output.
std::string RowToString(const Row& row);

}  // namespace lqs

#endif  // LQS_COMMON_VALUE_H_
