#include "common/mutex.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <vector>

namespace lqs {

namespace {

// Rank checking is compiled in unconditionally and gated at runtime, so
// tests can force it on under any build type (the death tests in
// tests/mutex_test.cc must run in the RelWithDebInfo tier-1 build too). The
// release-mode cost when disabled is one relaxed atomic load per Lock().
constexpr bool kRankCheckDefault =
#ifdef NDEBUG
    false;
#else
    true;
#endif

std::atomic<bool> g_rank_check_enabled{kRankCheckDefault};

// The calling thread's currently-held lqs::Mutex stack, oldest first.
// Strictly increasing ranks within this stack is the invariant.
std::vector<const Mutex*>& HeldStack() {
  thread_local std::vector<const Mutex*> stack;
  return stack;
}

[[noreturn]] void AbortWithHeldStack(const char* problem, const Mutex& mu,
                                     const std::vector<const Mutex*>& held) {
  std::fprintf(stderr,
               "lqs::Mutex %s: acquiring \"%s\" (rank %d) while holding "
               "\"%s\" (rank %d); acquisition order must be strictly "
               "increasing by rank. Held locks, oldest first:\n",
               problem, mu.name(), mu.rank(), held.back()->name(),
               held.back()->rank());
  for (const Mutex* h : held) {
    std::fprintf(stderr, "  \"%s\" (rank %d)\n", h->name(), h->rank());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void Mutex::SetRankCheckEnabled(bool enabled) {
  g_rank_check_enabled.store(enabled, std::memory_order_relaxed);
}

bool Mutex::RankCheckEnabled() {
  return g_rank_check_enabled.load(std::memory_order_relaxed);
}

void Mutex::PushHeld() const {
  if (!RankCheckEnabled()) return;
  std::vector<const Mutex*>& held = HeldStack();
  for (const Mutex* h : held) {
    if (h == this) AbortWithHeldStack("recursive acquisition", *this, held);
  }
  if (!held.empty() && held.back()->rank_ >= rank_) {
    AbortWithHeldStack("lock-rank violation", *this, held);
  }
  held.push_back(this);
}

void Mutex::PopHeld() const {
  if (!RankCheckEnabled()) return;
  std::vector<const Mutex*>& held = HeldStack();
  // Search from the innermost end; a miss just means the check was enabled
  // after this lock was taken, which is not an error.
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == this) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

void Mutex::Lock() LQS_NO_THREAD_SAFETY_ANALYSIS {
  // Validate-then-block: a rank inversion aborts with a diagnostic *before*
  // this thread can park on a lock another thread may never release.
  PushHeld();
  impl_.lock();
}

void Mutex::Unlock() LQS_NO_THREAD_SAFETY_ANALYSIS {
  PopHeld();
  impl_.unlock();
}

bool Mutex::TryLock() LQS_NO_THREAD_SAFETY_ANALYSIS {
  if (!impl_.try_lock()) return false;
  PushHeld();
  return true;
}

void Mutex::AssertHeld() const LQS_NO_THREAD_SAFETY_ANALYSIS {
  if (!RankCheckEnabled()) return;
  const std::vector<const Mutex*>& held = HeldStack();
  for (const Mutex* h : held) {
    if (h == this) return;
  }
  std::fprintf(stderr,
               "lqs::Mutex AssertHeld failed: \"%s\" (rank %d) is not held "
               "by this thread\n",
               name_, rank_);
  std::fflush(stderr);
  std::abort();
}

void CondVar::Wait(Mutex* mu) LQS_NO_THREAD_SAFETY_ANALYSIS {
  // The wait releases and re-acquires mu's underlying lock inside
  // std::condition_variable; mirror that in the rank bookkeeping so the
  // held stack never lists a lock this thread is blocked on, and so the
  // re-acquisition re-validates the rank order.
  mu->PopHeld();
  if (Mutex::RankCheckEnabled() && !HeldStack().empty()) {
    // Any lock still held here stays held for the whole (unbounded) wait:
    // every other thread needing it deadlocks behind a condition only they
    // might signal. The static `locks` checker rejects this shape at
    // analysis time; this is the runtime backstop for paths it cannot see.
    const std::vector<const Mutex*>& held = HeldStack();
    std::fprintf(stderr,
                 "lqs::CondVar::Wait on \"%s\" (rank %d) while holding %zu "
                 "other lock(s); a blocking wait must hold only the waited "
                 "mutex. Held locks, oldest first:\n",
                 mu->name(), mu->rank(), held.size());
    for (const Mutex* h : held) {
      std::fprintf(stderr, "  \"%s\" (rank %d)\n", h->name(), h->rank());
    }
    std::fflush(stderr);
    std::abort();
  }
  std::unique_lock<std::mutex> lock(  // lint:allow-raw-mutex (primitive impl)
      mu->impl_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
  mu->PushHeld();
}

}  // namespace lqs
