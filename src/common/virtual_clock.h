#ifndef LQS_COMMON_VIRTUAL_CLOCK_H_
#define LQS_COMMON_VIRTUAL_CLOCK_H_

#include <cstdint>

namespace lqs {

/// Deterministic substitute for wall-clock time (see DESIGN.md §2).
///
/// The paper's experiments measure progress-estimation error against the
/// elapsed wall-clock time of queries running on a production SQL Server.
/// Re-running against real time would make every experiment nondeterministic
/// and hardware-dependent, so the executor instead charges each operator a
/// calibrated amount of *virtual* time per row processed and per page or
/// column segment read. The profiler samples DMV counters at fixed virtual
/// intervals (the analogue of SSMS's 500 ms polling), and the error metrics
/// of §5 are computed over virtual time.
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Current virtual time in milliseconds since query start.
  double NowMs() const { return now_ms_; }

  /// Advances the clock; delta must be non-negative.
  void AdvanceMs(double delta_ms) { now_ms_ += delta_ms; }

  void Reset() { now_ms_ = 0.0; }

 private:
  double now_ms_ = 0.0;
};

}  // namespace lqs

#endif  // LQS_COMMON_VIRTUAL_CLOCK_H_
