#ifndef LQS_COMMON_NOALLOC_H_
#define LQS_COMMON_NOALLOC_H_

/// Allocation-freedom annotation vocabulary (DESIGN.md §12).
///
/// The estimation core's zero-allocation contract (DESIGN.md §11) is
/// enforced at runtime by tests/estimator_alloc_test.cc, but only on the
/// paths that test happens to exercise. These annotations make the contract
/// visible to static analysis: tools/lqs_verify's `noalloc` checker walks
/// the call graph and rejects any non-virtual call chain from an
/// LQS_NOALLOC function to an allocating operation (operator new, the
/// malloc family, growing-container member calls).
///
/// Vocabulary:
///
///   LQS_NOALLOC
///     Marks a function whose steady-state execution must reach no
///     allocating operation through any non-virtual call chain. Place it at
///     the front of the declaration:
///         LQS_NOALLOC void EstimateInto(...) const;
///
///   LQS_ALLOC_OK("justification")
///     Function-level escape hatch: marks a callee as a deliberate
///     allocation boundary — traversal stops here instead of descending.
///     The justification string is mandatory and must be non-empty; the
///     checker rejects an empty one. Use it for one-time sizing paths and
///     off-hot-path arms (e.g. violation reporting) that an LQS_NOALLOC
///     function legitimately reaches:
///         LQS_ALLOC_OK("first-call sizing; zero steady-state allocations")
///         void PrepareWorkspace(Workspace* ws) const;
///
///   // LQS_ALLOC_OK("justification")   (comment form, same line or the
///     line directly above an allocating call)
///     Call-site escape hatch for capacity-reusing container calls inside
///     an LQS_NOALLOC region: `resize`/`assign` on a vector whose capacity
///     was established by the sizing path never allocates in steady state,
///     but is lexically an allocating operation. The justification is
///     mandatory here too.
///
/// Under clang both macros lower to [[clang::annotate]] so the attribute
/// survives into the AST for the libclang frontend; under GCC they expand
/// to nothing and only the textual form (which the fallback frontend and
/// grep read) remains. Either way the annotation token in the source is the
/// ground truth the checker consumes.
#if defined(__clang__)
#define LQS_NOALLOC [[clang::annotate("lqs::noalloc")]]
#define LQS_ALLOC_OK(justification) \
  [[clang::annotate("lqs::alloc_ok:" justification)]]
#else
#define LQS_NOALLOC
#define LQS_ALLOC_OK(justification)
#endif

#endif  // LQS_COMMON_NOALLOC_H_
