#include "common/status.h"

namespace lqs {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
    case Status::Code::kOutOfRange:
      return "OUT_OF_RANGE";
    case Status::Code::kInternal:
      return "INTERNAL";
    case Status::Code::kUnimplemented:
      return "UNIMPLEMENTED";
    case Status::Code::kUnavailable:
      return "UNAVAILABLE";
    case Status::Code::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case Status::Code::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace lqs
