#ifndef LQS_COMMON_MUTEX_H_
#define LQS_COMMON_MUTEX_H_

#include <condition_variable>  // lint:allow-raw-mutex (wrapped here)
#include <mutex>               // lint:allow-raw-mutex (wrapped here)

#include "common/thread_annotations.h"

namespace lqs {

/// Central lock-rank registry (DESIGN.md §9). Every lqs::Mutex declares a
/// rank; the debug-build checker enforces that each thread acquires locks in
/// strictly increasing rank order, which makes cross-thread deadlock by lock
/// inversion impossible. Add new ranks here, spaced so future locks can slot
/// between existing ones, ordered outermost (lowest) to innermost/leaf
/// (highest).
namespace lock_rank {
/// ShardedMonitor::backpressure_mu_ — guards the per-shard poll-divisor
/// backpressure state; taken briefly by the driver thread around a shard
/// tick and never held across the tick itself.
inline constexpr int kShardedBackpressure = 50;
/// MonitorService::stats_mu_ — taken by the driver thread after a tick's
/// barrier and by any reader calling stats(); never held across a
/// ParallelFor.
inline constexpr int kMonitorStats = 100;
/// ThreadPool::mu_ — the pool's job-handoff lock, a leaf: no lqs::Mutex is
/// ever acquired while it is held (user jobs run outside it).
inline constexpr int kThreadPool = 200;
}  // namespace lock_rank

class CondVar;

/// A std::mutex that carries the Clang capability attribute (so
/// `-Wthread-safety` can reason about it — std::mutex itself cannot be
/// annotated) and a lock rank. In debug builds (and whenever
/// SetRankCheckEnabled(true) is in effect) every acquisition is validated
/// against the calling thread's held-lock stack: acquiring a mutex whose
/// rank is not strictly greater than the most recently acquired held mutex,
/// or re-acquiring a held mutex, aborts with both ranks and the full stack —
/// catching deadlock *potential* on orderings the annotation pass cannot
/// express. Not reentrant.
class LQS_CAPABILITY("mutex") Mutex {
 public:
  /// `rank` orders this mutex in the global acquisition order and must be a
  /// named constant from lock_rank (the `locks` static checker enforces
  /// this in src/); `name` appears in rank-checker diagnostics. There is
  /// deliberately no default rank: two anonymous rank-0 locks look fine
  /// until they nest in production, and the runtime checker only catches
  /// the nesting a test happens to execute.
  explicit Mutex(int rank, const char* name = "lqs::Mutex")
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LQS_ACQUIRE();
  void Unlock() LQS_RELEASE();
  /// Returns true and holds the lock on success. A successful TryLock is
  /// held rank-discipline too: try-lock is not an escape hatch from the
  /// acquisition order in this codebase.
  bool TryLock() LQS_TRY_ACQUIRE(true);

  /// Runtime assertion (rank checker builds) + static assertion (clang
  /// analysis) that the calling thread holds this mutex.
  void AssertHeld() const LQS_ASSERT_CAPABILITY(this);

  int rank() const { return rank_; }
  const char* name() const { return name_; }

  /// Rank checking defaults to on in debug builds (!NDEBUG) and off in
  /// release; tests force it on so the death tests run under every build
  /// type. The switch is global and may be flipped at any point — held-lock
  /// bookkeeping degrades gracefully across a toggle.
  static void SetRankCheckEnabled(bool enabled);
  static bool RankCheckEnabled();

 private:
  friend class CondVar;

  /// Rank bookkeeping, implemented in mutex.cc against a thread_local
  /// held-lock stack. Validation runs *before* blocking on the underlying
  /// mutex, so an inversion aborts loudly instead of deadlocking silently.
  void PushHeld() const;
  void PopHeld() const;

  mutable std::mutex impl_;  // lint:allow-raw-mutex (the wrapped primitive)
  const int rank_;
  const char* const name_;
};

/// RAII locker, the only way most code should take a Mutex:
///   lqs::MutexLock lock(&mu_);
/// Annotated as a scoped capability so clang tracks the critical section.
class LQS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) LQS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() LQS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to lqs::Mutex. Wait() must be called with the
/// mutex held (enforced by the analysis via LQS_REQUIRES) and, like
/// std::condition_variable, can wake spuriously — always wait in a
/// predicate loop:
///   while (!ready_) cv_.Wait(&mu_);
/// The wait releases and re-acquires the mutex through the rank checker.
/// Blocking in Wait while holding any *other* lqs::Mutex parks this thread
/// with a lock held indefinitely — in rank-checker builds that aborts at
/// the wait site (see tests/mutex_test.cc), and the static `locks` checker
/// rejects it at analysis time.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) LQS_REQUIRES(mu);
  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  // lint:allow-raw-mutex (the wrapped primitive)
  std::condition_variable cv_;
};

}  // namespace lqs

#endif  // LQS_COMMON_MUTEX_H_
