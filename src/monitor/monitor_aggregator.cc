#include "monitor/monitor_aggregator.h"

#include <algorithm>

namespace lqs {

MonitorStats MonitorAggregator::Merge(
    const std::vector<MonitorStats>& shard_stats) {
  MonitorStats merged;
  for (const MonitorStats& s : shard_stats) {
    merged.sessions += s.sessions;
    merged.active += s.active;
    merged.waiting += s.waiting;
    merged.done += s.done;
    merged.ticks = std::max(merged.ticks, s.ticks);
    merged.reports_computed += s.reports_computed;
    merged.estimators_cached += s.estimators_cached;
    merged.num_threads += s.num_threads;
    merged.p50_estimate_latency_ms =
        std::max(merged.p50_estimate_latency_ms, s.p50_estimate_latency_ms);
    merged.p95_estimate_latency_ms =
        std::max(merged.p95_estimate_latency_ms, s.p95_estimate_latency_ms);
    merged.max_estimate_latency_ms =
        std::max(merged.max_estimate_latency_ms, s.max_estimate_latency_ms);
    merged.estimate_wall_ms += s.estimate_wall_ms;
    merged.last_tick_estimate_ms += s.last_tick_estimate_ms;
    merged.p50_tick_latency_ms =
        std::max(merged.p50_tick_latency_ms, s.p50_tick_latency_ms);
    merged.p95_tick_latency_ms =
        std::max(merged.p95_tick_latency_ms, s.p95_tick_latency_ms);
    merged.wall_ms += s.wall_ms;
    merged.remote_sessions += s.remote_sessions;
    merged.degraded_sessions += s.degraded_sessions;
    merged.transport_polls += s.transport_polls;
    merged.transport_retries += s.transport_retries;
    merged.transport_failures += s.transport_failures;
    merged.decode_errors += s.decode_errors;
    merged.snapshots_accepted += s.snapshots_accepted;
    merged.duplicates_ignored += s.duplicates_ignored;
    merged.regressions_rejected += s.regressions_rejected;
    merged.stale_reports += s.stale_reports;
    merged.transport_bytes += s.transport_bytes;
    merged.deltas_applied += s.deltas_applied;
    merged.delta_resyncs += s.delta_resyncs;
    merged.request_id_mismatches += s.request_id_mismatches;
    merged.ensemble_sessions += s.ensemble_sessions;
    merged.ensembles_cached += s.ensembles_cached;
    merged.ensemble_candidate_estimates += s.ensemble_candidate_estimates;
    merged.ensemble_switches += s.ensemble_switches;
    merged.lp_bounds_sessions += s.lp_bounds_sessions;
    merged.bounds_lp_tightenings += s.bounds_lp_tightenings;
    merged.bounds_intersection_inversions += s.bounds_intersection_inversions;
    // Per-candidate vectors align across shards (every shard's ensembles
    // run the same default candidate pool); a shard with no ensemble
    // sessions contributes empty vectors.
    if (merged.ensemble_candidate_names.empty()) {
      merged.ensemble_candidate_names = s.ensemble_candidate_names;
      merged.ensemble_candidate_latency_ms.assign(
          merged.ensemble_candidate_names.size(), 0.0);
      merged.ensemble_selected_ticks.assign(
          merged.ensemble_candidate_names.size(), 0);
    }
    for (size_t c = 0; c < s.ensemble_candidate_latency_ms.size() &&
                       c < merged.ensemble_candidate_latency_ms.size();
         ++c) {
      merged.ensemble_candidate_latency_ms[c] +=
          s.ensemble_candidate_latency_ms[c];
    }
    for (size_t c = 0; c < s.ensemble_selected_ticks.size() &&
                       c < merged.ensemble_selected_ticks.size();
         ++c) {
      merged.ensemble_selected_ticks[c] += s.ensemble_selected_ticks[c];
    }
  }
  // Throughputs recompute from merged sums; averaging per-shard rates would
  // overweight idle shards.
  if (merged.wall_ms > 0) {
    merged.reports_per_sec = static_cast<double>(merged.reports_computed) /
                             (merged.wall_ms / 1000.0);
  }
  if (merged.estimate_wall_ms > 0) {
    merged.estimates_per_sec = static_cast<double>(merged.reports_computed) /
                               (merged.estimate_wall_ms / 1000.0);
  }
  return merged;
}

}  // namespace lqs
