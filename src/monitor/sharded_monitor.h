#ifndef LQS_MONITOR_SHARDED_MONITOR_H_
#define LQS_MONITOR_SHARDED_MONITOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "monitor/monitor_aggregator.h"
#include "monitor/monitor_service.h"
#include "monitor/session_router.h"

namespace lqs {

/// Knobs of the sharded monitor.
struct ShardedMonitorOptions {
  /// Number of MonitorService instances (each with its own ThreadPool).
  int num_shards = 4;
  /// Virtual ring nodes per shard (see SessionRouter).
  int virtual_nodes = 64;
  /// Options applied to every shard's MonitorService.
  MonitorOptions shard_options;
  /// Real-time budget for one shard tick, in wall-clock ms. When > 0,
  /// admission control activates: a shard whose tick overruns the budget
  /// has its poll rate halved (divisor doubled, up to max_poll_divisor) —
  /// on skipped ticks its sessions serve the held view, marked stale,
  /// instead of queueing work the shard cannot absorb. A tick back under
  /// half the budget halves the divisor again. 0 disables backpressure
  /// (and keeps Tick output fully deterministic).
  double shard_tick_budget_ms = 0;
  /// Upper bound on the poll divisor: even a hopelessly overloaded shard
  /// still recomputes every max_poll_divisor-th tick, so sessions degrade
  /// — they never wedge.
  int max_poll_divisor = 8;
};

/// N MonitorService shards behind one monitor facade — the fleet-scale
/// layer (§2: progress must stay cheap enough to poll for *every* running
/// query). Sessions route to shards by consistent hashing on the session
/// name (SessionRouter), each shard ticks its sessions on its own
/// ThreadPool, and stats() merges per-shard MonitorStats through
/// MonitorAggregator.
///
/// Global session ids are dense in registration order across the whole
/// monitor; Tick() returns statuses indexed by global id regardless of
/// which shard computed them.
///
/// Shards are ticked sequentially on the driver thread. That keeps the
/// determinism contract of MonitorService intact end-to-end — with
/// backpressure disabled, output depends only on the registered sessions
/// and tick times, not on shard count or thread counts (the scale bench
/// self-checks this) — and it means per-shard wall times are disjoint, so
/// the aggregator may sum them.
///
/// Backpressure (shard_tick_budget_ms > 0) trades freshness for survival:
/// an overrunning shard serves held, stale-marked views on the ticks it
/// skips. Completion is exempt — once the timeline reaches the horizon
/// every shard ticks every time, so a degraded shard still finishes.
///
/// Threading: register/tick from one driver thread, same as
/// MonitorService. stats() is safe from any thread (it only reads the
/// shards' stats(), each behind its own stats_mu_), and so is
/// poll_divisor(): the backpressure state lives behind backpressure_mu_
/// (lock_rank::kShardedBackpressure), taken briefly around a shard tick and
/// never across one.
class ShardedMonitor {
 public:
  explicit ShardedMonitor(ShardedMonitorOptions options = {});

  /// Registers a trace-backed session; returns its global id. `plan`,
  /// `catalog` and `trace` must outlive the monitor.
  int RegisterSession(std::string name, const Plan* plan,
                      const Catalog* catalog, const ProfileTrace* trace,
                      double start_offset_ms,
                      const EstimatorOptions& estimator_options =
                          EstimatorOptions::Lqs());

  /// Registers an endpoint-backed session; returns its global id.
  int RegisterRemoteSession(std::string name, const Plan* plan,
                            const Catalog* catalog,
                            std::unique_ptr<SnapshotEndpoint> endpoint,
                            double start_offset_ms,
                            const PollingClientOptions& client_options = {},
                            const EstimatorOptions& estimator_options =
                                EstimatorOptions::Lqs());

  int num_shards() const { return static_cast<int>(shards_.size()); }
  size_t session_count() const { return session_homes_.size(); }
  /// Shard a registered session landed on.
  int ShardOf(int session_id) const {
    return session_homes_[static_cast<size_t>(session_id)].shard;
  }
  const SessionRouter& router() const { return router_; }
  /// Current poll divisor of one shard (1 = every tick). Safe from any
  /// thread — a dashboard can watch admission control live.
  int poll_divisor(int shard) const LQS_EXCLUDES(backpressure_mu_) {
    MutexLock lock(&backpressure_mu_);
    return poll_divisors_[static_cast<size_t>(shard)];
  }

  /// Latest virtual completion time across all shards.
  double HorizonMs() const;
  bool AllSessionsDone() const;

  /// Ticks every due shard at `now_ms` (non-decreasing across calls) and
  /// returns statuses indexed by global session id. Sessions on shards
  /// skipped by backpressure report their held status with `stale` set.
  std::vector<SessionStatus> Tick(double now_ms);

  /// Runs the whole timeline (same contract as
  /// MonitorService::RunToCompletion, driven by shard_options' tick knobs).
  void RunToCompletion(
      const std::function<void(double now_ms,
                               const std::vector<SessionStatus>&)>& render);

  /// Merged end-of-timeline invariant verdict across all shards.
  ValidationReport FinalCheck();

  /// Fleet-level aggregate (MonitorAggregator::Merge of shard_stats()).
  MonitorStats stats() const;
  /// Per-shard counters, indexed by shard id.
  std::vector<MonitorStats> shard_stats() const;

  /// Transport counters of one endpoint-backed session, by global id.
  const ClientStats& session_client_stats(int session_id) const;

 private:
  struct Shard {
    std::unique_ptr<MonitorService> service;
    /// Local session index -> global session id.
    std::vector<int> global_ids;
    /// Statuses from this shard's most recent computed tick, served (with
    /// `stale` forced) on ticks backpressure skips.
    std::vector<SessionStatus> held;
  };

  struct SessionHome {
    int shard = 0;
    int local_id = 0;
  };

  /// Doubles/halves `shard_index`'s divisor from its measured tick wall
  /// time (poll_divisors_ / last_tick_wall_ms_, both behind the lock).
  void AdjustBackpressure(int shard_index) LQS_REQUIRES(backpressure_mu_);

  const ShardedMonitorOptions options_;
  const SessionRouter router_;
  /// Driver-thread-only (registration and Tick happen on one thread; the
  /// shard services synchronize their own stats internally).
  // lqs-verify: guard-ok(driver-owned per the threading contract above)
  std::vector<Shard> shards_;
  /// Global session id -> (shard, local id).
  // lqs-verify: guard-ok(driver-owned per the threading contract above)
  std::vector<SessionHome> session_homes_;
  /// Ticks issued to the sharded monitor as a whole (divisor modulus).
  // lqs-verify: guard-ok(driver-owned per the threading contract above)
  uint64_t tick_index_ = 0;

  /// Guards the admission-control state so poll_divisor() can be sampled
  /// from any thread. Taken briefly before a shard tick (to read the
  /// divisor) and after it (to record the wall time and adjust) — never
  /// across the tick itself, which fans out on the shard's ThreadPool.
  mutable Mutex backpressure_mu_{lock_rank::kShardedBackpressure,
                                 "ShardedMonitor::backpressure_mu_"};
  /// Per-shard poll divisor (1 = every tick), indexed by shard id.
  std::vector<int> poll_divisors_ LQS_GUARDED_BY(backpressure_mu_);
  /// Per-shard wall time of the most recent computed tick, in ms.
  std::vector<double> last_tick_wall_ms_ LQS_GUARDED_BY(backpressure_mu_);
};

}  // namespace lqs

#endif  // LQS_MONITOR_SHARDED_MONITOR_H_
