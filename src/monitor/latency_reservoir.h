#ifndef LQS_MONITOR_LATENCY_RESERVOIR_H_
#define LQS_MONITOR_LATENCY_RESERVOIR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace lqs {

/// Fixed-capacity uniform sample of a latency stream (Vitter's Algorithm R).
///
/// A monitor meant to run indefinitely cannot publish percentiles from
/// vectors that grow by one element per tick — that is an unbounded-memory
/// leak on the hot path, just slow enough to survive every short test. The
/// reservoir holds a uniform random sample of everything ever Add()ed in
/// O(capacity) memory: the first `capacity` values fill the slots, and the
/// n-th value thereafter replaces a random slot with probability
/// capacity/n. Quantiles over the sample converge on the stream's quantiles
/// (512 slots put p95 within a couple of percentile ranks with high
/// probability), and the estimate covers the whole stream, not a recent
/// window — matching what the grow-forever vectors reported.
///
/// Allocation discipline: all slot storage is reserved at construction, so
/// Add() never allocates — it is safe inside the monitor's per-tick
/// allocation budget (tests/estimator_alloc_test.cc). Quantile() sorts a
/// scratch copy and is meant for the stats() read path, not the tick path.
///
/// Determinism: replacement draws come from a seeded lqs::Rng, so identical
/// streams yield identical samples run to run.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(size_t capacity = 512,
                            uint64_t seed = 0x1a7e9c5)
      : capacity_(capacity == 0 ? 1 : capacity), rng_(seed) {
    slots_.reserve(capacity_);
  }

  void Add(double value) {
    ++count_;
    if (slots_.size() < capacity_) {
      slots_.push_back(value);  // within the reserve: no allocation
      return;
    }
    const uint64_t j = rng_.NextBelow(count_);
    if (j < capacity_) slots_[static_cast<size_t>(j)] = value;
  }

  /// Values ever observed (not the sample size).
  uint64_t count() const { return count_; }
  size_t sample_size() const { return slots_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return slots_.empty(); }

  /// Nearest-rank quantile of the sample, q in [0, 1]; 0 when empty.
  /// Allocates a sorted scratch copy — stats()-path only.
  double Quantile(double q) const {
    if (slots_.empty()) return 0;
    std::vector<double> sorted(slots_);
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::min(1.0, std::max(0.0, q));
    const size_t rank = std::min(
        sorted.size() - 1,
        static_cast<size_t>(clamped * static_cast<double>(sorted.size() - 1)));
    return sorted[rank];
  }

 private:
  size_t capacity_;
  uint64_t count_ = 0;
  Rng rng_;
  std::vector<double> slots_;
};

}  // namespace lqs

#endif  // LQS_MONITOR_LATENCY_RESERVOIR_H_
