#ifndef LQS_MONITOR_MONITOR_SERVICE_H_
#define LQS_MONITOR_MONITOR_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/invariant_checker.h"
#include "analysis/validator.h"
#include "common/deterministic.h"
#include "common/mutex.h"
#include "common/noalloc.h"
#include "common/thread_annotations.h"
#include "dmv/query_profile.h"
#include "ensemble/ensemble.h"
#include "exec/plan.h"
#include "lqs/estimator.h"
#include "monitor/latency_reservoir.h"
#include "monitor/thread_pool.h"
#include "remote/polling_client.h"
#include "storage/catalog.h"

namespace lqs {

/// Knobs of the multi-query monitor.
struct MonitorOptions {
  /// Worker threads computing per-session reports; <= 0 picks a hardware
  /// default. Output is identical for every value — see the determinism
  /// contract on MonitorService.
  int num_threads = 0;
  /// Ticks RunToCompletion spreads over the horizon when tick_ms is 0.
  int ticks_per_horizon = 12;
  /// Explicit tick spacing in virtual ms; 0 derives it from the horizon.
  double tick_ms = 0;
  /// Wrap every session in a ProgressInvariantChecker (the always-on <5%
  /// overhead configuration, DESIGN.md §7); violations surface in
  /// FinalCheck().
  bool check_invariants = true;
  InvariantCheckerOptions checker_options;
  /// Ticks RunToCompletion keeps issuing past the nominal horizon while
  /// remote sessions still await their final snapshot over a lossy link.
  /// Once exhausted, unfinished sessions are left degraded rather than
  /// looping forever (they surface in FinalCheck). Irrelevant for local
  /// trace-backed sessions, which are always done at the horizon.
  int max_overtime_ticks = 256;
};

enum class SessionState {
  kWaiting,  ///< shared timeline has not reached the session's arrival yet
  kRunning,
  kDone,
};

/// What the monitor knows about one session at one tick — the row a
/// dashboard renders under that query's window (§2.1).
struct SessionStatus {
  int session_id = -1;
  SessionState state = SessionState::kWaiting;
  /// Tick time on the session's own clock (now - start offset; negative
  /// while waiting).
  double local_time_ms = 0;
  /// The DMV poll the estimate was computed from (null while waiting, the
  /// final snapshot once done).
  const ProfileSnapshot* snapshot = nullptr;
  /// Full estimator output; meaningful while kRunning.
  ProgressReport report;
  /// [0, 1]; 0 while waiting, 1 once done, report.query_progress otherwise.
  double progress = 0;

  // --- Transport condition (endpoint-backed sessions only) ---
  /// True when the session polls a SnapshotEndpoint instead of reading a
  /// local trace. The fields below stay at their defaults for local ones.
  bool remote = false;
  /// This tick's estimate came from a held/interpolated snapshot (no fresh
  /// data crossed the link this tick).
  bool stale = false;
  /// Age of the snapshot behind the estimate: tick time minus the accepted
  /// snapshot's own timestamp.
  double staleness_ms = 0;
  /// The session exhausted its consecutive-failure budget; it keeps being
  /// polled (degraded is recoverable) but its estimate may be arbitrarily
  /// old.
  bool degraded = false;
  int consecutive_failures = 0;

  // --- Ensemble view (EstimatorOptions::ensemble sessions only) ---
  /// True when the session runs the robust EnsembleEstimator instead of a
  /// single configuration; `report` then holds the selected candidate's
  /// full report and `progress` the ensemble's headline progress.
  bool ensemble = false;
  /// Selected candidate (index + name in the ensemble's candidate pool).
  int ensemble_winner = -1;
  const char* ensemble_winner_name = "";
  /// Uncertainty band across the trusted candidates, [0, 1]; always
  /// brackets `progress`. Zero-width for non-ensemble sessions.
  double band_lo = 0;
  double band_hi = 0;
};

/// Aggregate counters across the life of one MonitorService.
struct MonitorStats {
  size_t sessions = 0;
  /// Session states as of the most recent tick.
  size_t active = 0;
  size_t waiting = 0;
  size_t done = 0;
  uint64_t ticks = 0;
  /// Progress reports computed (one per active session per tick).
  uint64_t reports_computed = 0;
  /// Distinct (plan, catalog, options) estimators built — the cache keeps
  /// this below the session count when sessions share a plan.
  size_t estimators_cached = 0;
  int num_threads = 0;
  /// Wall-clock percentiles of one EstimateInto (+ invariant checks) call.
  double p50_estimate_latency_ms = 0;
  double p95_estimate_latency_ms = 0;
  /// Largest single estimate latency seen over the service's life.
  double max_estimate_latency_ms = 0;
  /// Total wall-clock time spent inside estimator calls (sum over all
  /// sessions and ticks) and the resulting estimator-only throughput.
  /// Contrast with reports_per_sec, which divides by whole-tick wall time
  /// (fan-out, barrier and transport included).
  double estimate_wall_ms = 0;
  double estimates_per_sec = 0;
  /// Sum of estimate latencies within the most recent tick — the per-tick
  /// estimation cost a dashboard would graph.
  double last_tick_estimate_ms = 0;
  /// Wall-clock percentiles of one whole Tick() (all sessions, fan-out +
  /// barrier).
  double p50_tick_latency_ms = 0;
  double p95_tick_latency_ms = 0;
  /// Wall-clock time spent inside Tick() and the resulting throughput.
  double wall_ms = 0;
  double reports_per_sec = 0;

  // --- Remote transport aggregates (sum over endpoint-backed sessions) ---
  size_t remote_sessions = 0;
  /// Sessions currently in the degraded state (as of the last tick).
  size_t degraded_sessions = 0;
  uint64_t transport_polls = 0;
  uint64_t transport_retries = 0;
  /// Attempts lost to timeouts/drops at the transport level.
  uint64_t transport_failures = 0;
  /// Frames that arrived but failed framing/CRC/decode.
  uint64_t decode_errors = 0;
  uint64_t snapshots_accepted = 0;
  uint64_t duplicates_ignored = 0;
  uint64_t regressions_rejected = 0;
  /// Ticks on which a session served held/interpolated data.
  uint64_t stale_reports = 0;
  /// Wire bytes received across all remote sessions — the number the delta
  /// protocol drives down (bench/monitor_scale divides it out per session
  /// per second, full vs delta).
  uint64_t transport_bytes = 0;
  /// Snapshot deltas applied against acked bases, resyncs that fell back
  /// to a keyframe, and responses answering a different request_id than
  /// the one in flight (late/misrouted deliveries).
  uint64_t deltas_applied = 0;
  uint64_t delta_resyncs = 0;
  uint64_t request_id_mismatches = 0;

  // --- Ensemble aggregates (EstimatorOptions::ensemble sessions only) ---
  size_t ensemble_sessions = 0;
  /// Distinct cached EnsembleEstimators (own cache beside the estimator
  /// cache, keyed the same way).
  size_t ensembles_cached = 0;
  /// Candidate EstimateInto calls issued by ensemble sessions (candidate
  /// count × ensemble estimates).
  uint64_t ensemble_candidate_estimates = 0;
  /// Winner changes across all ensemble sessions (hysteresis flap gauge).
  uint64_t ensemble_switches = 0;
  /// Per-candidate aggregates summed over ensemble sessions, indexed like
  /// the candidate pool (names resolve the indexes). Empty until the first
  /// ensemble estimate.
  std::vector<std::string> ensemble_candidate_names;
  /// Cumulative per-candidate estimate latency (the per-candidate cost
  /// split of the ensemble's estimate_wall share).
  std::vector<double> ensemble_candidate_latency_ms;
  /// Ticks each candidate spent as some session's selected winner.
  std::vector<uint64_t> ensemble_selected_ticks;

  // --- Bounds-engine aggregates (single-estimator sessions whose
  //     EstimatorOptions::bounds_engine is not the Appendix-A default) ---
  /// Sessions running a non-default bounding engine.
  size_t lp_bounds_sessions = 0;
  /// Nodes where the LpBound engine tightened the Appendix A upper bound,
  /// summed over the sessions' workspace counters.
  uint64_t bounds_lp_tightenings = 0;
  /// Inverted engine intersections resolved to the Appendix-A interval;
  /// nonzero means an engine produced an unsound interval somewhere — a
  /// red flag worth alerting on, hence surfaced here.
  uint64_t bounds_intersection_inversions = 0;
};

/// Owns many concurrently-monitored query sessions and replays their DMV
/// traces against one shared virtual timeline — the reproduction of the LQS
/// front-end tracking "multiple, concurrently executing queries, each of
/// them being given their own dedicated window" (§2.1).
///
/// Each registered session pairs an executed query's trace with a start
/// offset on the shared timeline. Tick(t) computes a ProgressReport for
/// every session active at time t on a worker pool, one estimator call per
/// session; estimators are cached per distinct (plan, catalog, options) and
/// shared across sessions — safely, because estimators are const after
/// construction and every session drives EstimateInto through its own
/// private Workspace — while the per-session ProgressInvariantChecker state
/// stays private to its session. Sessions registered with
/// EstimatorOptions::ensemble run a cached EnsembleEstimator (every preset
/// at once, online selection + uncertainty band) under the same sharing
/// rule.
///
/// Determinism contract: results depend only on the registered sessions and
/// the tick times, never on options.num_threads or scheduling. Work is
/// computed in parallel into per-session slots and returned in session
/// registration order, so rendering the returned statuses produces
/// byte-identical output for 1 thread and N threads (bench/monitor_scale.cc
/// verifies this on every run).
///
/// Threading: register and tick from one driver thread (sessions_ and the
/// estimator cache are driver-only by design). The aggregate counters are
/// the exception — they live behind stats_mu_
/// (lock_rank::kMonitorStats), so stats() may be called from any thread
/// while the driver ticks, the way a dashboard thread samples a live
/// monitor. The discipline is compile-time checked via the annotations
/// below (DESIGN.md §9).
class MonitorService {
 public:
  explicit MonitorService(MonitorOptions options = {});
  ~MonitorService();

  MonitorService(const MonitorService&) = delete;
  MonitorService& operator=(const MonitorService&) = delete;

  /// Registers one monitored session and returns its id (dense, starting
  /// at 0). `plan`, `catalog` and `trace` must outlive the service.
  int RegisterSession(std::string name, const Plan* plan,
                      const Catalog* catalog, const ProfileTrace* trace,
                      double start_offset_ms,
                      const EstimatorOptions& estimator_options =
                          EstimatorOptions::Lqs());

  /// Registers a session whose snapshots arrive through `endpoint` — over
  /// the wire format, with the PollingClient's timeout/retry/backoff and
  /// duplicate/regression filtering between the link and the estimator
  /// (DESIGN.md §10). `plan` and `catalog` must outlive the service; the
  /// endpoint is owned by the session. The trace-backed RegisterSession
  /// above stays the in-process fast path: its sessions read the trace
  /// directly and are byte-identical to pre-transport behaviour.
  int RegisterRemoteSession(std::string name, const Plan* plan,
                            const Catalog* catalog,
                            std::unique_ptr<SnapshotEndpoint> endpoint,
                            double start_offset_ms,
                            const PollingClientOptions& client_options = {},
                            const EstimatorOptions& estimator_options =
                                EstimatorOptions::Lqs());

  /// Transport counters of one endpoint-backed session (e.g. to inspect the
  /// fault mix a test injected). Must be a remote session id. Driver thread
  /// only — the client is session state, not behind stats_mu_.
  const ClientStats& session_client_stats(int session_id) const {
    return sessions_[static_cast<size_t>(session_id)].client->stats();
  }

  size_t session_count() const { return sessions_.size(); }
  const std::string& session_name(int session_id) const {
    return sessions_[static_cast<size_t>(session_id)].name;
  }

  /// Virtual time at which the last session finishes (0 when no session
  /// does any work). Remote sessions contribute their endpoint's advertised
  /// horizon; an endpoint that does not know one contributes nothing (its
  /// session completes during overtime ticks, see MonitorOptions).
  double HorizonMs() const;

  /// True when every session has reached kDone as of the last tick.
  bool AllSessionsDone() const;

  /// Advances the shared timeline to `now_ms` and computes every session's
  /// status. Call with non-decreasing times — the invariant checkers
  /// require in-order replay. Returned statuses are indexed by session id.
  std::vector<SessionStatus> Tick(double now_ms) LQS_EXCLUDES(stats_mu_);

  /// Runs the whole timeline: ticks from the first tick mark through the
  /// horizon, invoking `render` (may be empty) after each tick. A
  /// degenerate horizon of zero virtual ms — every session empty — renders
  /// a single t=0 tick instead of looping forever on a zero tick width.
  void RunToCompletion(
      const std::function<void(double now_ms,
                               const std::vector<SessionStatus>&)>& render);

  /// End-of-timeline invariant verdict: every violation accumulated during
  /// ticking plus each session's CheckFinal against its final snapshot.
  /// With check_invariants off, returns an empty (ok) report.
  ValidationReport FinalCheck();

  /// Aggregate counters; percentiles/throughput are recomputed on call.
  /// Safe to call from any thread concurrently with the driver's Tick().
  MonitorStats stats() const LQS_EXCLUDES(stats_mu_);

 private:
  struct Session {
    std::string name;
    const Plan* plan;
    const Catalog* catalog;
    /// Local sessions read this trace directly; null for remote sessions.
    const ProfileTrace* trace;
    double start_offset_ms;
    const ProgressEstimator* estimator;  // owned by estimator_cache_
    std::unique_ptr<ProgressInvariantChecker> checker;  // null if unchecked
    /// Remote sessions poll through this client; null for local sessions.
    /// Like `checker`, it is per-session mutable state: touched by exactly
    /// one pool worker per tick, ticks ordered by the ParallelFor barrier.
    std::unique_ptr<PollingClient> client;
    /// Latest state, written by ComputeStatus (same ownership as above) so
    /// the driver can detect completion and aggregate transport stats.
    SessionState last_state = SessionState::kWaiting;
    /// Estimation scratch reused across ticks, bound to `estimator` on the
    /// first estimate. Estimators are shared across sessions via the cache,
    /// but each session owns its workspace — exactly the one-workspace-per-
    /// estimator-per-thread contract, because a session is touched by
    /// exactly one pool worker per tick and ticks are ordered by the
    /// ParallelFor barrier (the same ownership rule as `checker`/`client`).
    ProgressEstimator::Workspace workspace;
    /// Ensemble-mode sessions estimate through this instead of `estimator`
    /// (which is then null). Same cache-shared/const + per-session-workspace
    /// split as the plain path. `ensemble_report` is the session-owned
    /// output buffer, reused across ticks so the ensemble's per-candidate
    /// vectors never reallocate in steady state. Ensemble sessions carry no
    /// ProgressInvariantChecker: a winner switch may legitimately move
    /// refined cardinalities non-monotonically between ticks (each
    /// candidate is individually monotone, the selection is not), so the
    /// per-estimator invariants don't apply — the ensemble's own
    /// invariants (band brackets selection, band within [0,1]) are
    /// enforced by tests/ensemble_test.cc instead.
    const EnsembleEstimator* ensemble = nullptr;  // owned by ensemble_cache_
    EnsembleEstimator::Workspace ensemble_workspace;
    EnsembleReport ensemble_report;
  };

  /// Cache key: estimator identity is the plan + catalog + the full option
  /// set, packed to an integer via EstimatorOptions::PackBits (all fields
  /// are flags plus one threshold; the ensemble mode flag is one of the
  /// packed bits, so ensemble and single-estimator sessions never alias a
  /// cache slot).
  using EstimatorKey = std::tuple<const Plan*, const Catalog*, uint64_t>;
  const ProgressEstimator* CachedEstimator(const Plan* plan,
                                           const Catalog* catalog,
                                           const EstimatorOptions& options);
  /// Ensemble twin of CachedEstimator: one shared EnsembleEstimator per
  /// (plan, catalog, packed options). Only `incremental` of the session's
  /// options reaches the candidates (see EstimatorOptions::ensemble).
  const EnsembleEstimator* CachedEnsemble(const Plan* plan,
                                          const Catalog* catalog,
                                          const EstimatorOptions& options);

  /// Computes one session's status at `now_ms` (runs on a pool worker).
  /// LQS_NOALLOC: this is the steady-state body of Tick() — one call per
  /// active session per tick, fanned out across the pool. Its deliberate
  /// allocation boundaries (workspace sizing, transport decode, violation
  /// reporting) are LQS_ALLOC_OK-annotated at their definitions;
  /// everything else must stay heap-free (tests/estimator_alloc_test.cc
  /// bounds the whole Tick at runtime).
  /// LQS_DETERMINISTIC: the session-ordered output (`*out`) depends only on
  /// the session's registered inputs and `now_ms`, never on threads or
  /// wall-clock time; the one sanctioned exception is `*latency_ms`, pure
  /// timing telemetry that feeds stats() and never the statuses (see the
  /// det-ok on LatencyClockNow in monitor_service.cc).
  LQS_NOALLOC LQS_DETERMINISTIC void ComputeStatus(size_t index, double now_ms,
                                                   SessionStatus* out,
                                                   double* latency_ms);
  /// Endpoint-backed arm of ComputeStatus: polls the session's client and
  /// estimates off whatever snapshot the link yielded.
  void ComputeRemoteStatus(Session* session, SessionStatus* out,
                           double* latency_ms);
  /// Shared estimate tail of the local and remote arms: dispatches to the
  /// ensemble / checked / plain estimator against `out->snapshot` (must be
  /// non-null) and stamps `*latency_ms`. Inherits ComputeStatus's noalloc
  /// and determinism obligations transitively (it is only reachable from
  /// that root).
  void EstimateSession(Session* session, SessionStatus* out,
                       double* latency_ms);

  const MonitorOptions options_;
  /// Internally synchronized (owns its own kThreadPool lock); fanned out to
  /// by the driver, joined at the barrier before any state below is read.
  ThreadPool pool_;  // lqs-verify: guard-ok(internally synchronized pool)
  /// Driver-thread-only by the documented threading contract: registration
  /// and Tick() happen on one thread; pool workers touch disjoint per-
  /// session slots between fan-out and barrier. stats() never reads these —
  /// it reads the guarded mirror counters below.
  // lqs-verify: guard-ok(driver-owned; stats() reads guarded mirrors)
  std::vector<Session> sessions_;
  // lqs-verify: guard-ok(driver-owned; stats() reads guarded mirrors)
  std::map<EstimatorKey, std::unique_ptr<ProgressEstimator>> estimator_cache_;
  // lqs-verify: guard-ok(driver-owned; stats() reads guarded mirrors)
  std::map<EstimatorKey, std::unique_ptr<EnsembleEstimator>> ensemble_cache_;

  /// Guards the counters behind stats(). The driver updates them at
  /// registration and once per tick after the ParallelFor barrier (never
  /// while holding the pool's lock — kMonitorStats < kThreadPool keeps even
  /// that nesting legal); any thread may read them through stats().
  mutable Mutex stats_mu_{lock_rank::kMonitorStats,
                          "MonitorService::stats_mu_"};
  /// Mirrors of driver-owned container sizes, so stats() can report them
  /// without racing a concurrent RegisterSession (sessions_.push_back and
  /// map::emplace are not readable mid-mutation from another thread).
  size_t sessions_registered_ LQS_GUARDED_BY(stats_mu_) = 0;
  size_t estimators_cached_ LQS_GUARDED_BY(stats_mu_) = 0;
  size_t remote_sessions_ LQS_GUARDED_BY(stats_mu_) = 0;
  uint64_t ticks_ LQS_GUARDED_BY(stats_mu_) = 0;
  uint64_t reports_computed_ LQS_GUARDED_BY(stats_mu_) = 0;
  size_t last_active_ LQS_GUARDED_BY(stats_mu_) = 0;
  size_t last_waiting_ LQS_GUARDED_BY(stats_mu_) = 0;
  size_t last_done_ LQS_GUARDED_BY(stats_mu_) = 0;
  double wall_ms_ LQS_GUARDED_BY(stats_mu_) = 0;
  double estimate_wall_ms_ LQS_GUARDED_BY(stats_mu_) = 0;
  double max_estimate_latency_ms_ LQS_GUARDED_BY(stats_mu_) = 0;
  double last_tick_estimate_ms_ LQS_GUARDED_BY(stats_mu_) = 0;
  /// Latency distributions behind the published p50/p95: fixed-capacity
  /// reservoir samples, not grow-forever vectors — a service that ticks
  /// indefinitely must hold its stats in O(1) memory (and Add() must not
  /// allocate inside the tick's budget, see latency_reservoir.h).
  LatencyReservoir estimate_latencies_ms_ LQS_GUARDED_BY(stats_mu_);
  LatencyReservoir tick_latencies_ms_ LQS_GUARDED_BY(stats_mu_);
  /// Transport aggregates, recomputed by the driver after each tick's
  /// barrier from the per-session clients and published here for stats().
  size_t last_degraded_ LQS_GUARDED_BY(stats_mu_) = 0;
  ClientStats transport_totals_ LQS_GUARDED_BY(stats_mu_);
  /// Ensemble aggregates, recomputed from the per-session ensemble
  /// workspaces under the same post-barrier quiescence rule.
  size_t ensemble_sessions_ LQS_GUARDED_BY(stats_mu_) = 0;
  size_t ensembles_cached_ LQS_GUARDED_BY(stats_mu_) = 0;
  uint64_t ensemble_candidate_estimates_ LQS_GUARDED_BY(stats_mu_) = 0;
  uint64_t ensemble_switches_ LQS_GUARDED_BY(stats_mu_) = 0;
  std::vector<std::string> ensemble_candidate_names_
      LQS_GUARDED_BY(stats_mu_);
  std::vector<double> ensemble_candidate_latency_ms_
      LQS_GUARDED_BY(stats_mu_);
  std::vector<uint64_t> ensemble_selected_ticks_ LQS_GUARDED_BY(stats_mu_);
  /// Bounds-engine aggregates, recomputed from the per-session estimator
  /// workspaces under the same post-barrier quiescence rule.
  size_t lp_bounds_sessions_ LQS_GUARDED_BY(stats_mu_) = 0;
  uint64_t bounds_lp_tightenings_ LQS_GUARDED_BY(stats_mu_) = 0;
  uint64_t bounds_intersection_inversions_ LQS_GUARDED_BY(stats_mu_) = 0;
};

}  // namespace lqs

#endif  // LQS_MONITOR_MONITOR_SERVICE_H_
