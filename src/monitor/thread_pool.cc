#include "monitor/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace lqs {

namespace {
constexpr int kMaxDefaultThreads = 16;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    num_threads = std::clamp(num_threads, 1, kMaxDefaultThreads);
  }
  num_threads_ = num_threads;
  // The caller acts as one worker inside ParallelFor, so spawn one fewer.
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    if (current_job_ != nullptr) {
      // Shutdown audit (DESIGN.md §9): a destructor racing an in-flight
      // ParallelFor would free mu_ and the condvars under the feet of the
      // caller blocked in the job barrier. That is a caller contract
      // violation; fail loudly instead of corrupting the handoff.
      std::fprintf(stderr,
                   "lqs::ThreadPool: destroyed while a ParallelFor is still "
                   "in flight\n");
      std::fflush(stderr);
      std::abort();
    }
    shutdown_ = true;
  }
  job_ready_.SignalAll();
  for (std::thread& w : workers_) w.join();
}

size_t ThreadPool::Drain(Job* job) {
  size_t completed = 0;
  while (true) {
    const size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->size) break;
    (*job->fn)(i);
    ++completed;
  }
  return completed;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    Job* job = nullptr;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && job_generation_ == seen_generation) {
        job_ready_.Wait(&mu_);
      }
      if (shutdown_) return;
      seen_generation = job_generation_;
      // The job may already be finished and retired by the time a slow
      // waker gets here; current_job_ is null then and we just re-wait.
      job = current_job_;
      if (job == nullptr) continue;
      job->attached++;
    }
    const size_t completed = Drain(job);
    {
      MutexLock lock(&mu_);
      job->done += completed;
      job->attached--;
    }
    job_done_.SignalAll();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads_ <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Job job;
  job.fn = &fn;
  job.size = n;
  {
    MutexLock lock(&mu_);
    current_job_ = &job;
    ++job_generation_;
  }
  job_ready_.SignalAll();
  const size_t completed = Drain(&job);
  MutexLock lock(&mu_);
  job.done += completed;
  // Wait for the last index to finish AND every attached worker to let go
  // of the job pointer before `job` leaves scope.
  while (!(job.done == n && job.attached == 0)) {
    job_done_.Wait(&mu_);
  }
  current_job_ = nullptr;
}

}  // namespace lqs
