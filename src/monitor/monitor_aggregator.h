#ifndef LQS_MONITOR_MONITOR_AGGREGATOR_H_
#define LQS_MONITOR_MONITOR_AGGREGATOR_H_

#include <vector>

#include "monitor/monitor_service.h"

namespace lqs {

/// Merges per-shard MonitorStats into one fleet view.
///
/// Merge semantics, by field class:
///  - event counters (reports, polls, bytes, accepted/rejected, ...) and
///    session counts: summed;
///  - ticks: the maximum — shards tick the same shared timeline, so the
///    fleet has ticked as often as its most-ticked shard (backpressure may
///    hold individual shards below that);
///  - wall/estimate time: summed (the sharded monitor ticks shards
///    sequentially on the driver, so shard wall times are disjoint) and
///    throughput is recomputed from the merged sums, never averaged from
///    per-shard rates;
///  - latency percentiles: the worst (maximum) across shards. Percentiles
///    of disjoint streams cannot be combined exactly from summaries alone,
///    and for an SLO readout the conservative bound is the useful one —
///    "every shard's p95 is at or below this".
///
/// Concurrency: stateless (one static pure function over value snapshots),
/// so it is safe from any thread by construction and carries no `locks`
/// annotations.
class MonitorAggregator {
 public:
  static MonitorStats Merge(const std::vector<MonitorStats>& shard_stats);
};

}  // namespace lqs

#endif  // LQS_MONITOR_MONITOR_AGGREGATOR_H_
