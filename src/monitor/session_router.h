#ifndef LQS_MONITOR_SESSION_ROUTER_H_
#define LQS_MONITOR_SESSION_ROUTER_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace lqs {

/// Consistent session → shard hashing for the sharded monitor.
///
/// Each shard contributes `virtual_nodes` points to a 64-bit hash ring; a
/// session key routes to the shard owning the first ring point at or after
/// the key's hash (wrapping). Two properties the plain `hash % N` scheme
/// lacks:
///
///  - *Stability*: changing the shard count from N to N+1 remaps only the
///    keys that land on the new shard's ring points (~1/(N+1) of them),
///    instead of nearly all keys. A fleet monitor resharding under load
///    must not stampede every session's state to a new home at once.
///  - *Balance*: virtual nodes smooth the variance of random ring
///    placement; with the default 64 per shard the heaviest shard carries
///    within a few percent of the mean at thousand-session scale
///    (tests/sharded_monitor_test.cc pins this).
///
/// Hashing is FNV-1a 64 over the key bytes, passed through a 64-bit
/// avalanche finalizer (Murmur3's) before placement — FNV alone leaves the
/// high bits of short keys under-mixed, and ring position keys on the full
/// 64-bit value. Both are deterministic across runs and platforms, so
/// session placement (and therefore every downstream per-shard number) is
/// reproducible.
///
/// Concurrency: immutable after construction (the ring is built in the
/// constructor and never touched again), so ShardFor is safe from any
/// thread with no lock — which is why the sharded monitor's `locks`
/// annotations never mention this class.
class SessionRouter {
 public:
  explicit SessionRouter(int num_shards, int virtual_nodes = 64);

  /// Shard in [0, num_shards) owning `session_key`.
  int ShardFor(std::string_view session_key) const;

  int num_shards() const { return num_shards_; }
  int virtual_nodes() const { return virtual_nodes_; }

  /// FNV-1a 64-bit hash of `bytes` (exposed for tests).
  static uint64_t Fnv1a(std::string_view bytes);

 private:
  struct RingPoint {
    uint64_t hash;
    int shard;
  };

  const int num_shards_;
  const int virtual_nodes_;
  std::vector<RingPoint> ring_;  // sorted by hash; frozen after the ctor
};

}  // namespace lqs

#endif  // LQS_MONITOR_SESSION_ROUTER_H_
