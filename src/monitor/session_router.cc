#include "monitor/session_router.h"

#include <algorithm>
#include <string>

namespace lqs {

uint64_t SessionRouter::Fnv1a(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {

// Murmur3's 64-bit finalizer. FNV-1a mixes each byte with one multiply, which
// leaves the high bits of short, similar keys ("shard-3#17", "session-42")
// badly avalanched — and ring position keys on the *full* 64-bit value, so
// raw FNV clusters the ring points and skews shard load by several fold
// (tests/sharded_monitor_test.cc pins the balance this finalizer restores).
uint64_t Avalanche(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

SessionRouter::SessionRouter(int num_shards, int virtual_nodes)
    : num_shards_(std::max(1, num_shards)),
      virtual_nodes_(std::max(1, virtual_nodes)) {
  ring_.reserve(static_cast<size_t>(num_shards_) *
                static_cast<size_t>(virtual_nodes_));
  std::string point_key;
  for (int shard = 0; shard < num_shards_; ++shard) {
    for (int v = 0; v < virtual_nodes_; ++v) {
      point_key.clear();
      point_key += "shard-";
      point_key += std::to_string(shard);
      point_key += '#';
      point_key += std::to_string(v);
      ring_.push_back(RingPoint{Avalanche(Fnv1a(point_key)), shard});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              // Tie-break on shard id so the ring order is total and
              // placement never depends on sort stability.
              return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
            });
}

int SessionRouter::ShardFor(std::string_view session_key) const {
  const uint64_t hash = Avalanche(Fnv1a(session_key));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const RingPoint& point, uint64_t h) { return point.hash < h; });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the last point
  return it->shard;
}

}  // namespace lqs
