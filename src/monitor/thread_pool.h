#ifndef LQS_MONITOR_THREAD_POOL_H_
#define LQS_MONITOR_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lqs {

/// A fixed pool of worker threads executing index-parallel jobs, sized for
/// the monitor's per-tick fan-out (one progress estimate per active
/// session). Workers persist across jobs; ParallelFor hands out indices via
/// an atomic counter so the assignment of index -> thread is dynamic, which
/// is why MonitorService writes results into per-index slots and renders
/// them in index order — output stays deterministic for any thread count.
///
/// With num_threads <= 1 no threads are spawned and jobs run inline on the
/// caller; that is the reference serial schedule the parallel runs must
/// match byte-for-byte.
class ThreadPool {
 public:
  /// `num_threads` <= 0 picks a hardware-based default (capped — see .cc).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, n), distributing indices across the
  /// workers, and blocks until all n calls have returned. The caller thread
  /// participates, so the pool makes progress even under a 1-core cgroup.
  /// Not reentrant: one ParallelFor at a time.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Worker count including the caller thread (>= 1).
  int num_threads() const { return num_threads_; }

 private:
  /// One ParallelFor invocation. Lives on the caller's stack; workers hold
  /// a pointer only between Attach/Detach (both under mu_), and ParallelFor
  /// returns only once every attached worker has detached, so the pointer
  /// never outlives the job.
  struct Job {
    const std::function<void(size_t)>* fn;
    size_t size;
    std::atomic<size_t> next{0};
    size_t done = 0;      // guarded by mu_
    int attached = 0;     // guarded by mu_
  };

  void WorkerLoop();
  /// Claims and runs indices of `job` until exhausted; returns the number
  /// of indices this thread completed.
  static size_t Drain(Job* job);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  uint64_t job_generation_ = 0;  // guarded by mu_
  bool shutdown_ = false;        // guarded by mu_
  Job* current_job_ = nullptr;   // guarded by mu_
};

}  // namespace lqs

#endif  // LQS_MONITOR_THREAD_POOL_H_
