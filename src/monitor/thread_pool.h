#ifndef LQS_MONITOR_THREAD_POOL_H_
#define LQS_MONITOR_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lqs {

/// A fixed pool of worker threads executing index-parallel jobs, sized for
/// the monitor's per-tick fan-out (one progress estimate per active
/// session). Workers persist across jobs; ParallelFor hands out indices via
/// an atomic counter so the assignment of index -> thread is dynamic, which
/// is why MonitorService writes results into per-index slots and renders
/// them in index order — output stays deterministic for any thread count.
///
/// With num_threads <= 1 no threads are spawned and jobs run inline on the
/// caller; that is the reference serial schedule the parallel runs must
/// match byte-for-byte.
///
/// Lock discipline (proven by clang -Wthread-safety, DESIGN.md §9): all
/// handoff state is guarded by mu_, a leaf lock (lock_rank::kThreadPool) —
/// user jobs run with no pool lock held, so fn may take its own locks
/// freely.
class ThreadPool {
 public:
  /// `num_threads` <= 0 picks a hardware-based default (capped — see .cc).
  explicit ThreadPool(int num_threads);
  /// Joins the workers. Destroying the pool while a ParallelFor is still in
  /// flight on another thread is a contract violation and aborts with a
  /// diagnostic instead of racing the job handoff (the shutdown audit in
  /// DESIGN.md §9; regression-tested in tests/monitor_test.cc).
  ~ThreadPool() LQS_EXCLUDES(mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, n), distributing indices across the
  /// workers, and blocks until all n calls have returned. The caller thread
  /// participates, so the pool makes progress even under a 1-core cgroup.
  /// Not reentrant: one ParallelFor at a time.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      LQS_EXCLUDES(mu_);

  /// Worker count including the caller thread (>= 1).
  int num_threads() const { return num_threads_; }

 private:
  /// One ParallelFor invocation. Lives on the caller's stack; workers hold
  /// a pointer only between Attach/Detach (both under mu_), and ParallelFor
  /// returns only once every attached worker has detached, so the pointer
  /// never outlives the job. `done` and `attached` are guarded by the
  /// owning pool's mu_ — the annotation cannot name another object's
  /// member, so that part of the discipline stays convention plus TSan.
  struct Job {
    const std::function<void(size_t)>* fn;
    size_t size;
    /// Index handout. Relaxed ordering suffices: the counter only
    /// partitions [0, n) between threads; publication of `fn`/`size` to a
    /// worker happens-before via mu_ at attach, and the results written by
    /// fn(i) are published back to the caller via mu_ when `done` is
    /// accumulated under the lock.
    std::atomic<size_t> next{0};
    size_t done = 0;      // guarded by the pool's mu_
    int attached = 0;     // guarded by the pool's mu_
  };

  void WorkerLoop() LQS_EXCLUDES(mu_);
  /// Claims and runs indices of `job` until exhausted; returns the number
  /// of indices this thread completed. Runs with mu_ NOT held.
  static size_t Drain(Job* job);

  /// Both written only in the constructor, before any worker exists; const
  /// in spirit (num_threads_ is clamped from the argument, so it cannot be
  /// a const member initialized in the init list without a helper).
  // lqs-verify: guard-ok(ctor-only write, precedes all worker threads)
  int num_threads_;
  // lqs-verify: guard-ok(ctor-only write, precedes all worker threads)
  std::vector<std::thread> workers_;

  /// Leaf lock for the job handoff; see lock_rank::kThreadPool.
  Mutex mu_{lock_rank::kThreadPool, "ThreadPool::mu_"};
  CondVar job_ready_;
  CondVar job_done_;
  uint64_t job_generation_ LQS_GUARDED_BY(mu_) = 0;
  bool shutdown_ LQS_GUARDED_BY(mu_) = false;
  Job* current_job_ LQS_GUARDED_BY(mu_) = nullptr;
};

}  // namespace lqs

#endif  // LQS_MONITOR_THREAD_POOL_H_
