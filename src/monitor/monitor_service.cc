#include "monitor/monitor_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace lqs {

MonitorService::MonitorService(MonitorOptions options)
    : options_(options), pool_(options.num_threads) {}

MonitorService::~MonitorService() = default;

uint64_t MonitorService::PackOptions(const EstimatorOptions& o) {
  uint64_t bits = 0;
  int shift = 0;
  for (bool flag :
       {o.use_driver_nodes, o.refine_cardinality, o.bound_cardinality,
        o.semi_blocking_adjust, o.two_phase_blocking, o.use_weights,
        o.critical_path_only, o.storage_predicate_io, o.batch_mode_segments,
        o.interpolate_refinement, o.propagate_refinement}) {
    if (flag) bits |= uint64_t{1} << shift;
    ++shift;
  }
  return bits | (o.refine_min_rows << 16);
}

const ProgressEstimator* MonitorService::CachedEstimator(
    const Plan* plan, const Catalog* catalog,
    const EstimatorOptions& options) {
  const EstimatorKey key{plan, catalog, PackOptions(options)};
  auto it = estimator_cache_.find(key);
  if (it == estimator_cache_.end()) {
    it = estimator_cache_
             .emplace(key, std::make_unique<ProgressEstimator>(plan, catalog,
                                                               options))
             .first;
  }
  return it->second.get();
}

int MonitorService::RegisterSession(std::string name, const Plan* plan,
                                    const Catalog* catalog,
                                    const ProfileTrace* trace,
                                    double start_offset_ms,
                                    const EstimatorOptions& estimator_options) {
  const ProgressEstimator* estimator =
      CachedEstimator(plan, catalog, estimator_options);
  Session session{std::move(name), plan,      catalog, trace,
                  start_offset_ms, estimator, nullptr};
  if (options_.check_invariants) {
    session.checker = std::make_unique<ProgressInvariantChecker>(
        estimator, options_.checker_options);
  }
  sessions_.push_back(std::move(session));
  return static_cast<int>(sessions_.size()) - 1;
}

double MonitorService::HorizonMs() const {
  double horizon = 0;
  for (const Session& s : sessions_) {
    horizon =
        std::max(horizon, s.start_offset_ms + s.trace->total_elapsed_ms);
  }
  return horizon;
}

void MonitorService::ComputeStatus(size_t index, double now_ms,
                                   SessionStatus* out, double* latency_ms) {
  Session& session = sessions_[index];
  out->session_id = static_cast<int>(index);
  out->local_time_ms = now_ms - session.start_offset_ms;
  *latency_ms = -1;
  if (out->local_time_ms < 0) {
    out->state = SessionState::kWaiting;
    out->progress = 0;
    return;
  }
  if (out->local_time_ms >= session.trace->total_elapsed_ms) {
    out->state = SessionState::kDone;
    out->snapshot = &session.trace->final_snapshot;
    out->progress = 1.0;
    return;
  }
  out->state = SessionState::kRunning;
  out->snapshot = session.trace->SnapshotAtOrBefore(out->local_time_ms);
  if (out->snapshot == nullptr) {
    // Unreachable for executor-produced traces (the profiler snapshots on
    // its first poll), but hand-built traces may have no sample this early.
    out->progress = 0;
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  out->report = session.checker != nullptr
                    ? session.checker->EstimateChecked(*out->snapshot)
                    : session.estimator->Estimate(*out->snapshot);
  *latency_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  out->progress = out->report.query_progress;
}

std::vector<SessionStatus> MonitorService::Tick(double now_ms) {
  std::vector<SessionStatus> statuses(sessions_.size());
  std::vector<double> latencies(sessions_.size(), -1);
  const auto tick_start = std::chrono::steady_clock::now();
  pool_.ParallelFor(sessions_.size(), [&](size_t i) {
    ComputeStatus(i, now_ms, &statuses[i], &latencies[i]);
  });
  const double tick_wall_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - tick_start)
                                  .count();
  // Counter updates happen after the ParallelFor barrier, under stats_mu_
  // only — the pool's lock is never held here, so the kMonitorStats <
  // kThreadPool rank order is trivially respected.
  MutexLock lock(&stats_mu_);
  wall_ms_ += tick_wall_ms;
  tick_latencies_ms_.push_back(tick_wall_ms);
  ++ticks_;
  last_active_ = last_waiting_ = last_done_ = 0;
  for (const SessionStatus& s : statuses) {
    switch (s.state) {
      case SessionState::kWaiting: ++last_waiting_; break;
      case SessionState::kRunning: ++last_active_; break;
      case SessionState::kDone: ++last_done_; break;
    }
  }
  for (double latency : latencies) {
    if (latency >= 0) {
      ++reports_computed_;
      estimate_latencies_ms_.push_back(latency);
    }
  }
  return statuses;
}

void MonitorService::RunToCompletion(
    const std::function<void(double, const std::vector<SessionStatus>&)>&
        render) {
  const double horizon = HorizonMs();
  const double tick = options_.tick_ms > 0
                          ? options_.tick_ms
                          : horizon / std::max(1, options_.ticks_per_horizon);
  if (tick <= 0) {
    // Degenerate horizon: every session is empty. One t=0 tick still
    // reports their kDone states; looping `t += 0` would never terminate
    // (the bug the old multi_query_monitor example had).
    if (!sessions_.empty()) {
      auto statuses = Tick(0);
      if (render) render(0, statuses);
    }
    return;
  }
  for (double t = tick; t <= horizon + 1e-9; t += tick) {
    auto statuses = Tick(t);
    if (render) render(t, statuses);
  }
}

ValidationReport MonitorService::FinalCheck() {
  ValidationReport merged;
  for (Session& session : sessions_) {
    if (session.checker == nullptr) continue;
    session.checker->CheckFinal(session.trace->final_snapshot);
    for (const ValidationIssue& issue : session.checker->report().issues()) {
      merged.Add(issue.check, issue.node_id, issue.pipeline_id,
                 session.name + ": " + issue.detail);
    }
  }
  return merged;
}

MonitorStats MonitorService::stats() const {
  MutexLock lock(&stats_mu_);
  MonitorStats stats;
  stats.sessions = sessions_.size();
  stats.active = last_active_;
  stats.waiting = last_waiting_;
  stats.done = last_done_;
  stats.ticks = ticks_;
  stats.reports_computed = reports_computed_;
  stats.estimators_cached = estimator_cache_.size();
  stats.num_threads = pool_.num_threads();
  stats.wall_ms = wall_ms_;
  if (wall_ms_ > 0) {
    stats.reports_per_sec =
        static_cast<double>(reports_computed_) / (wall_ms_ / 1000.0);
  }
  auto percentiles = [](std::vector<double> values, double* p50, double* p95) {
    if (values.empty()) return;
    std::sort(values.begin(), values.end());
    auto at = [&values](double p) {
      const size_t rank = std::min(
          values.size() - 1,
          static_cast<size_t>(p * static_cast<double>(values.size() - 1)));
      return values[rank];
    };
    *p50 = at(0.50);
    *p95 = at(0.95);
  };
  percentiles(estimate_latencies_ms_, &stats.p50_estimate_latency_ms,
              &stats.p95_estimate_latency_ms);
  percentiles(tick_latencies_ms_, &stats.p50_tick_latency_ms,
              &stats.p95_tick_latency_ms);
  return stats;
}

}  // namespace lqs
