#include "monitor/monitor_service.h"

#include <algorithm>
#include <chrono>  // lint:allow-wallclock latency telemetry (LatencyClockNowMs)
#include <string>
#include <utility>

namespace lqs {

namespace {

/// Monotonic timestamp in ms for latency telemetry. The one sanctioned
/// wall-clock read on the ComputeStatus path: latencies feed stats() and
/// never the session-ordered statuses, so the determinism contract on the
/// output bytes is unaffected.
double LatencyClockNowMs() {
  // lqs-verify: det-ok(latency telemetry feeds stats(), never the statuses)
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now.time_since_epoch())
      .count();
}

}  // namespace

MonitorService::MonitorService(MonitorOptions options)
    : options_(options), pool_(options.num_threads) {}

MonitorService::~MonitorService() = default;

const ProgressEstimator* MonitorService::CachedEstimator(
    const Plan* plan, const Catalog* catalog,
    const EstimatorOptions& options) {
  const EstimatorKey key{plan, catalog, options.PackBits()};
  auto it = estimator_cache_.find(key);
  if (it == estimator_cache_.end()) {
    it = estimator_cache_
             .emplace(key, std::make_unique<ProgressEstimator>(plan, catalog,
                                                               options))
             .first;
  }
  return it->second.get();
}

const EnsembleEstimator* MonitorService::CachedEnsemble(
    const Plan* plan, const Catalog* catalog,
    const EstimatorOptions& options) {
  const EstimatorKey key{plan, catalog, options.PackBits()};
  auto it = ensemble_cache_.find(key);
  if (it == ensemble_cache_.end()) {
    EnsembleOptions ensemble_options;  // default candidate pool
    ensemble_options.incremental = options.incremental;
    // Per-candidate latency telemetry through the monitor's sanctioned
    // clock; it feeds Workspace::Stats (aggregated post-barrier into
    // stats()), never the reports.
    ensemble_options.latency_clock_ms = &LatencyClockNowMs;
    it = ensemble_cache_
             .emplace(key, std::make_unique<EnsembleEstimator>(
                               plan, catalog, std::move(ensemble_options)))
             .first;
  }
  return it->second.get();
}

int MonitorService::RegisterSession(std::string name, const Plan* plan,
                                    const Catalog* catalog,
                                    const ProfileTrace* trace,
                                    double start_offset_ms,
                                    const EstimatorOptions& estimator_options) {
  Session session;
  session.name = std::move(name);
  session.plan = plan;
  session.catalog = catalog;
  session.trace = trace;
  session.start_offset_ms = start_offset_ms;
  if (estimator_options.ensemble) {
    // Ensemble sessions estimate through the cached EnsembleEstimator and
    // carry no invariant checker (see the Session field docs).
    session.estimator = nullptr;
    session.ensemble = CachedEnsemble(plan, catalog, estimator_options);
  } else {
    session.estimator = CachedEstimator(plan, catalog, estimator_options);
    if (options_.check_invariants) {
      session.checker = std::make_unique<ProgressInvariantChecker>(
          session.estimator, options_.checker_options);
    }
  }
  sessions_.push_back(std::move(session));
  {
    MutexLock lock(&stats_mu_);
    sessions_registered_ = sessions_.size();
    estimators_cached_ = estimator_cache_.size();
    ensembles_cached_ = ensemble_cache_.size();
    if (sessions_.back().ensemble != nullptr) ++ensemble_sessions_;
  }
  return static_cast<int>(sessions_.size()) - 1;
}

int MonitorService::RegisterRemoteSession(
    std::string name, const Plan* plan, const Catalog* catalog,
    std::unique_ptr<SnapshotEndpoint> endpoint, double start_offset_ms,
    const PollingClientOptions& client_options,
    const EstimatorOptions& estimator_options) {
  Session session;
  session.name = std::move(name);
  session.plan = plan;
  session.catalog = catalog;
  session.trace = nullptr;
  session.start_offset_ms = start_offset_ms;
  if (estimator_options.ensemble) {
    session.estimator = nullptr;
    session.ensemble = CachedEnsemble(plan, catalog, estimator_options);
  } else {
    session.estimator = CachedEstimator(plan, catalog, estimator_options);
    if (options_.check_invariants) {
      session.checker = std::make_unique<ProgressInvariantChecker>(
          session.estimator, options_.checker_options);
    }
  }
  session.client =
      std::make_unique<PollingClient>(std::move(endpoint), client_options);
  sessions_.push_back(std::move(session));
  {
    MutexLock lock(&stats_mu_);
    sessions_registered_ = sessions_.size();
    estimators_cached_ = estimator_cache_.size();
    ensembles_cached_ = ensemble_cache_.size();
    if (sessions_.back().ensemble != nullptr) ++ensemble_sessions_;
    ++remote_sessions_;
  }
  return static_cast<int>(sessions_.size()) - 1;
}

double MonitorService::HorizonMs() const {
  double horizon = 0;
  for (const Session& s : sessions_) {
    const double elapsed = s.trace != nullptr
                               ? s.trace->total_elapsed_ms
                               : std::max(0.0, s.client->KnownHorizonMs());
    horizon = std::max(horizon, s.start_offset_ms + elapsed);
  }
  return horizon;
}

bool MonitorService::AllSessionsDone() const {
  for (const Session& s : sessions_) {
    if (s.last_state != SessionState::kDone) return false;
  }
  return true;
}

void MonitorService::ComputeStatus(size_t index, double now_ms,
                                   SessionStatus* out, double* latency_ms) {
  Session& session = sessions_[index];
  out->session_id = static_cast<int>(index);
  out->local_time_ms = now_ms - session.start_offset_ms;
  out->remote = session.client != nullptr;
  *latency_ms = -1;
  if (out->local_time_ms < 0) {
    out->state = SessionState::kWaiting;
    out->progress = 0;
    session.last_state = out->state;
    return;
  }
  if (session.client != nullptr) {
    ComputeRemoteStatus(&session, out, latency_ms);
    session.last_state = out->state;
    return;
  }
  if (out->local_time_ms >= session.trace->total_elapsed_ms) {
    out->state = SessionState::kDone;
    out->snapshot = &session.trace->final_snapshot;
    out->progress = 1.0;
    session.last_state = out->state;
    return;
  }
  out->state = SessionState::kRunning;
  out->snapshot = session.trace->SnapshotAtOrBefore(out->local_time_ms);
  session.last_state = out->state;
  if (out->snapshot == nullptr) {
    // Unreachable for executor-produced traces (the profiler snapshots on
    // its first poll), but hand-built traces may have no sample this early.
    out->progress = 0;
    return;
  }
  EstimateSession(&session, out, latency_ms);
}

void MonitorService::EstimateSession(Session* session, SessionStatus* out,
                                     double* latency_ms) {
  const double start_ms = LatencyClockNowMs();
  if (session->ensemble != nullptr) {
    // Ensemble arm: every candidate estimates into the session-owned
    // report buffer; the selected candidate's report plus the winner/band
    // view land in the status.
    session->ensemble->EstimateInto(*out->snapshot,
                                    &session->ensemble_workspace,
                                    &session->ensemble_report);
    const EnsembleReport& er = session->ensemble_report;
    out->ensemble = true;
    out->ensemble_winner = er.winner;
    out->ensemble_winner_name = er.winner_name;
    out->band_lo = er.band_lo;
    out->band_hi = er.band_hi;
    out->report = er.selected;
    out->progress = er.query_progress;
  } else if (session->checker != nullptr) {
    session->checker->EstimateCheckedInto(*out->snapshot, &session->workspace,
                                          &out->report);
    out->progress = out->report.query_progress;
  } else {
    session->estimator->EstimateInto(*out->snapshot, &session->workspace,
                                     &out->report);
    out->progress = out->report.query_progress;
  }
  *latency_ms = LatencyClockNowMs() - start_ms;
}

void MonitorService::ComputeRemoteStatus(Session* session, SessionStatus* out,
                                         double* latency_ms) {
  out->remote = true;
  const ClientView& view = session->client->Poll(out->local_time_ms);
  out->stale = view.stale;
  out->staleness_ms = view.staleness_ms;
  out->degraded = view.health == TransportHealth::kDegraded;
  out->consecutive_failures = view.consecutive_failures;
  if (view.query_complete) {
    // The final snapshot crossed the link; counters are final.
    out->state = SessionState::kDone;
    out->snapshot = view.snapshot;
    out->progress = 1.0;
    return;
  }
  out->state = SessionState::kRunning;
  out->snapshot = view.snapshot;
  if (out->snapshot == nullptr) {
    // Nothing has crossed the link yet (first polls lost, or the server
    // has no sample this early). Progress holds at zero; the session is
    // alive, not wedged.
    out->progress = 0;
    return;
  }
  EstimateSession(session, out, latency_ms);
}

std::vector<SessionStatus> MonitorService::Tick(double now_ms) {
  std::vector<SessionStatus> statuses(sessions_.size());
  std::vector<double> latencies(sessions_.size(), -1);
  const auto tick_start = std::chrono::steady_clock::now();
  pool_.ParallelFor(sessions_.size(), [&](size_t i) {
    ComputeStatus(i, now_ms, &statuses[i], &latencies[i]);
  });
  const double tick_wall_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - tick_start)
                                  .count();
  // Transport aggregation runs on the driver after the barrier: per-session
  // clients are quiescent here (the same ownership rule that lets
  // ComputeStatus mutate them without a lock).
  size_t degraded = 0;
  ClientStats transport;
  for (const SessionStatus& s : statuses) {
    if (s.degraded) ++degraded;
  }
  for (const Session& s : sessions_) {
    if (s.client == nullptr) continue;
    const ClientStats& cs = s.client->stats();
    transport.polls += cs.polls;
    transport.attempts += cs.attempts;
    transport.retries += cs.retries;
    transport.transport_failures += cs.transport_failures;
    transport.decode_errors += cs.decode_errors;
    transport.accepted += cs.accepted;
    transport.duplicates_ignored += cs.duplicates_ignored;
    transport.regressions_rejected += cs.regressions_rejected;
    transport.failed_polls += cs.failed_polls;
    transport.stale_polls += cs.stale_polls;
    transport.bytes_received += cs.bytes_received;
    transport.deltas_applied += cs.deltas_applied;
    transport.delta_resyncs += cs.delta_resyncs;
    transport.request_id_mismatches += cs.request_id_mismatches;
  }
  // Bounds-engine aggregation: sum the per-session estimator workspace
  // counters (only non-default engines ever make them nonzero). Same
  // post-barrier quiescence rule as the transport loop above.
  size_t lp_sessions = 0;
  uint64_t lp_tightenings = 0;
  uint64_t lp_inversions = 0;
  for (const Session& s : sessions_) {
    if (s.estimator == nullptr) continue;
    if (s.estimator->options().bounds_engine != BoundsEngineKind::kAppendixA) {
      ++lp_sessions;
    }
    lp_tightenings += s.workspace.stats.lp_tightenings;
    lp_inversions += s.workspace.stats.intersection_inversions;
  }
  // Ensemble aggregation follows the same post-barrier quiescence rule:
  // per-session ensemble workspaces are only touched by their one pool
  // worker between fan-out and barrier.
  uint64_t ens_candidate_estimates = 0;
  uint64_t ens_switches = 0;
  std::vector<std::string> ens_names;
  std::vector<double> ens_latency;
  std::vector<uint64_t> ens_selected;
  for (const Session& s : sessions_) {
    if (s.ensemble == nullptr) continue;
    if (ens_names.empty()) {
      const int n = s.ensemble->candidate_count();
      ens_names.reserve(static_cast<size_t>(n));
      for (int c = 0; c < n; ++c) {
        ens_names.push_back(s.ensemble->candidate(c).name);
      }
      ens_latency.assign(ens_names.size(), 0.0);
      ens_selected.assign(ens_names.size(), 0);
    }
    const EnsembleEstimator::Workspace::Stats& es = s.ensemble_workspace.stats;
    ens_candidate_estimates += es.candidate_estimates;
    ens_switches += es.switches;
    // Workspace stats vectors are empty until the session's first estimate.
    for (size_t c = 0;
         c < es.candidate_latency_ms.size() && c < ens_latency.size(); ++c) {
      ens_latency[c] += es.candidate_latency_ms[c];
    }
    for (size_t c = 0; c < es.selected_ticks.size() && c < ens_selected.size();
         ++c) {
      ens_selected[c] += es.selected_ticks[c];
    }
  }
  // Counter updates happen after the ParallelFor barrier, under stats_mu_
  // only — the pool's lock is never held here, so the kMonitorStats <
  // kThreadPool rank order is trivially respected.
  MutexLock lock(&stats_mu_);
  last_degraded_ = degraded;
  transport_totals_ = transport;
  ensemble_candidate_estimates_ = ens_candidate_estimates;
  ensemble_switches_ = ens_switches;
  ensemble_candidate_names_ = std::move(ens_names);
  ensemble_candidate_latency_ms_ = std::move(ens_latency);
  ensemble_selected_ticks_ = std::move(ens_selected);
  lp_bounds_sessions_ = lp_sessions;
  bounds_lp_tightenings_ = lp_tightenings;
  bounds_intersection_inversions_ = lp_inversions;
  wall_ms_ += tick_wall_ms;
  tick_latencies_ms_.Add(tick_wall_ms);
  ++ticks_;
  last_active_ = last_waiting_ = last_done_ = 0;
  for (const SessionStatus& s : statuses) {
    switch (s.state) {
      case SessionState::kWaiting: ++last_waiting_; break;
      case SessionState::kRunning: ++last_active_; break;
      case SessionState::kDone: ++last_done_; break;
    }
  }
  last_tick_estimate_ms_ = 0;
  for (double latency : latencies) {
    if (latency >= 0) {
      ++reports_computed_;
      estimate_latencies_ms_.Add(latency);
      estimate_wall_ms_ += latency;
      last_tick_estimate_ms_ += latency;
      max_estimate_latency_ms_ = std::max(max_estimate_latency_ms_, latency);
    }
  }
  return statuses;
}

void MonitorService::RunToCompletion(
    const std::function<void(double, const std::vector<SessionStatus>&)>&
        render) {
  const double horizon = HorizonMs();
  const double tick = options_.tick_ms > 0
                          ? options_.tick_ms
                          : horizon / std::max(1, options_.ticks_per_horizon);
  if (tick <= 0) {
    // Degenerate horizon: every session is empty. One t=0 tick still
    // reports their kDone states; looping `t += 0` would never terminate
    // (the bug the old multi_query_monitor example had).
    if (!sessions_.empty()) {
      auto statuses = Tick(0);
      if (render) render(0, statuses);
    }
    return;
  }
  // Tick times are indexed (t = i * tick), never accumulated (t += tick):
  // accumulation compounds one rounding error per iteration, and over
  // thousands of ticks with a binary-inexact tick width the drift exceeds
  // the 1e-9 horizon slack — the final nominal tick lands past the horizon
  // and is silently skipped, leaving every session one tick short of its
  // completion report. One multiply per tick has a single rounding, so the
  // i-th tick is the same double no matter how many preceded it.
  int64_t i = 1;
  double t = tick;
  for (;; ++i) {
    t = static_cast<double>(i) * tick;
    if (t > horizon + 1e-9) break;
    auto statuses = Tick(t);
    if (render) render(t, statuses);
  }
  // Overtime: a lossy link may not have delivered some remote session's
  // final snapshot by the nominal horizon (drops, delays). Keep ticking a
  // bounded number of extra intervals; each one is another delivery
  // opportunity. Local trace-backed sessions are always done at the
  // horizon, so a monitor without remote sessions never enters this loop
  // and its output is unchanged.
  for (int extra = 0;
       extra < options_.max_overtime_ticks && !AllSessionsDone(); ++extra) {
    auto statuses = Tick(t);
    if (render) render(t, statuses);
    ++i;
    t = static_cast<double>(i) * tick;
  }
}

ValidationReport MonitorService::FinalCheck() {
  ValidationReport merged;
  for (Session& session : sessions_) {
    const ProfileSnapshot* final_snapshot = nullptr;
    if (session.trace != nullptr) {
      final_snapshot = &session.trace->final_snapshot;
    } else if (session.client->complete()) {
      final_snapshot = session.client->final_snapshot();
    } else {
      // The link never delivered the final snapshot (degraded past every
      // overtime tick). The session did not wedge the service, but its
      // monitoring is incomplete — surface that as a finding.
      merged.Add("remote_session_incomplete", -1, -1,
                 session.name +
                     ": final snapshot never crossed the link "
                     "(consecutive failures: " +
                     std::to_string(session.client->view()
                                        .consecutive_failures) +
                     ")");
    }
    if (session.checker == nullptr || final_snapshot == nullptr) continue;
    session.checker->CheckFinal(*final_snapshot);
    for (const ValidationIssue& issue : session.checker->report().issues()) {
      merged.Add(issue.check, issue.node_id, issue.pipeline_id,
                 session.name + ": " + issue.detail);
    }
  }
  return merged;
}

MonitorStats MonitorService::stats() const {
  MutexLock lock(&stats_mu_);
  MonitorStats stats;
  stats.sessions = sessions_registered_;
  stats.active = last_active_;
  stats.waiting = last_waiting_;
  stats.done = last_done_;
  stats.ticks = ticks_;
  stats.reports_computed = reports_computed_;
  stats.estimators_cached = estimators_cached_;
  stats.num_threads = pool_.num_threads();
  stats.wall_ms = wall_ms_;
  if (wall_ms_ > 0) {
    stats.reports_per_sec =
        static_cast<double>(reports_computed_) / (wall_ms_ / 1000.0);
  }
  auto percentiles = [](const LatencyReservoir& values, double* p50,
                        double* p95) {
    if (values.empty()) return;
    *p50 = values.Quantile(0.50);
    *p95 = values.Quantile(0.95);
  };
  stats.estimate_wall_ms = estimate_wall_ms_;
  stats.max_estimate_latency_ms = max_estimate_latency_ms_;
  stats.last_tick_estimate_ms = last_tick_estimate_ms_;
  if (estimate_wall_ms_ > 0) {
    stats.estimates_per_sec = static_cast<double>(reports_computed_) /
                              (estimate_wall_ms_ / 1000.0);
  }
  percentiles(estimate_latencies_ms_, &stats.p50_estimate_latency_ms,
              &stats.p95_estimate_latency_ms);
  percentiles(tick_latencies_ms_, &stats.p50_tick_latency_ms,
              &stats.p95_tick_latency_ms);
  stats.remote_sessions = remote_sessions_;
  stats.degraded_sessions = last_degraded_;
  stats.transport_polls = transport_totals_.polls;
  stats.transport_retries = transport_totals_.retries;
  stats.transport_failures = transport_totals_.transport_failures;
  stats.decode_errors = transport_totals_.decode_errors;
  stats.snapshots_accepted = transport_totals_.accepted;
  stats.duplicates_ignored = transport_totals_.duplicates_ignored;
  stats.regressions_rejected = transport_totals_.regressions_rejected;
  stats.stale_reports = transport_totals_.stale_polls;
  stats.transport_bytes = transport_totals_.bytes_received;
  stats.deltas_applied = transport_totals_.deltas_applied;
  stats.delta_resyncs = transport_totals_.delta_resyncs;
  stats.request_id_mismatches = transport_totals_.request_id_mismatches;
  stats.ensemble_sessions = ensemble_sessions_;
  stats.ensembles_cached = ensembles_cached_;
  stats.ensemble_candidate_estimates = ensemble_candidate_estimates_;
  stats.ensemble_switches = ensemble_switches_;
  stats.ensemble_candidate_names = ensemble_candidate_names_;
  stats.ensemble_candidate_latency_ms = ensemble_candidate_latency_ms_;
  stats.ensemble_selected_ticks = ensemble_selected_ticks_;
  stats.lp_bounds_sessions = lp_bounds_sessions_;
  stats.bounds_lp_tightenings = bounds_lp_tightenings_;
  stats.bounds_intersection_inversions = bounds_intersection_inversions_;
  return stats;
}

}  // namespace lqs
