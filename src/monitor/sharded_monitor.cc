#include "monitor/sharded_monitor.h"

#include <algorithm>
#include <chrono>  // lint:allow-wallclock backpressure wall-time telemetry
#include <utility>

namespace lqs {

ShardedMonitor::ShardedMonitor(ShardedMonitorOptions options)
    : options_(options),
      router_(options.num_shards, options.virtual_nodes) {
  shards_.resize(static_cast<size_t>(router_.num_shards()));
  for (Shard& shard : shards_) {
    shard.service = std::make_unique<MonitorService>(options_.shard_options);
  }
  MutexLock lock(&backpressure_mu_);
  poll_divisors_.assign(shards_.size(), 1);
  last_tick_wall_ms_.assign(shards_.size(), 0);
}

int ShardedMonitor::RegisterSession(std::string name, const Plan* plan,
                                    const Catalog* catalog,
                                    const ProfileTrace* trace,
                                    double start_offset_ms,
                                    const EstimatorOptions& estimator_options) {
  const int shard_id = router_.ShardFor(name);
  Shard& shard = shards_[static_cast<size_t>(shard_id)];
  const int local_id = shard.service->RegisterSession(
      std::move(name), plan, catalog, trace, start_offset_ms,
      estimator_options);
  const int global_id = static_cast<int>(session_homes_.size());
  session_homes_.push_back(SessionHome{shard_id, local_id});
  shard.global_ids.push_back(global_id);
  return global_id;
}

int ShardedMonitor::RegisterRemoteSession(
    std::string name, const Plan* plan, const Catalog* catalog,
    std::unique_ptr<SnapshotEndpoint> endpoint, double start_offset_ms,
    const PollingClientOptions& client_options,
    const EstimatorOptions& estimator_options) {
  const int shard_id = router_.ShardFor(name);
  Shard& shard = shards_[static_cast<size_t>(shard_id)];
  const int local_id = shard.service->RegisterRemoteSession(
      std::move(name), plan, catalog, std::move(endpoint), start_offset_ms,
      client_options, estimator_options);
  const int global_id = static_cast<int>(session_homes_.size());
  session_homes_.push_back(SessionHome{shard_id, local_id});
  shard.global_ids.push_back(global_id);
  return global_id;
}

double ShardedMonitor::HorizonMs() const {
  double horizon = 0;
  for (const Shard& shard : shards_) {
    horizon = std::max(horizon, shard.service->HorizonMs());
  }
  return horizon;
}

bool ShardedMonitor::AllSessionsDone() const {
  for (const Shard& shard : shards_) {
    if (!shard.service->AllSessionsDone()) return false;
  }
  return true;
}

void ShardedMonitor::AdjustBackpressure(int shard_index) {
  if (options_.shard_tick_budget_ms <= 0) return;
  const size_t i = static_cast<size_t>(shard_index);
  if (last_tick_wall_ms_[i] > options_.shard_tick_budget_ms) {
    poll_divisors_[i] =
        std::min(poll_divisors_[i] * 2, std::max(1, options_.max_poll_divisor));
  } else if (last_tick_wall_ms_[i] < options_.shard_tick_budget_ms / 2) {
    poll_divisors_[i] = std::max(1, poll_divisors_[i] / 2);
  }
}

std::vector<SessionStatus> ShardedMonitor::Tick(double now_ms) {
  std::vector<SessionStatus> statuses(session_homes_.size());
  // Completion is exempt from backpressure: at or past the horizon every
  // shard ticks every time, so degraded shards still deliver their final
  // reports instead of holding a stale running view forever.
  const bool at_horizon = now_ms + 1e-9 >= HorizonMs();
  for (size_t shard_index = 0; shard_index < shards_.size(); ++shard_index) {
    Shard& shard = shards_[shard_index];
    int divisor;
    {
      // Sample the divisor, then release: backpressure_mu_ must never be
      // held across the shard tick below (it fans out on the shard's
      // ThreadPool — the blocking-under-lock shape the locks checker
      // rejects).
      MutexLock lock(&backpressure_mu_);
      divisor = poll_divisors_[shard_index];
    }
    const bool due =
        shard.held.empty() || divisor <= 1 || at_horizon ||
        tick_index_ % static_cast<uint64_t>(divisor) == 0;
    if (due) {
      const auto start = std::chrono::steady_clock::now();
      shard.held = shard.service->Tick(now_ms);
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      MutexLock lock(&backpressure_mu_);
      last_tick_wall_ms_[shard_index] = wall_ms;
      AdjustBackpressure(static_cast<int>(shard_index));
    } else {
      // Skipped by admission control: the held view is served as-is, but
      // flagged — a dashboard must know it is looking at old data.
      for (SessionStatus& held : shard.held) {
        if (held.state == SessionState::kRunning) held.stale = true;
      }
    }
    for (size_t local = 0; local < shard.held.size(); ++local) {
      const int global_id = shard.global_ids[local];
      statuses[static_cast<size_t>(global_id)] = shard.held[local];
      statuses[static_cast<size_t>(global_id)].session_id = global_id;
    }
  }
  ++tick_index_;
  return statuses;
}

void ShardedMonitor::RunToCompletion(
    const std::function<void(double, const std::vector<SessionStatus>&)>&
        render) {
  const MonitorOptions& mo = options_.shard_options;
  const double horizon = HorizonMs();
  const double tick =
      mo.tick_ms > 0 ? mo.tick_ms
                     : horizon / std::max(1, mo.ticks_per_horizon);
  if (tick <= 0) {
    if (!session_homes_.empty()) {
      auto statuses = Tick(0);
      if (render) render(0, statuses);
    }
    return;
  }
  // Indexed, not accumulated, for the same drift reason as
  // MonitorService::RunToCompletion.
  int64_t i = 1;
  double t = tick;
  for (;; ++i) {
    t = static_cast<double>(i) * tick;
    if (t > horizon + 1e-9) break;
    auto statuses = Tick(t);
    if (render) render(t, statuses);
  }
  for (int extra = 0; extra < mo.max_overtime_ticks && !AllSessionsDone();
       ++extra) {
    auto statuses = Tick(t);
    if (render) render(t, statuses);
    ++i;
    t = static_cast<double>(i) * tick;
  }
}

ValidationReport ShardedMonitor::FinalCheck() {
  ValidationReport merged;
  for (Shard& shard : shards_) {
    merged.Merge(shard.service->FinalCheck());
  }
  return merged;
}

MonitorStats ShardedMonitor::stats() const {
  return MonitorAggregator::Merge(shard_stats());
}

std::vector<MonitorStats> ShardedMonitor::shard_stats() const {
  std::vector<MonitorStats> stats;
  stats.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    stats.push_back(shard.service->stats());
  }
  return stats;
}

const ClientStats& ShardedMonitor::session_client_stats(
    int session_id) const {
  const SessionHome& home = session_homes_[static_cast<size_t>(session_id)];
  return shards_[static_cast<size_t>(home.shard)]
      .service->session_client_stats(home.local_id);
}

}  // namespace lqs
