// Matrix property tests: every estimator configuration must satisfy the
// core progress invariants on every query of a mixed workload sample. This
// is the broadest safety net in the suite — any feature flag combination
// that emits out-of-range progress, NaNs, or violates monotone completion
// fails here with the (config, query) pair named.

#include <cmath>
#include <string>
#include <tuple>

#include "gtest/gtest.h"

#include "analysis/invariant_checker.h"
#include "analysis/validator.h"
#include "lqs/bounds.h"
#include "lqs/estimator.h"
#include "lqs/metrics.h"
#include "tests/test_util.h"
#include "workload/workload.h"

namespace lqs {
namespace testing {
namespace {

struct ConfigCase {
  const char* name;
  EstimatorOptions options;
};

std::vector<ConfigCase> AllConfigs() {
  std::vector<ConfigCase> configs;
  configs.push_back({"tgn", EstimatorOptions::TotalGetNext()});
  configs.push_back({"bounding_only", EstimatorOptions::BoundingOnly()});
  configs.push_back({"refined", EstimatorOptions::DriverNodeRefined()});
  configs.push_back({"lqs", EstimatorOptions::Lqs()});
  EstimatorOptions interp = EstimatorOptions::DriverNodeRefined();
  interp.interpolate_refinement = true;
  configs.push_back({"interpolated", interp});
  EstimatorOptions crit = EstimatorOptions::Lqs();
  crit.critical_path_only = true;
  configs.push_back({"critical_path", crit});
  EstimatorOptions prop = EstimatorOptions::Lqs();
  prop.propagate_refinement = true;
  configs.push_back({"propagated", prop});
  EstimatorOptions no_guard = EstimatorOptions::Lqs();
  no_guard.refine_min_rows = 0;
  configs.push_back({"no_guards", no_guard});
  EstimatorOptions no_io = EstimatorOptions::Lqs();
  no_io.storage_predicate_io = false;
  no_io.batch_mode_segments = false;
  configs.push_back({"no_io_progress", no_io});
  EstimatorOptions lqs_lp;
  EXPECT_TRUE(EstimatorOptions::PresetFromName("lqs_lp", &lqs_lp));
  configs.push_back({"lqs_lp", lqs_lp});
  EstimatorOptions refined_lp;
  EXPECT_TRUE(EstimatorOptions::PresetFromName("refined_lp", &refined_lp));
  configs.push_back({"refined_lp", refined_lp});
  return configs;
}

/// Shared fixture: one TPC-DS workload executed once; each test parameter
/// replays the traces under a different estimator configuration.
class EstimatorMatrixTest : public ::testing::TestWithParam<int> {
 protected:
  struct Shared {
    Workload workload;
    std::vector<ExecutionResult> runs;  // parallel to workload.queries
  };

  static Shared& GetShared() {
    static Shared* shared = [] {
      auto* s = new Shared();
      TpcdsOptions opt;
      opt.scale = 0.1;
      auto w = MakeTpcdsWorkload(opt);
      EXPECT_TRUE(w.ok());
      s->workload = std::move(w).value();
      OptimizerOptions oo;
      oo.selectivity_error = 1.5;
      EXPECT_TRUE(AnnotateWorkload(&s->workload, oo).ok());
      ExecOptions exec;
      exec.snapshot_interval_ms = 4.0;
      for (auto& q : s->workload.queries) {
        auto run = ExecuteQuery(q.plan, s->workload.catalog.get(), exec);
        EXPECT_TRUE(run.ok()) << q.name;
        s->runs.push_back(std::move(run).value());
      }
      return s;
    }();
    return *shared;
  }
};

TEST_P(EstimatorMatrixTest, InvariantsHoldOnEveryQuery) {
  const ConfigCase config = AllConfigs()[static_cast<size_t>(GetParam())];
  Shared& shared = GetShared();
  for (size_t qi = 0; qi < shared.workload.queries.size(); ++qi) {
    const WorkloadQuery& q = shared.workload.queries[qi];
    const ExecutionResult& run = shared.runs[qi];
    ProgressEstimator estimator(&q.plan, shared.workload.catalog.get(),
                                config.options);
    // This matrix includes deliberately unguarded configurations
    // (refine_min_rows = 0, propagation, interpolation) whose cardinality
    // revisions drop query progress by 0.5+ within one polling interval;
    // the checker recognizes revision events and only flags regressions
    // that happen with a stable cardinality vector, so the defaults hold
    // even here.
    ProgressInvariantChecker checker(&estimator);
    for (const auto& snap : run.trace.snapshots) {
      ProgressReport r = checker.EstimateChecked(snap);
      ASSERT_TRUE(std::isfinite(r.query_progress))
          << config.name << "/" << q.name;
      ASSERT_GE(r.query_progress, 0.0) << config.name << "/" << q.name;
      ASSERT_LE(r.query_progress, 1.0) << config.name << "/" << q.name;
      for (int n = 0; n < q.plan.size(); ++n) {
        ASSERT_TRUE(std::isfinite(r.operator_progress[n]))
            << config.name << "/" << q.name << " node " << n;
        ASSERT_GE(r.operator_progress[n], 0.0)
            << config.name << "/" << q.name << " node " << n;
        ASSERT_LE(r.operator_progress[n], 1.0)
            << config.name << "/" << q.name << " node " << n;
        ASSERT_GE(r.refined_rows[n], 0.0)
            << config.name << "/" << q.name << " node " << n;
        ASSERT_TRUE(std::isfinite(r.refined_rows[n]) ||
                    r.refined_rows[n] > 0)
            << config.name << "/" << q.name << " node " << n;
      }
    }
    // At completion the shipping configuration reports exactly 100%; the
    // raw-estimate configurations may stick below it (the paper's Figure 4
    // shows estimates pinned at 99% when cardinalities are wrong), but no
    // configuration may be wildly off at completion.
    ProgressReport done = estimator.Estimate(run.trace.final_snapshot);
    if (std::string(config.name) == "lqs") {
      ASSERT_NEAR(done.query_progress, 1.0, 1e-6)
          << config.name << "/" << q.name;
    } else {
      ASSERT_GE(done.query_progress, 0.35) << config.name << "/" << q.name;
    }
    // The runtime checker must agree with the explicit assertions above:
    // the whole replay was violation-free under this configuration.
    ASSERT_TRUE(checker.report().ok())
        << config.name << "/" << q.name << "\n" << checker.report().ToString();
  }
}

TEST_P(EstimatorMatrixTest, PlansPassStaticValidation) {
  Shared& shared = GetShared();
  PlanValidator validator(shared.workload.catalog.get());
  for (const WorkloadQuery& q : shared.workload.queries) {
    ValidationReport report = validator.Validate(q.plan, AnalyzePlan(q.plan));
    ASSERT_TRUE(report.ok()) << q.name << "\n" << report.ToString();
  }
}

TEST_P(EstimatorMatrixTest, MetricsAreBoundedOnEveryQuery) {
  const ConfigCase config = AllConfigs()[static_cast<size_t>(GetParam())];
  Shared& shared = GetShared();
  for (size_t qi = 0; qi < shared.workload.queries.size(); ++qi) {
    const WorkloadQuery& q = shared.workload.queries[qi];
    QueryEvaluation eval = EvaluateQuery(
        q.plan, *shared.workload.catalog, shared.runs[qi].trace,
        config.options);
    ASSERT_GE(eval.error_count, 0.0) << config.name << "/" << q.name;
    ASSERT_LE(eval.error_count, 1.0) << config.name << "/" << q.name;
    ASSERT_GE(eval.error_time, 0.0) << config.name << "/" << q.name;
    ASSERT_LE(eval.error_time, 1.0) << config.name << "/" << q.name;
    for (const OperatorError& op : eval.operator_errors) {
      ASSERT_LE(op.count_error, 1.0 + 1e-9)
          << config.name << "/" << q.name << " node " << op.node_id;
      ASSERT_LE(op.time_error, 1.0 + 1e-9)
          << config.name << "/" << q.name << " node " << op.node_id;
    }
  }
}

/// Bounds-engine pipeline properties over the same shared workload: the
/// intersected intervals are contained in Appendix A's (lower = max,
/// upper = min can only shrink) and — the soundness half — never exclude
/// the true final cardinality at any snapshot.
class BoundsEnginePropertyTest : public EstimatorMatrixTest {};

TEST_F(BoundsEnginePropertyTest, IntersectContainedInAppendixAAndSound) {
  Shared& shared = GetShared();
  for (size_t qi = 0; qi < shared.workload.queries.size(); ++qi) {
    const WorkloadQuery& q = shared.workload.queries[qi];
    const ExecutionResult& run = shared.runs[qi];
    const ProfileSnapshot& fin = run.trace.final_snapshot;
    const PlanAnalysis analysis =
        AnalyzePlan(q.plan, shared.workload.catalog.get());
    CardinalityBounds a, x, scratch;
    BoundsEngineStats stats;
    for (const auto& snap : run.trace.snapshots) {
      ComputeBoundsPipelineInto(BoundsEngineKind::kAppendixA, q.plan,
                                *shared.workload.catalog, snap, nullptr,
                                analysis, nullptr, &a, &scratch, nullptr);
      ComputeBoundsPipelineInto(BoundsEngineKind::kIntersect, q.plan,
                                *shared.workload.catalog, snap, nullptr,
                                analysis, nullptr, &x, &scratch, &stats);
      for (int i = 0; i < q.plan.size(); ++i) {
        const double n_true = static_cast<double>(fin.operators[i].row_count);
        // Containment: intersected ⊆ Appendix A.
        ASSERT_GE(x.lower[i], a.lower[i]) << q.name << " node " << i;
        ASSERT_LE(x.upper[i], a.upper[i]) << q.name << " node " << i;
        ASSERT_LE(x.lower[i], x.upper[i]) << q.name << " node " << i;
        // Soundness: the truth never falls outside the tightened corridor.
        ASSERT_LE(x.lower[i], n_true + 1e-9)
            << q.name << " node " << i << " at t=" << snap.time_ms;
        ASSERT_GE(x.upper[i], n_true - 1e-9)
            << q.name << " node " << i << " at t=" << snap.time_ms;
      }
    }
    // An inversion would mean one engine produced an unsound interval.
    ASSERT_EQ(stats.intersection_inversions, 0u) << q.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, EstimatorMatrixTest, ::testing::Range(0, 11),
    [](const ::testing::TestParamInfo<int>& info) {
      return std::string(AllConfigs()[static_cast<size_t>(info.param)].name);
    });

}  // namespace
}  // namespace testing
}  // namespace lqs
