#include <cmath>
#include <limits>

#include "gtest/gtest.h"

#include "lqs/bounds.h"
#include "tests/test_util.h"
#include "workload/plan_builder.h"
#include "workload/workload.h"

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT

class BoundsTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeTestCatalog(); }

  /// Runs the plan with frequent snapshots and asserts the Appendix A
  /// soundness invariant at every snapshot: LB_i <= N_i^true <= UB_i.
  void CheckSoundness(const Plan& plan, const char* label) {
    ExecOptions exec;
    exec.snapshot_interval_ms = 2.0;
    auto result = MustExecute(plan, catalog_.get(), exec);
    const auto& fin = result.trace.final_snapshot;
    for (const auto& snap : result.trace.snapshots) {
      CardinalityBounds b = ComputeBounds(plan, *catalog_, snap);
      for (int i = 0; i < plan.size(); ++i) {
        const double n_true = static_cast<double>(fin.operators[i].row_count);
        EXPECT_LE(b.lower[i], n_true + 1e-9)
            << label << " node " << i << " ("
            << OpTypeName(plan.node(i).type) << ") at t=" << snap.time_ms;
        EXPECT_GE(b.upper[i], n_true - 1e-9)
            << label << " node " << i << " ("
            << OpTypeName(plan.node(i).type) << ") at t=" << snap.time_ms;
      }
    }
  }

  std::unique_ptr<Catalog> catalog_;
};

TEST_F(BoundsTest, FullScanBoundsAreExact) {
  Plan plan = MustFinalize(Scan("t_big"), *catalog_);
  ProfileSnapshot snap;
  snap.operators.resize(1);
  snap.operators[0].row_count = 1234;
  CardinalityBounds b = ComputeBounds(plan, *catalog_, snap);
  EXPECT_DOUBLE_EQ(b.lower[0], 5000.0);
  EXPECT_DOUBLE_EQ(b.upper[0], 5000.0);
}

TEST_F(BoundsTest, PushedPredicateScanUpperBoundShrinksWithReads) {
  Plan plan =
      MustFinalize(Scan("t_big", ColCmp(2, CompareOp::kLt, 1)), *catalog_);
  ProfileSnapshot early;
  early.operators.resize(1);
  early.operators[0].row_count = 10;
  early.operators[0].logical_read_count = 2;
  ProfileSnapshot late = early;
  late.operators[0].logical_read_count = 30;
  late.operators[0].row_count = 40;
  CardinalityBounds b_early = ComputeBounds(plan, *catalog_, early);
  CardinalityBounds b_late = ComputeBounds(plan, *catalog_, late);
  EXPECT_LT(b_late.upper[0], b_early.upper[0]);
  EXPECT_GE(b_early.upper[0], b_early.lower[0]);
}

TEST_F(BoundsTest, FilterBoundFollowsAppendixA) {
  // Filter over full scan: UB = (UB_child - K_child) + K_filter.
  Plan plan = MustFinalize(
      Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 10)), *catalog_);
  ProfileSnapshot snap;
  snap.operators.resize(2);
  snap.operators[0].row_count = 100;   // filter output
  snap.operators[1].row_count = 1000;  // scan output
  CardinalityBounds b = ComputeBounds(plan, *catalog_, snap);
  EXPECT_DOUBLE_EQ(b.lower[0], 100.0);
  EXPECT_DOUBLE_EQ(b.upper[0], (5000.0 - 1000.0) + 100.0);
}

TEST_F(BoundsTest, JoinBoundFollowsAppendixA) {
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog_);
  ProfileSnapshot snap;
  snap.operators.resize(3);
  snap.operators[0].row_count = 50;    // join output so far
  snap.operators[1].row_count = 200;   // build (outer) complete
  snap.operators[1].finished = true;
  snap.operators[2].row_count = 1000;  // probe (inner)
  CardinalityBounds b = ComputeBounds(plan, *catalog_, snap);
  // For Hash Match the streaming input is the probe (children[1]):
  // UB = (UB_probe - K_probe + 1) * UB_build + K_i
  //    = (5000 - 1000 + 1) * 200 + 50.
  EXPECT_DOUBLE_EQ(b.upper[0], (5000.0 - 1000.0 + 1.0) * 200.0 + 50.0);
  EXPECT_DOUBLE_EQ(b.lower[0], 50.0);
}

TEST_F(BoundsTest, FinishedOperatorHasExactBounds) {
  Plan plan = MustFinalize(
      Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 10)), *catalog_);
  ProfileSnapshot snap;
  snap.operators.resize(2);
  snap.operators[0].row_count = 500;
  snap.operators[0].finished = true;
  snap.operators[1].row_count = 5000;
  snap.operators[1].finished = true;
  CardinalityBounds b = ComputeBounds(plan, *catalog_, snap);
  EXPECT_DOUBLE_EQ(b.lower[0], 500.0);
  EXPECT_DOUBLE_EQ(b.upper[0], 500.0);
}

TEST_F(BoundsTest, ScalarAggregateBoundedByOne) {
  Plan plan = MustFinalize(HashAgg(Scan("t_big"), {}, {Count()}), *catalog_);
  ProfileSnapshot snap;
  snap.operators.resize(2);
  CardinalityBounds b = ComputeBounds(plan, *catalog_, snap);
  EXPECT_DOUBLE_EQ(b.lower[0], 1.0);
  EXPECT_DOUBLE_EQ(b.upper[0], 1.0);
}

TEST_F(BoundsTest, SortPreservesChildBounds) {
  Plan plan = MustFinalize(
      Sort(Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 10)), {0}),
      *catalog_);
  ProfileSnapshot snap;
  snap.operators.resize(3);
  snap.operators[1].row_count = 300;   // filter output so far
  snap.operators[2].row_count = 2000;  // scan
  CardinalityBounds b = ComputeBounds(plan, *catalog_, snap);
  // Sort LB = K_child, UB = UB_child.
  EXPECT_DOUBLE_EQ(b.lower[0], 300.0);
  EXPECT_DOUBLE_EQ(b.upper[0], b.upper[1]);
}

TEST_F(BoundsTest, TopNBoundedByN) {
  Plan plan = MustFinalize(TopNSort(Scan("t_big"), {0}, 10), *catalog_);
  ProfileSnapshot snap;
  snap.operators.resize(2);
  CardinalityBounds b = ComputeBounds(plan, *catalog_, snap);
  EXPECT_LE(b.upper[0], 10.0);
}

TEST_F(BoundsTest, SpoolUnboundedOnInnerSide) {
  Plan plan = MustFinalize(
      Nlj(JoinKind::kInner, Scan("t_small"),
          EagerSpool(Filter(Scan("t_small"), ColCmp(1, CompareOp::kEq, 0)))),
      *catalog_);
  int spool_id = -1;
  plan.root->Visit([&](const PlanNode& n) {
    if (n.type == OpType::kEagerSpool) spool_id = n.id;
  });
  ProfileSnapshot snap;
  snap.operators.resize(static_cast<size_t>(plan.size()));
  CardinalityBounds b = ComputeBounds(plan, *catalog_, snap);
  EXPECT_TRUE(std::isinf(b.upper[spool_id]));
}

// ---- Edge cases: empty inputs, infinite uppers, end-of-stream ----

TEST_F(BoundsTest, EmptyTableScanHasZeroExactBounds) {
  auto empty = std::make_unique<Table>(
      "t_empty", Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
  ASSERT_OK(empty->ClusterBy(0));
  ASSERT_OK(catalog_->AddTable(std::move(empty)));
  ASSERT_OK(catalog_->BuildAllStatistics(StatisticsOptions{}));

  Plan plan = MustFinalize(
      Filter(Scan("t_empty"), ColCmp(1, CompareOp::kLt, 10)), *catalog_);
  ProfileSnapshot snap;
  snap.operators.resize(2);
  CardinalityBounds b = ComputeBounds(plan, *catalog_, snap);
  // A full scan of a zero-row table is exactly bounded at zero before the
  // first poll, and the filter above it inherits the empty corridor.
  EXPECT_DOUBLE_EQ(b.lower[1], 0.0);
  EXPECT_DOUBLE_EQ(b.upper[1], 0.0);
  EXPECT_DOUBLE_EQ(b.lower[0], 0.0);
  EXPECT_DOUBLE_EQ(b.upper[0], 0.0);
  // Clamp into a degenerate [0, 0] corridor pins every estimate at zero.
  EXPECT_DOUBLE_EQ(b.Clamp(0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(b.Clamp(0, 12345.0), 0.0);
}

TEST_F(BoundsTest, ClampStaysFiniteUnderUnboundedSpool) {
  Plan plan = MustFinalize(
      Nlj(JoinKind::kInner, Scan("t_small"),
          EagerSpool(Filter(Scan("t_small"), ColCmp(1, CompareOp::kEq, 0)))),
      *catalog_);
  int spool_id = -1;
  plan.root->Visit([&](const PlanNode& n) {
    if (n.type == OpType::kEagerSpool) spool_id = n.id;
  });
  ProfileSnapshot snap;
  snap.operators.resize(static_cast<size_t>(plan.size()));
  CardinalityBounds b = ComputeBounds(plan, *catalog_, snap);
  ASSERT_TRUE(std::isinf(b.upper[spool_id]));
  // An infinite upper bound must never leak infinity (or NaN) into a
  // clamped estimate: a finite probe comes back finite, idempotent, and at
  // least the lower bound.
  for (double probe : {0.0, 1.0, 1e6, 1e18}) {
    const double c = b.Clamp(spool_id, probe);
    EXPECT_TRUE(std::isfinite(c)) << "probe " << probe;
    EXPECT_GE(c, b.lower[spool_id]) << "probe " << probe;
    EXPECT_DOUBLE_EQ(b.Clamp(spool_id, c), c) << "probe " << probe;
  }
}

TEST_F(BoundsTest, EndOfStreamBoundsCollapseToTrueCardinality) {
  Plan plan = MustFinalize(
      Sort(Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 37)), {1}),
      *catalog_);
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  auto result = MustExecute(plan, catalog_.get(), exec);
  const auto& fin = result.trace.final_snapshot;
  CardinalityBounds b = ComputeBounds(plan, *catalog_, fin);
  for (int i = 0; i < plan.size(); ++i) {
    ASSERT_TRUE(fin.operators[i].finished) << "node " << i;
    const double k = static_cast<double>(fin.operators[i].row_count);
    // Appendix A: an operator at end-of-stream has exact bounds
    // lower = upper = K_i, so Clamp becomes the constant function K_i.
    EXPECT_DOUBLE_EQ(b.lower[i], k) << "node " << i;
    EXPECT_DOUBLE_EQ(b.upper[i], k) << "node " << i;
    EXPECT_DOUBLE_EQ(b.Clamp(i, 0.0), k) << "node " << i;
    EXPECT_DOUBLE_EQ(b.Clamp(i, 1e12), k) << "node " << i;
  }
}

// ---- Clamp hardening: NaN estimates and inverted ranges ----

TEST(CardinalityBoundsClampTest, NanEstimateClampsToLowerBound) {
  CardinalityBounds b;
  b.lower = {10.0};
  b.upper = {100.0};
  // std::clamp propagates NaN; the bounds corridor must not. The observed
  // lower bound is the only trustworthy value a poisoned estimate leaves.
  const double c = b.Clamp(0, std::nan(""));
  EXPECT_FALSE(std::isnan(c));
  EXPECT_DOUBLE_EQ(c, 10.0);
}

TEST(CardinalityBoundsClampTest, InvertedRangeCollapsesToLowerBound) {
  CardinalityBounds b;
  b.lower = {50.0};
  b.upper = {20.0};  // unsound-engine symptom; std::clamp would be UB
  for (double probe : {0.0, 30.0, 1e9, std::nan("")}) {
    const double c = b.Clamp(0, probe);
    EXPECT_DOUBLE_EQ(c, 50.0) << "probe " << probe;
  }
}

TEST(CardinalityBoundsClampTest, InfiniteEstimateClampsToUpperBound) {
  CardinalityBounds b;
  b.lower = {10.0};
  b.upper = {100.0};
  EXPECT_DOUBLE_EQ(b.Clamp(0, std::numeric_limits<double>::infinity()),
                   100.0);
  EXPECT_DOUBLE_EQ(b.Clamp(0, -std::numeric_limits<double>::infinity()),
                   10.0);
}

// ---- LpBound engine (ℓp-norm pessimistic upper bounds) ----

class LpBoundsTest : public BoundsTest {
 protected:
  // t_small(200: a unique) ⋈ t_big(5000: fk = i % 200) on (a, fk) — the
  // LpBound showcase: node 0 = join, 1 = t_small scan, 2 = t_big scan.
  Plan KeyForeignKeyJoin() {
    return MustFinalize(HashJoin(JoinKind::kInner, Scan("t_small"),
                                 Scan("t_big"), {0}, {1}),
                        *catalog_);
  }

  CardinalityBounds LpBounds(const Plan& plan, const ProfileSnapshot& snap) {
    const PlanAnalysis analysis = AnalyzePlan(plan, catalog_.get());
    CardinalityBounds out;
    ComputeLpBoundsInto(plan, snap, analysis, nullptr, &out);
    return out;
  }
};

TEST_F(LpBoundsTest, KeyJoinUpperBoundIsDegreeCapNotQuadratic) {
  Plan plan = KeyForeignKeyJoin();
  ProfileSnapshot snap;
  snap.operators.resize(3);
  CardinalityBounds lp = LpBounds(plan, snap);
  // ℓ∞(t_small.a) = 1 (unique key): every t_big row matches at most one
  // t_small row, so UB = 5000 — exact, before a single row has flowed.
  // The Cauchy–Schwarz cap agrees: ℓ2(a)·ℓ2(fk) = √200·√125000 = 5000.
  EXPECT_DOUBLE_EQ(lp.upper[0], 5000.0);
  EXPECT_DOUBLE_EQ(lp.lower[0], 0.0);
  // Appendix A at the same snapshot only has the quadratic product cap.
  CardinalityBounds a = ComputeBounds(plan, *catalog_, snap);
  EXPECT_GT(a.upper[0], 1e6);
}

TEST_F(LpBoundsTest, IntersectTakesTheTighterEngine) {
  Plan plan = KeyForeignKeyJoin();
  ProfileSnapshot snap;
  snap.operators.resize(3);
  const PlanAnalysis analysis = AnalyzePlan(plan, catalog_.get());
  CardinalityBounds a, x, scratch;
  BoundsEngineStats stats;
  ComputeBoundsPipelineInto(BoundsEngineKind::kAppendixA, plan, *catalog_,
                            snap, nullptr, analysis, nullptr, &a, &scratch,
                            nullptr);
  ComputeBoundsPipelineInto(BoundsEngineKind::kIntersect, plan, *catalog_,
                            snap, nullptr, analysis, nullptr, &x, &scratch,
                            &stats);
  // Per-node containment: the intersection can only shrink intervals.
  for (int i = 0; i < plan.size(); ++i) {
    EXPECT_GE(x.lower[i], a.lower[i]) << "node " << i;
    EXPECT_LE(x.upper[i], a.upper[i]) << "node " << i;
  }
  EXPECT_DOUBLE_EQ(x.upper[0], 5000.0);
  EXPECT_GT(stats.lp_tightenings, 0u);
  EXPECT_EQ(stats.intersection_inversions, 0u);
}

TEST_F(LpBoundsTest, DeclinesRebindingSubtreesUnderNestedLoops) {
  // The ℓp caps bound a single execution; a subtree that may re-execute
  // per outer row must be declined (UB = +inf), not under-bounded.
  Plan plan = MustFinalize(
      Nlj(JoinKind::kInner,
          Filter(Scan("t_small"), ColCmp(1, CompareOp::kLe, 3)),
          CiSeek("t_big", OuterCol(0), OuterCol(0)), nullptr,
          /*buffered=*/true),
      *catalog_);
  int seek_id = -1;
  plan.root->Visit([&](const PlanNode& n) {
    if (IsScan(n.type) && n.table_name == "t_big") seek_id = n.id;
  });
  ASSERT_GE(seek_id, 0);
  ProfileSnapshot snap;
  snap.operators.resize(static_cast<size_t>(plan.size()));
  CardinalityBounds lp = LpBounds(plan, snap);
  EXPECT_TRUE(std::isinf(lp.upper[seek_id]));
}

TEST_F(LpBoundsTest, SemiJoinBoundedByPreservedSide) {
  Plan plan = MustFinalize(HashJoin(JoinKind::kLeftSemi, Scan("t_small"),
                                    Scan("t_big"), {0}, {1}),
                           *catalog_);
  ProfileSnapshot snap;
  snap.operators.resize(3);
  CardinalityBounds lp = LpBounds(plan, snap);
  // A semi join emits each preserved-side row at most once.
  EXPECT_LE(lp.upper[0], 200.0);
}

TEST_F(LpBoundsTest, FinishedJoinFreezesToObservedCount) {
  Plan plan = KeyForeignKeyJoin();
  ProfileSnapshot snap;
  snap.operators.resize(3);
  snap.operators[0].row_count = 4321;
  snap.operators[0].finished = true;
  snap.operators[1].row_count = 200;
  snap.operators[1].finished = true;
  snap.operators[2].row_count = 5000;
  snap.operators[2].finished = true;
  CardinalityBounds lp = LpBounds(plan, snap);
  EXPECT_DOUBLE_EQ(lp.lower[0], 4321.0);
  EXPECT_DOUBLE_EQ(lp.upper[0], 4321.0);
}

TEST_F(LpBoundsTest, LpAndIntersectSoundOverLiveJoinQuery) {
  Plan plan = MustFinalize(
      HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                       {1}),
              {2}, {Count(), Sum(5)}),
      *catalog_);
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  auto result = MustExecute(plan, catalog_.get(), exec);
  const auto& fin = result.trace.final_snapshot;
  const PlanAnalysis analysis = AnalyzePlan(plan, catalog_.get());
  CardinalityBounds b, scratch;
  for (BoundsEngineKind kind :
       {BoundsEngineKind::kLpBound, BoundsEngineKind::kIntersect}) {
    for (const auto& snap : result.trace.snapshots) {
      ComputeBoundsPipelineInto(kind, plan, *catalog_, snap, nullptr,
                                analysis, nullptr, &b, &scratch, nullptr);
      for (int i = 0; i < plan.size(); ++i) {
        const double n_true = static_cast<double>(fin.operators[i].row_count);
        ASSERT_LE(b.lower[i], n_true + 1e-9)
            << BoundsEngineName(kind) << " node " << i << " at t="
            << snap.time_ms;
        ASSERT_GE(b.upper[i], n_true - 1e-9)
            << BoundsEngineName(kind) << " node " << i << " at t="
            << snap.time_ms;
      }
    }
  }
}

// ---- Soundness property over live executions ----

TEST_F(BoundsTest, SoundOverLiveFilterQuery) {
  Plan plan = MustFinalize(
      Sort(Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 37)), {1}),
      *catalog_);
  CheckSoundness(plan, "filter+sort");
}

TEST_F(BoundsTest, SoundOverLiveJoinAggQuery) {
  Plan plan = MustFinalize(
      HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                       {1}),
              {2}, {Count(), Sum(5)}),
      *catalog_);
  CheckSoundness(plan, "join+agg");
}

TEST_F(BoundsTest, SoundOverLiveNljQuery) {
  Plan plan = MustFinalize(
      Nlj(JoinKind::kInner,
          Filter(Scan("t_small"), ColCmp(1, CompareOp::kLe, 3)),
          CiSeek("t_big", OuterCol(0), OuterCol(0)), nullptr,
          /*buffered=*/true),
      *catalog_);
  CheckSoundness(plan, "buffered nlj");
}

/// Property sweep: Appendix A bounds are sound at every snapshot of every
/// TPC-H query.
class BoundsSoundnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(BoundsSoundnessSweep, TpchQuerySound) {
  TpchOptions opt;
  opt.scale = 0.1;
  static StatusOr<Workload> workload = MakeTpchWorkload(opt);
  ASSERT_TRUE(workload.ok());
  ASSERT_OK(AnnotateWorkload(&workload.value(), OptimizerOptions{}));
  WorkloadQuery& q = workload->queries[GetParam()];
  ExecOptions exec;
  exec.snapshot_interval_ms = 5.0;
  auto result = ExecuteQuery(q.plan, workload->catalog.get(), exec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& fin = result->trace.final_snapshot;
  for (const auto& snap : result->trace.snapshots) {
    CardinalityBounds b = ComputeBounds(q.plan, *workload->catalog, snap);
    for (int i = 0; i < q.plan.size(); ++i) {
      const double n_true = static_cast<double>(fin.operators[i].row_count);
      ASSERT_LE(b.lower[i], n_true + 1e-9)
          << q.name << " node " << i << " "
          << OpTypeName(q.plan.node(i).type);
      ASSERT_GE(b.upper[i], n_true - 1e-9)
          << q.name << " node " << i << " "
          << OpTypeName(q.plan.node(i).type);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTpchQueries, BoundsSoundnessSweep,
                         ::testing::Range(0, 22));

}  // namespace
}  // namespace testing
}  // namespace lqs
