// Allocation audit for the workspace-reusing estimation engine: after the
// first (sizing) call, steady-state EstimateInto must perform ZERO heap
// allocations, for every preset, across a whole recorded trace. Enforced by
// overriding global operator new/delete with counting wrappers — every
// allocation anywhere in the process is observed, including ones hidden
// inside std::vector growth, std::string, or std::map on the hot path.
//
// The overrides forward to std::malloc/std::free, which sanitizers intercept
// below us, so this test runs unchanged under ASan/UBSan and TSan builds.
// Only allocations between StartCounting/StopCounting are charged; gtest's
// own bookkeeping outside the window is free.
//
// Each assertion below is PAIRED with an LQS_NOALLOC annotation in the
// headers via an `LQS_NOALLOC_PAIRED: <qualified-name>` marker comment.
// tools/lqs_verify cross-checks the two sets in both directions: deleting
// an annotation orphans the marker here, and deleting a marker (or the
// test) orphans the annotation — either way the static-analysis CI job
// fails, so the static contract and its runtime enforcement cannot drift
// apart silently.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "gtest/gtest.h"

#include "lqs/estimator.h"
#include "monitor/monitor_service.h"
#include "optimizer/annotate.h"
#include "tests/test_util.h"
#include "workload/plan_builder.h"

#if defined(__GNUC__) && !defined(__clang__)
// GCC flags std::free() on a pointer from our replacement operator new as
// mismatched; the pairing is correct by construction (the replacement
// forwards to std::malloc), so the diagnostic is a false positive here.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

std::atomic<bool> g_counting{false};
std::atomic<uint64_t> g_new_calls{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = nullptr;
  if (posix_memalign(&ptr, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return ptr;
}

}  // namespace

// Replacing these at global scope intercepts every new/delete in the
// process; each variant must be covered or a caller could slip past the
// counter (and mismatch the underlying allocator).
void* operator new(std::size_t size) {
  void* ptr = CountedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}
void* operator new[](std::size_t size) {
  void* ptr = CountedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* ptr = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT

struct AllocationWindow {
  AllocationWindow() {
    g_new_calls.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationWindow() { g_counting.store(false, std::memory_order_relaxed); }
  uint64_t count() const {
    return g_new_calls.load(std::memory_order_relaxed);
  }
};

class EstimatorAllocTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeTestCatalog(); }

  Plan Annotated(std::unique_ptr<PlanNode> root) {
    Plan plan = MustFinalize(std::move(root), *catalog_);
    EXPECT_OK(AnnotatePlan(&plan, *catalog_, OptimizerOptions{}));
    return plan;
  }

  std::unique_ptr<Catalog> catalog_;
};

TEST_F(EstimatorAllocTest, SteadyStateEstimateIntoAllocatesNothing) {
  // Exercise every operator family the estimator special-cases: hash join
  // build/probe, hash aggregate (two-phase blocking), sort (semi-blocking),
  // and a columnstore scan (§4.7 segments) under a row-mode side.
  Plan plan = Annotated(
      Sort(HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"),
                            CsScan("t_big"), {0}, {1}),
                   {2}, {Count()}),
           {0}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  auto result = MustExecute(plan, catalog_.get(), exec);
  ASSERT_GT(result.trace.snapshots.size(), 5u);

  // Preset list and labels come from the shared registry, so a preset
  // added there is automatically audited here.
  for (int p = 0; p < EstimatorOptions::kPresetCount; ++p) {
    struct NamedPreset {
      const char* name;
      EstimatorOptions options;
    };
    const NamedPreset preset{EstimatorOptions::PresetName(p),
                             EstimatorOptions::PresetByIndex(p)};
    ProgressEstimator estimator(&plan, catalog_.get(), preset.options);
    ProgressEstimator::Workspace workspace;
    ProgressReport report;
    // One sizing call: binds the workspace, grows every flat buffer and the
    // report vectors to this plan's shape. The FINAL snapshot maximizes the
    // observed counters, so no later snapshot can need more capacity.
    estimator.EstimateInto(result.trace.final_snapshot, &workspace, &report);

    AllocationWindow window;
    for (const ProfileSnapshot& snap : result.trace.snapshots) {
      estimator.EstimateInto(snap, &workspace, &report);
    }
    estimator.EstimateInto(result.trace.final_snapshot, &workspace, &report);
    // Runtime side of the static contract (src/lqs/estimator.h, bounds.h):
    // the presets walk every annotated estimation path — bounding_only
    // drives the Appendix-A derivation, lqs drives the §4.6 weight path.
    // LQS_NOALLOC_PAIRED: ProgressEstimator::EstimateInto
    // LQS_NOALLOC_PAIRED: ComputeBoundsInto
    // LQS_NOALLOC_PAIRED: ProgressEstimator::PipelineWeightsInto
    EXPECT_EQ(window.count(), 0u)
        << "preset " << preset.name << ": steady-state EstimateInto "
        << "performed heap allocations";
  }
}

TEST_F(EstimatorAllocTest, SteadyStateLpBoundEnginesAllocateNothing) {
  // Bounds-engine pipeline audit: the LpBound engine and the intersecting
  // dispatcher run per snapshot, so after the sizing call (which also grows
  // the workspace's second-engine scratch) a steady-state estimate under
  // bounds_engine = kLpBound / kIntersect must stay heap-free, exactly
  // like the Appendix-A default. The plan exercises the engine's join
  // degree caps (equijoin over base-table keys) plus filter/aggregate/sort
  // pass-through bounds.
  Plan plan = Annotated(
      Sort(HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"),
                            CsScan("t_big"), {0}, {1}),
                   {2}, {Count()}),
           {0}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  auto result = MustExecute(plan, catalog_.get(), exec);
  ASSERT_GT(result.trace.snapshots.size(), 5u);

  for (BoundsEngineKind kind :
       {BoundsEngineKind::kLpBound, BoundsEngineKind::kIntersect}) {
    EstimatorOptions options = EstimatorOptions::Lqs();
    options.bounds_engine = kind;
    ProgressEstimator estimator(&plan, catalog_.get(), options);
    ProgressEstimator::Workspace workspace;
    ProgressReport report;
    estimator.EstimateInto(result.trace.final_snapshot, &workspace, &report);

    AllocationWindow window;
    for (const ProfileSnapshot& snap : result.trace.snapshots) {
      estimator.EstimateInto(snap, &workspace, &report);
    }
    estimator.EstimateInto(result.trace.final_snapshot, &workspace, &report);
    // Runtime side of the static contract (src/lqs/bounds.h): kLpBound
    // drives the ℓp-norm derivation alone, kIntersect additionally runs
    // the Appendix-A engine and the per-node interval intersection.
    // LQS_NOALLOC_PAIRED: ComputeBoundsPipelineInto
    // LQS_NOALLOC_PAIRED: ComputeLpBoundsInto
    EXPECT_EQ(window.count(), 0u)
        << "bounds engine " << BoundsEngineName(kind)
        << ": steady-state EstimateInto performed heap allocations";
  }
}

TEST_F(EstimatorAllocTest, NonIncrementalEstimateIntoAlsoAllocatesNothing) {
  // incremental=false disables the freeze short-circuits and the hoisted
  // catalog statics but must NOT reintroduce per-call allocation: the bench
  // baseline measures recomputation cost, not allocator noise.
  Plan plan = Annotated(
      HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                       {1}),
              {2}, {Count()}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  auto result = MustExecute(plan, catalog_.get(), exec);

  EstimatorOptions options = EstimatorOptions::Lqs();
  options.incremental = false;
  ProgressEstimator estimator(&plan, catalog_.get(), options);
  ProgressEstimator::Workspace workspace;
  ProgressReport report;
  estimator.EstimateInto(result.trace.final_snapshot, &workspace, &report);

  AllocationWindow window;
  for (const ProfileSnapshot& snap : result.trace.snapshots) {
    estimator.EstimateInto(snap, &workspace, &report);
  }
  EXPECT_EQ(window.count(), 0u);
}

TEST_F(EstimatorAllocTest, MonitorTickStaysWithinAllocationBudget) {
  // Monitor-layer audit of the same property, multi-session: after warmup
  // ticks have sized every session's workspace, a steady-state Tick() may
  // allocate only for its RETURNED statuses — the by-value vector plus the
  // four report-vector copies per session — never for estimation itself.
  // The budget below is a couple of times that envelope (thread-pool job
  // dispatch also allocates); a regressed estimation path costs upwards of
  // a dozen vectors per session per tick and blows well past it.
  Plan plan = Annotated(
      HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                       {1}),
              {2}, {Count()}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  auto result = MustExecute(plan, catalog_.get(), exec);

  constexpr size_t kSessions = 8;
  MonitorService monitor;
  for (size_t i = 0; i < kSessions; ++i) {
    monitor.RegisterSession("s" + std::to_string(i), &plan, catalog_.get(),
                            &result.trace, 3.0 * static_cast<double>(i));
  }
  const double horizon = monitor.HorizonMs();
  constexpr int kWarmupTicks = 4;
  // 80 measured ticks x 8 sessions = 640 estimate-latency samples — past
  // the 512-slot LatencyReservoir capacity, so the measured window covers
  // both the reservoir's fill phase and its steady-state replacement path
  // (a grow-forever vector here would charge reallocation against the
  // budget; the reservoir must not allocate at all after construction).
  constexpr int kMeasuredTicks = 80;
  const double step = horizon / (kWarmupTicks + kMeasuredTicks + 1);
  double now = 0;
  for (int i = 0; i < kWarmupTicks; ++i) {
    now += step;
    (void)monitor.Tick(now);
  }

  AllocationWindow window;
  for (int i = 0; i < kMeasuredTicks; ++i) {
    now += step;
    (void)monitor.Tick(now);
  }
  const uint64_t per_tick_budget = 8 * kSessions + 64;
  // Runtime side of the static contract (src/monitor/monitor_service.h):
  // the measured ticks run the annotated steady-state session body.
  // LQS_NOALLOC_PAIRED: MonitorService::ComputeStatus
  EXPECT_LE(window.count(),
            per_tick_budget * static_cast<uint64_t>(kMeasuredTicks))
      << "steady-state monitor ticks allocated "
      << window.count() / kMeasuredTicks << " times per tick";
}

TEST_F(EstimatorAllocTest, FreshEstimateAllocatesAsExpected) {
  // Sanity check on the instrument itself: the compatibility wrapper sizes
  // its lazily-initialized internal workspace on the first call and returns
  // a report by value, so the first call MUST allocate. If this ever reads
  // zero the counting overrides are not linked in and the zero-allocation
  // tests above are vacuous.
  Plan plan = Annotated(Sort(Scan("t_big"), {2}));
  auto result = MustExecute(plan, catalog_.get());
  ProgressEstimator estimator(&plan, catalog_.get(), EstimatorOptions::Lqs());

  AllocationWindow window;
  ProgressReport report = estimator.Estimate(result.trace.final_snapshot);
  EXPECT_GT(window.count(), 0u);
  EXPECT_GT(report.query_progress, 0.99);
  // Repeat calls reuse the internal workspace: the only remaining per-call
  // cost is the by-value report (its vectors), a small constant — the
  // wrapper must stay off the per-call workspace-construction price.
  const uint64_t first_call = window.count();
  ProgressReport again = estimator.Estimate(result.trace.final_snapshot);
  EXPECT_LT(window.count() - first_call, first_call);
  EXPECT_EQ(again.query_progress, report.query_progress);
}

TEST_F(EstimatorAllocTest, SteadyStateEnsembleEstimateAllocatesNothing) {
  // The ensemble audit: after the first (sizing) call has bound every
  // candidate workspace, grown the score rings and sized the report's
  // per-candidate vectors, a steady-state ensemble tick — all candidates
  // estimated, scored, selected, band computed — must perform ZERO heap
  // allocations, over a whole recorded trace.
  Plan plan = Annotated(
      Sort(HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"),
                            CsScan("t_big"), {0}, {1}),
                   {2}, {Count()}),
           {0}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  auto result = MustExecute(plan, catalog_.get(), exec);
  ASSERT_GT(result.trace.snapshots.size(), 5u);

  EnsembleEstimator ensemble(&plan, catalog_.get(), EnsembleOptions{});
  EnsembleEstimator::Workspace workspace;
  EnsembleReport report;
  ensemble.EstimateInto(result.trace.final_snapshot, &workspace, &report);

  AllocationWindow window;
  for (const ProfileSnapshot& snap : result.trace.snapshots) {
    ensemble.EstimateInto(snap, &workspace, &report);
  }
  ensemble.EstimateInto(result.trace.final_snapshot, &workspace, &report);
  // Runtime side of the static contract (src/ensemble/ensemble.h): the
  // replay drives every candidate's estimation, the scoring rings and the
  // hysteresis selection.
  // LQS_NOALLOC_PAIRED: EnsembleEstimator::EstimateInto
  // LQS_NOALLOC_PAIRED: CandidateScore::Observe
  // LQS_NOALLOC_PAIRED: CandidateScore::Score
  // LQS_NOALLOC_PAIRED: HysteresisSelector::Update
  EXPECT_EQ(window.count(), 0u)
      << "steady-state ensemble EstimateInto performed heap allocations";
}

TEST_F(EstimatorAllocTest, MonitorEnsembleTickStaysWithinAllocationBudget) {
  // Monitor-layer audit of the ensemble path: ensemble sessions reuse their
  // session-owned EnsembleReport across ticks, so a steady-state Tick() of
  // ensemble sessions has the same allocation envelope as plain ones — the
  // returned statuses (by-value vector + report-vector copies per session),
  // never per-candidate estimation state.
  Plan plan = Annotated(
      HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                       {1}),
              {2}, {Count()}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  auto result = MustExecute(plan, catalog_.get(), exec);

  EstimatorOptions ensemble_mode;
  ensemble_mode.ensemble = true;
  constexpr size_t kSessions = 4;
  MonitorService monitor;
  for (size_t i = 0; i < kSessions; ++i) {
    monitor.RegisterSession("e" + std::to_string(i), &plan, catalog_.get(),
                            &result.trace, 3.0 * static_cast<double>(i),
                            ensemble_mode);
  }
  const double horizon = monitor.HorizonMs();
  constexpr int kWarmupTicks = 4;
  constexpr int kMeasuredTicks = 40;
  const double step = horizon / (kWarmupTicks + kMeasuredTicks + 1);
  double now = 0;
  for (int i = 0; i < kWarmupTicks; ++i) {
    now += step;
    (void)monitor.Tick(now);
  }

  AllocationWindow window;
  for (int i = 0; i < kMeasuredTicks; ++i) {
    now += step;
    (void)monitor.Tick(now);
  }
  // Same per-session envelope as MonitorTickStaysWithinAllocationBudget
  // plus the post-barrier ensemble aggregation's fixed-size vectors.
  const uint64_t per_tick_budget = 8 * kSessions + 96;
  EXPECT_LE(window.count(),
            per_tick_budget * static_cast<uint64_t>(kMeasuredTicks))
      << "steady-state ensemble monitor ticks allocated "
      << window.count() / kMeasuredTicks << " times per tick";
}

}  // namespace
}  // namespace testing
}  // namespace lqs
