#include "gtest/gtest.h"

#include "tests/test_util.h"
#include "workload/workload.h"

namespace lqs {
namespace testing {
namespace {

/// Executes every query of a workload end-to-end and checks basic DMV-trace
/// invariants: the estimator experiments depend on these holding for every
/// plan shape the generators produce.
void RunWorkload(Workload& w, double min_interval_ms = 5.0) {
  ASSERT_FALSE(w.queries.empty());
  OptimizerOptions opt;
  ASSERT_OK(AnnotateWorkload(&w, opt));
  for (WorkloadQuery& q : w.queries) {
    // Every node must carry a cardinality estimate after annotation.
    q.plan.root->Visit([&](const PlanNode& n) {
      EXPECT_GE(n.est_rows, 0.0) << w.name << "/" << q.name << " node " << n.id;
      EXPECT_GE(n.est_cpu_ms + n.est_io_ms, 0.0);
    });
    ExecOptions exec;
    exec.snapshot_interval_ms = min_interval_ms;
    auto result = ExecuteQuery(q.plan, w.catalog.get(), exec);
    ASSERT_TRUE(result.ok()) << w.name << "/" << q.name << ": "
                             << result.status().ToString();
    EXPECT_GT(result->duration_ms, 0.0) << q.name;

    // Snapshot invariants: counters monotone, times increasing.
    uint64_t prev_total_k = 0;
    double prev_time = -1;
    for (const auto& snap : result->trace.snapshots) {
      EXPECT_GT(snap.time_ms, prev_time);
      prev_time = snap.time_ms;
      uint64_t total_k = 0;
      for (const auto& op : snap.operators) total_k += op.row_count;
      EXPECT_GE(total_k, prev_total_k) << q.name;
      prev_total_k = total_k;
    }
    // Final snapshot: root row count equals rows returned; every operator
    // that opened has coherent activity timestamps.
    const auto& fin = result->trace.final_snapshot;
    EXPECT_EQ(fin.operators[0].row_count, result->rows_returned) << q.name;
    for (const auto& op : fin.operators) {
      if (op.opened && op.row_count > 0) {
        EXPECT_GE(op.first_row_ms, 0.0) << q.name;
        EXPECT_GE(op.last_active_ms, op.open_time_ms) << q.name;
      }
    }
  }
}

TEST(WorkloadTest, TpchRowstoreBuildsAndRuns) {
  TpchOptions opt;
  opt.scale = 0.15;
  auto w = MakeTpchWorkload(opt);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(w->queries.size(), 22u);
  RunWorkload(*w);
}

TEST(WorkloadTest, TpchColumnstoreBuildsAndRuns) {
  TpchOptions opt;
  opt.scale = 0.15;
  opt.design = PhysicalDesign::kColumnstore;
  auto w = MakeTpchWorkload(opt);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(w->queries.size(), 22u);
  RunWorkload(*w);
}

TEST(WorkloadTest, TpcdsBuildsAndRuns) {
  TpcdsOptions opt;
  opt.scale = 0.1;
  auto w = MakeTpcdsWorkload(opt);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_GE(w->queries.size(), 18u);
  RunWorkload(*w);
}

class RealWorkloadTest : public ::testing::TestWithParam<int> {};

TEST_P(RealWorkloadTest, BuildsAndRuns) {
  RealWorkloadOptions opt;
  opt.which = GetParam();
  opt.scale = 0.1;
  opt.num_queries = 12;
  auto w = MakeRealWorkload(opt);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(w->queries.size(), 12u);
  RunWorkload(*w);
}

INSTANTIATE_TEST_SUITE_P(AllReal, RealWorkloadTest,
                         ::testing::Values(1, 2, 3));

TEST(WorkloadTest, SkewedGenerationIsDeterministic) {
  TpchOptions opt;
  opt.scale = 0.05;
  auto w1 = MakeTpchWorkload(opt);
  auto w2 = MakeTpchWorkload(opt);
  ASSERT_TRUE(w1.ok() && w2.ok());
  const Table* a = w1->catalog->GetTable("lineitem");
  const Table* b = w2->catalog->GetTable("lineitem");
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (uint64_t i = 0; i < a->num_rows(); i += 97) {
    EXPECT_EQ(a->row(i)[1].AsInt(), b->row(i)[1].AsInt());
  }
}

TEST(WorkloadTest, ZipfSkewConcentratesForeignKeys) {
  TpchOptions opt;
  opt.scale = 0.2;
  opt.zipf_z = 1.0;
  auto w = MakeTpchWorkload(opt);
  ASSERT_TRUE(w.ok());
  // Under Z=1 skew, the most frequent part key should appear far more often
  // than the uniform share.
  const Table* li = w->catalog->GetTable("lineitem");
  const Table* part = w->catalog->GetTable("part");
  std::vector<uint64_t> counts(part->num_rows(), 0);
  for (uint64_t i = 0; i < li->num_rows(); ++i) {
    counts[li->row(i)[1].AsInt()]++;
  }
  uint64_t max_count = *std::max_element(counts.begin(), counts.end());
  double uniform_share =
      static_cast<double>(li->num_rows()) / static_cast<double>(part->num_rows());
  EXPECT_GT(static_cast<double>(max_count), 20.0 * uniform_share);
}

}  // namespace
}  // namespace testing
}  // namespace lqs
