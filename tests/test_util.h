#ifndef LQS_TESTS_TEST_UTIL_H_
#define LQS_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/statusor.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "storage/catalog.h"
#include "workload/plan_builder.h"

namespace lqs {
namespace testing {

#define ASSERT_OK(expr)                                     \
  do {                                                      \
    ::lqs::Status _st = (expr);                             \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                \
  } while (0)

#define EXPECT_OK(expr)                                     \
  do {                                                      \
    ::lqs::Status _st = (expr);                             \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                \
  } while (0)

/// Builds a small deterministic test catalog:
///   t_small(a, b, c):   200 rows, a = 0..199 (clustered), b = a % 10,
///                       c = a % 3; secondary index ix_b on b.
///   t_big(k, fk, v, w): 5000 rows, k = 0..4999 (clustered), fk = k % 200
///                       (joins t_small.a), v = k % 100, w = double;
///                       secondary index ix_fk on fk; columnstore index.
std::unique_ptr<Catalog> MakeTestCatalog();

/// Finalizes `root` against `catalog`, asserting success.
Plan MustFinalize(std::unique_ptr<PlanNode> root, const Catalog& catalog);

/// Runs the plan, asserting success; returns the result.
ExecutionResult MustExecute(const Plan& plan, Catalog* catalog,
                            ExecOptions options = {});

/// Runs the plan collecting all result rows.
std::vector<Row> MustExecuteRows(const Plan& plan, Catalog* catalog,
                                 ExecOptions options = {});

}  // namespace testing
}  // namespace lqs

#endif  // LQS_TESTS_TEST_UTIL_H_
