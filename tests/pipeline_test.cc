#include "gtest/gtest.h"

#include "lqs/pipeline.h"
#include "tests/test_util.h"
#include "workload/plan_builder.h"

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeTestCatalog(); }
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(PipelineTest, SingleScanIsOnePipeline) {
  Plan plan = MustFinalize(Scan("t_small"), *catalog_);
  PlanAnalysis a = AnalyzePlan(plan);
  ASSERT_EQ(a.pipeline_count(), 1);
  EXPECT_EQ(a.pipelines[0].driver_nodes, std::vector<int>{0});
}

TEST_F(PipelineTest, Figure5ShapeDecomposesIntoPipelines) {
  // The paper's Figure 5: Merge Join of (Sort over Index Scan T.A) with
  // Index Scan T.B, then Filter and (Hash) Group-By above.
  //  - the Sort input forms its own pipeline (pipeline 1),
  //  - the group-by input boundary splits the plan again.
  NodePtr mj = MergeJoin(JoinKind::kInner, Sort(CiScan("t_small"), {0}),
                         IdxScan("t_big", "ix_fk"), {0}, {1});
  NodePtr root = HashAgg(Filter(std::move(mj), ColCmp(1, CompareOp::kLe, 5)),
                         {2}, {Count()});
  Plan plan = MustFinalize(std::move(root), *catalog_);
  PlanAnalysis a = AnalyzePlan(plan);

  // Pipelines: [HashAgg output], [Filter+MergeJoin+Sort(out)+IndexScan],
  // [Sort input scan].
  ASSERT_EQ(a.pipeline_count(), 3);

  // Locate nodes.
  int sort_id = -1;
  int scan_a = -1;
  int scan_b = -1;
  int agg_id = -1;
  plan.root->Visit([&](const PlanNode& n) {
    if (n.type == OpType::kSort) sort_id = n.id;
    if (n.type == OpType::kClusteredIndexScan) scan_a = n.id;
    if (n.type == OpType::kIndexScan) scan_b = n.id;
    if (n.type == OpType::kHashAggregate) agg_id = n.id;
  });
  ASSERT_GE(sort_id, 0);

  // The Sort and Index Scan T.B are drivers of the middle pipeline; the
  // scan under the Sort drives the bottom pipeline (the Figure 5 shading).
  const int mid = a.pipeline_of_node[sort_id];
  const PipelineInfo& mid_p = a.pipelines[mid];
  EXPECT_NE(mid, a.pipeline_of_node[scan_a]);
  EXPECT_EQ(a.pipeline_of_node[scan_b], mid);
  EXPECT_EQ(mid_p.driver_nodes.size(), 2u);
  EXPECT_TRUE(std::count(mid_p.driver_nodes.begin(), mid_p.driver_nodes.end(),
                         sort_id) == 1);
  EXPECT_TRUE(std::count(mid_p.driver_nodes.begin(), mid_p.driver_nodes.end(),
                         scan_b) == 1);

  // The aggregate's output pipeline is above the boundary.
  EXPECT_NE(a.pipeline_of_node[agg_id], mid);
}

TEST_F(PipelineTest, HashJoinBuildSideIsSeparatePipeline) {
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog_);
  PlanAnalysis a = AnalyzePlan(plan);
  ASSERT_EQ(a.pipeline_count(), 2);
  // Probe scan shares the join's pipeline; build scan does not.
  EXPECT_EQ(a.pipeline_of_node[0], a.pipeline_of_node[2]);
  EXPECT_NE(a.pipeline_of_node[0], a.pipeline_of_node[1]);
  // The root pipeline's child is the build pipeline.
  EXPECT_EQ(a.pipelines[a.pipeline_of_node[0]].child_pipelines.size(), 1u);
}

TEST_F(PipelineTest, NljInnerSideExcludedFromDrivers) {
  Plan plan = MustFinalize(
      Nlj(JoinKind::kInner, Scan("t_small"),
          CiSeek("t_big", OuterCol(0), OuterCol(0))),
      *catalog_);
  PlanAnalysis a = AnalyzePlan(plan);
  ASSERT_EQ(a.pipeline_count(), 1);
  const PipelineInfo& p = a.pipelines[0];
  // Node 1 = outer scan (driver), node 2 = inner seek (inner driver).
  EXPECT_EQ(p.driver_nodes, std::vector<int>{1});
  EXPECT_EQ(p.inner_driver_nodes, std::vector<int>{2});
  EXPECT_TRUE(a.on_nlj_inner_side[2]);
  EXPECT_FALSE(a.on_nlj_inner_side[1]);
  EXPECT_EQ(a.enclosing_nlj[2], 0);
}

TEST_F(PipelineTest, ExchangeMarksSeparation) {
  // Nodes above an Exchange are separated from the pipeline's drivers by a
  // semi-blocking operator (§4.4(2)).
  Plan plan = MustFinalize(
      Filter(Gather(Scan("t_big")), ColCmp(2, CompareOp::kLt, 10)),
      *catalog_);
  PlanAnalysis a = AnalyzePlan(plan);
  ASSERT_EQ(a.pipeline_count(), 1);
  EXPECT_TRUE(a.separated_by_semi_blocking[0]);   // Filter above exchange
  EXPECT_FALSE(a.separated_by_semi_blocking[2]);  // the scan itself
  // The exchange node itself is not separated (its child is the scan).
  EXPECT_FALSE(a.separated_by_semi_blocking[1]);
}

TEST_F(PipelineTest, BufferedNljMarksSeparationButUnbufferedDoesNot) {
  auto make = [&](bool buffered) {
    return MustFinalize(
        Filter(Nlj(JoinKind::kInner, Scan("t_small"),
                   CiSeek("t_big", OuterCol(0), OuterCol(0)), nullptr,
                   buffered),
               ColCmp(0, CompareOp::kGe, 0)),
        *catalog_);
  };
  Plan buffered = make(true);
  Plan unbuffered = make(false);
  EXPECT_TRUE(AnalyzePlan(buffered).separated_by_semi_blocking[0]);
  EXPECT_FALSE(AnalyzePlan(unbuffered).separated_by_semi_blocking[0]);
}

TEST_F(PipelineTest, EagerSpoolIsBlockingBoundary) {
  Plan plan = MustFinalize(EagerSpool(Scan("t_small")), *catalog_);
  PlanAnalysis a = AnalyzePlan(plan);
  EXPECT_EQ(a.pipeline_count(), 2);
}

TEST_F(PipelineTest, EveryNodeAssignedToExactlyOnePipeline) {
  // Property over a complex plan.
  NodePtr join = HashJoin(
      JoinKind::kInner,
      Sort(Filter(Scan("t_small"), ColCmp(1, CompareOp::kLe, 5)), {0}),
      Gather(Scan("t_big")), {0}, {1});
  Plan plan = MustFinalize(HashAgg(std::move(join), {2}, {Count()}),
                           *catalog_);
  PlanAnalysis a = AnalyzePlan(plan);
  std::vector<int> seen(plan.size(), 0);
  for (const PipelineInfo& p : a.pipelines) {
    for (int n : p.nodes) seen[n]++;
  }
  for (int i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "node " << i;
    EXPECT_EQ(a.pipeline_of_node[i] >= 0, true);
  }
}

}  // namespace
}  // namespace testing
}  // namespace lqs
