// Wire-format contract (src/remote/wire.h, DESIGN.md §10):
//  - decode→re-encode is byte-identical for every message type, including
//    randomized ProfileTraces with adversarial field values (the property
//    the fault-tolerant client leans on: an accepted snapshot is exactly
//    what the server serialized, bit-for-bit doubles included);
//  - frames are self-delimiting: WireFrameSize/WireFrameType split a
//    concatenated stream without decoding payloads;
//  - every decoder is total: truncation at *every* prefix length, a flip of
//    *every* bit, wrong magic/version/type, trailing bytes and garbage all
//    return a clean non-OK Status — never a crash, never an out-of-bounds
//    read (the sanitizer CI jobs run this file under ASan/UBSan).

#include <cstddef>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/rng.h"
#include "optimizer/annotate.h"
#include "remote/wire.h"
#include "tests/test_util.h"
#include "workload/plan_builder.h"

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT

// Fills one operator row with adversarial values: large counters that need
// full varint width, negative sentinel times, doubles whose bit patterns
// must survive exactly, and occasional zeros to exercise the short paths.
OperatorProfile RandomProfile(Rng& rng, int node_id) {
  OperatorProfile p;
  p.node_id = node_id;
  p.parent_node_id = static_cast<int>(rng.NextInRange(-1, node_id));
  p.op_type = static_cast<OpType>(
      rng.NextBelow(static_cast<uint64_t>(OpType::kNumOpTypes)));
  // Counters spanning 1..10 varint bytes.
  p.row_count = rng.Next() >> (rng.NextBelow(64));
  p.rebind_count = rng.Next() >> (rng.NextBelow(64));
  p.logical_read_count = rng.Next() >> (rng.NextBelow(64));
  p.segment_read_count = rng.NextBelow(1000);
  p.segment_total_count = p.segment_read_count + rng.NextBelow(1000);
  p.total_pages = rng.Next() >> (rng.NextBelow(64));
  p.estimate_row_count = rng.NextDouble() * 1e12;
  p.open_time_ms = rng.NextBool(0.3) ? -1.0 : rng.NextDouble() * 1e6;
  p.cpu_time_ms = rng.NextDouble() * 1e5;
  p.io_time_ms = rng.NextDouble() * 1e5;
  p.last_active_ms = rng.NextBool(0.3) ? -1.0 : rng.NextDouble() * 1e6;
  p.first_row_ms = rng.NextBool(0.3) ? -1.0 : rng.NextDouble() * 1e6;
  p.close_time_ms = rng.NextBool(0.5) ? -1.0 : rng.NextDouble() * 1e6;
  p.opened = rng.NextBool(0.8);
  p.closed = rng.NextBool(0.3);
  p.finished = rng.NextBool(0.3);
  p.has_pushed_predicate = rng.NextBool(0.2);
  return p;
}

ProfileSnapshot RandomSnapshot(Rng& rng, double time_ms) {
  ProfileSnapshot snap;
  snap.time_ms = time_ms;
  size_t ops = 1 + rng.NextBelow(12);
  for (size_t i = 0; i < ops; ++i) {
    snap.operators.push_back(RandomProfile(rng, static_cast<int>(i)));
  }
  return snap;
}

ProfileTrace RandomTrace(Rng& rng) {
  ProfileTrace trace;
  size_t count = rng.NextBelow(8);  // zero-snapshot traces are legal
  double t = 0;
  for (size_t i = 0; i < count; ++i) {
    t += rng.NextDouble() * 100;
    trace.snapshots.push_back(RandomSnapshot(rng, t));
  }
  t += rng.NextDouble() * 100;
  trace.final_snapshot = RandomSnapshot(rng, t);
  trace.total_elapsed_ms = t;
  return trace;
}

TEST(WireTest, SnapshotRoundTripsByteIdentical) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    Rng rng(seed);
    ProfileSnapshot snap = RandomSnapshot(rng, rng.NextDouble() * 1e6);
    std::string frame;
    EncodeSnapshot(snap, &frame);

    auto decoded = DecodeSnapshot(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    // Spot-check semantic equality...
    ASSERT_EQ(decoded.value().operators.size(), snap.operators.size());
    EXPECT_EQ(decoded.value().time_ms, snap.time_ms);
    for (size_t i = 0; i < snap.operators.size(); ++i) {
      EXPECT_EQ(decoded.value().operators[i].row_count,
                snap.operators[i].row_count);
      EXPECT_EQ(decoded.value().operators[i].open_time_ms,
                snap.operators[i].open_time_ms);
    }
    // ...then the full property: re-encoding reproduces the exact bytes.
    std::string reencoded;
    EncodeSnapshot(decoded.value(), &reencoded);
    EXPECT_EQ(frame, reencoded) << "seed=" << seed;
  }
}

TEST(WireTest, TraceRoundTripsByteIdenticalProperty) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed);
    ProfileTrace trace = RandomTrace(rng);
    std::string frame;
    EncodeTrace(trace, &frame);

    auto decoded = DecodeTrace(frame);
    ASSERT_TRUE(decoded.ok()) << "seed=" << seed << ": "
                              << decoded.status().ToString();
    ASSERT_EQ(decoded.value().snapshots.size(), trace.snapshots.size());
    EXPECT_EQ(decoded.value().total_elapsed_ms, trace.total_elapsed_ms);

    std::string reencoded;
    EncodeTrace(decoded.value(), &reencoded);
    EXPECT_EQ(frame, reencoded) << "seed=" << seed;
  }
}

TEST(WireTest, ExecutedTraceRoundTripsByteIdentical) {
  // Not just synthetic data: a trace produced by the real executor survives
  // the wire unchanged too.
  std::unique_ptr<Catalog> catalog = MakeTestCatalog();
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog);
  ASSERT_OK(AnnotatePlan(&plan, *catalog, OptimizerOptions{}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  ExecutionResult result = MustExecute(plan, catalog.get(), exec);
  ASSERT_GT(result.trace.snapshots.size(), 2u);

  std::string frame;
  EncodeTrace(result.trace, &frame);
  auto decoded = DecodeTrace(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  std::string reencoded;
  EncodeTrace(decoded.value(), &reencoded);
  EXPECT_EQ(frame, reencoded);
  EXPECT_EQ(decoded.value().TrueCardinality(0), result.trace.TrueCardinality(0));
}

TEST(WireTest, PlanSummaryRoundTripsFromRealPlan) {
  std::unique_ptr<Catalog> catalog = MakeTestCatalog();
  Plan plan = MustFinalize(
      HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                       {1}),
              {2}, {Count()}),
      *catalog);
  ASSERT_OK(AnnotatePlan(&plan, *catalog, OptimizerOptions{}));

  PlanSummary summary = PlanSummary::FromPlan(plan);
  ASSERT_EQ(summary.nodes.size(), plan.size());
  EXPECT_EQ(summary.nodes[0].parent_node_id, -1);  // root has no parent

  std::string frame;
  EncodePlanSummary(summary, &frame);
  auto decoded = DecodePlanSummary(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().nodes.size(), summary.nodes.size());
  for (size_t i = 0; i < summary.nodes.size(); ++i) {
    EXPECT_EQ(decoded.value().nodes[i].node_id, summary.nodes[i].node_id);
    EXPECT_EQ(decoded.value().nodes[i].parent_node_id,
              summary.nodes[i].parent_node_id);
    EXPECT_EQ(decoded.value().nodes[i].op_type, summary.nodes[i].op_type);
    EXPECT_EQ(decoded.value().nodes[i].est_rows, summary.nodes[i].est_rows);
    EXPECT_EQ(decoded.value().nodes[i].table_name,
              summary.nodes[i].table_name);
  }
  std::string reencoded;
  EncodePlanSummary(decoded.value(), &reencoded);
  EXPECT_EQ(frame, reencoded);
}

TEST(WireTest, PollResponseRoundTripsWithAndWithoutSnapshot) {
  Rng rng(7);
  PollResponse with;
  with.request_id = 0xDEADBEEFCAFEull;
  with.has_snapshot = true;
  with.query_complete = true;
  with.snapshot = RandomSnapshot(rng, 123.5);

  PollResponse without;
  without.request_id = 2;

  for (const PollResponse& msg : {with, without}) {
    std::string frame;
    EncodePollResponse(msg, &frame);
    auto decoded = DecodePollResponse(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().request_id, msg.request_id);
    EXPECT_EQ(decoded.value().has_snapshot, msg.has_snapshot);
    EXPECT_EQ(decoded.value().query_complete, msg.query_complete);
    std::string reencoded;
    EncodePollResponse(decoded.value(), &reencoded);
    EXPECT_EQ(frame, reencoded);
  }
}

TEST(WireTest, FrameStreamSplitsByDeclaredSize) {
  Rng rng(11);
  std::string stream;
  EncodeSnapshot(RandomSnapshot(rng, 1.0), &stream);
  size_t first_end = stream.size();
  EncodeTrace(RandomTrace(rng), &stream);
  size_t second_end = stream.size();
  PollResponse resp;
  resp.request_id = 9;
  EncodePollResponse(resp, &stream);

  std::string_view rest = stream;
  auto size1 = WireFrameSize(rest);
  ASSERT_TRUE(size1.ok());
  EXPECT_EQ(size1.value(), first_end);
  auto type1 = WireFrameType(rest.substr(0, size1.value()));
  ASSERT_TRUE(type1.ok());
  EXPECT_EQ(type1.value(), WireType::kSnapshot);

  rest.remove_prefix(size1.value());
  auto size2 = WireFrameSize(rest);
  ASSERT_TRUE(size2.ok());
  EXPECT_EQ(size2.value(), second_end - first_end);
  EXPECT_EQ(WireFrameType(rest).value(), WireType::kTrace);

  rest.remove_prefix(size2.value());
  auto size3 = WireFrameSize(rest);
  ASSERT_TRUE(size3.ok());
  EXPECT_EQ(size3.value(), rest.size());
  EXPECT_EQ(WireFrameType(rest).value(), WireType::kPollResponse);
}

TEST(WireTest, EveryTruncationFailsCleanly) {
  Rng rng(3);
  std::string frame;
  EncodeSnapshot(RandomSnapshot(rng, 42.0), &frame);
  for (size_t len = 0; len < frame.size(); ++len) {
    std::string_view prefix(frame.data(), len);
    auto decoded = DecodeSnapshot(prefix);
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len << " decoded";
    // A truncated buffer must also be reported as incomplete by the framer
    // (it cannot contain a whole frame).
    EXPECT_FALSE(WireFrameSize(prefix).ok()) << "prefix length " << len;
  }
  // The untruncated frame still decodes — the loop above did not depend on
  // a broken encoder.
  EXPECT_TRUE(DecodeSnapshot(frame).ok());
}

TEST(WireTest, EveryBitFlipFailsCleanly) {
  Rng rng(5);
  ProfileSnapshot snap = RandomSnapshot(rng, 17.25);
  std::string frame;
  EncodeSnapshot(snap, &frame);
  std::string reference = frame;
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = frame;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      auto decoded = DecodeSnapshot(damaged);
      EXPECT_FALSE(decoded.ok())
          << "flip of byte " << byte << " bit " << bit << " went unnoticed";
    }
  }
  EXPECT_EQ(frame, reference);
  EXPECT_TRUE(DecodeSnapshot(frame).ok());
}

TEST(WireTest, PayloadDamageReportsDataLoss) {
  // Damage past the header is a CRC failure and must carry kDataLoss — the
  // code retry policy keys on (discard payload, do not trust any field).
  Rng rng(9);
  std::string frame;
  EncodeSnapshot(RandomSnapshot(rng, 1.0), &frame);
  ASSERT_GT(frame.size(), kWireHeaderSize);
  std::string damaged = frame;
  damaged[kWireHeaderSize] = static_cast<char>(damaged[kWireHeaderSize] ^ 0x40);
  auto decoded = DecodeSnapshot(damaged);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), Status::Code::kDataLoss)
      << decoded.status().ToString();
}

TEST(WireTest, HeaderChecksRejectForeignAndFutureFrames) {
  Rng rng(13);
  std::string frame;
  EncodeSnapshot(RandomSnapshot(rng, 1.0), &frame);

  std::string wrong_magic = frame;
  wrong_magic[0] = 'X';
  EXPECT_EQ(DecodeSnapshot(wrong_magic).status().code(),
            Status::Code::kInvalidArgument);

  std::string future_version = frame;
  future_version[2] = static_cast<char>(kWireVersion + 1);
  EXPECT_EQ(DecodeSnapshot(future_version).status().code(),
            Status::Code::kUnimplemented);

  // Right frame, wrong decoder: a snapshot is not a trace.
  EXPECT_EQ(DecodeTrace(frame).status().code(),
            Status::Code::kInvalidArgument);

  // Trailing bytes break the exactly-one-frame contract.
  std::string trailing = frame + '\0';
  EXPECT_FALSE(DecodeSnapshot(trailing).ok());
}

TEST(WireTest, GarbageInputsFailWithoutCrashing) {
  EXPECT_FALSE(DecodeSnapshot("").ok());
  EXPECT_FALSE(DecodeTrace("LQ").ok());
  EXPECT_FALSE(DecodePollResponse(std::string(kWireHeaderSize, '\0')).ok());
  EXPECT_FALSE(WireFrameSize("").ok());
  EXPECT_FALSE(WireFrameType("L").ok());
  Rng rng(21);
  for (int i = 0; i < 64; ++i) {
    std::string garbage(rng.NextBelow(200), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.NextBelow(256));
    // Any status is fine; surviving the bytes is the property.
    (void)DecodeSnapshot(garbage);      // lqs-verify: status-ok(fuzz loop)
    (void)DecodeTrace(garbage);         // lqs-verify: status-ok(fuzz loop)
    (void)DecodePlanSummary(garbage);   // lqs-verify: status-ok(fuzz loop)
    (void)DecodePollResponse(garbage);  // lqs-verify: status-ok(fuzz loop)
    (void)WireFrameSize(garbage);       // lqs-verify: status-ok(fuzz loop)
  }
}

TEST(WireTest, Crc32MatchesKnownVectors) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(WireCrc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(WireCrc32("", 0), 0x00000000u);
}

// Advances a copy of `base` the way a running query would: same shape, some
// counters grow, some doubles move, some lifecycle flags flip. Leaving
// fields untouched (often the whole operator) exercises the presence bitmap
// and the absent-operator path of the delta codec.
ProfileSnapshot MutateTowards(Rng& rng, const ProfileSnapshot& base,
                              double time_ms) {
  ProfileSnapshot next = base;
  next.time_ms = time_ms;
  for (OperatorProfile& op : next.operators) {
    if (rng.NextBool(0.3)) continue;  // operator entirely unchanged
    if (rng.NextBool(0.7)) op.row_count += rng.NextBelow(100000);
    if (rng.NextBool(0.5)) op.logical_read_count += rng.NextBelow(5000);
    if (rng.NextBool(0.3)) op.rebind_count += rng.NextBelow(4);
    if (rng.NextBool(0.3)) op.segment_read_count += rng.NextBelow(8);
    if (rng.NextBool(0.2)) op.total_pages += rng.NextBelow(512);
    if (rng.NextBool(0.5)) op.cpu_time_ms += rng.NextDouble() * 50;
    if (rng.NextBool(0.4)) op.io_time_ms += rng.NextDouble() * 50;
    if (rng.NextBool(0.5)) op.last_active_ms = time_ms;
    if (rng.NextBool(0.2)) op.estimate_row_count = rng.NextDouble() * 1e9;
    if (rng.NextBool(0.3) && !op.opened) {
      op.opened = true;
      op.open_time_ms = time_ms;
    }
    if (rng.NextBool(0.1) && op.opened && !op.closed) {
      op.closed = true;
      op.close_time_ms = time_ms;
    }
  }
  return next;
}

TEST(WireTest, DeltaReassemblyIsByteExactOnRandomizedPairs) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed);
    ProfileSnapshot base = RandomSnapshot(rng, rng.NextDouble() * 1e5);
    ProfileSnapshot target =
        MutateTowards(rng, base, base.time_ms + 1 + rng.NextDouble() * 100);

    auto delta = MakeSnapshotDelta(base, target);
    ASSERT_TRUE(delta.ok()) << "seed=" << seed << ": "
                            << delta.status().ToString();

    // The delta frame round-trips byte-identically like every other frame.
    std::string frame;
    EncodeSnapshotDelta(delta.value(), &frame);
    EXPECT_EQ(WireFrameType(frame).value(), WireType::kSnapshotDelta);
    auto decoded = DecodeSnapshotDelta(frame);
    ASSERT_TRUE(decoded.ok()) << "seed=" << seed << ": "
                              << decoded.status().ToString();
    std::string reencoded;
    EncodeSnapshotDelta(decoded.value(), &reencoded);
    EXPECT_EQ(frame, reencoded) << "seed=" << seed;

    // The property the client leans on: applying the decoded delta to the
    // base reproduces the target bit-for-bit — the reassembled snapshot is
    // indistinguishable (under EncodeSnapshot) from a full-snapshot send.
    ProfileSnapshot reassembled;
    ASSERT_OK(ApplySnapshotDelta(decoded.value(), base, &reassembled));
    std::string full_target, full_reassembled;
    EncodeSnapshot(target, &full_target);
    EncodeSnapshot(reassembled, &full_reassembled);
    EXPECT_EQ(full_target, full_reassembled) << "seed=" << seed;
  }
}

TEST(WireTest, DeltaCarriesOnlyChangedOperatorsAndShrinksTheFrame) {
  Rng rng(31);
  // A realistically wide plan (10 operators) — the size claim below is
  // about unchanged operators costing nothing, so the snapshot must
  // actually have some.
  ProfileSnapshot base;
  base.time_ms = 1000.0;
  for (int i = 0; i < 10; ++i) {
    base.operators.push_back(RandomProfile(rng, i));
  }
  // Only operator 0 advances; every other operator must be absent from the
  // delta, and the frame must be much smaller than the full snapshot.
  ProfileSnapshot target = base;
  target.time_ms = 1010.0;
  target.operators[0].row_count += 42;
  target.operators[0].cpu_time_ms += 1.5;

  auto delta = MakeSnapshotDelta(base, target);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  ASSERT_EQ(delta.value().ops.size(), 1u);
  EXPECT_EQ(delta.value().ops[0].index, 0u);
  EXPECT_EQ(delta.value().ops[0].changed,
            static_cast<uint32_t>(kDeltaRowCount) | kDeltaCpuTime);
  EXPECT_EQ(delta.value().ops[0].row_count_delta, 42);

  std::string delta_frame, full_frame;
  EncodeSnapshotDelta(delta.value(), &delta_frame);
  EncodeSnapshot(target, &full_frame);
  EXPECT_LT(delta_frame.size() * 3, full_frame.size())
      << "steady-state delta should be a small fraction of a full snapshot";

  // An identical pair deltas to "nothing changed": header-only payload.
  ProfileSnapshot same = base;
  same.time_ms = base.time_ms;
  auto empty = MakeSnapshotDelta(base, same);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().ops.empty());
  ProfileSnapshot out;
  ASSERT_OK(ApplySnapshotDelta(empty.value(), base, &out));
  std::string a, b;
  EncodeSnapshot(base, &a);
  EncodeSnapshot(out, &b);
  EXPECT_EQ(a, b);
}

TEST(WireTest, DeltaAgainstWrongBaseIsNotFound) {
  Rng rng(37);
  ProfileSnapshot base = RandomSnapshot(rng, 500.0);
  ProfileSnapshot target = MutateTowards(rng, base, 510.0);
  auto delta = MakeSnapshotDelta(base, target);
  ASSERT_TRUE(delta.ok());

  // The client lost the acked base (e.g. it accepted a newer one since):
  // bit-exact time identity fails, and the caller takes the resync path.
  ProfileSnapshot other_base = base;
  other_base.time_ms = base.time_ms + 1.0;
  ProfileSnapshot out;
  Status status = ApplySnapshotDelta(delta.value(), other_base, &out);
  EXPECT_EQ(status.code(), Status::Code::kNotFound) << status.ToString();

  // Structural mismatch is a different failure: the delta cannot possibly
  // describe this plan, acked or not.
  ProfileSnapshot fewer_ops = base;
  fewer_ops.operators.pop_back();
  if (!delta.value().ops.empty()) {
    status = ApplySnapshotDelta(delta.value(), fewer_ops, &out);
    EXPECT_EQ(status.code(), Status::Code::kInvalidArgument)
        << status.ToString();
  }
}

TEST(WireTest, DeltaRefusesStructurallyMismatchedPairs) {
  Rng rng(41);
  ProfileSnapshot base = RandomSnapshot(rng, 100.0);

  ProfileSnapshot extra_op = base;
  extra_op.time_ms = 110.0;
  extra_op.operators.push_back(RandomProfile(
      rng, static_cast<int>(extra_op.operators.size())));
  EXPECT_EQ(MakeSnapshotDelta(base, extra_op).status().code(),
            Status::Code::kInvalidArgument);

  ProfileSnapshot retyped = base;
  retyped.time_ms = 110.0;
  retyped.operators[0].node_id += 100;
  EXPECT_EQ(MakeSnapshotDelta(base, retyped).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(WireTest, DeltaFrameSurvivesTruncationAndBitFlips) {
  Rng rng(43);
  ProfileSnapshot base = RandomSnapshot(rng, 900.0);
  ProfileSnapshot target = MutateTowards(rng, base, 930.0);
  auto delta = MakeSnapshotDelta(base, target);
  ASSERT_TRUE(delta.ok());
  std::string frame;
  EncodeSnapshotDelta(delta.value(), &frame);

  for (size_t len = 0; len < frame.size(); ++len) {
    std::string_view prefix(frame.data(), len);
    EXPECT_FALSE(DecodeSnapshotDelta(prefix).ok())
        << "prefix length " << len << " decoded";
  }
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = frame;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      EXPECT_FALSE(DecodeSnapshotDelta(damaged).ok())
          << "flip of byte " << byte << " bit " << bit << " went unnoticed";
    }
  }
  EXPECT_TRUE(DecodeSnapshotDelta(frame).ok());
}

TEST(WireTest, PollResponseDeltaArmRoundTripsByteIdentical) {
  Rng rng(47);
  ProfileSnapshot base = RandomSnapshot(rng, 60.0);
  ProfileSnapshot target = MutateTowards(rng, base, 75.0);
  auto delta = MakeSnapshotDelta(base, target);
  ASSERT_TRUE(delta.ok());

  PollResponse msg;
  msg.request_id = 77;
  msg.has_delta = true;
  msg.delta = delta.value();

  std::string frame;
  EncodePollResponse(msg, &frame);
  auto decoded = DecodePollResponse(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().request_id, 77u);
  EXPECT_FALSE(decoded.value().has_snapshot);
  ASSERT_TRUE(decoded.value().has_delta);
  EXPECT_EQ(decoded.value().delta.ops.size(), delta.value().ops.size());
  std::string reencoded;
  EncodePollResponse(decoded.value(), &reencoded);
  EXPECT_EQ(frame, reencoded);

  // The reassembly chain works through the response envelope too.
  ProfileSnapshot out;
  ASSERT_OK(ApplySnapshotDelta(decoded.value().delta, base, &out));
  std::string full_target, full_out;
  EncodeSnapshot(target, &full_target);
  EncodeSnapshot(out, &full_out);
  EXPECT_EQ(full_target, full_out);
}

}  // namespace
}  // namespace testing
}  // namespace lqs
