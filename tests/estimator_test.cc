#include <cmath>

#include "gtest/gtest.h"

#include "lqs/estimator.h"
#include "lqs/metrics.h"
#include "optimizer/annotate.h"
#include "tests/test_util.h"
#include "workload/plan_builder.h"
#include "workload/workload.h"

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT

class EstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeTestCatalog(); }

  Plan Annotated(std::unique_ptr<PlanNode> root,
                 OptimizerOptions opt = {}) {
    Plan plan = MustFinalize(std::move(root), *catalog_);
    EXPECT_OK(AnnotatePlan(&plan, *catalog_, opt));
    return plan;
  }

  ExecutionResult Run(const Plan& plan, double interval_ms = 2.0) {
    ExecOptions exec;
    exec.snapshot_interval_ms = interval_ms;
    return MustExecute(plan, catalog_.get(), exec);
  }

  std::unique_ptr<Catalog> catalog_;
};

TEST_F(EstimatorTest, ProgressWithinBoundsAndIncreasesOverall) {
  Plan plan = Annotated(
      HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                       {1}),
              {2}, {Count()}));
  auto result = Run(plan);
  ASSERT_GT(result.trace.snapshots.size(), 5u);
  ProgressEstimator est(&plan, catalog_.get(), EstimatorOptions::Lqs());
  double first = -1;
  double last = -1;
  for (const auto& snap : result.trace.snapshots) {
    ProgressReport r = est.Estimate(snap);
    EXPECT_GE(r.query_progress, 0.0);
    EXPECT_LE(r.query_progress, 1.0);
    for (double p : r.operator_progress) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
    if (first < 0) first = r.query_progress;
    last = r.query_progress;
  }
  EXPECT_GT(last, first);
  EXPECT_GT(last, 0.7);  // late snapshots should be near completion
}

TEST_F(EstimatorTest, FinishedQueryReportsFullProgress) {
  Plan plan = Annotated(Sort(Scan("t_big"), {2}));
  auto result = Run(plan);
  ProgressEstimator est(&plan, catalog_.get(), EstimatorOptions::Lqs());
  ProgressReport r = est.Estimate(result.trace.final_snapshot);
  EXPECT_NEAR(r.query_progress, 1.0, 1e-6);
  for (double p : r.operator_progress) EXPECT_NEAR(p, 1.0, 1e-6);
}

TEST_F(EstimatorTest, NotStartedReportsZero) {
  Plan plan = Annotated(Scan("t_big"));
  ProfileSnapshot empty;
  empty.operators.resize(static_cast<size_t>(plan.size()));
  ProgressEstimator est(&plan, catalog_.get(), EstimatorOptions::Lqs());
  ProgressReport r = est.Estimate(empty);
  EXPECT_DOUBLE_EQ(r.query_progress, 0.0);
}

TEST_F(EstimatorTest, RefinementConvergesToTrueCardinality) {
  // Filter whose optimizer estimate is badly wrong (amplified error). After
  // enough rows are observed, the refined estimate must land near the true
  // selectivity regardless of the initial estimate.
  OptimizerOptions bad;
  bad.selectivity_error = 3.0;  // up to ~20x off
  Plan plan = Annotated(
      Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 40)), bad);
  auto result = Run(plan);
  const double n_true = static_cast<double>(
      result.trace.final_snapshot.operators[0].row_count);
  ASSERT_GT(n_true, 0);

  ProgressEstimator est(&plan, catalog_.get(),
                        EstimatorOptions::DriverNodeRefined());
  // Take a late snapshot (>60% through) that is not the final one.
  const auto& snaps = result.trace.snapshots;
  ASSERT_GT(snaps.size(), 4u);
  const auto& late = snaps[snaps.size() * 3 / 4];
  ProgressReport r = est.Estimate(late);
  EXPECT_NEAR(r.refined_rows[0], n_true, 0.25 * n_true)
      << "optimizer estimate was " << plan.node(0).est_rows;
}

TEST_F(EstimatorTest, RefinementGuardsHoldBackEarly) {
  Plan plan = Annotated(Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 40)));
  ProgressEstimator est(&plan, catalog_.get(),
                        EstimatorOptions::DriverNodeRefined());
  // Snapshot with fewer than refine_min_rows observed: refined estimate
  // stays at the (bounded) optimizer estimate, not k/alpha.
  ProfileSnapshot snap;
  snap.operators.resize(static_cast<size_t>(plan.size()));
  snap.operators[0].opened = true;
  snap.operators[0].row_count = 2;  // << refine_min_rows
  snap.operators[1].opened = true;
  snap.operators[1].row_count = 10;
  snap.operators[1].logical_read_count = 1;
  ProgressReport r = est.Estimate(snap);
  // k/alpha would be 2 / (10/5000) = 1000; the guard keeps the estimate at
  // the optimizer value (clamped by bounds).
  EXPECT_NE(r.refined_rows[0], 1000.0);
}

TEST_F(EstimatorTest, RefinementPlusBoundingBeatsRawEstimates) {
  // Error_count with refinement+bounding must beat the raw TGN model when
  // optimizer estimates are bad, averaged over a handful of plans.
  OptimizerOptions bad;
  bad.selectivity_error = 2.5;
  double err_tgn = 0;
  double err_refined = 0;
  int plans = 0;
  for (int variant = 0; variant < 4; ++variant) {
    Plan plan = Annotated(
        HashAgg(HashJoin(JoinKind::kInner,
                         Filter(Scan("t_small"),
                                ColCmp(1, CompareOp::kLe, 2 + variant)),
                         Scan("t_big", ColCmp(2, CompareOp::kLt,
                                              20 + 10 * variant)),
                         {0}, {1}),
                {2}, {Count(), Sum(5)}),
        bad);
    auto result = Run(plan);
    err_tgn += EvaluateQuery(plan, *catalog_, result.trace,
                             EstimatorOptions::TotalGetNext())
                   .error_count;
    err_refined += EvaluateQuery(plan, *catalog_, result.trace,
                                 EstimatorOptions::DriverNodeRefined())
                       .error_count;
    plans++;
  }
  EXPECT_LT(err_refined / plans, err_tgn / plans);
}

TEST_F(EstimatorTest, StoragePredicateUsesIoFraction) {
  // §4.3: a scan with a pushed predicate reports progress by I/O fraction.
  Plan plan = Annotated(Scan("t_big", ColCmp(2, CompareOp::kLt, 3)));
  ProgressEstimator est(&plan, catalog_.get(), EstimatorOptions::Lqs());
  ProfileSnapshot snap;
  snap.operators.resize(1);
  auto& p = snap.operators[0];
  p.opened = true;
  p.has_pushed_predicate = true;
  p.total_pages = 40;
  p.logical_read_count = 10;
  p.row_count = 3;  // tiny output so far — misleading for k/N
  ProgressReport r = est.Estimate(snap);
  EXPECT_NEAR(r.operator_progress[0], 0.25, 1e-9);

  // With the feature disabled, the report falls back to k/N̂.
  EstimatorOptions no_io = EstimatorOptions::Lqs();
  no_io.storage_predicate_io = false;
  ProgressEstimator est2(&plan, catalog_.get(), no_io);
  ProgressReport r2 = est2.Estimate(snap);
  EXPECT_NE(r2.operator_progress[0], r.operator_progress[0]);
}

TEST_F(EstimatorTest, BatchModeUsesSegmentFraction) {
  Plan plan = Annotated(CsScan("t_big"));
  ProgressEstimator est(&plan, catalog_.get(), EstimatorOptions::Lqs());
  ProfileSnapshot snap;
  snap.operators.resize(1);
  auto& p = snap.operators[0];
  p.opened = true;
  p.segment_total_count = 2;
  p.segment_read_count = 1;
  p.row_count = 4096;
  ProgressReport r = est.Estimate(snap);
  EXPECT_NEAR(r.operator_progress[0], 0.5, 1e-9);
}

TEST_F(EstimatorTest, TwoPhaseBlockingShowsProgressDuringInput) {
  // §4.5 / Figure 10: during the aggregate's input phase the output-only
  // model reports ~0 while the two-phase model reports meaningful progress.
  Plan plan = Annotated(HashAgg(Scan("t_big"), {2}, {Count()}));
  auto result = Run(plan);
  EstimatorOptions two_phase = EstimatorOptions::Lqs();
  EstimatorOptions output_only = EstimatorOptions::Lqs();
  output_only.two_phase_blocking = false;
  ProgressEstimator est_two(&plan, catalog_.get(), two_phase);
  ProgressEstimator est_out(&plan, catalog_.get(), output_only);

  // Mid-input snapshot: the aggregate (node 0) has consumed rows but output
  // nothing.
  bool found = false;
  for (const auto& snap : result.trace.snapshots) {
    if (snap.operators[0].row_count == 0 &&
        snap.operators[1].row_count > 2000) {
      ProgressReport two = est_two.Estimate(snap);
      ProgressReport out = est_out.Estimate(snap);
      EXPECT_GT(two.operator_progress[0], 0.3);
      EXPECT_LT(out.operator_progress[0], 0.05);
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "no mid-input snapshot captured";
}

TEST_F(EstimatorTest, WeightsImproveTimeCorrelationOnLopsidedPlan) {
  // Pipeline weights (§4.6): a cheap-per-row build pipeline followed by an
  // expensive probe pipeline skews the unweighted estimator; weights fix
  // the time correlation.
  Plan plan = Annotated(
      Sort(HashJoin(JoinKind::kInner, Scan("t_small"),
                    Nlj(JoinKind::kInner, Scan("t_big"),
                        CiSeek("t_small", OuterCol(1), OuterCol(1))),
                    {0}, {1}),
           {2}));
  auto result = Run(plan);
  EstimatorOptions weighted = EstimatorOptions::Lqs();
  EstimatorOptions unweighted = EstimatorOptions::Lqs();
  unweighted.use_weights = false;
  double err_w =
      EvaluateQuery(plan, *catalog_, result.trace, weighted).error_time;
  double err_u =
      EvaluateQuery(plan, *catalog_, result.trace, unweighted).error_time;
  // Both are valid estimators; weighted should not be substantially worse
  // and typically wins on lopsided plans.
  EXPECT_LE(err_w, err_u + 0.05);
}

TEST_F(EstimatorTest, InnerSideRefinementScalesByExecutions) {
  // §4.4(3): with a buffered outer, the inner side's expected total calls
  // must be scaled by executions (rebinds), not by the outer child's K.
  Plan plan = Annotated(
      Nlj(JoinKind::kInner, Scan("t_small"),
          CiSeek("t_big", OuterCol(0), OuterCol(0)), nullptr,
          /*buffered=*/true));
  auto result = Run(plan, 0.2);
  ProgressEstimator est(&plan, catalog_.get(), EstimatorOptions::Lqs());
  const double n_true = static_cast<double>(
      result.trace.final_snapshot.operators[2].row_count);
  // Mid-execution snapshot where the outer is fully buffered but the inner
  // has only partially executed.
  bool checked = false;
  for (const auto& snap : result.trace.snapshots) {
    const auto& inner = snap.operators[2];
    const auto& outer = snap.operators[1];
    if (outer.finished && inner.rebind_count > 40 &&
        inner.row_count < n_true * 0.8) {
      ProgressReport r = est.Estimate(snap);
      EXPECT_NEAR(r.refined_rows[2], n_true, 0.3 * n_true);
      checked = true;
      break;
    }
  }
  EXPECT_TRUE(checked) << "no mid-NLJ snapshot captured";
}

TEST_F(EstimatorTest, PresetConfigurationsDiffer) {
  EstimatorOptions tgn = EstimatorOptions::TotalGetNext();
  EXPECT_FALSE(tgn.use_driver_nodes);
  EXPECT_FALSE(tgn.refine_cardinality);
  EXPECT_FALSE(tgn.bound_cardinality);
  EstimatorOptions bound = EstimatorOptions::BoundingOnly();
  EXPECT_TRUE(bound.bound_cardinality);
  EXPECT_FALSE(bound.refine_cardinality);
  EstimatorOptions lqs = EstimatorOptions::Lqs();
  EXPECT_TRUE(lqs.use_weights);
  EXPECT_TRUE(lqs.two_phase_blocking);
}

TEST_F(EstimatorTest, MetricsProduceFiniteErrors) {
  Plan plan = Annotated(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1}));
  auto result = Run(plan);
  for (auto opts :
       {EstimatorOptions::TotalGetNext(), EstimatorOptions::BoundingOnly(),
        EstimatorOptions::DriverNodeRefined(), EstimatorOptions::Lqs()}) {
    QueryEvaluation eval = EvaluateQuery(plan, *catalog_, result.trace, opts);
    EXPECT_GE(eval.error_count, 0.0);
    EXPECT_LE(eval.error_count, 1.0);
    EXPECT_GE(eval.error_time, 0.0);
    EXPECT_LE(eval.error_time, 1.0);
    EXPECT_GT(eval.observations, 0);
    for (const auto& op : eval.operator_errors) {
      EXPECT_TRUE(std::isfinite(op.count_error));
      EXPECT_TRUE(std::isfinite(op.time_error));
    }
  }
}

TEST_F(EstimatorTest, ProgressCurveCoversExecution) {
  Plan plan = Annotated(Sort(Scan("t_big"), {1}));
  auto result = Run(plan);
  auto curve = ProgressCurve(plan, *catalog_, result.trace,
                             EstimatorOptions::Lqs());
  ASSERT_GT(curve.size(), 3u);
  EXPECT_LT(curve.front().time_fraction, 0.2);
  EXPECT_GT(curve.back().time_fraction, 0.8);
  for (const auto& s : curve) {
    EXPECT_GE(s.true_count, 0.0);
    EXPECT_LE(s.true_count, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace testing
}  // namespace lqs
