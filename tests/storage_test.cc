#include <cmath>

#include "gtest/gtest.h"

#include "common/rng.h"
#include "storage/catalog.h"
#include "storage/columnstore.h"
#include "storage/statistics.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace lqs {
namespace testing {
namespace {

std::unique_ptr<Table> MakeTable(int64_t rows) {
  auto t = std::make_unique<Table>(
      "t", Schema({{"k", DataType::kInt64}, {"g", DataType::kInt64}}));
  for (int64_t i = 0; i < rows; ++i) {
    t->AppendRow(Row{Value(rows - 1 - i), Value(i % 7)});
  }
  return t;
}

TEST(SchemaTest, ColumnLookup) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  EXPECT_EQ(s.ColumnIndex("a"), 0);
  EXPECT_EQ(s.ColumnIndex("b"), 1);
  EXPECT_EQ(s.ColumnIndex("zz"), -1);
  EXPECT_EQ(s.ToString(), "(a INT64, b DOUBLE)");
}

TEST(TableTest, PageAccounting) {
  auto t = MakeTable(1000);
  EXPECT_EQ(t->num_rows(), 1000u);
  EXPECT_EQ(t->num_pages(), (1000 + kRowsPerPage - 1) / kRowsPerPage);
}

TEST(TableTest, ClusterBySortsRows) {
  auto t = MakeTable(500);
  ASSERT_OK(t->ClusterBy(0));
  EXPECT_EQ(t->clustered_column(), 0);
  for (uint64_t i = 1; i < t->num_rows(); ++i) {
    EXPECT_LE(t->row(i - 1)[0].AsInt(), t->row(i)[0].AsInt());
  }
}

TEST(TableTest, ClusterByRejectsBadColumn) {
  auto t = MakeTable(10);
  EXPECT_FALSE(t->ClusterBy(5).ok());
}

TEST(TableTest, IndexSeekExactAndRange) {
  auto t = MakeTable(700);
  ASSERT_OK(t->BuildIndex("ix_g", 1));
  const OrderedIndex* ix = t->GetIndex("ix_g");
  ASSERT_NE(ix, nullptr);
  auto range = ix->Seek(Value(int64_t{3}));
  EXPECT_EQ(range.end - range.begin, 100u);  // 700 / 7
  for (uint64_t e = range.begin; e < range.end; ++e) {
    EXPECT_EQ(t->row(ix->row_id_at(e))[1].AsInt(), 3);
  }
  auto wide = ix->SeekRange(Value(int64_t{2}), Value(int64_t{4}));
  EXPECT_EQ(wide.end - wide.begin, 300u);
  auto empty = ix->Seek(Value(int64_t{99}));
  EXPECT_EQ(empty.begin, empty.end);
}

TEST(TableTest, DuplicateIndexNameRejected) {
  auto t = MakeTable(10);
  ASSERT_OK(t->BuildIndex("ix", 0));
  EXPECT_FALSE(t->BuildIndex("ix", 1).ok());
  EXPECT_NE(t->FindIndexOnColumn(0), nullptr);
  EXPECT_EQ(t->FindIndexOnColumn(1), nullptr);
}

TEST(ColumnstoreTest, SegmentMetadata) {
  auto t = MakeTable(10000);
  ASSERT_OK(t->ClusterBy(0));
  ColumnstoreIndex csi("csi", t.get());
  EXPECT_EQ(csi.num_segments(), (10000 + kRowsPerSegment - 1) / kRowsPerSegment);
  uint64_t total = 0;
  for (uint64_t s = 0; s < csi.num_segments(); ++s) {
    const SegmentMeta& meta = csi.segment(0, s);
    total += meta.num_rows;
    // Clustered on k => segment s covers a contiguous key range.
    EXPECT_EQ(meta.min_value.AsInt(), static_cast<int64_t>(meta.first_row));
    EXPECT_EQ(meta.max_value.AsInt(),
              static_cast<int64_t>(meta.first_row + meta.num_rows - 1));
  }
  EXPECT_EQ(total, 10000u);
}

TEST(ColumnstoreTest, SegmentElimination) {
  auto t = MakeTable(10000);
  ASSERT_OK(t->ClusterBy(0));
  ColumnstoreIndex csi("csi", t.get());
  // k < 100 lives entirely in segment 0.
  int kept = 0;
  for (uint64_t s = 0; s < csi.num_segments(); ++s) {
    if (!csi.CanEliminateSegment(0, s, static_cast<int>(CompareOp::kLt),
                                 Value(int64_t{100}))) {
      kept++;
    }
  }
  EXPECT_EQ(kept, 1);
  // Equality beyond the domain eliminates everything.
  for (uint64_t s = 0; s < csi.num_segments(); ++s) {
    EXPECT_TRUE(csi.CanEliminateSegment(0, s, static_cast<int>(CompareOp::kEq),
                                        Value(int64_t{999999})));
  }
  // g spans 0..6 in every segment: nothing eliminable on g.
  for (uint64_t s = 0; s < csi.num_segments(); ++s) {
    EXPECT_FALSE(csi.CanEliminateSegment(1, s, static_cast<int>(CompareOp::kEq),
                                         Value(int64_t{3})));
  }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

class HistogramTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(
        "h", Schema({{"u", DataType::kInt64}, {"skew", DataType::kInt64}}));
    Rng rng(3);
    ZipfDistribution zipf(100, 1.0);
    for (int64_t i = 0; i < 20000; ++i) {
      table_->AppendRow(Row{Value(rng.NextInRange(0, 999)),
                            Value(static_cast<int64_t>(zipf.Sample(rng)))});
    }
  }
  std::unique_ptr<Table> table_;
};

TEST_F(HistogramTest, RangeSelectivityOnUniformColumn) {
  auto h = Histogram::Build(*table_, 0, 64);
  // ~25% of values below 250.
  EXPECT_NEAR(h->EstimateSelectivity(CompareOp::kLt, Value(int64_t{250})),
              0.25, 0.04);
  EXPECT_NEAR(h->EstimateSelectivity(CompareOp::kGe, Value(int64_t{250})),
              0.75, 0.04);
  EXPECT_NEAR(h->EstimateSelectivity(CompareOp::kLe, Value(int64_t{999})),
              1.0, 0.01);
  EXPECT_NEAR(h->EstimateSelectivity(CompareOp::kLt, Value(int64_t{0})), 0.0,
              0.01);
}

TEST_F(HistogramTest, EqualitySelectivityReflectsSkew) {
  auto h = Histogram::Build(*table_, 1, 64);
  // Value 1 under z=1 zipf over 100: ~19% of rows. A coarse histogram can
  // smear it across its bucket, but must still rank it far above the tail.
  double top = h->EstimateSelectivity(CompareOp::kEq, Value(int64_t{1}));
  double tail = h->EstimateSelectivity(CompareOp::kEq, Value(int64_t{90}));
  EXPECT_GT(top, 10 * tail);
}

TEST_F(HistogramTest, DistinctEstimateReasonable) {
  auto h0 = Histogram::Build(*table_, 0, 64);
  auto h1 = Histogram::Build(*table_, 1, 64);
  EXPECT_NEAR(h0->EstimateDistinct(), 1000, 150);
  EXPECT_NEAR(h1->EstimateDistinct(), 100, 30);
}

TEST_F(HistogramTest, SampledBuildApproximatesFull) {
  auto full = Histogram::Build(*table_, 0, 64, 1.0);
  auto sampled = Histogram::Build(*table_, 0, 64, 0.1, /*seed=*/5);
  double f = full->EstimateSelectivity(CompareOp::kLt, Value(int64_t{500}));
  double s = sampled->EstimateSelectivity(CompareOp::kLt, Value(int64_t{500}));
  EXPECT_NEAR(f, s, 0.05);
  EXPECT_DOUBLE_EQ(sampled->EstimateTotalRows(), 20000.0);
}

TEST_F(HistogramTest, SelectivityComplementsSumToOne) {
  auto h = Histogram::Build(*table_, 0, 32);
  for (int64_t v : {100, 450, 800}) {
    double lt = h->EstimateSelectivity(CompareOp::kLt, Value(v));
    double ge = h->EstimateSelectivity(CompareOp::kGe, Value(v));
    EXPECT_NEAR(lt + ge, 1.0, 1e-9);
  }
}

TEST(TableStatisticsTest, SmallTablesGetFullscanStats) {
  auto t = std::make_unique<Table>("tiny",
                                   Schema({{"k", DataType::kInt64}}));
  for (int64_t i = 0; i < 25; ++i) t->AppendRow(Row{Value(i)});
  // Even with an aggressive sample rate, the 25-row table is fullscanned.
  TableStatistics stats(*t, 32, /*sample_rate=*/0.01, 7);
  EXPECT_NEAR(stats.column(0).EstimateDistinct(), 25, 1);
}

// ---------------------------------------------------------------------------
// Degree-sequence norms (LpBound inputs)
// ---------------------------------------------------------------------------

TEST(DegreeNormsTest, ExactNormsOnModularColumn) {
  // g = i % 7 over 700 rows: 7 values of degree 100 each.
  auto t = MakeTable(700);
  DegreeNorms norms = ComputeDegreeNorms(*t, 1);
  ASSERT_TRUE(norms.valid);
  EXPECT_DOUBLE_EQ(norms.l1, 700.0);
  EXPECT_DOUBLE_EQ(norms.l2, std::sqrt(7.0 * 100.0 * 100.0));
  EXPECT_DOUBLE_EQ(norms.linf, 100.0);
  EXPECT_DOUBLE_EQ(norms.distinct, 7.0);
}

TEST(DegreeNormsTest, UniqueColumnHasUnitMaxDegree) {
  auto t = MakeTable(700);
  DegreeNorms norms = ComputeDegreeNorms(*t, 0);
  ASSERT_TRUE(norms.valid);
  EXPECT_DOUBLE_EQ(norms.linf, 1.0);
  EXPECT_DOUBLE_EQ(norms.l2, std::sqrt(700.0));
  EXPECT_DOUBLE_EQ(norms.distinct, 700.0);
}

TEST(DegreeNormsTest, EmptyTableIsValidAllZero) {
  Table t("e", Schema({{"k", DataType::kInt64}}));
  DegreeNorms norms = ComputeDegreeNorms(t, 0);
  ASSERT_TRUE(norms.valid);
  EXPECT_DOUBLE_EQ(norms.l1, 0.0);
  EXPECT_DOUBLE_EQ(norms.l2, 0.0);
  EXPECT_DOUBLE_EQ(norms.linf, 0.0);
}

TEST(DegreeNormsTest, StatisticsBuildExactEvenWhenSampled) {
  // Histograms degrade under sampling; the ℓp norms must not — they are the
  // soundness-critical input to the LpBound engine.
  auto t = MakeTable(2000);
  TableStatistics stats(*t, 32, /*sample_rate=*/0.05, 11);
  const DegreeNorms& g = stats.degree_norms(1);
  ASSERT_TRUE(g.valid);
  EXPECT_DOUBLE_EQ(g.linf, std::ceil(2000.0 / 7.0));
  EXPECT_DOUBLE_EQ(g.l1, 2000.0);
}

TEST(CatalogTest, TableLifecycle) {
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(MakeTable(100)));
  EXPECT_NE(catalog.GetTable("t"), nullptr);
  EXPECT_EQ(catalog.GetTable("nope"), nullptr);
  EXPECT_FALSE(catalog.AddTable(MakeTable(5)).ok());  // duplicate name
  EXPECT_FALSE(catalog.BuildColumnstore("nope").ok());
  ASSERT_OK(catalog.BuildColumnstore("t"));
  EXPECT_NE(catalog.GetColumnstore("t"), nullptr);
  ASSERT_OK(catalog.BuildAllStatistics(StatisticsOptions{}));
  EXPECT_NE(catalog.GetStatistics("t"), nullptr);
}

}  // namespace
}  // namespace testing
}  // namespace lqs
