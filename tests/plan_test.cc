#include "gtest/gtest.h"

#include "optimizer/annotate.h"
#include "tests/test_util.h"
#include "workload/plan_builder.h"

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeTestCatalog(); }
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(PlanTest, AssignsDensePreorderIds) {
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog_);
  EXPECT_EQ(plan.size(), 3);
  EXPECT_EQ(plan.root->id, 0);
  EXPECT_EQ(plan.root->child(0)->id, 1);
  EXPECT_EQ(plan.root->child(1)->id, 2);
  for (int i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan.node(i).id, i);
  }
}

TEST_F(PlanTest, SchemaDerivationJoin) {
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog_);
  EXPECT_EQ(plan.root->output_schema.num_columns(), 7u);
  EXPECT_EQ(plan.root->output_schema.column(0).name, "a");
  EXPECT_EQ(plan.root->output_schema.column(3).name, "k");
}

TEST_F(PlanTest, SchemaDerivationSemiJoinKeepsOuterOnly) {
  Plan semi = MustFinalize(
      HashJoin(JoinKind::kLeftSemi, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog_);
  EXPECT_EQ(semi.root->output_schema.num_columns(), 3u);
  Plan rsemi = MustFinalize(
      HashJoin(JoinKind::kRightSemi, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog_);
  EXPECT_EQ(rsemi.root->output_schema.num_columns(), 4u);
}

TEST_F(PlanTest, SchemaDerivationAggregate) {
  Plan plan = MustFinalize(
      HashAgg(Scan("t_big"), {2}, {Count(), Sum(0), Min(3)}), *catalog_);
  const Schema& s = plan.root->output_schema;
  ASSERT_EQ(s.num_columns(), 4u);
  EXPECT_EQ(s.column(0).name, "v");
  EXPECT_EQ(s.column(1).type, DataType::kInt64);   // count
  EXPECT_EQ(s.column(2).type, DataType::kDouble);  // sum
  EXPECT_EQ(s.column(3).type, DataType::kDouble);  // min of w (double)
}

TEST_F(PlanTest, SchemaDerivationIndexSeek) {
  Plan plan = MustFinalize(IdxSeek("t_small", "ix_b", Lit(1)), *catalog_);
  ASSERT_EQ(plan.root->output_schema.num_columns(), 2u);
  EXPECT_EQ(plan.root->output_schema.column(0).name, "b");
  EXPECT_EQ(plan.root->output_schema.column(1).name, "rid");
}

TEST_F(PlanTest, UnknownTableRejected) {
  auto plan_or = FinalizePlan(Scan("missing"), *catalog_);
  EXPECT_FALSE(plan_or.ok());
  EXPECT_EQ(plan_or.status().code(), Status::Code::kNotFound);
}

TEST_F(PlanTest, UnknownIndexRejected) {
  auto plan_or = FinalizePlan(IdxSeek("t_small", "missing", Lit(1)),
                              *catalog_);
  EXPECT_FALSE(plan_or.ok());
}

TEST_F(PlanTest, ValidationCatchesBadFilterColumn) {
  auto plan_or = FinalizePlan(
      Filter(Scan("t_small"), ColCmp(17, CompareOp::kEq, 1)), *catalog_);
  EXPECT_FALSE(plan_or.ok());
  EXPECT_EQ(plan_or.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(PlanTest, ValidationCatchesBadJoinKey) {
  auto plan_or = FinalizePlan(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {9}, {1}),
      *catalog_);
  EXPECT_FALSE(plan_or.ok());
}

TEST_F(PlanTest, ValidationCatchesBadResidual) {
  // Residual references column 8 of a 7-wide combined row.
  auto plan_or = FinalizePlan(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1},
               ColCmp(8, CompareOp::kEq, 0)),
      *catalog_);
  EXPECT_FALSE(plan_or.ok());
}

TEST_F(PlanTest, ValidationCatchesBadGroupAndSortColumns) {
  EXPECT_FALSE(
      FinalizePlan(HashAgg(Scan("t_small"), {5}, {Count()}), *catalog_).ok());
  EXPECT_FALSE(FinalizePlan(Sort(Scan("t_small"), {4}), *catalog_).ok());
  EXPECT_FALSE(FinalizePlan(HashAgg(Scan("t_small"), {0}, {Sum(9)}),
                            *catalog_)
                   .ok());
}

TEST_F(PlanTest, CloneIsDeepAndIdentical) {
  Plan plan = MustFinalize(
      Sort(HashJoin(JoinKind::kInner,
                    Filter(Scan("t_small"), ColCmp(1, CompareOp::kLe, 4)),
                    Scan("t_big"), {0}, {1}),
           {2}),
      *catalog_);
  ASSERT_OK(AnnotatePlan(&plan, *catalog_, OptimizerOptions{}));
  Plan copy = plan.Clone();
  EXPECT_EQ(copy.size(), plan.size());
  for (int i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(copy.node(i).type, plan.node(i).type);
    EXPECT_DOUBLE_EQ(copy.node(i).est_rows, plan.node(i).est_rows);
    EXPECT_NE(&copy.node(i), &plan.node(i));  // deep, not aliased
  }
  // The clone executes identically.
  auto a = MustExecuteRows(plan, catalog_.get());
  auto b = MustExecuteRows(copy, catalog_.get());
  EXPECT_EQ(a.size(), b.size());
}

TEST_F(PlanTest, PlanToStringShowsStructure) {
  Plan plan = MustFinalize(
      Filter(Scan("t_small", ColCmp(1, CompareOp::kEq, 3)),
             ColCmp(2, CompareOp::kEq, 0)),
      *catalog_);
  std::string s = PlanToString(plan);
  EXPECT_NE(s.find("Filter"), std::string::npos);
  EXPECT_NE(s.find("Table Scan"), std::string::npos);
  EXPECT_NE(s.find("t_small"), std::string::npos);
  EXPECT_NE(s.find("push="), std::string::npos);
}

TEST_F(PlanTest, VisitCountsNodes) {
  Plan plan = MustFinalize(
      HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                       {1}),
              {2}, {Count()}),
      *catalog_);
  EXPECT_EQ(plan.root->CountNodes(), 4);
  int visited = 0;
  plan.root->Visit([&](const PlanNode&) { visited++; });
  EXPECT_EQ(visited, 4);
}

// ---------------------------------------------------------------------------
// Optimizer annotation
// ---------------------------------------------------------------------------

TEST_F(PlanTest, AnnotateFullScanIsExact) {
  Plan plan = MustFinalize(Scan("t_big"), *catalog_);
  ASSERT_OK(AnnotatePlan(&plan, *catalog_, OptimizerOptions{}));
  EXPECT_DOUBLE_EQ(plan.root->est_rows, 5000.0);
  EXPECT_GT(plan.root->est_io_ms, 0.0);
}

TEST_F(PlanTest, AnnotateFilterUsesHistogram) {
  // v < 50 keeps half the rows (v = k % 100 uniform).
  Plan plan = MustFinalize(
      Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 50)), *catalog_);
  ASSERT_OK(AnnotatePlan(&plan, *catalog_, OptimizerOptions{}));
  EXPECT_NEAR(plan.root->est_rows, 2500, 400);
}

TEST_F(PlanTest, AnnotateJoinUsesContainment) {
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog_);
  ASSERT_OK(AnnotatePlan(&plan, *catalog_, OptimizerOptions{}));
  // 200 x 5000 / max(ndv a=200, ndv fk=200) = 5000. True is 5000 too.
  EXPECT_NEAR(plan.root->est_rows, 5000, 1200);
}

TEST_F(PlanTest, AnnotateGroupByUsesNdv) {
  Plan plan = MustFinalize(HashAgg(Scan("t_big"), {2}, {Count()}),
                           *catalog_);
  ASSERT_OK(AnnotatePlan(&plan, *catalog_, OptimizerOptions{}));
  EXPECT_NEAR(plan.root->est_rows, 100, 30);  // ndv(v) = 100
}

TEST_F(PlanTest, AnnotateNljScalesInnerSubtreeToTotals) {
  Plan plan = MustFinalize(
      Nlj(JoinKind::kInner, Scan("t_small"),
          CiSeek("t_big", OuterCol(0), OuterCol(0))),
      *catalog_);
  ASSERT_OK(AnnotatePlan(&plan, *catalog_, OptimizerOptions{}));
  const PlanNode& seek = plan.node(2);
  // ~200 executions x ~1 row per seek (unique key) => total ~200.
  EXPECT_NEAR(seek.est_rebinds, 200, 20);
  EXPECT_NEAR(seek.est_rows, 200, 100);
}

TEST_F(PlanTest, AnnotateErrorAmplificationIsDeterministic) {
  OptimizerOptions amp;
  amp.selectivity_error = 2.0;
  amp.seed = 5;
  auto build = [&] {
    Plan plan = MustFinalize(
        Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 50)), *catalog_);
    EXPECT_OK(AnnotatePlan(&plan, *catalog_, amp));
    return plan.root->est_rows;
  };
  double a = build();
  double b = build();
  EXPECT_DOUBLE_EQ(a, b);
  // A different seed shifts the estimate.
  amp.seed = 6;
  EXPECT_NE(build(), a);
}

TEST_F(PlanTest, AnnotateSemiAntiComplement) {
  Plan semi = MustFinalize(
      HashJoin(JoinKind::kLeftSemi, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog_);
  Plan anti = MustFinalize(
      HashJoin(JoinKind::kLeftAnti, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog_);
  ASSERT_OK(AnnotatePlan(&semi, *catalog_, OptimizerOptions{}));
  ASSERT_OK(AnnotatePlan(&anti, *catalog_, OptimizerOptions{}));
  // semi + anti estimates partition the outer side.
  EXPECT_NEAR(semi.root->est_rows + anti.root->est_rows, 200, 1);
}

}  // namespace
}  // namespace testing
}  // namespace lqs
