#include <cstdio>
#include <fstream>
#include <sstream>

#include "gtest/gtest.h"

#include "lqs/estimator.h"
#include "lqs/feedback.h"
#include "lqs/metrics.h"
#include "lqs/trace_csv.h"
#include "optimizer/annotate.h"
#include "tests/test_util.h"
#include "workload/plan_builder.h"

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeTestCatalog(); }

  Plan Annotated(std::unique_ptr<PlanNode> root, OptimizerOptions opt = {}) {
    Plan plan = MustFinalize(std::move(root), *catalog_);
    EXPECT_OK(AnnotatePlan(&plan, *catalog_, opt));
    return plan;
  }

  ExecutionResult Run(const Plan& plan, double interval = 2.0) {
    ExecOptions exec;
    exec.snapshot_interval_ms = interval;
    return MustExecute(plan, catalog_.get(), exec);
  }

  std::unique_ptr<Catalog> catalog_;
};

// ---------------------------------------------------------------------------
// §7(a): refined-cardinality propagation across pipeline boundaries
// ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, PropagationScalesUnstartedParents) {
  // Filter badly over-estimated (planted), feeding a blocking aggregate in
  // a later pipeline. Without propagation, the aggregate's input-size view
  // stays at the inflated showplan estimate until its pipeline starts; with
  // propagation, the filter's refinement carries upward immediately.
  Plan plan = Annotated(
      Sort(HashAgg(Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 10)), {1},
                   {Count()}),
           {1}));
  // Plant a 20x over-estimate on the filter and everything above it.
  plan.root->VisitMutable([](PlanNode& n) {
    if (n.type == OpType::kFilter) n.est_rows = 10000;  // true: 500
  });

  auto result = Run(plan);
  // Mid-scan snapshot: filter refining, aggregate not yet emitting.
  const ProfileSnapshot* mid = nullptr;
  for (const auto& snap : result.trace.snapshots) {
    if (snap.operators[2].row_count > 200 && snap.operators[1].row_count == 0) {
      mid = &snap;
    }
  }
  ASSERT_NE(mid, nullptr);

  EstimatorOptions off = EstimatorOptions::DriverNodeRefined();
  off.bound_cardinality = false;
  EstimatorOptions on = off;
  on.propagate_refinement = true;
  ProgressEstimator est_off(&plan, catalog_.get(), off);
  ProgressEstimator est_on(&plan, catalog_.get(), on);
  double filter_refined = est_on.Estimate(*mid).refined_rows[2];
  double agg_off = est_off.Estimate(*mid).refined_rows[1];
  double agg_on = est_on.Estimate(*mid).refined_rows[1];
  // The filter's refinement (~500) must pull the aggregate estimate down
  // when propagation is on; without it the aggregate keeps its scaled
  // showplan estimate derived from 10000 input rows.
  EXPECT_LT(filter_refined, 2000);
  EXPECT_LE(agg_on, agg_off);
}

TEST_F(ExtensionsTest, PropagationOffMatchesPaperDefault) {
  EXPECT_FALSE(EstimatorOptions::Lqs().propagate_refinement);
  EXPECT_FALSE(EstimatorOptions::DriverNodeRefined().propagate_refinement);
}

// ---------------------------------------------------------------------------
// §7(b): cost feedback
// ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, FeedbackMultipliersNearOneOnCalibratedEngine) {
  // Our optimizer and executor share cost constants, so observed/predicted
  // ratios should be close to 1 for high-volume operators.
  CostFeedback feedback;
  for (int i = 0; i < 10; ++i) {
    Plan plan = Annotated(
        HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"),
                         {0}, {1}),
                {2}, {Count()}));
    auto result = Run(plan, 50.0);
    feedback.Observe(plan, result.trace);
  }
  EXPECT_EQ(feedback.observations(), 10);
  EXPECT_NEAR(feedback.Multiplier(OpType::kTableScan), 1.0, 0.5);
  EXPECT_NEAR(feedback.Multiplier(OpType::kHashJoin), 1.0, 0.6);
  // Unobserved types stay exactly 1.
  EXPECT_DOUBLE_EQ(feedback.Multiplier(OpType::kMergeJoin), 1.0);
}

TEST_F(ExtensionsTest, FeedbackPlugsIntoEstimator) {
  Plan plan = Annotated(
      Sort(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                    {1}),
           {2}));
  auto result = Run(plan);
  CostFeedback feedback;
  feedback.Observe(plan, result.trace);
  ProgressEstimator est(&plan, catalog_.get(), EstimatorOptions::Lqs());
  est.SetCostFeedback(&feedback);
  // Estimation still well-formed with feedback applied.
  for (const auto& snap : result.trace.snapshots) {
    ProgressReport r = est.Estimate(snap);
    EXPECT_GE(r.query_progress, 0.0);
    EXPECT_LE(r.query_progress, 1.0);
  }
}

TEST_F(ExtensionsTest, FeedbackSmoothingLimitsEarlyInfluence) {
  CostFeedback feedback;
  Plan plan = Annotated(Scan("t_big"));
  auto result = Run(plan, 100.0);
  // Corrupt the plan's cost estimate 100x to simulate gross model error.
  plan.root->VisitMutable([](PlanNode& n) { n.est_cpu_ms /= 100; });
  feedback.Observe(plan, result.trace);
  // One observation: blend = 1/8, so the multiplier moves only partway and
  // stays clamped.
  double m = feedback.Multiplier(OpType::kTableScan);
  EXPECT_GT(m, 1.0);
  EXPECT_LE(m, 10.0);
}

// ---------------------------------------------------------------------------
// CSV export
// ---------------------------------------------------------------------------

TEST_F(ExtensionsTest, TraceCsvRoundTrips) {
  Plan plan = Annotated(Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 10)));
  auto result = Run(plan);
  const std::string path = ::testing::TempDir() + "/trace.csv";
  ASSERT_OK(WriteTraceCsv(plan, result.trace, path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("time_ms,node_id,operator,row_count"),
            std::string::npos);
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) lines++;
  // (snapshots + final) x 2 operators.
  EXPECT_EQ(lines, static_cast<int>((result.trace.snapshots.size() + 1) * 2));
}

TEST_F(ExtensionsTest, ProgressCsvHasPerOperatorColumns) {
  Plan plan = Annotated(Sort(Scan("t_big"), {2}));
  auto result = Run(plan);
  const std::string path = ::testing::TempDir() + "/progress.csv";
  ASSERT_OK(WriteProgressCsv(plan, *catalog_, result.trace,
                             EstimatorOptions::Lqs(), path));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("op_0"), std::string::npos);
  EXPECT_NE(header.find("op_1"), std::string::npos);
  int lines = 0;
  std::string line;
  double last_estimate = -1;
  while (std::getline(in, line)) {
    lines++;
    // estimated column is 3rd field.
    std::stringstream ss(line);
    std::string field;
    for (int i = 0; i < 3; ++i) std::getline(ss, field, ',');
    last_estimate = std::stod(field);
  }
  EXPECT_EQ(lines, static_cast<int>(result.trace.snapshots.size()));
  EXPECT_GT(last_estimate, 0.5);
}

TEST_F(ExtensionsTest, CsvRejectsBadPath) {
  Plan plan = Annotated(Scan("t_small"));
  auto result = Run(plan);
  EXPECT_FALSE(
      WriteTraceCsv(plan, result.trace, "/nonexistent_dir/x.csv").ok());
}

}  // namespace
}  // namespace testing
}  // namespace lqs
