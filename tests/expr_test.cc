#include "gtest/gtest.h"

#include "exec/expr.h"
#include "workload/plan_builder.h"

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT

Row MakeRow() { return Row{Value(int64_t{10}), Value(2.5), Value(int64_t{0})}; }

TEST(ExprTest, ColumnAndLiteral) {
  Row row = MakeRow();
  EXPECT_EQ(Col(0)->Eval(row, nullptr).AsInt(), 10);
  EXPECT_DOUBLE_EQ(Col(1)->Eval(row, nullptr).AsDouble(), 2.5);
  EXPECT_EQ(Lit(7)->Eval(row, nullptr).AsInt(), 7);
}

TEST(ExprTest, OuterColumnBinding) {
  Row row = MakeRow();
  Row outer{Value(int64_t{99})};
  EXPECT_EQ(OuterCol(0)->Eval(row, &outer).AsInt(), 99);
}

TEST(ExprTest, ComparisonsYieldBool) {
  Row row = MakeRow();
  EXPECT_TRUE(ColCmp(0, CompareOp::kEq, 10)->EvalBool(row, nullptr));
  EXPECT_FALSE(ColCmp(0, CompareOp::kNe, 10)->EvalBool(row, nullptr));
  EXPECT_TRUE(ColCmp(0, CompareOp::kGe, 10)->EvalBool(row, nullptr));
  EXPECT_TRUE(ColCmp(0, CompareOp::kLt, 11)->EvalBool(row, nullptr));
  EXPECT_TRUE(Cmp(CompareOp::kGt, Col(1), Lit(2))->EvalBool(row, nullptr));
}

TEST(ExprTest, BooleanShortCircuit) {
  Row row = MakeRow();
  // AND with false left never evaluates right (right would be out of range).
  auto e = And(ColCmp(0, CompareOp::kEq, -1), ColCmp(0, CompareOp::kEq, 10));
  EXPECT_FALSE(e->EvalBool(row, nullptr));
  auto o = Or(ColCmp(0, CompareOp::kEq, 10), ColCmp(0, CompareOp::kEq, -1));
  EXPECT_TRUE(o->EvalBool(row, nullptr));
}

TEST(ExprTest, ArithmeticIntAndDouble) {
  Row row = MakeRow();
  EXPECT_EQ(Expr::Arith(ArithOp::kAdd, Col(0), Lit(5))
                ->Eval(row, nullptr)
                .AsInt(),
            15);
  EXPECT_EQ(Expr::Arith(ArithOp::kMul, Col(0), Lit(3))
                ->Eval(row, nullptr)
                .AsInt(),
            30);
  EXPECT_EQ(Expr::Arith(ArithOp::kMod, Col(0), Lit(3))
                ->Eval(row, nullptr)
                .AsInt(),
            1);
  EXPECT_DOUBLE_EQ(Expr::Arith(ArithOp::kSub, Col(1), LitD(0.5))
                       ->Eval(row, nullptr)
                       .AsDouble(),
                   2.0);
  // Division always yields double; division by zero yields 0 (no crash).
  EXPECT_DOUBLE_EQ(Expr::Arith(ArithOp::kDiv, Col(0), Lit(4))
                       ->Eval(row, nullptr)
                       .AsDouble(),
                   2.5);
  EXPECT_DOUBLE_EQ(Expr::Arith(ArithOp::kDiv, Col(0), Lit(0))
                       ->Eval(row, nullptr)
                       .AsDouble(),
                   0.0);
  EXPECT_EQ(Expr::Arith(ArithOp::kMod, Col(0), Lit(0))
                ->Eval(row, nullptr)
                .AsInt(),
            0);
}

TEST(ExprTest, NodeCountAndClone) {
  auto e = And(ColCmp(0, CompareOp::kLt, 5),
               Or(ColCmp(1, CompareOp::kGe, 2), ColCmp(2, CompareOp::kEq, 0)));
  EXPECT_EQ(e->NodeCount(), 11);  // 2 per leaf-cmp (col+lit) * 3 + 3 cmps...
  auto clone = e->Clone();
  EXPECT_EQ(clone->NodeCount(), e->NodeCount());
  Row row = MakeRow();
  EXPECT_EQ(clone->EvalBool(row, nullptr), e->EvalBool(row, nullptr));
}

TEST(ExprTest, AsColumnCompareLiteralDirect) {
  auto e = ColCmp(2, CompareOp::kLe, 40);
  int col = -1;
  CompareOp op = CompareOp::kEq;
  Value lit;
  ASSERT_TRUE(e->AsColumnCompareLiteral(&col, &op, &lit));
  EXPECT_EQ(col, 2);
  EXPECT_EQ(op, CompareOp::kLe);
  EXPECT_EQ(lit.AsInt(), 40);
}

TEST(ExprTest, AsColumnCompareLiteralFlipped) {
  // 5 < col  ==  col > 5
  auto e = Cmp(CompareOp::kLt, Lit(5), Col(3));
  int col = -1;
  CompareOp op = CompareOp::kEq;
  Value lit;
  ASSERT_TRUE(e->AsColumnCompareLiteral(&col, &op, &lit));
  EXPECT_EQ(col, 3);
  EXPECT_EQ(op, CompareOp::kGt);
  EXPECT_EQ(lit.AsInt(), 5);
}

TEST(ExprTest, AsColumnCompareLiteralRejectsComplex) {
  int col;
  CompareOp op;
  Value lit;
  EXPECT_FALSE(And(ColCmp(0, CompareOp::kEq, 1), ColCmp(1, CompareOp::kEq, 2))
                   ->AsColumnCompareLiteral(&col, &op, &lit));
  EXPECT_FALSE(Cmp(CompareOp::kEq, Col(0), Col(1))
                   ->AsColumnCompareLiteral(&col, &op, &lit));
}

TEST(ExprTest, CollectConjuncts) {
  auto e = And(ColCmp(0, CompareOp::kEq, 1),
               And(ColCmp(1, CompareOp::kEq, 2), ColCmp(2, CompareOp::kEq, 3)));
  std::vector<const Expr*> conjuncts;
  e->CollectConjuncts(&conjuncts);
  EXPECT_EQ(conjuncts.size(), 3u);
  // OR is a single conjunct.
  auto o = Or(ColCmp(0, CompareOp::kEq, 1), ColCmp(1, CompareOp::kEq, 2));
  conjuncts.clear();
  o->CollectConjuncts(&conjuncts);
  EXPECT_EQ(conjuncts.size(), 1u);
}

TEST(ExprTest, ResultTypes) {
  Schema schema({{"i", DataType::kInt64}, {"d", DataType::kDouble}});
  EXPECT_EQ(Col(0)->ResultType(schema), DataType::kInt64);
  EXPECT_EQ(Col(1)->ResultType(schema), DataType::kDouble);
  EXPECT_EQ(ColCmp(0, CompareOp::kEq, 1)->ResultType(schema),
            DataType::kInt64);
  EXPECT_EQ(Expr::Arith(ArithOp::kAdd, Col(0), Lit(1))->ResultType(schema),
            DataType::kInt64);
  EXPECT_EQ(Expr::Arith(ArithOp::kAdd, Col(1), Lit(1))->ResultType(schema),
            DataType::kDouble);
  EXPECT_EQ(Expr::Arith(ArithOp::kDiv, Col(0), Lit(2))->ResultType(schema),
            DataType::kDouble);
}

TEST(ExprTest, ToStringRendersReadably) {
  Schema schema({{"price", DataType::kDouble}});
  auto e = Cmp(CompareOp::kLe, Col(0), LitD(9.5));
  EXPECT_EQ(e->ToString(&schema), "(price <= 9.5)");
  EXPECT_EQ(e->ToString(nullptr), "($0 <= 9.5)");
}

}  // namespace
}  // namespace testing
}  // namespace lqs
