// Behavior of the fleet-scale monitor layer (src/monitor/sharded_monitor.h,
// DESIGN.md §13):
//  - SessionRouter is deterministic, balanced at thousand-session scale, and
//    consistent: adding a shard moves only the keys the new shard captures;
//  - MonitorAggregator sums event counters, maxes percentiles, and
//    recomputes throughput from merged sums;
//  - with backpressure off, a ShardedMonitor reaches exactly the same
//    per-session conclusions as one MonitorService over the same sessions
//    (the determinism contract extends across the shard seam);
//  - with a deliberately impossible tick budget, shards degrade (divisors
//    climb, held views are served stale) but every session still completes
//    and per-session progress stays monotone — degradation never wedges;
//  - RunToCompletion's tick loop is indexed, not accumulated: a tick width
//    that is inexact in binary must still land the final tick exactly on
//    the horizon instead of drifting past it.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "monitor/monitor_aggregator.h"
#include "monitor/monitor_service.h"
#include "monitor/session_router.h"
#include "monitor/sharded_monitor.h"
#include "optimizer/annotate.h"
#include "remote/endpoint.h"
#include "tests/test_util.h"
#include "workload/plan_builder.h"

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT

std::string Key(int i) { return "session-" + std::to_string(i); }

TEST(SessionRouterTest, DeterministicAcrossInstances) {
  SessionRouter a(8, 64);
  SessionRouter b(8, 64);
  for (int i = 0; i < 1000; ++i) {
    const int shard = a.ShardFor(Key(i));
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 8);
    EXPECT_EQ(shard, b.ShardFor(Key(i))) << Key(i);
  }
}

TEST(SessionRouterTest, BalancesThousandsOfSessions) {
  constexpr int kShards = 8;
  constexpr int kKeys = 8192;
  SessionRouter router(kShards, 64);
  std::vector<int> counts(kShards, 0);
  for (int i = 0; i < kKeys; ++i) ++counts[router.ShardFor(Key(i))];
  const double mean = static_cast<double>(kKeys) / kShards;
  for (int shard = 0; shard < kShards; ++shard) {
    EXPECT_GT(counts[shard], 0) << "shard " << shard << " owns nothing";
    // 64 virtual nodes keep the ring smooth enough that no shard strays
    // past 2x/0.5x of the mean — the property that makes per-shard tick
    // budgets meaningful (one shard must not silently carry half the fleet).
    EXPECT_LT(counts[shard], 2.0 * mean) << "shard " << shard;
    EXPECT_GT(counts[shard], 0.5 * mean) << "shard " << shard;
  }
}

TEST(SessionRouterTest, AddingAShardOnlyMovesKeysToTheNewShard) {
  constexpr int kKeys = 8192;
  SessionRouter before(8, 64);
  SessionRouter after(9, 64);
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const int old_shard = before.ShardFor(Key(i));
    const int new_shard = after.ShardFor(Key(i));
    if (new_shard != old_shard) {
      ++moved;
      // Consistent hashing: shards 0..7 contribute identical ring points in
      // both routers, so a key can only change home by being captured by
      // shard 8's new points — never by shuffling between old shards.
      EXPECT_EQ(new_shard, 8) << Key(i) << " moved " << old_shard << " -> "
                              << new_shard;
    }
  }
  // Roughly 1/9 of keys should move; well under the ~8/9 a hash%N reshard
  // would move, and more than zero (the new shard really takes load).
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys / 4);
}

TEST(MonitorAggregatorTest, SumsCountersMaxesPercentiles) {
  MonitorStats a;
  a.sessions = 3;
  a.done = 3;
  a.ticks = 10;
  a.reports_computed = 30;
  a.p95_estimate_latency_ms = 0.5;
  a.p95_tick_latency_ms = 2.0;
  a.estimate_wall_ms = 6.0;
  a.wall_ms = 100.0;
  a.transport_bytes = 1000;
  a.deltas_applied = 7;
  MonitorStats b;
  b.sessions = 5;
  b.done = 5;
  b.ticks = 12;
  b.reports_computed = 60;
  b.p95_estimate_latency_ms = 0.25;
  b.p95_tick_latency_ms = 4.0;
  b.estimate_wall_ms = 3.0;
  b.wall_ms = 100.0;
  b.transport_bytes = 250;
  b.delta_resyncs = 2;

  MonitorStats merged = MonitorAggregator::Merge({a, b});
  EXPECT_EQ(merged.sessions, 8u);
  EXPECT_EQ(merged.done, 8u);
  // The fleet has ticked as often as its most-ticked shard.
  EXPECT_EQ(merged.ticks, 12u);
  EXPECT_EQ(merged.reports_computed, 90u);
  // Percentiles merge as the conservative bound, not an average.
  EXPECT_DOUBLE_EQ(merged.p95_estimate_latency_ms, 0.5);
  EXPECT_DOUBLE_EQ(merged.p95_tick_latency_ms, 4.0);
  EXPECT_EQ(merged.transport_bytes, 1250u);
  EXPECT_EQ(merged.deltas_applied, 7u);
  EXPECT_EQ(merged.delta_resyncs, 2u);
  // Throughput recomputes from merged sums: 90 reports / 200 ms wall.
  EXPECT_DOUBLE_EQ(merged.wall_ms, 200.0);
  EXPECT_DOUBLE_EQ(merged.reports_per_sec, 90.0 / 0.2);
  // Estimator-only throughput likewise: 90 reports / 9 ms estimating.
  EXPECT_DOUBLE_EQ(merged.estimates_per_sec, 90.0 / 0.009);
}

class ShardedMonitorTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeTestCatalog(); }

  Plan Annotated(std::unique_ptr<PlanNode> root) {
    Plan plan = MustFinalize(std::move(root), *catalog_);
    EXPECT_OK(AnnotatePlan(&plan, *catalog_, OptimizerOptions{}));
    return plan;
  }

  ExecutionResult Traced(const Plan& plan, double interval_ms = 2.0) {
    ExecOptions exec;
    exec.snapshot_interval_ms = interval_ms;
    return MustExecute(plan, catalog_.get(), exec);
  }

  std::unique_ptr<Catalog> catalog_;
};

TEST_F(ShardedMonitorTest, MatchesSingleMonitorConclusions) {
  std::vector<Plan> plans;
  plans.push_back(Annotated(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1})));
  plans.push_back(Annotated(HashAgg(Scan("t_big"), {2}, {Count()})));
  plans.push_back(Annotated(Sort(Scan("t_big"), {2})));
  std::vector<ExecutionResult> traces;
  for (const Plan& plan : plans) traces.push_back(Traced(plan));

  constexpr int kSessions = 18;
  MonitorOptions monitor_options;
  monitor_options.ticks_per_horizon = 16;

  auto register_all = [&](auto& monitor) {
    for (int i = 0; i < kSessions; ++i) {
      const int id = monitor.RegisterSession(
          Key(i), &plans[static_cast<size_t>(i) % plans.size()],
          catalog_.get(), &traces[static_cast<size_t>(i) % traces.size()].trace,
          /*start_offset_ms=*/(i % 5) * 7.0);
      EXPECT_EQ(id, i) << "global ids must be dense in registration order";
    }
  };
  auto collect = [&](auto& monitor) {
    std::vector<SessionStatus> last;
    monitor.RunToCompletion(
        [&](double, const std::vector<SessionStatus>& statuses) {
          last = statuses;
        });
    return last;
  };

  MonitorService single(monitor_options);
  register_all(single);

  ShardedMonitorOptions sharded_options;
  sharded_options.num_shards = 4;
  sharded_options.shard_options = monitor_options;
  ShardedMonitor sharded(sharded_options);
  register_all(sharded);
  EXPECT_EQ(sharded.num_shards(), 4);
  EXPECT_EQ(sharded.session_count(), static_cast<size_t>(kSessions));
  // The router spread the fleet: more than one shard is populated, and
  // ShardOf agrees with the router for every registered name.
  std::vector<int> per_shard(4, 0);
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(sharded.ShardOf(i), sharded.router().ShardFor(Key(i)));
    ++per_shard[static_cast<size_t>(sharded.ShardOf(i))];
  }
  EXPECT_GT(std::count_if(per_shard.begin(), per_shard.end(),
                          [](int n) { return n > 0; }),
            1);

  EXPECT_DOUBLE_EQ(sharded.HorizonMs(), single.HorizonMs());

  std::vector<SessionStatus> single_last = collect(single);
  std::vector<SessionStatus> sharded_last = collect(sharded);
  ASSERT_EQ(single_last.size(), sharded_last.size());
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(sharded_last[static_cast<size_t>(i)].session_id, i);
    EXPECT_EQ(sharded_last[static_cast<size_t>(i)].state,
              SessionState::kDone);
    // Same session, same timeline, same estimator: identical conclusion no
    // matter which shard computed it.
    EXPECT_DOUBLE_EQ(sharded_last[static_cast<size_t>(i)].progress,
                     single_last[static_cast<size_t>(i)].progress)
        << "session " << i;
  }
  EXPECT_TRUE(single.AllSessionsDone());
  EXPECT_TRUE(sharded.AllSessionsDone());
  EXPECT_TRUE(single.FinalCheck().ok());
  EXPECT_TRUE(sharded.FinalCheck().ok());

  // With backpressure off every shard ticks every time, so the fleet
  // computed exactly as many reports as the single service.
  MonitorStats single_stats = single.stats();
  MonitorStats fleet = sharded.stats();
  EXPECT_EQ(fleet.reports_computed, single_stats.reports_computed);
  EXPECT_EQ(fleet.sessions, single_stats.sessions);
  EXPECT_EQ(fleet.done, single_stats.done);
  EXPECT_EQ(fleet.ticks, single_stats.ticks);
}

TEST_F(ShardedMonitorTest, BackpressureDegradesWithoutWedging) {
  Plan plan = Annotated(HashAgg(Scan("t_big"), {2}, {Count()}));
  ExecutionResult result = Traced(plan);

  ShardedMonitorOptions options;
  options.num_shards = 2;
  options.shard_options.ticks_per_horizon = 32;
  // A budget no real tick can meet: every computed tick overruns, so the
  // divisors climb to the cap and most ticks serve held views.
  options.shard_tick_budget_ms = 1e-7;
  options.max_poll_divisor = 4;
  ShardedMonitor monitor(options);
  constexpr int kSessions = 8;
  for (int i = 0; i < kSessions; ++i) {
    monitor.RegisterSession(Key(i), &plan, catalog_.get(), &result.trace,
                            /*start_offset_ms=*/i * 3.0);
  }

  uint64_t stale_statuses = 0;
  int max_divisor_seen = 1;
  std::vector<double> last_progress(kSessions, 0);
  monitor.RunToCompletion(
      [&](double now_ms, const std::vector<SessionStatus>& statuses) {
        for (int shard = 0; shard < monitor.num_shards(); ++shard) {
          max_divisor_seen =
              std::max(max_divisor_seen, monitor.poll_divisor(shard));
        }
        for (const SessionStatus& status : statuses) {
          if (status.stale) ++stale_statuses;
          // Held views repeat an earlier value; they never move backwards.
          EXPECT_GE(status.progress,
                    last_progress[static_cast<size_t>(status.session_id)])
              << "session " << status.session_id << " regressed at t="
              << now_ms;
          last_progress[static_cast<size_t>(status.session_id)] =
              status.progress;
        }
      });

  // Admission control really engaged...
  EXPECT_GT(max_divisor_seen, 1) << "impossible budget never tripped";
  EXPECT_GT(stale_statuses, 0u);
  // ...and degraded means degraded, not wedged: the at-horizon exemption
  // let every shard deliver its final reports.
  EXPECT_TRUE(monitor.AllSessionsDone());
  for (double progress : last_progress) EXPECT_DOUBLE_EQ(progress, 1.0);
  EXPECT_TRUE(monitor.FinalCheck().ok());
}

TEST_F(ShardedMonitorTest, RemoteSessionsRouteAndAggregateTransportStats) {
  Plan plan = Annotated(Sort(Scan("t_big"), {2}));
  ExecutionResult result = Traced(plan, /*interval_ms=*/4.0);

  ShardedMonitorOptions options;
  options.num_shards = 3;
  options.shard_options.ticks_per_horizon = 24;
  ShardedMonitor monitor(options);
  constexpr int kSessions = 9;
  for (int i = 0; i < kSessions; ++i) {
    LoopbackOptions loopback;
    loopback.serve_deltas = (i % 2 == 0);  // mix delta and full transports
    monitor.RegisterRemoteSession(
        Key(i), &plan, catalog_.get(),
        std::make_unique<LoopbackEndpoint>(&result.trace, loopback),
        /*start_offset_ms=*/i * 2.0);
  }
  monitor.RunToCompletion(nullptr);
  EXPECT_TRUE(monitor.AllSessionsDone());

  MonitorStats fleet = monitor.stats();
  EXPECT_EQ(fleet.remote_sessions, static_cast<size_t>(kSessions));
  EXPECT_EQ(fleet.done, static_cast<size_t>(kSessions));
  EXPECT_GT(fleet.transport_polls, 0u);
  EXPECT_GT(fleet.transport_bytes, 0u);
  EXPECT_GT(fleet.snapshots_accepted, 0u);
  // The delta-serving half of the fleet actually exercised the delta path,
  // and the per-session accessor reaches through the global id to the right
  // shard-local client.
  EXPECT_GT(fleet.deltas_applied, 0u);
  uint64_t bytes_across_sessions = 0;
  for (int i = 0; i < kSessions; ++i) {
    bytes_across_sessions += monitor.session_client_stats(i).bytes_received;
  }
  EXPECT_EQ(bytes_across_sessions, fleet.transport_bytes);
}

// Regression test for the accumulated-tick drift bug. With tick_ms = 6.7 —
// inexact in binary — 3000 repeated additions accumulate to
// 20100.000000001135, which is past horizon + 1e-9, so the drifting loop
// skipped the final on-horizon tick and then issued an overtime tick
// *beyond* the horizon. The indexed loop computes t = i * tick with one
// rounding per tick: 3000 * 6.7 is exactly 20100.0.
TEST_F(ShardedMonitorTest, IndexedTickLoopHitsExactHorizon) {
  Plan plan = Annotated(Sort(Scan("t_small"), {0}));
  ExecutionResult result = Traced(plan);
  // Stretch the virtual timeline so the horizon is exactly 3000 ticks of
  // 6.7 ms. Counters are untouched; the session simply idles on its last
  // snapshot until the (much later) final one.
  result.trace.total_elapsed_ms = 20100.0;
  result.trace.final_snapshot.time_ms = 20100.0;
  const double horizon = 20100.0;

  MonitorOptions tick_options;
  tick_options.tick_ms = 6.7;
  tick_options.num_threads = 1;

  {
    MonitorService monitor(tick_options);
    monitor.RegisterSession("drift", &plan, catalog_.get(), &result.trace,
                            /*start_offset_ms=*/0);
    ASSERT_DOUBLE_EQ(monitor.HorizonMs(), horizon);
    std::vector<double> times;
    monitor.RunToCompletion(
        [&](double now_ms, const std::vector<SessionStatus>&) {
          times.push_back(now_ms);
        });
    ASSERT_EQ(times.size(), 3000u) << "final on-horizon tick was skipped";
    EXPECT_DOUBLE_EQ(times.back(), horizon);
    for (double t : times) {
      ASSERT_LE(t, horizon + 1e-9) << "tick drifted past the horizon";
    }
    EXPECT_TRUE(monitor.AllSessionsDone())
        << "session left for overtime ticks the horizon pass should cover";
  }

  {
    ShardedMonitorOptions options;
    options.num_shards = 2;
    options.shard_options = tick_options;
    ShardedMonitor monitor(options);
    monitor.RegisterSession("drift", &plan, catalog_.get(), &result.trace,
                            /*start_offset_ms=*/0);
    std::vector<double> times;
    monitor.RunToCompletion(
        [&](double now_ms, const std::vector<SessionStatus>&) {
          times.push_back(now_ms);
        });
    ASSERT_EQ(times.size(), 3000u);
    EXPECT_DOUBLE_EQ(times.back(), horizon);
    for (double t : times) ASSERT_LE(t, horizon + 1e-9);
    EXPECT_TRUE(monitor.AllSessionsDone());
  }
}

}  // namespace
}  // namespace testing
}  // namespace lqs
