#include "tests/test_util.h"

namespace lqs {
namespace testing {

std::unique_ptr<Catalog> MakeTestCatalog() {
  auto catalog = std::make_unique<Catalog>();

  auto small = std::make_unique<Table>(
      "t_small", Schema({{"a", DataType::kInt64},
                         {"b", DataType::kInt64},
                         {"c", DataType::kInt64}}));
  for (int64_t i = 0; i < 200; ++i) {
    small->AppendRow(Row{Value(i), Value(i % 10), Value(i % 3)});
  }
  EXPECT_TRUE(small->ClusterBy(0).ok());
  EXPECT_TRUE(small->BuildIndex("ix_b", 1).ok());
  EXPECT_TRUE(catalog->AddTable(std::move(small)).ok());

  auto big = std::make_unique<Table>(
      "t_big", Schema({{"k", DataType::kInt64},
                       {"fk", DataType::kInt64},
                       {"v", DataType::kInt64},
                       {"w", DataType::kDouble}}));
  for (int64_t i = 0; i < 5000; ++i) {
    big->AppendRow(Row{Value(i), Value(i % 200), Value(i % 100),
                       Value(static_cast<double>(i) * 0.5)});
  }
  EXPECT_TRUE(big->ClusterBy(0).ok());
  EXPECT_TRUE(big->BuildIndex("ix_fk", 1).ok());
  EXPECT_TRUE(catalog->AddTable(std::move(big)).ok());
  EXPECT_TRUE(catalog->BuildColumnstore("t_big").ok());

  StatisticsOptions stats;
  EXPECT_TRUE(catalog->BuildAllStatistics(stats).ok());
  return catalog;
}

Plan MustFinalize(std::unique_ptr<PlanNode> root, const Catalog& catalog) {
  auto plan_or = FinalizePlan(std::move(root), catalog);
  EXPECT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  return std::move(plan_or).value();
}

ExecutionResult MustExecute(const Plan& plan, Catalog* catalog,
                            ExecOptions options) {
  auto result = ExecuteQuery(plan, catalog, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::vector<Row> MustExecuteRows(const Plan& plan, Catalog* catalog,
                                 ExecOptions options) {
  std::vector<Row> rows;
  auto result = ExecuteQueryWithSink(
      plan, catalog, options, [&rows](const Row& r) { rows.push_back(r); });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return rows;
}

}  // namespace testing
}  // namespace lqs
