// End-to-end correctness net for the estimator: every TPC-H and TPC-DS
// workload plan is statically validated (PlanValidator) and then replayed
// snapshot-by-snapshot through the ProgressInvariantChecker — with the deep
// Appendix A bounds cross-checks enabled — under all four EstimatorOptions
// presets. Any structural defect in plan finalization or pipeline
// decomposition, and any runtime violation of the paper's progress
// invariants (range, monotonicity, bounds consistency, end-of-stream
// completion) fails here with the (workload, query, config) named.

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "analysis/invariant_checker.h"
#include "analysis/validator.h"
#include "lqs/estimator.h"
#include "tests/test_util.h"
#include "workload/plan_builder.h"
#include "workload/workload.h"

namespace lqs {
namespace testing {
namespace {

struct Preset {
  const char* name;
  EstimatorOptions options;
};

std::vector<Preset> AllPresets() {
  return {{"tgn", EstimatorOptions::TotalGetNext()},
          {"bounding_only", EstimatorOptions::BoundingOnly()},
          {"refined", EstimatorOptions::DriverNodeRefined()},
          {"lqs", EstimatorOptions::Lqs()}};
}

/// Both benchmark workloads, executed once and shared by all tests.
class InvariantsTest : public ::testing::Test {
 protected:
  struct ExecutedWorkload {
    Workload workload;
    std::vector<ExecutionResult> runs;  // parallel to workload.queries
  };

  static std::vector<ExecutedWorkload>& GetWorkloads() {
    static std::vector<ExecutedWorkload>* shared = [] {
      auto* all = new std::vector<ExecutedWorkload>();
      OptimizerOptions oo;
      oo.selectivity_error = 1.5;  // realistic misestimation
      ExecOptions exec;
      exec.snapshot_interval_ms = 5.0;

      TpchOptions tpch;
      tpch.scale = 0.1;
      auto h = MakeTpchWorkload(tpch);
      EXPECT_TRUE(h.ok());
      TpcdsOptions tpcds;
      tpcds.scale = 0.1;
      auto ds = MakeTpcdsWorkload(tpcds);
      EXPECT_TRUE(ds.ok());

      for (auto* w : {&h.value(), &ds.value()}) {
        EXPECT_TRUE(AnnotateWorkload(w, oo).ok());
        ExecutedWorkload ew;
        ew.workload = std::move(*w);
        for (auto& q : ew.workload.queries) {
          auto run = ExecuteQuery(q.plan, ew.workload.catalog.get(), exec);
          EXPECT_TRUE(run.ok()) << ew.workload.name << "/" << q.name;
          ew.runs.push_back(std::move(run).value());
        }
        all->push_back(std::move(ew));
      }
      return all;
    }();
    return *shared;
  }
};

TEST_F(InvariantsTest, EveryWorkloadPlanPassesStaticValidation) {
  for (const ExecutedWorkload& ew : GetWorkloads()) {
    PlanValidator validator(ew.workload.catalog.get());
    for (const WorkloadQuery& q : ew.workload.queries) {
      PlanAnalysis analysis = AnalyzePlan(q.plan);
      ValidationReport report = validator.Validate(q.plan, analysis);
      EXPECT_TRUE(report.ok()) << ew.workload.name << "/" << q.name << "\n"
                               << report.ToString();
    }
  }
}

TEST_F(InvariantsTest, ReplayUnderAllPresetsIsViolationFree) {
  for (const ExecutedWorkload& ew : GetWorkloads()) {
    for (size_t qi = 0; qi < ew.workload.queries.size(); ++qi) {
      const WorkloadQuery& q = ew.workload.queries[qi];
      for (const Preset& preset : AllPresets()) {
        ProgressEstimator estimator(&q.plan, ew.workload.catalog.get(),
                                    preset.options);
        InvariantCheckerOptions copts;
        copts.deep_bounds_check = true;
        ProgressInvariantChecker checker(&estimator, copts);
        for (const auto& snap : ew.runs[qi].trace.snapshots) {
          checker.EstimateChecked(snap);
        }
        checker.CheckFinal(ew.runs[qi].trace.final_snapshot,
                           /*min_final_progress=*/0.3);
        ASSERT_TRUE(checker.report().ok())
            << ew.workload.name << "/" << q.name << " under " << preset.name
            << "\n"
            << checker.report().ToString();
      }
    }
  }
}

TEST_F(InvariantsTest, CheckerStatusConversionCarriesIssues) {
  ValidationReport report;
  EXPECT_TRUE(report.ToStatus().ok());
  report.Add("test.check", 3, 1, "synthetic violation");
  Status st = report.ToStatus();
  EXPECT_EQ(st.code(), Status::Code::kInternal);
  EXPECT_NE(st.message().find("test.check"), std::string::npos);
  EXPECT_NE(st.message().find("node 3"), std::string::npos);
}

// ---- Validator negative coverage: corrupted inputs must be caught ----

class ValidatorNegativeTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeTestCatalog(); }
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(ValidatorNegativeTest, DetectsCorruptedNodeIds) {
  using namespace pb;  // NOLINT
  Plan plan = MustFinalize(
      Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 10)), *catalog_);
  const_cast<PlanNode*>(plan.nodes[1])->id = 0;  // duplicate id
  PlanValidator validator(catalog_.get());
  ValidationReport report = validator.Validate(plan);
  EXPECT_FALSE(report.ok());
}

TEST_F(ValidatorNegativeTest, DetectsNegativeEstimates) {
  using namespace pb;  // NOLINT
  Plan plan = MustFinalize(Scan("t_big"), *catalog_);
  const_cast<PlanNode*>(plan.nodes[0])->est_rows = -5.0;
  PlanValidator validator;
  EXPECT_FALSE(validator.Validate(plan).ok());
}

TEST_F(ValidatorNegativeTest, DetectsDriverlessPipeline) {
  using namespace pb;  // NOLINT
  Plan plan = MustFinalize(
      Sort(Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 10)), {0}),
      *catalog_);
  PlanAnalysis analysis = AnalyzePlan(plan);
  analysis.pipelines[1].driver_nodes.clear();
  PlanValidator validator;
  ValidationReport report = validator.Validate(plan, analysis);
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const auto& issue : report.issues()) {
    if (issue.check == "pipeline.driver") found = true;
  }
  EXPECT_TRUE(found) << report.ToString();
}

TEST_F(ValidatorNegativeTest, DetectsBrokenPipelinePartition) {
  using namespace pb;  // NOLINT
  Plan plan = MustFinalize(
      Sort(Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 10)), {0}),
      *catalog_);
  PlanAnalysis analysis = AnalyzePlan(plan);
  // Claim a node for a second pipeline as well.
  analysis.pipelines[0].nodes.push_back(analysis.pipelines[1].nodes[0]);
  PlanValidator validator;
  EXPECT_FALSE(validator.Validate(plan, analysis).ok());
}

TEST_F(ValidatorNegativeTest, DetectsOutOfRangeProgress) {
  using namespace pb;  // NOLINT
  Plan plan = MustFinalize(Scan("t_big"), *catalog_);
  ProgressEstimator estimator(&plan, catalog_.get(),
                              EstimatorOptions::Lqs());
  ProgressInvariantChecker checker(&estimator);
  ProfileSnapshot snap;
  snap.operators.resize(1);
  ProgressReport bogus = estimator.Estimate(snap);
  bogus.query_progress = 1.5;
  bogus.operator_progress[0] = -0.25;
  checker.CheckReport(snap, bogus);
  EXPECT_FALSE(checker.report().ok());
  EXPECT_EQ(checker.report().issues().size(), 2u)
      << checker.report().ToString();
}

TEST_F(ValidatorNegativeTest, DetectsProgressRegression) {
  using namespace pb;  // NOLINT
  Plan plan = MustFinalize(Scan("t_big"), *catalog_);
  ProgressEstimator estimator(&plan, catalog_.get(),
                              EstimatorOptions::Lqs());
  ProgressInvariantChecker checker(&estimator);
  ProfileSnapshot snap;
  snap.operators.resize(1);
  ProgressReport earlier = estimator.Estimate(snap);
  earlier.query_progress = 0.9;
  snap.time_ms = 1.0;
  checker.CheckReport(snap, earlier);
  ProgressReport later = earlier;
  later.query_progress = 0.2;  // collapse beyond any revision slack
  snap.time_ms = 2.0;
  checker.CheckReport(snap, later);
  EXPECT_FALSE(checker.report().ok());
  EXPECT_GT(checker.max_query_regression(), 0.5);
  checker.Reset();
  EXPECT_TRUE(checker.report().ok());
  EXPECT_EQ(checker.snapshots_checked(), 0u);
}

}  // namespace
}  // namespace testing
}  // namespace lqs
