// Behavioural contract of the robust ensemble estimator (src/ensemble/):
//  - degenerate single-candidate ensembles are BIT-IDENTICAL to the plain
//    estimator, including under shuffled out-of-order replay;
//  - candidate scores are a pure function of the fed snapshot sequence
//    (deterministic across runs and workspaces);
//  - the uncertainty band always brackets the selected estimate and stays
//    within [0, 1];
//  - hysteresis prevents winner flap on a crafted alternating score
//    sequence;
//  - monitor sessions in EstimatorOptions::ensemble mode surface the
//    winner + band per session, and the sharded monitor passes the mode
//    through to its shards.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "gtest/gtest.h"

#include "ensemble/ensemble.h"
#include "ensemble/ensemble_metrics.h"
#include "lqs/estimator.h"
#include "monitor/monitor_service.h"
#include "monitor/sharded_monitor.h"
#include "optimizer/annotate.h"
#include "tests/test_util.h"
#include "workload/plan_builder.h"

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT

/// Exact comparison, field by field — the contract is bit-identity, not
/// tolerance (same rationale as estimator_workspace_test.cc).
void ExpectReportsIdentical(const ProgressReport& a, const ProgressReport& b,
                            const char* context) {
  EXPECT_EQ(a.query_progress, b.query_progress) << context;
  ASSERT_EQ(a.operator_progress.size(), b.operator_progress.size()) << context;
  for (size_t i = 0; i < a.operator_progress.size(); ++i) {
    EXPECT_EQ(a.operator_progress[i], b.operator_progress[i])
        << context << " operator " << i;
    EXPECT_EQ(a.refined_rows[i], b.refined_rows[i])
        << context << " refined " << i;
  }
  ASSERT_EQ(a.pipeline_progress.size(), b.pipeline_progress.size()) << context;
  for (size_t i = 0; i < a.pipeline_progress.size(); ++i) {
    EXPECT_EQ(a.pipeline_progress[i], b.pipeline_progress[i])
        << context << " pipeline " << i;
    EXPECT_EQ(a.pipeline_weight[i], b.pipeline_weight[i])
        << context << " weight " << i;
  }
}

/// Deterministic shuffle (no RNG): alternating front/back pick.
std::vector<const ProfileSnapshot*> ShuffledOrder(const ProfileTrace& trace) {
  std::vector<const ProfileSnapshot*> order;
  order.reserve(trace.snapshots.size());
  size_t lo = 0, hi = trace.snapshots.size();
  bool front = false;
  while (lo < hi) {
    if (front) {
      order.push_back(&trace.snapshots[lo++]);
    } else {
      order.push_back(&trace.snapshots[--hi]);
    }
    front = !front;
  }
  return order;
}

class EnsembleTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeTestCatalog(); }

  Plan Annotated(std::unique_ptr<PlanNode> root) {
    Plan plan = MustFinalize(std::move(root), *catalog_);
    EXPECT_OK(AnnotatePlan(&plan, *catalog_, OptimizerOptions{}));
    return plan;
  }

  ExecutionResult Run(const Plan& plan) {
    ExecOptions exec;
    exec.snapshot_interval_ms = 2.0;
    return MustExecute(plan, catalog_.get(), exec);
  }

  std::unique_ptr<Catalog> catalog_;
};

TEST_F(EnsembleTest, SingleCandidateMatchesPlainEstimatorBitIdentical) {
  Plan plan = Annotated(
      HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                       {1}),
              {2}, {Count()}));
  auto result = Run(plan);
  ASSERT_GT(result.trace.snapshots.size(), 5u);

  EnsembleOptions options;
  options.candidates = {{"lqs", EstimatorOptions::Lqs()}};
  EnsembleEstimator ensemble(&plan, catalog_.get(), options);
  ProgressEstimator plain(&plan, catalog_.get(), EstimatorOptions::Lqs());

  EnsembleEstimator::Workspace ews;
  ProgressEstimator::Workspace pws;
  EnsembleReport ereport;
  ProgressReport preport;
  for (const ProfileSnapshot& snap : result.trace.snapshots) {
    ensemble.EstimateInto(snap, &ews, &ereport);
    plain.EstimateInto(snap, &pws, &preport);
    ExpectReportsIdentical(ereport.selected, preport, "in-order");
    EXPECT_EQ(ereport.winner, 0);
    EXPECT_STREQ(ereport.winner_name, "lqs");
    EXPECT_EQ(ereport.query_progress, preport.query_progress);
  }
}

TEST_F(EnsembleTest, SingleCandidateMatchesUnderShuffledReplay) {
  Plan plan = Annotated(Sort(Scan("t_big"), {2}));
  auto result = Run(plan);
  ASSERT_GT(result.trace.snapshots.size(), 5u);

  EnsembleOptions options;
  options.candidates = {{"lqs", EstimatorOptions::Lqs()}};
  EnsembleEstimator ensemble(&plan, catalog_.get(), options);
  ProgressEstimator plain(&plan, catalog_.get(), EstimatorOptions::Lqs());

  EnsembleEstimator::Workspace ews;
  ProgressEstimator::Workspace pws;
  EnsembleReport ereport;
  ProgressReport preport;
  for (const ProfileSnapshot* snap : ShuffledOrder(result.trace)) {
    ensemble.EstimateInto(*snap, &ews, &ereport);
    plain.EstimateInto(*snap, &pws, &preport);
    ExpectReportsIdentical(ereport.selected, preport, "shuffled");
  }
}

TEST_F(EnsembleTest, ScoresAreDeterministicAcrossRuns) {
  Plan plan = Annotated(
      HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                       {1}),
              {2}, {Count()}));
  auto result = Run(plan);

  auto replay = [&](std::vector<std::vector<double>>* scores,
                    std::vector<int>* winners) {
    EnsembleEstimator ensemble(&plan, catalog_.get(), EnsembleOptions{});
    EnsembleEstimator::Workspace ws;
    EnsembleReport report;
    for (const ProfileSnapshot& snap : result.trace.snapshots) {
      ensemble.EstimateInto(snap, &ws, &report);
      scores->push_back(report.candidate_score);
      winners->push_back(report.winner);
    }
  };
  std::vector<std::vector<double>> scores_a, scores_b;
  std::vector<int> winners_a, winners_b;
  replay(&scores_a, &winners_a);
  replay(&scores_b, &winners_b);
  ASSERT_EQ(scores_a.size(), scores_b.size());
  for (size_t t = 0; t < scores_a.size(); ++t) {
    ASSERT_EQ(scores_a[t].size(), scores_b[t].size());
    for (size_t c = 0; c < scores_a[t].size(); ++c) {
      // Bit-identity (infinities included): EXPECT_EQ on purpose.
      EXPECT_EQ(scores_a[t][c], scores_b[t][c])
          << "tick " << t << " candidate " << c;
    }
    EXPECT_EQ(winners_a[t], winners_b[t]) << "tick " << t;
  }
}

TEST_F(EnsembleTest, BandBracketsSelectionAndStaysInRange) {
  Plan plan = Annotated(
      Sort(HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"),
                            CsScan("t_big"), {0}, {1}),
                   {2}, {Count()}),
           {0}));
  auto result = Run(plan);

  EnsembleEstimator ensemble(&plan, catalog_.get(), EnsembleOptions{});
  EnsembleEstimator::Workspace ws;
  EnsembleReport report;
  for (const ProfileSnapshot& snap : result.trace.snapshots) {
    ensemble.EstimateInto(snap, &ws, &report);
    EXPECT_GE(report.band_lo, 0.0);
    EXPECT_LE(report.band_hi, 1.0);
    EXPECT_LE(report.band_lo, report.band_hi);
    // The headline estimate (selected or blended) always lies in the band.
    EXPECT_GE(report.query_progress, report.band_lo);
    EXPECT_LE(report.query_progress, report.band_hi);
    // The winner is always in the trusted set behind the band.
    ASSERT_GE(report.winner, 0);
    ASSERT_LT(static_cast<size_t>(report.winner),
              report.candidate_trusted.size());
    EXPECT_EQ(report.candidate_trusted[static_cast<size_t>(report.winner)], 1);
    // Blended mode too: the blend is a convex combination of trusted
    // candidates, so it must sit inside the same band.
    EXPECT_GE(report.blended_progress, report.band_lo);
    EXPECT_LE(report.blended_progress, report.band_hi);
  }
}

TEST_F(EnsembleTest, HysteresisPreventsWinnerFlap) {
  // Crafted alternating workload: candidates 0 and 1 swap the lead every
  // round by a margin big enough to start a challenge (>25%) but never
  // sustained for switch_ticks consecutive rounds — a selector without
  // hysteresis would flap every tick; ours must never switch.
  HysteresisSelector selector;
  const double round_a[] = {0.10, 0.20};
  const double round_b[] = {0.20, 0.10};
  EXPECT_EQ(selector.Update(round_a, 2, 0.25, 3), 0);
  for (int t = 0; t < 50; ++t) {
    const double* round = (t % 2 == 0) ? round_b : round_a;
    EXPECT_EQ(selector.Update(round, 2, 0.25, 3), 0) << "tick " << t;
  }
  EXPECT_EQ(selector.switches, 0u);

  // A sustained challenger does take over — after exactly switch_ticks
  // consecutive winning rounds, and only once.
  for (int t = 0; t < 2; ++t) {
    EXPECT_EQ(selector.Update(round_b, 2, 0.25, 3), 0) << "streak " << t;
  }
  EXPECT_EQ(selector.Update(round_b, 2, 0.25, 3), 1);
  EXPECT_EQ(selector.switches, 1u);
  // The dethroned incumbent immediately challenging back must also sustain.
  EXPECT_EQ(selector.Update(round_a, 2, 0.25, 3), 1);
  EXPECT_EQ(selector.switches, 1u);
}

TEST_F(EnsembleTest, TieBreaksToLowestIndexAndWarmupFallsBackToFirst) {
  HysteresisSelector selector;
  const double kInf = std::numeric_limits<double>::infinity();
  // All-unscored warm-up: first candidate wins by default.
  const double warmup[] = {kInf, kInf, kInf};
  EXPECT_EQ(selector.Update(warmup, 3, 0.25, 3), 0);
  // Exact ties resolve to the lowest index, deterministically.
  HysteresisSelector tie;
  const double tied[] = {0.5, 0.5, 0.5};
  EXPECT_EQ(tie.Update(tied, 3, 0.25, 3), 0);
}

TEST_F(EnsembleTest, MonitorSessionSurfacesWinnerAndBand) {
  Plan plan = Annotated(
      HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                       {1}),
              {2}, {Count()}));
  auto result = Run(plan);

  EstimatorOptions ensemble_mode;
  ensemble_mode.ensemble = true;
  MonitorService monitor;
  const int ens_id = monitor.RegisterSession("ens", &plan, catalog_.get(),
                                             &result.trace, 0.0,
                                             ensemble_mode);
  const int plain_id = monitor.RegisterSession("plain", &plan, catalog_.get(),
                                               &result.trace, 0.0);
  int running_ticks = 0;
  monitor.RunToCompletion([&](double, const std::vector<SessionStatus>& st) {
    const SessionStatus& ens = st[static_cast<size_t>(ens_id)];
    const SessionStatus& plain = st[static_cast<size_t>(plain_id)];
    EXPECT_FALSE(plain.ensemble);
    EXPECT_TRUE(ens.ensemble || ens.state != SessionState::kRunning);
    if (ens.state != SessionState::kRunning || ens.snapshot == nullptr) return;
    ++running_ticks;
    // DMV view: winner + band surface per session and the band brackets
    // the rendered progress.
    EXPECT_GE(ens.ensemble_winner, 0);
    EXPECT_STRNE(ens.ensemble_winner_name, "");
    EXPECT_GE(ens.progress, ens.band_lo);
    EXPECT_LE(ens.progress, ens.band_hi);
    EXPECT_GE(ens.band_lo, 0.0);
    EXPECT_LE(ens.band_hi, 1.0);
  });
  ASSERT_GT(running_ticks, 0);
  EXPECT_TRUE(monitor.FinalCheck().ok());

  const MonitorStats stats = monitor.stats();
  EXPECT_EQ(stats.ensemble_sessions, 1u);
  EXPECT_EQ(stats.ensembles_cached, 1u);
  EXPECT_GT(stats.ensemble_candidate_estimates, 0u);
  ASSERT_FALSE(stats.ensemble_candidate_names.empty());
  ASSERT_EQ(stats.ensemble_candidate_latency_ms.size(),
            stats.ensemble_candidate_names.size());
  ASSERT_EQ(stats.ensemble_selected_ticks.size(),
            stats.ensemble_candidate_names.size());
  // Selected-preset counters: the ensemble session's ticks distribute over
  // the candidates; their sum is the session's estimate count.
  uint64_t selected_total = 0;
  for (uint64_t ticks : stats.ensemble_selected_ticks) selected_total += ticks;
  EXPECT_EQ(selected_total,
            stats.ensemble_candidate_estimates /
                stats.ensemble_candidate_names.size());
  // Per-candidate latency telemetry accumulated through the injected clock.
  double latency_total = 0;
  for (double ms : stats.ensemble_candidate_latency_ms) latency_total += ms;
  EXPECT_GE(latency_total, 0.0);
}

TEST_F(EnsembleTest, ShardedMonitorPassesEnsembleModeThrough) {
  Plan plan = Annotated(Sort(Scan("t_big"), {2}));
  auto result = Run(plan);

  EstimatorOptions ensemble_mode;
  ensemble_mode.ensemble = true;
  ShardedMonitorOptions options;
  options.num_shards = 2;
  ShardedMonitor sharded(options);
  sharded.RegisterSession("e0", &plan, catalog_.get(), &result.trace, 0.0,
                          ensemble_mode);
  sharded.RegisterSession("e1", &plan, catalog_.get(), &result.trace, 5.0,
                          ensemble_mode);
  sharded.RunToCompletion(nullptr);
  const MonitorStats stats = sharded.stats();
  EXPECT_EQ(stats.ensemble_sessions, 2u);
  EXPECT_GT(stats.ensemble_candidate_estimates, 0u);
  ASSERT_FALSE(stats.ensemble_candidate_names.empty());
}

TEST_F(EnsembleTest, EvaluateEnsembleProducesComparableMetrics) {
  Plan plan = Annotated(
      HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                       {1}),
              {2}, {Count()}));
  auto result = Run(plan);

  const EnsembleEvaluation eval =
      EvaluateEnsemble(plan, *catalog_, result.trace, EnsembleOptions{});
  EXPECT_GT(eval.observations, 0);
  EXPECT_GE(eval.error_time, 0.0);
  EXPECT_LE(eval.error_time, 1.0);
  EXPECT_GE(eval.error_count, 0.0);
  EXPECT_GE(eval.final_winner, 0);
  EXPECT_GE(eval.band_coverage, 0.0);
  EXPECT_LE(eval.band_coverage, 1.0);
}

}  // namespace
}  // namespace testing
}  // namespace lqs
