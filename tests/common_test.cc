#include <cmath>
#include <map>
#include <set>

#include "gtest/gtest.h"

#include "common/comparison.h"
#include "common/op_type.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/stringf.h"
#include "common/value.h"
#include "common/virtual_clock.h"

namespace lqs {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing table");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(Status::InvalidArgument("x").ToString(), "INVALID_ARGUMENT: x");
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OUT_OF_RANGE: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "INTERNAL: x");
  EXPECT_EQ(Status::Unimplemented("x").ToString(), "UNIMPLEMENTED: x");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    LQS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), Status::Code::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);
}

TEST(StatusOrTest, AssignOrReturnMovesValue) {
  auto producer = []() -> StatusOr<std::string> { return std::string("hi"); };
  auto consumer = [&]() -> StatusOr<int> {
    LQS_ASSIGN_OR_RETURN(std::string s, producer());
    return static_cast<int>(s.size());
  };
  auto result = consumer();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 2);
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, IntComparison) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(int64_t{2})), 0);
  EXPECT_EQ(Value(int64_t{5}).Compare(Value(int64_t{5})), 0);
  EXPECT_GT(Value(int64_t{9}).Compare(Value(int64_t{2})), 0);
}

TEST(ValueTest, MixedNumericComparison) {
  EXPECT_EQ(Value(2.0).Compare(Value(int64_t{2})), 0);
  EXPECT_LT(Value(1.5).Compare(Value(int64_t{2})), 0);
  EXPECT_GT(Value(int64_t{3}).Compare(Value(2.5)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value(std::string("abc")).Compare(Value(std::string("abd"))), 0);
  EXPECT_EQ(Value(std::string("x")).Compare(Value(std::string("x"))), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(7.0).Hash());
  EXPECT_EQ(Value(std::string("k")).Hash(), Value(std::string("k")).Hash());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(std::string("hi")).ToString(), "'hi'");
  EXPECT_EQ(RowToString({Value(int64_t{1}), Value(int64_t{2})}), "(1, 2)");
}

TEST(ValueTest, AsConversions) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsDouble(), 3.0);
  EXPECT_EQ(Value(3.7).AsInt(), 3);
}

// ---------------------------------------------------------------------------
// Rng / Zipf
// ---------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) equal++;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit over 1000 draws
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(ZipfTest, UniformWhenZeroSkew) {
  ZipfDistribution dist(10, 0.0);
  Rng rng(11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[dist.Sample(rng)]++;
  for (auto& [v, c] : counts) {
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 10u);
    EXPECT_NEAR(c, 2000, 300);
  }
}

TEST(ZipfTest, SkewedConcentratesOnSmallValues) {
  ZipfDistribution dist(1000, 1.0);
  Rng rng(13);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    if (dist.Sample(rng) == 1) ones++;
  }
  // Under z=1, P(1) = 1/H_1000 ~ 0.13 — two orders above uniform (0.001).
  EXPECT_GT(ones, 800);
}

TEST(ZipfTest, SamplesStayInDomain) {
  ZipfDistribution dist(37, 1.0);
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = dist.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 37u);
  }
}

// ---------------------------------------------------------------------------
// Comparison / OpType / VirtualClock / StringF
// ---------------------------------------------------------------------------

TEST(ComparisonTest, ApplyAllOps) {
  EXPECT_TRUE(ApplyCompareOp(CompareOp::kEq, 0));
  EXPECT_FALSE(ApplyCompareOp(CompareOp::kEq, 1));
  EXPECT_TRUE(ApplyCompareOp(CompareOp::kNe, -1));
  EXPECT_TRUE(ApplyCompareOp(CompareOp::kLt, -1));
  EXPECT_TRUE(ApplyCompareOp(CompareOp::kLe, 0));
  EXPECT_TRUE(ApplyCompareOp(CompareOp::kGt, 1));
  EXPECT_TRUE(ApplyCompareOp(CompareOp::kGe, 0));
  EXPECT_FALSE(ApplyCompareOp(CompareOp::kGe, -1));
}

TEST(OpTypeTest, CategoriesArePartitioned) {
  for (int i = 0; i < static_cast<int>(OpType::kNumOpTypes); ++i) {
    OpType t = static_cast<OpType>(i);
    EXPECT_STRNE(OpTypeName(t), "Unknown") << i;
    // A scan is never blocking or an exchange.
    if (IsScan(t)) {
      EXPECT_FALSE(IsBlocking(t));
      EXPECT_FALSE(IsExchange(t));
    }
    if (IsExchange(t)) {
      EXPECT_TRUE(IsSemiBlocking(t));
    }
  }
  EXPECT_TRUE(IsBlocking(OpType::kSort));
  EXPECT_TRUE(IsBlocking(OpType::kHashJoin));
  EXPECT_FALSE(IsBlocking(OpType::kStreamAggregate));
  EXPECT_TRUE(IsSemiBlocking(OpType::kNestedLoopJoin));
  EXPECT_TRUE(IsJoin(OpType::kMergeJoin));
  EXPECT_TRUE(IsAggregate(OpType::kHashAggregate));
  EXPECT_TRUE(IsSpool(OpType::kLazySpool));
  EXPECT_TRUE(IsSortFamily(OpType::kTopNSort));
}

TEST(VirtualClockTest, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.NowMs(), 0.0);
  clock.AdvanceMs(1.5);
  clock.AdvanceMs(0.5);
  EXPECT_DOUBLE_EQ(clock.NowMs(), 2.0);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.NowMs(), 0.0);
}

TEST(StringFTest, FormatsAndHandlesLongOutput) {
  EXPECT_EQ(StringF("%d-%s", 7, "x"), "7-x");
  std::string big = StringF("%1000d", 5);
  EXPECT_EQ(big.size(), 1000u);
}

}  // namespace
}  // namespace lqs
