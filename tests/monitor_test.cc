// MonitorService: session lifecycle on the shared timeline, the estimator
// cache, the zero-horizon guard (the old example's infinite loop), the
// determinism contract (1-thread and N-thread runs produce identical
// results), aggregate stats, and the ThreadPool underneath it all.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "common/stringf.h"
#include "monitor/monitor_service.h"
#include "monitor/thread_pool.h"
#include "optimizer/annotate.h"
#include "tests/test_util.h"
#include "workload/plan_builder.h"

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT

class MonitorTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeTestCatalog(); }

  Plan Annotated(std::unique_ptr<PlanNode> root) {
    Plan plan = MustFinalize(std::move(root), *catalog_);
    EXPECT_OK(AnnotatePlan(&plan, *catalog_, OptimizerOptions{}));
    return plan;
  }

  ExecutionResult Run(const Plan& plan, double interval_ms = 2.0) {
    ExecOptions exec;
    exec.snapshot_interval_ms = interval_ms;
    return MustExecute(plan, catalog_.get(), exec);
  }

  std::unique_ptr<Catalog> catalog_;
};

TEST_F(MonitorTest, SessionLifecycleOnSharedTimeline) {
  Plan plan = Annotated(Sort(Scan("t_big"), {2}));
  ExecutionResult result = Run(plan);
  ASSERT_GT(result.duration_ms, 0);

  MonitorService monitor;
  const double offset = result.duration_ms * 2;
  monitor.RegisterSession("first", &plan, catalog_.get(), &result.trace, 0);
  monitor.RegisterSession("late", &plan, catalog_.get(), &result.trace,
                          offset);
  EXPECT_DOUBLE_EQ(monitor.HorizonMs(), offset + result.duration_ms);

  // Mid-flight of session 0: it is running, the late arrival still waits.
  auto statuses = monitor.Tick(result.duration_ms / 2);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0].state, SessionState::kRunning);
  ASSERT_NE(statuses[0].snapshot, nullptr);
  EXPECT_GT(statuses[0].progress, 0.0);
  EXPECT_LE(statuses[0].progress, 1.0);
  EXPECT_EQ(statuses[1].state, SessionState::kWaiting);
  EXPECT_DOUBLE_EQ(statuses[1].progress, 0.0);
  EXPECT_LT(statuses[1].local_time_ms, 0.0);

  // After session 0 finished and session 1 started.
  statuses = monitor.Tick(offset + result.duration_ms / 2);
  EXPECT_EQ(statuses[0].state, SessionState::kDone);
  EXPECT_DOUBLE_EQ(statuses[0].progress, 1.0);
  EXPECT_EQ(statuses[1].state, SessionState::kRunning);

  // Horizon: everything done.
  statuses = monitor.Tick(monitor.HorizonMs());
  EXPECT_EQ(statuses[0].state, SessionState::kDone);
  EXPECT_EQ(statuses[1].state, SessionState::kDone);

  MonitorStats stats = monitor.stats();
  EXPECT_EQ(stats.sessions, 2u);
  EXPECT_EQ(stats.ticks, 3u);
  EXPECT_EQ(stats.done, 2u);
  EXPECT_EQ(stats.active + stats.waiting + stats.done, stats.sessions);
  EXPECT_GT(stats.reports_computed, 0u);
  EXPECT_TRUE(monitor.FinalCheck().ok());
}

TEST_F(MonitorTest, EstimatorCacheSharesAcrossSessionsPerPlanAndOptions) {
  Plan plan_a = Annotated(Scan("t_big"));
  Plan plan_b = Annotated(Scan("t_small"));
  ExecutionResult result_a = Run(plan_a);
  ExecutionResult result_b = Run(plan_b);

  MonitorService monitor;
  // 4 sessions over plan_a with identical options: one estimator.
  for (int i = 0; i < 4; ++i) {
    monitor.RegisterSession(StringF("a%d", i), &plan_a, catalog_.get(),
                            &result_a.trace, 10.0 * i);
  }
  EXPECT_EQ(monitor.stats().estimators_cached, 1u);
  // Same plan, different options: a second estimator.
  monitor.RegisterSession("a_tgn", &plan_a, catalog_.get(), &result_a.trace,
                          0, EstimatorOptions::TotalGetNext());
  EXPECT_EQ(monitor.stats().estimators_cached, 2u);
  // A different plan: a third.
  monitor.RegisterSession("b", &plan_b, catalog_.get(), &result_b.trace, 0);
  EXPECT_EQ(monitor.stats().estimators_cached, 3u);
  EXPECT_EQ(monitor.session_count(), 6u);

  monitor.RunToCompletion({});
  EXPECT_TRUE(monitor.FinalCheck().ok());
}

TEST_F(MonitorTest, ZeroHorizonDoesNotLoopForever) {
  // Regression: all sessions empty => horizon == 0 => the old example's
  // `tick = horizon / 12; t += tick` never advanced. RunToCompletion must
  // terminate and still report the degenerate sessions as done.
  ProfileTrace empty;  // total_elapsed_ms == 0, no snapshots
  Plan plan = Annotated(Scan("t_small"));

  MonitorService monitor;
  monitor.RegisterSession("empty", &plan, catalog_.get(), &empty, 0);
  int renders = 0;
  std::vector<SessionStatus> last;
  monitor.RunToCompletion(
      [&](double t, const std::vector<SessionStatus>& statuses) {
        EXPECT_DOUBLE_EQ(t, 0.0);
        ++renders;
        last = statuses;
      });
  EXPECT_EQ(renders, 1);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].state, SessionState::kDone);
  EXPECT_EQ(monitor.stats().ticks, 1u);
}

TEST_F(MonitorTest, NoSessionsTerminatesWithoutTicks) {
  MonitorService monitor;
  EXPECT_DOUBLE_EQ(monitor.HorizonMs(), 0.0);
  int renders = 0;
  monitor.RunToCompletion(
      [&](double, const std::vector<SessionStatus>&) { ++renders; });
  EXPECT_EQ(renders, 0);
  EXPECT_EQ(monitor.stats().ticks, 0u);
  EXPECT_TRUE(monitor.FinalCheck().ok());
}

// The determinism contract: the full per-session report stream must be
// identical whatever the thread count. Render every status into one string
// (progress at full double precision) and compare serial vs parallel.
TEST_F(MonitorTest, OutputIdenticalAcrossThreadCounts) {
  Plan join = Annotated(
      HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                       {1}),
              {2}, {Count()}));
  Plan sort = Annotated(Sort(Scan("t_big"), {2}));
  ExecutionResult join_result = Run(join);
  ExecutionResult sort_result = Run(sort);

  auto run = [&](int threads) {
    MonitorOptions options;
    options.num_threads = threads;
    options.ticks_per_horizon = 16;
    MonitorService monitor(options);
    for (int i = 0; i < 8; ++i) {
      monitor.RegisterSession(StringF("j%d", i), &join, catalog_.get(),
                              &join_result.trace, 3.5 * i);
      monitor.RegisterSession(StringF("s%d", i), &sort, catalog_.get(),
                              &sort_result.trace, 2.5 * i);
    }
    std::string rendered;
    monitor.RunToCompletion(
        [&rendered](double t, const std::vector<SessionStatus>& statuses) {
          rendered += StringF("t=%.17g\n", t);
          for (const SessionStatus& s : statuses) {
            rendered += StringF("  %d state=%d p=%.17g", s.session_id,
                                static_cast<int>(s.state), s.progress);
            for (double op : s.report.operator_progress) {
              rendered += StringF(" %.17g", op);
            }
            rendered += "\n";
          }
        });
    EXPECT_TRUE(monitor.FinalCheck().ok());
    return rendered;
  };

  const std::string serial = run(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(5));
}

TEST_F(MonitorTest, StatsLatenciesAndThroughputArePopulated) {
  Plan plan = Annotated(Sort(Scan("t_big"), {2}));
  ExecutionResult result = Run(plan);
  MonitorService monitor;
  for (int i = 0; i < 3; ++i) {
    monitor.RegisterSession(StringF("q%d", i), &plan, catalog_.get(),
                            &result.trace, 5.0 * i);
  }
  monitor.RunToCompletion({});
  MonitorStats stats = monitor.stats();
  EXPECT_EQ(stats.ticks, 12u);  // default ticks_per_horizon
  EXPECT_GT(stats.reports_computed, 0u);
  EXPECT_GT(stats.wall_ms, 0.0);
  EXPECT_GT(stats.reports_per_sec, 0.0);
  EXPECT_GE(stats.p95_estimate_latency_ms, stats.p50_estimate_latency_ms);
  EXPECT_GE(stats.p95_tick_latency_ms, stats.p50_tick_latency_ms);
  EXPECT_GE(stats.p50_estimate_latency_ms, 0.0);
  EXPECT_GT(stats.num_threads, 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&hits](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossJobsAndHandlesEdgeSizes) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, [&](size_t) { sum.fetch_add(1); });
  EXPECT_EQ(sum.load(), 0u);
  pool.ParallelFor(1, [&](size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), 1u);
  // Many back-to-back jobs exercise the generation handshake.
  for (int job = 0; job < 50; ++job) {
    pool.ParallelFor(37, [&](size_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 1u + 50u * (36u * 37u / 2));
}

TEST(ThreadPoolTest, DefaultThreadCountIsBoundedAndPositive) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  EXPECT_LE(pool.num_threads(), 16);
}

// Shutdown regression (DESIGN.md §9 audit): destroying the pool immediately
// after ParallelFor returns races the destructor's shutdown_ handshake
// against workers that are still re-entering the wait (a slow waker can
// observe the generation bump only after the job has been retired). Churn
// that window repeatedly — exact-once index coverage and a clean join must
// hold every time; TSan covers the memory orders in CI.
TEST(ThreadPoolTest, ShutdownImmediatelyAfterQueuedJobsCompletes) {
  constexpr size_t kN = 128;
  for (int iter = 0; iter < 25; ++iter) {
    std::vector<std::atomic<int>> hits(kN);
    {
      ThreadPool pool(4);
      pool.ParallelFor(kN, [&hits](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
    }  // destructor runs while workers may still be waking from the job
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ShutdownWithNoJobsEverQueuedIsClean) {
  for (int iter = 0; iter < 10; ++iter) {
    ThreadPool pool(4);  // construct + immediately destroy: pure handshake
  }
}

// The other half of the audit: a destructor overlapping an in-flight
// ParallelFor used to be silent use-after-free territory; it now aborts
// with a diagnostic. The driver thread parks the job on a latch so the
// destructor deterministically observes current_job_ != nullptr.
TEST(ThreadPoolDeathTest, DestructionWithJobInFlightAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        std::atomic<bool> started{false};
        std::atomic<bool> release{false};
        auto* pool = new ThreadPool(2);
        std::thread driver([&] {
          pool->ParallelFor(8, [&](size_t) {
            started.store(true);
            while (!release.load()) std::this_thread::yield();
          });
        });
        while (!started.load()) std::this_thread::yield();
        delete pool;  // ParallelFor still blocked in the job: must abort
        release.store(true);
        driver.join();
      },
      "destroyed while a ParallelFor is still in flight");
}

}  // namespace
}  // namespace testing
}  // namespace lqs
