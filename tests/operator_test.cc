#include <algorithm>
#include <set>

#include "gtest/gtest.h"

#include "tests/test_util.h"
#include "workload/plan_builder.h"

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT: terse plan-building in tests

class OperatorTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeTestCatalog(); }
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(OperatorTest, TableScanReturnsAllRows) {
  Plan plan = MustFinalize(Scan("t_small"), *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  ASSERT_EQ(rows.size(), 200u);
  EXPECT_EQ(rows[0][0].AsInt(), 0);
  EXPECT_EQ(rows[199][0].AsInt(), 199);
}

TEST_F(OperatorTest, TableScanPushedPredicate) {
  Plan plan =
      MustFinalize(Scan("t_small", ColCmp(1, CompareOp::kEq, 3)), *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  EXPECT_EQ(rows.size(), 20u);
  for (const Row& r : rows) EXPECT_EQ(r[1].AsInt(), 3);
}

TEST_F(OperatorTest, ScanChargesLogicalReads) {
  Plan plan = MustFinalize(Scan("t_big"), *catalog_);
  auto result = MustExecute(plan, catalog_.get());
  const OperatorProfile& p = result.trace.final_snapshot.operators[0];
  EXPECT_EQ(p.row_count, 5000u);
  EXPECT_EQ(p.logical_read_count, (5000 + kRowsPerPage - 1) / kRowsPerPage);
  EXPECT_GT(p.io_time_ms, 0);
  EXPECT_GT(p.cpu_time_ms, 0);
}

TEST_F(OperatorTest, ClusteredIndexSeekRange) {
  Plan plan =
      MustFinalize(CiSeek("t_big", Lit(100), Lit(199)), *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  ASSERT_EQ(rows.size(), 100u);
  EXPECT_EQ(rows.front()[0].AsInt(), 100);
  EXPECT_EQ(rows.back()[0].AsInt(), 199);
}

TEST_F(OperatorTest, ClusteredIndexSeekOpenEnded) {
  Plan plan = MustFinalize(CiSeek("t_big", Lit(4990), nullptr), *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  EXPECT_EQ(rows.size(), 10u);
}

TEST_F(OperatorTest, IndexSeekReturnsKeyAndRid) {
  Plan plan = MustFinalize(IdxSeek("t_small", "ix_b", Lit(4)), *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  ASSERT_EQ(rows.size(), 20u);
  for (const Row& r : rows) {
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].AsInt(), 4);
    // The rid points at a row whose b column is 4.
    EXPECT_EQ(catalog_->GetTable("t_small")->row(r[1].AsInt())[1].AsInt(), 4);
  }
}

TEST_F(OperatorTest, IndexScanOrderedByKey) {
  Plan plan = MustFinalize(IdxScan("t_big", "ix_fk"), *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  ASSERT_EQ(rows.size(), 5000u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1][1].AsInt(), rows[i][1].AsInt());
  }
}

TEST_F(OperatorTest, ColumnstoreScanMatchesTableScan) {
  Plan cs = MustFinalize(CsScan("t_big", ColCmp(2, CompareOp::kLt, 10)),
                         *catalog_);
  Plan ts = MustFinalize(Scan("t_big", ColCmp(2, CompareOp::kLt, 10)),
                         *catalog_);
  auto cs_rows = MustExecuteRows(cs, catalog_.get());
  auto ts_rows = MustExecuteRows(ts, catalog_.get());
  EXPECT_EQ(cs_rows.size(), ts_rows.size());
}

TEST_F(OperatorTest, ColumnstoreScanCountsSegments) {
  Plan plan = MustFinalize(CsScan("t_big"), *catalog_);
  auto result = MustExecute(plan, catalog_.get());
  const OperatorProfile& p = result.trace.final_snapshot.operators[0];
  const uint64_t expect_segments =
      (5000 + kRowsPerSegment - 1) / kRowsPerSegment;
  EXPECT_EQ(p.segment_total_count, expect_segments);
  EXPECT_EQ(p.segment_read_count, expect_segments);
  EXPECT_EQ(p.row_count, 5000u);
}

TEST_F(OperatorTest, ColumnstoreSegmentElimination) {
  // t_big is clustered by k, so a range predicate on k eliminates most
  // segments via min/max metadata: I/O time should be far below full scan.
  Plan pruned = MustFinalize(CsScan("t_big", ColCmp(0, CompareOp::kLt, 100)),
                             *catalog_);
  Plan full = MustFinalize(CsScan("t_big"), *catalog_);
  auto pruned_result = MustExecute(pruned, catalog_.get());
  auto full_result = MustExecute(full, catalog_.get());
  EXPECT_LT(pruned_result.trace.final_snapshot.operators[0].io_time_ms,
            full_result.trace.final_snapshot.operators[0].io_time_ms);
  EXPECT_EQ(pruned_result.rows_returned, 100u);
}

TEST_F(OperatorTest, FilterSelectsCorrectRows) {
  Plan plan = MustFinalize(
      Filter(Scan("t_small"), ColCmp(2, CompareOp::kEq, 0)), *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  EXPECT_EQ(rows.size(), 67u);  // ceil(200 / 3)
  for (const Row& r : rows) EXPECT_EQ(r[2].AsInt(), 0);
}

TEST_F(OperatorTest, ComputeScalarAppendsColumns) {
  Plan plan = MustFinalize(Compute(Scan("t_small"), [] {
                             std::vector<std::unique_ptr<Expr>> v;
                             v.push_back(Expr::Arith(ArithOp::kAdd, Col(0),
                                                     Lit(1000)));
                             return v;
                           }()),
                           *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  ASSERT_EQ(rows.size(), 200u);
  for (const Row& r : rows) {
    ASSERT_EQ(r.size(), 4u);
    EXPECT_EQ(r[3].AsInt(), r[0].AsInt() + 1000);
  }
}

TEST_F(OperatorTest, TopLimitsRows) {
  Plan plan = MustFinalize(Top(Scan("t_big"), 17), *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  EXPECT_EQ(rows.size(), 17u);
  // Early termination: the scan must not have read the whole table.
  auto result = MustExecute(plan, catalog_.get());
  EXPECT_LT(result.trace.final_snapshot.operators[1].row_count, 5000u);
}

TEST_F(OperatorTest, SortOrdersRows) {
  Plan plan = MustFinalize(Sort(Scan("t_big"), {1, 0}), *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  ASSERT_EQ(rows.size(), 5000u);
  for (size_t i = 1; i < rows.size(); ++i) {
    bool le = rows[i - 1][1].AsInt() < rows[i][1].AsInt() ||
              (rows[i - 1][1].AsInt() == rows[i][1].AsInt() &&
               rows[i - 1][0].AsInt() <= rows[i][0].AsInt());
    EXPECT_TRUE(le) << "row " << i;
  }
}

TEST_F(OperatorTest, DistinctSortRemovesDuplicates) {
  Plan plan = MustFinalize(DistinctSort(Scan("t_big"), {2}), *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  EXPECT_EQ(rows.size(), 100u);  // v = k % 100
}

TEST_F(OperatorTest, TopNSortReturnsSmallest) {
  Plan plan = MustFinalize(TopNSort(Scan("t_big"), {0}, 5), *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  ASSERT_EQ(rows.size(), 5u);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(rows[i][0].AsInt(), i);
}

TEST_F(OperatorTest, HashJoinInner) {
  // t_small ⋈ t_big on a = fk: every small row matches 25 big rows.
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  EXPECT_EQ(rows.size(), 5000u);
  for (const Row& r : rows) {
    ASSERT_EQ(r.size(), 7u);
    EXPECT_EQ(r[0].AsInt(), r[4].AsInt());  // a == fk
  }
}

TEST_F(OperatorTest, HashJoinLeftSemi) {
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kLeftSemi,
               Filter(Scan("t_small"), ColCmp(0, CompareOp::kLt, 50)),
               Scan("t_big"), {0}, {1}),
      *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  EXPECT_EQ(rows.size(), 50u);
  for (const Row& r : rows) EXPECT_EQ(r.size(), 3u);
}

TEST_F(OperatorTest, HashJoinLeftAnti) {
  // Big rows reference fk 0..199; small rows 0..199 all match => anti with
  // a filter that removes matches.
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kLeftAnti, Scan("t_small"),
               Filter(Scan("t_big"), ColCmp(1, CompareOp::kLt, 100)), {0},
               {1}),
      *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  EXPECT_EQ(rows.size(), 100u);  // small rows with a >= 100 have no match
  for (const Row& r : rows) EXPECT_GE(r[0].AsInt(), 100);
}

TEST_F(OperatorTest, HashJoinLeftOuterPadsUnmatched) {
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kLeftOuter, Scan("t_small"),
               Filter(Scan("t_big"), ColCmp(1, CompareOp::kLt, 10)), {0},
               {1}),
      *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  // fk < 10: 10 keys x 25 matches = 250 joined + 190 padded.
  EXPECT_EQ(rows.size(), 440u);
}

TEST_F(OperatorTest, HashJoinRightOuter) {
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kRightOuter,
               Filter(Scan("t_small"), ColCmp(0, CompareOp::kLt, 100)),
               Scan("t_big"), {0}, {1}),
      *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  // Probe preserved: 2500 matched + 2500 padded.
  EXPECT_EQ(rows.size(), 5000u);
}

TEST_F(OperatorTest, HashJoinRightSemi) {
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kRightSemi,
               Filter(Scan("t_small"), ColCmp(0, CompareOp::kLt, 100)),
               Scan("t_big"), {0}, {1}),
      *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  EXPECT_EQ(rows.size(), 2500u);
  for (const Row& r : rows) EXPECT_EQ(r.size(), 4u);
}

TEST_F(OperatorTest, HashJoinFullOuter) {
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kFullOuter,
               Filter(Scan("t_small"), ColCmp(0, CompareOp::kLt, 100)),
               Filter(Scan("t_big"), ColCmp(1, CompareOp::kGe, 50)), {0},
               {1}),
      *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  // Matches: keys 50..99 => 50 * 25 = 1250. Unmatched probe: fk 100..199 =>
  // 2500. Unmatched build: a < 50 => 50.
  EXPECT_EQ(rows.size(), 1250u + 2500u + 50u);
}

TEST_F(OperatorTest, HashJoinResidualPredicate) {
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1},
               ColCmp(5, CompareOp::kLt, 50)),  // t_big.v < 50
      *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  EXPECT_EQ(rows.size(), 2500u);
}

TEST_F(OperatorTest, MergeJoinMatchesHashJoin) {
  // Both inputs clustered on the join key.
  Plan mj = MustFinalize(MergeJoin(JoinKind::kInner, CiScan("t_small"),
                                   IdxScan("t_big", "ix_fk"), {0}, {1}),
                         *catalog_);
  Plan hj = MustFinalize(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog_);
  EXPECT_EQ(MustExecuteRows(mj, catalog_.get()).size(),
            MustExecuteRows(hj, catalog_.get()).size());
}

TEST_F(OperatorTest, MergeJoinLeftOuter) {
  Plan plan = MustFinalize(
      MergeJoin(JoinKind::kLeftOuter, CiScan("t_big"), CiScan("t_small"),
                {1}, {0}),
      *catalog_);
  // t_big is clustered by k, not fk — but join on (fk, a) needs fk order.
  // Use the ordered index scan instead.
  Plan plan2 = MustFinalize(
      MergeJoin(JoinKind::kLeftOuter, IdxScan("t_big", "ix_fk"),
                CiScan("t_small"), {1}, {0}),
      *catalog_);
  auto rows = MustExecuteRows(plan2, catalog_.get());
  EXPECT_EQ(rows.size(), 5000u);  // every big row matches exactly one small
  (void)plan;
}

TEST_F(OperatorTest, NestedLoopJoinWithSeek) {
  Plan plan = MustFinalize(
      Nlj(JoinKind::kInner,
          Filter(Scan("t_small"), ColCmp(0, CompareOp::kLt, 20)),
          CiSeek("t_big", OuterCol(0), OuterCol(0))),
      *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  // Seek on t_big.k (unique): 20 outer rows x 1 match.
  EXPECT_EQ(rows.size(), 20u);
  for (const Row& r : rows) EXPECT_EQ(r[0].AsInt(), r[3].AsInt());
}

TEST_F(OperatorTest, NestedLoopJoinBufferedSameResult) {
  auto build = [this](bool buffered) {
    return MustFinalize(
        Nlj(JoinKind::kInner,
            Filter(Scan("t_small"), ColCmp(1, CompareOp::kEq, 7)),
            CiSeek("t_big", OuterCol(0), OuterCol(0)), nullptr, buffered),
        *catalog_);
  };
  Plan unbuffered = build(false);
  Plan buffered = build(true);
  EXPECT_EQ(MustExecuteRows(unbuffered, catalog_.get()).size(),
            MustExecuteRows(buffered, catalog_.get()).size());
}

TEST_F(OperatorTest, NestedLoopLeftOuterAndAntiAndSemi) {
  auto kind_count = [this](JoinKind kind) {
    Plan plan = MustFinalize(
        Nlj(kind, Scan("t_small"),
            CiSeek("t_big", OuterCol(0), OuterCol(0),
                   ColCmp(2, CompareOp::kLt, 50))),
        *catalog_);
    return MustExecuteRows(plan, catalog_.get()).size();
  };
  // t_big.k == t_small.a (a < 200), v = k % 100 < 50 for half the keys.
  EXPECT_EQ(kind_count(JoinKind::kInner), 100u);
  EXPECT_EQ(kind_count(JoinKind::kLeftOuter), 200u);
  EXPECT_EQ(kind_count(JoinKind::kLeftSemi), 100u);
  EXPECT_EQ(kind_count(JoinKind::kLeftAnti), 100u);
}

TEST_F(OperatorTest, RidLookupJoinsBackToHeap) {
  // Bookmark lookup: seek ix_b, then fetch the base rows.
  Plan plan = MustFinalize(
      Nlj(JoinKind::kInner, IdxSeek("t_small", "ix_b", Lit(4)),
          RidLookup("t_small", 1)),
      *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  ASSERT_EQ(rows.size(), 20u);
  for (const Row& r : rows) {
    ASSERT_EQ(r.size(), 5u);  // (key, rid) ++ base row
    EXPECT_EQ(r[3].AsInt(), 4);
  }
}

TEST_F(OperatorTest, HashAggregateGroups) {
  Plan plan = MustFinalize(
      HashAgg(Scan("t_big"), {2}, {Count(), Sum(0), Min(0), Max(0), Avg(0)}),
      *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  ASSERT_EQ(rows.size(), 100u);
  for (const Row& r : rows) {
    ASSERT_EQ(r.size(), 6u);
    EXPECT_EQ(r[1].AsInt(), 50);  // 5000 rows / 100 groups
    EXPECT_EQ(r[3].AsInt(), r[0].AsInt());        // min k == v
    EXPECT_EQ(r[4].AsInt(), r[0].AsInt() + 4900);  // max k == v + 4900
  }
}

TEST_F(OperatorTest, HashAggregateScalarOverEmptyInput) {
  Plan plan = MustFinalize(
      HashAgg(Filter(Scan("t_small"), ColCmp(0, CompareOp::kLt, -5)), {},
              {Count(), Sum(0)}),
      *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 0);
}

TEST_F(OperatorTest, StreamAggregateMatchesHashAggregate) {
  // t_big clustered by k; group by k/1000 needs sorted input — group by the
  // leading column instead.
  Plan stream = MustFinalize(
      StreamAgg(CiScan("t_small"), {0}, {Count()}), *catalog_);
  auto rows = MustExecuteRows(stream, catalog_.get());
  EXPECT_EQ(rows.size(), 200u);

  // Grouping by a sorted non-unique prefix.
  Plan stream2 = MustFinalize(
      StreamAgg(IdxScan("t_big", "ix_fk"), {1}, {Count(), Sum(2)}),
      *catalog_);
  auto rows2 = MustExecuteRows(stream2, catalog_.get());
  ASSERT_EQ(rows2.size(), 200u);
  for (const Row& r : rows2) EXPECT_EQ(r[1].AsInt(), 25);
}

TEST_F(OperatorTest, StreamAggregateScalarEmptyInput) {
  Plan plan = MustFinalize(
      StreamAgg(Filter(Scan("t_small"), ColCmp(0, CompareOp::kLt, -5)), {},
                {Count()}),
      *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 0);
}

TEST_F(OperatorTest, ExchangePreservesRows) {
  Plan plan = MustFinalize(Gather(Scan("t_big")), *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  EXPECT_EQ(rows.size(), 5000u);
}

TEST_F(OperatorTest, ExchangeLagsBehindChild) {
  // Mid-execution, the exchange's K_i must run behind its child's (the
  // Figure 8 behaviour); verify via an early snapshot.
  ExecOptions options;
  options.snapshot_interval_ms = 1.0;
  options.exchange_pull_batch = 16;
  Plan plan = MustFinalize(Gather(Scan("t_big")), *catalog_);
  auto result = MustExecute(plan, catalog_.get(), options);
  ASSERT_GT(result.trace.snapshots.size(), 2u);
  bool saw_lag = false;
  for (const auto& snap : result.trace.snapshots) {
    const auto& exchange = snap.operators[0];
    const auto& child = snap.operators[1];
    EXPECT_LE(exchange.row_count, child.row_count);
    if (child.row_count > 0 &&
        child.row_count >= exchange.row_count + 500) {
      saw_lag = true;
    }
  }
  EXPECT_TRUE(saw_lag);
}

TEST_F(OperatorTest, ConcatenationChainsChildren) {
  std::vector<NodePtr> children;
  children.push_back(Scan("t_small"));
  children.push_back(Scan("t_small"));
  Plan plan = MustFinalize(Concat(std::move(children)), *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  EXPECT_EQ(rows.size(), 400u);
}

TEST_F(OperatorTest, EagerSpoolReplaysOnRebind) {
  // Spool on the NL inner side: child executes once, replays per outer row.
  Plan plan = MustFinalize(
      Nlj(JoinKind::kInner,
          Filter(Scan("t_small"), ColCmp(0, CompareOp::kLt, 10)),
          EagerSpool(Filter(Scan("t_small"), ColCmp(1, CompareOp::kEq, 0))),
          Cmp(CompareOp::kEq, Col(2), Col(5))),
      *catalog_);
  auto result = MustExecute(plan, catalog_.get());
  // The spool's child scan ran exactly once (200 rows scanned, 20 output).
  int scan_under_spool = -1;
  plan.root->Visit([&](const PlanNode& n) {
    if (n.type == OpType::kFilter && n.children[0]->type == OpType::kTableScan &&
        n.id > 2) {
      // the spooled filter is the deeper one
    }
  });
  (void)scan_under_spool;
  // Find the spool node and its child.
  int spool_id = -1;
  plan.root->Visit([&](const PlanNode& n) {
    if (n.type == OpType::kEagerSpool) spool_id = n.id;
  });
  ASSERT_GE(spool_id, 0);
  const auto& final_snap = result.trace.final_snapshot;
  const auto& spool_child = final_snap.operators[spool_id + 1];
  EXPECT_EQ(spool_child.rebind_count, 0u);   // never re-executed
  EXPECT_EQ(spool_child.row_count, 20u);     // b == 0 => 20 rows
  const auto& spool = final_snap.operators[spool_id];
  EXPECT_EQ(spool.row_count, 200u);  // 10 outer rows x 20 replayed rows
  EXPECT_EQ(spool.rebind_count, 9u);
}

TEST_F(OperatorTest, LazySpoolCachesChild) {
  Plan plan = MustFinalize(
      Nlj(JoinKind::kInner,
          Filter(Scan("t_small"), ColCmp(0, CompareOp::kLt, 5)),
          LazySpool(Filter(Scan("t_small"), ColCmp(1, CompareOp::kEq, 1)))),
      *catalog_);
  auto rows = MustExecuteRows(plan, catalog_.get());
  EXPECT_EQ(rows.size(), 5u * 20u);
}

TEST_F(OperatorTest, BitmapFilterReducesProbeScanOutput) {
  // Hash join with a bitmap pushed into the probe-side scan (Figure 6).
  NodePtr build = BitmapCreate(
      Filter(Scan("t_small"), ColCmp(0, CompareOp::kLt, 10)), 0);
  NodePtr probe = Scan("t_big");
  ProbeBitmap(probe.get(), 1);
  auto root = HashJoin(JoinKind::kInner, std::move(build), std::move(probe),
                       {0}, {1});
  auto plan_or = FinalizePlan(std::move(root), *catalog_);
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  ASSERT_OK(LinkBitmaps(&plan_or.value()));
  Plan plan = std::move(plan_or).value();
  auto result = MustExecute(plan, catalog_.get());
  EXPECT_EQ(result.rows_returned, 250u);  // 10 keys x 25 rows
  // The probe scan outputs (roughly) only the bitmap-qualifying rows, far
  // fewer than the full table.
  int probe_id = -1;
  plan.root->Visit([&](const PlanNode& n) {
    if (n.type == OpType::kTableScan && n.bitmap_source_id >= 0) {
      probe_id = n.id;
    }
  });
  ASSERT_GE(probe_id, 0);
  const auto& p = result.trace.final_snapshot.operators[probe_id];
  EXPECT_LT(p.row_count, 1000u);
  EXPECT_TRUE(p.has_pushed_predicate);
}

TEST_F(OperatorTest, ConstantScanEmitsRows) {
  std::vector<Row> rows{{Value(int64_t{1}), Value(int64_t{2})},
                        {Value(int64_t{3}), Value(int64_t{4})}};
  Plan plan = MustFinalize(ConstantScan(rows), *catalog_);
  auto out = MustExecuteRows(plan, catalog_.get());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1][1].AsInt(), 4);
}

TEST_F(OperatorTest, SegmentPassesThrough) {
  Plan plan = MustFinalize(Segment(CiScan("t_small"), {1}), *catalog_);
  EXPECT_EQ(MustExecuteRows(plan, catalog_.get()).size(), 200u);
}

}  // namespace
}  // namespace testing
}  // namespace lqs
