// Snapshot-grid semantics of the DMV profiler and of trace lookups:
//  - the first poll always snapshots, so a query shorter than one polling
//    interval still produces a non-empty trace (the t=0 regression that made
//    monitors report 0% until completion);
//  - a stall spanning several intervals emits exactly one snapshot with the
//    polling phase advanced to stay on the grid;
//  - Finalize fills final_snapshot without duplicating a snapshot already
//    taken at end_ms into the snapshot list;
//  - ProfileTrace::SnapshotAtOrBefore matches a linear rescan;
//  - Estimate replay is order-independent, as estimator.h promises.

#include <algorithm>
#include <limits>
#include <vector>

#include "gtest/gtest.h"

#include "dmv/profiler.h"
#include "dmv/query_profile.h"
#include "lqs/estimator.h"
#include "optimizer/annotate.h"
#include "tests/test_util.h"
#include "workload/plan_builder.h"

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = MakeTestCatalog();
    live_.resize(1);
    live_[0].node_id = 0;
  }

  Plan Annotated(std::unique_ptr<PlanNode> root) {
    Plan plan = MustFinalize(std::move(root), *catalog_);
    EXPECT_OK(AnnotatePlan(&plan, *catalog_, OptimizerOptions{}));
    return plan;
  }

  std::unique_ptr<Catalog> catalog_;
  std::vector<OperatorProfile> live_;
};

TEST_F(ProfilerTest, FirstPollSnapshotsBeforeTheIntervalElapses) {
  Profiler profiler(&live_, /*interval_ms=*/500.0);
  profiler.MaybePoll(0.25);  // far inside the first interval
  ProfileTrace trace = profiler.TakeTrace();
  ASSERT_EQ(trace.snapshots.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.snapshots[0].time_ms, 0.25);
}

TEST_F(ProfilerTest, ShortQueryStillProducesSnapshots) {
  // Regression: with a polling interval longer than the whole query, the
  // old profiler returned an empty snapshot list and monitors reported 0%
  // until completion.
  Plan plan = Annotated(Scan("t_small"));
  ExecOptions exec;
  exec.snapshot_interval_ms = 1e9;  // one poll interval outlives the query
  ExecutionResult result = MustExecute(plan, catalog_.get(), exec);
  ASSERT_LT(result.duration_ms, exec.snapshot_interval_ms);
  ASSERT_FALSE(result.trace.snapshots.empty());
  // The early sample is usable: a monitor polling mid-query finds it.
  const ProfileSnapshot* snap =
      result.trace.SnapshotAtOrBefore(result.duration_ms / 2);
  ASSERT_NE(snap, nullptr);
}

TEST_F(ProfilerTest, StallSpanningIntervalsEmitsOneSnapshotAndKeepsGrid) {
  Profiler profiler(&live_, /*interval_ms=*/10.0);
  profiler.MaybePoll(1.0);   // initial sample
  profiler.MaybePoll(47.0);  // a stall spanning 4 full intervals
  // Exactly one snapshot for the whole stall, not one per interval, and the
  // phase advanced to the last grid point <= 47 (i.e. 40): a poll at 49 is
  // still inside the current interval and must not snapshot...
  profiler.MaybePoll(49.0);
  // ...while a poll at 50 lands on the next grid point and must.
  profiler.MaybePoll(50.0);
  ProfileTrace trace = profiler.TakeTrace();
  ASSERT_EQ(trace.snapshots.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.snapshots[0].time_ms, 1.0);
  EXPECT_DOUBLE_EQ(trace.snapshots[1].time_ms, 47.0);
  EXPECT_DOUBLE_EQ(trace.snapshots[2].time_ms, 50.0);
}

TEST_F(ProfilerTest, FinalizeDoesNotDuplicateSnapshotTakenAtEnd) {
  Profiler profiler(&live_, /*interval_ms=*/10.0);
  profiler.MaybePoll(2.0);
  profiler.MaybePoll(20.0);  // on the grid: snapshots
  profiler.Finalize(20.0);   // completion at the same instant
  ProfileTrace trace = profiler.TakeTrace();
  ASSERT_EQ(trace.snapshots.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.final_snapshot.time_ms, 20.0);
  EXPECT_DOUBLE_EQ(trace.total_elapsed_ms, 20.0);
  // Snapshot times stay strictly increasing — no duplicated instants.
  for (size_t i = 1; i < trace.snapshots.size(); ++i) {
    EXPECT_LT(trace.snapshots[i - 1].time_ms, trace.snapshots[i].time_ms);
  }
}

TEST_F(ProfilerTest, SnapshotAtOrBeforeMatchesLinearRescan) {
  Plan plan = Annotated(
      HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0},
                       {1}),
              {2}, {Count()}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  ExecutionResult result = MustExecute(plan, catalog_.get(), exec);
  const ProfileTrace& trace = result.trace;
  ASSERT_GT(trace.snapshots.size(), 5u);

  auto linear = [&trace](double t) -> const ProfileSnapshot* {
    const ProfileSnapshot* best = nullptr;
    for (const auto& snap : trace.snapshots) {
      if (snap.time_ms <= t) best = &snap;
      else break;
    }
    return best;
  };
  // Probe before, on, between and after every snapshot time.
  std::vector<double> probes = {-1.0, 0.0, result.duration_ms,
                                result.duration_ms * 2};
  for (const auto& snap : trace.snapshots) {
    probes.push_back(snap.time_ms);
    probes.push_back(snap.time_ms - 1e-9);
    probes.push_back(snap.time_ms + 1e-9);
  }
  for (double t : probes) {
    EXPECT_EQ(trace.SnapshotAtOrBefore(t), linear(t)) << "t=" << t;
  }

  ProfileTrace empty;
  EXPECT_EQ(empty.SnapshotAtOrBefore(0.0), nullptr);
  EXPECT_EQ(empty.SnapshotAtOrBefore(1e9), nullptr);
}

TEST_F(ProfilerTest, InvalidSnapshotIntervalIsRejected) {
  // Regression: interval_ms <= 0 degenerated MaybePoll's grid catch-up loop
  // into a spin, and NaN silently disabled polling. Both the validating
  // factory and the executor entry point must reject such intervals.
  EXPECT_OK(Profiler::ValidateIntervalMs(500.0));
  EXPECT_OK(Profiler::ValidateIntervalMs(1e-3));
  for (double bad : {0.0, -1.0, -500.0,
                     std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity()}) {
    Status status = Profiler::ValidateIntervalMs(bad);
    EXPECT_FALSE(status.ok()) << "interval " << bad << " accepted";
    EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
    EXPECT_FALSE(Profiler::Create(&live_, bad).ok());
  }
  ASSERT_TRUE(Profiler::Create(&live_, 500.0).ok());

  Plan plan = Annotated(Scan("t_small"));
  for (double bad : {0.0, -2.0, std::numeric_limits<double>::quiet_NaN()}) {
    ExecOptions exec;
    exec.snapshot_interval_ms = bad;
    auto result = ExecuteQuery(plan, catalog_.get(), exec);
    ASSERT_FALSE(result.ok()) << "interval " << bad << " executed";
    EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
  }
}

TEST_F(ProfilerTest, SnapshotAtOrBeforeBeforeFirstSnapshotIsNull) {
  // Hand-built trace with a known first sample: probes strictly earlier
  // must return null — a monitor polling before the first DMV sample has
  // genuinely nothing to show, not "the first sample early".
  ProfileTrace trace;
  for (double t : {10.0, 20.0, 30.0}) {
    trace.snapshots.push_back(ProfileSnapshot{t, live_});
  }
  EXPECT_EQ(trace.SnapshotAtOrBefore(-5.0), nullptr);
  EXPECT_EQ(trace.SnapshotAtOrBefore(0.0), nullptr);
  EXPECT_EQ(trace.SnapshotAtOrBefore(10.0 - 1e-9), nullptr);
}

TEST_F(ProfilerTest, SnapshotAtOrBeforeOnBoundaryReturnsThatSnapshot) {
  // "At or before" includes "at": a probe landing exactly on a snapshot
  // time returns that snapshot, not its predecessor.
  ProfileTrace trace;
  for (double t : {10.0, 20.0, 30.0}) {
    trace.snapshots.push_back(ProfileSnapshot{t, live_});
  }
  for (size_t i = 0; i < trace.snapshots.size(); ++i) {
    const ProfileSnapshot* hit =
        trace.SnapshotAtOrBefore(trace.snapshots[i].time_ms);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit, &trace.snapshots[i]) << "boundary " << i;
  }
  // Between boundaries the earlier snapshot wins; past the last, the last.
  EXPECT_EQ(trace.SnapshotAtOrBefore(15.0), &trace.snapshots[0]);
  EXPECT_EQ(trace.SnapshotAtOrBefore(1e9), &trace.snapshots[2]);
}

TEST_F(ProfilerTest, EstimateReplayIsOrderIndependent) {
  Plan plan = Annotated(Sort(Scan("t_big"), {2}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  ExecutionResult result = MustExecute(plan, catalog_.get(), exec);
  ASSERT_GT(result.trace.snapshots.size(), 3u);
  ProgressEstimator est(&plan, catalog_.get(), EstimatorOptions::Lqs());

  std::vector<ProgressReport> forward;
  forward.reserve(result.trace.snapshots.size());
  for (const auto& snap : result.trace.snapshots) {
    forward.push_back(est.Estimate(snap));
  }
  for (size_t i = result.trace.snapshots.size(); i-- > 0;) {
    ProgressReport replayed = est.Estimate(result.trace.snapshots[i]);
    EXPECT_DOUBLE_EQ(replayed.query_progress, forward[i].query_progress);
    ASSERT_EQ(replayed.operator_progress.size(),
              forward[i].operator_progress.size());
    for (size_t n = 0; n < replayed.operator_progress.size(); ++n) {
      EXPECT_DOUBLE_EQ(replayed.operator_progress[n],
                       forward[i].operator_progress[n]);
      EXPECT_DOUBLE_EQ(replayed.refined_rows[n], forward[i].refined_rows[n]);
    }
  }
}

}  // namespace
}  // namespace testing
}  // namespace lqs
