// Golden equivalence of the workspace-reusing estimation engine: for every
// §5 preset, over executed TPC-H and TPC-DS traces, EstimateInto with a
// reused Workspace must produce reports bit-identical (exact doubles) to the
// stateless Estimate(), in forward AND out-of-order replay, with the
// incremental short-circuits on or off. Plus the freeze regressions: bounds
// are not re-derived for finished operators, and the alpha/weight freezes
// actually engage on real traces.

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "exec/executor.h"
#include "lqs/bounds.h"
#include "lqs/estimator.h"
#include "optimizer/annotate.h"
#include "tests/test_util.h"
#include "workload/plan_builder.h"
#include "workload/workload.h"

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT

struct Preset {
  std::string name;
  EstimatorOptions options;
};

std::vector<Preset> AllPresets() {
  // Drawn from the shared registry so the coverage here can never drift
  // from the preset set the estimator actually ships. The `_lp` variants
  // (bounds_engine = kIntersect) ride the same replay contract: the
  // LpBound engine and the intersection must be exactly replayable too,
  // forward and out of order.
  std::vector<Preset> presets;
  for (int i = 0; i < EstimatorOptions::kPresetCount; ++i) {
    presets.push_back(
        {EstimatorOptions::PresetName(i), EstimatorOptions::PresetByIndex(i)});
    const std::string lp_name =
        std::string(EstimatorOptions::PresetName(i)) + "_lp";
    EstimatorOptions lp;
    EXPECT_TRUE(EstimatorOptions::PresetFromName(lp_name, &lp)) << lp_name;
    presets.push_back({lp_name, lp});
  }
  return presets;
}

/// Exact comparison, field by field. EXPECT_EQ on doubles is deliberate:
/// the contract is bit-identity, not tolerance. (+inf compares equal to
/// +inf; any NaN would fail, which is also intended.)
void ExpectReportsIdentical(const ProgressReport& fresh,
                            const ProgressReport& reused,
                            const std::string& context) {
  EXPECT_EQ(fresh.query_progress, reused.query_progress) << context;
  ASSERT_EQ(fresh.operator_progress.size(), reused.operator_progress.size())
      << context;
  ASSERT_EQ(fresh.refined_rows.size(), reused.refined_rows.size()) << context;
  ASSERT_EQ(fresh.pipeline_progress.size(), reused.pipeline_progress.size())
      << context;
  ASSERT_EQ(fresh.pipeline_weight.size(), reused.pipeline_weight.size())
      << context;
  for (size_t i = 0; i < fresh.operator_progress.size(); ++i) {
    EXPECT_EQ(fresh.operator_progress[i], reused.operator_progress[i])
        << context << " operator_progress[" << i << "]";
    EXPECT_EQ(fresh.refined_rows[i], reused.refined_rows[i])
        << context << " refined_rows[" << i << "]";
  }
  for (size_t p = 0; p < fresh.pipeline_progress.size(); ++p) {
    EXPECT_EQ(fresh.pipeline_progress[p], reused.pipeline_progress[p])
        << context << " pipeline_progress[" << p << "]";
    EXPECT_EQ(fresh.pipeline_weight[p], reused.pipeline_weight[p])
        << context << " pipeline_weight[" << p << "]";
  }
}

/// Both benchmark workloads, executed once and shared by all tests.
class EstimatorWorkspaceTest : public ::testing::Test {
 protected:
  struct ExecutedWorkload {
    Workload workload;
    std::vector<ExecutionResult> runs;  // parallel to workload.queries
  };

  static std::vector<ExecutedWorkload>& GetWorkloads() {
    static std::vector<ExecutedWorkload>* shared = [] {
      auto* all = new std::vector<ExecutedWorkload>();
      OptimizerOptions oo;
      oo.selectivity_error = 1.5;  // realistic misestimation
      ExecOptions exec;
      exec.snapshot_interval_ms = 5.0;

      TpchOptions tpch;
      tpch.scale = 0.1;
      auto h = MakeTpchWorkload(tpch);
      EXPECT_TRUE(h.ok());
      TpcdsOptions tpcds;
      tpcds.scale = 0.1;
      auto ds = MakeTpcdsWorkload(tpcds);
      EXPECT_TRUE(ds.ok());

      for (auto* w : {&h.value(), &ds.value()}) {
        EXPECT_TRUE(AnnotateWorkload(w, oo).ok());
        ExecutedWorkload ew;
        ew.workload = std::move(*w);
        for (auto& q : ew.workload.queries) {
          auto run = ExecuteQuery(q.plan, ew.workload.catalog.get(), exec);
          EXPECT_TRUE(run.ok()) << ew.workload.name << "/" << q.name;
          ew.runs.push_back(std::move(run).value());
        }
        all->push_back(std::move(ew));
      }
      return all;
    }();
    return *shared;
  }

  /// Replays `trace` (snapshots in `order`, then the final snapshot)
  /// through both paths and asserts bit-identity snapshot by snapshot.
  static void ExpectReplayIdentical(const Plan& plan, const Catalog& catalog,
                                    const ProfileTrace& trace,
                                    const std::vector<size_t>& order,
                                    const EstimatorOptions& options,
                                    const std::string& context) {
    ProgressEstimator estimator(&plan, &catalog, options);
    ProgressEstimator::Workspace workspace;
    ProgressReport reused;
    auto check = [&](const ProfileSnapshot& snap, size_t label) {
      const ProgressReport fresh = estimator.Estimate(snap);
      estimator.EstimateInto(snap, &workspace, &reused);
      ExpectReportsIdentical(
          fresh, reused, context + " snapshot#" + std::to_string(label));
    };
    for (size_t idx : order) check(trace.snapshots[idx], idx);
    check(trace.final_snapshot, trace.snapshots.size());
  }
};

TEST_F(EstimatorWorkspaceTest, ForwardReplayMatchesStatelessEstimate) {
  for (const ExecutedWorkload& ew : GetWorkloads()) {
    for (size_t qi = 0; qi < ew.workload.queries.size(); ++qi) {
      const WorkloadQuery& q = ew.workload.queries[qi];
      const ProfileTrace& trace = ew.runs[qi].trace;
      std::vector<size_t> forward(trace.snapshots.size());
      for (size_t i = 0; i < forward.size(); ++i) forward[i] = i;
      for (const Preset& preset : AllPresets()) {
        ExpectReplayIdentical(
            q.plan, *ew.workload.catalog, trace, forward, preset.options,
            ew.workload.name + "/" + q.name + "/" + preset.name);
      }
    }
  }
}

TEST_F(EstimatorWorkspaceTest, OutOfOrderReplayMatchesStatelessEstimate) {
  // A finished-operator freeze keyed on anything but the current snapshot
  // would break exactly this: feeding a LATE snapshot (operators finished)
  // and then an EARLY one (running again) must not leak frozen values.
  std::mt19937 rng(20260806u);
  for (const ExecutedWorkload& ew : GetWorkloads()) {
    for (size_t qi = 0; qi < ew.workload.queries.size(); ++qi) {
      const WorkloadQuery& q = ew.workload.queries[qi];
      const ProfileTrace& trace = ew.runs[qi].trace;
      std::vector<size_t> shuffled(trace.snapshots.size());
      for (size_t i = 0; i < shuffled.size(); ++i) shuffled[i] = i;
      std::shuffle(shuffled.begin(), shuffled.end(), rng);
      // Worst case on top of the shuffle: estimate the final snapshot
      // first (everything frozen), then replay from the beginning.
      std::reverse(shuffled.begin(),
                   shuffled.begin() +
                       static_cast<long>(shuffled.size() / 2));
      for (const Preset& preset : AllPresets()) {
        ExpectReplayIdentical(
            q.plan, *ew.workload.catalog, trace, shuffled, preset.options,
            ew.workload.name + "/" + q.name + "/" + preset.name +
                "/shuffled");
      }
    }
  }
}

TEST_F(EstimatorWorkspaceTest, NonIncrementalModeIsBitIdentical) {
  // incremental=false must disable only the cost short-circuits, never
  // change a value: it is the bench baseline, and its output feeds the
  // same equivalence contract.
  for (const ExecutedWorkload& ew : GetWorkloads()) {
    for (size_t qi = 0; qi < ew.workload.queries.size(); ++qi) {
      const WorkloadQuery& q = ew.workload.queries[qi];
      const ProfileTrace& trace = ew.runs[qi].trace;
      EstimatorOptions on = EstimatorOptions::Lqs();
      EstimatorOptions off = EstimatorOptions::Lqs();
      off.incremental = false;
      ProgressEstimator est_on(&q.plan, ew.workload.catalog.get(), on);
      ProgressEstimator est_off(&q.plan, ew.workload.catalog.get(), off);
      ProgressEstimator::Workspace ws_on;
      ProgressEstimator::Workspace ws_off;
      ProgressReport r_on;
      ProgressReport r_off;
      for (size_t i = 0; i < trace.snapshots.size(); ++i) {
        est_on.EstimateInto(trace.snapshots[i], &ws_on, &r_on);
        est_off.EstimateInto(trace.snapshots[i], &ws_off, &r_off);
        ExpectReportsIdentical(r_off, r_on,
                               ew.workload.name + "/" + q.name +
                                   " incremental on/off snapshot#" +
                                   std::to_string(i));
      }
    }
  }
}

TEST_F(EstimatorWorkspaceTest, AppendixAEngineIsBitIdenticalToLegacyBounds) {
  // The refactor seam itself: routing Appendix A through the bounds-engine
  // pipeline must reproduce the monolithic ComputeBounds exactly — every
  // node, every snapshot, exact doubles.
  for (const ExecutedWorkload& ew : GetWorkloads()) {
    for (size_t qi = 0; qi < ew.workload.queries.size(); ++qi) {
      const WorkloadQuery& q = ew.workload.queries[qi];
      const ProfileTrace& trace = ew.runs[qi].trace;
      const PlanAnalysis analysis =
          AnalyzePlan(q.plan, ew.workload.catalog.get());
      CardinalityBounds piped, scratch;
      for (const ProfileSnapshot& snap : trace.snapshots) {
        const CardinalityBounds legacy =
            ComputeBounds(q.plan, *ew.workload.catalog, snap);
        ComputeBoundsPipelineInto(BoundsEngineKind::kAppendixA, q.plan,
                                  *ew.workload.catalog, snap, nullptr,
                                  analysis, nullptr, &piped, &scratch,
                                  nullptr);
        ASSERT_EQ(legacy.lower.size(), piped.lower.size());
        for (int i = 0; i < q.plan.size(); ++i) {
          EXPECT_EQ(legacy.lower[i], piped.lower[i])
              << ew.workload.name << "/" << q.name << " node " << i;
          EXPECT_EQ(legacy.upper[i], piped.upper[i])
              << ew.workload.name << "/" << q.name << " node " << i;
        }
      }
    }
  }
}

class EstimatorFreezeTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeTestCatalog(); }

  Plan Annotated(std::unique_ptr<PlanNode> root) {
    Plan plan = MustFinalize(std::move(root), *catalog_);
    EXPECT_OK(AnnotatePlan(&plan, *catalog_, OptimizerOptions{}));
    return plan;
  }

  std::unique_ptr<Catalog> catalog_;
};

TEST_F(EstimatorFreezeTest, BoundsNotRederivedForFinishedOperators) {
  // No Nested Loops join anywhere, so every operator is freeze-eligible the
  // moment it reports finished. On the final snapshot every operator is
  // finished — the Appendix A coefficient derivation must not run at all,
  // on the FIRST call with that snapshot as much as on repeats (the freeze
  // is keyed on the snapshot's own finished flags, not on call history).
  Plan plan = Annotated(
      Sort(HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"),
                            {0}, {1}),
                   {2}, {Count()}),
           {0}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  auto result = MustExecute(plan, catalog_.get(), exec);
  ASSERT_GT(result.trace.snapshots.size(), 3u);

  ProgressEstimator estimator(&plan, catalog_.get(), EstimatorOptions::Lqs());
  ProgressEstimator::Workspace workspace;
  ProgressReport report;

  estimator.EstimateInto(result.trace.final_snapshot, &workspace, &report);
  EXPECT_EQ(workspace.stats.bound_derivations, 0u)
      << "fully-finished snapshot still derived bound coefficients";
  const uint64_t after_final = workspace.stats.bound_derivations;
  estimator.EstimateInto(result.trace.final_snapshot, &workspace, &report);
  EXPECT_EQ(workspace.stats.bound_derivations, after_final)
      << "repeat call re-derived frozen bounds";

  // Mid-trace, the hash join's build side finishes long before the query:
  // a full replay must derive strictly fewer coefficients than nodes*calls.
  ProgressEstimator::Workspace replay_ws;
  uint64_t calls = 0;
  for (const ProfileSnapshot& snap : result.trace.snapshots) {
    estimator.EstimateInto(snap, &replay_ws, &report);
    ++calls;
  }
  EXPECT_LT(replay_ws.stats.bound_derivations,
            calls * static_cast<uint64_t>(plan.size()));
}

TEST_F(EstimatorFreezeTest, AlphaAndWeightFreezesEngageOnRealTraces) {
  Plan plan = Annotated(
      Sort(HashAgg(HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"),
                            {0}, {1}),
                   {2}, {Count()}),
           {0}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  auto result = MustExecute(plan, catalog_.get(), exec);

  ProgressEstimator estimator(&plan, catalog_.get(), EstimatorOptions::Lqs());
  ProgressEstimator::Workspace workspace;
  ProgressReport report;
  for (const ProfileSnapshot& snap : result.trace.snapshots) {
    estimator.EstimateInto(snap, &workspace, &report);
  }
  estimator.EstimateInto(result.trace.final_snapshot, &workspace, &report);
  estimator.EstimateInto(result.trace.final_snapshot, &workspace, &report);
  EXPECT_GT(workspace.stats.alpha_freezes, 0u);
  EXPECT_GT(workspace.stats.weight_cache_hits, 0u);
  EXPECT_GT(workspace.stats.calls, 0u);
}

using EstimatorWorkspaceDeathTest = EstimatorFreezeTest;

TEST_F(EstimatorWorkspaceDeathTest, RebindingWorkspaceAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Plan plan_a = Annotated(Sort(Scan("t_big"), {2}));
  Plan plan_b = Annotated(Scan("t_small"));
  auto result_a = MustExecute(plan_a, catalog_.get());
  auto result_b = MustExecute(plan_b, catalog_.get());
  ProgressEstimator est_a(&plan_a, catalog_.get(), EstimatorOptions::Lqs());
  ProgressEstimator est_b(&plan_b, catalog_.get(), EstimatorOptions::Lqs());
  ProgressEstimator::Workspace workspace;
  ProgressReport report;
  est_a.EstimateInto(result_a.trace.final_snapshot, &workspace, &report);
  EXPECT_DEATH(
      est_b.EstimateInto(result_b.trace.final_snapshot, &workspace, &report),
      "different estimator");
}

}  // namespace
}  // namespace testing
}  // namespace lqs
