// lqs::Mutex / MutexLock / CondVar (common/mutex.h): mutual exclusion and
// condition signaling through the annotated primitives, plus the
// lock-rank checker — positive nested acquisitions in rank order, rank
// state resetting on release, and death tests for rank inversion,
// equal-rank nesting, and recursive acquisition. Rank checking is forced on
// so the diagnostics are exercised under every build type (it defaults off
// under NDEBUG).

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lqs {
namespace {

class MutexTest : public ::testing::Test {
 protected:
  void SetUp() override { Mutex::SetRankCheckEnabled(true); }
};

// The death tests below violate the lock discipline on purpose — the same
// misuse -Wthread-safety rejects at compile time where it can see it. These
// helpers opt out of the analysis so the *runtime* checker's diagnostics
// can be exercised; the process aborts inside, so the leaked locks never
// matter.
void AcquireInOrder(Mutex* first, Mutex* second)
    LQS_NO_THREAD_SAFETY_ANALYSIS {
  first->Lock();
  second->Lock();
}

void AcquireTwice(Mutex* mu) LQS_NO_THREAD_SAFETY_ANALYSIS {
  mu->Lock();
  mu->Lock();
}

TEST_F(MutexTest, MutualExclusionAcrossThreads) {
  Mutex mu(10, "counter-mu");
  int counter = 0;  // guarded by mu (by convention in this test)
  constexpr int kThreads = 4;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

// Structured as plain if/else on the TryLock result (rather than
// ASSERT_TRUE(mu.TryLock())) so clang's try-acquire tracking can follow the
// lock state through every branch.
TEST_F(MutexTest, TryLockSucceedsWhenFreeFailsWhenContended) {
  Mutex mu(10, "trylock-mu");
  if (!mu.TryLock()) {
    FAIL() << "TryLock on a free mutex must succeed";
  } else {
    mu.AssertHeld();
    // Another thread must not be able to take it while we hold it.
    bool other_got_it = false;
    std::thread other([&mu, &other_got_it] {
      if (mu.TryLock()) {
        other_got_it = true;
        mu.Unlock();
      }
    });
    other.join();
    EXPECT_FALSE(other_got_it);
    mu.Unlock();
  }
  // Free again: a fresh thread succeeds and unlocks cleanly.
  bool winner_got_it = false;
  std::thread winner([&mu, &winner_got_it] {
    if (mu.TryLock()) {
      winner_got_it = true;
      mu.Unlock();
    }
  });
  winner.join();
  EXPECT_TRUE(winner_got_it);
}

TEST_F(MutexTest, CondVarHandsOffUnderLock) {
  Mutex mu(10, "cv-mu");
  CondVar cv;
  bool ready = false;    // guarded by mu
  bool consumed = false;  // guarded by mu
  std::thread consumer([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    mu.AssertHeld();  // the wait re-acquired the lock
    consumed = true;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.Signal();
  consumer.join();
  MutexLock lock(&mu);
  EXPECT_TRUE(consumed);
}

// The positive half of the rank-checker contract: nesting in strictly
// increasing rank order is legal, arbitrarily deep, and repeatable.
TEST_F(MutexTest, NestedAcquisitionInRankOrderIsClean) {
  Mutex outer(100, "outer");
  Mutex middle(200, "middle");
  Mutex inner(300, "inner");
  for (int round = 0; round < 3; ++round) {
    MutexLock a(&outer);
    MutexLock b(&middle);
    MutexLock c(&inner);
    outer.AssertHeld();
    middle.AssertHeld();
    inner.AssertHeld();
  }
}

// Rank order constrains *held* locks only: once a high-rank mutex is
// released, a lower-rank one may be taken next.
TEST_F(MutexTest, RankStateResetsOnRelease) {
  Mutex low(100, "low");
  Mutex high(200, "high");
  { MutexLock lock(&high); }
  { MutexLock lock(&low); }
  {
    MutexLock a(&low);
    MutexLock b(&high);
  }
}

// Waiting on the only held lock releases and re-acquires it through the
// rank bookkeeping without tripping the checker, repeatedly: after each
// wakeup the re-acquisition re-validates the rank order.
TEST_F(MutexTest, CondVarWaitPreservesRankDiscipline) {
  Mutex mu(200, "wait-mu");
  CondVar cv;
  int generation = 0;  // guarded by mu
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (generation < 2) cv.Wait(&mu);
    mu.AssertHeld();
  });
  for (int i = 0; i < 2; ++i) {
    {
      MutexLock lock(&mu);
      ++generation;
    }
    cv.SignalAll();
  }
  waiter.join();
}

using MutexDeathTest = MutexTest;

// Blocking in Wait with a second lock held parks the thread with that lock
// held for the whole (unbounded) wait — the deadlock shape the static
// `locks` checker rejects at analysis time. The runtime checker is the
// backstop for paths static analysis cannot see, and must abort at the
// wait site rather than letting the thread park.
TEST_F(MutexDeathTest, WaitWhileHoldingAnotherMutexAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex::SetRankCheckEnabled(true);
        Mutex outer(100, "wait-outer");
        Mutex inner(200, "wait-inner");
        CondVar cv;
        MutexLock a(&outer);
        MutexLock b(&inner);
        cv.Wait(&inner);  // lqs-verify: lock-ok(death test exercises abort)
      },
      "CondVar::Wait on \"wait-inner\" \\(rank 200\\) while holding");
}

TEST_F(MutexDeathTest, RankInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex::SetRankCheckEnabled(true);
        Mutex low(100, "low");
        Mutex high(200, "high");
        AcquireInOrder(&high, &low);  // 100 after 200: inversion
      },
      "lock-rank violation.*\"low\" \\(rank 100\\).*\"high\" \\(rank 200\\)");
}

TEST_F(MutexDeathTest, EqualRankNestingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex::SetRankCheckEnabled(true);
        Mutex a(100, "a");
        Mutex b(100, "b");
        // Equal ranks: the order between them is undeclared, so nesting
        // them in either direction is an inversion.
        AcquireInOrder(&a, &b);
      },
      "lock-rank violation");
}

TEST_F(MutexDeathTest, RecursiveAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex::SetRankCheckEnabled(true);
        Mutex mu(100, "recursive");
        AcquireTwice(&mu);  // lqs::Mutex is not reentrant
      },
      "recursive acquisition");
}

TEST_F(MutexDeathTest, AssertHeldAbortsWhenNotHeld) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex::SetRankCheckEnabled(true);
        Mutex mu(100, "unheld");
        mu.AssertHeld();
      },
      "AssertHeld failed");
}

}  // namespace
}  // namespace lqs
