// Behavior of the remote snapshot transport (src/remote/, DESIGN.md §10):
//  - LoopbackEndpoint answers polls from a trace and flags completion;
//  - PollingClient retries with exponential backoff on transport failures,
//    counts decode errors separately, filters duplicates and reordered
//    regressions so accepted snapshot timestamps are strictly increasing,
//    degrades (recoverably) after a consecutive-failure budget, and serves
//    held or interpolated data on stale ticks;
//  - the served view is clamped so counters never visibly regress, and
//    interpolation advances activity timestamps with the snapshot clock;
//  - snapshot deltas reassemble byte-exactly against the acked base, with
//    keyframe resync on any gap, and save most of the wire bytes;
//  - FaultInjectingEndpoint's drops/delays/duplicates/corruption never
//    wedge a session or break monotonicity;
//  - the ISSUE acceptance run: 64 monitored sessions over a lossy link
//    (drop=10%, delay up to 3 polling intervals, dup=5%, seeded) all
//    complete, each session's rendered snapshot timestamps are monotone,
//    and every final progress lands within 5 points of the fault-free run.

#include <cmath>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "monitor/monitor_service.h"
#include "optimizer/annotate.h"
#include "remote/endpoint.h"
#include "remote/fault_injection.h"
#include "remote/polling_client.h"
#include "remote/wire.h"
#include "tests/test_util.h"
#include "workload/plan_builder.h"

namespace lqs {
namespace testing {
namespace {

using namespace pb;  // NOLINT

// Endpoint that replays a scripted list of responses (then times out),
// recording every request it sees. Lets the tests pin down exact retry,
// filter and degradation behavior without probabilistic machinery.
class ScriptedEndpoint : public SnapshotEndpoint {
 public:
  using Step = std::function<PollResult(const PollRequest&)>;

  PollResult Poll(const PollRequest& request) override {
    requests.push_back(request);
    if (script.empty()) {
      PollResult timeout;
      timeout.status = Status::DeadlineExceeded("script exhausted");
      timeout.arrival_ms = request.deadline_ms;
      return timeout;
    }
    Step step = std::move(script.front());
    script.pop_front();
    return step(request);
  }

  std::deque<Step> script;
  std::vector<PollRequest> requests;
};

// One-operator snapshot at `time_ms` with `rows` output rows.
ProfileSnapshot TinySnapshot(double time_ms, uint64_t rows) {
  ProfileSnapshot snap;
  snap.time_ms = time_ms;
  snap.operators.resize(1);
  snap.operators[0].node_id = 0;
  snap.operators[0].row_count = rows;
  snap.operators[0].cpu_time_ms = time_ms;
  return snap;
}

// Like TinySnapshot, but the operator is visibly executing: opened, with
// activity-clock fields set the way the executor stamps them.
ProfileSnapshot ActiveSnapshot(double time_ms, uint64_t rows) {
  ProfileSnapshot snap = TinySnapshot(time_ms, rows);
  snap.operators[0].opened = true;
  snap.operators[0].open_time_ms = 1.0;
  snap.operators[0].last_active_ms = time_ms;
  return snap;
}

ScriptedEndpoint::Step Respond(ProfileSnapshot snap, bool complete = false) {
  return [snap, complete](const PollRequest& request) {
    PollResponse response;
    response.request_id = request.request_id;
    response.has_snapshot = true;
    response.query_complete = complete;
    response.snapshot = snap;
    PollResult result;
    EncodePollResponse(response, &result.frame);
    result.arrival_ms = request.now_ms;
    return result;
  };
}

ScriptedEndpoint::Step TimeOut() {
  return [](const PollRequest& request) {
    PollResult result;
    result.status = Status::DeadlineExceeded("scripted timeout");
    result.arrival_ms = request.deadline_ms;
    return result;
  };
}

ScriptedEndpoint::Step Garbage() {
  return [](const PollRequest& request) {
    PollResult result;
    result.status = Status::OK();  // link looks fine; bytes are trash
    result.frame = "not a frame";
    result.arrival_ms = request.now_ms;
    return result;
  };
}

TEST(LoopbackEndpointTest, ServesTraceSnapshotsAndCompletion) {
  ProfileTrace trace;
  trace.snapshots = {TinySnapshot(10, 100), TinySnapshot(20, 200)};
  trace.final_snapshot = TinySnapshot(30, 300);
  trace.total_elapsed_ms = 30;
  LoopbackEndpoint endpoint(&trace);
  EXPECT_DOUBLE_EQ(endpoint.KnownHorizonMs(), 30.0);

  auto poll = [&endpoint](double now) {
    PollRequest request;
    request.now_ms = now;
    request.deadline_ms = now + 50;
    PollResult result = endpoint.Poll(request);
    EXPECT_TRUE(result.status.ok());
    auto response = DecodePollResponse(result.frame);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.value();
  };

  PollResponse early = poll(5);  // before the first DMV sample
  EXPECT_FALSE(early.has_snapshot);

  PollResponse mid = poll(12);
  ASSERT_TRUE(mid.has_snapshot);
  EXPECT_FALSE(mid.query_complete);
  EXPECT_DOUBLE_EQ(mid.snapshot.time_ms, 10.0);

  PollResponse done = poll(31);
  ASSERT_TRUE(done.has_snapshot);
  EXPECT_TRUE(done.query_complete);
  EXPECT_EQ(done.snapshot.operators[0].row_count, 300u);
}

TEST(PollingClientTest, AcceptsFreshHoldsStaleAndCompletes) {
  ProfileTrace trace;
  trace.snapshots = {TinySnapshot(10, 100), TinySnapshot(20, 200)};
  trace.final_snapshot = TinySnapshot(30, 300);
  trace.total_elapsed_ms = 30;
  PollingClientOptions options;
  options.max_attempts = 1;
  PollingClient client(std::make_unique<LoopbackEndpoint>(&trace), options);

  const ClientView& v0 = client.Poll(5);  // server has nothing yet
  EXPECT_EQ(v0.snapshot, nullptr);
  EXPECT_FALSE(v0.stale);
  EXPECT_EQ(client.stats().failed_polls, 0u) << "no data != link failure";

  const ClientView& v1 = client.Poll(12);
  ASSERT_NE(v1.snapshot, nullptr);
  EXPECT_DOUBLE_EQ(v1.snapshot->time_ms, 10.0);
  EXPECT_FALSE(v1.stale);
  EXPECT_DOUBLE_EQ(v1.staleness_ms, 2.0);

  const ClientView& v2 = client.Poll(14);  // nothing new on the server
  ASSERT_NE(v2.snapshot, nullptr);
  EXPECT_DOUBLE_EQ(v2.snapshot->time_ms, 10.0);  // held
  EXPECT_TRUE(v2.stale);
  EXPECT_DOUBLE_EQ(v2.staleness_ms, 4.0);
  EXPECT_EQ(client.stats().duplicates_ignored, 1u);

  const ClientView& v3 = client.Poll(35);
  ASSERT_NE(v3.snapshot, nullptr);
  EXPECT_TRUE(v3.query_complete);
  EXPECT_TRUE(client.complete());
  ASSERT_NE(client.final_snapshot(), nullptr);
  EXPECT_EQ(client.final_snapshot()->operators[0].row_count, 300u);

  // Post-completion polls are served from memory, not the link.
  uint64_t polls_before = client.stats().polls;
  const ClientView& v4 = client.Poll(40);
  EXPECT_TRUE(v4.query_complete);
  EXPECT_FALSE(v4.stale) << "final counters are current truth, not stale";
  EXPECT_EQ(client.stats().polls, polls_before);
}

TEST(PollingClientTest, RetriesWithMonotoneBackoffThenAccepts) {
  auto scripted = std::make_unique<ScriptedEndpoint>();
  ScriptedEndpoint* endpoint = scripted.get();
  endpoint->script.push_back(TimeOut());
  endpoint->script.push_back(TimeOut());
  endpoint->script.push_back(Respond(TinySnapshot(7, 70)));

  PollingClientOptions options;
  options.max_attempts = 4;
  options.backoff_initial_ms = 10;
  options.backoff_multiplier = 2.0;
  options.jitter_fraction = 0.2;
  PollingClient client(std::move(scripted), options);

  const ClientView& view = client.Poll(100);
  ASSERT_NE(view.snapshot, nullptr);
  EXPECT_DOUBLE_EQ(view.snapshot->time_ms, 7.0);
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(client.stats().transport_failures, 2u);
  EXPECT_EQ(client.stats().accepted, 1u);
  EXPECT_EQ(view.consecutive_failures, 0);

  // The retries advanced virtual time by jittered exponential backoff:
  // attempt k+1 is at least (1 - jitter) * backoff_k after attempt k.
  ASSERT_EQ(endpoint->requests.size(), 3u);
  EXPECT_DOUBLE_EQ(endpoint->requests[0].now_ms, 100.0);
  double gap1 = endpoint->requests[1].now_ms - endpoint->requests[0].now_ms;
  double gap2 = endpoint->requests[2].now_ms - endpoint->requests[1].now_ms;
  EXPECT_GE(gap1, 10.0 * 0.8);
  EXPECT_LE(gap1, 10.0 * 1.2);
  EXPECT_GE(gap2, 20.0 * 0.8);
  EXPECT_LE(gap2, 20.0 * 1.2);
  // Every request respects its per-attempt deadline window.
  for (const PollRequest& r : endpoint->requests) {
    EXPECT_DOUBLE_EQ(r.deadline_ms - r.now_ms, options.timeout_ms);
  }
}

TEST(PollingClientTest, ArrivalPastDeadlineCountsAsTimeout) {
  auto scripted = std::make_unique<ScriptedEndpoint>();
  scripted->script.push_back([](const PollRequest& request) {
    PollResult result;  // bytes arrive, but after the client stopped waiting
    EncodePollResponse(PollResponse{}, &result.frame);
    result.arrival_ms = request.deadline_ms + 1;
    return result;
  });
  PollingClientOptions options;
  options.max_attempts = 1;
  PollingClient client(std::move(scripted), options);
  client.Poll(0);
  EXPECT_EQ(client.stats().transport_failures, 1u);
  EXPECT_EQ(client.stats().failed_polls, 1u);
}

TEST(PollingClientTest, RejectsRegressionsAndIgnoresDuplicates) {
  auto scripted = std::make_unique<ScriptedEndpoint>();
  scripted->script.push_back(Respond(TinySnapshot(20, 200)));
  scripted->script.push_back(Respond(TinySnapshot(10, 100)));  // reordered
  scripted->script.push_back(Respond(TinySnapshot(20, 200)));  // duplicate
  // Newer timestamp but counters ran backwards: not a later observation.
  scripted->script.push_back(Respond(TinySnapshot(25, 150)));
  scripted->script.push_back(Respond(TinySnapshot(30, 300)));

  PollingClientOptions options;
  options.max_attempts = 1;
  PollingClient client(std::move(scripted), options);

  EXPECT_DOUBLE_EQ(client.Poll(21).snapshot->time_ms, 20.0);
  const ClientView& stale1 = client.Poll(22);
  EXPECT_DOUBLE_EQ(stale1.snapshot->time_ms, 20.0);  // regression filtered
  EXPECT_TRUE(stale1.stale);
  const ClientView& stale2 = client.Poll(23);
  EXPECT_DOUBLE_EQ(stale2.snapshot->time_ms, 20.0);  // duplicate filtered
  const ClientView& stale3 = client.Poll(26);
  EXPECT_DOUBLE_EQ(stale3.snapshot->time_ms, 20.0);  // counter regression
  const ClientView& fresh = client.Poll(31);
  EXPECT_DOUBLE_EQ(fresh.snapshot->time_ms, 30.0);
  EXPECT_FALSE(fresh.stale);

  EXPECT_EQ(client.stats().accepted, 2u);
  EXPECT_EQ(client.stats().duplicates_ignored, 1u);
  EXPECT_EQ(client.stats().regressions_rejected, 2u);
}

TEST(PollingClientTest, RetryChasesFreshDataBehindStaleDelivery) {
  // First attempt of the poll yields a reordered stale response; the retry
  // budget is spent chasing, and the second attempt lands the fresh one.
  auto scripted = std::make_unique<ScriptedEndpoint>();
  scripted->script.push_back(Respond(TinySnapshot(20, 200)));
  scripted->script.push_back(Respond(TinySnapshot(10, 100)));  // stale first
  scripted->script.push_back(Respond(TinySnapshot(30, 300)));  // then fresh

  PollingClientOptions options;
  options.max_attempts = 2;
  PollingClient client(std::move(scripted), options);
  client.Poll(21);
  const ClientView& view = client.Poll(31);
  ASSERT_NE(view.snapshot, nullptr);
  EXPECT_DOUBLE_EQ(view.snapshot->time_ms, 30.0);
  EXPECT_FALSE(view.stale);
  EXPECT_EQ(client.stats().regressions_rejected, 1u);
}

TEST(PollingClientTest, DecodeErrorsDegradeThenOneResponseRecovers) {
  auto scripted = std::make_unique<ScriptedEndpoint>();
  ScriptedEndpoint* endpoint = scripted.get();
  for (int i = 0; i < 3; ++i) endpoint->script.push_back(Garbage());

  PollingClientOptions options;
  options.max_attempts = 1;
  options.degrade_after_failures = 3;
  PollingClient client(std::move(scripted), options);

  EXPECT_EQ(client.Poll(1).health, TransportHealth::kHealthy);
  EXPECT_EQ(client.Poll(2).health, TransportHealth::kHealthy);
  const ClientView& degraded = client.Poll(3);
  EXPECT_EQ(degraded.health, TransportHealth::kDegraded);
  EXPECT_EQ(degraded.consecutive_failures, 3);
  EXPECT_EQ(client.stats().decode_errors, 3u);
  EXPECT_EQ(client.stats().transport_failures, 0u)
      << "damaged bytes are decode errors, not transport failures";

  // Degraded is recoverable: one decodable response resets the budget.
  endpoint->script.push_back(Respond(TinySnapshot(4, 40)));
  const ClientView& recovered = client.Poll(4);
  EXPECT_EQ(recovered.health, TransportHealth::kHealthy);
  EXPECT_EQ(recovered.consecutive_failures, 0);
  ASSERT_NE(recovered.snapshot, nullptr);
  EXPECT_DOUBLE_EQ(recovered.snapshot->time_ms, 4.0);
}

TEST(PollingClientTest, HoldPolicyNeverFabricatesCounters) {
  auto scripted = std::make_unique<ScriptedEndpoint>();
  scripted->script.push_back(Respond(TinySnapshot(10, 100)));
  scripted->script.push_back(Respond(TinySnapshot(20, 200)));
  PollingClientOptions options;
  options.max_attempts = 1;  // script exhaustion -> timeouts afterwards
  PollingClient client(std::move(scripted), options);
  client.Poll(11);
  client.Poll(21);
  const ClientView& held = client.Poll(35);
  ASSERT_NE(held.snapshot, nullptr);
  EXPECT_TRUE(held.stale);
  EXPECT_DOUBLE_EQ(held.snapshot->time_ms, 20.0);
  EXPECT_EQ(held.snapshot->operators[0].row_count, 200u);
  EXPECT_DOUBLE_EQ(held.staleness_ms, 15.0);
}

TEST(PollingClientTest, InterpolatePolicyExtrapolatesCappedAtOneGap) {
  auto scripted = std::make_unique<ScriptedEndpoint>();
  scripted->script.push_back(Respond(TinySnapshot(10, 100)));
  scripted->script.push_back(Respond(TinySnapshot(20, 200)));
  PollingClientOptions options;
  options.max_attempts = 1;
  options.staleness_policy = StalenessPolicy::kInterpolate;
  PollingClient client(std::move(scripted), options);
  client.Poll(11);
  client.Poll(21);

  // Halfway into the observed 10 ms gap: counters advance at the observed
  // rate (100 rows / 10 ms).
  const ClientView& mid = client.Poll(25);
  ASSERT_NE(mid.snapshot, nullptr);
  EXPECT_TRUE(mid.stale);
  EXPECT_DOUBLE_EQ(mid.snapshot->time_ms, 25.0);
  EXPECT_EQ(mid.snapshot->operators[0].row_count, 250u);

  // Far past the gap: extrapolation is capped at one gap's worth, so a long
  // outage cannot run progress arbitrarily ahead of reality.
  const ClientView& capped = client.Poll(60);
  ASSERT_NE(capped.snapshot, nullptr);
  EXPECT_DOUBLE_EQ(capped.snapshot->time_ms, 30.0);
  EXPECT_EQ(capped.snapshot->operators[0].row_count, 300u);
}

// Regression test for the served-view clamp (§5 monotonicity). Under
// kInterpolate the client extrapolates past the last accepted snapshot; a
// late real snapshot that lands *below* the extrapolation is still accepted
// (it is genuinely newer data), but the SERVED view must not visibly run
// counters backwards. Pre-fix, the view dropped from the 300-row
// extrapolation to the 210-row reality — a dashboard watching this session
// saw progress regress.
TEST(PollingClientTest, ServedViewNeverRegressesAfterInterpolationOvershoot) {
  auto scripted = std::make_unique<ScriptedEndpoint>();
  ScriptedEndpoint* endpoint = scripted.get();
  endpoint->script.push_back(Respond(TinySnapshot(10, 100)));
  endpoint->script.push_back(Respond(TinySnapshot(20, 200)));
  endpoint->script.push_back(TimeOut());
  endpoint->script.push_back(Respond(TinySnapshot(25, 210)));  // late reality

  PollingClientOptions options;
  options.max_attempts = 1;
  options.staleness_policy = StalenessPolicy::kInterpolate;
  PollingClient client(std::move(scripted), options);

  client.Poll(11);
  client.Poll(21);
  // Outage tick: extrapolated one full gap ahead (the cap), 300 rows at 30.
  const ClientView& outage = client.Poll(30);
  ASSERT_NE(outage.snapshot, nullptr);
  EXPECT_TRUE(outage.stale);
  EXPECT_DOUBLE_EQ(outage.snapshot->time_ms, 30.0);
  EXPECT_EQ(outage.snapshot->operators[0].row_count, 300u);

  // The 25 ms / 210-row snapshot passes the accept filter (newer than 20,
  // counters >= 200) — but the served view holds the 300-row floor instead
  // of regressing.
  const ClientView& caught = client.Poll(31);
  ASSERT_NE(caught.snapshot, nullptr);
  EXPECT_FALSE(caught.stale);
  EXPECT_EQ(client.stats().accepted, 3u);
  EXPECT_GE(caught.snapshot->time_ms, 30.0);
  EXPECT_EQ(caught.snapshot->operators[0].row_count, 300u)
      << "served counters ran backwards after the overshoot";
  EXPECT_DOUBLE_EQ(caught.staleness_ms, 6.0)
      << "staleness is measured against the accepted snapshot, not the floor";

  // Once reality passes the floor, the view moves again.
  endpoint->script.push_back(Respond(TinySnapshot(40, 400)));
  const ClientView& moving = client.Poll(41);
  ASSERT_NE(moving.snapshot, nullptr);
  EXPECT_EQ(moving.snapshot->operators[0].row_count, 400u);
  EXPECT_DOUBLE_EQ(moving.snapshot->time_ms, 40.0);
}

// The interpolated snapshot must look self-consistent to the estimator: an
// operator whose counters were advanced is active *now*, so its activity
// clock moves with the interpolation instead of freezing at the last real
// snapshot (which would make the operator look idle for the whole outage).
TEST(PollingClientTest, InterpolationAdvancesActivityTimestamps) {
  auto scripted = std::make_unique<ScriptedEndpoint>();
  scripted->script.push_back(Respond(ActiveSnapshot(10, 100)));
  scripted->script.push_back(Respond(ActiveSnapshot(20, 200)));

  PollingClientOptions options;
  options.max_attempts = 1;
  options.staleness_policy = StalenessPolicy::kInterpolate;
  PollingClient client(std::move(scripted), options);
  client.Poll(11);
  client.Poll(21);

  const ClientView& mid = client.Poll(25);  // script exhausted -> timeout
  ASSERT_NE(mid.snapshot, nullptr);
  EXPECT_TRUE(mid.stale);
  EXPECT_DOUBLE_EQ(mid.snapshot->time_ms, 25.0);
  EXPECT_EQ(mid.snapshot->operators[0].row_count, 250u);
  EXPECT_DOUBLE_EQ(mid.snapshot->operators[0].last_active_ms, 25.0)
      << "an advancing operator's activity clock must follow interpolation";

  // Capped extrapolation keeps the invariant too: activity never leads the
  // snapshot's own clock.
  const ClientView& capped = client.Poll(60);
  ASSERT_NE(capped.snapshot, nullptr);
  for (const OperatorProfile& op : capped.snapshot->operators) {
    EXPECT_LE(op.last_active_ms, capped.snapshot->time_ms);
  }
  EXPECT_DOUBLE_EQ(capped.snapshot->operators[0].last_active_ms, 30.0);
}

TEST(PollingClientTest, CountsRequestIdMismatchesButKeepsLateData) {
  auto scripted = std::make_unique<ScriptedEndpoint>();
  ScriptedEndpoint* endpoint = scripted.get();
  // First response answers some other request id — a late or misrouted
  // delivery. The payload is real data and still flows through the recency
  // filter; the mismatch is counted, not fatal.
  endpoint->script.push_back([](const PollRequest& request) {
    PollResponse response;
    response.request_id = request.request_id + 1000;
    response.has_snapshot = true;
    response.snapshot = TinySnapshot(10, 100);
    PollResult result;
    EncodePollResponse(response, &result.frame);
    result.arrival_ms = request.now_ms;
    return result;
  });
  endpoint->script.push_back(Respond(TinySnapshot(20, 200)));

  PollingClientOptions options;
  options.max_attempts = 1;
  PollingClient client(std::move(scripted), options);

  const ClientView& first = client.Poll(11);
  ASSERT_NE(first.snapshot, nullptr);
  EXPECT_DOUBLE_EQ(first.snapshot->time_ms, 10.0);
  EXPECT_EQ(client.stats().request_id_mismatches, 1u);
  EXPECT_EQ(client.stats().accepted, 1u);
  EXPECT_EQ(client.stats().decode_errors, 0u)
      << "a mismatched id is not a decode failure";

  client.Poll(21);
  EXPECT_EQ(client.stats().request_id_mismatches, 1u);
  EXPECT_EQ(client.stats().accepted, 2u);
}

TEST(FaultInjectionTest, DelayedDeliveriesSurfaceAsRequestIdMismatches) {
  ProfileTrace trace;
  for (int i = 1; i <= 20; ++i) {
    trace.snapshots.push_back(
        TinySnapshot(i * 10.0, static_cast<uint64_t>(i) * 100));
  }
  trace.final_snapshot = TinySnapshot(210, 2100);
  trace.total_elapsed_ms = 210;

  FaultConfig faults;
  faults.delay_probability = 0.5;
  faults.max_delay_ms = 25.0;
  faults.seed = 11;
  auto lossy = std::make_unique<FaultInjectingEndpoint>(
      std::make_unique<LoopbackEndpoint>(&trace), faults);
  const FaultStats& fault_stats = lossy->fault_stats();

  PollingClientOptions options;
  options.timeout_ms = 5.0;
  options.max_attempts = 2;
  PollingClient client(std::move(lossy), options);
  double t = 0;
  for (int tick = 0; tick < 512 && !client.complete(); ++tick, t += 5.0) {
    client.Poll(t);
  }
  EXPECT_TRUE(client.complete());
  ASSERT_GT(fault_stats.late_delivered, 0u);
  // A delayed frame answers a request that has long since been retired, so
  // its request_id cannot match the one in flight.
  EXPECT_GT(client.stats().request_id_mismatches, 0u);
}

// The delta transport is invisible to the consumer: a client fed deltas
// (with periodic keyframes) serves byte-identical views to a client fed
// full snapshots, while receiving a fraction of the bytes.
TEST(PollingClientTest, DeltaTransportMatchesFullTransportAndSavesBytes) {
  std::unique_ptr<Catalog> catalog = MakeTestCatalog();
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog);
  ASSERT_OK(AnnotatePlan(&plan, *catalog, OptimizerOptions{}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  ExecutionResult result = MustExecute(plan, catalog.get(), exec);
  ASSERT_GT(result.trace.snapshots.size(), 4u);

  PollingClientOptions options;
  options.max_attempts = 1;
  PollingClient full_client(std::make_unique<LoopbackEndpoint>(&result.trace),
                            options);
  LoopbackOptions delta_serving;
  delta_serving.serve_deltas = true;
  delta_serving.keyframe_interval = 8;
  PollingClient delta_client(
      std::make_unique<LoopbackEndpoint>(&result.trace, delta_serving),
      options);

  double t = 0;
  for (int tick = 0; tick < 4096; ++tick, t += 2.0) {
    const ClientView& full_view = full_client.Poll(t);
    const ClientView& delta_view = delta_client.Poll(t);
    ASSERT_EQ(full_view.snapshot == nullptr, delta_view.snapshot == nullptr)
        << "t=" << t;
    if (full_view.snapshot != nullptr) {
      std::string full_bytes, delta_bytes;
      EncodeSnapshot(*full_view.snapshot, &full_bytes);
      EncodeSnapshot(*delta_view.snapshot, &delta_bytes);
      ASSERT_EQ(full_bytes, delta_bytes)
          << "served views diverged at t=" << t;
      EXPECT_EQ(full_view.query_complete, delta_view.query_complete);
    }
    if (full_client.complete() && delta_client.complete()) break;
  }
  ASSERT_TRUE(full_client.complete());
  ASSERT_TRUE(delta_client.complete());

  const ClientStats& full_stats = full_client.stats();
  const ClientStats& delta_stats = delta_client.stats();
  EXPECT_EQ(delta_stats.accepted, full_stats.accepted);
  EXPECT_GT(delta_stats.deltas_applied, 0u);
  EXPECT_EQ(delta_stats.delta_resyncs, 0u) << "lossless link never resyncs";
  EXPECT_EQ(full_stats.deltas_applied, 0u);
  EXPECT_GT(full_stats.bytes_received, 0u);
  // The headline property (the bench quantifies the exact ratio at scale):
  // the same accepted snapshots cost a fraction of the wire bytes.
  EXPECT_LT(delta_stats.bytes_received * 2, full_stats.bytes_received)
      << "delta=" << delta_stats.bytes_received
      << " full=" << full_stats.bytes_received;
}

// Deltas over a lossy link: lost and delayed responses force base
// mismatches; every one must resolve through the want_keyframe resync path
// — never corrupt reassembled state, never wedge the session.
TEST(FaultInjectionTest, DeltaTransportResyncsUnderLossAndStaysExact) {
  std::unique_ptr<Catalog> catalog = MakeTestCatalog();
  Plan plan = MustFinalize(HashAgg(Scan("t_big"), {2}, {Count()}), *catalog);
  ASSERT_OK(AnnotatePlan(&plan, *catalog, OptimizerOptions{}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 2.0;
  ExecutionResult result = MustExecute(plan, catalog.get(), exec);
  ASSERT_GT(result.trace.snapshots.size(), 4u);

  FaultConfig faults;
  faults.drop_probability = 0.2;
  faults.delay_probability = 0.3;
  faults.max_delay_ms = 10.0;
  faults.duplicate_probability = 0.1;
  faults.seed = 17;
  LoopbackOptions delta_serving;
  delta_serving.serve_deltas = true;
  delta_serving.keyframe_interval = 8;
  auto lossy = std::make_unique<FaultInjectingEndpoint>(
      std::make_unique<LoopbackEndpoint>(&result.trace, delta_serving),
      faults);

  PollingClientOptions options;
  options.timeout_ms = 3.0;
  options.max_attempts = 2;
  options.backoff_initial_ms = 1.0;
  PollingClient client(std::move(lossy), options);

  double last_seen = -1;
  double t = 0;
  for (int tick = 0; tick < 4096 && !client.complete(); ++tick, t += 2.0) {
    const ClientView& view = client.Poll(t);
    if (view.snapshot != nullptr) {
      EXPECT_GE(view.snapshot->time_ms, last_seen) << "t=" << t;
      last_seen = view.snapshot->time_ms;
    }
  }
  EXPECT_TRUE(client.complete()) << "delta session wedged under faults";
  ASSERT_NE(client.final_snapshot(), nullptr);
  // Byte-exact reassembly survived the fault mix: the final state equals
  // the trace's final snapshot bit for bit.
  std::string reassembled, truth;
  EncodeSnapshot(*client.final_snapshot(), &reassembled);
  EncodeSnapshot(result.trace.final_snapshot, &truth);
  EXPECT_EQ(reassembled, truth);
  EXPECT_GT(client.stats().deltas_applied, 0u);
  EXPECT_GT(client.stats().delta_resyncs, 0u)
      << "fault mix never forced a keyframe resync — weaken the faults or "
         "reseed so the resync path is actually exercised";
}

// A lossy link over a genuinely executed trace: whatever the fault mix does,
// the view's snapshot timestamps never move backwards and the client reaches
// the final snapshot (possibly after the nominal horizon).
TEST(FaultInjectionTest, SingleSessionStaysMonotoneAndCompletes) {
  std::unique_ptr<Catalog> catalog = MakeTestCatalog();
  Plan plan = MustFinalize(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog);
  ASSERT_OK(AnnotatePlan(&plan, *catalog, OptimizerOptions{}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 5.0;
  ExecutionResult result = MustExecute(plan, catalog.get(), exec);
  ASSERT_GT(result.trace.snapshots.size(), 3u);

  FaultConfig faults;
  faults.drop_probability = 0.3;
  faults.delay_probability = 0.3;
  faults.max_delay_ms = 15.0;
  faults.duplicate_probability = 0.2;
  faults.corrupt_probability = 0.2;
  faults.seed = 42;
  auto lossy = std::make_unique<FaultInjectingEndpoint>(
      std::make_unique<LoopbackEndpoint>(&result.trace), faults);
  const FaultStats& fault_stats = lossy->fault_stats();

  PollingClientOptions options;
  options.timeout_ms = 5.0;
  options.max_attempts = 3;
  options.backoff_initial_ms = 2.0;
  options.backoff_max_ms = 10.0;
  PollingClient client(std::move(lossy), options);

  double last_seen = -1;
  double t = 0;
  for (int tick = 0; tick < 4096 && !client.complete(); ++tick, t += 5.0) {
    const ClientView& view = client.Poll(t);
    if (view.snapshot != nullptr) {
      EXPECT_GE(view.snapshot->time_ms, last_seen) << "tick t=" << t;
      last_seen = view.snapshot->time_ms;
    }
  }
  EXPECT_TRUE(client.complete()) << "session wedged under fault injection";
  ASSERT_NE(client.final_snapshot(), nullptr);
  EXPECT_EQ(client.final_snapshot()->operators[0].row_count,
            result.trace.final_snapshot.operators[0].row_count);
  // The fault mix actually exercised every channel.
  EXPECT_GT(fault_stats.dropped, 0u);
  EXPECT_GT(fault_stats.delayed + fault_stats.late_delivered, 0u);
  EXPECT_GT(fault_stats.duplicated, 0u);
  EXPECT_GT(fault_stats.corrupted, 0u);
  EXPECT_GT(client.stats().decode_errors, 0u);
  EXPECT_GT(client.stats().transport_failures, 0u);
}

// The ISSUE acceptance run. 64 sessions over lossy links (drop=10%, delay up
// to 3 polling intervals, dup=5%, per-session seeds) against the identical
// fault-free setup:
//  - RunToCompletion leaves no session wedged (all reach kDone);
//  - each session's rendered snapshot timestamps are monotone;
//  - every session's final progress is within 5 points of fault-free.
TEST(RemoteMonitorTest, SixtyFourLossySessionsCompleteCloseToFaultFree) {
  std::unique_ptr<Catalog> catalog = MakeTestCatalog();
  constexpr double kIntervalMs = 5.0;

  std::vector<Plan> plans;
  plans.push_back(MustFinalize(
      HashJoin(JoinKind::kInner, Scan("t_small"), Scan("t_big"), {0}, {1}),
      *catalog));
  plans.push_back(MustFinalize(
      HashAgg(Scan("t_big"), {2}, {Count()}), *catalog));
  plans.push_back(MustFinalize(Sort(Scan("t_big"), {2}), *catalog));
  plans.push_back(MustFinalize(
      Filter(Scan("t_big"), ColCmp(2, CompareOp::kLt, 50)), *catalog));
  std::vector<ExecutionResult> traces;
  for (Plan& plan : plans) {
    ASSERT_OK(AnnotatePlan(&plan, *catalog, OptimizerOptions{}));
    ExecOptions exec;
    exec.snapshot_interval_ms = kIntervalMs;
    traces.push_back(MustExecute(plan, catalog.get(), exec));
    ASSERT_GT(traces.back().trace.snapshots.size(), 2u);
  }

  constexpr int kSessions = 64;
  PollingClientOptions client_options;
  client_options.timeout_ms = kIntervalMs;  // delays can outlive the wait
  client_options.max_attempts = 3;
  client_options.backoff_initial_ms = 1.0;
  client_options.backoff_max_ms = 4.0;

  // Runs the same 64-session layout over `make_endpoint`; returns final
  // progress per session after asserting completion and monotonicity.
  auto run = [&](const std::function<std::unique_ptr<SnapshotEndpoint>(
                     const ProfileTrace*, int)>& make_endpoint) {
    MonitorOptions monitor_options;
    monitor_options.num_threads = 4;
    monitor_options.ticks_per_horizon = 24;
    MonitorService monitor(monitor_options);
    for (int i = 0; i < kSessions; ++i) {
      const ExecutionResult& result = traces[i % traces.size()];
      PollingClientOptions per_session = client_options;
      per_session.jitter_seed = 1000 + static_cast<uint64_t>(i);
      std::string name = "q";
      name += std::to_string(i);
      monitor.RegisterRemoteSession(
          std::move(name), &plans[i % plans.size()], catalog.get(),
          make_endpoint(&result.trace, i),
          /*start_offset_ms=*/(i % 8) * 2 * kIntervalMs, per_session);
    }

    std::vector<double> last_snapshot_time(kSessions, -1);
    std::vector<double> final_progress(kSessions, 0);
    monitor.RunToCompletion(
        [&](double now_ms, const std::vector<SessionStatus>& statuses) {
          for (const SessionStatus& status : statuses) {
            EXPECT_TRUE(status.remote);
            final_progress[status.session_id] = status.progress;
            if (status.snapshot == nullptr) continue;
            EXPECT_GE(status.snapshot->time_ms,
                      last_snapshot_time[status.session_id])
                << "session " << status.session_id << " regressed at t="
                << now_ms;
            last_snapshot_time[status.session_id] = status.snapshot->time_ms;
          }
        });
    EXPECT_TRUE(monitor.AllSessionsDone()) << "a session wedged";
    MonitorStats stats = monitor.stats();
    EXPECT_EQ(stats.remote_sessions, static_cast<size_t>(kSessions));
    EXPECT_EQ(stats.done, static_cast<size_t>(kSessions));
    // No unfinished-session issues in the final verdict.
    ValidationReport report = monitor.FinalCheck();
    for (const ValidationIssue& issue : report.issues()) {
      EXPECT_NE(issue.check, "remote_session_incomplete")
          << issue.ToString();
    }
    return std::make_pair(final_progress, stats);
  };

  auto fault_free = run([](const ProfileTrace* trace, int) {
    return std::make_unique<LoopbackEndpoint>(trace);
  });

  FaultConfig faults;
  faults.drop_probability = 0.10;
  faults.delay_probability = 0.25;
  faults.max_delay_ms = 3 * kIntervalMs;
  faults.duplicate_probability = 0.05;
  auto lossy = run([&faults](const ProfileTrace* trace, int session) {
    FaultConfig config = faults;
    config.seed = 100 + static_cast<uint64_t>(session);
    return std::make_unique<FaultInjectingEndpoint>(
        std::make_unique<LoopbackEndpoint>(trace), config);
  });

  for (int i = 0; i < kSessions; ++i) {
    EXPECT_NEAR(lossy.first[i], fault_free.first[i], 0.05)
        << "session " << i << " finished too far from fault-free";
  }
  // The lossy run really was lossy, and the transport aggregates surfaced
  // it: retries happened, snapshots were accepted, nothing degraded by the
  // end of the run.
  EXPECT_GT(lossy.second.transport_failures, 0u);
  EXPECT_GT(lossy.second.transport_retries, 0u);
  EXPECT_GT(lossy.second.snapshots_accepted, 0u);
  EXPECT_GT(lossy.second.stale_reports, 0u);
  EXPECT_EQ(lossy.second.degraded_sessions, 0u);
  EXPECT_EQ(fault_free.second.transport_failures, 0u);
  EXPECT_EQ(fault_free.second.decode_errors, 0u);
}

// Local trace-backed sessions and remote loopback sessions of the same
// query agree on completion and final progress — the transport seam does
// not change what the monitor concludes.
TEST(RemoteMonitorTest, LoopbackSessionMatchesLocalSessionConclusions) {
  std::unique_ptr<Catalog> catalog = MakeTestCatalog();
  Plan plan = MustFinalize(HashAgg(Scan("t_big"), {2}, {Count()}), *catalog);
  ASSERT_OK(AnnotatePlan(&plan, *catalog, OptimizerOptions{}));
  ExecOptions exec;
  exec.snapshot_interval_ms = 5.0;
  ExecutionResult result = MustExecute(plan, catalog.get(), exec);

  MonitorService monitor;
  int local = monitor.RegisterSession("local", &plan, catalog.get(),
                                      &result.trace, /*start_offset_ms=*/0);
  int remote = monitor.RegisterRemoteSession(
      "remote", &plan, catalog.get(),
      std::make_unique<LoopbackEndpoint>(&result.trace),
      /*start_offset_ms=*/0);

  std::vector<SessionStatus> last;
  monitor.RunToCompletion(
      [&](double, const std::vector<SessionStatus>& statuses) {
        last = statuses;
      });
  ASSERT_EQ(last.size(), 2u);
  EXPECT_EQ(last[local].state, SessionState::kDone);
  EXPECT_EQ(last[remote].state, SessionState::kDone);
  EXPECT_FALSE(last[local].remote);
  EXPECT_TRUE(last[remote].remote);
  EXPECT_DOUBLE_EQ(last[local].progress, last[remote].progress);
  EXPECT_TRUE(monitor.FinalCheck().ok());
  const ClientStats& stats = monitor.session_client_stats(remote);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_EQ(stats.transport_failures, 0u);
}

}  // namespace
}  // namespace testing
}  // namespace lqs
