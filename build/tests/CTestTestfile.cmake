# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(operator_test "/root/repo/build/tests/operator_test")
set_tests_properties(operator_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;lqs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;13;lqs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pipeline_test "/root/repo/build/tests/pipeline_test")
set_tests_properties(pipeline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;14;lqs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bounds_test "/root/repo/build/tests/bounds_test")
set_tests_properties(bounds_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;lqs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(estimator_test "/root/repo/build/tests/estimator_test")
set_tests_properties(estimator_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;16;lqs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;17;lqs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;lqs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(expr_test "/root/repo/build/tests/expr_test")
set_tests_properties(expr_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;lqs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(plan_test "/root/repo/build/tests/plan_test")
set_tests_properties(plan_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;20;lqs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;lqs_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_sweep_test "/root/repo/build/tests/property_sweep_test")
set_tests_properties(property_sweep_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;lqs_add_test;/root/repo/tests/CMakeLists.txt;0;")
