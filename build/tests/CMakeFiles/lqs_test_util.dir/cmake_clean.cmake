file(REMOVE_RECURSE
  "CMakeFiles/lqs_test_util.dir/test_util.cc.o"
  "CMakeFiles/lqs_test_util.dir/test_util.cc.o.d"
  "liblqs_test_util.a"
  "liblqs_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqs_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
