# Empty compiler generated dependencies file for lqs_test_util.
# This may be replaced when dependencies are built.
