file(REMOVE_RECURSE
  "liblqs_test_util.a"
)
