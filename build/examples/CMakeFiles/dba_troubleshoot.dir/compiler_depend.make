# Empty compiler generated dependencies file for dba_troubleshoot.
# This may be replaced when dependencies are built.
