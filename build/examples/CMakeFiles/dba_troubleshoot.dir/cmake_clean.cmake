file(REMOVE_RECURSE
  "CMakeFiles/dba_troubleshoot.dir/dba_troubleshoot.cpp.o"
  "CMakeFiles/dba_troubleshoot.dir/dba_troubleshoot.cpp.o.d"
  "dba_troubleshoot"
  "dba_troubleshoot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_troubleshoot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
