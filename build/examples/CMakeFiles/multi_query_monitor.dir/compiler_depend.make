# Empty compiler generated dependencies file for multi_query_monitor.
# This may be replaced when dependencies are built.
