file(REMOVE_RECURSE
  "CMakeFiles/multi_query_monitor.dir/multi_query_monitor.cpp.o"
  "CMakeFiles/multi_query_monitor.dir/multi_query_monitor.cpp.o.d"
  "multi_query_monitor"
  "multi_query_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_query_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
