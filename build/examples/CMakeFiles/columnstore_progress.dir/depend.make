# Empty dependencies file for columnstore_progress.
# This may be replaced when dependencies are built.
