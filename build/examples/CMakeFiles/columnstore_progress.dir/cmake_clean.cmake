file(REMOVE_RECURSE
  "CMakeFiles/columnstore_progress.dir/columnstore_progress.cpp.o"
  "CMakeFiles/columnstore_progress.dir/columnstore_progress.cpp.o.d"
  "columnstore_progress"
  "columnstore_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/columnstore_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
