# Empty dependencies file for fig16_weights.
# This may be replaced when dependencies are built.
