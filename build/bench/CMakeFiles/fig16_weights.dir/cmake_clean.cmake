file(REMOVE_RECURSE
  "CMakeFiles/fig16_weights.dir/fig16_weights.cc.o"
  "CMakeFiles/fig16_weights.dir/fig16_weights.cc.o.d"
  "fig16_weights"
  "fig16_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
