file(REMOVE_RECURSE
  "CMakeFiles/fig18_columnstore.dir/fig18_columnstore.cc.o"
  "CMakeFiles/fig18_columnstore.dir/fig18_columnstore.cc.o.d"
  "fig18_columnstore"
  "fig18_columnstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_columnstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
