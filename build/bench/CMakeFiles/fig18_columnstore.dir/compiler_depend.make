# Empty compiler generated dependencies file for fig18_columnstore.
# This may be replaced when dependencies are built.
