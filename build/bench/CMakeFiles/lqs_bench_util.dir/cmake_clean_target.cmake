file(REMOVE_RECURSE
  "../lib/liblqs_bench_util.a"
)
