file(REMOVE_RECURSE
  "../lib/liblqs_bench_util.a"
  "../lib/liblqs_bench_util.pdb"
  "CMakeFiles/lqs_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/lqs_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqs_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
