# Empty dependencies file for lqs_bench_util.
# This may be replaced when dependencies are built.
