file(REMOVE_RECURSE
  "CMakeFiles/fig19_operator_mix.dir/fig19_operator_mix.cc.o"
  "CMakeFiles/fig19_operator_mix.dir/fig19_operator_mix.cc.o.d"
  "fig19_operator_mix"
  "fig19_operator_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_operator_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
