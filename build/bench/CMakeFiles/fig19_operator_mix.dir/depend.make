# Empty dependencies file for fig19_operator_mix.
# This may be replaced when dependencies are built.
