file(REMOVE_RECURSE
  "CMakeFiles/fig11_blocking_model.dir/fig11_blocking_model.cc.o"
  "CMakeFiles/fig11_blocking_model.dir/fig11_blocking_model.cc.o.d"
  "fig11_blocking_model"
  "fig11_blocking_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_blocking_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
