# Empty dependencies file for fig11_blocking_model.
# This may be replaced when dependencies are built.
