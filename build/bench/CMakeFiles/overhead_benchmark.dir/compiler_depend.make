# Empty compiler generated dependencies file for overhead_benchmark.
# This may be replaced when dependencies are built.
