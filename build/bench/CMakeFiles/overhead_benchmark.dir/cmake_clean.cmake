file(REMOVE_RECURSE
  "CMakeFiles/overhead_benchmark.dir/overhead_benchmark.cc.o"
  "CMakeFiles/overhead_benchmark.dir/overhead_benchmark.cc.o.d"
  "overhead_benchmark"
  "overhead_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
