# Empty dependencies file for fig20_columnstore_by_operator.
# This may be replaced when dependencies are built.
