file(REMOVE_RECURSE
  "CMakeFiles/fig20_columnstore_by_operator.dir/fig20_columnstore_by_operator.cc.o"
  "CMakeFiles/fig20_columnstore_by_operator.dir/fig20_columnstore_by_operator.cc.o.d"
  "fig20_columnstore_by_operator"
  "fig20_columnstore_by_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_columnstore_by_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
