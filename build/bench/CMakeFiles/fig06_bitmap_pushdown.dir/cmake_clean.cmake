file(REMOVE_RECURSE
  "CMakeFiles/fig06_bitmap_pushdown.dir/fig06_bitmap_pushdown.cc.o"
  "CMakeFiles/fig06_bitmap_pushdown.dir/fig06_bitmap_pushdown.cc.o.d"
  "fig06_bitmap_pushdown"
  "fig06_bitmap_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_bitmap_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
