# Empty dependencies file for fig06_bitmap_pushdown.
# This may be replaced when dependencies are built.
