# Empty compiler generated dependencies file for fig08_semiblocking_lag.
# This may be replaced when dependencies are built.
