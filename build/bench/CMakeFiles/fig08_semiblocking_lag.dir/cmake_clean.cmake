file(REMOVE_RECURSE
  "CMakeFiles/fig08_semiblocking_lag.dir/fig08_semiblocking_lag.cc.o"
  "CMakeFiles/fig08_semiblocking_lag.dir/fig08_semiblocking_lag.cc.o.d"
  "fig08_semiblocking_lag"
  "fig08_semiblocking_lag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_semiblocking_lag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
