file(REMOVE_RECURSE
  "CMakeFiles/fig13_error_metric.dir/fig13_error_metric.cc.o"
  "CMakeFiles/fig13_error_metric.dir/fig13_error_metric.cc.o.d"
  "fig13_error_metric"
  "fig13_error_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_error_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
