
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig13_error_metric.cc" "bench/CMakeFiles/fig13_error_metric.dir/fig13_error_metric.cc.o" "gcc" "bench/CMakeFiles/fig13_error_metric.dir/fig13_error_metric.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/lqs_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lqs/CMakeFiles/lqs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lqs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/lqs_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/lqs_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lqs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
