# Empty dependencies file for fig13_error_metric.
# This may be replaced when dependencies are built.
