file(REMOVE_RECURSE
  "CMakeFiles/fig17_blocking.dir/fig17_blocking.cc.o"
  "CMakeFiles/fig17_blocking.dir/fig17_blocking.cc.o.d"
  "fig17_blocking"
  "fig17_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
