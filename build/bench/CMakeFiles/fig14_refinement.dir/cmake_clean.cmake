file(REMOVE_RECURSE
  "CMakeFiles/fig14_refinement.dir/fig14_refinement.cc.o"
  "CMakeFiles/fig14_refinement.dir/fig14_refinement.cc.o.d"
  "fig14_refinement"
  "fig14_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
