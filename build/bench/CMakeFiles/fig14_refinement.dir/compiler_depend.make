# Empty compiler generated dependencies file for fig14_refinement.
# This may be replaced when dependencies are built.
