file(REMOVE_RECURSE
  "CMakeFiles/fig15_refinement_by_operator.dir/fig15_refinement_by_operator.cc.o"
  "CMakeFiles/fig15_refinement_by_operator.dir/fig15_refinement_by_operator.cc.o.d"
  "fig15_refinement_by_operator"
  "fig15_refinement_by_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_refinement_by_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
