# Empty compiler generated dependencies file for fig15_refinement_by_operator.
# This may be replaced when dependencies are built.
