# Empty compiler generated dependencies file for fig12_weights_curve.
# This may be replaced when dependencies are built.
