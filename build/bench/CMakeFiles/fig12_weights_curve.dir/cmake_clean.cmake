file(REMOVE_RECURSE
  "CMakeFiles/fig12_weights_curve.dir/fig12_weights_curve.cc.o"
  "CMakeFiles/fig12_weights_curve.dir/fig12_weights_curve.cc.o.d"
  "fig12_weights_curve"
  "fig12_weights_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_weights_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
