
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/agg_ops.cc" "src/exec/CMakeFiles/lqs_exec.dir/agg_ops.cc.o" "gcc" "src/exec/CMakeFiles/lqs_exec.dir/agg_ops.cc.o.d"
  "/root/repo/src/exec/builder.cc" "src/exec/CMakeFiles/lqs_exec.dir/builder.cc.o" "gcc" "src/exec/CMakeFiles/lqs_exec.dir/builder.cc.o.d"
  "/root/repo/src/exec/exchange_ops.cc" "src/exec/CMakeFiles/lqs_exec.dir/exchange_ops.cc.o" "gcc" "src/exec/CMakeFiles/lqs_exec.dir/exchange_ops.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/lqs_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/lqs_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/exec/CMakeFiles/lqs_exec.dir/expr.cc.o" "gcc" "src/exec/CMakeFiles/lqs_exec.dir/expr.cc.o.d"
  "/root/repo/src/exec/join_ops.cc" "src/exec/CMakeFiles/lqs_exec.dir/join_ops.cc.o" "gcc" "src/exec/CMakeFiles/lqs_exec.dir/join_ops.cc.o.d"
  "/root/repo/src/exec/plan.cc" "src/exec/CMakeFiles/lqs_exec.dir/plan.cc.o" "gcc" "src/exec/CMakeFiles/lqs_exec.dir/plan.cc.o.d"
  "/root/repo/src/exec/row_ops.cc" "src/exec/CMakeFiles/lqs_exec.dir/row_ops.cc.o" "gcc" "src/exec/CMakeFiles/lqs_exec.dir/row_ops.cc.o.d"
  "/root/repo/src/exec/scan_ops.cc" "src/exec/CMakeFiles/lqs_exec.dir/scan_ops.cc.o" "gcc" "src/exec/CMakeFiles/lqs_exec.dir/scan_ops.cc.o.d"
  "/root/repo/src/exec/sort_ops.cc" "src/exec/CMakeFiles/lqs_exec.dir/sort_ops.cc.o" "gcc" "src/exec/CMakeFiles/lqs_exec.dir/sort_ops.cc.o.d"
  "/root/repo/src/exec/spool_ops.cc" "src/exec/CMakeFiles/lqs_exec.dir/spool_ops.cc.o" "gcc" "src/exec/CMakeFiles/lqs_exec.dir/spool_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lqs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lqs_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
