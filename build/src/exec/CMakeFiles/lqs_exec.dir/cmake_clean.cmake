file(REMOVE_RECURSE
  "CMakeFiles/lqs_exec.dir/agg_ops.cc.o"
  "CMakeFiles/lqs_exec.dir/agg_ops.cc.o.d"
  "CMakeFiles/lqs_exec.dir/builder.cc.o"
  "CMakeFiles/lqs_exec.dir/builder.cc.o.d"
  "CMakeFiles/lqs_exec.dir/exchange_ops.cc.o"
  "CMakeFiles/lqs_exec.dir/exchange_ops.cc.o.d"
  "CMakeFiles/lqs_exec.dir/executor.cc.o"
  "CMakeFiles/lqs_exec.dir/executor.cc.o.d"
  "CMakeFiles/lqs_exec.dir/expr.cc.o"
  "CMakeFiles/lqs_exec.dir/expr.cc.o.d"
  "CMakeFiles/lqs_exec.dir/join_ops.cc.o"
  "CMakeFiles/lqs_exec.dir/join_ops.cc.o.d"
  "CMakeFiles/lqs_exec.dir/plan.cc.o"
  "CMakeFiles/lqs_exec.dir/plan.cc.o.d"
  "CMakeFiles/lqs_exec.dir/row_ops.cc.o"
  "CMakeFiles/lqs_exec.dir/row_ops.cc.o.d"
  "CMakeFiles/lqs_exec.dir/scan_ops.cc.o"
  "CMakeFiles/lqs_exec.dir/scan_ops.cc.o.d"
  "CMakeFiles/lqs_exec.dir/sort_ops.cc.o"
  "CMakeFiles/lqs_exec.dir/sort_ops.cc.o.d"
  "CMakeFiles/lqs_exec.dir/spool_ops.cc.o"
  "CMakeFiles/lqs_exec.dir/spool_ops.cc.o.d"
  "liblqs_exec.a"
  "liblqs_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqs_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
