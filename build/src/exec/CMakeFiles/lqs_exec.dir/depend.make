# Empty dependencies file for lqs_exec.
# This may be replaced when dependencies are built.
