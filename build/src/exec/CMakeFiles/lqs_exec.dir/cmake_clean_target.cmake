file(REMOVE_RECURSE
  "liblqs_exec.a"
)
