file(REMOVE_RECURSE
  "liblqs_common.a"
)
