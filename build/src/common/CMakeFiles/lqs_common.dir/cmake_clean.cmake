file(REMOVE_RECURSE
  "CMakeFiles/lqs_common.dir/comparison.cc.o"
  "CMakeFiles/lqs_common.dir/comparison.cc.o.d"
  "CMakeFiles/lqs_common.dir/op_type.cc.o"
  "CMakeFiles/lqs_common.dir/op_type.cc.o.d"
  "CMakeFiles/lqs_common.dir/rng.cc.o"
  "CMakeFiles/lqs_common.dir/rng.cc.o.d"
  "CMakeFiles/lqs_common.dir/status.cc.o"
  "CMakeFiles/lqs_common.dir/status.cc.o.d"
  "CMakeFiles/lqs_common.dir/value.cc.o"
  "CMakeFiles/lqs_common.dir/value.cc.o.d"
  "liblqs_common.a"
  "liblqs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
