# Empty dependencies file for lqs_common.
# This may be replaced when dependencies are built.
