file(REMOVE_RECURSE
  "liblqs_core.a"
)
