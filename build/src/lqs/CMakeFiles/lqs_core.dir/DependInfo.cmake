
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lqs/bounds.cc" "src/lqs/CMakeFiles/lqs_core.dir/bounds.cc.o" "gcc" "src/lqs/CMakeFiles/lqs_core.dir/bounds.cc.o.d"
  "/root/repo/src/lqs/estimator.cc" "src/lqs/CMakeFiles/lqs_core.dir/estimator.cc.o" "gcc" "src/lqs/CMakeFiles/lqs_core.dir/estimator.cc.o.d"
  "/root/repo/src/lqs/feedback.cc" "src/lqs/CMakeFiles/lqs_core.dir/feedback.cc.o" "gcc" "src/lqs/CMakeFiles/lqs_core.dir/feedback.cc.o.d"
  "/root/repo/src/lqs/metrics.cc" "src/lqs/CMakeFiles/lqs_core.dir/metrics.cc.o" "gcc" "src/lqs/CMakeFiles/lqs_core.dir/metrics.cc.o.d"
  "/root/repo/src/lqs/pipeline.cc" "src/lqs/CMakeFiles/lqs_core.dir/pipeline.cc.o" "gcc" "src/lqs/CMakeFiles/lqs_core.dir/pipeline.cc.o.d"
  "/root/repo/src/lqs/trace_csv.cc" "src/lqs/CMakeFiles/lqs_core.dir/trace_csv.cc.o" "gcc" "src/lqs/CMakeFiles/lqs_core.dir/trace_csv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/lqs_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/lqs_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lqs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
