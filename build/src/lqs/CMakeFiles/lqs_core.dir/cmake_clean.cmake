file(REMOVE_RECURSE
  "CMakeFiles/lqs_core.dir/bounds.cc.o"
  "CMakeFiles/lqs_core.dir/bounds.cc.o.d"
  "CMakeFiles/lqs_core.dir/estimator.cc.o"
  "CMakeFiles/lqs_core.dir/estimator.cc.o.d"
  "CMakeFiles/lqs_core.dir/feedback.cc.o"
  "CMakeFiles/lqs_core.dir/feedback.cc.o.d"
  "CMakeFiles/lqs_core.dir/metrics.cc.o"
  "CMakeFiles/lqs_core.dir/metrics.cc.o.d"
  "CMakeFiles/lqs_core.dir/pipeline.cc.o"
  "CMakeFiles/lqs_core.dir/pipeline.cc.o.d"
  "CMakeFiles/lqs_core.dir/trace_csv.cc.o"
  "CMakeFiles/lqs_core.dir/trace_csv.cc.o.d"
  "liblqs_core.a"
  "liblqs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
