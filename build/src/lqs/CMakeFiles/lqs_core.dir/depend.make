# Empty dependencies file for lqs_core.
# This may be replaced when dependencies are built.
