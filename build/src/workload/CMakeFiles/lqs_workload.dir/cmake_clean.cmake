file(REMOVE_RECURSE
  "CMakeFiles/lqs_workload.dir/real.cc.o"
  "CMakeFiles/lqs_workload.dir/real.cc.o.d"
  "CMakeFiles/lqs_workload.dir/tpcds.cc.o"
  "CMakeFiles/lqs_workload.dir/tpcds.cc.o.d"
  "CMakeFiles/lqs_workload.dir/tpch.cc.o"
  "CMakeFiles/lqs_workload.dir/tpch.cc.o.d"
  "CMakeFiles/lqs_workload.dir/workload_common.cc.o"
  "CMakeFiles/lqs_workload.dir/workload_common.cc.o.d"
  "liblqs_workload.a"
  "liblqs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
