file(REMOVE_RECURSE
  "liblqs_workload.a"
)
