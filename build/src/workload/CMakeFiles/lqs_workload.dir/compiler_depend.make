# Empty compiler generated dependencies file for lqs_workload.
# This may be replaced when dependencies are built.
