# Empty compiler generated dependencies file for lqs_storage.
# This may be replaced when dependencies are built.
