file(REMOVE_RECURSE
  "liblqs_storage.a"
)
