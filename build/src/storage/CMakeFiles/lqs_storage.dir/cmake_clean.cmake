file(REMOVE_RECURSE
  "CMakeFiles/lqs_storage.dir/catalog.cc.o"
  "CMakeFiles/lqs_storage.dir/catalog.cc.o.d"
  "CMakeFiles/lqs_storage.dir/columnstore.cc.o"
  "CMakeFiles/lqs_storage.dir/columnstore.cc.o.d"
  "CMakeFiles/lqs_storage.dir/schema.cc.o"
  "CMakeFiles/lqs_storage.dir/schema.cc.o.d"
  "CMakeFiles/lqs_storage.dir/statistics.cc.o"
  "CMakeFiles/lqs_storage.dir/statistics.cc.o.d"
  "CMakeFiles/lqs_storage.dir/table.cc.o"
  "CMakeFiles/lqs_storage.dir/table.cc.o.d"
  "liblqs_storage.a"
  "liblqs_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqs_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
