file(REMOVE_RECURSE
  "liblqs_optimizer.a"
)
