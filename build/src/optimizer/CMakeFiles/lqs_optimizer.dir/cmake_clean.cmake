file(REMOVE_RECURSE
  "CMakeFiles/lqs_optimizer.dir/annotate.cc.o"
  "CMakeFiles/lqs_optimizer.dir/annotate.cc.o.d"
  "liblqs_optimizer.a"
  "liblqs_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqs_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
