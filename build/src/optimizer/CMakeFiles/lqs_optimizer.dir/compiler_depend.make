# Empty compiler generated dependencies file for lqs_optimizer.
# This may be replaced when dependencies are built.
