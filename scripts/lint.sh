#!/usr/bin/env bash
# Repo-specific lint gate. Runs everywhere (plain bash + grep); picks up
# clang-format / clang-tidy when installed, skips them with a notice when
# not. Exits non-zero on any violation.
#
#   scripts/lint.sh            # all custom rules + format check if available
#   LINT_STRICT_FORMAT=1 scripts/lint.sh   # formatting violations are fatal
#
# Rules enforced (see DESIGN.md §7):
#   1. Include guards must be derived from the file path:
#        src/lqs/bounds.h   -> LQS_LQS_BOUNDS_H_
#        tests/test_util.h  -> LQS_TESTS_TEST_UTIL_H_
#   2. No naked assert() in src/ outside the validator layer and the
#      documented primitive allowlist — invariants belong in Status-returning
#      checks (src/analysis/) that stay loud in Release builds.
#   3. No floating-point ==/!= comparisons in estimator/analysis/monitor/
#      transport code (src/lqs/, src/analysis/, src/monitor/, src/remote/):
#      progress arithmetic must compare against tolerances. Suppress a
#      deliberate exact comparison with `// lint:allow-float-eq` on the
#      same line.
#   4. No raw std mutex/lock/condvar types in src/ outside the annotated
#      primitive layer (src/common/mutex.{h,cc}): std::mutex cannot carry
#      Clang capability attributes, so raw uses are invisible to the
#      -Wthread-safety gate and skip the lqs::Mutex lock-rank checker
#      (DESIGN.md §9). Suppress a deliberate use with
#      `// lint:allow-raw-mutex` on the same line.
#   5. clang-format conformance (informational unless LINT_STRICT_FORMAT=1).
#   6. tools/lqs_verify: Status-discipline, LQS_NOALLOC allocation-freedom,
#      layer-DAG, lock-discipline, and determinism checks over the whole
#      tree (DESIGN.md §12, §14). Needs only python3; skipped with a notice
#      when absent.
#   7. No wall-clock / entropy sources in src/ outside the sanctioned
#      wrappers (src/common/rng.{h,cc}, src/common/virtual_clock.h):
#      <chrono>/<ctime>/<random> includes and time() calls feed
#      nondeterminism the LQS_DETERMINISTIC contract (DESIGN.md §14) must
#      never see. Suppress a justified telemetry-only use with
#      `// lint:allow-wallclock` on the same line.
#
# Every rule always runs; the script exits non-zero if ANY of them failed
# (the failure count aggregates — one broken rule never masks another).

set -u
cd "$(dirname "$0")/.."

failures=0
fail() {
  echo "lint: $*" >&2
  failures=$((failures + 1))
}

# ---- 1. Include guards ----------------------------------------------------
while IFS= read -r header; do
  rel="${header#./}"
  case "$rel" in
    src/*) stem="${rel#src/}" ;;
    *)     stem="$rel" ;;
  esac
  guard="LQS_$(echo "${stem%.h}_H_" | tr 'a-z/.-' 'A-Z___')"
  if ! grep -q "^#ifndef ${guard}\$" "$rel" ||
     ! grep -q "^#define ${guard}\$" "$rel"; then
    fail "$rel: include guard must be ${guard}"
  fi
done < <(find src tests bench -name '*.h' -type f)

# ---- 2. Naked asserts in src/ ---------------------------------------------
# Allowlist: low-level primitives whose documented preconditions are checked
# with assert by design (constructing a StatusOr from OK, RNG range misuse).
assert_allowlist='^src/common/statusor\.h$|^src/common/rng\.cc$'
while IFS=: read -r file line _; do
  if ! echo "$file" | grep -Eq "$assert_allowlist"; then
    fail "$file:$line: naked assert() in src/ — return a Status (or move the check into src/analysis/)"
  fi
done < <(grep -rnE '(^|[^_[:alnum:]])assert\(' src --include='*.cc' --include='*.h' | grep -v 'static_assert')

# ---- 3. Floating-point equality in estimator code -------------------------
# Heuristic: ==/!= against a floating literal, or between est_*/progress/
# *_ms/alpha/weight-style identifiers known to be double in this codebase.
float_eq_pattern='(==|!=)[[:space:]]*[0-9]+\.[0-9]|[0-9]+\.[0-9]+[[:space:]]*(==|!=)|(est_rows|est_cpu_ms|est_io_ms|est_rebinds|_progress|alpha|n_hat)(\[[^][]*\])?[[:space:]]*(==|!=)|(==|!=)[[:space:]]*[A-Za-z_.]*(est_rows|est_cpu_ms|est_io_ms|est_rebinds|_progress|n_hat)'
while IFS=: read -r file line text; do
  case "$text" in
    *'lint:allow-float-eq'*) continue ;;
  esac
  fail "$file:$line: floating-point ==/!= in estimator code — compare against a tolerance"
done < <(grep -rnE "$float_eq_pattern" src/lqs src/analysis src/monitor src/remote --include='*.cc' --include='*.h')

# ---- 4. Raw std mutex primitives in src/ ----------------------------------
# The annotated wrappers in src/common/mutex.h are the only place the std
# primitives may appear; everything else must use lqs::Mutex / lqs::MutexLock
# / lqs::CondVar so the clang thread-safety analysis and the lock-rank
# checker see every critical section.
raw_mutex_pattern='std::(recursive_mutex|recursive_timed_mutex|timed_mutex|shared_mutex|shared_timed_mutex|mutex|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable_any|condition_variable)'
raw_mutex_allowlist='^src/common/mutex\.(h|cc)$'
while IFS=: read -r file line text; do
  if echo "$file" | grep -Eq "$raw_mutex_allowlist"; then
    continue
  fi
  case "$text" in
    *'lint:allow-raw-mutex'*) continue ;;
  esac
  fail "$file:$line: raw std mutex primitive in src/ — use lqs::Mutex/MutexLock/CondVar from common/mutex.h (or suppress with // lint:allow-raw-mutex)"
done < <(grep -rnE "$raw_mutex_pattern" src --include='*.cc' --include='*.h')

# ---- 7. Wall-clock / entropy sources in src/ -------------------------------
# Deterministic outputs are a checked property (lqs-verify `determinism`,
# DESIGN.md §14); the sanctioned sources are seeded lqs::Rng and
# VirtualClock. A <chrono>/<ctime>/<random> include or a time() call
# anywhere else in src/ smuggles nondeterminism in below the call-graph
# checker's sight line, so the include itself is the violation.
wallclock_pattern='#include <(chrono|ctime|random)>|(^|[^_[:alnum:]])time\('
wallclock_allowlist='^src/common/(rng\.(h|cc)|virtual_clock\.h)$'
while IFS=: read -r file line text; do
  if echo "$file" | grep -Eq "$wallclock_allowlist"; then
    continue
  fi
  case "$text" in
    *'lint:allow-wallclock'*) continue ;;
  esac
  fail "$file:$line: wall-clock/entropy source in src/ — use VirtualClock or seeded lqs::Rng (or suppress with // lint:allow-wallclock)"
done < <(grep -rnE "$wallclock_pattern" src --include='*.cc' --include='*.h')

# ---- 5. clang-format (when installed) -------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  fmt_out=$(find src tests bench examples \
              \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -type f \
              -exec clang-format --dry-run {} + 2>&1)
  if [ -n "$fmt_out" ]; then
    echo "$fmt_out" | head -40 >&2
    if [ "${LINT_STRICT_FORMAT:-0}" = "1" ]; then
      fail "clang-format reported violations (strict mode)"
    else
      echo "lint: NOTE: clang-format reported violations (informational;" \
           "set LINT_STRICT_FORMAT=1 to make fatal)" >&2
    fi
  fi
else
  echo "lint: clang-format not installed; skipping format check" >&2
fi

# ---- 6. lqs-verify static analysis ----------------------------------------
# Call-graph checks: Status results must be consulted, LQS_NOALLOC functions
# must stay allocation-free through every non-virtual chain, and the src/
# layer DAG must hold. The built-in frontend needs nothing beyond python3.
if command -v python3 >/dev/null 2>&1; then
  if ! python3 tools/lqs_verify/lqs_verify.py --root .; then
    fail "lqs-verify reported findings (detail above)"
  fi
else
  echo "lint: python3 not installed; skipping lqs-verify" >&2
fi

# ---------------------------------------------------------------------------
if [ "$failures" -gt 0 ]; then
  echo "lint: FAILED with $failures violation(s)" >&2
  exit 1
fi
echo "lint: OK"
