#!/usr/bin/env bash
# Benchmark runner: builds Release, runs the estimator-throughput bench, the
# wire-format throughput bench, the 64-session monitor scale bench, and the
# sharded monitor sweep (1k/4k/10k sessions, full-vs-delta transport), and
# collects each family's trailing "BENCH {...}" JSON lines into one JSON
# array per family.
#
#   $ scripts/bench.sh
#
# Output: BENCH_estimator.json, BENCH_remote.json, BENCH_monitor_scale.json,
# BENCH_ensemble.json, and BENCH_bounds.json in the repo root (override the
# directory with BENCH_OUT_DIR). Build directory: build-bench (override with
# BENCH_BUILD_DIR). CI runs this as a non-gating artifact step — numbers are
# tracked, not asserted — but estimator_throughput exits non-zero if the
# fresh and workspace-reusing modes ever diverge, monitor_scale --sweep
# exits non-zero if a sharded run wedges, regresses per-session progress, or
# the delta transport falls under its 3x bytes-per-session reduction floor,
# ensemble_accuracy exits non-zero if the ensemble's Error_time falls
# outside [better than worst fixed preset, 1.1x best fixed preset],
# table1_bounds exits non-zero on any bound-soundness violation, and
# bounds_tightness exits non-zero if intersecting LpBound with Appendix A
# inverts any interval or regresses Error_time; those correctness failures
# do gate.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BENCH_BUILD_DIR:-build-bench}"
OUT_DIR="${BENCH_OUT_DIR:-.}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target estimator_throughput wire_throughput monitor_scale \
  ensemble_accuracy table1_bounds bounds_tightness

# run_family OUT_FILE BENCH...: runs each bench command, echoes its
# deterministic lines, and writes the "BENCH {...}" payloads to OUT_FILE.
run_family() {
  local out="$1"
  shift
  local lines=()
  for bench in "$@"; do
    echo "== $bench"
    # shellcheck disable=SC2086  # intentional word splitting for the args
    output="$(./$bench)"
    echo "$output" | grep -v '^BENCH '
    while IFS= read -r line; do
      lines+=("${line#BENCH }")
    done < <(echo "$output" | grep '^BENCH ')
  done
  {
    echo '['
    for i in "${!lines[@]}"; do
      if [ "$i" -lt $((${#lines[@]} - 1)) ]; then
        echo "  ${lines[$i]},"
      else
        echo "  ${lines[$i]}"
      fi
    done
    echo ']'
  } > "$out"
  echo "wrote $out (${#lines[@]} bench results)"
}

run_family "$OUT_DIR/BENCH_estimator.json" \
  "$BUILD_DIR/bench/estimator_throughput"

run_family "$OUT_DIR/BENCH_remote.json" \
  "$BUILD_DIR/bench/wire_throughput" \
  "$BUILD_DIR/bench/monitor_scale --threads=8 --sessions=64"

run_family "$OUT_DIR/BENCH_monitor_scale.json" \
  "$BUILD_DIR/bench/monitor_scale --sweep --threads=8"

run_family "$OUT_DIR/BENCH_ensemble.json" \
  "$BUILD_DIR/bench/ensemble_accuracy"

run_family "$OUT_DIR/BENCH_bounds.json" \
  "$BUILD_DIR/bench/table1_bounds" \
  "$BUILD_DIR/bench/bounds_tightness"
