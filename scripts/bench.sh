#!/usr/bin/env bash
# Remote-transport benchmark runner: builds Release, runs the wire-format
# throughput bench and the 64-session monitor scale bench, and collects
# their trailing "BENCH {...}" JSON lines into one JSON array.
#
#   $ scripts/bench.sh
#
# Output: BENCH_remote.json in the repo root (override with BENCH_OUT).
# Build directory: build-bench (override with BENCH_BUILD_DIR). CI runs this
# as a non-gating artifact step — numbers are tracked, not asserted.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BENCH_BUILD_DIR:-build-bench}"
OUT="${BENCH_OUT:-BENCH_remote.json}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$(nproc)" --target wire_throughput monitor_scale

benches=(
  "$BUILD_DIR/bench/wire_throughput"
  "$BUILD_DIR/bench/monitor_scale --threads=8 --sessions=64"
)

lines=()
for bench in "${benches[@]}"; do
  echo "== $bench"
  # shellcheck disable=SC2086  # intentional word splitting for the args
  output="$(./$bench)"
  echo "$output" | grep -v '^BENCH '
  while IFS= read -r line; do
    lines+=("${line#BENCH }")
  done < <(echo "$output" | grep '^BENCH ')
done

{
  echo '['
  for i in "${!lines[@]}"; do
    if [ "$i" -lt $((${#lines[@]} - 1)) ]; then
      echo "  ${lines[$i]},"
    else
      echo "  ${lines[$i]}"
    fi
  done
  echo ']'
} > "$OUT"
echo "wrote $OUT (${#lines[@]} bench results)"
