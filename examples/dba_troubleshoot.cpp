// The paper's §1 DBA scenario: use live operator-level progress to spot a
// cardinality estimation problem while the query is still running.
//
// "a database administrator might observe a nested loop operator that is not
//  only executing for a significant amount of time, but, according to the
//  progress estimate, has only completed a small fraction of its work. ...
//  she may then compare the number of rows seen so far on the outer side of
//  the join and discover that these are already much larger than the
//  optimizer estimate for the total number of outer rows, indicating a
//  cardinality estimation problem."
//
// This example builds exactly that situation (a badly under-estimated outer
// side feeding a nested loops join), registers the running query with the
// MonitorService — the same subsystem the multi-query dashboard uses — and
// raises the alert the moment a monitor tick shows the observed row count
// overtaking the estimate.

#include <algorithm>
#include <cstdio>

#include "analysis/validator.h"
#include "exec/executor.h"
#include "monitor/monitor_service.h"
#include "optimizer/annotate.h"
#include "workload/plan_builder.h"
#include "workload/workload.h"

using namespace lqs;      // NOLINT: example code
using namespace lqs::pb;  // NOLINT

int main() {
  RealWorkloadOptions opt;
  opt.which = 1;
  opt.scale = 0.5;
  opt.num_queries = 1;  // we only need the catalog
  auto w = MakeRealWorkload(opt);
  if (!w.ok()) return 1;

  // A nested loops join whose outer side is a filtered fact scan. With
  // heavily amplified estimation error the optimizer believes the filter is
  // far more selective than it is — the classic trigger for a disastrous
  // NLJ plan choice.
  auto outer = CiScan("fact1", ColBetween(/*m1*/ 13, 100, 900));
  auto inner = CiSeek("dim3", OuterCol(4), OuterCol(4));
  auto root = HashAgg(
      Nlj(JoinKind::kInner, std::move(outer), std::move(inner)), {},
      {Count(), Sum(15)});
  auto plan_or = FinalizePlan(std::move(root), *w->catalog);
  if (!plan_or.ok()) {
    std::fprintf(stderr, "%s\n", plan_or.status().ToString().c_str());
    return 1;
  }
  Plan plan = std::move(plan_or).value();
  if (!AnnotatePlan(&plan, *w->catalog, OptimizerOptions{}).ok()) return 1;
  // Plant the stale estimate: the optimizer believes the m1 range keeps only
  // ~800 rows (it was true before the fact table grew 20x). This is the
  // situation the paper's DBA walks into.
  plan.root->VisitMutable([](PlanNode& n) {
    if (n.type == OpType::kClusteredIndexScan) n.est_rows = 800;
    if (n.type == OpType::kNestedLoopJoin) n.est_rows = 800;
    if (n.type == OpType::kClusteredIndexSeek) n.est_rows = 800;
  });

  const int nlj = 1;        // plan layout: 0=agg, 1=NLJ, 2=outer scan, 3=seek
  const int outer_scan = 2;
  // Even with the planted mis-estimate the plan must stay structurally
  // valid — the stale numbers are wrong, not malformed.
  ValidationReport plan_report = PlanValidator(w->catalog.get()).Validate(plan);
  if (!plan_report.ok()) {
    std::fprintf(stderr, "%s", plan_report.ToString().c_str());
    return 1;
  }
  std::printf("plan under investigation:\n%s\n", PlanToString(plan).c_str());

  ExecOptions exec;
  exec.snapshot_interval_ms = 10.0;
  auto result = ExecuteQuery(plan, w->catalog.get(), exec);
  if (!result.ok()) return 1;

  // One dedicated monitor window for the suspect query, ~15 dashboard
  // refreshes over its lifetime.
  MonitorOptions mopt;
  mopt.ticks_per_horizon = 15;
  MonitorService monitor(mopt);
  monitor.RegisterSession("dba_nlj", &plan, w->catalog.get(), &result->trace,
                          /*start_offset_ms=*/0);

  const double est_outer = plan.node(outer_scan).est_rows;
  bool alerted = false;
  std::printf("%10s %8s %14s %14s %12s\n", "time(ms)", "NLJ %",
              "outer rows", "outer est", "refined est");
  monitor.RunToCompletion([&](double t,
                              const std::vector<SessionStatus>& statuses) {
    const SessionStatus& s = statuses[0];
    if (s.state != SessionState::kRunning || s.snapshot == nullptr) return;
    const auto& outer_prof = s.snapshot->operators[outer_scan];
    std::printf("%10.0f %7.1f%% %14llu %14.0f %12.0f\n", t,
                100 * s.report.operator_progress[nlj],
                static_cast<unsigned long long>(outer_prof.row_count),
                est_outer, s.report.refined_rows[outer_scan]);
    if (!alerted &&
        static_cast<double>(outer_prof.row_count) > 1.5 * est_outer) {
      alerted = true;
      std::printf(
          ">>> ALERT at t=%.0f ms: the join's outer side has already produced"
          " %llu rows,\n"
          ">>> %.1fx the optimizer's TOTAL estimate of %.0f — cardinality "
          "misestimate.\n"
          ">>> Remediation: update statistics on fact1.m1, or hint a hash "
          "join.\n",
          t, static_cast<unsigned long long>(outer_prof.row_count),
          static_cast<double>(outer_prof.row_count) / est_outer, est_outer);
    }
  });
  const auto& fin = result->trace.final_snapshot;
  std::printf("\nfinal: outer side produced %llu rows vs estimate %.0f "
              "(%.0fx off); alert %s mid-flight.\n",
              static_cast<unsigned long long>(
                  fin.operators[outer_scan].row_count),
              est_outer,
              static_cast<double>(fin.operators[outer_scan].row_count) /
                  std::max(1.0, est_outer),
              alerted ? "was raised" : "was NOT raised");
  ValidationReport final_report = monitor.FinalCheck();
  if (!final_report.ok()) {
    std::fprintf(stderr, "%s", final_report.ToString().c_str());
    return 1;
  }
  return alerted ? 0 : 1;
}
