// LQS supports "multiple, concurrently executing queries, each of them being
// given their own dedicated window" (§2.1). This example is that front-end
// on top of MonitorService: it executes several queries, registers their DMV
// traces as staggered sessions on the service's shared virtual timeline, and
// renders one status line per query per tick — the data an administrator
// dashboard would show. The per-tick estimates are computed by the service's
// worker pool; rendering happens in session order, so the output is
// identical no matter how many threads the pool uses.
//
//   $ ./build/examples/multi_query_monitor

#include <cstdio>
#include <vector>

#include "analysis/validator.h"
#include "exec/executor.h"
#include "monitor/monitor_service.h"
#include "workload/workload.h"

using namespace lqs;  // NOLINT: example code

int main() {
  TpcdsOptions opt;
  opt.scale = 0.3;
  auto w = MakeTpcdsWorkload(opt);
  if (!w.ok()) return 1;
  OptimizerOptions oo;
  oo.selectivity_error = 1.0;
  if (!AnnotateWorkload(&w.value(), oo).ok()) return 1;

  // Execute the queries first (the monitor replays completed traces), then
  // register; registering after the vector stops growing keeps the trace
  // pointers stable.
  struct Executed {
    const WorkloadQuery* query;
    ExecutionResult result;
  };
  const char* wanted[] = {"ds_q03", "ds_q13", "ds_q42", "ds_q25"};
  std::vector<Executed> executed;
  PlanValidator validator(w->catalog.get());
  ExecOptions exec;
  exec.snapshot_interval_ms = 5.0;
  for (const char* name : wanted) {
    for (auto& q : w->queries) {
      if (q.name != name) continue;
      ValidationReport plan_report = validator.Validate(q.plan);
      if (!plan_report.ok()) {
        std::fprintf(stderr, "%s", plan_report.ToString().c_str());
        return 1;
      }
      auto result = ExecuteQuery(q.plan, w->catalog.get(), exec);
      if (!result.ok()) return 1;
      executed.push_back(Executed{&q, std::move(result).value()});
    }
  }

  MonitorService monitor;  // defaults: hardware threads, checkers on
  double offset = 0;
  for (const Executed& e : executed) {
    monitor.RegisterSession(e.query->name, &e.query->plan, w->catalog.get(),
                            &e.result.trace, offset);
    offset += 40.0;  // stagger arrivals by 40 virtual ms
  }

  std::printf("monitoring %zu concurrent queries (virtual time)\n\n",
              monitor.session_count());
  monitor.RunToCompletion([&](double t,
                              const std::vector<SessionStatus>& statuses) {
    std::printf("t=%6.0f ms |", t);
    for (const SessionStatus& s : statuses) {
      const char* name = monitor.session_name(s.session_id).c_str();
      switch (s.state) {
        case SessionState::kWaiting:
          std::printf(" %-8s   wait |", name);
          break;
        case SessionState::kDone:
          std::printf(" %-8s   done |", name);
          break;
        case SessionState::kRunning:
          std::printf(" %-8s %5.1f%% |", name, 100 * s.progress);
          break;
      }
    }
    std::printf("\n");
  });
  std::printf("\nEach column is one LQS window (§2.1); estimates come from "
              "per-query DMV polls.\n");

  MonitorStats stats = monitor.stats();
  std::printf("sessions=%zu ticks=%llu reports=%llu estimators_cached=%zu\n",
              stats.sessions, static_cast<unsigned long long>(stats.ticks),
              static_cast<unsigned long long>(stats.reports_computed),
              stats.estimators_cached);

  ValidationReport final_report = monitor.FinalCheck();
  if (!final_report.ok()) {
    std::fprintf(stderr, "%s", final_report.ToString().c_str());
    return 1;
  }
  return 0;
}
