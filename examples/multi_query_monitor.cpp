// LQS supports "multiple, concurrently executing queries, each of them being
// given their own dedicated window" (§2.1). This example emulates that: it
// runs several queries, interleaves their DMV traces on a common virtual
// timeline, and renders one status line per query per tick — the data an
// administrator dashboard would show.
//
//   $ ./build/examples/multi_query_monitor

#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/invariant_checker.h"
#include "analysis/validator.h"
#include "exec/executor.h"
#include "lqs/estimator.h"
#include "workload/workload.h"

using namespace lqs;  // NOLINT: example code

namespace {

struct RunningQuery {
  const WorkloadQuery* query;
  ExecutionResult result;
  ProgressEstimator estimator;
  double start_offset_ms;  // staggered arrival on the shared timeline
};

/// Snapshot at-or-before `t` on the query's own clock, or nullptr.
const ProfileSnapshot* SnapshotAt(const ProfileTrace& trace, double t) {
  const ProfileSnapshot* best = nullptr;
  for (const auto& snap : trace.snapshots) {
    if (snap.time_ms <= t) best = &snap;
    else break;
  }
  return best;
}

}  // namespace

int main() {
  TpcdsOptions opt;
  opt.scale = 0.3;
  auto w = MakeTpcdsWorkload(opt);
  if (!w.ok()) return 1;
  OptimizerOptions oo;
  oo.selectivity_error = 1.0;
  if (!AnnotateWorkload(&w.value(), oo).ok()) return 1;

  const char* wanted[] = {"ds_q03", "ds_q13", "ds_q42", "ds_q25"};
  std::vector<RunningQuery> running;
  PlanValidator validator(w->catalog.get());
  ExecOptions exec;
  exec.snapshot_interval_ms = 5.0;
  double offset = 0;
  for (const char* name : wanted) {
    for (auto& q : w->queries) {
      if (q.name != name) continue;
      ValidationReport plan_report = validator.Validate(q.plan);
      if (!plan_report.ok()) {
        std::fprintf(stderr, "%s", plan_report.ToString().c_str());
        return 1;
      }
      auto result = ExecuteQuery(q.plan, w->catalog.get(), exec);
      if (!result.ok()) return 1;
      running.push_back(RunningQuery{
          &q, std::move(result).value(),
          ProgressEstimator(&q.plan, w->catalog.get(),
                            EstimatorOptions::Lqs()),
          offset});
      offset += 40.0;  // stagger arrivals by 40 virtual ms
    }
  }
  // One invariant checker per window, attached after `running` stops
  // reallocating (each checker keeps a pointer to its estimator).
  std::vector<ProgressInvariantChecker> checkers;
  checkers.reserve(running.size());
  for (const auto& r : running) checkers.emplace_back(&r.estimator);

  double horizon = 0;
  for (const auto& r : running) {
    horizon = std::max(horizon, r.start_offset_ms + r.result.duration_ms);
  }

  std::printf("monitoring %zu concurrent queries (virtual time)\n\n",
              running.size());
  const double tick = horizon / 12;
  for (double t = tick; t <= horizon + 1e-9; t += tick) {
    std::printf("t=%6.0f ms |", t);
    for (size_t qi = 0; qi < running.size(); ++qi) {
      const auto& r = running[qi];
      const double local = t - r.start_offset_ms;
      if (local < 0) {
        std::printf(" %-8s   wait |", r.query->name.c_str());
        continue;
      }
      if (local >= r.result.duration_ms) {
        std::printf(" %-8s   done |", r.query->name.c_str());
        continue;
      }
      const ProfileSnapshot* snap = SnapshotAt(r.result.trace, local);
      double progress =
          snap == nullptr
              ? 0.0
              : checkers[qi].EstimateChecked(*snap).query_progress;
      std::printf(" %-8s %5.1f%% |", r.query->name.c_str(), 100 * progress);
    }
    std::printf("\n");
  }
  std::printf("\nEach column is one LQS window (§2.1); estimates come from "
              "per-query DMV polls.\n");
  int violations = 0;
  for (size_t qi = 0; qi < running.size(); ++qi) {
    checkers[qi].CheckFinal(running[qi].result.trace.final_snapshot);
    if (!checkers[qi].report().ok()) {
      std::fprintf(stderr, "%s: %s", running[qi].query->name.c_str(),
                   checkers[qi].report().ToString().c_str());
      violations++;
    }
  }
  return violations == 0 ? 0 : 1;
}
