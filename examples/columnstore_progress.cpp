// Batch-mode progress (§4.7): runs the same analytical query against a
// rowstore and a columnstore physical design and shows how progress is
// derived differently — GetNext fractions for row mode, processed-segment
// fractions (sys.column_store_segments) for batch mode — and how segment
// elimination shows up in the counters.
//
//   $ ./build/examples/columnstore_progress

#include <cstdio>

#include "analysis/invariant_checker.h"
#include "analysis/validator.h"
#include "exec/executor.h"
#include "lqs/estimator.h"
#include "workload/plan_builder.h"
#include "workload/workload.h"

using namespace lqs;      // NOLINT: example code
using namespace lqs::pb;  // NOLINT

namespace {

bool RunOne(Workload& w, bool columnstore) {
  // sum(l_extendedprice) for a quantity band, grouped by return flag.
  NodePtr scan =
      columnstore
          ? CsScan("lineitem", ColBetween(/*l_quantity*/ 4, 5, 20))
          : CiScan("lineitem", ColBetween(4, 5, 20));
  auto root = HashAgg(std::move(scan), {/*l_returnflag*/ 8}, {Sum(5)});
  auto plan_or = FinalizePlan(std::move(root), *w.catalog);
  if (!plan_or.ok()) return false;
  Plan plan = std::move(plan_or).value();
  if (!AnnotatePlan(&plan, *w.catalog, OptimizerOptions{}).ok()) return false;
  ValidationReport plan_report = PlanValidator(w.catalog.get()).Validate(plan);
  if (!plan_report.ok()) {
    std::fprintf(stderr, "%s", plan_report.ToString().c_str());
    return false;
  }

  ExecOptions exec;
  exec.snapshot_interval_ms = 5.0;
  auto result = ExecuteQuery(plan, w.catalog.get(), exec);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return false;
  }
  ProgressEstimator estimator(&plan, w.catalog.get(),
                              EstimatorOptions::Lqs());
  ProgressInvariantChecker checker(&estimator);

  std::printf("\n--- %s design: %.0f virtual ms ---\n",
              columnstore ? "columnstore (batch mode)" : "rowstore",
              result->duration_ms);
  std::printf("%10s %10s %12s %12s %12s\n", "time(ms)", "scan %",
              "rows", "segments", "log.reads");
  const auto& snaps = result->trace.snapshots;
  const size_t stride = std::max<size_t>(1, snaps.size() / 8);
  const int scan_id = 1;  // 0 = agg, 1 = scan
  ProgressEstimator::Workspace workspace;
  ProgressReport report;
  for (size_t i = 0; i < snaps.size(); i += stride) {
    checker.EstimateCheckedInto(snaps[i], &workspace, &report);
    const auto& prof = snaps[i].operators[scan_id];
    std::printf("%10.1f %9.1f%% %12llu %8llu/%-3llu %12llu\n",
                snaps[i].time_ms, 100 * report.operator_progress[scan_id],
                static_cast<unsigned long long>(prof.row_count),
                static_cast<unsigned long long>(prof.segment_read_count),
                static_cast<unsigned long long>(prof.segment_total_count),
                static_cast<unsigned long long>(prof.logical_read_count));
  }
  std::printf("batch-mode query runs %s\n",
              columnstore ? "an order of magnitude cheaper per row (cf. "
                            "Figure 18's error reduction)"
                          : "row at a time");
  checker.CheckFinal(result->trace.final_snapshot);
  if (!checker.report().ok()) {
    std::fprintf(stderr, "%s", checker.report().ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main() {
  for (bool columnstore : {false, true}) {
    TpchOptions opt;
    opt.scale = 0.3;
    opt.design = columnstore ? PhysicalDesign::kColumnstore
                             : PhysicalDesign::kRowstore;
    auto w = MakeTpchWorkload(opt);
    if (!w.ok()) {
      std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
      return 1;
    }
    if (!RunOne(w.value(), columnstore)) return 1;
  }
  return 0;
}
