// Live plan monitor: the SSMS Live Query Statistics visualization (Figures
// 2-4) rendered in a terminal. Runs a TPC-H query and replays its DMV
// snapshots as animation frames: per-operator progress bars, row counts vs
// estimates, and the overall query progress in the header.
//
//   $ ./build/examples/live_monitor [query-name]   (default: q05)

#include <cstdio>
#include <string>

#include "analysis/invariant_checker.h"
#include "analysis/validator.h"
#include "common/stringf.h"
#include "exec/executor.h"
#include "lqs/estimator.h"
#include "workload/workload.h"

using namespace lqs;  // NOLINT: example code

namespace {

std::string Bar(double fraction, int width) {
  int fill = static_cast<int>(fraction * width + 0.5);
  std::string out(static_cast<size_t>(fill), '#');
  out.append(static_cast<size_t>(width - fill), '.');
  return out;
}

void RenderFrame(const Plan& plan, const ProfileSnapshot& snap,
                 const ProgressReport& report, double total_ms) {
  std::printf("\n==== t = %.0f ms  |  query progress: %5.1f%%  (%s) ====\n",
              snap.time_ms, 100 * report.query_progress,
              Bar(report.query_progress, 30).c_str());
  (void)total_ms;
  struct Renderer {
    const Plan& plan;
    const ProfileSnapshot& snap;
    const ProgressReport& report;
    void Print(const PlanNode& node, int depth) {
      const OperatorProfile& prof = snap.operators[node.id];
      double p = report.operator_progress[node.id];
      std::string label(static_cast<size_t>(depth) * 2, ' ');
      label += OpTypeName(node.type);
      if (!node.table_name.empty()) label += " [" + node.table_name + "]";
      std::printf("  %-44s %5.1f%% |%s| rows %8llu / est %-8.0f\n",
                  label.c_str(), 100 * p, Bar(p, 20).c_str(),
                  static_cast<unsigned long long>(prof.row_count),
                  report.refined_rows[node.id]);
      for (const auto& c : node.children) Print(*c, depth + 1);
    }
  };
  Renderer{plan, snap, report}.Print(*plan.root, 0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string wanted = argc > 1 ? argv[1] : "q05";

  TpchOptions opt;
  opt.scale = 0.3;
  auto w = MakeTpchWorkload(opt);
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 1;
  }
  OptimizerOptions oo;
  oo.selectivity_error = 1.0;  // realistic misestimation to watch refine
  if (!AnnotateWorkload(&w.value(), oo).ok()) return 1;

  WorkloadQuery* query = nullptr;
  for (auto& q : w->queries) {
    if (q.name == wanted) query = &q;
  }
  if (query == nullptr) {
    std::fprintf(stderr, "unknown query '%s'; available:", wanted.c_str());
    for (auto& q : w->queries) std::fprintf(stderr, " %s", q.name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  ExecOptions exec;
  exec.snapshot_interval_ms = 5.0;
  auto result = ExecuteQuery(query->plan, w->catalog.get(), exec);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("TPC-H %s — %llu rows, %.0f virtual ms, %zu DMV polls\n",
              query->name.c_str(),
              static_cast<unsigned long long>(result->rows_returned),
              result->duration_ms, result->trace.snapshots.size());

  ValidationReport plan_report =
      PlanValidator(w->catalog.get()).Validate(query->plan);
  if (!plan_report.ok()) {
    std::fprintf(stderr, "%s", plan_report.ToString().c_str());
    return 1;
  }

  ProgressEstimator estimator(&query->plan, w->catalog.get(),
                              EstimatorOptions::Lqs());
  ProgressInvariantChecker checker(&estimator);
  const auto& snaps = result->trace.snapshots;
  const size_t frames = 8;
  const size_t stride = std::max<size_t>(1, snaps.size() / frames);
  for (size_t i = 0; i < snaps.size(); i += stride) {
    ProgressReport report = checker.EstimateChecked(snaps[i]);
    RenderFrame(query->plan, snaps[i], report, result->duration_ms);
  }
  ProgressReport final_report =
      checker.EstimateChecked(result->trace.final_snapshot);
  RenderFrame(query->plan, result->trace.final_snapshot, final_report,
              result->duration_ms);
  checker.CheckFinal(result->trace.final_snapshot);
  if (!checker.report().ok()) {
    std::fprintf(stderr, "%s", checker.report().ToString().c_str());
    return 1;
  }
  return 0;
}
