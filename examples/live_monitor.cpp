// Live plan monitor over a lossy link: the SSMS Live Query Statistics
// visualization (Figures 2-4) rendered in a terminal, with the DMV polls
// crossing the remote snapshot transport (DESIGN.md §10) instead of a
// pointer read. Runs a TPC-H query, then monitors its DMV stream through a
// FaultInjectingEndpoint that drops, delays, duplicates and corrupts
// responses under a seeded RNG — watch the monitor hold stale frames,
// retry, and still converge to 100%.
//
//   $ ./build/examples/live_monitor [query-name] [--clean]   (default: q05)
//
// --clean monitors over a fault-free loopback link instead.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/validator.h"
#include "common/stringf.h"
#include "exec/executor.h"
#include "lqs/estimator.h"
#include "monitor/monitor_service.h"
#include "remote/endpoint.h"
#include "remote/fault_injection.h"
#include "workload/workload.h"

using namespace lqs;  // NOLINT: example code

namespace {

std::string Bar(double fraction, int width) {
  int fill = static_cast<int>(fraction * width + 0.5);
  std::string out(static_cast<size_t>(fill), '#');
  out.append(static_cast<size_t>(width - fill), '.');
  return out;
}

/// Per-operator frame: the LQS window for this query at one monitor tick.
void RenderFrame(const Plan& plan, const SessionStatus& status) {
  const char* condition = status.degraded ? "DEGRADED"
                          : status.stale  ? "stale"
                                          : "live";
  std::printf(
      "\n==== t = %6.1f ms | query progress %5.1f%% (%s) | link: %s, "
      "snapshot age %.1f ms ====\n",
      status.local_time_ms, 100 * status.progress,
      Bar(status.progress, 30).c_str(), condition, status.staleness_ms);
  if (status.snapshot == nullptr) {
    std::printf("  (no snapshot has crossed the link yet)\n");
    return;
  }
  struct Renderer {
    const ProfileSnapshot& snap;
    const ProgressReport& report;
    void Print(const PlanNode& node, int depth) {
      const OperatorProfile& prof = snap.operators[node.id];
      double p = report.operator_progress[node.id];
      std::string label(static_cast<size_t>(depth) * 2, ' ');
      label += OpTypeName(node.type);
      if (!node.table_name.empty()) label += " [" + node.table_name + "]";
      std::printf("  %-44s %5.1f%% |%s| rows %8llu / est %-8.0f\n",
                  label.c_str(), 100 * p, Bar(p, 20).c_str(),
                  static_cast<unsigned long long>(prof.row_count),
                  report.refined_rows[node.id]);
      for (const auto& c : node.children) Print(*c, depth + 1);
    }
  };
  if (status.state == SessionState::kDone) {
    // The final snapshot carries no estimator report; the bars are all full.
    std::printf("  (complete — final counters received)\n");
    return;
  }
  Renderer{*status.snapshot, status.report}.Print(*plan.root, 0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string wanted = "q05";
  bool clean_link = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clean") == 0) {
      clean_link = true;
    } else {
      wanted = argv[i];
    }
  }

  TpchOptions opt;
  opt.scale = 0.3;
  auto w = MakeTpchWorkload(opt);
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 1;
  }
  OptimizerOptions oo;
  oo.selectivity_error = 1.0;  // realistic misestimation to watch refine
  if (!AnnotateWorkload(&w.value(), oo).ok()) return 1;

  WorkloadQuery* query = nullptr;
  for (auto& q : w->queries) {
    if (q.name == wanted) query = &q;
  }
  if (query == nullptr) {
    std::fprintf(stderr, "unknown query '%s'; available:", wanted.c_str());
    for (auto& q : w->queries) std::fprintf(stderr, " %s", q.name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  ExecOptions exec;
  exec.snapshot_interval_ms = 5.0;
  auto result = ExecuteQuery(query->plan, w->catalog.get(), exec);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("TPC-H %s — %llu rows, %.0f virtual ms, %zu DMV polls\n",
              query->name.c_str(),
              static_cast<unsigned long long>(result->rows_returned),
              result->duration_ms, result->trace.snapshots.size());

  ValidationReport plan_report =
      PlanValidator(w->catalog.get()).Validate(query->plan);
  if (!plan_report.ok()) {
    std::fprintf(stderr, "%s", plan_report.ToString().c_str());
    return 1;
  }

  // The monitored session's snapshots cross a (possibly lossy) link: every
  // response is serialized through the wire format, and the fault model
  // drops/delays/duplicates/corrupts it before the polling client sees it.
  auto loopback = std::make_unique<LoopbackEndpoint>(&result->trace);
  std::unique_ptr<SnapshotEndpoint> endpoint;
  const FaultStats* fault_stats = nullptr;
  if (clean_link) {
    endpoint = std::move(loopback);
    std::printf("link: clean loopback\n");
  } else {
    FaultConfig faults;
    faults.drop_probability = 0.15;
    faults.delay_probability = 0.25;
    faults.max_delay_ms = 15.0;  // up to 3 polling intervals
    faults.duplicate_probability = 0.10;
    faults.corrupt_probability = 0.10;
    faults.seed = 7;
    auto lossy = std::make_unique<FaultInjectingEndpoint>(std::move(loopback),
                                                          faults);
    fault_stats = &lossy->fault_stats();
    endpoint = std::move(lossy);
    std::printf(
        "link: lossy (drop %.0f%%, delay %.0f%% up to %.0f ms, dup %.0f%%, "
        "corrupt %.0f%%, seed %llu)\n",
        100 * faults.drop_probability, 100 * faults.delay_probability,
        faults.max_delay_ms, 100 * faults.duplicate_probability,
        100 * faults.corrupt_probability,
        static_cast<unsigned long long>(faults.seed));
  }

  PollingClientOptions client_options;
  client_options.timeout_ms = 5.0;  // one polling interval
  client_options.max_attempts = 3;
  client_options.backoff_initial_ms = 1.0;
  client_options.backoff_max_ms = 4.0;

  MonitorOptions monitor_options;
  monitor_options.ticks_per_horizon = 32;
  MonitorService monitor(monitor_options);
  monitor.RegisterRemoteSession(query->name, &query->plan, w->catalog.get(),
                                std::move(endpoint), /*start_offset_ms=*/0,
                                client_options);

  // Full operator frames at a few evenly spaced ticks; a one-line transport
  // status everywhere else.
  const int frame_every = 5;
  int tick_index = 0;
  monitor.RunToCompletion(
      [&](double, const std::vector<SessionStatus>& statuses) {
        const SessionStatus& status = statuses[0];
        if (tick_index++ % frame_every == 0 ||
            status.state == SessionState::kDone) {
          RenderFrame(query->plan, status);
        } else {
          std::printf(
              "t = %6.1f ms | %5.1f%% | %s%s\n", status.local_time_ms,
              100 * status.progress, status.stale ? "stale" : "live",
              status.degraded ? " DEGRADED" : "");
        }
      });

  if (!monitor.AllSessionsDone()) {
    std::fprintf(stderr, "session never completed over the lossy link\n");
    return 1;
  }
  ValidationReport final_report = monitor.FinalCheck();
  if (!final_report.ok()) {
    std::fprintf(stderr, "%s", final_report.ToString().c_str());
    return 1;
  }

  const ClientStats& stats = monitor.session_client_stats(0);
  std::printf(
      "\ntransport: %llu polls, %llu attempts (%llu retries), "
      "%llu timeouts, %llu decode errors\n",
      static_cast<unsigned long long>(stats.polls),
      static_cast<unsigned long long>(stats.attempts),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.transport_failures),
      static_cast<unsigned long long>(stats.decode_errors));
  std::printf(
      "           %llu snapshots accepted, %llu duplicates ignored, "
      "%llu regressions rejected, %llu stale ticks\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.duplicates_ignored),
      static_cast<unsigned long long>(stats.regressions_rejected),
      static_cast<unsigned long long>(stats.stale_polls));
  if (fault_stats != nullptr) {
    std::printf(
        "link faults: %llu dropped, %llu delayed (%llu delivered late), "
        "%llu duplicated, %llu corrupted\n",
        static_cast<unsigned long long>(fault_stats->dropped),
        static_cast<unsigned long long>(fault_stats->delayed),
        static_cast<unsigned long long>(fault_stats->late_delivered),
        static_cast<unsigned long long>(fault_stats->duplicated),
        static_cast<unsigned long long>(fault_stats->corrupted));
  }
  return 0;
}
